package mapping

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/params"
)

func schedFor(t *testing.T, c, h, w, d, k, s, pad int) *Schedule {
	t.Helper()
	l := convLayer(c, h, w, d, k, s, pad)
	p := PlaceO2IR(l, params.DefaultTimely(8))
	sch, err := BuildSchedule(p)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// TestScheduleOnlyOnceInvariant: the constructive proof of O2IR — every
// covering conv layer fetches each input pixel exactly once from L1.
func TestScheduleOnlyOnceInvariant(t *testing.T) {
	cases := []struct{ c, h, w, d, k, s, pad int }{
		{3, 224, 224, 64, 3, 1, 1}, // VGG conv1_1
		{64, 56, 56, 64, 3, 1, 1},
		{3, 28, 28, 8, 5, 1, 2},
		{16, 32, 32, 8, 3, 2, 1},   // strided
		{3, 224, 224, 96, 7, 2, 3}, // MSRA/ResNet stem
	}
	for _, cse := range cases {
		sch := schedFor(t, cse.c, cse.h, cse.w, cse.d, cse.k, cse.s, cse.pad)
		want := cse.c * cse.h * cse.w
		if sch.FreshFetches() != want {
			t.Errorf("conv %dx%dx%d k%d s%d p%d: fresh fetches = %d, want %d (only once)",
				cse.c, cse.h, cse.w, cse.k, cse.s, cse.pad, sch.FreshFetches(), want)
		}
	}
}

// TestScheduleMatchesClosedFormCount ties the schedule to the analytic
// Table V model: scheduled fetches equal the o2ir closed-form count.
func TestScheduleMatchesClosedFormCount(t *testing.T) {
	for _, l := range model.VGG("D").ConvLayers()[:6] {
		p := PlaceO2IR(l, params.DefaultTimely(8))
		sch, err := BuildSchedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := int64(sch.FreshFetches()), l.Inputs(); got != want {
			t.Errorf("%s: scheduled fetches %d, closed form %d", l.Name, got, want)
		}
	}
}

func TestScheduleCoversAllOutputs(t *testing.T) {
	sch := schedFor(t, 3, 30, 30, 4, 3, 1, 1)
	l := sch.Placement.Layer
	if sch.OutputsCovered != l.E*l.F {
		t.Errorf("outputs covered = %d, want %d", sch.OutputsCovered, l.E*l.F)
	}
	if sch.CycleCount()*1 != int(sch.Placement.CyclesPerImage) {
		t.Errorf("cycle count = %d, placement says %d", sch.CycleCount(), sch.Placement.CyclesPerImage)
	}
}

// TestScheduleFirstCycleFetchesWindow: the first cycle fetches a full
// receptive-field band; later cycles in the same group fetch only the S new
// columns (Fig. 7(c): inputs shift by S between X-subBufs).
func TestScheduleFirstCycleFetchesWindow(t *testing.T) {
	sch := schedFor(t, 1, 16, 16, 4, 3, 1, 0)
	first := sch.Cycles[0]
	r := sch.Placement.VerticalCopies
	wantRows := 3 + (r-1)*1 // window height of the duplicated group
	if first.Fresh != wantRows*3 {
		t.Errorf("first cycle fresh = %d, want %d (full %dx3 window)", first.Fresh, wantRows*3, wantRows)
	}
	second := sch.Cycles[1]
	if second.Fresh != wantRows*1 {
		t.Errorf("second cycle fresh = %d, want %d (one new column)", second.Fresh, wantRows)
	}
	if second.Shifted != wantRows*2 {
		t.Errorf("second cycle shifted = %d, want %d (2 reused columns)", second.Shifted, wantRows*2)
	}
}

func TestScheduleReuseFactorGrowsWithKernel(t *testing.T) {
	k3 := schedFor(t, 3, 32, 32, 4, 3, 1, 1).ReuseFactor()
	k5 := schedFor(t, 3, 32, 32, 4, 5, 1, 2).ReuseFactor()
	k7 := schedFor(t, 3, 32, 32, 4, 7, 1, 3).ReuseFactor()
	if !(k7 > k5 && k5 > k3) {
		t.Errorf("reuse not growing with kernel: k3=%.3f k5=%.3f k7=%.3f", k3, k5, k7)
	}
	// A 1x1 s1 conv has no spatial reuse at all.
	if r := schedFor(t, 8, 16, 16, 4, 1, 1, 0).ReuseFactor(); r != 0 {
		t.Errorf("1x1 conv reuse = %.3f, want 0", r)
	}
}

func TestScheduleErrors(t *testing.T) {
	b := model.NewBuilder("t", 4, 8, 8)
	b.FC("fc", 10)
	p := PlaceO2IR(b.Build().Layers[0], params.DefaultTimely(8))
	if _, err := BuildSchedule(p); err == nil {
		t.Errorf("scheduling an FC layer accepted")
	}
}

// TestScheduleInvariantProperty: for random covering convs, total fresh
// fetches always equal C·H·W and fresh+shifted equals the im2col operand
// volume Σ over outputs of the valid window size.
func TestScheduleInvariantProperty(t *testing.T) {
	f := func(hw, kSel, sSel uint8) bool {
		h := int(hw%20) + 8
		k := []int{1, 3, 5}[int(kSel)%3]
		s := []int{1, 2}[int(sSel)%2]
		if k == 1 && s == 2 {
			// 1x1 stride-2 convs skip pixels: fetch-once covers only the
			// sampled grid, which is correct but not C·H·W; skip.
			return true
		}
		pad := k / 2
		l := convLayer(2, h, h, 3, k, s, pad)
		p := PlaceO2IR(l, params.DefaultTimely(8))
		sch, err := BuildSchedule(p)
		if err != nil {
			return false
		}
		// With pad = k/2 and stride ≤ k the windows cover every pixel.
		return sch.FreshFetches() == 2*h*h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
