package mapping

import (
	"fmt"

	"repro/internal/model"
)

// The O2IR schedule generator materialises Fig. 7's dataflow cycle by
// cycle: which output positions a sub-chip produces each pipeline cycle,
// how many input pixels it fetches fresh from the L1 buffer, and how many
// arrive through X-subBuf shifts instead. Building the schedule proves the
// only-once-input-read invariant constructively — the total fresh fetches
// of a full layer equal exactly C·H·W (Table V) — rather than assuming the
// closed-form count.

// ScheduleCycle is one pipeline cycle of a scheduled conv layer.
type ScheduleCycle struct {
	// Cycle is the 0-based cycle index.
	Cycle int
	// OutCol is the output column x produced this cycle.
	OutCol int
	// OutRows lists the output rows produced simultaneously (the vertical
	// filter copies of O2IR principle 2).
	OutRows []int
	// Fresh is the number of input pixels fetched from L1 this cycle
	// (never seen before).
	Fresh int
	// Shifted is the number of reused pixels arriving via X-subBuf shifts
	// or held resident from earlier cycles.
	Shifted int
}

// Schedule is a full O2IR execution plan for one conv layer instance.
type Schedule struct {
	// Placement is the O2IR placement the schedule realises.
	Placement Placement
	// Cycles is the per-cycle plan, in issue order.
	Cycles []ScheduleCycle
	// TotalFresh is the total L1 fetches; the O2IR invariant makes it
	// exactly C·H·W for layers whose windows tile the input.
	TotalFresh int
	// TotalShifted is the total reused-pixel count.
	TotalShifted int
	// OutputsCovered counts produced (row, col) output positions (must be
	// E·F).
	OutputsCovered int
}

// BuildSchedule constructs the cycle-by-cycle O2IR schedule of a placed
// convolution. Only single-instance conv layers are schedulable (FC layers
// are one wave; split layers replicate this schedule per chunk).
func BuildSchedule(p Placement) (*Schedule, error) {
	l := p.Layer
	if l.Kind != model.KindConv {
		return nil, fmt.Errorf("mapping: schedule wants a conv layer, got %s", l.Kind)
	}
	if p.VerticalCopies < 1 {
		return nil, fmt.Errorf("mapping: placement has no vertical copies")
	}
	s := &Schedule{Placement: p}
	// seen marks pixels already fetched (shared across channels: all C
	// channels of a pixel fetch together, so we count per-pixel and
	// multiply by C).
	seen := make([]bool, l.H*l.W)
	r := p.VerticalCopies
	groups := (l.E + r - 1) / r
	cycle := 0
	for g := 0; g < groups; g++ {
		rowLo := g * r
		rowHi := rowLo + r
		if rowHi > l.E {
			rowHi = l.E
		}
		// Input row window covered by this output-row group.
		inRowLo := rowLo*l.S - l.Pad
		inRowHi := (rowHi-1)*l.S - l.Pad + l.Z
		for x := 0; x < l.F; x++ {
			inColLo := x*l.S - l.Pad
			inColHi := inColLo + l.G
			fresh, shifted := 0, 0
			for hy := inRowLo; hy < inRowHi; hy++ {
				if hy < 0 || hy >= l.H {
					continue
				}
				for wx := inColLo; wx < inColHi; wx++ {
					if wx < 0 || wx >= l.W {
						continue
					}
					if seen[hy*l.W+wx] {
						shifted++
					} else {
						seen[hy*l.W+wx] = true
						fresh++
					}
				}
			}
			outRows := make([]int, 0, rowHi-rowLo)
			for y := rowLo; y < rowHi; y++ {
				outRows = append(outRows, y)
			}
			s.Cycles = append(s.Cycles, ScheduleCycle{
				Cycle:   cycle,
				OutCol:  x,
				OutRows: outRows,
				Fresh:   fresh * l.C,
				Shifted: shifted * l.C,
			})
			s.TotalFresh += fresh * l.C
			s.TotalShifted += shifted * l.C
			s.OutputsCovered += len(outRows)
			cycle++
		}
	}
	return s, nil
}

// FreshFetches returns the schedule's L1 read count, the quantity Table V
// compares (equals l.Inputs() whenever the conv windows cover the input).
func (s *Schedule) FreshFetches() int { return s.TotalFresh }

// CycleCount returns the scheduled cycle count; it must equal the
// placement's CyclesPerImage for single-pass precision.
func (s *Schedule) CycleCount() int { return len(s.Cycles) }

// ReuseFactor returns shifted/(fresh+shifted): the fraction of operand
// deliveries served locally instead of from L1 (0 when the layer has no
// reuse).
func (s *Schedule) ReuseFactor() float64 {
	tot := s.TotalFresh + s.TotalShifted
	if tot == 0 {
		return 0
	}
	return float64(s.TotalShifted) / float64(tot)
}
