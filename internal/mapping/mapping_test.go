package mapping

import (
	"testing"

	"repro/internal/model"
	"repro/internal/params"
)

func cfg8() params.TimelyConfig { return params.DefaultTimely(8) }

func convLayer(c, h, w, d, k, s, pad int) model.Layer {
	b := model.NewBuilder("t", c, h, w)
	b.Conv("conv", d, k, s, pad)
	return b.Build().Layers[0]
}

func TestPlaceSmallConvFitsOneSubChip(t *testing.T) {
	// VGG conv1_1: rows = 3·3·3 = 27, cols = 64·2 = 128: trivially fits.
	l := convLayer(3, 224, 224, 64, 3, 1, 1)
	p := PlaceO2IR(l, cfg8())
	if p.SubChips != 1 || p.RowSplit != 1 || p.ColSplit != 1 {
		t.Errorf("conv1_1 placement = %+v, want single sub-chip", p)
	}
	if p.Rows != 27 {
		t.Errorf("rows = %d, want 27", p.Rows)
	}
	// Copies bounded by column capacity: 3072/128 = 24.
	if p.VerticalCopies != 24 {
		t.Errorf("vertical copies = %d, want 24 (column bound)", p.VerticalCopies)
	}
	// Cycles: ceil(224/24)·224 = 10·224.
	if want := int64(10 * 224); p.CyclesPerImage != want {
		t.Errorf("cycles = %d, want %d", p.CyclesPerImage, want)
	}
}

func TestPlaceVGGConv2RowBound(t *testing.T) {
	// VGG conv1_2: rows = 64·9 = 576, stride rows = 64·3 = 192.
	// Row bound: (4096−576)/192+1 = 19; col bound: 3072/128 = 24 → 19.
	l := convLayer(64, 224, 224, 64, 3, 1, 1)
	p := PlaceO2IR(l, cfg8())
	if p.VerticalCopies != 19 {
		t.Errorf("vertical copies = %d, want 19 (row bound)", p.VerticalCopies)
	}
	if p.CopyRowStride != 192 {
		t.Errorf("copy stride = %d, want 192", p.CopyRowStride)
	}
}

func TestPlaceDeepConvRowSplit(t *testing.T) {
	// VGG conv5-style: rows = 512·9 = 4608 > 4096 → RowSplit 2, no copies.
	l := convLayer(512, 14, 14, 512, 3, 1, 1)
	p := PlaceO2IR(l, cfg8())
	if p.RowSplit != 2 {
		t.Errorf("RowSplit = %d, want 2", p.RowSplit)
	}
	if p.VerticalCopies != 1 {
		t.Errorf("split layer must not duplicate, got %d copies", p.VerticalCopies)
	}
	if p.SubChips != 2 {
		t.Errorf("SubChips = %d, want 2", p.SubChips)
	}
}

func TestPlaceWideLayerColSplit(t *testing.T) {
	// 4096 filters × 2 cols = 8192 > 3072 → ColSplit 3 (VGG fc6-style width
	// on a conv shape).
	l := convLayer(8, 8, 8, 4096, 1, 1, 0)
	p := PlaceO2IR(l, cfg8())
	if p.ColSplit != 3 {
		t.Errorf("ColSplit = %d, want 3", p.ColSplit)
	}
}

func TestPlaceFC(t *testing.T) {
	b := model.NewBuilder("t", 512, 7, 7)
	b.FC("fc6", 4096)
	l := b.Build().Layers[0]
	p := PlaceO2IR(l, cfg8())
	// rows = 25088 → RowSplit ceil(25088/4096) = 7; cols = 8192 → 3.
	if p.RowSplit != 7 || p.ColSplit != 3 {
		t.Errorf("fc6 split = %dx%d, want 7x3", p.RowSplit, p.ColSplit)
	}
	if p.SubChips != 21 {
		t.Errorf("fc6 sub-chips = %d, want 21", p.SubChips)
	}
	if p.CyclesPerImage != 1 {
		t.Errorf("fc cycles = %d, want 1 (single pass)", p.CyclesPerImage)
	}
}

func TestPlace16BitDoublesColumnsAndPasses(t *testing.T) {
	l := convLayer(64, 56, 56, 64, 3, 1, 1)
	p8 := PlaceO2IR(l, params.DefaultTimely(8))
	p16 := PlaceO2IR(l, params.DefaultTimely(16))
	if p16.PhysColsPerWeight != 2*p8.PhysColsPerWeight {
		t.Errorf("16-bit cols/weight = %d, want 2x of %d", p16.PhysColsPerWeight, p8.PhysColsPerWeight)
	}
	if p16.CyclesPerImage <= p8.CyclesPerImage {
		t.Errorf("16-bit cycles (%d) must exceed 8-bit (%d): two input passes",
			p16.CyclesPerImage, p8.CyclesPerImage)
	}
}

func TestVerticalCopiesBoundedByE(t *testing.T) {
	// Tiny feature map: E = 4 bounds copies even with huge spare capacity.
	l := convLayer(3, 4, 4, 8, 1, 1, 0)
	p := PlaceO2IR(l, cfg8())
	if p.VerticalCopies != 4 {
		t.Errorf("copies = %d, want 4 (bounded by E)", p.VerticalCopies)
	}
}

func TestPlacePanicsOnPool(t *testing.T) {
	b := model.NewBuilder("t", 3, 8, 8)
	b.MaxPool(2, 2, 0)
	defer func() {
		if recover() == nil {
			t.Errorf("placing a pool layer did not panic")
		}
	}()
	PlaceO2IR(b.Build().Layers[0], cfg8())
}

func TestPlaceNetworkVGGD(t *testing.T) {
	net := model.VGG("D")
	ps := PlaceNetwork(net, cfg8())
	if len(ps) != 16 {
		t.Fatalf("VGG-D placements = %d, want 16", len(ps))
	}
	min := MinSubChips(ps)
	// One VGG-D instance must fit comfortably inside one 106-sub-chip chip.
	if min <= 16 || min > params.SubChipsPerChip {
		t.Errorf("VGG-D minimum sub-chips = %d, want in (16,106]", min)
	}
}

func TestCrossbarsUsed(t *testing.T) {
	l := convLayer(3, 224, 224, 64, 3, 1, 1)
	p := PlaceO2IR(l, cfg8())
	used := p.CrossbarsUsed(cfg8())
	if used < 1 || used > cfg8().CrossbarsPerSubChip() {
		t.Errorf("crossbars used = %d, want within one sub-chip", used)
	}
	// A split layer occupies whole sub-chips.
	deep := convLayer(512, 14, 14, 512, 3, 1, 1)
	pd := PlaceO2IR(deep, cfg8())
	if got := pd.CrossbarsUsed(cfg8()); got != 2*cfg8().CrossbarsPerSubChip() {
		t.Errorf("split crossbars used = %d, want 2 grids", got)
	}
}

func TestPlaceBaselinePrimeStyle(t *testing.T) {
	// PRIME: 256×256 mats, 8-bit weights on 4-bit cells (2 cols), 1 pass.
	l := convLayer(64, 224, 224, 64, 3, 1, 1)
	p := PlaceBaseline(l, 256, 2, 1)
	if p.RowChunks != 3 { // 576/256
		t.Errorf("RowChunks = %d, want 3", p.RowChunks)
	}
	if p.ColChunks != 1 { // 128/256
		t.Errorf("ColChunks = %d, want 1", p.ColChunks)
	}
	if p.WavesPerImage != 224*224 {
		t.Errorf("waves = %d, want %d", p.WavesPerImage, 224*224)
	}
}

func TestPlaceBaselineIsaacStyle(t *testing.T) {
	// ISAAC: 128×128, 16-bit weights over 2-bit cells (8 cols), 16 bit-
	// serial passes.
	l := convLayer(64, 224, 224, 64, 3, 1, 1)
	p := PlaceBaseline(l, 128, 8, 16)
	if p.RowChunks != 5 { // ceil(576/128)
		t.Errorf("RowChunks = %d, want 5", p.RowChunks)
	}
	if p.ColChunks != 4 { // 512/128
		t.Errorf("ColChunks = %d, want 4", p.ColChunks)
	}
	if p.WavesPerImage != 224*224*16 {
		t.Errorf("waves = %d, want %d", p.WavesPerImage, 224*224*16)
	}
}
