// Package mapping implements weight-to-crossbar placement: TIMELY's O2IR
// mapping method (§IV-D, Fig. 7) and the baseline row-major mapping PRIME
// and ISAAC use. A Placement captures how one layer occupies sub-chips (or
// crossbars) and how many pipeline cycles one mapped instance needs per
// image; Replicate distributes spare sub-chips across layers to balance the
// inter-sub-chip pipeline (§IV-E).
//
// O2IR's three principles appear as:
//
//  1. filters sharing inputs are mapped to the same crossbar rows in
//     parallel columns (captured by WeightCols = D weights side by side);
//  2. filters are duplicated down the array with a row offset equal to the
//     rows a vertical filter slide consumes, so one input pass yields
//     VerticalCopies output rows;
//  3. horizontal slides reuse inputs by shifting them between adjacent
//     X-subBufs (temporal: one output column per pipeline cycle).
package mapping

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/params"
)

// Placement describes how one layer instance occupies TIMELY sub-chips.
type Placement struct {
	Layer model.Layer
	// Rows is the dot-product depth C·Z·G (conv) or C·H·W (FC).
	Rows int
	// CopyRowStride is the extra row offset per additional vertical filter
	// copy: the C·G·S fresh im2col rows a vertical slide consumes.
	CopyRowStride int
	// PhysColsPerWeight is the bit-cell columns per weight (sub-ranging
	// only for the paper's accounting; signed schemes may double it).
	PhysColsPerWeight int
	// VerticalCopies r: output rows produced per input pass (O2IR #2).
	VerticalCopies int
	// RowSplit / ColSplit: sub-chips stacked to cover rows / filter columns.
	RowSplit, ColSplit int
	// SubChips is RowSplit × ColSplit, the sub-chips of one instance.
	SubChips int
	// CyclesPerImage is the pipeline-cycle count one instance needs to
	// produce the layer's outputs for one image (including input passes).
	CyclesPerImage int64
}

// PlaceO2IR places one weighted layer under the O2IR mapping. It panics on
// non-weighted layers (pool layers occupy no crossbars).
func PlaceO2IR(l model.Layer, cfg params.TimelyConfig) Placement {
	return place(l, cfg, cfg.ColumnsPerWeight())
}

// PlaceO2IRScheme places with an explicit physical columns-per-weight count
// (e.g. 2× for the differential signed scheme of the functional simulator).
func PlaceO2IRScheme(l model.Layer, cfg params.TimelyConfig, physColsPerWeight int) Placement {
	return place(l, cfg, physColsPerWeight)
}

func place(l model.Layer, cfg params.TimelyConfig, cpw int) Placement {
	if !l.IsWeighted() {
		panic(fmt.Sprintf("mapping: layer %s (%s) holds no weights", l.Name, l.Kind))
	}
	p := Placement{
		Layer:             l,
		Rows:              l.DotRows(),
		PhysColsPerWeight: cpw,
		VerticalCopies:    1,
	}
	rowCap, colCap := cfg.RowCapacity(), cfg.ColCapacity()
	wCols := l.D * cpw

	p.RowSplit = ceilDiv(p.Rows, rowCap)
	p.ColSplit = ceilDiv(wCols, colCap)

	if l.Kind == model.KindConv {
		p.CopyRowStride = l.C * l.G * l.S
		if p.RowSplit == 1 && p.ColSplit == 1 {
			// O2IR #2: duplicate filters down the spare rows and across the
			// spare columns; bounded by output height (no use copying past E).
			byRows := (rowCap-p.Rows)/p.CopyRowStride + 1
			byCols := colCap / wCols
			p.VerticalCopies = minInt(minInt(byRows, byCols), l.E)
			if p.VerticalCopies < 1 {
				p.VerticalCopies = 1
			}
		}
	}
	p.SubChips = p.RowSplit * p.ColSplit

	passes := int64(cfg.InputPasses())
	switch l.Kind {
	case model.KindConv:
		p.CyclesPerImage = int64(ceilDiv(l.E, p.VerticalCopies)) * int64(l.F) * passes
	case model.KindFC:
		p.CyclesPerImage = passes
	}
	return p
}

// CrossbarsUsed estimates the crossbars one instance actually occupies
// (weights + O2IR copies), for utilisation accounting.
func (p Placement) CrossbarsUsed(cfg params.TimelyConfig) int {
	rowsUsed := p.Rows + (p.VerticalCopies-1)*p.CopyRowStride
	colsUsed := p.VerticalCopies * p.Layer.D * p.PhysColsPerWeight
	perInstanceRows := ceilDiv(minInt(rowsUsed, cfg.RowCapacity()), cfg.B)
	perInstanceCols := ceilDiv(minInt(colsUsed, cfg.ColCapacity()), cfg.B)
	n := perInstanceRows * perInstanceCols
	if p.SubChips > 1 {
		// Split layers occupy full grids on all but the last chunk; keep the
		// conservative whole-sub-chip estimate.
		n = p.SubChips * cfg.CrossbarsPerSubChip()
	}
	return n
}

// PlaceNetwork places every weighted layer of a network.
func PlaceNetwork(n *model.Network, cfg params.TimelyConfig) []Placement {
	var out []Placement
	for _, l := range n.WeightedLayers() {
		out = append(out, PlaceO2IR(l, cfg))
	}
	return out
}

// MinSubChips sums the sub-chips required to hold one instance of every
// weighted layer.
func MinSubChips(ps []Placement) int {
	s := 0
	for _, p := range ps {
		s += p.SubChips
	}
	return s
}

// BaselinePlacement describes a layer mapped row-major onto B×B crossbars
// without O2IR (PRIME/ISAAC style): no duplication, inputs re-read on every
// slide.
type BaselinePlacement struct {
	Layer model.Layer
	// RowChunks is ⌈rows/B⌉: crossbars stacked per weight-column group.
	RowChunks int
	// ColChunks is ⌈D·cpw/B⌉ groups of weight columns.
	ColChunks int
	// Crossbars is RowChunks × ColChunks for one instance.
	Crossbars int
	// WavesPerImage is the dot-product waves per image (output positions ×
	// input passes; baselines convert every wave through DAC/ADC).
	WavesPerImage int64
}

// PlaceBaseline maps a layer row-major onto b×b crossbars with cpw physical
// columns per weight and the given number of input passes per wave.
func PlaceBaseline(l model.Layer, b, cpw, passes int) BaselinePlacement {
	if !l.IsWeighted() {
		panic(fmt.Sprintf("mapping: layer %s (%s) holds no weights", l.Name, l.Kind))
	}
	p := BaselinePlacement{
		Layer:     l,
		RowChunks: ceilDiv(l.DotRows(), b),
		ColChunks: ceilDiv(l.D*cpw, b),
	}
	p.Crossbars = p.RowChunks * p.ColChunks
	p.WavesPerImage = int64(l.E) * int64(l.F) * int64(passes)
	if l.Kind == model.KindFC {
		p.WavesPerImage = int64(passes)
	}
	return p
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		panic("mapping: non-positive divisor")
	}
	return (a + b - 1) / b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
