package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/analog"
	"repro/internal/energy"
	"repro/internal/params"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func randomConvCase(seed uint64, c, h, w, d, k int) (*tensor.Int, *tensor.Filter) {
	rng := stats.NewRNG(seed)
	in := tensor.NewInt(c, h, w)
	for i := range in.Data {
		in.Data[i] = int32(rng.Intn(256))
	}
	f := tensor.NewFilter(d, c, k, k)
	for i := range f.Data {
		f.Data[i] = int32(rng.Intn(255)) - 127
	}
	return in, f
}

// TestRunConvIdealIsExact: in ideal-interface mode (wide TDC, no noise) the
// full analog pipeline must be bit-exact against the integer reference.
func TestRunConvIdealIsExact(t *testing.T) {
	in, f := randomConvCase(1, 3, 6, 6, 4, 3)
	res, err := RunConv(IdealOptions(nil), in, f, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Conv2D(in, f, nil, 1, 1)
	if res.Out.Shape != want.Shape {
		t.Fatalf("shape %v, want %v", res.Out.Shape, want.Shape)
	}
	for i := range want.Data {
		if res.Out.Data[i] != want.Data[i] {
			t.Fatalf("psum[%d] = %d, want %d (scale shift %d)",
				i, res.Out.Data[i], want.Data[i], res.Mapped.ScaleShift)
		}
	}
}

func TestRunConvIdealExactProperty(t *testing.T) {
	f := func(seed uint64) bool {
		in, flt := randomConvCase(seed, 2, 5, 5, 3, 3)
		res, err := RunConv(IdealOptions(nil), in, flt, 1, 0, false)
		if err != nil {
			return false
		}
		want := tensor.Conv2D(in, flt, nil, 1, 0)
		for i := range want.Data {
			if res.Out.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestRunConv8BitErrorBounded: with the Table II 8-bit TDC, psum error must
// stay within the mapped layer's quantisation bound.
func TestRunConv8BitErrorBounded(t *testing.T) {
	in, f := randomConvCase(7, 3, 6, 6, 4, 3)
	res, err := RunConv(Options{}, in, f, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Conv2D(in, f, nil, 1, 1)
	bound := res.Mapped.QuantizationBound()
	if bound <= 0 {
		t.Fatalf("non-positive quantisation bound %v", bound)
	}
	for i := range want.Data {
		diff := math.Abs(float64(res.Out.Data[i] - want.Data[i]))
		if diff > bound {
			t.Fatalf("psum[%d] error %v exceeds bound %v", i, diff, bound)
		}
	}
}

func TestRunConvReLU(t *testing.T) {
	in, f := randomConvCase(3, 2, 4, 4, 2, 3)
	res, err := RunConv(IdealOptions(nil), in, f, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Out.Data {
		if v < 0 {
			t.Fatalf("ReLU output %d is negative: %d", i, v)
		}
	}
}

func TestRunFCIdealIsExact(t *testing.T) {
	rng := stats.NewRNG(5)
	in := tensor.NewInt(1, 1, 32)
	for i := range in.Data {
		in.Data[i] = int32(rng.Intn(256))
	}
	weights := make([][]int, 8)
	ref := make([][]int32, 8)
	for d := range weights {
		weights[d] = make([]int, 32)
		ref[d] = make([]int32, 32)
		for k := range weights[d] {
			v := rng.Intn(255) - 127
			weights[d][k] = v
			ref[d][k] = int32(v)
		}
	}
	got, _, err := RunFC(IdealOptions(nil), in, weights, false)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.FC(in, ref, nil)
	for d := range want {
		if got[d] != int(want[d]) {
			t.Fatalf("fc[%d] = %d, want %d", d, got[d], want[d])
		}
	}
}

// TestMultiCrossbarRowsExact: a dot product spanning several vertical
// crossbars exercises the P-subBuf / I-adder aggregation path.
func TestMultiCrossbarRowsExact(t *testing.T) {
	rng := stats.NewRNG(9)
	rows := 600 // > B=256: spans three grid rows
	in := tensor.NewInt(1, 1, rows)
	for i := range in.Data {
		in.Data[i] = int32(rng.Intn(256))
	}
	weights := [][]int{make([]int, rows)}
	ref := [][]int32{make([]int32, rows)}
	for k := 0; k < rows; k++ {
		v := rng.Intn(255) - 127
		weights[0][k] = v
		ref[0][k] = int32(v)
	}
	got, m, err := RunFC(IdealOptions(nil), in, weights, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.gridRowsUsed != 3 {
		t.Errorf("gridRowsUsed = %d, want 3", m.gridRowsUsed)
	}
	want := tensor.FC(in, ref, nil)
	if got[0] != int(want[0]) {
		t.Errorf("multi-crossbar fc = %d, want %d", got[0], want[0])
	}
}

// TestMultiGridColumnXSubBufPath: enough output channels to spill into a
// second grid column exercises the X-subBuf propagation path.
func TestMultiGridColumnXSubBufPath(t *testing.T) {
	rng := stats.NewRNG(13)
	d, rows := 80, 16 // 80 channels × 4 phys cols = 320 > 256
	in := tensor.NewInt(1, 1, rows)
	for i := range in.Data {
		in.Data[i] = int32(rng.Intn(256))
	}
	weights := make([][]int, d)
	ref := make([][]int32, d)
	for di := range weights {
		weights[di] = make([]int, rows)
		ref[di] = make([]int32, rows)
		for k := range weights[di] {
			v := rng.Intn(255) - 127
			weights[di][k] = v
			ref[di][k] = int32(v)
		}
	}
	led := energy.NewLedger(nil)
	got, m, err := RunFC(IdealOptions(led), in, weights, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.gridColsUsed != 2 {
		t.Fatalf("gridColsUsed = %d, want 2", m.gridColsUsed)
	}
	want := tensor.FC(in, ref, nil)
	for di := range want {
		if got[di] != int(want[di]) {
			t.Fatalf("fc[%d] = %d, want %d", di, got[di], want[di])
		}
	}
	if led.Count(energy.XSubBufOp) == 0 {
		t.Errorf("no X-subBuf hops counted despite two grid columns")
	}
}

func TestMapDenseErrors(t *testing.T) {
	s := NewSubChip(Options{})
	if _, err := s.MapDense(nil); err == nil {
		t.Errorf("empty matrix accepted")
	}
	if _, err := s.MapDense([][]int{{300}}); err == nil {
		t.Errorf("out-of-range weight accepted")
	}
	big := make([][]int, 1)
	big[0] = make([]int, params.DefaultTimely(8).RowCapacity()+1)
	if _, err := s.MapDense(big); err == nil {
		t.Errorf("over-capacity rows accepted")
	}
	ragged := [][]int{{1, 2}, {1}}
	if _, err := s.MapDense(ragged); err == nil {
		t.Errorf("ragged matrix accepted")
	}
}

func TestComputeInputLengthError(t *testing.T) {
	s := NewSubChip(Options{})
	m, err := s.MapDense([][]int{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Compute([]int{1}); err == nil {
		t.Errorf("short input vector accepted")
	}
}

// TestO2IRLedgerCounts verifies the O2IR access accounting of a conv layer:
// inputs read and converted exactly once, TDC/charging per column wave.
func TestO2IRLedgerCounts(t *testing.T) {
	led := energy.NewLedger(nil)
	in, f := randomConvCase(21, 2, 5, 5, 3, 3)
	res, err := RunConv(IdealOptions(led), in, f, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	nIn := float64(2 * 5 * 5)
	if got := led.Count(energy.L1Read); got != nIn {
		t.Errorf("L1 reads = %v, want %v (O2IR: once per input)", got, nIn)
	}
	if got := led.Count(energy.DTCConv); got != nIn {
		t.Errorf("DTC conversions = %v, want %v", got, nIn)
	}
	e, fdim := res.Out.Shape.H, res.Out.Shape.W
	waves := float64(e * fdim)
	physCols := float64(3 * 2 * 2) // D=3, 2 arms, 2 nibbles (8-bit weights)
	if got := led.Count(energy.TDCConv); got != waves*physCols {
		t.Errorf("TDC conversions = %v, want %v", got, waves*physCols)
	}
	if got := led.Count(energy.ChargingOp); got != waves*physCols {
		t.Errorf("charging ops = %v, want %v", got, waves*physCols)
	}
	if got := led.Count(energy.IAdderOp); got != waves*physCols {
		t.Errorf("I-adder ops = %v, want %v", got, waves*physCols)
	}
	// Horizontal shifts: G/S − 1 = 2 per input.
	if got := led.Count(energy.XSubBufOp); got != nIn*2 {
		t.Errorf("X-subBuf ops = %v, want %v (shift reuse)", got, nIn*2)
	}
	outN := float64(res.Out.Shape.Size())
	if got := led.Count(energy.L1Write); got != outN {
		t.Errorf("L1 writes = %v, want %v", got, outN)
	}
	if got := led.Count(energy.ReLUOp); got != outN {
		t.Errorf("ReLU ops = %v, want %v", got, outN)
	}
	if got := led.Count(energy.CrossbarOp); got != waves {
		t.Errorf("crossbar ops = %v, want %v (1 crossbar per wave)", got, waves)
	}
}

// TestNoiseErrorGrowsWithSigma: the psum RMS error must increase
// monotonically (within sampling tolerance) with the X-subBuf noise. The
// layer spans two grid columns (X-subBuf hops) and three grid rows
// (P-subBuf mirrors) so every noisy path is exercised.
func TestNoiseErrorGrowsWithSigma(t *testing.T) {
	rng := stats.NewRNG(31)
	rows, d := 600, 80
	in := tensor.NewInt(1, 1, rows)
	for i := range in.Data {
		in.Data[i] = int32(rng.Intn(256))
	}
	weights := make([][]int, d)
	ref := make([][]int32, d)
	for di := range weights {
		weights[di] = make([]int, rows)
		ref[di] = make([]int32, rows)
		for k := range weights[di] {
			v := rng.Intn(255) - 127
			weights[di][k] = v
			ref[di][k] = int32(v)
		}
	}
	want := tensor.FC(in, ref, nil)
	rms := func(xSigma, pSigma float64) float64 {
		noise := &analog.Noise{XSubBufSigma: xSigma, PSubBufRelSigma: pSigma,
			RNG: stats.NewRNG(77)}
		got, _, err := RunFC(Options{Noise: noise, InterfaceBits: 24}, in, weights, false)
		if err != nil {
			t.Fatal(err)
		}
		errs := make([]float64, len(want))
		for i := range want {
			errs[i] = float64(got[i] - int(want[i]))
		}
		return stats.RMS(errs)
	}
	e0 := rms(0, 0)
	e1 := rms(20, 0.002)
	e2 := rms(200, 0.02)
	if e1 <= e0 {
		t.Errorf("rms(20ps)=%v not above rms(0)=%v", e1, e0)
	}
	if e2 <= e1 {
		t.Errorf("rms(200ps)=%v not above rms(20ps)=%v", e2, e1)
	}
}

// TestDeviceVariationShiftsPsums: programmed conductance variation perturbs
// results but preserves zero-input behaviour.
func TestDeviceVariationShiftsPsums(t *testing.T) {
	noise := &analog.Noise{RNG: stats.NewRNG(55)}
	s := NewSubChip(Options{Noise: noise, InterfaceBits: 24})
	m, err := s.MapDense([][]int{{10, -20, 30, 40}})
	if err != nil {
		t.Fatal(err)
	}
	s.ApplyDeviceVariation(0.05)
	zero, err := m.Compute([]int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if zero[0] != 0 {
		t.Errorf("zero input gave psum %d", zero[0])
	}
	got, err := m.Compute([]int{100, 100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * (10 - 20 + 30 + 40)
	if got[0] == want {
		t.Logf("variation left psum unchanged (possible but unlikely)")
	}
	if math.Abs(float64(got[0]-want)) > 0.2*math.Abs(float64(want))+float64(int64(4)<<m.ScaleShift) {
		t.Errorf("5%% variation moved psum %d -> %d: too far", want, got[0])
	}
}

// TestIRDropShrinksPsums: wire-resistance attenuation must reduce psum
// magnitudes monotonically with the coefficient.
func TestIRDropShrinksPsums(t *testing.T) {
	rows := 300 // spans two grid rows so row position matters
	weights := [][]int{make([]int, rows)}
	inputs := make([]int, rows)
	for i := 0; i < rows; i++ {
		weights[0][i] = 100
		inputs[i] = 200
	}
	psumAt := func(alpha float64) int {
		s := NewSubChip(Options{InterfaceBits: 24})
		s.ApplyIRDrop(alpha)
		m, err := s.MapDense(weights)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Compute(inputs)
		if err != nil {
			t.Fatal(err)
		}
		return got[0]
	}
	ideal := psumAt(0)
	if want := 300 * 100 * 200; ideal != want {
		t.Fatalf("ideal psum = %d, want %d", ideal, want)
	}
	mild := psumAt(0.1)
	harsh := psumAt(0.5)
	if !(harsh < mild && mild < ideal) {
		t.Errorf("IR drop not monotone: ideal %d, mild %d, harsh %d", ideal, mild, harsh)
	}
}

// Test16BitWeightsExact: the 16-bit configuration (4 nibble columns per
// weight arm) must stay bit-exact in ideal-interface mode.
func Test16BitWeightsExact(t *testing.T) {
	rng := stats.NewRNG(23)
	cfg := params.DefaultTimely(16)
	s := NewSubChip(Options{Config: cfg, InterfaceBits: 30})
	rows, d := 24, 5
	weights := make([][]int, d)
	for di := range weights {
		weights[di] = make([]int, rows)
		for k := range weights[di] {
			weights[di][k] = rng.Intn(65535) - 32767
		}
	}
	m, err := s.MapDense(weights)
	if err != nil {
		t.Fatal(err)
	}
	if m.colsPerArm != 4 {
		t.Fatalf("16-bit colsPerArm = %d, want 4", m.colsPerArm)
	}
	inputs := make([]int, rows)
	for i := range inputs {
		inputs[i] = rng.Intn(256)
	}
	got, err := m.Compute(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for di := range weights {
		want := 0
		for k := range inputs {
			want += inputs[k] * weights[di][k]
		}
		if got[di] != want {
			t.Errorf("16-bit psum[%d] = %d, want %d", di, got[di], want)
		}
	}
}

func TestScaleShiftChoice(t *testing.T) {
	// A heavy column (all max weights) must force a large enough scale that
	// full-scale inputs do not saturate.
	s := NewSubChip(Options{})
	rows := 64
	w := make([][]int, 1)
	w[0] = make([]int, rows)
	for i := range w[0] {
		w[0][i] = 127
	}
	m, err := s.MapDense(w)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]int, rows)
	for i := range inputs {
		inputs[i] = 255
	}
	got, err := m.Compute(inputs)
	if err != nil {
		t.Fatal(err)
	}
	want := 255 * 127 * rows
	if math.Abs(float64(got[0]-want)) > m.QuantizationBound() {
		t.Errorf("full-scale psum = %d, want %d ± %v", got[0], want, m.QuantizationBound())
	}
}
