// Package core is the functional model of the paper's primary contribution:
// a TIMELY sub-chip executing convolutions and fully-connected layers
// through the complete analog time-domain path of Fig. 6 — DTC conversion,
// X-subBuf input propagation, ReRAM crossbar dot products, P-subBuf current
// mirroring, I-adder aggregation across the vertical crossbar stack, the
// two-phase charging + comparator stage (Eq. 2), TDC quantisation and the
// digital shift-and-add recombination — while writing every operation into
// the energy ledger with O2IR access counting (each input read and converted
// exactly once).
//
// The functional executor is validated two ways: in ideal-interface mode
// (wide TDC, no noise) it is bit-exact against the integer reference of
// package tensor; in the 8-bit Table II mode its quantisation error is
// bounded by the per-layer scale, and the accuracy experiment measures the
// end-to-end effect together with injected circuit noise.
package core

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/analog"
	"repro/internal/energy"
	"repro/internal/params"
	"repro/internal/reram"
)

// Options configure a functional sub-chip.
type Options struct {
	// Config selects the architecture geometry and precision.
	Config params.TimelyConfig
	// Noise injects circuit errors; nil is ideal.
	Noise *analog.Noise
	// Ledger receives operation counts; nil disables accounting.
	Ledger *energy.Ledger
	// InterfaceBits overrides the DTC/TDC resolution for the *psum* path
	// (0 keeps the Table II 8 bits). Widening it to ≥ 20 gives the
	// ideal-interface verification mode.
	InterfaceBits int
	// InputHops prepends a cascade of X-subBuf copies to every input before
	// it reaches the first crossbar, modelling a layer mapped at the far end
	// of the horizontal buffer chain (§V limits this cascade to 12; the
	// accuracy study evaluates the worst case).
	InputHops int
}

// SubChip is the functional model of one TIMELY sub-chip.
type SubChip struct {
	cfg       params.TimelyConfig
	noise     *analog.Noise
	ledger    *energy.Ledger
	ifBits    int
	inputHops int

	grid []*reram.Crossbar // GridRows × GridCols, row-major
	dtc  analog.DTC
	tdc  analog.TDC
	xbuf analog.XSubBuf
	pbuf analog.PSubBuf
	iadd analog.IAdder
}

// NewSubChip builds an erased sub-chip.
func NewSubChip(opt Options) *SubChip {
	cfg := opt.Config
	if cfg.B == 0 {
		cfg = params.DefaultTimely(8)
	}
	ifBits := opt.InterfaceBits
	if ifBits == 0 {
		ifBits = params.DTCBits
	}
	s := &SubChip{
		cfg:       cfg,
		noise:     opt.Noise,
		ledger:    opt.Ledger,
		ifBits:    ifBits,
		inputHops: opt.InputHops,
		grid:      make([]*reram.Crossbar, cfg.GridRows*cfg.GridCols),
		dtc:       analog.DTC{Bits: params.DTCBits, TDel: params.TDel},
		tdc:       analog.TDC{Bits: ifBits, TDel: params.TDel},
	}
	for i := range s.grid {
		s.grid[i] = reram.New(cfg.B, cfg.CellBits)
	}
	return s
}

// Config returns the sub-chip's architecture configuration.
func (s *SubChip) Config() params.TimelyConfig { return s.cfg }

// Crossbar returns the array at grid position (row, col).
func (s *SubChip) Crossbar(row, col int) *reram.Crossbar {
	return s.grid[row*s.cfg.GridCols+col]
}

// ApplyDeviceVariation draws per-cell conductance errors on every crossbar.
func (s *SubChip) ApplyDeviceVariation(sigma float64) {
	if s.noise == nil || s.noise.RNG == nil {
		return
	}
	for _, x := range s.grid {
		x.ApplyVariation(sigma, s.noise.RNG)
	}
}

// ApplyIRDrop configures wire-resistance attenuation on every crossbar
// (see reram.SetIRDrop). Apply before MapDense so the per-layer scale is
// chosen against the attenuated conductances seen at compute time.
func (s *SubChip) ApplyIRDrop(alpha float64) {
	for _, x := range s.grid {
		x.SetIRDrop(alpha)
	}
}

// InjectFaults pins a fraction of every crossbar's cells as stuck-at faults
// (half SA0, half SA1). Call before MapDense: stuck cells ignore later
// programming, and MapDense reads the array back so its per-layer scale
// covers the faulted conductances. Requires a noise RNG.
func (s *SubChip) InjectFaults(rate float64) (reram.FaultMap, error) {
	if s.noise == nil || s.noise.RNG == nil {
		return reram.FaultMap{}, fmt.Errorf("core: fault injection needs Options.Noise with an RNG")
	}
	var total reram.FaultMap
	for _, x := range s.grid {
		fm, err := x.InjectStuckFaults(rate, s.noise.RNG)
		if err != nil {
			return reram.FaultMap{}, err
		}
		total.SA0 += fm.SA0
		total.SA1 += fm.SA1
	}
	return total, nil
}

func (s *SubChip) add(c energy.Component, cl energy.Class, n float64) {
	if s.ledger != nil {
		s.ledger.Add(c, cl, n)
	}
}

// armsPerWeight is the differential signed scheme's column-group factor.
const armsPerWeight = 2

// MappedLayer is one weighted layer programmed onto a sub-chip with the
// differential signed scheme: each output channel owns two sub-ranged column
// groups (positive and negative magnitudes).
type MappedLayer struct {
	sc *SubChip
	// Rows is the dot-product depth.
	Rows int
	// D is the output channel count.
	D int
	// ScaleShift is the per-layer power-of-two scale k: one TDC LSB
	// represents 2^k dot units (the per-layer Rmin choice of §IV-C).
	ScaleShift int
	// gridRowsUsed / gridColsUsed: the crossbar grid extent in use.
	gridRowsUsed, gridColsUsed int
	// colsPerArm is the nibble-column count of one magnitude group.
	colsPerArm int
}

// physColsPerWeight returns the physical bit-cell columns one weight
// occupies under the differential scheme.
func (m *MappedLayer) physColsPerWeight() int { return armsPerWeight * m.colsPerArm }

// MapDense programs a dense weight matrix weights[d][r] (signed codes of
// cfg.WeightBits width) onto the sub-chip. rows = len(weights[0]) must fit
// the sub-chip's row capacity and D·2·colsPerArm its column capacity.
func (s *SubChip) MapDense(weights [][]int) (*MappedLayer, error) {
	if len(weights) == 0 || len(weights[0]) == 0 {
		return nil, fmt.Errorf("core: empty weight matrix")
	}
	d, rows := len(weights), len(weights[0])
	cfg := s.cfg
	if rows > cfg.RowCapacity() {
		return nil, fmt.Errorf("core: %d rows exceed sub-chip capacity %d", rows, cfg.RowCapacity())
	}
	colsPerArm := cfg.ColumnsPerWeight()
	physCols := d * armsPerWeight * colsPerArm
	if physCols > cfg.ColCapacity() {
		return nil, fmt.Errorf("core: %d physical columns exceed capacity %d", physCols, cfg.ColCapacity())
	}
	lim := int(1) << (cfg.WeightBits - 1)
	m := &MappedLayer{
		sc:           s,
		Rows:         rows,
		D:            d,
		colsPerArm:   colsPerArm,
		gridRowsUsed: (rows + cfg.B - 1) / cfg.B,
		gridColsUsed: (physCols + cfg.B - 1) / cfg.B,
	}
	// Program cells and track the worst-case per-column level sum for the
	// per-layer scale choice.
	maxColSum := 0
	colSums := make(map[int]int)
	for di, wrow := range weights {
		if len(wrow) != rows {
			return nil, fmt.Errorf("core: ragged weight matrix at channel %d", di)
		}
		for r, w := range wrow {
			if w < -lim || w >= lim {
				return nil, fmt.Errorf("core: weight %d out of %d-bit range", w, cfg.WeightBits)
			}
			mag, arm := w, 0
			if w < 0 {
				mag, arm = -w, 1
			}
			for nib := 0; nib < colsPerArm; nib++ {
				shift := uint(cfg.CellBits * (colsPerArm - 1 - nib))
				level := uint8(mag >> shift & (int(1)<<cfg.CellBits - 1))
				gcol := m.globalCol(di, arm, nib)
				gr, lr := r/cfg.B, r%cfg.B
				gc, lc := gcol/cfg.B, gcol%cfg.B
				if err := s.Crossbar(gr, gc).Program(lr, lc, level); err != nil {
					return nil, err
				}
				// Read the actual level back: stuck-at cells keep their
				// pinned value, and the per-layer scale must cover it.
				actual := s.Crossbar(gr, gc).Level(lr, lc)
				if actual > 0 {
					colSums[gcol] += int(actual)
					if colSums[gcol] > maxColSum {
						maxColSum = colSums[gcol]
					}
				}
			}
		}
	}
	// Per-layer scale: the largest column dot is 255·maxColSum (full-scale
	// inputs into the heaviest column); one TDC LSB covers 2^k dot units so
	// the charging unit never saturates.
	maxCode := int(1)<<s.ifBits - 1
	m.ScaleShift = 0
	if maxColSum > 0 {
		worst := 255 * maxColSum
		for worst > maxCode<<m.ScaleShift {
			m.ScaleShift++
		}
	}
	return m, nil
}

func (m *MappedLayer) globalCol(d, arm, nib int) int {
	return (d*armsPerWeight+arm)*m.colsPerArm + nib
}

// Compute runs one dot-product wave: the input codes (one per row,
// 0..255) flow through the full analog path and the method returns the D
// signed psums in dot units (already rescaled by 2^ScaleShift). Accounting
// covers the wave's crossbar, buffer, charging, TDC, I-adder and shift-add
// operations; input-side L1/DTC costs are counted by the layer executors,
// which own the O2IR reuse schedule.
func (m *MappedLayer) Compute(inputs []int) ([]int, error) {
	s := m.sc
	cfg := s.cfg
	if len(inputs) != m.Rows {
		return nil, fmt.Errorf("core: %d inputs for %d mapped rows", len(inputs), m.Rows)
	}
	// DTC conversion of the input vector (per-row times). Energy for these
	// conversions is attributed by the caller (O2IR converts once per input,
	// not once per wave).
	times := make([]float64, len(inputs))
	for i, code := range inputs {
		t, err := s.dtc.Convert(code, s.noise)
		if err != nil {
			return nil, err
		}
		times[i] = s.xbuf.PropagateChain(t, s.inputHops, s.noise)
	}
	if s.inputHops > 0 {
		s.add(energy.XSubBufOp, energy.ClassInput, float64(s.inputHops*len(inputs)))
	}
	// Propagate the times across the grid columns through X-subBufs.
	// timesAt[gc] holds the signal as seen by grid column gc; column 0 sees
	// the DTC outputs directly (Fig. 6(a)).
	timesAt := make([][]float64, m.gridColsUsed)
	timesAt[0] = times
	for gc := 1; gc < m.gridColsUsed; gc++ {
		prev := timesAt[gc-1]
		next := make([]float64, len(prev))
		for i, t := range prev {
			next[i] = s.xbuf.Propagate(t, s.noise)
		}
		timesAt[gc] = next
		s.add(energy.XSubBufOp, energy.ClassInput, float64(len(prev)))
	}
	s.add(energy.CrossbarOp, energy.ClassCompute, float64(m.gridRowsUsed*m.gridColsUsed))

	cu := analog.ChargingUnit{
		FullScale: float64(int(1)<<s.ifBits-1) * float64(int64(1)<<m.ScaleShift),
		CapRatio:  1,
		TDel:      params.TDel,
		Bits:      s.ifBits,
	}
	psums := make([]int, m.D)
	for d := 0; d < m.D; d++ {
		acc := 0
		for arm := 0; arm < armsPerWeight; arm++ {
			armDot := 0
			for nib := 0; nib < m.colsPerArm; nib++ {
				gcol := m.globalCol(d, arm, nib)
				gc, lc := gcol/cfg.B, gcol%cfg.B
				// Gather the column current from every vertical crossbar,
				// each through its own P-subBuf mirror (§V: not cascaded;
				// the bottom crossbar feeds the I-adder directly).
				contribs := make([]float64, 0, m.gridRowsUsed)
				for gr := 0; gr < m.gridRowsUsed; gr++ {
					lo := gr * cfg.B
					hi := lo + cfg.B
					if hi > len(timesAt[gc]) {
						hi = len(timesAt[gc])
					}
					if lo >= hi {
						break
					}
					dot := s.Crossbar(gr, gc).ColumnDot(timesAt[gc][lo:hi], lc, params.TDel)
					if gr < m.gridRowsUsed-1 {
						dot = s.pbuf.Mirror(dot, s.noise)
					}
					contribs = append(contribs, dot)
				}
				if n := m.gridRowsUsed - 1; n > 0 {
					s.add(energy.PSubBufOp, energy.ClassPsum, float64(n))
				}
				total := s.iadd.Sum(contribs...)
				s.add(energy.IAdderOp, energy.ClassPsum, 1)
				code := s.tdc.Convert(cu.Output(total, s.noise), s.noise)
				s.add(energy.ChargingOp, energy.ClassPsum, 1)
				s.add(energy.TDCConv, energy.ClassPsum, 1)
				armDot = armDot<<uint(cfg.CellBits) + code
			}
			if arm == 0 {
				acc += armDot
			} else {
				acc -= armDot
			}
		}
		psums[d] = acc << uint(m.ScaleShift)
		// Digital recombination: one shift-and-add per column sample.
		s.add(energy.ShiftAddOp, energy.ClassDigital, float64(m.physColsPerWeight()))
	}
	return psums, nil
}

// QuantizationBound returns the worst-case absolute psum error of one wave
// from TDC rounding alone (noise-free): each of the 2·colsPerArm column
// codes rounds within ±½ LSB of 2^ScaleShift dot units, weighted by its
// nibble significance.
func (m *MappedLayer) QuantizationBound() float64 {
	weightSum := 0.0
	for nib := 0; nib < m.colsPerArm; nib++ {
		weightSum += math.Pow(2, float64(m.sc.cfg.CellBits*(m.colsPerArm-1-nib)))
	}
	return float64(armsPerWeight) * weightSum * 0.5 * float64(int64(1)<<m.ScaleShift)
}

// ScaleBits reports how many low bits of a psum are below the quantisation
// floor (useful for choosing requantisation shifts).
func (m *MappedLayer) ScaleBits() int {
	return m.ScaleShift + bits.Len(uint(armsPerWeight*m.colsPerArm)) - 1
}
