// Package core is the functional model of the paper's primary contribution:
// a TIMELY sub-chip executing convolutions and fully-connected layers
// through the complete analog time-domain path of Fig. 6 — DTC conversion,
// X-subBuf input propagation, ReRAM crossbar dot products, P-subBuf current
// mirroring, I-adder aggregation across the vertical crossbar stack, the
// two-phase charging + comparator stage (Eq. 2), TDC quantisation and the
// digital shift-and-add recombination — while writing every operation into
// the energy ledger with O2IR access counting (each input read and converted
// exactly once).
//
// The functional executor is validated two ways: in ideal-interface mode
// (wide TDC, no noise) it is bit-exact against the integer reference of
// package tensor; in the 8-bit Table II mode its quantisation error is
// bounded by the per-layer scale, and the accuracy experiment measures the
// end-to-end effect together with injected circuit noise.
//
// Hot-path organisation: crossbars are materialised lazily (a mapped layer
// touches a handful of the 16×12 grid), every wave reuses a per-sub-chip
// scratch arena instead of allocating, and the crossbar dot products go
// through the flat-conductance kernels of package reram. When the noise
// configuration is deterministic, ForwardBatch additionally batches whole
// input blocks through the matrix–matrix kernel; with randomness configured
// it falls back to strictly ordered per-wave execution so RNG draw sequences
// (and therefore artifact bytes) are identical to repeated Compute calls.
// Sub-chips are not safe for concurrent use.
package core

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/analog"
	"repro/internal/energy"
	"repro/internal/params"
	"repro/internal/reram"
	"repro/internal/stats"
)

// Options configure a functional sub-chip.
type Options struct {
	// Config selects the architecture geometry and precision.
	Config params.TimelyConfig
	// Noise injects circuit errors; nil is ideal.
	Noise *analog.Noise
	// Ledger receives operation counts; nil disables accounting.
	Ledger *energy.Ledger
	// InterfaceBits overrides the DTC/TDC resolution for the *psum* path
	// (0 keeps the Table II 8 bits). Widening it to ≥ 20 gives the
	// ideal-interface verification mode.
	InterfaceBits int
	// InputHops prepends a cascade of X-subBuf copies to every input before
	// it reaches the first crossbar, modelling a layer mapped at the far end
	// of the horizontal buffer chain (§V limits this cascade to 12; the
	// accuracy study evaluates the worst case).
	InputHops int
}

// pendingInject records a fault-injection pass deferred on a
// not-yet-materialised crossbar: the fault map was already counted against
// the live RNG, and rng is a clone snapshotted before the count so
// materialisation replays the identical faults. Under the counter-based v3
// regime the snapshot is the slot's own keyed substream at block 0 rather
// than a point on the shared serial stream — replay is then independent of
// the order in which other slots were counted or materialised.
type pendingInject struct {
	rate float64
	rng  *stats.RNG
}

// Substream lanes of the v3 counter-based regime (see stats.Substream):
// lane 0 — the main stream — carries the strictly-ordered noise draws of
// the compute path; stuck-at fault injection and device variation each own
// a lane whose index keys (pass, grid slot), so per-crossbar draws are
// independent of slot iteration and materialisation order.
const (
	laneFaults    = 1
	laneVariation = 2
)

// arena is the per-sub-chip scratch reused across waves: DTC time ladders,
// pre-scaled inputs, per-crossbar column dots, I-adder contributions and the
// layer executors' im2col/psum staging. Buffers only grow; a steady-state
// wave allocates nothing.
type arena struct {
	timesAt  []float64
	scaled   []float64
	colDots  []float64
	contribs []float64
	inputs   []int
	psums    []int
}

// growF resizes buf to n float64s, reallocating only on capacity growth.
// Contents are unspecified; callers overwrite every element they read.
func growF(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growInt is growF for int slices.
func growInt(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// SubChip is the functional model of one TIMELY sub-chip.
type SubChip struct {
	cfg       params.TimelyConfig
	noise     *analog.Noise
	ledger    *energy.Ledger
	ifBits    int
	inputHops int

	// grid holds GridRows × GridCols crossbar slots, row-major; slots stay
	// nil until first touched (most layers use a small corner of the grid).
	grid []*reram.Crossbar
	// irDrop is applied to every crossbar at materialisation.
	irDrop float64
	// pending holds deferred fault injections per slot (nil when none).
	pending [][]pendingInject
	// faultPasses / variationPasses count the completed InjectFaults /
	// ApplyDeviceVariation passes, so repeated passes under the v3 regime
	// key fresh substreams instead of replaying the previous pass's draws.
	faultPasses, variationPasses int

	dtc  analog.DTC
	tdc  analog.TDC
	xbuf analog.XSubBuf
	pbuf analog.PSubBuf
	iadd analog.IAdder

	ar arena
}

// NewSubChip builds an erased sub-chip.
func NewSubChip(opt Options) *SubChip {
	cfg := opt.Config
	if cfg.B == 0 {
		cfg = params.DefaultTimely(8)
	}
	ifBits := opt.InterfaceBits
	if ifBits == 0 {
		ifBits = params.DTCBits
	}
	return &SubChip{
		cfg:       cfg,
		noise:     opt.Noise,
		ledger:    opt.Ledger,
		ifBits:    ifBits,
		inputHops: opt.InputHops,
		grid:      make([]*reram.Crossbar, cfg.GridRows*cfg.GridCols),
		dtc:       analog.DTC{Bits: params.DTCBits, TDel: params.TDel},
		tdc:       analog.TDC{Bits: ifBits, TDel: params.TDel},
	}
}

// Config returns the sub-chip's architecture configuration.
func (s *SubChip) Config() params.TimelyConfig { return s.cfg }

// xbar returns the crossbar in grid slot i, materialising it on first touch
// (IR-drop configuration applied, deferred fault injections replayed from
// their RNG snapshots).
func (s *SubChip) xbar(i int) *reram.Crossbar {
	if x := s.grid[i]; x != nil {
		return x
	}
	x := reram.New(s.cfg.B, s.cfg.CellBits)
	if s.irDrop != 0 {
		x.SetIRDrop(s.irDrop)
	}
	if s.pending != nil {
		for _, p := range s.pending[i] {
			if _, err := x.InjectStuckFaults(p.rate, p.rng); err != nil {
				// The rate was validated when the injection was counted.
				panic(err)
			}
		}
		s.pending[i] = nil
	}
	s.grid[i] = x
	return x
}

// Crossbar returns the array at grid position (row, col).
func (s *SubChip) Crossbar(row, col int) *reram.Crossbar {
	return s.xbar(row*s.cfg.GridCols + col)
}

// ApplyDeviceVariation draws per-cell conductance errors on every crossbar.
// Under the v3 counter-based regime each grid slot draws from its own keyed
// substream (laneVariation, pass·slots+slot); under v1/v2 the slots consume
// the shared serial stream in slot order, as they always have.
func (s *SubChip) ApplyDeviceVariation(sigma float64) {
	if s.noise == nil || s.noise.RNG == nil {
		return
	}
	rng := s.noise.RNG
	if rng.Sampler() == stats.SamplerV3 {
		pass := s.variationPasses
		s.variationPasses++
		for i := range s.grid {
			s.xbar(i).ApplyVariation(sigma, rng.Substream(laneVariation, uint32(pass*len(s.grid)+i)))
		}
		return
	}
	for i := range s.grid {
		s.xbar(i).ApplyVariation(sigma, rng)
	}
}

// ApplyIRDrop configures wire-resistance attenuation on every crossbar
// (see reram.SetIRDrop). Apply before MapDense so the per-layer scale is
// chosen against the attenuated conductances seen at compute time.
func (s *SubChip) ApplyIRDrop(alpha float64) {
	s.irDrop = alpha
	for _, x := range s.grid {
		if x != nil {
			x.SetIRDrop(alpha)
		}
	}
}

// InjectFaults pins a fraction of every crossbar's cells as stuck-at faults
// (half SA0, half SA1). Call before MapDense: stuck cells ignore later
// programming, and MapDense reads the array back so its per-layer scale
// covers the faulted conductances. Requires a noise RNG.
//
// Crossbars not yet materialised only have their faults counted here — the
// identical random sequence is consumed either way — and the physical
// injection is replayed from an RNG snapshot if the crossbar is touched
// later, so the returned fault map and all downstream results match an
// eager injection exactly. The count/replay contract holds under every
// sampling regime: the RNG snapshot carries its regime, and
// reram.CountStuckFaults consumes exactly the stream InjectStuckFaults
// replays — O(cells) per crossbar under v1, one binomial count draw plus
// O(faults) position/polarity draws under v2/v3 (the sublinear
// defect-sweep hot path).
//
// The regimes differ in where the draws come from. Under v1/v2 every slot
// consumes the shared serial noise stream in slot order, so the snapshot is
// a point on that stream. Under the counter-based v3 regime each slot owns
// the keyed substream (laneFaults, pass·slots+slot) of the study's
// (seed, trial) coordinates: no slot's draws depend on any other slot's,
// the main noise stream is not advanced at all, and the realised fault map
// of any crossbar is computable independently — the property that makes
// trial-parallel runs byte-stable at any worker count.
func (s *SubChip) InjectFaults(rate float64) (reram.FaultMap, error) {
	if s.noise == nil || s.noise.RNG == nil {
		return reram.FaultMap{}, fmt.Errorf("core: fault injection needs Options.Noise with an RNG")
	}
	rng := s.noise.RNG
	slotRNG := func(i int) *stats.RNG { return rng }
	if rng.Sampler() == stats.SamplerV3 {
		pass := s.faultPasses
		slotRNG = func(i int) *stats.RNG {
			return rng.Substream(laneFaults, uint32(pass*len(s.grid)+i))
		}
	}
	var total reram.FaultMap
	cells := s.cfg.B * s.cfg.B
	for i := range s.grid {
		var fm reram.FaultMap
		var err error
		r := slotRNG(i)
		if s.grid[i] != nil {
			fm, err = s.grid[i].InjectStuckFaults(rate, r)
		} else {
			snap := r.Clone()
			fm, err = reram.CountStuckFaults(cells, rate, r)
			if err == nil {
				if s.pending == nil {
					s.pending = make([][]pendingInject, len(s.grid))
				}
				s.pending[i] = append(s.pending[i], pendingInject{rate: rate, rng: snap})
			}
		}
		if err != nil {
			return reram.FaultMap{}, err
		}
		total.SA0 += fm.SA0
		total.SA1 += fm.SA1
	}
	s.faultPasses++
	return total, nil
}

func (s *SubChip) add(c energy.Component, cl energy.Class, n float64) {
	if s.ledger != nil {
		s.ledger.Add(c, cl, n)
	}
}

// armsPerWeight is the differential signed scheme's column-group factor.
const armsPerWeight = 2

// MappedLayer is one weighted layer programmed onto a sub-chip with the
// differential signed scheme: each output channel owns two sub-ranged column
// groups (positive and negative magnitudes).
type MappedLayer struct {
	sc *SubChip
	// Rows is the dot-product depth.
	Rows int
	// D is the output channel count.
	D int
	// ScaleShift is the per-layer power-of-two scale k: one TDC LSB
	// represents 2^k dot units (the per-layer Rmin choice of §IV-C).
	ScaleShift int
	// gridRowsUsed / gridColsUsed: the crossbar grid extent in use.
	gridRowsUsed, gridColsUsed int
	// colsPerArm is the nibble-column count of one magnitude group.
	colsPerArm int
	// physCols is the total bit-cell column count (D·2·colsPerArm).
	physCols int
}

// physColsPerWeight returns the physical bit-cell columns one weight
// occupies under the differential scheme.
func (m *MappedLayer) physColsPerWeight() int { return armsPerWeight * m.colsPerArm }

// MapDense programs a dense weight matrix weights[d][r] (signed codes of
// cfg.WeightBits width) onto the sub-chip. rows = len(weights[0]) must fit
// the sub-chip's row capacity and D·2·colsPerArm its column capacity.
func (s *SubChip) MapDense(weights [][]int) (*MappedLayer, error) {
	if len(weights) == 0 || len(weights[0]) == 0 {
		return nil, fmt.Errorf("core: empty weight matrix")
	}
	d, rows := len(weights), len(weights[0])
	cfg := s.cfg
	if rows > cfg.RowCapacity() {
		return nil, fmt.Errorf("core: %d rows exceed sub-chip capacity %d", rows, cfg.RowCapacity())
	}
	colsPerArm := cfg.ColumnsPerWeight()
	physCols := d * armsPerWeight * colsPerArm
	if physCols > cfg.ColCapacity() {
		return nil, fmt.Errorf("core: %d physical columns exceed capacity %d", physCols, cfg.ColCapacity())
	}
	lim := int(1) << (cfg.WeightBits - 1)
	m := &MappedLayer{
		sc:           s,
		Rows:         rows,
		D:            d,
		colsPerArm:   colsPerArm,
		physCols:     physCols,
		gridRowsUsed: (rows + cfg.B - 1) / cfg.B,
		gridColsUsed: (physCols + cfg.B - 1) / cfg.B,
	}
	// Program cells and track the worst-case per-column level sum for the
	// per-layer scale choice.
	maxColSum := 0
	colSums := make([]int, physCols)
	for di, wrow := range weights {
		if len(wrow) != rows {
			return nil, fmt.Errorf("core: ragged weight matrix at channel %d", di)
		}
		for r, w := range wrow {
			if w < -lim || w >= lim {
				return nil, fmt.Errorf("core: weight %d out of %d-bit range", w, cfg.WeightBits)
			}
			mag, arm := w, 0
			if w < 0 {
				mag, arm = -w, 1
			}
			for nib := 0; nib < colsPerArm; nib++ {
				shift := uint(cfg.CellBits * (colsPerArm - 1 - nib))
				level := uint8(mag >> shift & (int(1)<<cfg.CellBits - 1))
				gcol := m.globalCol(di, arm, nib)
				gr, lr := r/cfg.B, r%cfg.B
				gc, lc := gcol/cfg.B, gcol%cfg.B
				xb := s.Crossbar(gr, gc)
				if err := xb.Program(lr, lc, level); err != nil {
					return nil, err
				}
				// Read the actual level back: stuck-at cells keep their
				// pinned value, and the per-layer scale must cover it.
				actual := xb.Level(lr, lc)
				if actual > 0 {
					colSums[gcol] += int(actual)
					if colSums[gcol] > maxColSum {
						maxColSum = colSums[gcol]
					}
				}
			}
		}
	}
	// Per-layer scale: the largest column dot is 255·maxColSum (full-scale
	// inputs into the heaviest column); one TDC LSB covers 2^k dot units so
	// the charging unit never saturates.
	maxCode := int(1)<<s.ifBits - 1
	m.ScaleShift = 0
	if maxColSum > 0 {
		worst := 255 * maxColSum
		for worst > maxCode<<m.ScaleShift {
			m.ScaleShift++
		}
	}
	return m, nil
}

func (m *MappedLayer) globalCol(d, arm, nib int) int {
	return (d*armsPerWeight+arm)*m.colsPerArm + nib
}

// chargingUnit returns the layer's psum charging stage (Eq. 2 with the
// per-layer full scale).
func (m *MappedLayer) chargingUnit() analog.ChargingUnit {
	return analog.ChargingUnit{
		FullScale: float64(int(1)<<m.sc.ifBits-1) * float64(int64(1)<<m.ScaleShift),
		CapRatio:  1,
		TDel:      params.TDel,
		Bits:      m.sc.ifBits,
	}
}

// Compute runs one dot-product wave: the input codes (one per row,
// 0..255) flow through the full analog path and the method returns the D
// signed psums in dot units (already rescaled by 2^ScaleShift). Accounting
// covers the wave's crossbar, buffer, charging, TDC, I-adder and shift-add
// operations; input-side L1/DTC costs are counted by the layer executors,
// which own the O2IR reuse schedule.
func (m *MappedLayer) Compute(inputs []int) ([]int, error) {
	if len(inputs) != m.Rows {
		return nil, fmt.Errorf("core: %d inputs for %d mapped rows", len(inputs), m.Rows)
	}
	psums := make([]int, m.D)
	if err := m.computeInto(inputs, psums); err != nil {
		return nil, err
	}
	return psums, nil
}

// computeInto is the allocation-free wave executor behind Compute: the same
// operation — and, with noise configured, RNG draw — sequence as the
// original per-wave path, with the per-column crossbar reads replaced by one
// flat DotColumns pass per crossbar (the dots are deterministic, so hoisting
// them ahead of the mirror/comparator draws changes nothing).
func (m *MappedLayer) computeInto(inputs []int, psums []int) error {
	s := m.sc
	cfg := s.cfg
	rows := m.Rows

	// DTC conversion of the input vector (per-row times), plus the optional
	// input-hop cascade. Energy for these conversions is attributed by the
	// caller (O2IR converts once per input, not once per wave).
	timesAt := growF(&s.ar.timesAt, m.gridColsUsed*rows)
	t0 := timesAt[:rows]
	for i, code := range inputs {
		t, err := s.dtc.Convert(code, s.noise)
		if err != nil {
			return err
		}
		t0[i] = s.xbuf.PropagateChain(t, s.inputHops, s.noise)
	}
	if s.inputHops > 0 {
		s.add(energy.XSubBufOp, energy.ClassInput, float64(s.inputHops*rows))
	}
	// Propagate the times across the grid columns through X-subBufs.
	// timesAt[gc·rows:] holds the signal as seen by grid column gc; column 0
	// sees the DTC outputs directly (Fig. 6(a)).
	for gc := 1; gc < m.gridColsUsed; gc++ {
		prev := timesAt[(gc-1)*rows : gc*rows]
		next := timesAt[gc*rows : (gc+1)*rows]
		for i, t := range prev {
			next[i] = s.xbuf.Propagate(t, s.noise)
		}
		s.add(energy.XSubBufOp, energy.ClassInput, float64(rows))
	}
	s.add(energy.CrossbarOp, energy.ClassCompute, float64(m.gridRowsUsed*m.gridColsUsed))

	// Pre-scale times into code units once per wave (the old path divided by
	// TDel per element *per column*) and gather every used column dot of
	// every crossbar in one row-major kernel pass each.
	scaled := growF(&s.ar.scaled, m.gridColsUsed*rows)
	for i, t := range timesAt {
		scaled[i] = t / params.TDel
	}
	colDots := growF(&s.ar.colDots, m.gridRowsUsed*m.physCols)
	for gr := 0; gr < m.gridRowsUsed; gr++ {
		lo := gr * cfg.B
		hi := lo + cfg.B
		if hi > rows {
			hi = rows
		}
		for gc := 0; gc < m.gridColsUsed; gc++ {
			c0 := gc * cfg.B
			nc := m.physCols - c0
			if nc > cfg.B {
				nc = cfg.B
			}
			s.Crossbar(gr, gc).DotColumns(scaled[gc*rows+lo:gc*rows+hi], 0, nc,
				colDots[gr*m.physCols+c0:gr*m.physCols+c0+nc])
		}
	}

	cu := m.chargingUnit()
	contribs := growF(&s.ar.contribs, m.gridRowsUsed)
	for d := 0; d < m.D; d++ {
		acc := 0
		for arm := 0; arm < armsPerWeight; arm++ {
			armDot := 0
			for nib := 0; nib < m.colsPerArm; nib++ {
				gcol := m.globalCol(d, arm, nib)
				// Gather the column current from every vertical crossbar,
				// each through its own P-subBuf mirror (§V: not cascaded;
				// the bottom crossbar feeds the I-adder directly).
				for gr := 0; gr < m.gridRowsUsed; gr++ {
					dot := colDots[gr*m.physCols+gcol]
					if gr < m.gridRowsUsed-1 {
						dot = s.pbuf.Mirror(dot, s.noise)
					}
					contribs[gr] = dot
				}
				if n := m.gridRowsUsed - 1; n > 0 {
					s.add(energy.PSubBufOp, energy.ClassPsum, float64(n))
				}
				total := s.iadd.Sum(contribs...)
				s.add(energy.IAdderOp, energy.ClassPsum, 1)
				code := s.tdc.Convert(cu.Output(total, s.noise), s.noise)
				s.add(energy.ChargingOp, energy.ClassPsum, 1)
				s.add(energy.TDCConv, energy.ClassPsum, 1)
				armDot = armDot<<uint(cfg.CellBits) + code
			}
			if arm == 0 {
				acc += armDot
			} else {
				acc -= armDot
			}
		}
		psums[d] = acc << uint(m.ScaleShift)
		// Digital recombination: one shift-and-add per column sample.
		s.add(energy.ShiftAddOp, energy.ClassDigital, float64(m.physColsPerWeight()))
	}
	return nil
}

// ForwardBatch runs nvec input vectors (flat, vector-major: vector v at
// inputs[v·Rows : (v+1)·Rows]) through the analog path, writing the signed
// psums to out[v·D : (v+1)·D]. It amortises the sub-chip's scratch arena —
// and, when the noise configuration is deterministic, whole blocks of waves
// through the matrix–matrix crossbar kernel — across the batch. With
// randomness configured the waves execute strictly in order, so the RNG draw
// sequence (and every result) is identical to nvec successive Compute calls.
func (m *MappedLayer) ForwardBatch(inputs []int, nvec int, out []int) error {
	if nvec < 0 || len(inputs) != nvec*m.Rows {
		return fmt.Errorf("core: %d batched inputs for %d waves of %d mapped rows",
			len(inputs), nvec, m.Rows)
	}
	if len(out) != nvec*m.D {
		return fmt.Errorf("core: batch output %d for %d waves of %d channels",
			len(out), nvec, m.D)
	}
	if m.BatchDeterministic() {
		return m.forwardBatchDet(inputs, nvec, out)
	}
	for v := 0; v < nvec; v++ {
		if err := m.computeInto(inputs[v*m.Rows:(v+1)*m.Rows], out[v*m.D:(v+1)*m.D]); err != nil {
			return err
		}
	}
	return nil
}

// BatchDeterministic reports whether this mapped layer's batched forward
// path is bit-identical regardless of batch composition: a deterministic
// noise configuration (every sigma zero, no RNG consumed) with zero-INL
// interfaces (always true for SubChip-built converters; checked so a
// future nonlinearity knob cannot silently change results). When false,
// waves draw from a shared RNG stream, so reordering inputs across layers
// or batches would change the draws — callers must keep per-input order.
func (m *MappedLayer) BatchDeterministic() bool {
	return m.sc.noise.Deterministic() && m.sc.tdc.INL == 0
}

// batchBlock bounds the scratch footprint of the deterministic batched
// path: waves are processed in blocks of this many input vectors.
const batchBlock = 64

// forwardBatchDet is the deterministic ForwardBatch fast path. Every
// circuit stage computes exactly what the per-wave path would (same
// operands, same order within each wave) — only the crossbar dots are
// hoisted into blocked matrix–matrix kernel calls and the X-subBuf copies
// elided (they are exact identities without noise), so the psums are
// bit-identical to per-wave execution.
func (m *MappedLayer) forwardBatchDet(inputs []int, nvec int, out []int) error {
	s := m.sc
	cfg := s.cfg
	rows, d := m.Rows, m.D
	cu := m.chargingUnit()
	// Inlined deterministic quantisation constants: the charging stage maps
	// dot → full·dot/FullScale clamped to [0, full], the TDC divides by TDel
	// and rounds — the identical operation sequence ChargingUnit.Output and
	// TDC.Convert perform when every noise draw is zero.
	maxCode := cu.MaxCode()
	full := float64(maxCode) * cu.TDel
	fs := cu.FullScale
	// With a zero-INL DTC, code·TDel/TDel reproduces float64(code) exactly
	// (both operations are exact for 8-bit codes).
	dtcFast := s.dtc.INL == 0
	dtcLevels := s.dtc.Levels()
	for base := 0; base < nvec; base += batchBlock {
		n := nvec - base
		if n > batchBlock {
			n = batchBlock
		}
		// DTC conversion, pre-scaled into code units. Without noise the
		// X-subBuf hop cascade and grid-column propagation are identities,
		// so one scaled ladder serves every grid column.
		scaled := growF(&s.ar.scaled, n*rows)
		for v := 0; v < n; v++ {
			in := inputs[(base+v)*rows : (base+v+1)*rows]
			sv := scaled[v*rows : (v+1)*rows]
			if dtcFast {
				for i, code := range in {
					if code < 0 || code >= dtcLevels {
						return fmt.Errorf("analog: DTC code %d out of [0,%d)", code, dtcLevels)
					}
					sv[i] = float64(code)
				}
				continue
			}
			for i, code := range in {
				t, err := s.dtc.Convert(code, s.noise)
				if err != nil {
					return err
				}
				sv[i] = t / params.TDel
			}
		}
		// Blocked matrix–matrix dots: one kernel call per crossbar covers
		// the whole block. Layout: colDots[(gr·n + v)·physCols + gcol].
		colDots := growF(&s.ar.colDots, m.gridRowsUsed*n*m.physCols)
		for gr := 0; gr < m.gridRowsUsed; gr++ {
			lo := gr * cfg.B
			hi := lo + cfg.B
			if hi > rows {
				hi = rows
			}
			for gc := 0; gc < m.gridColsUsed; gc++ {
				c0 := gc * cfg.B
				nc := m.physCols - c0
				if nc > cfg.B {
					nc = cfg.B
				}
				s.Crossbar(gr, gc).DotColumnsBatch(scaled[lo:], n, rows, hi-lo, 0, nc,
					colDots[gr*n*m.physCols+c0:], m.physCols)
			}
		}
		// Interface stages per wave: P-subBuf mirrors are identities without
		// noise, the I-adder sum runs in the same ascending-grid-row order.
		// Layers inside one crossbar grid row (the common case) read their
		// column dot directly: the single-term I-adder sum 0+x reproduces x
		// bitwise, because the kernels never produce a −0.0 dot (column
		// accumulators start at +0.0 and IEEE addition cannot reach −0.0
		// from there).
		oneRow := m.gridRowsUsed == 1
		for v := 0; v < n; v++ {
			o := out[(base+v)*d : (base+v+1)*d]
			row0 := colDots[v*m.physCols : (v+1)*m.physCols]
			for di := 0; di < d; di++ {
				acc := 0
				for arm := 0; arm < armsPerWeight; arm++ {
					armDot := 0
					for nib := 0; nib < m.colsPerArm; nib++ {
						gcol := m.globalCol(di, arm, nib)
						var total float64
						if oneRow {
							total = row0[gcol]
						} else {
							for gr := 0; gr < m.gridRowsUsed; gr++ {
								total += colDots[(gr*n+v)*m.physCols+gcol]
							}
						}
						// Charging + TDC, inlined (see constants above).
						t := full * total / fs
						if t < 0 {
							t = 0
						} else if t > full {
							t = full
						}
						code := int(math.Round(t / cu.TDel))
						if code < 0 {
							code = 0
						} else if code > maxCode {
							code = maxCode
						}
						armDot = armDot<<uint(cfg.CellBits) + code
					}
					if arm == 0 {
						acc += armDot
					} else {
						acc -= armDot
					}
				}
				o[di] = acc << uint(m.ScaleShift)
			}
		}
		// Ledger accounting, aggregated to the same totals n per-wave
		// Computes would produce (all counts are integral, so the float
		// sums are exact regardless of grouping).
		if s.ledger != nil {
			fn := float64(n)
			if s.inputHops > 0 {
				s.add(energy.XSubBufOp, energy.ClassInput, fn*float64(s.inputHops*rows))
			}
			if m.gridColsUsed > 1 {
				s.add(energy.XSubBufOp, energy.ClassInput, fn*float64((m.gridColsUsed-1)*rows))
			}
			s.add(energy.CrossbarOp, energy.ClassCompute, fn*float64(m.gridRowsUsed*m.gridColsUsed))
			groups := fn * float64(d*armsPerWeight*m.colsPerArm)
			if m.gridRowsUsed > 1 {
				s.add(energy.PSubBufOp, energy.ClassPsum, groups*float64(m.gridRowsUsed-1))
			}
			s.add(energy.IAdderOp, energy.ClassPsum, groups)
			s.add(energy.ChargingOp, energy.ClassPsum, groups)
			s.add(energy.TDCConv, energy.ClassPsum, groups)
			s.add(energy.ShiftAddOp, energy.ClassDigital, fn*float64(d*m.physColsPerWeight()))
		}
	}
	return nil
}

// QuantizationBound returns the worst-case absolute psum error of one wave
// from TDC rounding alone (noise-free): each of the 2·colsPerArm column
// codes rounds within ±½ LSB of 2^ScaleShift dot units, weighted by its
// nibble significance.
func (m *MappedLayer) QuantizationBound() float64 {
	weightSum := 0.0
	for nib := 0; nib < m.colsPerArm; nib++ {
		weightSum += math.Pow(2, float64(m.sc.cfg.CellBits*(m.colsPerArm-1-nib)))
	}
	return float64(armsPerWeight) * weightSum * 0.5 * float64(int64(1)<<m.ScaleShift)
}

// ScaleBits reports how many low bits of a psum are below the quantisation
// floor (useful for choosing requantisation shifts).
func (m *MappedLayer) ScaleBits() int {
	return m.ScaleShift + bits.Len(uint(armsPerWeight*m.colsPerArm)) - 1
}
