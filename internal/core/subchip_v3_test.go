package core

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/stats"
)

// v3SubChip builds a sub-chip whose noise RNG is a counter-based trial
// generator.
func v3SubChip(trial uint32) *SubChip {
	return NewSubChip(Options{
		Noise:         &analog.Noise{RNG: stats.NewTrialRNG(77, trial)},
		InterfaceBits: 24,
	})
}

// cellsEqual fails the test at the first crossbar cell whose fault flag or
// level differs between the two sub-chips.
func cellsEqual(t *testing.T, a, b *SubChip, label string) {
	t.Helper()
	for gr := 0; gr < a.cfg.GridRows; gr++ {
		for gc := 0; gc < a.cfg.GridCols; gc++ {
			xa, xb := a.Crossbar(gr, gc), b.Crossbar(gr, gc)
			for r := 0; r < xa.B; r++ {
				for c := 0; c < xa.B; c++ {
					if xa.IsFaulty(r, c) != xb.IsFaulty(r, c) || xa.Level(r, c) != xb.Level(r, c) {
						t.Fatalf("%s: crossbar (%d,%d) cell (%d,%d) differs", label, gr, gc, r, c)
					}
				}
			}
		}
	}
}

// TestV3EagerLazyInjectionIdentical: under the counter-based regime the
// deferred-injection replay must land the identical cells whether every
// crossbar is materialised before the injection or only afterwards — the
// same contract the serial regimes honour, now carried by per-slot keyed
// substreams instead of snapshot points on one shared stream.
func TestV3EagerLazyInjectionIdentical(t *testing.T) {
	mk := func(eager bool) *SubChip {
		sc := v3SubChip(3)
		if eager {
			for i := range sc.grid {
				sc.xbar(i)
			}
		}
		if _, err := sc.InjectFaults(0.02); err != nil {
			t.Fatal(err)
		}
		return sc
	}
	cellsEqual(t, mk(true), mk(false), "eager vs lazy")
}

// TestV3InjectionOrderIndependence: materialising the grid in reverse slot
// order after a lazy injection must replay the same faults — each slot's
// draws come from its own (lane, pass·slots+slot) substream, so no slot
// depends on when any other slot is touched.
func TestV3InjectionOrderIndependence(t *testing.T) {
	forward, reverse := v3SubChip(5), v3SubChip(5)
	for _, sc := range []*SubChip{forward, reverse} {
		if _, err := sc.InjectFaults(0.05); err != nil {
			t.Fatal(err)
		}
	}
	for i := range forward.grid {
		forward.xbar(i)
	}
	for i := len(reverse.grid) - 1; i >= 0; i-- {
		reverse.xbar(i)
	}
	cellsEqual(t, forward, reverse, "forward vs reverse materialisation")
}

// TestV3InjectFaultsLeavesMainStreamUntouched: fault injection under v3
// draws only from the faults lane; the main noise stream that orders the
// compute path's deviates must not advance, so accuracy results cannot
// shift with how many injection passes preceded the compute.
func TestV3InjectFaultsLeavesMainStreamUntouched(t *testing.T) {
	sc := v3SubChip(1)
	ref := sc.noise.RNG.Clone()
	if _, err := sc.InjectFaults(0.1); err != nil {
		t.Fatal(err)
	}
	sc.ApplyDeviceVariation(0.1)
	if sc.noise.RNG.Uint64() != ref.Uint64() {
		t.Fatal("v3 fault/variation passes advanced the main noise stream")
	}
}

// TestV3RepeatedPassesDrawFreshStreams: a second injection pass on the same
// sub-chip must key fresh pass-indexed substreams, not replay the first
// pass's draws. If it replayed, the second pass would land on exactly the
// already-faulted cells and the cumulative faulty-cell count would not
// grow; fresh streams pick new positions almost surely.
func TestV3RepeatedPassesDrawFreshStreams(t *testing.T) {
	sc := v3SubChip(2)
	count := func() int {
		x := sc.Crossbar(0, 0)
		n := 0
		for r := 0; r < x.B; r++ {
			for c := 0; c < x.B; c++ {
				if x.IsFaulty(r, c) {
					n++
				}
			}
		}
		return n
	}
	if _, err := sc.InjectFaults(0.05); err != nil {
		t.Fatal(err)
	}
	after1 := count()
	if _, err := sc.InjectFaults(0.05); err != nil {
		t.Fatal(err)
	}
	if after2 := count(); after2 <= after1 {
		t.Fatalf("second injection pass landed no new cells (%d then %d faulty): pass substreams replayed",
			after1, after2)
	}
}
