package core

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// benchConvInputs builds the small convolution the functional pipeline is
// verified on (3×8×8 input, eight 3×3 filters).
func benchConvInputs() (*tensor.Int, *tensor.Filter) {
	rng := stats.NewRNG(1)
	in := tensor.NewInt(3, 8, 8)
	for i := range in.Data {
		in.Data[i] = int32(rng.Intn(256))
	}
	f := tensor.NewFilter(8, 3, 3, 3)
	for i := range f.Data {
		f.Data[i] = int32(rng.Intn(255)) - 127
	}
	return in, f
}

// BenchmarkConvForward measures one full functional convolution through the
// analog datapath (ideal-interface mode).
func BenchmarkConvForward(b *testing.B) {
	in, f := benchConvInputs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunConv(IdealOptions(nil), in, f, 1, 1, false); err != nil {
			b.Fatal(err)
		}
	}
}
