package core

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/params"
	"repro/internal/stats"
)

// randomDense builds a random signed weight matrix of the given shape.
func randomDense(rng *stats.RNG, d, rows, weightBits int) [][]int {
	lim := int(1) << (weightBits - 1)
	w := make([][]int, d)
	for o := range w {
		w[o] = make([]int, rows)
		for i := range w[o] {
			w[o][i] = rng.Intn(2*lim) - lim
		}
	}
	return w
}

// mapRandom programs the same random layer onto a fresh sub-chip.
func mapRandom(t *testing.T, opt Options, seed uint64, d, rows int) *MappedLayer {
	t.Helper()
	cfg := params.DefaultTimely(8)
	w := randomDense(stats.NewRNG(seed), d, rows, cfg.WeightBits)
	m, err := NewSubChip(opt).MapDense(w)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomBatch(rng *stats.RNG, nvec, rows int) []int {
	in := make([]int, nvec*rows)
	for i := range in {
		in[i] = rng.Intn(256)
	}
	return in
}

// TestForwardBatchMatchesComputeIdeal: the deterministic batched fast path
// must be bit-exact against per-wave Compute on the same mapped layer.
func TestForwardBatchMatchesComputeIdeal(t *testing.T) {
	for _, shape := range []struct{ d, rows int }{
		{4, 9},    // single crossbar
		{8, 300},  // two grid rows (vertical I-adder stack)
		{80, 40},  // two grid columns (X-subBuf propagation)
		{70, 270}, // both
	} {
		m := mapRandom(t, IdealOptions(nil), 7, shape.d, shape.rows)
		const nvec = 9
		in := randomBatch(stats.NewRNG(11), nvec, shape.rows)
		got := make([]int, nvec*shape.d)
		if err := m.ForwardBatch(in, nvec, got); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < nvec; v++ {
			want, err := m.Compute(in[v*shape.rows : (v+1)*shape.rows])
			if err != nil {
				t.Fatal(err)
			}
			for d, w := range want {
				if got[v*shape.d+d] != w {
					t.Fatalf("shape %+v wave %d psum[%d]: batch %d != compute %d",
						shape, v, d, got[v*shape.d+d], w)
				}
			}
		}
	}
}

// TestForwardBatchMatchesComputeNoisy: with randomness configured the
// batched path must execute waves strictly in order, consuming the RNG
// identically to successive Compute calls — verified by running the same
// layer with identically seeded noise through both paths.
func TestForwardBatchMatchesComputeNoisy(t *testing.T) {
	const d, rows, nvec = 6, 280, 7
	opts := func() Options {
		return Options{
			Noise:         analog.DefaultNoise(42),
			InterfaceBits: 24,
			InputHops:     3,
		}
	}
	mBatch := mapRandom(t, opts(), 13, d, rows)
	mWave := mapRandom(t, opts(), 13, d, rows)
	in := randomBatch(stats.NewRNG(17), nvec, rows)

	got := make([]int, nvec*d)
	if err := mBatch.ForwardBatch(in, nvec, got); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < nvec; v++ {
		want, err := mWave.Compute(in[v*rows : (v+1)*rows])
		if err != nil {
			t.Fatal(err)
		}
		for di, w := range want {
			if got[v*d+di] != w {
				t.Fatalf("wave %d psum[%d]: batch %d != compute %d", v, di, got[v*d+di], w)
			}
		}
	}
}

// TestForwardBatchDeterministicZeroSigma: a non-nil noise with all sigmas
// zero must take the deterministic path and still match per-wave execution.
func TestForwardBatchDeterministicZeroSigma(t *testing.T) {
	const d, rows, nvec = 5, 30, 70 // nvec spans two batch blocks
	opt := Options{
		Noise:         &analog.Noise{RNG: stats.NewRNG(3)},
		InterfaceBits: 24,
	}
	m := mapRandom(t, opt, 23, d, rows)
	in := randomBatch(stats.NewRNG(29), nvec, rows)
	got := make([]int, nvec*d)
	if err := m.ForwardBatch(in, nvec, got); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < nvec; v++ {
		want, err := m.Compute(in[v*rows : (v+1)*rows])
		if err != nil {
			t.Fatal(err)
		}
		for di, w := range want {
			if got[v*d+di] != w {
				t.Fatalf("wave %d psum[%d]: batch %d != compute %d", v, di, got[v*d+di], w)
			}
		}
	}
}

// TestForwardBatchErrors covers the argument validation and out-of-range
// DTC codes on both paths.
func TestForwardBatchErrors(t *testing.T) {
	m := mapRandom(t, IdealOptions(nil), 5, 3, 8)
	if err := m.ForwardBatch(make([]int, 8), 2, make([]int, 6)); err == nil {
		t.Fatal("short input batch accepted")
	}
	if err := m.ForwardBatch(make([]int, 16), 2, make([]int, 3)); err == nil {
		t.Fatal("short output batch accepted")
	}
	bad := make([]int, 8)
	bad[3] = 999
	if err := m.ForwardBatch(bad, 1, make([]int, 3)); err == nil {
		t.Fatal("out-of-range DTC code accepted on deterministic path")
	}
	mN := mapRandom(t, Options{Noise: analog.DefaultNoise(1), InterfaceBits: 24}, 5, 3, 8)
	if err := mN.ForwardBatch(bad, 1, make([]int, 3)); err == nil {
		t.Fatal("out-of-range DTC code accepted on per-wave path")
	}
}

// TestLazyCrossbarMaterialisation: unused grid slots must stay
// unmaterialised after mapping and computing, and fault injection must
// produce identical maps and results whether crossbars are materialised
// before or after the injection.
func TestLazyCrossbarMaterialisation(t *testing.T) {
	s := NewSubChip(IdealOptions(nil))
	if _, err := s.MapDense(randomDense(stats.NewRNG(1), 4, 9, s.cfg.WeightBits)); err != nil {
		t.Fatal(err)
	}
	materialised := 0
	for _, x := range s.grid {
		if x != nil {
			materialised++
		}
	}
	if materialised != 1 {
		t.Fatalf("mapping a 9x4 layer materialised %d crossbars, want 1", materialised)
	}

	// Deferred injection must replay to the same faults as eager injection.
	mk := func(eager bool) (*SubChip, int) {
		sc := NewSubChip(Options{Noise: &analog.Noise{RNG: stats.NewRNG(77)}, InterfaceBits: 24})
		if eager {
			for i := range sc.grid {
				sc.xbar(i)
			}
		}
		fm, err := sc.InjectFaults(0.02)
		if err != nil {
			t.Fatal(err)
		}
		return sc, fm.Total()
	}
	eagerSC, eagerFaults := mk(true)
	lazySC, lazyFaults := mk(false)
	if eagerFaults != lazyFaults {
		t.Fatalf("fault totals differ: eager %d, lazy %d", eagerFaults, lazyFaults)
	}
	for gr := 0; gr < eagerSC.cfg.GridRows; gr++ {
		for gc := 0; gc < eagerSC.cfg.GridCols; gc++ {
			xe, xl := eagerSC.Crossbar(gr, gc), lazySC.Crossbar(gr, gc)
			for r := 0; r < xe.B; r++ {
				for c := 0; c < xe.B; c++ {
					if xe.IsFaulty(r, c) != xl.IsFaulty(r, c) || xe.Level(r, c) != xl.Level(r, c) {
						t.Fatalf("crossbar (%d,%d) cell (%d,%d) differs between eager and lazy injection",
							gr, gc, r, c)
					}
				}
			}
		}
	}
}
