package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/tensor"
)

// Layer executors: run whole conv/FC layers through the functional sub-chip
// with O2IR access accounting (§IV-D). Input-side costs follow the
// only-once-input-read schedule: every input is read from the L1 buffer and
// DTC-converted exactly once; horizontal filter slides reach their reused
// inputs through X-subBuf shifts (principle 3), counted per slide. The
// im2col patch batch flows through ForwardBatch, which re-derives the
// per-wave time vectors numerically — identical to holding them in
// X-subBufs in the noise-free/DTC-noise-free case the accuracy study uses
// (DTC jitter defaults to zero; X-subBuf hop noise is injected per wave).

// ConvResult bundles a functional conv/FC execution's outputs.
type ConvResult struct {
	// Out holds the raw psums (dot units, before requantisation).
	Out *tensor.Int
	// Mapped is the programmed layer (scale information for requantising).
	Mapped *MappedLayer
}

// RunConv executes one convolution on a fresh sub-chip built from opt.
// Input codes must be within the 8-bit DTC range; weights within the
// configured weight width. applyReLU folds the ReLU unit in (and counts it).
func RunConv(opt Options, in *tensor.Int, w *tensor.Filter, stride, pad int, applyReLU bool) (*ConvResult, error) {
	if in.Shape.C != w.C {
		return nil, fmt.Errorf("core: input channels %d != filter channels %d", in.Shape.C, w.C)
	}
	s := NewSubChip(opt)
	weights, err := flattenFilter(w)
	if err != nil {
		return nil, err
	}
	m, err := s.MapDense(weights)
	if err != nil {
		return nil, err
	}

	// O2IR input-side accounting: one L1 read + one DTC conversion per input.
	nIn := float64(in.Shape.Size())
	s.add(energy.L1Read, energy.ClassInput, nIn)
	s.add(energy.DTCConv, energy.ClassInput, nIn)
	// Principle 3: each input serves G/S horizontal positions, arriving via
	// an X-subBuf shift for all but the first.
	if shifts := w.G/stride - 1; shifts > 0 {
		s.add(energy.XSubBufOp, energy.ClassInput, nIn*float64(shifts))
	}

	rows, e, f := tensor.Im2ColDims(in, w.Z, w.G, stride, pad)
	inputs := growInt(&s.ar.inputs, rows*e*f)
	tensor.Im2ColIntoInts(in, w.Z, w.G, stride, pad, inputs)
	psums := growInt(&s.ar.psums, e*f*w.D)
	if err := m.ForwardBatch(inputs, e*f, psums); err != nil {
		return nil, err
	}
	out := tensor.NewInt(w.D, e, f)
	for p := 0; p < e*f; p++ {
		for d := 0; d < w.D; d++ {
			v := psums[p*w.D+d]
			if applyReLU && v < 0 {
				v = 0
			}
			out.Data[d*e*f+p] = int32(v)
		}
	}
	s.add(energy.L1Write, energy.ClassOutput, float64(out.Shape.Size()))
	if applyReLU {
		s.add(energy.ReLUOp, energy.ClassDigital, float64(out.Shape.Size()))
	}
	return &ConvResult{Out: out, Mapped: m}, nil
}

// RunFC executes one fully-connected layer (weights[d][k] over the flattened
// input) on a fresh sub-chip.
func RunFC(opt Options, in *tensor.Int, weights [][]int, applyReLU bool) ([]int, *MappedLayer, error) {
	n := in.Shape.Size()
	for d, row := range weights {
		if len(row) != n {
			return nil, nil, fmt.Errorf("core: FC row %d has %d weights, want %d", d, len(row), n)
		}
	}
	s := NewSubChip(opt)
	m, err := s.MapDense(weights)
	if err != nil {
		return nil, nil, err
	}
	nIn := float64(n)
	s.add(energy.L1Read, energy.ClassInput, nIn)
	s.add(energy.DTCConv, energy.ClassInput, nIn)
	inputs := make([]int, n)
	for i, v := range in.Data {
		inputs[i] = int(v)
	}
	psums, err := m.Compute(inputs)
	if err != nil {
		return nil, nil, err
	}
	if applyReLU {
		for i, v := range psums {
			if v < 0 {
				psums[i] = 0
			}
		}
		s.add(energy.ReLUOp, energy.ClassDigital, float64(len(psums)))
	}
	s.add(energy.L1Write, energy.ClassOutput, float64(len(psums)))
	return psums, m, nil
}

// FlattenFilter lays filter weights out in im2col row order — row index
// (c·Z + i)·G + j for output channel d — the layout MapDense expects for
// convolution weights. The §IV-F compiler uses it when lowering networks.
func FlattenFilter(w *tensor.Filter) [][]int {
	out, err := flattenFilter(w)
	if err != nil {
		// flattenFilter cannot currently fail; keep the invariant explicit.
		panic(err)
	}
	return out
}

// flattenFilter lays filter weights out in im2col row order: row index
// (c·Z + i)·G + j for output channel d.
func flattenFilter(w *tensor.Filter) ([][]int, error) {
	rows := w.C * w.Z * w.G
	out := make([][]int, w.D)
	for d := 0; d < w.D; d++ {
		out[d] = make([]int, rows)
		for c := 0; c < w.C; c++ {
			for i := 0; i < w.Z; i++ {
				for j := 0; j < w.G; j++ {
					out[d][(c*w.Z+i)*w.G+j] = int(w.At(d, c, i, j))
				}
			}
		}
	}
	return out, nil
}

// IdealOptions returns an Options preset for bit-exact verification: no
// noise, wide (24-bit) psum interfaces, optional ledger.
func IdealOptions(ledger *energy.Ledger) Options {
	return Options{Ledger: ledger, InterfaceBits: 24}
}
