package workload

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/params"
	"repro/internal/stats"
)

func trainedCNN(t *testing.T, seed uint64) (*CNN, *ImageDataset, *ImageDataset) {
	t.Helper()
	rng := stats.NewRNG(seed)
	ds := SyntheticImages(rng, 600, 12, 4, 0.05)
	train, test := ds.Split(0.8)
	cnn := NewCNN(rng, 8, 7)
	if _, err := cnn.Train(rng, train, 32, 25, 0.05); err != nil {
		t.Fatal(err)
	}
	return cnn, train, test
}

func TestSyntheticImages(t *testing.T) {
	rng := stats.NewRNG(1)
	ds := SyntheticImages(rng, 50, 12, 4, 0.05)
	if ds.Len() != 50 {
		t.Fatalf("images = %d", ds.Len())
	}
	for i, img := range ds.X {
		if img.Shape.C != 1 || img.Shape.H != 12 || img.Shape.W != 12 {
			t.Fatalf("image %d shape %v", i, img.Shape)
		}
		for _, v := range img.Data {
			if v < 0 || v > 255 {
				t.Fatalf("pixel %d outside 8-bit range", v)
			}
		}
	}
}

func TestCNNLearns(t *testing.T) {
	cnn, train, test := trainedCNN(t, 5)
	if acc := cnn.AccuracyInt(train); acc < 0.9 {
		t.Errorf("train accuracy = %.3f, want ≥0.9", acc)
	}
	if acc := cnn.AccuracyInt(test); acc < 0.85 {
		t.Errorf("test accuracy = %.3f, want ≥0.85 (oriented gratings)", acc)
	}
}

// TestAnalogCNNMatchesIntegerIdeal: the full conv+head pipeline through
// functional TIMELY in ideal mode must classify identically to the integer
// reference.
func TestAnalogCNNMatchesIntegerIdeal(t *testing.T) {
	cnn, _, test := trainedCNN(t, 7)
	a, err := cnn.MapAnalog(core.IdealOptions(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range test.X {
		want := cnn.PredictInt(img)
		got, err := a.Predict(img)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("image %d: analog %d, integer %d", i, got, want)
		}
	}
}

// TestAnalogCNNDesignPointNoise: the conv pipeline keeps its accuracy at the
// paper's design-point circuit noise.
func TestAnalogCNNDesignPointNoise(t *testing.T) {
	cnn, _, test := trainedCNN(t, 9)
	base := cnn.AccuracyInt(test)
	a, err := cnn.MapAnalog(core.Options{
		Noise:         analog.DefaultNoise(33),
		InterfaceBits: 24,
		InputHops:     params.MaxCascadedXSubBufs,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if base-got > 0.01 {
		t.Errorf("design-point noise cost %.3f accuracy (%.3f -> %.3f)", base-got, base, got)
	}
}

// TestAnalogCNNFaultResilience: small stuck-at-fault rates leave accuracy
// largely intact (§V's algorithm-resilience argument); large rates break it.
func TestAnalogCNNFaultResilience(t *testing.T) {
	cnn, _, test := trainedCNN(t, 11)
	base := cnn.AccuracyInt(test)
	accAt := func(rate float64) float64 {
		a, err := cnn.MapAnalog(core.Options{
			Noise:         &analog.Noise{RNG: stats.NewRNG(55)},
			InterfaceBits: 24,
		}, rate)
		if err != nil {
			t.Fatal(err)
		}
		if rate > 0 && a.Faults() == 0 {
			t.Fatalf("no faults injected at rate %v", rate)
		}
		acc, err := a.Accuracy(test)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	small := accAt(0.001)
	if base-small > 0.10 {
		t.Errorf("0.1%% faults cost %.3f accuracy (%.3f -> %.3f): too fragile", base-small, base, small)
	}
	large := accAt(0.30)
	if large > small {
		t.Errorf("30%% faults (%.3f) not worse than 0.1%% faults (%.3f)", large, small)
	}
}

func TestMapAnalogErrors(t *testing.T) {
	cnn := NewCNN(stats.NewRNG(1), 4, 7)
	if _, err := cnn.MapAnalog(core.IdealOptions(nil), 0); err == nil {
		t.Errorf("mapping an untrained CNN accepted")
	}
	// Fault injection without an RNG must fail.
	cnn2, _, _ := trainedCNN(t, 13)
	if _, err := cnn2.MapAnalog(core.IdealOptions(nil), 0.1); err == nil {
		t.Errorf("fault injection without noise RNG accepted")
	}
}
