package workload

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Convolutional workload for the accuracy study: synthetic oriented-grating
// images classified by a small CNN whose convolutional features come from a
// fixed random filter bank (random-feature / "kitchen sink" construction —
// only the fully-connected head is trained, which keeps the pure-Go trainer
// small while still exercising TIMELY's convolution datapath end to end).

// ImageDataset holds labelled single-channel 8-bit images.
type ImageDataset struct {
	X       []*tensor.Int
	Y       []int
	Size    int // images are Size×Size
	Classes int
}

// Len returns the sample count.
func (d *ImageDataset) Len() int { return len(d.X) }

// Split partitions into train/test.
func (d *ImageDataset) Split(frac float64) (train, test *ImageDataset) {
	cut := int(float64(d.Len()) * frac)
	train = &ImageDataset{X: d.X[:cut], Y: d.Y[:cut], Size: d.Size, Classes: d.Classes}
	test = &ImageDataset{X: d.X[cut:], Y: d.Y[cut:], Size: d.Size, Classes: d.Classes}
	return train, test
}

// SyntheticImages draws n oriented-grating images over `classes`
// orientations with additive pixel noise: class k is a sinusoidal grating at
// angle k·π/classes, quantised into 8-bit codes.
func SyntheticImages(rng *stats.RNG, n, size, classes int, noise float64) *ImageDataset {
	if n <= 0 || size <= 0 || classes <= 1 {
		panic(fmt.Sprintf("workload: invalid image dataset n=%d size=%d classes=%d", n, size, classes))
	}
	d := &ImageDataset{Size: size, Classes: classes}
	freq := 2 * math.Pi / float64(size) * 2.5
	for i := 0; i < n; i++ {
		k := rng.Intn(classes)
		angle := float64(k) * math.Pi / float64(classes)
		dx, dy := math.Cos(angle), math.Sin(angle)
		phase := rng.Float64() * 2 * math.Pi
		img := tensor.NewInt(1, size, size)
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				v := 128 + 100*math.Sin(freq*(dx*float64(x)+dy*float64(y))+phase)
				v += rng.Gauss(0, noise*255)
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				img.Set(0, y, x, int32(math.Round(v)))
			}
		}
		d.X = append(d.X, img)
		d.Y = append(d.Y, k)
	}
	return d
}

// CNN is the random-feature convolutional classifier: a fixed signed-integer
// filter bank, ReLU, max pooling, then a trained MLP head over the flattened
// feature codes.
type CNN struct {
	// Filters is the fixed random conv bank (signed codes).
	Filters *tensor.Filter
	// Stride/Pad of the convolution; PoolK/PoolS of the max pool.
	Stride, Pad, PoolK, PoolS int
	// FeatShift requantises conv psums into 8-bit feature codes.
	FeatShift int
	// Head is the trained classifier over flattened features.
	Head *QuantMLP
	// headFloat keeps the float head for accuracy reference.
	headFloat *MLP
}

// NewCNN builds the feature extractor with d random 3×3 filters (codes in
// [-maxW, maxW]) for size×size inputs.
func NewCNN(rng *stats.RNG, d, maxW int) *CNN {
	f := tensor.NewFilter(d, 1, 3, 3)
	for i := range f.Data {
		f.Data[i] = int32(rng.Intn(2*maxW+1)) - int32(maxW)
	}
	return &CNN{Filters: f, Stride: 1, Pad: 1, PoolK: 2, PoolS: 2}
}

// features runs the integer feature path: conv → requant(ReLU) → pool.
func (c *CNN) features(img *tensor.Int) *tensor.Int {
	conv := tensor.Conv2D(img, c.Filters, nil, c.Stride, c.Pad)
	tensor.RequantizeShift(conv, c.FeatShift, 255)
	return tensor.MaxPool2D(conv, c.PoolK, c.PoolS)
}

// featVec flattens a feature tensor into normalised float64s for the head
// (codes scaled into [0,1] so the SGD head trains stably; the head's input
// quantiser recovers 8-bit codes from the same scale).
func featVec(t *tensor.Int) []float64 {
	out := make([]float64, len(t.Data))
	for i, v := range t.Data {
		out[i] = float64(v) / 255
	}
	return out
}

// Train calibrates the feature shift on the training images, extracts
// features and trains the FC head. Returns the final training loss.
func (c *CNN) Train(rng *stats.RNG, train *ImageDataset, hidden, epochs int, lr float64) (float64, error) {
	if train.Len() == 0 {
		return 0, fmt.Errorf("workload: empty training set")
	}
	// Calibrate the requantisation shift over the training set.
	maxPsum := int32(0)
	for _, img := range train.X {
		conv := tensor.Conv2D(img, c.Filters, nil, c.Stride, c.Pad)
		for _, v := range conv.Data {
			if v > maxPsum {
				maxPsum = v
			}
		}
	}
	c.FeatShift = 0
	for maxPsum>>uint(c.FeatShift) > 255 {
		c.FeatShift++
	}
	// Extract features and train the float head.
	feats := &Dataset{Dim: 0, Classes: train.Classes}
	for i, img := range train.X {
		v := featVec(c.features(img))
		feats.Dim = len(v)
		feats.X = append(feats.X, v)
		feats.Y = append(feats.Y, train.Y[i])
	}
	c.headFloat = NewMLP(rng, feats.Dim, hidden, train.Classes)
	loss := c.headFloat.Train(feats, rng, epochs, lr)
	q, err := Quantize(c.headFloat, feats, 8)
	if err != nil {
		return 0, err
	}
	c.Head = q
	return loss, nil
}

// PredictInt classifies one image through the exact integer path.
func (c *CNN) PredictInt(img *tensor.Int) int {
	return c.Head.PredictInt(featVec(c.features(img)))
}

// AccuracyInt evaluates the integer path.
func (c *CNN) AccuracyInt(d *ImageDataset) float64 {
	hit := 0
	for i, img := range d.X {
		if c.PredictInt(img) == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(d.Len())
}

// AnalogCNN is a CNN programmed onto functional TIMELY sub-chips: one for
// the conv bank, plus the head's layers.
type AnalogCNN struct {
	cnn      *CNN
	convMap  *core.MappedLayer
	head     *AnalogMLP
	faultMap int // total stuck cells injected (0 when clean)

	// Per-instance scratch reused across Predict calls (an AnalogCNN is
	// driven by one goroutine at a time).
	inputs []int
	psums  []int
}

// MapAnalog programs the conv filter bank and the head. faultRate > 0
// additionally pins that fraction of the conv sub-chip's cells as stuck-at
// faults before programming (the defect ablation; requires opt.Noise).
func (c *CNN) MapAnalog(opt core.Options, faultRate float64) (*AnalogCNN, error) {
	if c.Head == nil {
		return nil, fmt.Errorf("workload: CNN not trained")
	}
	sc := core.NewSubChip(opt)
	faults := 0
	if faultRate > 0 {
		fm, err := sc.InjectFaults(faultRate)
		if err != nil {
			return nil, err
		}
		faults = fm.Total()
	}
	convMap, err := sc.MapDense(core.FlattenFilter(c.Filters))
	if err != nil {
		return nil, err
	}
	head, err := c.Head.MapAnalog(opt)
	if err != nil {
		return nil, err
	}
	return &AnalogCNN{cnn: c, convMap: convMap, head: head, faultMap: faults}, nil
}

// Faults returns the number of stuck cells injected at mapping time.
func (a *AnalogCNN) Faults() int { return a.faultMap }

// Predict classifies one image through the analog pipeline: conv psums from
// the mapped crossbars, digital requantisation + pooling, then the analog
// head.
func (a *AnalogCNN) Predict(img *tensor.Int) (int, error) {
	c := a.cnn
	rows, e, f := tensor.Im2ColDims(img, c.Filters.Z, c.Filters.G, c.Stride, c.Pad)
	if cap(a.inputs) < rows*e*f {
		a.inputs = make([]int, rows*e*f)
	}
	inputs := a.inputs[:rows*e*f]
	tensor.Im2ColIntoInts(img, c.Filters.Z, c.Filters.G, c.Stride, c.Pad, inputs)
	if cap(a.psums) < e*f*c.Filters.D {
		a.psums = make([]int, e*f*c.Filters.D)
	}
	psums := a.psums[:e*f*c.Filters.D]
	if err := a.convMap.ForwardBatch(inputs, e*f, psums); err != nil {
		return 0, err
	}
	conv := tensor.NewInt(c.Filters.D, e, f)
	for p := 0; p < e*f; p++ {
		for d := 0; d < c.Filters.D; d++ {
			conv.Data[d*e*f+p] = int32(psums[p*c.Filters.D+d])
		}
	}
	tensor.RequantizeShift(conv, c.FeatShift, 255)
	pooled := tensor.MaxPool2D(conv, c.PoolK, c.PoolS)
	return a.head.Predict(featVec(pooled))
}

// Accuracy evaluates the analog pipeline over a dataset.
func (a *AnalogCNN) Accuracy(d *ImageDataset) (float64, error) {
	hit := 0
	for i, img := range d.X {
		p, err := a.Predict(img)
		if err != nil {
			return 0, err
		}
		if p == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(d.Len()), nil
}
