package workload

import (
	"math"
	"testing"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/stats"
)

func trainedSetup(t *testing.T, seed uint64) (*MLP, *Dataset, *Dataset) {
	t.Helper()
	rng := stats.NewRNG(seed)
	ds := SyntheticClusters(rng, 1200, 16, 4, 0.12)
	train, test := ds.Split(0.8)
	m := NewMLP(rng, 16, 32, 4)
	m.Train(train, rng, 25, 0.05)
	return m, train, test
}

func TestSyntheticClustersShape(t *testing.T) {
	rng := stats.NewRNG(1)
	ds := SyntheticClusters(rng, 100, 8, 3, 0.1)
	if ds.Len() != 100 || ds.Dim != 8 || ds.Classes != 3 {
		t.Fatalf("dataset = %d/%d/%d", ds.Len(), ds.Dim, ds.Classes)
	}
	for i, x := range ds.X {
		if len(x) != 8 {
			t.Fatalf("sample %d has %d features", i, len(x))
		}
		for _, v := range x {
			if v < 0 {
				t.Fatalf("negative feature %v (inputs must be unsigned)", v)
			}
		}
		if ds.Y[i] < 0 || ds.Y[i] >= 3 {
			t.Fatalf("label %d out of range", ds.Y[i])
		}
	}
}

func TestSplit(t *testing.T) {
	rng := stats.NewRNG(2)
	ds := SyntheticClusters(rng, 100, 4, 2, 0.1)
	tr, te := ds.Split(0.75)
	if tr.Len() != 75 || te.Len() != 25 {
		t.Errorf("split = %d/%d", tr.Len(), te.Len())
	}
}

func TestTrainingLearns(t *testing.T) {
	m, train, test := trainedSetup(t, 3)
	accTrain, accTest := m.Accuracy(train), m.Accuracy(test)
	if accTrain < 0.9 {
		t.Errorf("train accuracy = %.3f, want ≥0.9", accTrain)
	}
	if accTest < 0.85 {
		t.Errorf("test accuracy = %.3f, want ≥0.85 (separable clusters)", accTest)
	}
}

func TestTrainReducesLoss(t *testing.T) {
	rng := stats.NewRNG(4)
	ds := SyntheticClusters(rng, 400, 8, 3, 0.1)
	m := NewMLP(rng, 8, 16, 3)
	l1 := m.Train(ds, rng, 1, 0.05)
	l20 := m.Train(ds, rng, 20, 0.05)
	if l20 >= l1 {
		t.Errorf("loss did not decrease: %.4f -> %.4f", l1, l20)
	}
}

func TestTrainWithNoiseStillLearns(t *testing.T) {
	rng := stats.NewRNG(5)
	ds := SyntheticClusters(rng, 800, 16, 4, 0.1)
	tr, te := ds.Split(0.8)
	m := NewMLP(rng, 16, 32, 4)
	m.TrainWithNoise(tr, rng, 25, 0.05, 0.05)
	if acc := m.Accuracy(te); acc < 0.85 {
		t.Errorf("noise-trained accuracy = %.3f, want ≥0.85", acc)
	}
}

func TestQuantizePreservesAccuracy(t *testing.T) {
	m, train, test := trainedSetup(t, 6)
	q, err := Quantize(m, train, 8)
	if err != nil {
		t.Fatal(err)
	}
	accF := m.Accuracy(test)
	accQ := q.AccuracyInt(test)
	if math.Abs(accF-accQ) > 0.05 {
		t.Errorf("8-bit quantisation moved accuracy %.3f -> %.3f", accF, accQ)
	}
}

func TestQuantizeErrors(t *testing.T) {
	if _, err := Quantize(&MLP{}, &Dataset{}, 8); err == nil {
		t.Errorf("quantising an untrained model must fail")
	}
	m, train, _ := trainedSetup(t, 7)
	if _, err := Quantize(m, &Dataset{Dim: train.Dim}, 8); err == nil {
		t.Errorf("quantising with no calibration data must fail")
	}
}

// TestAnalogMatchesIntegerIdeal: the functional-TIMELY backend in ideal-
// interface mode must classify identically to the integer reference on
// every test sample.
func TestAnalogMatchesIntegerIdeal(t *testing.T) {
	m, train, test := trainedSetup(t, 8)
	q, err := Quantize(m, train, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := q.MapAnalog(core.IdealOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range test.X {
		want := q.PredictInt(x)
		got, err := a.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sample %d: analog %d, integer %d", i, got, want)
		}
	}
}

// TestAccuracyLossAtDesignPoint reproduces the §VI-B claim on the synthetic
// workload: at the paper's design-point noise (ε=10 ps, √12·ε within the
// margin), analog accuracy drops ≤ 0.5 % absolute vs the 8-bit reference.
// (The paper reports ≤0.1 % with noise-aware retraining on CNNs; the bound
// here is a conservative budget for the small synthetic MLP.)
func TestAccuracyLossAtDesignPoint(t *testing.T) {
	m, train, test := trainedSetup(t, 9)
	q, err := Quantize(m, train, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := q.AccuracyInt(test)
	a, err := q.MapAnalog(core.Options{Noise: analog.DefaultNoise(1234), InterfaceBits: 24})
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if base-got > 0.005 {
		t.Errorf("design-point noise cost %.4f accuracy (base %.4f, noisy %.4f), want ≤0.005",
			base-got, base, got)
	}
}

// TestExtremeNoiseDegrades: sanity check that the noise path is live — with
// absurd comparator jitter (which reaches every charging column, even on
// layers small enough to avoid X-subBuf hops) the classifier must degrade.
func TestExtremeNoiseDegrades(t *testing.T) {
	m, train, test := trainedSetup(t, 10)
	q, err := Quantize(m, train, 8)
	if err != nil {
		t.Fatal(err)
	}
	noise := &analog.Noise{XSubBufSigma: 8000, PSubBufRelSigma: 0.5,
		ComparatorSigma: 100_000, RNG: stats.NewRNG(11)}
	a, err := q.MapAnalog(core.Options{Noise: noise, InterfaceBits: 24})
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	base := q.AccuracyInt(test)
	if got > base-0.05 {
		t.Errorf("extreme noise barely moved accuracy: %.3f vs %.3f", got, base)
	}
}
