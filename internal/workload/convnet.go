package workload

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// ConvNet is a small convolutional network trained end to end in float64
// with pure-Go backpropagation: one conv layer (ReLU) → max pool → MLP
// head. After training it quantises into the integer CNN form of cnn.go
// (with a short head fine-tune on the quantised features), from which the
// functional analog pipeline runs it.
type ConvNet struct {
	// Conv filter bank dimensions and parameters.
	D, C, Z, G, S, Pad int
	// W[d][c][i][j] flattened: ((d·C+c)·Z+i)·G+j.
	W []float64
	// B[d] is the conv bias.
	B []float64
	// PoolK/PoolS is the max-pool window.
	PoolK, PoolS int
	// Head is the float classifier over pooled features.
	Head *MLP
	// input spatial dims (fixed at construction).
	inH, inW int
	// derived conv/pool output dims.
	convH, convW, poolH, poolW int
}

// NewConvNet builds a conv(3×3,d) → pool(2) → MLP(hidden) → classes network
// for single-channel size×size inputs.
func NewConvNet(rng *stats.RNG, size, d, hidden, classes int) *ConvNet {
	n := &ConvNet{
		D: d, C: 1, Z: 3, G: 3, S: 1, Pad: 1,
		PoolK: 2, PoolS: 2,
		inH: size, inW: size,
	}
	n.convH = (size+2*n.Pad-n.Z)/n.S + 1
	n.convW = (size+2*n.Pad-n.G)/n.S + 1
	n.poolH = (n.convH-n.PoolK)/n.PoolS + 1
	n.poolW = (n.convW-n.PoolK)/n.PoolS + 1
	n.W = make([]float64, d*n.C*n.Z*n.G)
	scale := math.Sqrt(2 / float64(n.C*n.Z*n.G))
	for i := range n.W {
		n.W[i] = rng.Gauss(0, scale)
	}
	n.B = make([]float64, d)
	n.Head = NewMLP(rng, d*n.poolH*n.poolW, hidden, classes)
	return n
}

// normalize converts 8-bit pixel codes into [0,1] floats.
func normalize(img *tensor.Int) []float64 {
	out := make([]float64, len(img.Data))
	for i, v := range img.Data {
		out[i] = float64(v) / 255
	}
	return out
}

// convForward computes the conv activations (pre-ReLU) for a normalised
// image.
func (n *ConvNet) convForward(x []float64) []float64 {
	out := make([]float64, n.D*n.convH*n.convW)
	for d := 0; d < n.D; d++ {
		for y := 0; y < n.convH; y++ {
			for xo := 0; xo < n.convW; xo++ {
				acc := n.B[d]
				for i := 0; i < n.Z; i++ {
					hy := y*n.S + i - n.Pad
					if hy < 0 || hy >= n.inH {
						continue
					}
					for j := 0; j < n.G; j++ {
						wx := xo*n.S + j - n.Pad
						if wx < 0 || wx >= n.inW {
							continue
						}
						acc += x[hy*n.inW+wx] * n.W[(d*n.Z+i)*n.G+j]
					}
				}
				out[(d*n.convH+y)*n.convW+xo] = acc
			}
		}
	}
	return out
}

// poolForward max-pools ReLU'd conv activations, recording argmax indices
// for backprop.
func (n *ConvNet) poolForward(conv []float64) (feat []float64, argmax []int) {
	feat = make([]float64, n.D*n.poolH*n.poolW)
	argmax = make([]int, len(feat))
	for d := 0; d < n.D; d++ {
		for py := 0; py < n.poolH; py++ {
			for px := 0; px < n.poolW; px++ {
				best, bi := math.Inf(-1), -1
				for i := 0; i < n.PoolK; i++ {
					for j := 0; j < n.PoolK; j++ {
						idx := (d*n.convH+py*n.PoolS+i)*n.convW + px*n.PoolS + j
						v := conv[idx]
						if v < 0 {
							v = 0 // ReLU
						}
						if v > best {
							best, bi = v, idx
						}
					}
				}
				o := (d*n.poolH+py)*n.poolW + px
				feat[o] = best
				argmax[o] = bi
			}
		}
	}
	return feat, argmax
}

// Predict classifies one image (float path).
func (n *ConvNet) Predict(img *tensor.Int) int {
	conv := n.convForward(normalize(img))
	feat, _ := n.poolForward(conv)
	return n.Head.Predict(feat)
}

// Accuracy evaluates the float path.
func (n *ConvNet) Accuracy(d *ImageDataset) float64 {
	hit := 0
	for i, img := range d.X {
		if n.Predict(img) == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(d.Len())
}

// Train runs end-to-end SGD (conv + head) and returns the final epoch's
// average loss.
func (n *ConvNet) Train(d *ImageDataset, rng *stats.RNG, epochs int, lr float64) float64 {
	if d.Len() == 0 {
		return 0
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	loss := 0.0
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		loss = 0
		for _, s := range idx {
			loss += n.step(d.X[s], d.Y[s], lr)
		}
		loss /= float64(d.Len())
	}
	return loss
}

// step performs one end-to-end SGD update.
func (n *ConvNet) step(img *tensor.Int, y int, lr float64) float64 {
	x := normalize(img)
	conv := n.convForward(x)
	feat, argmax := n.poolForward(conv)
	loss, dFeat := n.Head.stepWithInputGrad(feat, y, lr)
	// Backprop through pool (route to argmax) and ReLU.
	dConv := make([]float64, len(conv))
	for o, g := range dFeat {
		idx := argmax[o]
		if conv[idx] > 0 { // ReLU gate
			dConv[idx] += g
		}
	}
	// Conv weight/bias gradients.
	for d := 0; d < n.D; d++ {
		for yo := 0; yo < n.convH; yo++ {
			for xo := 0; xo < n.convW; xo++ {
				g := dConv[(d*n.convH+yo)*n.convW+xo]
				if g == 0 {
					continue
				}
				n.B[d] -= lr * g
				for i := 0; i < n.Z; i++ {
					hy := yo*n.S + i - n.Pad
					if hy < 0 || hy >= n.inH {
						continue
					}
					for j := 0; j < n.G; j++ {
						wx := xo*n.S + j - n.Pad
						if wx < 0 || wx >= n.inW {
							continue
						}
						n.W[(d*n.Z+i)*n.G+j] -= lr * g * x[hy*n.inW+wx]
					}
				}
			}
		}
	}
	return loss
}

// Quantize lowers the trained ConvNet into the integer CNN form: 8-bit
// symmetric conv filters, a calibrated feature shift, and a head fine-tuned
// for a few epochs on the quantised features before its own quantisation —
// the standard post-training pipeline for PIM deployment.
func (n *ConvNet) Quantize(rng *stats.RNG, calib *ImageDataset, tuneEpochs int, tuneLR float64) (*CNN, error) {
	if calib.Len() == 0 {
		return nil, fmt.Errorf("workload: empty calibration set")
	}
	maxAbs := 0.0
	for _, w := range n.W {
		if a := math.Abs(w); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	c := &CNN{
		Filters: tensor.NewFilter(n.D, n.C, n.Z, n.G),
		Stride:  n.S, Pad: n.Pad, PoolK: n.PoolK, PoolS: n.PoolS,
	}
	for i, w := range n.W {
		code := int(math.Round(w / maxAbs * 127))
		c.Filters.Data[i] = int32(code)
	}
	// Calibrate the feature shift over the calibration images.
	maxPsum := int32(0)
	for _, img := range calib.X {
		conv := tensor.Conv2D(img, c.Filters, nil, c.Stride, c.Pad)
		for _, v := range conv.Data {
			if v > maxPsum {
				maxPsum = v
			}
		}
	}
	c.FeatShift = 0
	for maxPsum>>uint(c.FeatShift) > 255 {
		c.FeatShift++
	}
	// Fine-tune a copy of the float head on the quantised features, then
	// quantise it.
	feats := &Dataset{Dim: n.D * n.poolH * n.poolW, Classes: calib.Classes}
	for i, img := range calib.X {
		feats.X = append(feats.X, featVec(c.features(img)))
		feats.Y = append(feats.Y, calib.Y[i])
	}
	head := n.Head.clone()
	head.Train(feats, rng, tuneEpochs, tuneLR)
	q, err := Quantize(head, feats, 8)
	if err != nil {
		return nil, err
	}
	c.Head = q
	c.headFloat = head
	return c, nil
}

// clone deep-copies an MLP.
func (m *MLP) clone() *MLP {
	cp := &MLP{Sizes: append([]int(nil), m.Sizes...)}
	for l := range m.W {
		w := make([][]float64, len(m.W[l]))
		for o := range w {
			w[o] = append([]float64(nil), m.W[l][o]...)
		}
		cp.W = append(cp.W, w)
		cp.B = append(cp.B, append([]float64(nil), m.B[l]...))
	}
	return cp
}
