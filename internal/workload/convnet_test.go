package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func trainedConvNet(t *testing.T, seed uint64) (*ConvNet, *ImageDataset, *ImageDataset) {
	t.Helper()
	rng := stats.NewRNG(seed)
	ds := SyntheticImages(rng, 600, 12, 4, 0.08)
	train, test := ds.Split(0.8)
	n := NewConvNet(rng, 12, 8, 32, 4)
	n.Train(train, rng, 15, 0.05)
	return n, train, test
}

func TestConvNetLearnsEndToEnd(t *testing.T) {
	n, train, test := trainedConvNet(t, 3)
	if acc := n.Accuracy(train); acc < 0.9 {
		t.Errorf("train accuracy = %.3f, want ≥0.9", acc)
	}
	if acc := n.Accuracy(test); acc < 0.85 {
		t.Errorf("test accuracy = %.3f, want ≥0.85", acc)
	}
}

func TestConvNetTrainingMovesFilters(t *testing.T) {
	rng := stats.NewRNG(5)
	ds := SyntheticImages(rng, 200, 12, 4, 0.08)
	n := NewConvNet(rng, 12, 4, 16, 4)
	before := append([]float64(nil), n.W...)
	l1 := n.Train(ds, rng, 1, 0.05)
	l10 := n.Train(ds, rng, 10, 0.05)
	if l10 >= l1 {
		t.Errorf("loss did not decrease: %.4f -> %.4f", l1, l10)
	}
	moved := 0.0
	for i := range n.W {
		moved += math.Abs(n.W[i] - before[i])
	}
	if moved == 0 {
		t.Errorf("conv filters did not move: backprop through conv is dead")
	}
}

// TestConvGradientNumeric spot-checks the conv weight gradient against a
// central finite difference.
func TestConvGradientNumeric(t *testing.T) {
	rng := stats.NewRNG(7)
	ds := SyntheticImages(rng, 4, 8, 2, 0.05)
	n := NewConvNet(rng, 8, 2, 8, 2)
	img, label := ds.X[0], ds.Y[0]

	lossOf := func(m *ConvNet) float64 {
		conv := m.convForward(normalize(img))
		feat, _ := m.poolForward(conv)
		acts := m.Head.forward(feat)
		probs := m.Head.softmaxInto(acts[len(acts)-1])
		return -math.Log(math.Max(probs[label], 1e-12))
	}

	// Analytic gradient of one weight via a tiny-LR step (grad ≈ Δw/lr).
	const wIdx = 3
	const lr = 1e-6
	clone := &ConvNet{}
	*clone = *n
	clone.W = append([]float64(nil), n.W...)
	clone.B = append([]float64(nil), n.B...)
	clone.Head = n.Head.clone()
	before := clone.W[wIdx]
	clone.step(img, label, lr)
	analytic := (before - clone.W[wIdx]) / lr

	// Numeric gradient.
	const h = 1e-5
	n.W[wIdx] = before + h
	lp := lossOf(n)
	n.W[wIdx] = before - h
	lm := lossOf(n)
	n.W[wIdx] = before
	numeric := (lp - lm) / (2 * h)

	if math.Abs(analytic-numeric) > 1e-3*(1+math.Abs(numeric)) {
		t.Errorf("conv gradient mismatch: step-implied %.6g, numeric %.6g", analytic, numeric)
	}
}

func TestConvNetQuantizePreservesAccuracy(t *testing.T) {
	n, train, test := trainedConvNet(t, 9)
	rng := stats.NewRNG(99)
	cnn, err := n.Quantize(rng, train, 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	accF := n.Accuracy(test)
	accQ := cnn.AccuracyInt(test)
	if accF-accQ > 0.06 {
		t.Errorf("quantisation cost %.3f accuracy (%.3f -> %.3f)", accF-accQ, accF, accQ)
	}
}

// TestTrainedConvNetRunsOnAnalogPipeline: the fully trained and quantised
// ConvNet classifies identically on functional TIMELY (ideal mode) as on
// the integer reference.
func TestTrainedConvNetRunsOnAnalogPipeline(t *testing.T) {
	n, train, test := trainedConvNet(t, 11)
	rng := stats.NewRNG(101)
	cnn, err := n.Quantize(rng, train, 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cnn.MapAnalog(core.IdealOptions(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range test.X {
		want := cnn.PredictInt(img)
		got, err := a.Predict(img)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("image %d: analog %d, integer %d", i, got, want)
		}
	}
}

func TestQuantizeErrorsConvNet(t *testing.T) {
	rng := stats.NewRNG(1)
	n := NewConvNet(rng, 12, 4, 16, 4)
	if _, err := n.Quantize(rng, &ImageDataset{}, 1, 0.01); err == nil {
		t.Errorf("empty calibration set accepted")
	}
}
