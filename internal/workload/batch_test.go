package workload

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/params"
	"repro/internal/stats"
)

// TestMLPBatchIdentityDeterministic: with a deterministic noise
// configuration the layer-major blocked path must classify every sample
// identically to per-sample Predict.
func TestMLPBatchIdentityDeterministic(t *testing.T) {
	m, train, test := trainedSetup(t, 21)
	q, err := Quantize(m, train, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := q.MapAnalog(core.IdealOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !a.BatchSafe() {
		t.Fatal("ideal mapping must be batch-safe")
	}
	preds := make([]int, test.Len())
	if err := a.PredictBatch(test.X, preds); err != nil {
		t.Fatal(err)
	}
	for i, x := range test.X {
		want, err := a.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if preds[i] != want {
			t.Fatalf("sample %d: batched %d, per-sample %d", i, preds[i], want)
		}
	}
	accSeq, err := a.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	accBatch, err := a.AccuracyBatch(test)
	if err != nil {
		t.Fatal(err)
	}
	if accSeq != accBatch {
		t.Fatalf("accuracy diverged: sequential %v, batched %v", accSeq, accBatch)
	}
}

// TestMLPBatchIdentityNoisy: with randomness configured BatchSafe must be
// false and AccuracyBatch must fall back to the exact per-sample path —
// two identically-seeded mappings, one evaluated sequentially and one
// batched, consume the same RNG stream and agree exactly.
func TestMLPBatchIdentityNoisy(t *testing.T) {
	m, train, test := trainedSetup(t, 22)
	q, err := Quantize(m, train, 8)
	if err != nil {
		t.Fatal(err)
	}
	mapNoisy := func() *AnalogMLP {
		t.Helper()
		noise := analog.DefaultNoise(77)
		a, err := q.MapAnalog(core.Options{
			Noise:         noise,
			InterfaceBits: 24,
			InputHops:     params.MaxCascadedXSubBufs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1 := mapNoisy()
	if a1.BatchSafe() {
		t.Fatal("noisy mapping reported batch-safe — reordering would change RNG draws")
	}
	accSeq, err := a1.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	a2 := mapNoisy()
	accBatch, err := a2.AccuracyBatch(test)
	if err != nil {
		t.Fatal(err)
	}
	if accSeq != accBatch {
		t.Fatalf("noisy fallback diverged: sequential %v, batched %v", accSeq, accBatch)
	}
}

// TestCNNBatchIdentity covers both regimes of the conv pipeline: the
// defect-study configuration (RNG present, every sigma zero) is
// deterministic and must take the cross-image blocked path; the
// design-point noise configuration must fall back.
func TestCNNBatchIdentity(t *testing.T) {
	cnn, _, test := trainedCNN(t, 23)

	mapFaulty := func() *AnalogCNN {
		t.Helper()
		a, err := cnn.MapAnalog(core.Options{
			Noise:         &analog.Noise{RNG: stats.NewRNG(91)},
			InterfaceBits: 24,
		}, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a := mapFaulty()
	if !a.BatchSafe() {
		t.Fatal("zero-sigma defect mapping must be batch-safe")
	}
	accSeq, err := a.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	accBatch, err := a.AccuracyBatch(test)
	if err != nil {
		t.Fatal(err)
	}
	if accSeq != accBatch {
		t.Fatalf("faulty-deterministic accuracy diverged: sequential %v, batched %v", accSeq, accBatch)
	}

	mapNoisy := func() *AnalogCNN {
		t.Helper()
		a, err := cnn.MapAnalog(core.Options{
			Noise:         analog.DefaultNoise(92),
			InterfaceBits: 24,
			InputHops:     params.MaxCascadedXSubBufs,
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	n1 := mapNoisy()
	if n1.BatchSafe() {
		t.Fatal("noisy CNN mapping reported batch-safe")
	}
	nSeq, err := n1.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	n2 := mapNoisy()
	nBatch, err := n2.AccuracyBatch(test)
	if err != nil {
		t.Fatal(err)
	}
	if nSeq != nBatch {
		t.Fatalf("noisy CNN fallback diverged: sequential %v, batched %v", nSeq, nBatch)
	}
}
