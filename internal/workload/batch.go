package workload

import (
	"fmt"

	"repro/internal/tensor"
)

// Batched inference: when every mapped layer's noise configuration is
// deterministic, inputs can be regrouped into matrix–matrix ForwardBatch
// waves across IMAGES (layer-major traversal: all images through layer 0,
// then all through layer 1, ...) without changing a single psum — the
// deterministic crossbar kernel is bit-identical per wave regardless of
// batch composition. With randomness configured the shared RNG stream
// makes any reorder unsafe, so the batch entry points fall back to the
// per-image path; either way the results equal the unbatched path byte
// for byte.

// predictBlock bounds the scratch footprint of the image-batched paths:
// images are processed in blocks of this many.
const predictBlock = 64

// BatchSafe reports whether layer-major image batching is bit-identical
// for this mapped model: every layer's batched forward path must be
// deterministic (no shared-RNG draw order to preserve).
func (a *AnalogMLP) BatchSafe() bool {
	for _, m := range a.mapped {
		if !m.BatchDeterministic() {
			return false
		}
	}
	return true
}

// PredictBatch classifies xs, writing one class index per input to out.
// Results are byte-identical to calling Predict on each input in order:
// the layer-major blocked path is taken only when BatchSafe reports the
// regrouping cannot change any psum.
func (a *AnalogMLP) PredictBatch(xs [][]float64, out []int) error {
	if len(out) != len(xs) {
		return fmt.Errorf("workload: %d outputs for %d inputs", len(out), len(xs))
	}
	if !a.BatchSafe() {
		for i, x := range xs {
			p, err := a.Predict(x)
			if err != nil {
				return err
			}
			out[i] = p
		}
		return nil
	}
	for base := 0; base < len(xs); base += predictBlock {
		n := len(xs) - base
		if n > predictBlock {
			n = predictBlock
		}
		if err := a.predictBlockDet(xs[base:base+n], out[base:base+n]); err != nil {
			return err
		}
	}
	return nil
}

// predictBlockDet runs one block of images layer-major through the
// deterministic matrix–matrix path.
func (a *AnalogMLP) predictBlockDet(xs [][]float64, out []int) error {
	n := len(xs)
	rows := a.mapped[0].Rows
	if cap(a.codes) < n*rows {
		a.codes = make([]int, n*rows)
	}
	codes := a.codes[:n*rows]
	for v, x := range xs {
		if len(x) != rows {
			return fmt.Errorf("workload: input %d has %d features for %d mapped rows", v, len(x), rows)
		}
		for i, f := range x {
			codes[v*rows+i] = a.q.InQ.Quantize(f)
		}
	}
	for l, m := range a.mapped {
		if cap(a.psums) < n*m.D {
			a.psums = make([]int, n*m.D)
		}
		psums := a.psums[:n*m.D]
		if err := m.ForwardBatch(codes[:n*m.Rows], n, psums); err != nil {
			return err
		}
		if l == len(a.mapped)-1 {
			for v := 0; v < n; v++ {
				ps := psums[v*m.D : (v+1)*m.D]
				best, bi := ps[0], 0
				for i, p := range ps {
					if p > best {
						best, bi = p, i
					}
				}
				out[v] = bi
			}
			return nil
		}
		if cap(a.codes) < n*m.D {
			a.codes = make([]int, n*m.D)
		}
		codes = a.codes[:n*m.D]
		for i, p := range psums {
			codes[i] = requantCode(int64(p), a.q.Shifts[l])
		}
	}
	return nil
}

// AccuracyBatch evaluates the analog pipeline over a dataset through the
// image-batched path. The returned accuracy is identical to Accuracy's.
func (a *AnalogMLP) AccuracyBatch(d *Dataset) (float64, error) {
	preds := make([]int, d.Len())
	if err := a.PredictBatch(d.X, preds); err != nil {
		return 0, err
	}
	hit := 0
	for i, p := range preds {
		if p == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(d.Len()), nil
}

// BatchSafe reports whether cross-image batching is bit-identical for
// this mapped CNN: the conv bank and every head layer must be
// deterministic.
func (a *AnalogCNN) BatchSafe() bool {
	return a.convMap.BatchDeterministic() && a.head.BatchSafe()
}

// AccuracyBatch evaluates the analog pipeline over a dataset, fanning
// blocks of images through one conv ForwardBatch wave (all patches of all
// block images at once) and the head's layer-major batched path. The
// returned accuracy is identical to Accuracy's; when BatchSafe is false
// it falls back to the per-image path outright.
func (a *AnalogCNN) AccuracyBatch(d *ImageDataset) (float64, error) {
	if !a.BatchSafe() || d.Len() == 0 {
		return a.Accuracy(d)
	}
	c := a.cnn
	preds := make([]int, d.Len())
	feats := make([][]float64, 0, predictBlock)
	for base := 0; base < d.Len(); base += predictBlock {
		n := d.Len() - base
		if n > predictBlock {
			n = predictBlock
		}
		rows, e, f := tensor.Im2ColDims(d.X[base], c.Filters.Z, c.Filters.G, c.Stride, c.Pad)
		pf := e * f // patches per image
		if cap(a.inputs) < n*pf*rows {
			a.inputs = make([]int, n*pf*rows)
		}
		inputs := a.inputs[:n*pf*rows]
		for v := 0; v < n; v++ {
			tensor.Im2ColIntoInts(d.X[base+v], c.Filters.Z, c.Filters.G, c.Stride, c.Pad,
				inputs[v*pf*rows:(v+1)*pf*rows])
		}
		if cap(a.psums) < n*pf*c.Filters.D {
			a.psums = make([]int, n*pf*c.Filters.D)
		}
		psums := a.psums[:n*pf*c.Filters.D]
		if err := a.convMap.ForwardBatch(inputs, n*pf, psums); err != nil {
			return 0, err
		}
		feats = feats[:0]
		for v := 0; v < n; v++ {
			conv := tensor.NewInt(c.Filters.D, e, f)
			for p := 0; p < pf; p++ {
				for dch := 0; dch < c.Filters.D; dch++ {
					conv.Data[dch*pf+p] = int32(psums[(v*pf+p)*c.Filters.D+dch])
				}
			}
			tensor.RequantizeShift(conv, c.FeatShift, 255)
			pooled := tensor.MaxPool2D(conv, c.PoolK, c.PoolS)
			feats = append(feats, featVec(pooled))
		}
		if err := a.head.PredictBatch(feats, preds[base:base+n]); err != nil {
			return 0, err
		}
	}
	hit := 0
	for i, p := range preds {
		if p == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(d.Len()), nil
}
