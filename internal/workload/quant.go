package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fixed"
)

// QuantMLP is an MLP quantised onto TIMELY's datapath: signed fixed-point
// weights (WeightBits wide), unsigned 8-bit activations with per-layer
// calibrated scales, and integer requantisation between layers. It supports
// two execution backends over identical integer math: an exact integer
// reference and the functional TIMELY analog pipeline (package core).
type QuantMLP struct {
	// Weights[l][o][i] are signed weight codes.
	Weights [][][]int
	// InQ quantises raw features to 8-bit input codes.
	InQ fixed.Quantizer
	// Shifts[l] is the post-layer requantisation shift back to 8-bit codes.
	Shifts []int
	// Classes is the output width.
	Classes int
}

// Quantize converts a trained MLP to fixed point, calibrating activation
// ranges on the given dataset. weightBits is the signed weight width (8 for
// the PRIME-precision TIMELY).
func Quantize(m *MLP, calib *Dataset, weightBits int) (*QuantMLP, error) {
	if len(m.W) == 0 {
		return nil, ErrUntrained
	}
	if calib.Len() == 0 {
		return nil, fixed.ErrEmpty
	}
	// Input quantiser over the calibration features.
	var feats []float64
	for _, x := range calib.X {
		feats = append(feats, x...)
	}
	inQ, err := fixed.CalibrateUnsigned(8, feats)
	if err != nil {
		return nil, err
	}
	q := &QuantMLP{InQ: inQ, Classes: m.Sizes[len(m.Sizes)-1]}
	// Per-layer symmetric weight quantisers.
	lim := int(1)<<(weightBits-1) - 1
	for l := range m.W {
		var flat []float64
		for _, row := range m.W[l] {
			flat = append(flat, row...)
		}
		wq, err := fixed.CalibrateSymmetric(weightBits, flat)
		if err != nil {
			return nil, err
		}
		wl := make([][]int, len(m.W[l]))
		for o, row := range m.W[l] {
			wl[o] = make([]int, len(row))
			for i, v := range row {
				wl[o][i] = fixed.ClampInt(wq.Quantize(v)-wq.Zero, -lim-1, lim)
			}
		}
		q.Weights = append(q.Weights, wl)
	}
	// Calibrate requantisation shifts: run the integer forward pass over the
	// calibration set and size each shift so the layer's max psum lands in
	// 8 bits.
	q.Shifts = make([]int, len(q.Weights))
	maxPsum := make([]int64, len(q.Weights))
	for _, x := range calib.X {
		codes := q.quantizeInput(x)
		for l := range q.Weights {
			psums := intFC(codes, q.Weights[l])
			for _, p := range psums {
				if p > maxPsum[l] {
					maxPsum[l] = p
				}
			}
			if l < len(q.Weights)-1 {
				codes = requant(psums, q.Shifts[l]) // shift 0 during calib
			}
		}
	}
	for l, mp := range maxPsum {
		sh := 0
		for mp>>uint(sh) > 255 {
			sh++
		}
		q.Shifts[l] = sh
		// Recalibrate downstream maxima is unnecessary: shifts only shrink
		// activations, so the 8-bit bound stays safe (conservative).
	}
	return q, nil
}

func (q *QuantMLP) quantizeInput(x []float64) []int {
	codes := make([]int, len(x))
	for i, v := range x {
		codes[i] = q.InQ.Quantize(v)
	}
	return codes
}

func intFC(codes []int, w [][]int) []int64 {
	out := make([]int64, len(w))
	for o, row := range w {
		var s int64
		for i, c := range codes {
			s += int64(c) * int64(row[i])
		}
		out[o] = s
	}
	return out
}

// requantCode shifts one psum down and clamps it into a ReLU'd 8-bit code —
// the single source of truth for the requantisation both the integer
// reference and the analog pipeline apply between layers.
func requantCode(p int64, sh int) int {
	v := p >> uint(sh)
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return int(v)
}

// requant shifts psums down and clamps into ReLU'd 8-bit codes.
func requant(psums []int64, sh int) []int {
	out := make([]int, len(psums))
	for i, p := range psums {
		out[i] = requantCode(p, sh)
	}
	return out
}

// PredictInt classifies x through the exact integer reference.
func (q *QuantMLP) PredictInt(x []float64) int {
	codes := q.quantizeInput(x)
	for l := range q.Weights {
		psums := intFC(codes, q.Weights[l])
		if l == len(q.Weights)-1 {
			return argmax64(psums)
		}
		codes = requant(psums, q.Shifts[l])
	}
	return 0
}

// AccuracyInt evaluates the integer reference on a dataset.
func (q *QuantMLP) AccuracyInt(d *Dataset) float64 {
	hit := 0
	for i, x := range d.X {
		if q.PredictInt(x) == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(d.Len())
}

// AnalogMLP is a QuantMLP programmed onto functional TIMELY sub-chips (one
// per layer), ready for repeated inference.
type AnalogMLP struct {
	q      *QuantMLP
	mapped []*core.MappedLayer

	// codes and psums are per-instance scratch reused across Predict calls
	// (an AnalogMLP is driven by one goroutine at a time).
	codes []int
	psums []int
}

// MapAnalog programs every layer onto a fresh functional sub-chip with the
// given options (noise, interface resolution, ledger).
func (q *QuantMLP) MapAnalog(opt core.Options) (*AnalogMLP, error) {
	a := &AnalogMLP{q: q}
	for l, wl := range q.Weights {
		sc := core.NewSubChip(opt)
		m, err := sc.MapDense(wl)
		if err != nil {
			return nil, fmt.Errorf("workload: mapping layer %d: %w", l, err)
		}
		a.mapped = append(a.mapped, m)
	}
	return a, nil
}

// Predict classifies x through the analog pipeline. Layer traversal reuses
// the instance scratch, so steady-state inference allocates nothing.
func (a *AnalogMLP) Predict(x []float64) (int, error) {
	if cap(a.codes) < len(x) {
		a.codes = make([]int, len(x))
	}
	codes := a.codes[:len(x)]
	for i, v := range x {
		codes[i] = a.q.InQ.Quantize(v)
	}
	for l, m := range a.mapped {
		if cap(a.psums) < m.D {
			a.psums = make([]int, m.D)
		}
		psums := a.psums[:m.D]
		if err := m.ForwardBatch(codes, 1, psums); err != nil {
			return 0, err
		}
		if l == len(a.mapped)-1 {
			best, bi := psums[0], 0
			for i, v := range psums {
				if v > best {
					best, bi = v, i
				}
			}
			return bi, nil
		}
		// Requantise into the code scratch.
		if cap(a.codes) < len(psums) {
			a.codes = make([]int, len(psums))
		}
		codes = a.codes[:len(psums)]
		for i, p := range psums {
			codes[i] = requantCode(int64(p), a.q.Shifts[l])
		}
	}
	return 0, nil
}

// Accuracy evaluates the analog pipeline on a dataset.
func (a *AnalogMLP) Accuracy(d *Dataset) (float64, error) {
	hit := 0
	for i, x := range d.X {
		p, err := a.Predict(x)
		if err != nil {
			return 0, err
		}
		if p == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(d.Len()), nil
}

func argmax64(xs []int64) int {
	best, bi := xs[0], 0
	for i, v := range xs {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
