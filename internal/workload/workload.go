// Package workload provides the training substrate for the paper's accuracy
// study (§VI-B): synthetic classification datasets, a pure-Go SGD-trained
// MLP, and post-training quantisation onto TIMELY's 8-bit datapath. The
// paper measures ≤0.1 % inference-accuracy loss under injected circuit
// noise; since ImageNet is not available offline, the same methodology runs
// on synthetic Gaussian-cluster data — the claim under test (accuracy delta
// between ideal and noisy analog execution of the same quantised network) is
// dataset-agnostic (see DESIGN.md "substitutions").
package workload

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Dataset is a labelled set of real-valued feature vectors.
type Dataset struct {
	X       [][]float64
	Y       []int
	Dim     int
	Classes int
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.X) }

// SyntheticClusters draws n samples from `classes` Gaussian clusters with
// unit-box centres and the given intra-cluster spread. Features are shifted
// to be non-negative (post-ReLU-like), matching TIMELY's unsigned input
// encoding.
func SyntheticClusters(rng *stats.RNG, n, dim, classes int, spread float64) *Dataset {
	if n <= 0 || dim <= 0 || classes <= 1 {
		panic(fmt.Sprintf("workload: invalid dataset spec n=%d dim=%d classes=%d", n, dim, classes))
	}
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.Float64()
		}
	}
	d := &Dataset{Dim: dim, Classes: classes}
	for i := 0; i < n; i++ {
		c := rng.Intn(classes)
		x := make([]float64, dim)
		for j := range x {
			v := centers[c][j] + rng.Gauss(0, spread)
			if v < 0 {
				v = 0
			}
			x[j] = v
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, c)
	}
	return d
}

// Split partitions the dataset into train/test at the given fraction.
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	cut := int(float64(d.Len()) * trainFrac)
	train = &Dataset{X: d.X[:cut], Y: d.Y[:cut], Dim: d.Dim, Classes: d.Classes}
	test = &Dataset{X: d.X[cut:], Y: d.Y[cut:], Dim: d.Dim, Classes: d.Classes}
	return train, test
}

// MLP is a fully-connected ReLU network trained with SGD on softmax
// cross-entropy. Forward and SGD passes reuse per-instance scratch, so an
// MLP must be driven by one goroutine at a time.
type MLP struct {
	// Sizes holds layer widths, input first.
	Sizes []int
	// W[l][o][i] and B[l][o] are the trainable parameters.
	W [][][]float64
	B [][]float64

	// Scratch reused across forward/SGD passes: layer activations, the two
	// alternating gradient ladders, softmax probabilities and the
	// noise-perturbed input of TrainWithNoise.
	acts         [][]float64
	gradA, gradB []float64
	probs        []float64
	noisy        []float64
}

// NewMLP builds an MLP with He-style random initialisation.
func NewMLP(rng *stats.RNG, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("workload: MLP needs at least input and output sizes")
	}
	m := &MLP{Sizes: sizes}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([][]float64, out)
		scale := math.Sqrt(2 / float64(in))
		for o := range w {
			w[o] = make([]float64, in)
			for i := range w[o] {
				w[o][i] = rng.Gauss(0, scale)
			}
		}
		m.W = append(m.W, w)
		m.B = append(m.B, make([]float64, out))
	}
	return m
}

// forward returns all layer activations (post-ReLU except the last). The
// returned slices are instance scratch, overwritten by the next pass.
func (m *MLP) forward(x []float64) [][]float64 {
	if m.acts == nil {
		m.acts = make([][]float64, len(m.Sizes))
		for l := 1; l < len(m.Sizes); l++ {
			m.acts[l] = make([]float64, m.Sizes[l])
		}
	}
	m.acts[0] = x
	cur := x
	for l := range m.W {
		next := m.acts[l+1]
		last := l == len(m.W)-1
		for o, row := range m.W[l] {
			s := m.B[l][o]
			for i, v := range cur {
				s += row[i] * v
			}
			if !last && s < 0 {
				s = 0
			}
			next[o] = s
		}
		cur = next
	}
	return m.acts
}

// Predict returns the argmax class for x.
func (m *MLP) Predict(x []float64) int {
	acts := m.forward(x)
	return argmaxF(acts[len(acts)-1])
}

// Accuracy returns the fraction of correctly classified samples.
func (m *MLP) Accuracy(d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	hit := 0
	for i, x := range d.X {
		if m.Predict(x) == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(d.Len())
}

// Train runs SGD for the given epochs and learning rate, returning the final
// average cross-entropy loss. Sample order reshuffles each epoch with rng.
func (m *MLP) Train(d *Dataset, rng *stats.RNG, epochs int, lr float64) float64 {
	if d.Len() == 0 {
		return 0
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	loss := 0.0
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		loss = 0
		for _, s := range idx {
			loss += m.step(d.X[s], d.Y[s], lr)
		}
		loss /= float64(d.Len())
	}
	return loss
}

// TrainWithNoise trains while injecting Gaussian perturbations into the
// forward activations, the noise-aware training the paper adopts from
// [53],[54],[57] to absorb analog errors.
func (m *MLP) TrainWithNoise(d *Dataset, rng *stats.RNG, epochs int, lr, actSigma float64) float64 {
	if actSigma == 0 {
		return m.Train(d, rng, epochs, lr)
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	loss := 0.0
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		loss = 0
		for _, s := range idx {
			if cap(m.noisy) < len(d.X[s]) {
				m.noisy = make([]float64, len(d.X[s]))
			}
			x := m.noisy[:len(d.X[s])]
			for j, v := range d.X[s] {
				x[j] = v * (1 + rng.Gauss(0, actSigma))
			}
			loss += m.step(x, d.Y[s], lr)
		}
		loss /= float64(d.Len())
	}
	return loss
}

// step performs one SGD update and returns the sample loss.
func (m *MLP) step(x []float64, y int, lr float64) float64 {
	loss, _ := m.stepWithInputGrad(x, y, lr)
	return loss
}

// stepWithInputGrad performs one SGD update and additionally returns the
// loss gradient with respect to the input vector (un-gated — upstream
// layers apply their own activation derivative), which lets convolutional
// front-ends backpropagate through the head. The returned slice is instance
// scratch, valid until the next pass.
func (m *MLP) stepWithInputGrad(x []float64, y int, lr float64) (float64, []float64) {
	acts := m.forward(x)
	out := acts[len(acts)-1]
	probs := m.softmaxInto(out)
	loss := -math.Log(math.Max(probs[y], 1e-12))
	if m.gradA == nil {
		maxW := 0
		for _, s := range m.Sizes {
			if s > maxW {
				maxW = s
			}
		}
		m.gradA = make([]float64, maxW)
		m.gradB = make([]float64, maxW)
	}
	// Backprop: delta at output = probs - onehot. The delta/prev ladders
	// alternate between the two scratch buffers.
	delta, other := m.gradA[:len(out)], m.gradB
	copy(delta, probs)
	delta[y] -= 1
	var inputGrad []float64
	for l := len(m.W) - 1; l >= 0; l-- {
		in := acts[l]
		prev := other[:len(in)]
		for i := range prev {
			prev[i] = 0
		}
		for o, row := range m.W[l] {
			g := delta[o]
			m.B[l][o] -= lr * g
			lg := lr * g
			for i, ri := range row {
				prev[i] += g * ri
				row[i] = ri - lg*in[i]
			}
		}
		if l > 0 {
			// ReLU derivative of the hidden activation.
			for i, v := range in {
				if v <= 0 {
					prev[i] = 0
				}
			}
			delta, other = prev, delta[:cap(delta)]
		} else {
			inputGrad = prev
		}
	}
	return loss, inputGrad
}

// softmaxInto computes softmax(xs) into the instance probability scratch.
func (m *MLP) softmaxInto(xs []float64) []float64 {
	mx := xs[0]
	for _, v := range xs[1:] {
		if v > mx {
			mx = v
		}
	}
	if cap(m.probs) < len(xs) {
		m.probs = make([]float64, len(xs))
	}
	out := m.probs[:len(xs)]
	s := 0.0
	for i, v := range xs {
		out[i] = math.Exp(v - mx)
		s += out[i]
	}
	for i := range out {
		out[i] /= s
	}
	return out
}

func argmaxF(xs []float64) int {
	best, bi := math.Inf(-1), 0
	for i, v := range xs {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// ErrUntrained is returned when quantising a degenerate model.
var ErrUntrained = errors.New("workload: model has no layers")
