package energy

import (
	"testing"
	"testing/quick"
)

func testLedger() *Ledger {
	return NewLedger(map[Component]float64{
		L1Read:    20.0,
		DTCConv:   37.5,
		TDCConv:   145.0,
		XSubBufOp: 0.62,
	})
}

func TestAddAndEnergy(t *testing.T) {
	l := testLedger()
	l.Add(L1Read, ClassInput, 100)
	l.Add(L1Read, ClassPsum, 50)
	if got := l.Count(L1Read); got != 150 {
		t.Errorf("Count = %v, want 150", got)
	}
	if got := l.Energy(L1Read); got != 150*20 {
		t.Errorf("Energy = %v, want 3000", got)
	}
	if got := l.EnergyClass(L1Read, ClassInput); got != 2000 {
		t.Errorf("EnergyClass(input) = %v, want 2000", got)
	}
}

func TestTotalAndByClass(t *testing.T) {
	l := testLedger()
	l.Add(L1Read, ClassInput, 10)
	l.Add(DTCConv, ClassInput, 10)
	l.Add(TDCConv, ClassPsum, 4)
	wantTotal := 10*20.0 + 10*37.5 + 4*145.0
	if got := l.Total(); got != wantTotal {
		t.Errorf("Total = %v, want %v", got, wantTotal)
	}
	if got := l.ByClass(ClassInput); got != 10*20.0+10*37.5 {
		t.Errorf("ByClass(input) = %v", got)
	}
}

func TestByLevelAndMovement(t *testing.T) {
	l := testLedger()
	l.Add(L1Read, ClassInput, 10)    // L1
	l.Add(XSubBufOp, ClassInput, 30) // ALB
	l.Add(DTCConv, ClassInput, 10)   // interface: LevelNone
	if got := l.ByLevel(LevelL1); got != 200 {
		t.Errorf("ByLevel(L1) = %v, want 200", got)
	}
	if got := l.ByLevel(LevelALB); got != 30*0.62 {
		t.Errorf("ByLevel(ALB) = %v", got)
	}
	// Movement excludes the DTC conversions.
	if got := l.MovementByClass(ClassInput); got != 200+30*0.62 {
		t.Errorf("MovementByClass = %v", got)
	}
}

func TestInterfaceEnergy(t *testing.T) {
	l := testLedger()
	l.Add(DTCConv, ClassInput, 2)
	l.Add(TDCConv, ClassPsum, 2)
	l.Add(L1Read, ClassInput, 100)
	if got := l.InterfaceEnergy(); got != 2*37.5+2*145 {
		t.Errorf("InterfaceEnergy = %v", got)
	}
}

func TestMergeAndReset(t *testing.T) {
	a, b := testLedger(), testLedger()
	a.Add(L1Read, ClassInput, 1)
	b.Add(L1Read, ClassInput, 2)
	b.Add(DTCConv, ClassInput, 3)
	a.Merge(b)
	if got := a.Count(L1Read); got != 3 {
		t.Errorf("merged count = %v, want 3", got)
	}
	if got := a.Count(DTCConv); got != 3 {
		t.Errorf("merged DTC count = %v, want 3", got)
	}
	a.Reset()
	if a.Total() != 0 {
		t.Errorf("Reset left energy behind")
	}
	if a.Unit(L1Read) != 20 {
		t.Errorf("Reset dropped unit table")
	}
}

func TestLevelOf(t *testing.T) {
	cases := map[Component]Level{
		XSubBufOp:   LevelALB,
		PSubBufOp:   LevelALB,
		IAdderOp:    LevelALB,
		L1Read:      LevelL1,
		EDRAMRead:   LevelL1,
		L2Write:     LevelL2,
		BusOp:       LevelL3,
		HyperLinkOp: LevelL3,
		DTCConv:     LevelNone,
		CrossbarOp:  LevelNone,
	}
	for c, want := range cases {
		if got := LevelOf(c); got != want {
			t.Errorf("LevelOf(%v) = %v, want %v", c, got, want)
		}
	}
}

func TestIsInterface(t *testing.T) {
	for _, c := range []Component{DTCConv, TDCConv, DACConv, ADCConv} {
		if !IsInterface(c) {
			t.Errorf("%v not flagged as interface", c)
		}
	}
	if IsInterface(L1Read) {
		t.Errorf("L1Read flagged as interface")
	}
}

func TestStringCoverage(t *testing.T) {
	for _, c := range Components() {
		if c.String() == "" {
			t.Errorf("component %d has empty name", int(c))
		}
	}
	for _, cl := range Classes() {
		if cl.String() == "" {
			t.Errorf("class %d has empty name", int(cl))
		}
	}
	if Component(99).String() == "" || Class(99).String() == "" || Level(99).String() == "" {
		t.Errorf("out-of-range String() must not be empty")
	}
}

// Property: Total always equals the sum over classes and the sum over levels
// plus non-memory components.
func TestTotalConsistencyProperty(t *testing.T) {
	f := func(ops [8]uint8) bool {
		l := testLedger()
		comps := []Component{L1Read, DTCConv, TDCConv, XSubBufOp}
		classes := []Class{ClassInput, ClassPsum}
		for i, n := range ops {
			l.Add(comps[i%len(comps)], classes[i%len(classes)], float64(n))
		}
		var byClass float64
		for _, cl := range Classes() {
			byClass += l.ByClass(cl)
		}
		diff := l.Total() - byClass
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
