// Package energy implements the typed accounting ledger every simulator
// writes into: operation counts per circuit component, tagged with the data
// class being moved (input / psum / output / weight / compute), so the
// paper's breakdowns can be queried along any axis — by component (Fig. 9b),
// by data type (Fig. 9d), or by memory level (Fig. 9c).
//
// Counts and unit energies are kept separately; energy is counts × unit.
// Units are femtojoules.
package energy

import "fmt"

// Component enumerates every energy-bearing circuit block across TIMELY,
// PRIME and ISAAC.
type Component int

const (
	// L1Read / L1Write: accesses to the (ReRAM) input/output buffers of a
	// sub-chip (TIMELY) or the buffers next to FF subarrays (PRIME).
	L1Read Component = iota
	L1Write
	// L2Read / L2Write: PRIME's mem-subarray level (absent in TIMELY).
	L2Read
	L2Write
	// DTCConv / TDCConv: time-domain interface conversions.
	DTCConv
	TDCConv
	// DACConv / ADCConv: voltage-domain interface conversions (baselines).
	DACConv
	ADCConv
	// CrossbarOp: one crossbar compute activation.
	CrossbarOp
	// ChargingOp: one charging-unit + comparator operation.
	ChargingOp
	// XSubBufOp / PSubBufOp / IAdderOp: analog local buffer operations.
	XSubBufOp
	PSubBufOp
	IAdderOp
	// ReLUOp / MaxPoolOp / ShiftAddOp: digital post-processing.
	ReLUOp
	MaxPoolOp
	ShiftAddOp
	// BusOp: on-chip bus transfer; HyperLinkOp: inter-chip HyperTransport.
	BusOp
	HyperLinkOp
	// EDRAMRead / EDRAMWrite / IRRead: ISAAC's tile memory hierarchy.
	EDRAMRead
	EDRAMWrite
	IRRead
	numComponents
)

var componentNames = [numComponents]string{
	"L1.read", "L1.write", "L2.read", "L2.write",
	"DTC", "TDC", "DAC", "ADC",
	"crossbar", "charging", "X-subBuf", "P-subBuf", "I-adder",
	"ReLU", "maxpool", "shift-add",
	"bus", "hyperlink",
	"eDRAM.read", "eDRAM.write", "IR.read",
}

// String returns the component's name.
func (c Component) String() string {
	if c < 0 || c >= numComponents {
		return fmt.Sprintf("component(%d)", int(c))
	}
	return componentNames[c]
}

// Components returns all components in declaration order.
func Components() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Class tags which kind of data an operation served (Fig. 9(d)'s axis).
type Class int

const (
	// ClassInput: movements/conversions of layer inputs.
	ClassInput Class = iota
	// ClassPsum: partial-sum movements/conversions.
	ClassPsum
	// ClassOutput: final output writes (and their interfaces).
	ClassOutput
	// ClassCompute: in-array computation.
	ClassCompute
	// ClassDigital: digital post-processing.
	ClassDigital
	// ClassComm: inter-tile / inter-chip communication.
	ClassComm
	numClasses
)

var classNames = [numClasses]string{"input", "psum", "output", "compute", "digital", "comm"}

// String returns the data-class name.
func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Classes returns all classes in declaration order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Level is the memory-hierarchy attribution of a component (Fig. 9(c)).
type Level int

const (
	// LevelALB: analog local buffers (X-subBuf, P-subBuf, I-adder).
	LevelALB Level = iota
	// LevelL1: first-level digital memory (TIMELY buffers, ISAAC eDRAM+IR).
	LevelL1
	// LevelL2: second-level memory (PRIME mem subarrays).
	LevelL2
	// LevelL3: bus / inter-chip links.
	LevelL3
	// LevelNone: not a memory access (interfaces, compute, digital).
	LevelNone
	numLevels
)

var levelNames = [numLevels]string{"ALB", "L1", "L2", "L3", "-"}

// String returns the memory-level name.
func (l Level) String() string {
	if l < 0 || l >= numLevels {
		return fmt.Sprintf("level(%d)", int(l))
	}
	return levelNames[l]
}

// LevelOf maps each component to its memory level.
func LevelOf(c Component) Level {
	switch c {
	case XSubBufOp, PSubBufOp, IAdderOp:
		return LevelALB
	case L1Read, L1Write, EDRAMRead, EDRAMWrite, IRRead:
		return LevelL1
	case L2Read, L2Write:
		return LevelL2
	case BusOp, HyperLinkOp:
		return LevelL3
	}
	return LevelNone
}

// IsInterface reports whether the component is a D/A or A/D conversion
// (the Fig. 9(b) axis).
func IsInterface(c Component) bool {
	switch c {
	case DTCConv, TDCConv, DACConv, ADCConv:
		return true
	}
	return false
}

// Ledger accumulates tagged operation counts against a unit-energy table.
type Ledger struct {
	units  [numComponents]float64
	counts [numComponents][numClasses]float64
}

// NewLedger builds a ledger with the given per-component unit energies (fJ).
// Components absent from the map cost zero.
func NewLedger(units map[Component]float64) *Ledger {
	l := &Ledger{}
	for c, e := range units {
		l.units[c] = e
	}
	return l
}

// Add records n operations of component c serving class cl.
func (l *Ledger) Add(c Component, cl Class, n float64) {
	l.counts[c][cl] += n
}

// Count returns the operation count of component c across all classes.
func (l *Ledger) Count(c Component) float64 {
	s := 0.0
	for _, v := range l.counts[c] {
		s += v
	}
	return s
}

// CountClass returns the operation count of component c serving class cl.
func (l *Ledger) CountClass(c Component, cl Class) float64 { return l.counts[c][cl] }

// Unit returns the unit energy of component c.
func (l *Ledger) Unit(c Component) float64 { return l.units[c] }

// Energy returns the energy of component c across all classes (fJ).
func (l *Ledger) Energy(c Component) float64 { return l.Count(c) * l.units[c] }

// EnergyClass returns the energy of component c serving class cl (fJ).
func (l *Ledger) EnergyClass(c Component, cl Class) float64 {
	return l.counts[c][cl] * l.units[c]
}

// Total returns the whole-ledger energy (fJ).
func (l *Ledger) Total() float64 {
	s := 0.0
	for c := Component(0); c < numComponents; c++ {
		s += l.Energy(c)
	}
	return s
}

// ByClass returns the total energy attributed to class cl (fJ).
func (l *Ledger) ByClass(cl Class) float64 {
	s := 0.0
	for c := Component(0); c < numComponents; c++ {
		s += l.EnergyClass(c, cl)
	}
	return s
}

// ByLevel returns the total energy of accesses at memory level lv (fJ).
func (l *Ledger) ByLevel(lv Level) float64 {
	s := 0.0
	for c := Component(0); c < numComponents; c++ {
		if LevelOf(c) == lv {
			s += l.Energy(c)
		}
	}
	return s
}

// MovementByClass returns the data-movement energy (memory + ALB + comm
// levels, excluding interfaces and compute) attributed to class cl.
func (l *Ledger) MovementByClass(cl Class) float64 {
	s := 0.0
	for c := Component(0); c < numComponents; c++ {
		if LevelOf(c) != LevelNone {
			s += l.EnergyClass(c, cl)
		}
	}
	return s
}

// InterfaceEnergy returns the total D/A + A/D conversion energy (fJ).
func (l *Ledger) InterfaceEnergy() float64 {
	s := 0.0
	for c := Component(0); c < numComponents; c++ {
		if IsInterface(c) {
			s += l.Energy(c)
		}
	}
	return s
}

// Merge adds other's counts into l. Unit tables must agree for meaningful
// results; Merge keeps l's units.
func (l *Ledger) Merge(other *Ledger) {
	for c := 0; c < int(numComponents); c++ {
		for cl := 0; cl < int(numClasses); cl++ {
			l.counts[c][cl] += other.counts[c][cl]
		}
	}
}

// Reset clears all counts, keeping the unit table.
func (l *Ledger) Reset() {
	l.counts = [numComponents][numClasses]float64{}
}
