package timing

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/model"
	"repro/internal/params"
	"repro/internal/trace"
)

// TestBuildMirrorsAnalytic checks that the machine's capacity decision,
// duplication and closed-form bottleneck agree with accel.Timely for every
// zoo network — the timing backend simulates exactly the deployment the
// analytic model prices.
func TestBuildMirrorsAnalytic(t *testing.T) {
	for _, name := range model.BenchmarkNames() {
		n, err := model.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Build(n, params.DefaultTimely(8), Options{})
		if err != nil {
			t.Fatal(err)
		}
		ar, err := accel.NewTimely(8, 1).Evaluate(n)
		if err != nil {
			t.Fatal(err)
		}
		if m.Fits != ar.Fits {
			t.Errorf("%s: machine fits=%v, analytic fits=%v", name, m.Fits, ar.Fits)
		}
		if got, want := m.AnalyticCyclesPerImage(), ar.CyclesPerImage; !approxEqual(got, want, 1e-9) {
			t.Errorf("%s: machine analytic bottleneck %.6f, accel %.6f", name, got, want)
		}
		for i, s := range m.Stages {
			if i < len(ar.Instances) && s.Instances != ar.Instances[i] {
				t.Errorf("%s stage %d: %d instances, accel has %d", name, i, s.Instances, ar.Instances[i])
			}
		}
	}
}

func approxEqual(a, b, rel float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m < 1 {
		m = 1
	}
	return d <= rel*m
}

// TestBatchingPreservesOccupancy checks the builder's core accounting
// invariant: coalescing waves into fewer batches never changes any unit
// role's total occupancy per image — batching only changes the granularity
// at which overlap is resolved, so the steady-state bottleneck is
// batch-count independent.
func TestBatchingPreservesOccupancy(t *testing.T) {
	n, err := model.ByName("VGG-D")
	if err != nil {
		t.Fatal(err)
	}
	cfg := params.DefaultTimely(8)
	occupancy := func(batches int) map[[3]int32]int64 {
		m, err := Build(n, cfg, Options{Images: 8, MaxBatchesPerImage: batches})
		if err != nil {
			t.Fatal(err)
		}
		occ := map[[3]int32]int64{} // (stage, image, kind) → summed duration
		for _, c := range m.cmds {
			occ[[3]int32{c.Stage, c.Image, int32(c.Kind)}] += c.DurPS
		}
		return occ
	}
	coarse := occupancy(1)
	fine := occupancy(64)
	for key, want := range coarse {
		got := fine[key]
		if Kind(key[2]) == KindTransfer {
			// Per-batch beat rounding may add at most one beat per batch.
			if got < want || got > want+64*TransferBeatPS {
				t.Errorf("stage %d image %d transfer occupancy %d at 64 batches, %d at 1", key[0], key[1], got, want)
			}
			continue
		}
		if got != want {
			t.Errorf("stage %d image %d kind %s occupancy %d at 64 batches, %d at 1",
				key[0], key[1], Kind(key[2]), got, want)
		}
	}
}

// TestHyperTransportCrossing forces every stage boundary across a chip edge
// (χ = 1) and checks that transfers ride the shared per-chip HyperTransport
// ports at HyperLanes width — and that the simulation still completes and
// reports a steady interval no better than the analytic bound (the shared
// link can only add contention, never remove work).
func TestHyperTransportCrossing(t *testing.T) {
	n, err := model.ByName("MLP-L")
	if err != nil {
		t.Fatal(err)
	}
	cfg := params.DefaultTimely(8)
	cfg.SubChips = 1
	cfg.Chips = 64
	m, err := Build(n, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ht := 0
	for _, u := range m.units {
		if strings.HasPrefix(u.name, "ht:chip") {
			ht++
		}
		if strings.HasPrefix(u.name, "chan:") {
			t.Errorf("χ=1 deployment built local channel %s; every boundary must cross", u.name)
		}
	}
	if ht == 0 {
		t.Fatal("χ=1 deployment built no HyperTransport units")
	}
	for _, c := range m.cmds {
		if c.Kind != KindTransfer || c.DurPS == 0 {
			continue
		}
		if c.DurPS%TransferBeatPS != 0 {
			t.Fatalf("transfer duration %d not beat-aligned", c.DurPS)
		}
	}
	res, err := m.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesPerImage < res.AnalyticCyclesPerImage*(1-1e-9) {
		t.Errorf("contended deployment measured %.4f cycles/image, below the analytic bound %.4f",
			res.CyclesPerImage, res.AnalyticCyclesPerImage)
	}
}

// TestRunDeterministicRepeat runs the same machine twice and requires
// identical results and identical span streams — the determinism contract
// every downstream golden depends on.
func TestRunDeterministicRepeat(t *testing.T) {
	n, err := model.ByName("SqueezeNet")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*Result, []trace.Span) {
		m, err := Build(n, params.DefaultTimely(8), Options{Images: 12})
		if err != nil {
			t.Fatal(err)
		}
		var spans []trace.Span
		res, err := m.Run(context.Background(), func(s trace.Span) { spans = append(spans, s) })
		if err != nil {
			t.Fatal(err)
		}
		return res, spans
	}
	r1, s1 := run()
	r2, s2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("results differ across repeated runs:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("span streams differ across repeated runs (%d vs %d spans)", len(s1), len(s2))
	}
	if len(s1) != r1.Commands {
		t.Errorf("emitted %d spans for %d commands", len(s1), r1.Commands)
	}
}
