package timing

import (
	"context"
	"sort"

	"repro/internal/model"
	"repro/internal/params"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

// LayerTiming is one pipeline stage's measured timing summary.
type LayerTiming struct {
	// Name is the layer name.
	Name string
	// Instances is the weight-duplication count simulated.
	Instances int
	// SubChips is the sub-chip count of one instance.
	SubChips int
	// WavesPerImage is the per-instance wave count per image.
	WavesPerImage int64
	// ServiceCyclesPerImage is the effective steady-state service time in
	// pipeline cycles (waves / instances) — the analytic stage figure.
	ServiceCyclesPerImage float64
	// UtilizationPct is the stage's pace-setting DTC bank occupancy over
	// the makespan, averaged across instances. The bottleneck stage runs
	// near 100 %; everything else idles in proportion.
	UtilizationPct float64
	// StallCyclesPerImage is the measured fill/starvation stall: the idle
	// cycles of the stage's DTC bank between its first and last wave,
	// per image, averaged across instances. Zero for a stage that streams
	// back-to-back; large when upstream stages or link contention starve
	// it.
	StallCyclesPerImage float64
}

// UnitUtilization aggregates occupancy per command kind across the machine.
type UnitUtilization struct {
	// Kind is the unit role ("dtc_convert", "transfer", ...).
	Kind Kind
	// Units is how many exclusive units of the role the machine has.
	Units int
	// BusyPS is the summed occupancy across those units.
	BusyPS int64
	// UtilizationPct is BusyPS over (units × makespan).
	UtilizationPct float64
}

// Result is one timing simulation's measured outcome.
type Result struct {
	// Network names the simulated model.
	Network string
	// Images is the image count pushed through.
	Images int
	// Fits mirrors the analytic capacity check.
	Fits bool
	// CycleTimePS is the nominal pipeline-cycle time γ·25 ns.
	CycleTimePS float64
	// MakespanPS is when the last image's last write completed.
	MakespanPS int64
	// SteadyIntervalPS is the measured inter-departure interval over the
	// second half of the run.
	SteadyIntervalPS float64
	// CyclesPerImage is SteadyIntervalPS in pipeline cycles — the
	// measured counterpart of the analytic bottleneck.
	CyclesPerImage float64
	// AnalyticCyclesPerImage is the closed-form bottleneck for the same
	// placement and duplication (what accel.Timely reports).
	AnalyticCyclesPerImage float64
	// ImagesPerSec is the measured steady-state throughput.
	ImagesPerSec float64
	// AnalyticImagesPerSec is the closed-form throughput.
	AnalyticImagesPerSec float64
	// ThroughputDeltaPct is (measured − analytic)/analytic × 100.
	ThroughputDeltaPct float64
	// LatencyPS holds every image's end-to-end latency (first stage-0
	// input-load issue to last output write), in image order.
	LatencyPS []float64
	// LatencyP50PS/P95/P99 summarise the latency distribution.
	LatencyP50PS, LatencyP95PS, LatencyP99PS float64
	// FillCycles is the first image's latency in pipeline cycles — the
	// pipeline fill depth.
	FillCycles float64
	// Layers is the per-stage timing detail, in network order.
	Layers []LayerTiming
	// Roles is the per-role utilization aggregate, in command-set order.
	Roles []UnitUtilization
	// Commands is the executed command count.
	Commands int
}

// Run executes the machine's command DAG and aggregates the measured
// timing. When sink is non-nil every command's realised occupancy is
// emitted as a trace.Span in completion order. Run is deterministic:
// equal machines produce identical Results (and identical span streams)
// on every call. ctx cancellation aborts mid-simulation.
func (m *Machine) Run(ctx context.Context, sink func(trace.Span)) (*Result, error) {
	nu := len(m.units)
	busy := make([]int64, nu)
	first := make([]int64, nu)
	last := make([]int64, nu)
	for i := range first {
		first[i] = -1
	}
	imgStart := make([]int64, m.Images)
	imgEnd := make([]int64, m.Images)
	makespan := int64(0)

	visit := func(idx int32, startPS, endPS int64) {
		c := &m.cmds[idx]
		u := c.Unit
		busy[u] += endPS - startPS
		if first[u] < 0 {
			first[u] = startPS
		}
		last[u] = endPS
		if endPS > makespan {
			makespan = endPS
		}
		if idx == m.firstCmd[c.Image] {
			imgStart[c.Image] = startPS
		}
		if idx == m.lastCmd[c.Image] {
			imgEnd[c.Image] = endPS
		}
		if sink != nil {
			stage := ""
			if ts, ok := c.Kind.TraceStage(); ok {
				stage = ts.String()
			}
			sink(trace.Span{
				Unit:    m.units[u].name,
				Op:      c.Kind.String(),
				Stage:   stage,
				Layer:   m.Stages[c.Stage].Layer.Name,
				Image:   int(c.Image),
				Wave0:   c.Wave0,
				Waves:   c.Waves,
				StartPS: startPS,
				EndPS:   endPS,
			})
		}
	}
	if err := Execute(ctx, m.cmds, nu, visit); err != nil {
		return nil, err
	}

	res := &Result{
		Network:                m.Net.Name,
		Images:                 m.Images,
		Fits:                   m.Fits,
		CycleTimePS:            float64(m.Cons.CyclePS),
		MakespanPS:             makespan,
		AnalyticCyclesPerImage: m.AnalyticCyclesPerImage(),
		Commands:               len(m.cmds),
	}

	// Steady-state inter-departure interval over the second half of the
	// departures (sorted: instance round-robin completes out of image
	// order). Departures cluster in bursts of the duplication count, so
	// the window is trimmed to whole rounds — a window cut mid-burst
	// biases the estimate by up to a burst period.
	departs := append([]int64(nil), imgEnd...)
	sort.Slice(departs, func(i, j int) bool { return departs[i] < departs[j] })
	n := len(departs)
	span := n - 1 - n/2
	if dup := m.Stages[len(m.Stages)-1].Instances; dup > 1 && span >= dup {
		span -= span % dup
	}
	if span > 0 {
		res.SteadyIntervalPS = float64(departs[n-1]-departs[n-1-span]) / float64(span)
	} else {
		res.SteadyIntervalPS = float64(makespan) / float64(m.Images)
	}
	res.CyclesPerImage = res.SteadyIntervalPS / res.CycleTimePS
	res.ImagesPerSec = pipeline.Throughput(res.CyclesPerImage, res.CycleTimePS)
	res.AnalyticImagesPerSec = pipeline.Throughput(res.AnalyticCyclesPerImage, res.CycleTimePS)
	if res.AnalyticImagesPerSec > 0 {
		res.ThroughputDeltaPct = (res.ImagesPerSec - res.AnalyticImagesPerSec) / res.AnalyticImagesPerSec * 100
	}

	// Latency distribution via the shared one-sort percentile helper.
	res.LatencyPS = make([]float64, m.Images)
	for i := range imgEnd {
		res.LatencyPS[i] = float64(imgEnd[i] - imgStart[i])
	}
	var pct [3]float64
	stats.PercentilesInto(res.LatencyPS, []float64{50, 95, 99}, pct[:])
	res.LatencyP50PS, res.LatencyP95PS, res.LatencyP99PS = pct[0], pct[1], pct[2]
	res.FillCycles = res.LatencyPS[0] / res.CycleTimePS

	// Per-layer detail: the DTC bank is the stage's pace-setter (the
	// conversion bottleneck of §VI-A), so its occupancy defines stage
	// utilization and its in-window idle time defines the stall figure.
	for si, s := range m.Stages {
		lt := LayerTiming{
			Name:                  s.Layer.Name,
			Instances:             s.Instances,
			SubChips:              s.Placement.SubChips,
			WavesPerImage:         s.WavesPerImage,
			ServiceCyclesPerImage: float64(s.WavesPerImage) / float64(s.Instances),
		}
		var utilSum, stallSum float64
		for ui, u := range m.units {
			if u.stage != int32(si) || u.role != KindDTCConvert {
				continue
			}
			if first[ui] < 0 {
				continue // instance never issued (more instances than images)
			}
			if makespan > 0 {
				utilSum += float64(busy[ui]) / float64(makespan) * 100
			}
			// Images this instance served under the round-robin.
			served := m.Images / s.Instances
			if int(u.instance) < m.Images%s.Instances {
				served++
			}
			if served > 0 {
				idle := float64(last[ui]-first[ui]-busy[ui]) / res.CycleTimePS
				stallSum += idle / float64(served)
			}
		}
		lt.UtilizationPct = utilSum / float64(s.Instances)
		lt.StallCyclesPerImage = stallSum / float64(s.Instances)
		res.Layers = append(res.Layers, lt)
	}

	// Per-role aggregate utilization.
	for k := KindInputLoad; k < NumKinds; k++ {
		agg := UnitUtilization{Kind: k}
		for ui, u := range m.units {
			if u.role != k {
				continue
			}
			agg.Units++
			agg.BusyPS += busy[ui]
		}
		if agg.Units > 0 && makespan > 0 {
			agg.UtilizationPct = float64(agg.BusyPS) / (float64(agg.Units) * float64(makespan)) * 100
		}
		if agg.Units > 0 {
			res.Roles = append(res.Roles, agg)
		}
	}
	return res, nil
}

// Simulate is the one-call form: build the machine for the network and
// configuration, run it, and return the measured timing.
func Simulate(ctx context.Context, n *model.Network, cfg params.TimelyConfig, opt Options, sink func(trace.Span)) (*Result, error) {
	m, err := Build(n, cfg, opt)
	if err != nil {
		return nil, err
	}
	return m.Run(ctx, sink)
}
