package timing

import (
	"context"
	"errors"
	"testing"

	"repro/internal/trace"
)

// TestExecuteFCFSAndDeps pins the issue rules on a hand-built command set:
// units serialize their queues in (ready, index) order, and dependencies
// gate readiness.
func TestExecuteFCFSAndDeps(t *testing.T) {
	cmds := []Command{
		{Unit: 0, DurPS: 10, Dep0: None, Dep1: None}, // A: [0,10)
		{Unit: 0, DurPS: 5, Dep0: None, Dep1: None},  // B: queued behind A, [10,15)
		{Unit: 1, DurPS: 3, Dep0: 0, Dep1: None},     // C: ready at 10, [10,13)
		{Unit: 1, DurPS: 4, Dep0: 1, Dep1: 2},        // D: ready at 15, [15,19)
	}
	want := [][2]int64{{0, 10}, {10, 15}, {10, 13}, {15, 19}}
	got := make([][2]int64, len(cmds))
	if err := Execute(context.Background(), cmds, 2, func(idx int32, s, e int64) {
		got[idx] = [2]int64{s, e}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("command %d ran %v, want %v", i, got[i], want[i])
		}
	}
}

// TestExecuteNarrationCrossCheck replays the §IV-E intra-pipeline narration
// through the event engine and checks it against the closed-form
// trace.IntraPipeline occupancy, span for span: five items through the
// five-stage pipeline, the first write landing at the fifth cycle.
func TestExecuteNarrationCrossCheck(t *testing.T) {
	const items = 5
	const cyclePS = int64(200000)
	var cmds []Command
	for item := 1; item <= items; item++ {
		for s := 0; s < int(trace.NumStages); s++ {
			dep := None
			if s > 0 {
				dep = int32(len(cmds) - 1)
			}
			cmds = append(cmds, Command{Unit: int32(s), DurPS: cyclePS, Dep0: dep, Dep1: None})
		}
	}
	start := make(map[[2]int]int64) // (stage, item) → start
	var firstWriteEnd int64
	if err := Execute(context.Background(), cmds, int(trace.NumStages), func(idx int32, s, e int64) {
		item := int(idx)/int(trace.NumStages) + 1
		stage := int(idx) % int(trace.NumStages)
		start[[2]int{stage, item}] = s
		if stage == int(trace.StageWrite) && item == 1 {
			firstWriteEnd = e
		}
	}); err != nil {
		t.Fatal(err)
	}
	if want := 5 * cyclePS; firstWriteEnd != want {
		t.Errorf("first item written back at %d ps, want the fifth cycle (%d ps)", firstWriteEnd, want)
	}
	trace.IntraPipeline{Items: items}.Simulate(func(ev trace.Event) {
		span := ev.Span(cyclePS)
		got, ok := start[[2]int{int(ev.Stage), int(ev.Item)}]
		if !ok {
			t.Fatalf("engine never ran stage %v item %d", ev.Stage, ev.Item)
		}
		if got != span.StartPS {
			t.Errorf("stage %v item %d started at %d ps, closed form says %d ps",
				ev.Stage, ev.Item, got, span.StartPS)
		}
	})
}

// TestExecuteDeadlock reports a dependency cycle instead of hanging.
func TestExecuteDeadlock(t *testing.T) {
	cmds := []Command{
		{Unit: 0, DurPS: 1, Dep0: 1, Dep1: None},
		{Unit: 0, DurPS: 1, Dep0: 0, Dep1: None},
	}
	err := Execute(context.Background(), cmds, 1, nil)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("cyclic commands returned %v, want ErrDeadlock", err)
	}
}

// TestExecuteValidation rejects malformed command lists up front.
func TestExecuteValidation(t *testing.T) {
	cases := []struct {
		name string
		cmds []Command
		n    int
	}{
		{"unit out of range", []Command{{Unit: 3, Dep0: None, Dep1: None}}, 2},
		{"negative duration", []Command{{Unit: 0, DurPS: -1, Dep0: None, Dep1: None}}, 1},
		{"dep out of range", []Command{{Unit: 0, Dep0: 7, Dep1: None}}, 1},
		{"self dep", []Command{{Unit: 0, Dep0: 0, Dep1: None}}, 1},
		{"no units", []Command{{Unit: 0, Dep0: None, Dep1: None}}, 0},
	}
	for _, tc := range cases {
		if err := Execute(context.Background(), tc.cmds, tc.n, nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestExecuteCanceled honours context cancellation.
func TestExecuteCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Execute(ctx, []Command{{Unit: 0, DurPS: 1, Dep0: None, Dep1: None}}, 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
