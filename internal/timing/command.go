// Package timing is the cycle-level event-driven backend of the TIMELY
// reproduction, in the DRAMsim3/Ramulator idiom: execution is decomposed
// into a PIM_MAC-style command set, every command occupies exactly one
// exclusive hardware unit for a duration derived from internal/params, and
// per-unit command queues issue in ready-time order. Where the analytic
// models (internal/accel) reduce a network to one closed-form steady-state
// throughput number, this package simulates the pipeline filling, draining
// and contending in virtual time, and reports what the closed form cannot:
// per-image latency distributions, per-layer stalls and per-unit
// utilizations.
//
// The command set mirrors the §IV dataflow of one O2IR-mapped wave:
//
//	input load → X-subBuf read → DTC convert → analog MAC → TDC convert → output write
//
// plus inter-sub-chip transfers between consecutive pipeline stages:
// dedicated per-instance neighbour channels within a chip, and one shared
// HyperTransport port per chip where a stage boundary crosses a chip edge —
// the shared resource on which duplicated instances contend. Waves are
// issued per the grid-slot schedule the placement implies
// (mapping.Placement.CyclesPerImage waves per image per instance), coalesced
// into batches so command counts stay bounded on ImageNet-scale layers.
package timing

import (
	"repro/internal/params"
	"repro/internal/trace"
)

// Kind enumerates the command set. The first six kinds are the intra-sub-
// chip wave pipeline in dataflow order; KindTransfer moves a finished
// layer's outputs to the next stage's sub-chip group over a shared link.
type Kind int

const (
	// KindInputLoad reads a wave's fresh operands from the L1 input buffer.
	KindInputLoad Kind = iota
	// KindXSubBufRead delivers reused operands through the cascaded
	// X-subBuf shift chain (O2IR principle 3).
	KindXSubBufRead
	// KindDTCConvert performs the γ serialized 8-bit DTC conversions that
	// feed one wave into the time domain.
	KindDTCConvert
	// KindAnalogMAC is one analog MAC wave: crossbar dot products, charging
	// and comparison.
	KindAnalogMAC
	// KindTDCConvert performs the γ serialized TDC conversions digitising
	// one wave's partial sums.
	KindTDCConvert
	// KindOutputWrite writes a wave's results back to the L1 output buffer.
	KindOutputWrite
	// KindTransfer moves a layer's outputs to the next pipeline stage over
	// the shared inter-sub-chip link.
	KindTransfer
	// NumKinds is the command-set size.
	NumKinds
)

var kindNames = [NumKinds]string{
	"input_load", "xsubbuf_read", "dtc_convert",
	"analog_mac", "tdc_convert", "output_write", "transfer",
}

// String returns the command kind's wire name.
func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return "kind(?)"
	}
	return kindNames[k]
}

// TraceStage maps a command kind onto the intra-sub-chip pipeline stage it
// realises in the shared trace vocabulary; ok is false for commands outside
// the five-stage pipeline (transfers).
func (k Kind) TraceStage() (trace.Stage, bool) {
	switch k {
	case KindInputLoad, KindXSubBufRead:
		return trace.StageRead, true
	case KindDTCConvert:
		return trace.StageDTC, true
	case KindAnalogMAC:
		return trace.StageAnalog, true
	case KindTDCConvert:
		return trace.StageTDC, true
	case KindOutputWrite:
		return trace.StageWrite, true
	}
	return 0, false
}

// Link geometry. The paper does not publish inter-sub-chip link widths, so
// the reproduction calibrates two channel classes against the dataflow it
// does publish:
//
//   - Intra-chip, consecutive pipeline stages stream outputs over dedicated
//     neighbour channels — data movement stays local, the paper's core
//     claim. LocalLanes is sized at eight crossbar rows of 8-bit values per
//     40 MHz digital clock (params.ClockRateHz), comfortably above the L1
//     streaming rate the O2IR schedule sustains, so a healthy pipeline is
//     never throttled by its own neighbour traffic.
//   - Stage boundaries that cross a chip edge ride the chip's single shared
//     HyperTransport port (one per source chip, HyperLanes wide) — the one
//     genuinely shared resource, where duplicated instances and multiple
//     crossing boundaries contend.
const (
	// LocalLanes is the 8-bit values one intra-chip neighbour-channel beat
	// moves (8 × 256 crossbar-row values; calibrated, see above).
	LocalLanes = 8 * params.CrossbarSize
	// HyperLanes is the 8-bit values one shared inter-chip HyperTransport
	// beat moves.
	HyperLanes = params.CrossbarSize
	// TransferBeatPS is one link beat in ps (one 40 MHz digital clock).
	TransferBeatPS = int64(1e12 / params.ClockRateHz)
)

// Constraints is the per-command timing-constraint table of one TIMELY
// configuration: how long each command kind occupies its unit, per wave
// (per beat for transfers). All values are picoseconds.
type Constraints struct {
	// PerWavePS[k] is the unit occupancy of one wave's command of kind k.
	// For KindTransfer the entry is the per-beat occupancy instead.
	PerWavePS [NumKinds]int64
	// CyclePS is the nominal pipeline-cycle time γ·25 ns — the initiation
	// interval the analytic model assumes. The physical bottleneck of the
	// simulated pipeline is max over the intra kinds of PerWavePS, which
	// equals CyclePS at the Table II design point (γ = 8) but exceeds it
	// for γ ≤ 6, where the 160 ns output-write stage takes over — exactly
	// the regime difference the timing backend exists to expose.
	CyclePS int64
}

// NewConstraints derives the timing-constraint table from a TIMELY
// configuration: §VI-A stage latencies for load/analog/write, γ serialized
// 25 ns conversions for DTC/TDC, the cascaded X-subBuf chain for shifts,
// and the 40 MHz link beat for transfers.
func NewConstraints(cfg params.TimelyConfig) Constraints {
	var c Constraints
	c.PerWavePS[KindInputLoad] = int64(params.LatencyInputRead)
	// The longest legal shift chain: MaxCascadedXSubBufs buffers of one
	// unit delay plus its design margin each (§V).
	c.PerWavePS[KindXSubBufRead] = int64(params.MaxCascadedXSubBufs * (params.TDel + params.TDelMargin))
	c.PerWavePS[KindDTCConvert] = int64(cfg.Gamma) * int64(params.DTCConversionTime)
	c.PerWavePS[KindAnalogMAC] = int64(params.LatencyAnalog)
	c.PerWavePS[KindTDCConvert] = int64(cfg.Gamma) * int64(params.DTCConversionTime)
	c.PerWavePS[KindOutputWrite] = int64(params.LatencyOutputWrite)
	c.PerWavePS[KindTransfer] = TransferBeatPS
	c.CyclePS = int64(cfg.CycleTime())
	return c
}

// BottleneckPS is the physical initiation interval of the intra pipeline:
// the slowest of the five stages' unit occupancies per wave.
func (c Constraints) BottleneckPS() int64 {
	worst := int64(0)
	for k := KindInputLoad; k <= KindOutputWrite; k++ {
		if c.PerWavePS[k] > worst {
			worst = c.PerWavePS[k]
		}
	}
	return worst
}

// TransferPS returns the occupancy of moving n 8-bit values over a channel
// of the given lane width (LocalLanes or HyperLanes).
func (c Constraints) TransferPS(values, lanes int64) int64 {
	if values <= 0 || lanes <= 0 {
		return 0
	}
	beats := (values + lanes - 1) / lanes
	return beats * c.PerWavePS[KindTransfer]
}
