package timing

import (
	"context"
	"sort"
	"testing"
)

// FuzzTimingIssue feeds the event engine random legal command sequences
// (dependencies only point backward, so every input is acyclic) and checks
// the issue-rule invariants: execution always completes — no deadlock, no
// panic — every command starts only after its dependencies finish, no unit
// ever runs two commands at once, and the schedule is bit-identical when
// replayed.
func FuzzTimingIssue(f *testing.F) {
	f.Add([]byte{3, 1, 2, 0, 0, 9, 7, 1, 1, 4, 0, 2, 2})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{7, 255, 255, 255, 255, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		numUnits := 1 + int(data[0])%7
		rest := data[1:]
		n := len(rest) / 4
		if n > 512 {
			n = 512
		}
		cmds := make([]Command, 0, n)
		for i := 0; i < n; i++ {
			b := rest[i*4 : i*4+4]
			dep0, dep1 := None, None
			if i > 0 {
				if b[2]%3 != 0 {
					dep0 = int32(int(b[2]) % i)
				}
				if b[3]%3 != 0 {
					dep1 = int32(int(b[3]) % i)
				}
			}
			cmds = append(cmds, Command{
				Kind:  Kind(int(b[0]) % int(NumKinds)),
				Unit:  int32(int(b[1]) % numUnits),
				DurPS: int64(b[0]) * 25,
				Dep0:  dep0,
				Dep1:  dep1,
			})
		}

		run := func() ([]int64, []int64) {
			start := make([]int64, len(cmds))
			finish := make([]int64, len(cmds))
			for i := range finish {
				finish[i] = -1
			}
			err := Execute(context.Background(), cmds, numUnits, func(idx int32, s, e int64) {
				start[idx], finish[idx] = s, e
			})
			if err != nil {
				t.Fatalf("legal command sequence failed: %v", err)
			}
			return start, finish
		}
		start, finish := run()

		for i, c := range cmds {
			if finish[i] < 0 {
				t.Fatalf("command %d never completed", i)
			}
			if finish[i]-start[i] != c.DurPS {
				t.Fatalf("command %d occupied [%d,%d), want duration %d", i, start[i], finish[i], c.DurPS)
			}
			for _, d := range [2]int32{c.Dep0, c.Dep1} {
				if d != None && start[i] < finish[d] {
					t.Fatalf("command %d started at %d before dependency %d finished at %d", i, start[i], d, finish[d])
				}
			}
		}

		// Unit exclusivity: per unit, sorted occupancies never overlap.
		byUnit := make([][]int, numUnits)
		for i, c := range cmds {
			byUnit[c.Unit] = append(byUnit[c.Unit], i)
		}
		for u, idxs := range byUnit {
			sort.Slice(idxs, func(a, b int) bool {
				if start[idxs[a]] != start[idxs[b]] {
					return start[idxs[a]] < start[idxs[b]]
				}
				return finish[idxs[a]] < finish[idxs[b]]
			})
			for k := 1; k < len(idxs); k++ {
				if finish[idxs[k-1]] > start[idxs[k]] {
					t.Fatalf("unit %d overlap: command %d [%d,%d) vs command %d [%d,%d)",
						u, idxs[k-1], start[idxs[k-1]], finish[idxs[k-1]], idxs[k], start[idxs[k]], finish[idxs[k]])
				}
			}
		}

		// Determinism: replay yields the identical schedule.
		s2, f2 := run()
		for i := range cmds {
			if start[i] != s2[i] || finish[i] != f2[i] {
				t.Fatalf("schedule not deterministic at command %d: [%d,%d) vs [%d,%d)",
					i, start[i], finish[i], s2[i], f2[i])
			}
		}
	})
}
