package timing

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/accel"
	"repro/internal/model"
	"repro/internal/params"
)

// crossValTolerancePct is the pinned cross-validation tolerance: the timing
// backend's measured steady-state throughput must land within this fraction
// of the analytic TIMELY model on every Table III zoo network. The
// event-driven simulation reproduces the closed-form bottleneck exactly at
// the Table II design point (transfers overlap compute, the DTC/TDC banks
// pace the pipeline), so the budget only covers steady-window measurement
// granularity.
const crossValTolerancePct = 0.5

// crossValLine is one golden row, formatted deterministically.
func crossValLine(name string, res *Result, ar *accel.Result) string {
	return fmt.Sprintf("%-12s meas=%12.4f analytic=%12.4f delta=%+.4f%% fill=%10.1f p50=%12.0f p95=%12.0f p99=%12.0f\n",
		name, res.CyclesPerImage, ar.CyclesPerImage, res.ThroughputDeltaPct,
		res.FillCycles, res.LatencyP50PS, res.LatencyP95PS, res.LatencyP99PS)
}

// TestCrossValidationZoo simulates every Table III zoo network on the
// timing backend and cross-checks its measured steady-state throughput
// against the analytic TIMELY model (accel.Timely), within the pinned
// tolerance. The full per-network table — measured and analytic
// cycles/image, throughput delta, pipeline fill, and the latency
// percentiles only the timing backend can produce — is locked byte-for-byte
// against testdata/crossval.golden. Regenerate (only after an intentional
// modelling change) with:
//
//	TIMING_CROSSVAL_UPDATE=1 go test ./internal/timing -run TestCrossValidationZoo
func TestCrossValidationZoo(t *testing.T) {
	var got bytes.Buffer
	cfg := params.DefaultTimely(8)
	for _, name := range model.BenchmarkNames() {
		n, err := model.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(context.Background(), n, cfg, Options{}, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ar, err := accel.NewTimely(8, 1).Evaluate(n)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEqual(res.AnalyticCyclesPerImage, ar.CyclesPerImage, 1e-9) {
			t.Errorf("%s: machine analytic %.6f cycles/image, accel %.6f",
				name, res.AnalyticCyclesPerImage, ar.CyclesPerImage)
		}
		delta := res.ThroughputDeltaPct
		if delta < 0 {
			delta = -delta
		}
		if delta > crossValTolerancePct {
			t.Errorf("%s: measured %.2f img/s vs analytic %.2f img/s (%+.4f%%), beyond the %.1f%% tolerance",
				name, res.ImagesPerSec, ar.ImagesPerSec, res.ThroughputDeltaPct, crossValTolerancePct)
		}
		got.WriteString(crossValLine(name, res, ar))
	}

	golden := filepath.Join("testdata", "crossval.golden")
	if os.Getenv("TIMING_CROSSVAL_UPDATE") != "" {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("cross-validation table differs from %s:\n--- got ---\n%s--- want ---\n%s",
			golden, got.String(), want)
	}
}
