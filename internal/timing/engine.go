package timing

import (
	"context"
	"errors"
	"fmt"
)

// None marks an absent command dependency.
const None = int32(-1)

// Command is one scheduled operation: it occupies unit Unit exclusively
// for DurPS picoseconds, and may issue only after its (up to two) explicit
// dependencies have completed. Commands on one unit additionally serialize
// through the unit's queue, which issues in (ready time, command index)
// order — the FCFS issue rule.
type Command struct {
	// Kind classifies the operation (for traces and utilization buckets).
	Kind Kind
	// Unit indexes the machine's unit table.
	Unit int32
	// DurPS is the unit occupancy in picoseconds (≥ 0).
	DurPS int64
	// Dep0 and Dep1 index commands that must complete before this one
	// issues; None for absent.
	Dep0, Dep1 int32
	// Stage is the pipeline-stage (weighted-layer) index the command
	// belongs to; transfers carry the producing stage.
	Stage int32
	// Image is the 0-based image the command works on.
	Image int32
	// Wave0 and Waves give the wave range the command covers.
	Wave0 int64
	Waves int64
}

// ErrDeadlock reports that execution stopped with commands still pending —
// a dependency cycle or a dependency on a command that can never complete.
var ErrDeadlock = errors.New("timing: deadlocked with commands pending")

// issueEntry is one queued-but-not-issued command on a unit, ordered by
// (ready, idx).
type issueEntry struct {
	ready int64
	idx   int32
}

// issueHeap is a binary min-heap of issueEntry (hand-rolled: the engine is
// the hot loop and interface-based heaps allocate).
type issueHeap []issueEntry

func (h *issueHeap) push(e issueEntry) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p].ready < q[i].ready || (q[p].ready == q[i].ready && q[p].idx < q[i].idx) {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
}

func (h *issueHeap) pop() issueEntry {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	*h = q[:last]
	q = q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(q) && (q[l].ready < q[m].ready || (q[l].ready == q[m].ready && q[l].idx < q[m].idx)) {
			m = l
		}
		if r < len(q) && (q[r].ready < q[m].ready || (q[r].ready == q[m].ready && q[r].idx < q[m].idx)) {
			m = r
		}
		if m == i {
			break
		}
		q[m], q[i] = q[i], q[m]
		i = m
	}
	return top
}

// doneEntry is one in-flight command completion, ordered by (finish, idx)
// so simultaneous completions process in deterministic command order.
type doneEntry struct {
	finish int64
	idx    int32
}

type doneHeap []doneEntry

func (h *doneHeap) push(e doneEntry) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p].finish < q[i].finish || (q[p].finish == q[i].finish && q[p].idx < q[i].idx) {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
}

func (h *doneHeap) pop() doneEntry {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	*h = q[:last]
	q = q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(q) && (q[l].finish < q[m].finish || (q[l].finish == q[m].finish && q[l].idx < q[m].idx)) {
			m = l
		}
		if r < len(q) && (q[r].finish < q[m].finish || (q[r].finish == q[m].finish && q[r].idx < q[m].idx)) {
			m = r
		}
		if m == i {
			break
		}
		q[m], q[i] = q[i], q[m]
		i = m
	}
	return top
}

// ctxCheckInterval is how many completion events pass between context
// polls — the "between work units" granularity of cancellation.
const ctxCheckInterval = 1 << 14

// Execute runs the command list to completion on numUnits exclusive units
// and reports every command's realised occupancy through visit (in
// completion order; visit may be nil). The simulation is event-driven:
// a command becomes ready when its dependencies complete, queues on its
// unit, and the unit issues queued commands one at a time in (ready time,
// command index) order. Execution is fully deterministic — equal inputs
// produce identical schedules on every run at any host parallelism, since
// the engine itself is serial and all ties break on command index.
//
// Execute validates the command list up front (unit indices in range,
// non-negative durations, dependency indices in range and non-self) and
// fails with ErrDeadlock if a dependency cycle stalls progress. ctx is
// polled between event batches; its error is returned once it fires.
func Execute(ctx context.Context, cmds []Command, numUnits int, visit func(idx int32, startPS, endPS int64)) error {
	n := len(cmds)
	if numUnits <= 0 && n > 0 {
		return fmt.Errorf("timing: %d commands on %d units", n, numUnits)
	}
	indeg := make([]int8, n)
	for i := range cmds {
		c := &cmds[i]
		if c.Unit < 0 || int(c.Unit) >= numUnits {
			return fmt.Errorf("timing: command %d names unit %d of %d", i, c.Unit, numUnits)
		}
		if c.DurPS < 0 {
			return fmt.Errorf("timing: command %d has negative duration %d", i, c.DurPS)
		}
		for _, d := range [2]int32{c.Dep0, c.Dep1} {
			if d == None {
				continue
			}
			if d < 0 || int(d) >= n || d == int32(i) {
				return fmt.Errorf("timing: command %d has invalid dependency %d", i, d)
			}
			indeg[i]++
		}
	}
	// Dependents in CSR form: off[i]..off[i+1] index deps' dependents.
	off := make([]int32, n+1)
	for i := range cmds {
		if d := cmds[i].Dep0; d != None {
			off[d+1]++
		}
		if d := cmds[i].Dep1; d != None {
			off[d+1]++
		}
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	adj := make([]int32, off[n])
	fill := make([]int32, n)
	for i := range cmds {
		for _, d := range [2]int32{cmds[i].Dep0, cmds[i].Dep1} {
			if d != None {
				adj[off[d]+fill[d]] = int32(i)
				fill[d]++
			}
		}
	}

	readyAt := make([]int64, n)
	start := make([]int64, n)
	busy := make([]bool, numUnits)
	queues := make([]issueHeap, numUnits)
	var done doneHeap

	tryIssue := func(u int32, now int64) {
		if busy[u] || len(queues[u]) == 0 {
			return
		}
		e := queues[u].pop()
		s := now
		if e.ready > s {
			s = e.ready
		}
		start[e.idx] = s
		busy[u] = true
		done.push(doneEntry{finish: s + cmds[e.idx].DurPS, idx: e.idx})
	}

	for i := range cmds {
		if indeg[i] == 0 {
			queues[cmds[i].Unit].push(issueEntry{ready: 0, idx: int32(i)})
		}
	}
	for u := range queues {
		tryIssue(int32(u), 0)
	}

	completed := 0
	for len(done) > 0 {
		if completed%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e := done.pop()
		i := e.idx
		completed++
		busy[cmds[i].Unit] = false
		if visit != nil {
			visit(i, start[i], e.finish)
		}
		for _, d := range adj[off[i]:off[i+1]] {
			if e.finish > readyAt[d] {
				readyAt[d] = e.finish
			}
			indeg[d]--
			if indeg[d] == 0 {
				u := cmds[d].Unit
				queues[u].push(issueEntry{ready: readyAt[d], idx: d})
				tryIssue(u, e.finish)
			}
		}
		tryIssue(cmds[i].Unit, e.finish)
	}
	if completed != n {
		for i := range cmds {
			if indeg[i] > 0 {
				return fmt.Errorf("%w: %d of %d completed, command %d still waiting on dependencies",
					ErrDeadlock, completed, n, i)
			}
		}
		return fmt.Errorf("%w: %d of %d completed", ErrDeadlock, completed, n)
	}
	return nil
}
