package timing

import (
	"fmt"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/params"
	"repro/internal/pipeline"
)

// Options configures one timing simulation.
type Options struct {
	// Images is the number of images pushed through the pipeline. It is a
	// floor: the builder widens it to cover at least three full rounds of
	// the instance round-robin, so steady-state measurements always span
	// several departures per replicated instance. 0 means DefaultImages.
	Images int
	// MaxBatchesPerImage bounds the wave batches one (layer, image) pair
	// is coalesced into, keeping command counts independent of layer size
	// (an ImageNet conv layer runs tens of thousands of waves). 0 means
	// DefaultMaxBatches. Batching never changes total unit occupancy —
	// only the granularity at which fill/drain overlap is resolved.
	MaxBatchesPerImage int
}

// Default simulation granularity.
const (
	DefaultImages     = 32
	DefaultMaxBatches = 64
)

// StageModel is one inter-sub-chip pipeline stage: a weighted layer, its
// O2IR placement, and its weight-duplication instance count.
type StageModel struct {
	Layer     model.Layer
	Placement mapping.Placement
	// Instances is the weight-duplication count (uniform network
	// replication, mirroring the analytic model's default).
	Instances int
	// WavesPerImage is the pipeline-wave count one instance issues per
	// image (the placement's grid-slot schedule length).
	WavesPerImage int64
	// TransferValues is the 8-bit value count handed to the next stage
	// per image (0 for the last stage).
	TransferValues int64
}

// unitInfo names one exclusive resource of the machine.
type unitInfo struct {
	name     string
	role     Kind
	stage    int32 // weighted-layer stage index; -1 for none
	instance int32 // instance index within the stage; -1 for links
}

// Machine is one network compiled onto the event-driven model: the unit
// table, the full command DAG, and the per-image command anchors the
// latency accounting needs.
type Machine struct {
	Net    *model.Network
	Cfg    params.TimelyConfig
	Cons   Constraints
	Stages []StageModel
	// Fits reports whether one instance of every stage fit the deployment
	// (the analytic model's capacity check; when false the machine still
	// simulates one instance per stage, assuming free weight reloads).
	Fits bool
	// Images is the widened image count actually simulated.
	Images int

	units []unitInfo
	cmds  []Command
	// firstCmd and lastCmd anchor each image's latency: first stage-0
	// input load and final stage output write.
	firstCmd, lastCmd []int32
}

// rolesPerInstance is the intra-pipeline unit count of one stage instance.
const rolesPerInstance = 6

// Build compiles a network onto the timing model: O2IR placements via the
// same mapping path the analytic model uses, uniform weight duplication
// (whole extra pipeline copies while capacity allows), one unit per
// (stage, instance, role), and a transfer channel per stage boundary per
// instance — a dedicated LocalLanes-wide neighbour channel within a chip,
// or the source chip's single shared HyperLanes-wide HyperTransport port
// where the boundary crosses a chip edge (the same crossing rule the
// analytic model charges HyperLink energy for). Images round-robin across
// each stage's instances, and with uniform duplication image i stays on
// instance i mod dup through the whole pipeline.
func Build(n *model.Network, cfg params.TimelyConfig, opt Options) (*Machine, error) {
	m := &Machine{Net: n, Cfg: cfg, Cons: NewConstraints(cfg)}
	for _, l := range n.WeightedLayers() {
		p := mapping.PlaceO2IR(l, cfg)
		m.Stages = append(m.Stages, StageModel{
			Layer:         l,
			Placement:     p,
			WavesPerImage: p.CyclesPerImage,
		})
	}
	if len(m.Stages) == 0 {
		return nil, fmt.Errorf("timing: network %s has no weighted layers", n.Name)
	}
	// Uniform network-level duplication, exactly the analytic default
	// (accel.Timely.Evaluate): whole extra copies of the pipeline while
	// one instance of every stage fits.
	total := cfg.Chips * cfg.SubChips
	need := 0
	for _, s := range m.Stages {
		need += s.Placement.SubChips
	}
	m.Fits = need <= total
	dup := 1
	if m.Fits {
		dup = total / need
	}
	for i := range m.Stages {
		m.Stages[i].Instances = dup
		if i+1 < len(m.Stages) {
			next := m.Stages[i+1].Layer
			m.Stages[i].TransferValues = next.Inputs() * int64(cfg.InputPasses())
		}
	}

	images := opt.Images
	if images <= 0 {
		images = DefaultImages
	}
	if min := 3 * dup; images < min {
		images = min
	}
	if images < 8 {
		images = 8
	}
	m.Images = images

	batches := opt.MaxBatchesPerImage
	if batches <= 0 {
		batches = DefaultMaxBatches
	}

	// Unit table: per stage instance the six pipeline roles, plus one
	// shared link per stage boundary.
	unitAt := make([][]int32, len(m.Stages)) // [stage][instance*roles+role]
	for si, s := range m.Stages {
		unitAt[si] = make([]int32, s.Instances*rolesPerInstance)
		for inst := 0; inst < s.Instances; inst++ {
			for role := KindInputLoad; role <= KindOutputWrite; role++ {
				unitAt[si][inst*rolesPerInstance+int(role)] = int32(len(m.units))
				m.units = append(m.units, unitInfo{
					name:     fmt.Sprintf("%s#%d/%s", s.Layer.Name, inst, role),
					role:     role,
					stage:    int32(si),
					instance: int32(inst),
				})
			}
		}
	}
	// Transfer channels. Copy c of the pipeline occupies global sub-chips
	// [c·need, (c+1)·need); a boundary whose next stage straddles a χ
	// multiple crosses a chip edge (accel.Timely's HyperLink rule) and
	// rides the source chip's one shared HyperTransport port. All other
	// boundaries get a dedicated per-instance neighbour channel.
	type boundaryLink struct {
		unit  int32
		lanes int64
	}
	perChip := cfg.SubChips
	htUnit := map[int]int32{} // source chip index → shared HT unit
	links := make([][]boundaryLink, len(m.Stages)-1)
	cum := m.Stages[0].Placement.SubChips // sub-chips before stage si+1
	for si := 0; si+1 < len(m.Stages); si++ {
		links[si] = make([]boundaryLink, dup)
		for c := 0; c < dup; c++ {
			off := c * need
			if (off+cum)/perChip != (off+cum+m.Stages[si+1].Placement.SubChips)/perChip {
				srcChip := ((off + cum - 1) / perChip) % cfg.Chips
				u, ok := htUnit[srcChip]
				if !ok {
					u = int32(len(m.units))
					m.units = append(m.units, unitInfo{
						name:     fmt.Sprintf("ht:chip%d", srcChip),
						role:     KindTransfer,
						stage:    -1,
						instance: -1,
					})
					htUnit[srcChip] = u
				}
				links[si][c] = boundaryLink{unit: u, lanes: HyperLanes}
			} else {
				u := int32(len(m.units))
				m.units = append(m.units, unitInfo{
					name:     fmt.Sprintf("chan:%s->%s#%d", m.Stages[si].Layer.Name, m.Stages[si+1].Layer.Name, c),
					role:     KindTransfer,
					stage:    int32(si),
					instance: int32(c),
				})
				links[si][c] = boundaryLink{unit: u, lanes: LocalLanes}
			}
		}
		cum += m.Stages[si+1].Placement.SubChips
	}

	// Command generation, image-major then stage-major so every explicit
	// dependency points backward.
	m.firstCmd = make([]int32, images)
	m.lastCmd = make([]int32, images)
	for img := 0; img < images; img++ {
		prev := None // transfer feeding the current stage
		for si := range m.Stages {
			s := &m.Stages[si]
			inst := img % s.Instances
			units := unitAt[si][inst*rolesPerInstance:]
			waves := s.WavesPerImage
			k := batches
			if waves < int64(k) {
				k = int(waves)
			}
			base, rem := waves/int64(k), waves%int64(k)
			wave0 := int64(0)
			feed := prev // upstream transfer feeding this stage's image
			var lastWrite int32
			for b := 0; b < k; b++ {
				bw := base
				if int64(b) < rem {
					bw++
				}
				dep := feed
				for role := KindInputLoad; role <= KindOutputWrite; role++ {
					idx := int32(len(m.cmds))
					m.cmds = append(m.cmds, Command{
						Kind:  role,
						Unit:  units[int(role)],
						DurPS: bw * m.Cons.PerWavePS[role],
						Dep0:  dep,
						Dep1:  None,
						Stage: int32(si),
						Image: int32(img),
						Wave0: wave0,
						Waves: bw,
					})
					dep = idx
				}
				lastWrite = dep
				if si == 0 && b == 0 {
					m.firstCmd[img] = lastWrite - int32(rolesPerInstance) + 1
				}
				if si+1 < len(m.Stages) {
					// Stream this batch's share of the layer's outputs as
					// soon as its write lands — transfers overlap
					// production instead of trailing the whole layer. The
					// proportional split sums exactly to TransferValues.
					vb := s.TransferValues*(wave0+bw)/waves - s.TransferValues*wave0/waves
					link := links[si][inst]
					idx := int32(len(m.cmds))
					m.cmds = append(m.cmds, Command{
						Kind:  KindTransfer,
						Unit:  link.unit,
						DurPS: m.Cons.TransferPS(vb, link.lanes),
						Dep0:  lastWrite,
						Dep1:  None,
						Stage: int32(si),
						Image: int32(img),
						Wave0: wave0,
						Waves: bw,
					})
					prev = idx
				}
				wave0 += bw
			}
			if si+1 == len(m.Stages) {
				m.lastCmd[img] = lastWrite
			}
		}
	}
	return m, nil
}

// Commands returns the compiled command count.
func (m *Machine) Commands() int { return len(m.cmds) }

// Units returns the machine's exclusive-unit count.
func (m *Machine) Units() int { return len(m.units) }

// AnalyticCyclesPerImage is the closed-form steady-state bottleneck the
// analytic TIMELY model reports for the same placement and duplication:
// max over stages of waves/instances.
func (m *Machine) AnalyticCyclesPerImage() float64 {
	stages := make([]pipeline.Stage, len(m.Stages))
	inst := make([]int, len(m.Stages))
	for i, s := range m.Stages {
		stages[i] = pipeline.Stage{Name: s.Layer.Name, Work: float64(s.WavesPerImage), MinUnits: s.Placement.SubChips}
		inst[i] = s.Instances
	}
	return pipeline.BottleneckCycles(stages, inst)
}
