package pipeline

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBalanceMinimum(t *testing.T) {
	stages := []Stage{{"a", 100, 2}, {"b", 50, 3}}
	inst, err := Balance(stages, 5)
	if err != nil {
		t.Fatal(err)
	}
	if inst[0] != 1 || inst[1] != 1 {
		t.Errorf("tight allocation = %v, want [1 1]", inst)
	}
}

func TestBalanceGivesSpareToBottleneck(t *testing.T) {
	stages := []Stage{{"slow", 100, 1}, {"fast", 10, 1}}
	inst, err := Balance(stages, 6)
	if err != nil {
		t.Fatal(err)
	}
	// All 4 spare units should duplicate the slow stage: 100/5 = 20 vs 10.
	if inst[0] != 5 || inst[1] != 1 {
		t.Errorf("allocation = %v, want [5 1]", inst)
	}
	if got := BottleneckCycles(stages, inst); got != 20 {
		t.Errorf("bottleneck = %v, want 20", got)
	}
}

func TestBalanceCapacityError(t *testing.T) {
	_, err := Balance([]Stage{{"a", 1, 10}}, 5)
	if !errors.Is(err, ErrCapacity) {
		t.Errorf("err = %v, want ErrCapacity", err)
	}
}

func TestBalanceRejectsBadStages(t *testing.T) {
	if _, err := Balance(nil, 10); err == nil {
		t.Errorf("empty stage list accepted")
	}
	if _, err := Balance([]Stage{{"a", 1, 0}}, 10); err == nil {
		t.Errorf("zero MinUnits accepted")
	}
	if _, err := Balance([]Stage{{"a", -1, 1}}, 10); err == nil {
		t.Errorf("negative work accepted")
	}
}

func TestBalanceZeroWorkTerminates(t *testing.T) {
	inst, err := Balance([]Stage{{"idle", 0, 1}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if inst[0] != 1 {
		t.Errorf("zero-work stage replicated: %v", inst)
	}
}

func TestSerialVsBottleneck(t *testing.T) {
	stages := []Stage{{"a", 30, 1}, {"b", 20, 1}, {"c", 50, 1}}
	inst := []int{1, 1, 1}
	if got := SerialCycles(stages, inst); got != 100 {
		t.Errorf("serial = %v, want 100", got)
	}
	if got := BottleneckCycles(stages, inst); got != 50 {
		t.Errorf("bottleneck = %v, want 50", got)
	}
}

func TestThroughput(t *testing.T) {
	// 1000 cycles of 200 ns = 0.2 ms per image = 5000 images/s.
	got := Throughput(1000, 200_000)
	if math.Abs(got-5000) > 1e-9 {
		t.Errorf("throughput = %v, want 5000", got)
	}
	if Throughput(0, 100) != 0 || Throughput(100, 0) != 0 {
		t.Errorf("degenerate throughput must be 0")
	}
}

func TestIntraPipelineLatency(t *testing.T) {
	// §IV-E: first datum written back at the fifth cycle.
	if got := IntraPipelineLatency(200_000); got != 1_000_000 {
		t.Errorf("fill latency = %v ps, want 1e6 (5 cycles)", got)
	}
}

// Property: Balance never exceeds the unit budget and never starves a stage.
func TestBalanceBudgetProperty(t *testing.T) {
	f := func(works [5]uint8, mins [5]uint8, extra uint8) bool {
		stages := make([]Stage, 5)
		need := 0
		for i := range stages {
			stages[i] = Stage{
				Name:     "s",
				Work:     float64(works[i]) + 1,
				MinUnits: int(mins[i]%4) + 1,
			}
			need += stages[i].MinUnits
		}
		total := need + int(extra)
		inst, err := Balance(stages, total)
		if err != nil {
			return false
		}
		used := 0
		for i, n := range inst {
			if n < 1 {
				return false
			}
			used += n * stages[i].MinUnits
		}
		return used <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: granting more hardware never worsens the bottleneck.
func TestBalanceMonotoneProperty(t *testing.T) {
	f := func(works [4]uint8, extraA, extraB uint8) bool {
		stages := make([]Stage, 4)
		for i := range stages {
			stages[i] = Stage{Name: "s", Work: float64(works[i]) + 1, MinUnits: 1}
		}
		lo := 4 + int(extraA%50)
		hi := lo + int(extraB%50)
		iLo, err1 := Balance(stages, lo)
		iHi, err2 := Balance(stages, hi)
		if err1 != nil || err2 != nil {
			return false
		}
		return BottleneckCycles(stages, iHi) <= BottleneckCycles(stages, iLo)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
