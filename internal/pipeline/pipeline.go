// Package pipeline implements the inter-stage pipeline timing model of
// §IV-E: layers mapped to sub-chip (TIMELY) or tile (ISAAC) groups form a
// pipeline whose steady-state throughput is set by the slowest stage, and a
// balanced replicator that spends spare hardware on the bottleneck stages,
// the strategy both TIMELY and ISAAC use for weight duplication (§V).
package pipeline

import (
	"errors"
	"fmt"
)

// Stage is one pipeline stage (usually one layer).
type Stage struct {
	Name string
	// Work is the stage's cycle count per image when granted exactly
	// MinUnits hardware units (one mapped instance).
	Work float64
	// MinUnits is the hardware needed to hold one instance of the stage.
	MinUnits int
}

// ErrCapacity reports that the deployment cannot hold one instance of every
// stage.
var ErrCapacity = errors.New("pipeline: total units below minimum mapping requirement")

// Balance distributes total hardware units over the stages: every stage
// first receives its MinUnits, then spare units go, one instance at a time,
// to the stage with the highest per-unit work (greedy water-filling, the
// weight-duplication strategy of §V). The returned slice holds instance
// counts per stage (allocated units = instances × MinUnits).
func Balance(stages []Stage, total int) ([]int, error) {
	if len(stages) == 0 {
		return nil, errors.New("pipeline: no stages")
	}
	need := 0
	for _, s := range stages {
		if s.MinUnits <= 0 {
			return nil, fmt.Errorf("pipeline: stage %s has non-positive MinUnits", s.Name)
		}
		if s.Work < 0 {
			return nil, fmt.Errorf("pipeline: stage %s has negative work", s.Name)
		}
		need += s.MinUnits
	}
	if total < need {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrCapacity, need, total)
	}
	inst := make([]int, len(stages))
	for i := range stages {
		inst[i] = 1
	}
	spare := total - need
	for {
		// Find the bottleneck stage that can still afford another instance.
		best, bestTime := -1, -1.0
		for i, s := range stages {
			if s.MinUnits > spare {
				continue
			}
			t := s.Work / float64(inst[i])
			if t > bestTime {
				best, bestTime = i, t
			}
		}
		if best < 0 || bestTime == 0 {
			break
		}
		inst[best]++
		spare -= stages[best].MinUnits
	}
	return inst, nil
}

// BottleneckCycles returns the steady-state cycles per image of the
// pipeline: max over stages of Work/instances.
func BottleneckCycles(stages []Stage, instances []int) float64 {
	worst := 0.0
	for i, s := range stages {
		if t := s.Work / float64(instances[i]); t > worst {
			worst = t
		}
	}
	return worst
}

// SerialCycles returns the cycles per image without inter-stage pipelining
// (PRIME's execution model): the sum of per-stage times.
func SerialCycles(stages []Stage, instances []int) float64 {
	s := 0.0
	for i, st := range stages {
		s += st.Work / float64(instances[i])
	}
	return s
}

// Throughput converts a cycles-per-image figure and a cycle time in ps into
// images per second.
func Throughput(cyclesPerImage, cycleTimePS float64) float64 {
	if cyclesPerImage <= 0 || cycleTimePS <= 0 {
		return 0
	}
	return 1e12 / (cyclesPerImage * cycleTimePS)
}

// IntraPipelineLatency returns the fill latency (ps) of TIMELY's five-stage
// intra-sub-chip pipeline for the first result (§IV-E: read, DTC, analog
// compute, TDC, write — the first datum is written back at the fifth cycle).
func IntraPipelineLatency(cycleTimePS float64) float64 { return 5 * cycleTimePS }
