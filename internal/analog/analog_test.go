package analog

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/params"
	"repro/internal/stats"
)

func TestDTCIdeal(t *testing.T) {
	d := NewDTC()
	for _, code := range []int{0, 1, 127, 255} {
		tm, err := d.Convert(code, nil)
		if err != nil {
			t.Fatalf("Convert(%d): %v", code, err)
		}
		if want := float64(code) * params.TDel; tm != want {
			t.Errorf("DTC(%d) = %v ps, want %v", code, tm, want)
		}
	}
}

func TestDTCRangeError(t *testing.T) {
	d := NewDTC()
	if _, err := d.Convert(256, nil); err == nil {
		t.Errorf("DTC accepted code 256")
	}
	if _, err := d.Convert(-1, nil); err == nil {
		t.Errorf("DTC accepted code -1")
	}
}

func TestTDCRoundTrip(t *testing.T) {
	d, c := NewDTC(), NewTDC()
	for code := 0; code < 256; code++ {
		tm, err := d.Convert(code, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Convert(tm, nil); got != code {
			t.Errorf("round trip %d -> %v ps -> %d", code, tm, got)
		}
	}
}

func TestTDCSaturation(t *testing.T) {
	c := NewTDC()
	if got := c.Convert(1e9, nil); got != 255 {
		t.Errorf("late edge = %d, want 255", got)
	}
	if got := c.Convert(-100, nil); got != 0 {
		t.Errorf("early edge = %d, want 0", got)
	}
}

func TestTDCHalfLSBRounding(t *testing.T) {
	c := NewTDC()
	if got := c.Convert(params.TDel*10+params.TDel*0.4, nil); got != 10 {
		t.Errorf("0.4 LSB rounds to %d, want 10", got)
	}
	if got := c.Convert(params.TDel*10+params.TDel*0.6, nil); got != 11 {
		t.Errorf("0.6 LSB rounds to %d, want 11", got)
	}
}

func TestXSubBufIdealIsIdentity(t *testing.T) {
	var x XSubBuf
	if got := x.Propagate(1234.5, nil); got != 1234.5 {
		t.Errorf("ideal X-subBuf changed the signal: %v", got)
	}
	if got := x.PropagateChain(1234.5, 12, nil); got != 1234.5 {
		t.Errorf("ideal 12-hop chain changed the signal: %v", got)
	}
}

func TestXSubBufCascadeErrorScalesSqrtK(t *testing.T) {
	// Empirical check of the paper's √k·ε rule (§VI-B): the std-dev of a
	// 12-hop chain should be ≈ √12·ε.
	var x XSubBuf
	eps := 10.0
	n := &Noise{XSubBufSigma: eps, RNG: stats.NewRNG(3)}
	const trials = 20000
	errs := make([]float64, trials)
	for i := range errs {
		errs[i] = x.PropagateChain(5000, params.MaxCascadedXSubBufs, n) - 5000
	}
	got := stats.StdDev(errs)
	want := CascadeErrorBound(params.MaxCascadedXSubBufs, eps)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("12-hop error std = %.2f ps, want ≈ %.2f (√12·ε)", got, want)
	}
}

func TestXSubBufNonNegative(t *testing.T) {
	var x XSubBuf
	n := &Noise{XSubBufSigma: 1000, RNG: stats.NewRNG(1)}
	for i := 0; i < 1000; i++ {
		if got := x.Propagate(1, n); got < 0 {
			t.Fatalf("negative time signal %v", got)
		}
	}
}

func TestPSubBufIdeal(t *testing.T) {
	var p PSubBuf
	if got := p.Mirror(42, nil); got != 42 {
		t.Errorf("ideal mirror = %v, want 42", got)
	}
}

func TestPSubBufGainErrorStats(t *testing.T) {
	var p PSubBuf
	n := &Noise{PSubBufRelSigma: 0.01, RNG: stats.NewRNG(7)}
	const trials = 20000
	outs := make([]float64, trials)
	for i := range outs {
		outs[i] = p.Mirror(100, n)
	}
	if m := stats.Mean(outs); math.Abs(m-100) > 0.05 {
		t.Errorf("mirror mean = %v, want ≈100", m)
	}
	if s := stats.StdDev(outs); math.Abs(s-1) > 0.05 {
		t.Errorf("mirror std = %v, want ≈1 (1%% of 100)", s)
	}
}

func TestIAdder(t *testing.T) {
	var a IAdder
	if got := a.Sum(1, 2, 3.5); got != 6.5 {
		t.Errorf("Sum = %v, want 6.5", got)
	}
	if got := a.Sum(); got != 0 {
		t.Errorf("empty Sum = %v, want 0", got)
	}
}

// TestChargingUnitEq2 checks the Eq. 2 transfer function: the output time is
// proportional to the dot value with the device constants cancelled into
// FullScale.
func TestChargingUnitEq2(t *testing.T) {
	cu := NewChargingUnit(255 * 16) // dot full scale
	tdc := NewTDC()
	for _, dot := range []float64{0, 16, 160, 255 * 16} {
		out := cu.Output(dot, nil)
		code := tdc.Convert(out, nil)
		want := int(math.Round(dot / 16))
		if code != want {
			t.Errorf("dot %v -> code %d, want %d", dot, code, want)
		}
	}
}

func TestChargingUnitSaturates(t *testing.T) {
	cu := NewChargingUnit(100)
	full := 255 * params.TDel
	if got := cu.Output(1e9, nil); got != full {
		t.Errorf("over-range output = %v, want %v", got, full)
	}
	if got := cu.Output(-5, nil); got != 0 {
		t.Errorf("negative dot output = %v, want 0", got)
	}
}

func TestChargingUnitCapRatio(t *testing.T) {
	// The LSB column's Cc/2 capacitor doubles its time gain (§IV-C).
	msb := ChargingUnit{FullScale: 1000, CapRatio: 1, TDel: params.TDel}
	lsb := ChargingUnit{FullScale: 1000, CapRatio: 0.5, TDel: params.TDel}
	if got, want := lsb.Output(100, nil), 2*msb.Output(100, nil); got != want {
		t.Errorf("Cc/2 output = %v, want %v (2x the Cc output)", got, want)
	}
}

func TestChargingUnitPanicsOnZeroFullScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("zero FullScale accepted")
		}
	}()
	ChargingUnit{FullScale: 0, TDel: params.TDel}.Output(1, nil)
}

// Property: the full analog chain DTC -> X-subBuf hops -> charging -> TDC is
// exact (noise-free) for dot products that fit the TDC range with an
// integral scale.
func TestAnalogChainExactProperty(t *testing.T) {
	d, c := NewDTC(), NewTDC()
	var x XSubBuf
	f := func(codes [8]uint8, levels [8]uint8, hops uint8) bool {
		scale := 8 * 15.0 // 8 rows, max level 15: dot ≤ 8·255·15 = scale·255
		cu := NewChargingUnit(scale * 255)
		dot := 0.0
		want := 0.0
		for i := range codes {
			tm, err := d.Convert(int(codes[i]), nil)
			if err != nil {
				return false
			}
			tm = x.PropagateChain(tm, int(hops%12), nil)
			g := float64(levels[i] % 16)
			dot += tm / params.TDel * g
			want += float64(codes[i]) * g
		}
		code := c.Convert(cu.Output(dot, nil), nil)
		return code == int(math.Round(want/scale))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDTCINLBow(t *testing.T) {
	ideal := NewDTC()
	bowed := DTC{Bits: 8, TDel: params.TDel, INL: 0.5}
	// Endpoints are exact; mid-scale deviates by the peak INL.
	for _, code := range []int{0, 255} {
		ti, _ := ideal.Convert(code, nil)
		tb, _ := bowed.Convert(code, nil)
		if math.Abs(ti-tb) > 1e-9 {
			t.Errorf("endpoint code %d moved by INL: %v vs %v", code, tb, ti)
		}
	}
	tiMid, _ := ideal.Convert(128, nil)
	tbMid, _ := bowed.Convert(128, nil)
	dev := (tbMid - tiMid) / params.TDel
	if math.Abs(dev-0.5) > 0.01 {
		t.Errorf("mid-scale INL deviation = %.3f LSB, want ≈0.5", dev)
	}
}

func TestDTCINLPreservesMonotonicity(t *testing.T) {
	d := DTC{Bits: 8, TDel: params.TDel, INL: 0.9}
	prev := -1.0
	for code := 0; code < 256; code++ {
		tm, err := d.Convert(code, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tm <= prev {
			t.Fatalf("sub-LSB INL broke monotonicity at code %d", code)
		}
		prev = tm
	}
}

func TestTDCINLShiftsMidScale(t *testing.T) {
	ideal := NewTDC()
	bowed := TDC{Bits: 8, TDel: params.TDel, INL: 1.0}
	mid := 128 * params.TDel
	ci, cb := ideal.Convert(mid, nil), bowed.Convert(mid, nil)
	if cb >= ci {
		t.Errorf("positive TDC bow should read mid-scale early: %d vs %d", cb, ci)
	}
	// Endpoints unaffected.
	if bowed.Convert(0, nil) != 0 || bowed.Convert(255*params.TDel, nil) != 255 {
		t.Errorf("TDC INL moved the endpoints")
	}
}

func TestMatchedINLCancels(t *testing.T) {
	// A TDC bowed like the DTC re-linearises the chain (the pre-distortion
	// trick of the DTC linearisation literature).
	d := DTC{Bits: 8, TDel: params.TDel, INL: 0.8}
	c := TDC{Bits: 8, TDel: params.TDel, INL: 0.8}
	for code := 0; code < 256; code += 5 {
		tm, err := d.Convert(code, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Convert(tm, nil); got != code {
			t.Errorf("matched-INL round trip %d -> %d", code, got)
		}
	}
}

func TestCascadeErrorBound(t *testing.T) {
	if got := CascadeErrorBound(12, 10); math.Abs(got-math.Sqrt(12)*10) > 1e-12 {
		t.Errorf("CascadeErrorBound = %v", got)
	}
	// The default design point must satisfy the paper's margin (§VI-B).
	if CascadeErrorBound(params.MaxCascadedXSubBufs, params.DefaultXSubBufSigma) > params.TDelMargin {
		t.Errorf("design-point cascade error exceeds the design margin")
	}
}

func TestDefaultNoiseDeterministic(t *testing.T) {
	a, b := DefaultNoise(42), DefaultNoise(42)
	var x XSubBuf
	for i := 0; i < 100; i++ {
		if x.Propagate(100, a) != x.Propagate(100, b) {
			t.Fatalf("same-seed noise diverged at step %d", i)
		}
	}
}
