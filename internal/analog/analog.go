// Package analog provides behavioural models of TIMELY's time-domain and
// current-domain circuit blocks (§IV-B/C of the paper): DTCs and TDCs,
// X-subBufs (time latches), P-subBufs (current mirrors), I-adders, and the
// two-phase charging-unit + comparator stage whose transfer function is
// Eq. 2. Each block is bit-exact in the noise-free limit and supports
// Gaussian error injection matching the paper's Monte-Carlo methodology
// (§VI-B "Accuracy").
//
// Conventions: time signals are float64 picoseconds; "charge" is the
// dimensionless dot-product value Σ xᵢ·gᵢ accumulated by a crossbar column,
// where xᵢ is the 8-bit input code and gᵢ the cell level (0..15). The
// physical constants (VDD, Rmin, Cc) cancel into the charging unit's full
// scale, exactly as Eq. 2 cancels them into Rmin/(Cc·B·NCB).
package analog

import (
	"fmt"
	"math"

	"repro/internal/params"
	"repro/internal/stats"
)

// Noise configures Gaussian circuit-error injection. A nil *Noise (or one
// with zero sigmas) is ideal. RNG must be non-nil when any sigma is set.
type Noise struct {
	// XSubBufSigma is the per-hop time error ε of one X-subBuf in ps.
	XSubBufSigma float64
	// PSubBufRelSigma is the relative gain error of a P-subBuf current mirror.
	PSubBufRelSigma float64
	// ComparatorSigma is the charging-comparator threshold jitter in ps.
	ComparatorSigma float64
	// TDCSigma is TDC sampling jitter in ps.
	TDCSigma float64
	// DTCSigma is DTC output jitter in ps.
	DTCSigma float64
	// RNG drives the injection; deterministic per seed.
	RNG *stats.RNG
}

// DefaultNoise returns the paper's design-point noise configuration
// (§V, §VI-B) seeded deterministically, drawing under the legacy v1
// sampling regime (Box-Muller Gaussians); see DefaultNoiseSampler.
func DefaultNoise(seed uint64) *Noise {
	return DefaultNoiseSampler(seed, stats.SamplerV1)
}

// DefaultNoiseSampler is DefaultNoise with an explicit sampling regime for
// the injection RNG: stats.SamplerV2 and the counter-based default v3 draw
// their Gaussians through the Ziggurat hot path, stats.SamplerV1 reproduces
// the legacy Box-Muller stream byte for byte. The regime changes the
// deviate sequence, not its distribution — the accuracy studies are
// statistically identical under any of them (see the regime-equivalence
// tests).
func DefaultNoiseSampler(seed uint64, v stats.SamplerVersion) *Noise {
	return DefaultNoiseRNG(stats.NewRNGSampler(seed, v))
}

// DefaultNoiseRNG is the design-point noise configuration driven by a
// caller-supplied generator. Monte-Carlo studies that key their generators
// by trial coordinates (stats.NewTrialRNG under the v3 regime) build their
// per-trial noise through this instead of re-deriving seeds additively.
func DefaultNoiseRNG(rng *stats.RNG) *Noise {
	return &Noise{
		XSubBufSigma:    params.DefaultXSubBufSigma,
		PSubBufRelSigma: params.DefaultPSubBufRelSigma,
		ComparatorSigma: params.DefaultComparatorSigma,
		RNG:             rng,
	}
}

// Deterministic reports whether this configuration can inject no
// randomness at all: every error draw the datapath would make returns
// exactly zero (nil noise, nil RNG, or all sigmas zero). The functional
// executor uses it to route waves through batched kernels when no RNG draw
// ordering needs to be preserved.
func (n *Noise) Deterministic() bool {
	if n == nil || n.RNG == nil {
		return true
	}
	return n.XSubBufSigma == 0 && n.PSubBufRelSigma == 0 &&
		n.ComparatorSigma == 0 && n.TDCSigma == 0 && n.DTCSigma == 0
}

func (n *Noise) gauss(sigma float64) float64 {
	if n == nil || sigma == 0 || n.RNG == nil {
		return 0
	}
	return n.RNG.Gauss(0, sigma)
}

// DTC converts a digital code into a time delay: T = code · TDel
// (Fig. 6(f): full range 256·Tdel for 8 bits).
type DTC struct {
	// Bits is the resolution (8 in TIMELY).
	Bits int
	// TDel is the unit delay in ps (50 ps in TIMELY).
	TDel float64
	// INL is the peak integral nonlinearity in LSB (0 = ideal). Real
	// delay-line DTCs bow mid-scale ([40]'s pre-distortion literature);
	// the model uses the standard parabolic bow peaking at half scale.
	INL float64
}

// inlBow returns the parabolic INL deviation (in LSB) at normalised code
// position c ∈ [0,1] for peak inl.
func inlBow(inl, c float64) float64 { return inl * 4 * c * (1 - c) }

// NewDTC returns the Table II DTC.
func NewDTC() DTC { return DTC{Bits: params.DTCBits, TDel: params.TDel} }

// Levels returns the code count 2^Bits.
func (d DTC) Levels() int { return 1 << d.Bits }

// Convert maps code to its time delay, injecting DTC jitter if configured.
// It returns an error for out-of-range codes: feeding an unrepresentable
// code is a mapping bug, not a saturation condition.
func (d DTC) Convert(code int, n *Noise) (float64, error) {
	if code < 0 || code >= d.Levels() {
		return 0, fmt.Errorf("analog: DTC code %d out of [0,%d)", code, d.Levels())
	}
	t := float64(code) * d.TDel
	if d.INL != 0 {
		t += inlBow(d.INL, float64(code)/float64(d.Levels()-1)) * d.TDel
	}
	t += n.gauss(noiseSigmaDTC(n))
	if t < 0 {
		t = 0
	}
	return t, nil
}

func noiseSigmaDTC(n *Noise) float64 {
	if n == nil {
		return 0
	}
	return n.DTCSigma
}

// TDC converts a time delay back into a digital code by counting unit
// delays, saturating at the range limits (a late edge reads as full scale).
type TDC struct {
	Bits int
	TDel float64
	// INL is the peak integral nonlinearity in LSB (parabolic bow; 0 =
	// ideal). A positive TDC bow makes mid-scale edges read early.
	INL float64
}

// NewTDC returns the Table II TDC.
func NewTDC() TDC { return TDC{Bits: params.DTCBits, TDel: params.TDel} }

// Levels returns the code count 2^Bits.
func (t TDC) Levels() int { return 1 << t.Bits }

// Convert quantises delay to the nearest code with saturation.
func (t TDC) Convert(delay float64, n *Noise) int {
	if n != nil {
		delay += n.gauss(n.TDCSigma)
	}
	pos := delay / t.TDel
	if t.INL != 0 {
		pos -= inlBow(t.INL, pos/float64(t.Levels()-1))
	}
	code := int(math.Round(pos))
	if code < 0 {
		return 0
	}
	if code > t.Levels()-1 {
		return t.Levels() - 1
	}
	return code
}

// XSubBuf is the analog time latch between horizontally adjacent crossbars
// (Fig. 6(b)): two cross-coupled inverters plus an output inverter that copy
// an input delay to the output. Each hop adds an independent error ε; k
// cascaded hops accumulate √k·ε (§VI-B).
type XSubBuf struct{}

// Propagate copies the time signal through one X-subBuf hop.
func (XSubBuf) Propagate(t float64, n *Noise) float64 {
	out := t
	if n != nil {
		out += n.gauss(n.XSubBufSigma)
	}
	if out < 0 {
		return 0
	}
	return out
}

// PropagateChain applies hops consecutive X-subBuf copies.
func (x XSubBuf) PropagateChain(t float64, hops int, n *Noise) float64 {
	for i := 0; i < hops; i++ {
		t = x.Propagate(t, n)
	}
	return t
}

// PSubBuf is the NMOS current-mirror buffer under each crossbar
// (Fig. 6(c)): it copies the column current toward the I-adder with a small
// gain error. The paper does not cascade P-subBufs (§V), so a single mirror
// stage suffices.
type PSubBuf struct{}

// Mirror copies charge (the time-integrated column current) through the
// current mirror, applying a multiplicative gain error.
func (PSubBuf) Mirror(charge float64, n *Noise) float64 {
	if n == nil || n.PSubBufRelSigma == 0 || n.RNG == nil {
		return charge
	}
	return charge * (1 + n.RNG.Gauss(0, n.PSubBufRelSigma))
}

// IAdder sums the column currents of vertically stacked crossbars
// (Fig. 6(d): Iout = Σ Iin). Operating on time-integrated charge, the sum
// is exact; mirror errors are injected upstream by the P-subBufs.
type IAdder struct{}

// Sum adds the charges.
func (IAdder) Sum(charges ...float64) float64 {
	s := 0.0
	for _, c := range charges {
		s += c
	}
	return s
}

// ChargingUnit is the two-phase charging + comparator stage of Fig. 6(e,g)
// implementing Eq. 2:
//
//	To = Rmin/(Cc·B·NCB) · Σ Ti/R1i
//
// In phase I the column charge accumulates with the input times; in phase II
// a constant current Ic tops the capacitor past Vth, and the output time is
// T̃ − Tx. All device constants cancel into FullScale: the dot-product value
// Σ xᵢ·gᵢ that maps to the full 255·TDel output range (the per-layer Rmin
// choice of §IV-C). The MSB/LSB capacitor ratio (Cc vs Cc/2) appears as
// CapRatio.
type ChargingUnit struct {
	// FullScale is the dot value mapped to full range (must be > 0).
	FullScale float64
	// CapRatio scales the output time (1 for the Cc MSB column, 0.5 for the
	// Cc/2 LSB column, which doubles its time gain).
	CapRatio float64
	// TDel is the unit delay defining full range ((2^Bits−1)·TDel).
	TDel float64
	// Bits is the downstream TDC resolution defining the output range
	// (0 defaults to the 8-bit Table II design; the functional simulator's
	// ideal-interface verification mode widens it).
	Bits int
}

// NewChargingUnit returns a charging unit with the given full-scale dot
// value and a unit capacitor at the Table II 8-bit resolution.
func NewChargingUnit(fullScale float64) ChargingUnit {
	return ChargingUnit{FullScale: fullScale, CapRatio: 1, TDel: params.TDel, Bits: params.DTCBits}
}

// MaxCode is the largest TDC code the unit can produce (full range).
func (c ChargingUnit) MaxCode() int {
	bits := c.Bits
	if bits == 0 {
		bits = params.DTCBits
	}
	return int(1)<<bits - 1
}

// Output converts the accumulated dot value into an output time delay,
// saturating at full range (the comparator cannot fire later than T̃) and
// injecting comparator jitter.
func (c ChargingUnit) Output(dot float64, n *Noise) float64 {
	if c.FullScale <= 0 {
		panic("analog: ChargingUnit with non-positive FullScale")
	}
	full := float64(c.MaxCode()) * c.TDel
	t := full * dot / c.FullScale
	// Dividing by a unit capacitor ratio is an exact identity; skip it so
	// the hot psum path pays one division, not two.
	if ratio := c.CapRatio; ratio != 0 && ratio != 1 {
		t /= ratio
	}
	if n != nil {
		t += n.gauss(n.ComparatorSigma)
	}
	if t < 0 {
		return 0
	}
	if t > full {
		return full
	}
	return t
}

// CascadeErrorBound returns the paper's √k·ε accumulated-error estimate for
// k cascaded X-subBufs (§VI-B), in ps.
func CascadeErrorBound(k int, epsilon float64) float64 {
	return math.Sqrt(float64(k)) * epsilon
}
