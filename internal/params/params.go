// Package params holds every architectural, circuit and calibration constant
// used by the TIMELY reproduction: the paper's Table I/II parameters, the
// TIMELY sub-chip/chip organisation, and the PRIME and ISAAC baseline
// configurations the paper models with its in-house simulator.
//
// Units are uniform across the repository:
//
//   - energy:  femtojoules (fJ)
//   - time:    picoseconds (ps)
//   - area:    square micrometres (µm²)
//
// Constants that come verbatim from the paper cite their source (table or
// section). Constants the paper does not publish are marked "calibrated"
// together with the anchor they were fitted against (see DESIGN.md).
package params

// Physical constants of the TIMELY design (paper §IV-C, §VI-A, Table II).
const (
	// TDel is the DTC/TDC unit delay in ps (§IV-C: "Tdel is designed to be 50 ps").
	TDel = 50.0
	// TDelMargin is the additional design margin per unit delay in ps (§V).
	TDelMargin = 40.0
	// DTCBits is the DTC/TDC resolution (Table II: 8 bits).
	DTCBits = 8
	// DTCLevels is the number of DTC output levels (2^DTCBits).
	DTCLevels = 1 << DTCBits
	// DTCConversionTime is one 8-bit DTC/TDC conversion in ps
	// (§IV-C: 25 ns including margin).
	DTCConversionTime = 25_000.0
	// VDD is the logic-high voltage of time-domain signals in volts (§VI-A).
	VDD = 1.2
	// ClockRateHz is the digital clock of the chip (§VI-A: 40 MHz).
	ClockRateHz = 40e6
	// ResetPhase is the sub-chip reset phase φ duration in ps (§VI-A: 25 ns).
	ResetPhase = 25_000.0
)

// TIMELY sub-chip organisation (Table II).
const (
	// CrossbarSize is B: a crossbar holds B×B ReRAM bit cells (256×256).
	CrossbarSize = 256
	// CellBits is the number of weight bits stored per ReRAM cell (Table II: 4).
	CellBits = 4
	// CellLevels is the number of programmable conductance levels per cell.
	CellLevels = 1 << CellBits
	// GridRows is the number of crossbar rows per sub-chip (Table II: 16×12 grid).
	GridRows = 16
	// GridCols is the number of crossbar columns per sub-chip.
	GridCols = 12
	// CrossbarsPerSubChip is GridRows×GridCols.
	CrossbarsPerSubChip = GridRows * GridCols
	// Gamma is the number of crossbar rows/columns sharing one DTC/TDC (§VI-A).
	Gamma = 8
	// DTCsPerSubChip is the DTC count (Table II: 16×32).
	DTCsPerSubChip = GridRows * CrossbarSize / Gamma
	// TDCsPerSubChip is the TDC count (Table II: 12×32).
	TDCsPerSubChip = GridCols * CrossbarSize / Gamma
	// SubChipsPerChip is χ, the sub-chip count per chip (§VI-A: 106 for the
	// 91 mm² configuration used against ISAAC's 88 mm²).
	SubChipsPerChip = 106
	// CrossbarsPerChip is the crossbar count of one TIMELY chip
	// (Fig. 8(b): 20352 = 106 × 192).
	CrossbarsPerChip = SubChipsPerChip * CrossbarsPerSubChip
	// SubChipRowCapacity is the number of logical dot-product rows one
	// sub-chip exposes (all crossbar rows in one grid column stack).
	SubChipRowCapacity = GridRows * CrossbarSize
	// SubChipColCapacity is the number of bit-cell columns one sub-chip
	// exposes horizontally.
	SubChipColCapacity = GridCols * CrossbarSize
)

// PipelineCycle is the TIMELY pipeline-cycle time in ps. It is set by the
// slowest stage: γ=8 serialized DTC/TDC conversions of 25 ns each (§VI-A),
// i.e. 200 ns.
const PipelineCycle = Gamma * DTCConversionTime

// Stage latencies of the intra-sub-chip pipeline in ps (§VI-A, from [24]).
const (
	LatencyInputRead   = 16_000.0  // reading inputs from the input buffer
	LatencyAnalog      = 150_000.0 // analog-domain computation
	LatencyOutputWrite = 160_000.0 // writing outputs back to output buffers
)

// TIMELY per-component energies in fJ per use (Table II).
const (
	EnergyDTC       = 37.5   // one 8-bit DTC conversion
	EnergyTDC       = 145.0  // one 8-bit TDC conversion
	EnergyCrossbar  = 1792.0 // one 256×256 crossbar compute activation
	EnergyCharging  = 41.7   // one charging-unit + comparator operation
	EnergyXSubBuf   = 0.62   // one X-subBuf access (eX)
	EnergyPSubBuf   = 2.3    // one P-subBuf access (eP)
	EnergyIAdder    = 36.8   // one I-adder operation
	EnergyReLU      = 205.0  // one ReLU operation
	EnergyMaxPool   = 330.0  // one max-pool operation
	EnergyHyperLink = 1620.0 // one HyperTransport link transfer (inter-chip)
)

// L1 (ReRAM input/output buffer) access energies in fJ.
//
// Table II gives the 2 KB input/output buffer macro energies — 12.736 pJ per
// read access and 31.039 pJ per write access — which dominate TIMELY's
// residual memory energy and put its VGG-D total on the mJ/₁₀ scale of
// Fig. 9(c). Separately, Fig. 5(d) normalises a fine-grained (per-bit-line)
// access eR2 : eP : eX = 1 : 0.11 : 0.03, and §III-B anchors it at ≈9× a
// P-subBuf and ≈33× an X-subBuf (9×2.3 ≈ 33×0.62 ≈ 20.7 fJ); that anchor is
// kept as EnergyL1RefRead for the Fig. 5 reproduction.
const (
	EnergyL1Read  = 12_736.0
	EnergyL1Write = 31_039.0
	// EnergyL1RefRead is the §III-B / Fig. 5(d) fine-grained normalisation
	// anchor (≈9× eP, ≈33× eX).
	EnergyL1RefRead = 20.7
)

// TIMELY per-component areas in µm² (Table II).
const (
	AreaDTC       = 240.0
	AreaTDC       = 310.0
	AreaCrossbar  = 100.0
	AreaCharging  = 40.0
	AreaXSubBuf   = 5.0
	AreaPSubBuf   = 5.0
	AreaIAdder    = 40.0 // hidden under charging caps / crossbars, excluded from totals (§VI-A)
	AreaReLU      = 300.0
	AreaMaxPool   = 240.0
	AreaInBuffer  = 50.0
	AreaOutBuffer = 50.0
)

// Component counts per sub-chip (Table II).
const (
	CountCharging = GridCols * CrossbarSize                  // 12×256
	CountXSubBuf  = GridCols * GridRows * CrossbarSize       // 12×16×256
	CountPSubBuf  = (GridRows - 1) * GridCols * CrossbarSize // 15×12×256
	CountIAdder   = GridCols * CrossbarSize                  // 12×256
	CountReLU     = 2
	CountMaxPool  = 1
)

// Interface energy ratios (Fig. 5(d) and Innovation #2 of §III-B):
// q1 = eDAC/eDTC ≈ 50 and q2 = eADC/eTDC ≈ 20.
const (
	Q1DACOverDTC = 50.0
	Q2ADCOverTDC = 20.0
)

// Derived voltage-domain interface energies (fJ per conversion), used by the
// PRIME/ISAAC baseline models: eDAC = q1·eDTC, eADC = q2·eTDC.
const (
	EnergyDAC = Q1DACOverDTC * EnergyDTC // 1875 fJ
	EnergyADC = Q2ADCOverTDC * EnergyTDC // 2900 fJ
)

// Memory hierarchy ratios from §VI-C: PRIME's L2 memory has 146.7×/6.9×
// higher read/write energy than an L1 memory.
const (
	L2OverL1Read  = 146.7
	L2OverL1Write = 6.9
)

// Noise parameters for the accuracy study (§V, §VI-B).
const (
	// MaxCascadedXSubBufs is the cascade limit used for the ≤0.1 % accuracy
	// claim ("we set the number of cascaded X-subBufs to 12").
	MaxCascadedXSubBufs = 12
	// DefaultXSubBufSigma is the per-X-subBuf time error ε in ps. The paper
	// requires √12·ε to stay within the design margin; with the 40 ps/LSB
	// margin this bounds ε ≲ 11.5 ps. 10 ps is the default design point.
	DefaultXSubBufSigma = 10.0
	// DefaultPSubBufRelSigma is the relative current-mirror gain error of a
	// P-subBuf (calibrated: Cadence Monte-Carlo in the paper; Gaussian here).
	DefaultPSubBufRelSigma = 0.002
	// DefaultComparatorSigma is the comparator threshold jitter in ps.
	DefaultComparatorSigma = 5.0
)

// TimelyConfig captures one TIMELY chip configuration. The zero value is not
// useful; use DefaultTimely.
type TimelyConfig struct {
	// B is the crossbar dimension (B×B bit cells).
	B int
	// GridRows and GridCols give the crossbar grid of one sub-chip.
	GridRows, GridCols int
	// Gamma is the DTC/TDC sharing factor.
	Gamma int
	// SubChips is χ, the number of sub-chips per chip.
	SubChips int
	// Chips is the number of chips in the deployment (16/32/64 in Fig. 8(b)).
	Chips int
	// WeightBits and InputBits give the data precision (8 or 16).
	WeightBits, InputBits int
	// CellBits is the number of weight bits per ReRAM cell.
	CellBits int
}

// DefaultTimely returns the Table II configuration at the given precision
// (8 for the PRIME comparison, 16 for the ISAAC comparison) with one chip.
func DefaultTimely(bits int) TimelyConfig {
	return TimelyConfig{
		B:          CrossbarSize,
		GridRows:   GridRows,
		GridCols:   GridCols,
		Gamma:      Gamma,
		SubChips:   SubChipsPerChip,
		Chips:      1,
		WeightBits: bits,
		InputBits:  bits,
		CellBits:   CellBits,
	}
}

// ColumnsPerWeight is the number of adjacent bit-cell columns one weight
// occupies under the sub-ranging scheme (§IV-C): ⌈WeightBits/CellBits⌉.
func (c TimelyConfig) ColumnsPerWeight() int {
	return (c.WeightBits + c.CellBits - 1) / c.CellBits
}

// InputPasses is the number of 8-bit DTC passes needed per input
// (16-bit inputs are fed as two 8-bit halves).
func (c TimelyConfig) InputPasses() int {
	return (c.InputBits + DTCBits - 1) / DTCBits
}

// CrossbarsPerSubChip returns the crossbar count of one sub-chip.
func (c TimelyConfig) CrossbarsPerSubChip() int { return c.GridRows * c.GridCols }

// Crossbars returns the total crossbar count of the deployment.
func (c TimelyConfig) Crossbars() int {
	return c.Chips * c.SubChips * c.CrossbarsPerSubChip()
}

// RowCapacity is the logical dot-product row capacity of one sub-chip.
func (c TimelyConfig) RowCapacity() int { return c.GridRows * c.B }

// ColCapacity is the bit-cell column capacity of one sub-chip.
func (c TimelyConfig) ColCapacity() int { return c.GridCols * c.B }

// WeightColCapacity is the number of whole weights one sub-chip holds per row.
func (c TimelyConfig) WeightColCapacity() int { return c.ColCapacity() / c.ColumnsPerWeight() }

// CycleTime returns the pipeline-cycle time in ps (γ serialized conversions).
func (c TimelyConfig) CycleTime() float64 { return float64(c.Gamma) * DTCConversionTime }

// MACsPerSubChipCycle is the number of WeightBits-wide MACs one fully
// utilised sub-chip completes per pipeline cycle.
func (c TimelyConfig) MACsPerSubChipCycle() float64 {
	cells := float64(c.CrossbarsPerSubChip()) * float64(c.B) * float64(c.B)
	return cells / float64(c.ColumnsPerWeight())
}

// PeakMACsPerSecond is the peak MAC rate of the whole deployment.
func (c TimelyConfig) PeakMACsPerSecond() float64 {
	cyclesPerSec := 1e12 / (c.CycleTime() * float64(c.InputPasses()))
	return float64(c.Chips*c.SubChips) * c.MACsPerSubChipCycle() * cyclesPerSec
}
