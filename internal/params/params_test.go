package params

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTableIICounts(t *testing.T) {
	if DTCsPerSubChip != 16*32 {
		t.Errorf("DTCsPerSubChip = %d, want %d (Table II: 16x32)", DTCsPerSubChip, 16*32)
	}
	if TDCsPerSubChip != 12*32 {
		t.Errorf("TDCsPerSubChip = %d, want %d (Table II: 12x32)", TDCsPerSubChip, 12*32)
	}
	if CrossbarsPerSubChip != 192 {
		t.Errorf("CrossbarsPerSubChip = %d, want 192 (16x12)", CrossbarsPerSubChip)
	}
	if CountXSubBuf != 12*16*256 {
		t.Errorf("CountXSubBuf = %d, want %d", CountXSubBuf, 12*16*256)
	}
	if CountPSubBuf != 15*12*256 {
		t.Errorf("CountPSubBuf = %d, want %d", CountPSubBuf, 15*12*256)
	}
	if CountCharging != 12*256 {
		t.Errorf("CountCharging = %d, want %d", CountCharging, 12*256)
	}
}

func TestGammaSharingIsConsistent(t *testing.T) {
	// Every crossbar row must be served: DTC count x gamma = grid rows x B.
	if DTCsPerSubChip*Gamma != GridRows*CrossbarSize {
		t.Errorf("DTC sharing inconsistent: %d*%d != %d*%d",
			DTCsPerSubChip, Gamma, GridRows, CrossbarSize)
	}
	if TDCsPerSubChip*Gamma != GridCols*CrossbarSize {
		t.Errorf("TDC sharing inconsistent: %d*%d != %d*%d",
			TDCsPerSubChip, Gamma, GridCols, CrossbarSize)
	}
}

func TestCrossbarsPerChipMatchesFig8b(t *testing.T) {
	if CrossbarsPerChip != 20352 {
		t.Errorf("CrossbarsPerChip = %d, want 20352 (Fig. 8(b))", CrossbarsPerChip)
	}
}

func TestPipelineCycleIs200ns(t *testing.T) {
	if !almostEqual(PipelineCycle, 200_000, 1e-9) {
		t.Errorf("PipelineCycle = %v ps, want 200000 ps (8 x 25 ns)", PipelineCycle)
	}
}

func TestL1EnergyAnchors(t *testing.T) {
	// §III-B: the fine-grained high-cost access reference is ≈ 9× a
	// P-subBuf and ≈ 33× an X-subBuf (the Fig. 5(d) normalisation).
	if r := EnergyL1RefRead / EnergyPSubBuf; !almostEqual(r, 9, 0.5) {
		t.Errorf("eR2/eP = %.2f, want ≈9", r)
	}
	if r := EnergyL1RefRead / EnergyXSubBuf; !almostEqual(r, 33, 1.0) {
		t.Errorf("eR2/eX = %.2f, want ≈33", r)
	}
	// Table II macro accesses dominate TIMELY's residual memory energy.
	if EnergyL1Read != 12_736.0 || EnergyL1Write != 31_039.0 {
		t.Errorf("Table II buffer energies changed: %v/%v", EnergyL1Read, EnergyL1Write)
	}
}

func TestInterfaceRatios(t *testing.T) {
	if !almostEqual(EnergyDAC/EnergyDTC, Q1DACOverDTC, 1e-9) {
		t.Errorf("eDAC/eDTC = %v, want %v", EnergyDAC/EnergyDTC, Q1DACOverDTC)
	}
	if !almostEqual(EnergyADC/EnergyTDC, Q2ADCOverTDC, 1e-9) {
		t.Errorf("eADC/eTDC = %v, want %v", EnergyADC/EnergyTDC, Q2ADCOverTDC)
	}
}

func TestTimelyConfigDerived(t *testing.T) {
	c8 := DefaultTimely(8)
	if got := c8.ColumnsPerWeight(); got != 2 {
		t.Errorf("8-bit ColumnsPerWeight = %d, want 2", got)
	}
	if got := c8.InputPasses(); got != 1 {
		t.Errorf("8-bit InputPasses = %d, want 1", got)
	}
	c16 := DefaultTimely(16)
	if got := c16.ColumnsPerWeight(); got != 4 {
		t.Errorf("16-bit ColumnsPerWeight = %d, want 4", got)
	}
	if got := c16.InputPasses(); got != 2 {
		t.Errorf("16-bit InputPasses = %d, want 2", got)
	}
	if got := c8.RowCapacity(); got != 4096 {
		t.Errorf("RowCapacity = %d, want 4096", got)
	}
	if got := c8.ColCapacity(); got != 3072 {
		t.Errorf("ColCapacity = %d, want 3072", got)
	}
	if got := c8.WeightColCapacity(); got != 1536 {
		t.Errorf("WeightColCapacity = %d, want 1536", got)
	}
}

func TestPeakMACRateOrderOfMagnitude(t *testing.T) {
	// Table IV reports 38.33 TOPs/(s·mm²) on a 91 mm² chip at 8-bit, i.e.
	// ~3.5e15 ops/s per chip. Our first-principles model must land within
	// ~30 % (the paper counts one MAC as one operation here; see DESIGN.md).
	c := DefaultTimely(8)
	got := c.PeakMACsPerSecond()
	want := 38.33e12 * 91.0
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("8-bit peak MAC/s = %.3g, want within 30%% of %.3g", got, want)
	}
	// 16-bit: 9.58 TOPs/(s·mm²) × 91 mm².
	c16 := DefaultTimely(16)
	got16 := c16.PeakMACsPerSecond()
	want16 := 9.58e12 * 91.0
	if got16 < want16*0.7 || got16 > want16*1.3 {
		t.Errorf("16-bit peak MAC/s = %.3g, want within 30%% of %.3g", got16, want16)
	}
}

func TestPrimeConfig(t *testing.T) {
	p := DefaultPrime()
	if p.ColumnsPerWeight() != 2 {
		t.Errorf("PRIME ColumnsPerWeight = %d, want 2", p.ColumnsPerWeight())
	}
	if p.Crossbars != 1024 {
		t.Errorf("PRIME crossbars = %d, want 1024 (Fig. 8(b))", p.Crossbars)
	}
	if PrimeEnergyL2Read/PrimeEnergyBufAccess != L2OverL1Read {
		t.Errorf("L2/L1 read ratio broken")
	}
	if p.PhasesPerWave != 2 {
		t.Errorf("PhasesPerWave = %d, want 2 (6-bit inputs via 3-bit DACs)", p.PhasesPerWave)
	}
}

func TestIsaacConfig(t *testing.T) {
	i := DefaultIsaac()
	if i.ColumnsPerWeight() != 8 {
		t.Errorf("ISAAC ColumnsPerWeight = %d, want 8 (16-bit over 2-bit cells)", i.ColumnsPerWeight())
	}
	if i.InputBitCycles() != 16 {
		t.Errorf("ISAAC InputBitCycles = %d, want 16", i.InputBitCycles())
	}
	if i.Crossbars != 16128 {
		t.Errorf("ISAAC crossbars = %d, want 16128 (Fig. 8(b))", i.Crossbars)
	}
	// §III-A anchors.
	if r := IsaacEnergyEDRAMRead / IsaacEnergyMAC16; !almostEqual(r, 4416, 1) {
		t.Errorf("eDRAM/MAC = %v, want 4416", r)
	}
	if r := IsaacEnergyIRRead / IsaacEnergyMAC16; !almostEqual(r, 264.5, 0.1) {
		t.Errorf("IR/MAC = %v, want 264.5", r)
	}
	if r := IsaacEnergyDAC / IsaacEnergyMAC16; !almostEqual(r, 109.7, 0.1) {
		t.Errorf("DAC/MAC = %v, want 109.7", r)
	}
}

func TestXSubBufNoiseMarginDesignPoint(t *testing.T) {
	// §VI-B: the accumulated error of 12 cascaded X-subBufs is √12·ε and
	// must be tolerated by the design margin. Check the default design point.
	acc := math.Sqrt(MaxCascadedXSubBufs) * DefaultXSubBufSigma
	if acc > TDelMargin {
		t.Errorf("√12·ε = %.1f ps exceeds the %v ps design margin", acc, TDelMargin)
	}
}
