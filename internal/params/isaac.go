package params

// IsaacConfig describes the ISAAC baseline (Shafiee et al., ISCA 2016): a
// tiled ReRAM accelerator with 128×128 crossbars holding 2-bit cells, 16-bit
// weights spread over 8 adjacent columns, bit-serial 16-bit inputs (1 bit per
// 100 ns cycle), one 8-bit ADC shared by the 128 columns of a crossbar, an
// eDRAM input buffer per tile, and a balanced inter-layer pipeline.
type IsaacConfig struct {
	// B is the crossbar dimension (128).
	B int
	// CellBits is the weight bits per cell (2).
	CellBits int
	// WeightBits / InputBits (16/16).
	WeightBits, InputBits int
	// Crossbars per chip (Fig. 8(b): 16128).
	Crossbars int
	// Chips in the deployment.
	Chips int
	// CycleTime is the pipeline cycle in ps (100 ns).
	CycleTime float64
	// MACLatencyCycles is the latency to finish one 16-bit MAC wave
	// (§VI-B: 22 cycles); throughput is pipelined at CycleTime.
	MACLatencyCycles int
}

// DefaultIsaac returns the ISAAC configuration used in the paper's
// comparisons.
func DefaultIsaac() IsaacConfig {
	return IsaacConfig{
		B:                128,
		CellBits:         2,
		WeightBits:       16,
		InputBits:        16,
		Crossbars:        16128,
		Chips:            1,
		CycleTime:        100_000.0,
		MACLatencyCycles: 22,
	}
}

// ColumnsPerWeight: 16-bit weights over 2-bit cells occupy 8 columns.
func (c IsaacConfig) ColumnsPerWeight() int {
	return (c.WeightBits + c.CellBits - 1) / c.CellBits
}

// InputBitCycles is the number of bit-serial input cycles per wave.
func (c IsaacConfig) InputBitCycles() int { return c.InputBits }

// ISAAC unit energies in fJ, calibrated to reproduce the Fig. 4(c) breakdown
// (analog DAC/ADC 61 %, communication 19 %, memory 12 %, digital 8 %) on
// VGG-D with the total anchored to the paper's Fig. 8(a) VGG-4 ratio
// (TIMELY-16 is 22.2× more energy-efficient). §III-A additionally anchors
// the per-input costs relative to a 16-bit ReRAM MAC: eDRAM read ≈ 4416×,
// input register ≈ 264.5×, D/A ≈ 109.7× — those ratios are preserved, with
// the 16-bit MAC reference at 5 fJ.
const (
	// IsaacEnergyMAC16 is the reference energy of one 16-bit ReRAM MAC
	// inside a crossbar (device-level, excluding interfaces).
	IsaacEnergyMAC16 = 5.0
	// IsaacEnergyEDRAMRead is one 16-bit eDRAM read (4416× a 16-bit MAC).
	IsaacEnergyEDRAMRead = 4416 * IsaacEnergyMAC16
	// IsaacEnergyIRRead is one input-register read (264.5× a 16-bit MAC).
	IsaacEnergyIRRead = 264.5 * IsaacEnergyMAC16
	// IsaacEnergyDAC is the per-input D/A cost (109.7× a 16-bit MAC). In
	// ISAAC the "DAC" is a 1-bit wordline driver applied over 16 bit cycles;
	// this is the total per input value.
	IsaacEnergyDAC = 109.7 * IsaacEnergyMAC16
	// IsaacEnergyADC is one 8-bit 1.28 GS/s SAR conversion, calibrated to
	// the 61 % interface share of Fig. 4(c).
	IsaacEnergyADC = 1025.0
	// IsaacEnergyCrossbarOp is one 128×128 crossbar activation for one
	// input-bit cycle (¼ the cells of TIMELY's arrays, single-bit inputs).
	IsaacEnergyCrossbarOp = 150.0
	// IsaacEnergyShiftAdd is the digital shift-and-add per column sample
	// (calibrated to the 8 % digital share).
	IsaacEnergyShiftAdd = 134.0
	// IsaacEnergyHT is one HyperTransport transfer (inter-chip comm).
	IsaacEnergyHT = EnergyHyperLink
	// IsaacEnergyCommPerValue is the average on-chip communication cost per
	// 16-bit value moved through the tile network (calibrated to the 19 %
	// comm share over input + output traffic).
	IsaacEnergyCommPerValue = 36_400.0
)
