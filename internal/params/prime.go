package params

// PrimeConfig describes the PRIME baseline (Chi et al., ISCA 2016) at the
// level of detail the TIMELY paper models it: a ReRAM main-memory chip whose
// full-function (FF) subarrays compute, fed by voltage-domain DACs and
// drained by voltage-domain ADCs, with a two-level on-chip memory hierarchy
// (buffers next to the FF subarrays, mem subarrays behind them) and no
// inter-layer pipeline.
type PrimeConfig struct {
	// B is the crossbar (mat) dimension: PRIME uses 256×256 ReRAM mats.
	B int
	// CellBits is the weight bits per cell (PRIME: 4-bit MLC).
	CellBits int
	// WeightBits / InputBits / OutputBits: PRIME computes with 8-bit weights
	// and 6-bit inputs/outputs (Table IV footnote a).
	WeightBits, InputBits, OutputBits int
	// Crossbars is the number of FF-subarray mats available for computation
	// in one chip (Fig. 8(b): 1024).
	Crossbars int
	// Chips in the deployment.
	Chips int
	// WaveTime is the latency of one dot-product wave (input apply → ADC)
	// in ps. Calibrated: see DESIGN.md.
	WaveTime float64
	// PhasesPerWave: PRIME feeds 6-bit inputs through 3-bit DACs in two
	// phases, so each wave runs twice.
	PhasesPerWave int
}

// DefaultPrime returns the PRIME configuration used throughout the paper's
// comparisons.
func DefaultPrime() PrimeConfig {
	return PrimeConfig{
		B:             256,
		CellBits:      4,
		WeightBits:    8,
		InputBits:     6,
		OutputBits:    6,
		Crossbars:     1024,
		Chips:         1,
		WaveTime:      100_000.0, // 100 ns, calibrated (see DESIGN.md)
		PhasesPerWave: 2,
	}
}

// ColumnsPerWeight mirrors TimelyConfig.ColumnsPerWeight for PRIME's
// sub-ranged 8-bit weights on 4-bit cells.
func (c PrimeConfig) ColumnsPerWeight() int {
	return (c.WeightBits + c.CellBits - 1) / c.CellBits
}

// PRIME unit energies in fJ. PRIME's component energies are not public at
// this granularity; these are calibrated (DESIGN.md "Calibration anchors")
// so that the VGG-D energy breakdown reproduces Fig. 4(b) — inputs 36 %,
// psums+outputs 47 %, ADC 17 %, DAC ≈0 % — with the per-image total near
// the 14.8 mJ implied by PRIME's published 2.10 TOPs/W peak on VGG-D's
// 15.5 G MACs.
const (
	// PrimeEnergyBufAccess: one access to the buffer serving an FF subarray
	// (inputs are read from it; psums bounce through it).
	PrimeEnergyBufAccess = 34_500.0
	// PrimeEnergyBus: the intra-bank wire/driver movement each input read
	// additionally crosses on its way into the crossbar rows.
	PrimeEnergyBus = 30_500.0
	// PrimeEnergyL2Read/Write: mem-subarray accesses. The write cost anchors
	// the output-writeback share of Fig. 4(b); the read keeps the §VI-C
	// 146.7× relation to buffer reads for the Fig. 9(c) level accounting.
	PrimeEnergyL2Read  = L2OverL1Read * PrimeEnergyBufAccess
	PrimeEnergyL2Write = 238_000.0
	// PrimeEnergyDAC/ADC: one voltage-domain conversion. The DAC keeps the
	// q1 relation to TIMELY's DTC; the ADC is calibrated to the 17 % share.
	PrimeEnergyDAC = EnergyDAC
	PrimeEnergyADC = 18_500.0
	// PrimeEnergyCrossbar: one 256×256 mat activation (same device tech as
	// TIMELY's crossbars).
	PrimeEnergyCrossbar = EnergyCrossbar
)

// Retrofit local-buffer energies for the Fig. 11 generalization experiment
// (ALB+O2IR inside PRIME's FF subarrays, built from PRIME's own component
// parameters): the Fig. 5(d) ratios eX = 0.03·eR2 and eP = 0.11·eR2 applied
// to PRIME's effective input-access energy (buffer + intra-bank bus).
const (
	PrimeEnergyXSubBuf = 0.03 * (PrimeEnergyBufAccess + PrimeEnergyBus)
	PrimeEnergyPSubBuf = 0.11 * (PrimeEnergyBufAccess + PrimeEnergyBus)
)
