package tensor

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestConvOut(t *testing.T) {
	cases := []struct{ n, k, s, p, want int }{
		{224, 3, 1, 1, 224}, // VGG same-pad
		{224, 7, 2, 3, 112}, // ResNet stem
		{28, 5, 1, 0, 24},   // LeNet
		{4, 2, 1, 0, 3},     // paper Fig. 2 example
	}
	for _, c := range cases {
		if got := ConvOut(c.n, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOut(%d,%d,%d,%d) = %d, want %d", c.n, c.k, c.s, c.p, got, c.want)
		}
	}
}

// TestConv2DPaperExample reproduces Fig. 2 of the paper: a 4x4 input, two
// 2x2 filters, stride 1, producing 3x3x2 psums. We verify hand-computed
// entries for the first filter.
func TestConv2DPaperExample(t *testing.T) {
	in := NewInt(1, 4, 4)
	// a..p = 1..16
	for i := 0; i < 16; i++ {
		in.Data[i] = int32(i + 1)
	}
	w := NewFilter(2, 1, 2, 2)
	// filter1 = identity-ish [[1,0],[0,1]], filter2 = all ones
	w.Set(0, 0, 0, 0, 1)
	w.Set(0, 0, 1, 1, 1)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			w.Set(1, 0, i, j, 1)
		}
	}
	out := Conv2D(in, w, nil, 1, 0)
	if out.Shape != (Shape{2, 3, 3}) {
		t.Fatalf("out shape = %v, want 2x3x3", out.Shape)
	}
	// w (top-left output, filter1) = a + f = 1 + 6 = 7
	if got := out.At(0, 0, 0); got != 7 {
		t.Errorf("out[0][0][0] = %d, want 7", got)
	}
	// filter2 top-left = a+b+e+f = 1+2+5+6 = 14
	if got := out.At(1, 0, 0); got != 14 {
		t.Errorf("out[1][0][0] = %d, want 14", got)
	}
	// bottom-right, filter2 = k+l+o+p = 11+12+15+16 = 54
	if got := out.At(1, 2, 2); got != 54 {
		t.Errorf("out[1][2][2] = %d, want 54", got)
	}
}

func TestConv2DBiasAndPadding(t *testing.T) {
	in := NewInt(1, 2, 2)
	in.Fill(1)
	w := NewFilter(1, 1, 3, 3)
	for i := 0; i < 9; i++ {
		w.Data[i] = 1
	}
	out := Conv2D(in, w, []int32{10}, 1, 1)
	if out.Shape != (Shape{1, 2, 2}) {
		t.Fatalf("padded out shape = %v", out.Shape)
	}
	// centre of a 2x2 all-ones input under 3x3 all-ones kernel with pad 1:
	// each output sees all 4 inputs = 4, plus bias 10.
	if got := out.At(0, 0, 0); got != 14 {
		t.Errorf("padded conv = %d, want 14", got)
	}
}

func TestConv2DChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("channel mismatch did not panic")
		}
	}()
	Conv2D(NewInt(2, 4, 4), NewFilter(1, 3, 2, 2), nil, 1, 0)
}

func TestFC(t *testing.T) {
	in := NewInt(1, 1, 3)
	copy(in.Data, []int32{1, 2, 3})
	w := [][]int32{{1, 1, 1}, {1, 0, -1}}
	out := FC(in, w, []int32{0, 100})
	if out[0] != 6 {
		t.Errorf("FC[0] = %d, want 6", out[0])
	}
	if out[1] != 98 {
		t.Errorf("FC[1] = %d, want 98", out[1])
	}
}

func TestMaxPool(t *testing.T) {
	in := NewInt(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = int32(i)
	}
	out := MaxPool2D(in, 2, 2)
	if out.Shape != (Shape{1, 2, 2}) {
		t.Fatalf("pool shape = %v", out.Shape)
	}
	want := []int32{5, 7, 13, 15}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("pool[%d] = %d, want %d", i, out.Data[i], w)
		}
	}
}

func TestAvgPool(t *testing.T) {
	in := NewInt(1, 2, 2)
	copy(in.Data, []int32{1, 3, 5, 7})
	out := AvgPool2D(in, 2, 2)
	if out.Data[0] != 4 {
		t.Errorf("avg pool = %d, want 4", out.Data[0])
	}
}

func TestReLU(t *testing.T) {
	in := NewInt(1, 1, 4)
	copy(in.Data, []int32{-5, 0, 3, -1})
	ReLU(in)
	want := []int32{0, 0, 3, 0}
	for i, w := range want {
		if in.Data[i] != w {
			t.Errorf("ReLU[%d] = %d, want %d", i, in.Data[i], w)
		}
	}
}

func TestRequantizeShift(t *testing.T) {
	in := NewInt(1, 1, 3)
	copy(in.Data, []int32{1024, -8, 70000})
	RequantizeShift(in, 4, 255)
	want := []int32{64, 0, 255}
	for i, w := range want {
		if in.Data[i] != w {
			t.Errorf("requant[%d] = %d, want %d", i, in.Data[i], w)
		}
	}
}

// TestIm2ColMatchesConv verifies that the im2col unrolling reproduces the
// direct convolution when multiplied by flattened filters — the property the
// crossbar mapping relies on.
func TestIm2ColMatchesConv(t *testing.T) {
	rng := stats.NewRNG(11)
	in := NewInt(3, 6, 6)
	for i := range in.Data {
		in.Data[i] = int32(rng.Intn(16))
	}
	w := NewFilter(4, 3, 3, 3)
	for i := range w.Data {
		w.Data[i] = int32(rng.Intn(16)) - 8
	}
	stride, pad := 1, 1
	ref := Conv2D(in, w, nil, stride, pad)
	rows, e, f := Im2ColDims(in, 3, 3, stride, pad)
	patches := make([]int32, rows*e*f)
	Im2ColInto(in, 3, 3, stride, pad, patches)
	if e != ref.Shape.H || f != ref.Shape.W {
		t.Fatalf("im2col dims %dx%d, conv dims %dx%d", e, f, ref.Shape.H, ref.Shape.W)
	}
	for d := 0; d < w.D; d++ {
		for p := 0; p < e*f; p++ {
			var acc int64
			for r := 0; r < rows; r++ {
				acc += int64(patches[p*rows+r]) * int64(w.Data[d*rows+r])
			}
			if got := ref.Data[d*e*f+p]; int64(got) != acc {
				t.Fatalf("im2col mismatch at d=%d p=%d: %d vs %d", d, p, acc, got)
			}
		}
	}
}

func TestConv2DLinearityProperty(t *testing.T) {
	// Property: conv(a·in) = a·conv(in) for small scalars (no saturation).
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		in := NewInt(2, 5, 5)
		for i := range in.Data {
			in.Data[i] = int32(rng.Intn(8))
		}
		w := NewFilter(2, 2, 3, 3)
		for i := range w.Data {
			w.Data[i] = int32(rng.Intn(8)) - 4
		}
		base := Conv2D(in, w, nil, 1, 0)
		scaled := in.Clone()
		for i := range scaled.Data {
			scaled.Data[i] *= 3
		}
		got := Conv2D(scaled, w, nil, 1, 0)
		for i := range got.Data {
			if got.Data[i] != 3*base.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMaxPoolIdempotentProperty(t *testing.T) {
	// Property: pooling a constant tensor returns the constant.
	f := func(v int32, seed uint64) bool {
		in := NewInt(1, 4, 4)
		in.Fill(v % 1000)
		out := MaxPool2D(in, 2, 2)
		for _, x := range out.Data {
			if x != v%1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
