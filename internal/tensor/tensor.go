// Package tensor provides the dense tensor containers and bit-exact integer
// reference operators (conv2d, fully-connected, pooling, ReLU, im2col) that
// the analog TIMELY datapath is validated against. Activations and weights
// are integer codes (as produced by package fixed); accumulation is int64 to
// avoid overflow at reference precision.
package tensor

import (
	"fmt"
	"math"
)

// Shape describes a CHW tensor layout (channels, height, width).
type Shape struct {
	C, H, W int
}

// Size returns the element count.
func (s Shape) Size() int { return s.C * s.H * s.W }

// String renders the shape as CxHxW.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Int is a dense integer tensor in CHW order.
type Int struct {
	Shape Shape
	Data  []int32
}

// NewInt allocates a zeroed tensor of the given shape.
func NewInt(c, h, w int) *Int {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%dx%d", c, h, w))
	}
	return &Int{Shape: Shape{c, h, w}, Data: make([]int32, c*h*w)}
}

// At returns the element at (c,h,w).
func (t *Int) At(c, h, w int) int32 {
	return t.Data[(c*t.Shape.H+h)*t.Shape.W+w]
}

// Set stores v at (c,h,w).
func (t *Int) Set(c, h, w int, v int32) {
	t.Data[(c*t.Shape.H+h)*t.Shape.W+w] = v
}

// Clone returns a deep copy.
func (t *Int) Clone() *Int {
	cp := &Int{Shape: t.Shape, Data: make([]int32, len(t.Data))}
	copy(cp.Data, t.Data)
	return cp
}

// Fill sets every element to v.
func (t *Int) Fill(v int32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Filter is a 4-D filter bank: D output channels over CHW kernels.
type Filter struct {
	D, C, Z, G int // output channels, input channels, kernel height, width
	Data       []int32
}

// NewFilter allocates a zeroed filter bank.
func NewFilter(d, c, z, g int) *Filter {
	if d <= 0 || c <= 0 || z <= 0 || g <= 0 {
		panic(fmt.Sprintf("tensor: invalid filter %dx%dx%dx%d", d, c, z, g))
	}
	return &Filter{D: d, C: c, Z: z, G: g, Data: make([]int32, d*c*z*g)}
}

// At returns the weight at (d,c,z,g).
func (f *Filter) At(d, c, z, g int) int32 {
	return f.Data[((d*f.C+c)*f.Z+z)*f.G+g]
}

// Set stores v at (d,c,z,g).
func (f *Filter) Set(d, c, z, g int, v int32) {
	f.Data[((d*f.C+c)*f.Z+z)*f.G+g] = v
}

// ConvOut returns the output spatial dims of a convolution with kernel k,
// stride s and symmetric padding p over an input extent n.
func ConvOut(n, k, s, p int) int {
	if s <= 0 {
		panic("tensor: non-positive stride")
	}
	return (n+2*p-k)/s + 1
}

// Conv2D computes a standard cross-correlation (the CNN "convolution" of
// Eq. 1 in the paper): out[d][y][x] = Σ_c Σ_i Σ_j in[c][Sy+i-p][Sx+j-p] ·
// w[d][c][i][j] + bias[d]. Out-of-bounds taps contribute zero (zero pad).
// bias may be nil.
func Conv2D(in *Int, w *Filter, bias []int32, stride, pad int) *Int {
	if in.Shape.C != w.C {
		panic(fmt.Sprintf("tensor: channel mismatch %d vs %d", in.Shape.C, w.C))
	}
	if bias != nil && len(bias) != w.D {
		panic("tensor: bias length mismatch")
	}
	e := ConvOut(in.Shape.H, w.Z, stride, pad)
	f := ConvOut(in.Shape.W, w.G, stride, pad)
	out := NewInt(w.D, e, f)
	for d := 0; d < w.D; d++ {
		var b int64
		if bias != nil {
			b = int64(bias[d])
		}
		for y := 0; y < e; y++ {
			for x := 0; x < f; x++ {
				acc := b
				for c := 0; c < w.C; c++ {
					for i := 0; i < w.Z; i++ {
						hy := y*stride + i - pad
						if hy < 0 || hy >= in.Shape.H {
							continue
						}
						for j := 0; j < w.G; j++ {
							wx := x*stride + j - pad
							if wx < 0 || wx >= in.Shape.W {
								continue
							}
							acc += int64(in.At(c, hy, wx)) * int64(w.At(d, c, i, j))
						}
					}
				}
				out.Set(d, y, x, saturate32(acc))
			}
		}
	}
	return out
}

// FC computes a fully-connected layer out[d] = Σ_k in[k]·w[d][k] + bias[d].
// The input is flattened in CHW order. bias may be nil.
func FC(in *Int, weights [][]int32, bias []int32) []int32 {
	n := in.Shape.Size()
	out := make([]int32, len(weights))
	for d, row := range weights {
		if len(row) != n {
			panic(fmt.Sprintf("tensor: FC row %d has %d weights, want %d", d, len(row), n))
		}
		var acc int64
		if bias != nil {
			acc = int64(bias[d])
		}
		for k, x := range in.Data {
			acc += int64(x) * int64(row[k])
		}
		out[d] = saturate32(acc)
	}
	return out
}

// MaxPool2D applies non-overlapping-capable max pooling with the given
// kernel k and stride s (no padding).
func MaxPool2D(in *Int, k, s int) *Int {
	e := ConvOut(in.Shape.H, k, s, 0)
	f := ConvOut(in.Shape.W, k, s, 0)
	out := NewInt(in.Shape.C, e, f)
	for c := 0; c < in.Shape.C; c++ {
		for y := 0; y < e; y++ {
			for x := 0; x < f; x++ {
				m := int32(math.MinInt32)
				for i := 0; i < k; i++ {
					for j := 0; j < k; j++ {
						if v := in.At(c, y*s+i, x*s+j); v > m {
							m = v
						}
					}
				}
				out.Set(c, y, x, m)
			}
		}
	}
	return out
}

// AvgPool2D applies average pooling (integer division, rounding toward zero).
func AvgPool2D(in *Int, k, s int) *Int {
	e := ConvOut(in.Shape.H, k, s, 0)
	f := ConvOut(in.Shape.W, k, s, 0)
	out := NewInt(in.Shape.C, e, f)
	n := int64(k * k)
	for c := 0; c < in.Shape.C; c++ {
		for y := 0; y < e; y++ {
			for x := 0; x < f; x++ {
				var sum int64
				for i := 0; i < k; i++ {
					for j := 0; j < k; j++ {
						sum += int64(in.At(c, y*s+i, x*s+j))
					}
				}
				out.Set(c, y, x, saturate32(sum/n))
			}
		}
	}
	return out
}

// ReLU clamps negative elements to zero in place and returns its argument.
func ReLU(t *Int) *Int {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
	return t
}

// RequantizeShift arithmetic-shifts every element right by sh bits (rounding
// toward negative infinity) and saturates into [0, maxCode]. This is the
// digital requantisation step between PIM layers.
func RequantizeShift(t *Int, sh int, maxCode int32) *Int {
	for i, v := range t.Data {
		s := v >> uint(sh)
		if s < 0 {
			s = 0
		}
		if s > maxCode {
			s = maxCode
		}
		t.Data[i] = s
	}
	return t
}

// Im2ColDims returns the unrolled-matrix dimensions of an im2col pass:
// rows = C·Z·G patch elements, and the E×F output positions.
func Im2ColDims(in *Int, z, g, stride, pad int) (rows, e, f int) {
	e = ConvOut(in.Shape.H, z, stride, pad)
	f = ConvOut(in.Shape.W, g, stride, pad)
	return in.Shape.C * z * g, e, f
}

// Im2ColInto unrolls convolution receptive fields into dst, a caller-provided
// flat buffer of at least rows·E·F elements holding one patch (receptive
// field) per output position: dst[(y*F+x)*rows + r], with patch element
// r = (c·Z+i)·G + j — the row layout weights take inside crossbars and the
// input-vector layout the batched forward kernels consume. Out-of-bounds
// taps are written as zero (zero padding). It returns (rows, e, f) and
// panics if dst is too small; it allocates nothing.
func Im2ColInto(in *Int, z, g, stride, pad int, dst []int32) (rows, e, f int) {
	return im2colFill(in, z, g, stride, pad, dst)
}

// Im2ColIntoInts is Im2ColInto writing widened codes into an []int buffer —
// the input type the functional executor consumes — saving callers a
// separate widening copy.
func Im2ColIntoInts(in *Int, z, g, stride, pad int, dst []int) (rows, e, f int) {
	return im2colFill(in, z, g, stride, pad, dst)
}

// im2colFill is the shared patch-major unrolling behind both Im2ColInto
// variants.
func im2colFill[T int32 | int](in *Int, z, g, stride, pad int, dst []T) (rows, e, f int) {
	rows, e, f = Im2ColDims(in, z, g, stride, pad)
	if len(dst) < rows*e*f {
		panic(fmt.Sprintf("tensor: im2col buffer %d shorter than %d", len(dst), rows*e*f))
	}
	h, w, ch := in.Shape.H, in.Shape.W, in.Shape.C
	p := 0
	for y := 0; y < e; y++ {
		for x := 0; x < f; x++ {
			patch := dst[p*rows : (p+1)*rows]
			r := 0
			for c := 0; c < ch; c++ {
				cbase := c * h * w
				for i := 0; i < z; i++ {
					hy := y*stride + i - pad
					if hy < 0 || hy >= h {
						for j := 0; j < g; j++ {
							patch[r] = 0
							r++
						}
						continue
					}
					rowbase := cbase + hy*w
					wx := x*stride - pad
					for j := 0; j < g; j++ {
						if wx+j < 0 || wx+j >= w {
							patch[r] = 0
						} else {
							patch[r] = T(in.Data[rowbase+wx+j])
						}
						r++
					}
				}
			}
			p++
		}
	}
	return rows, e, f
}

func saturate32(v int64) int32 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return int32(v)
}

// Float is a dense float64 tensor in CHW order, used by the pure-Go trainer.
type Float struct {
	Shape Shape
	Data  []float64
}

// NewFloat allocates a zeroed float tensor.
func NewFloat(c, h, w int) *Float {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%dx%d", c, h, w))
	}
	return &Float{Shape: Shape{c, h, w}, Data: make([]float64, c*h*w)}
}

// At returns the element at (c,h,w).
func (t *Float) At(c, h, w int) float64 { return t.Data[(c*t.Shape.H+h)*t.Shape.W+w] }

// Set stores v at (c,h,w).
func (t *Float) Set(c, h, w int, v float64) { t.Data[(c*t.Shape.H+h)*t.Shape.W+w] = v }
