// Package trace provides cycle-level simulations of TIMELY's two pipelines
// (§IV-E): the five-stage intra-sub-chip pipeline (input read → DTC →
// analog computation → TDC → output write) and the inter-sub-chip layer
// pipeline. The discrete-event models cross-validate the closed-form timing
// used by the analytic simulator (package pipeline): the intra pipeline's
// fill behaviour reproduces the paper's narration ("the first data ... is
// written back to an output buffer at the fifth cycle; meanwhile, at the
// fifth cycle, the fifth, fourth, third, and second data is read, converted
// by a DTC, computed ..."), and the inter pipeline's measured steady-state
// throughput converges to the analytic bottleneck.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Stage enumerates the intra-sub-chip pipeline stages in dataflow order.
type Stage int

const (
	// StageRead reads inputs from the input buffer.
	StageRead Stage = iota
	// StageDTC converts digital inputs to time signals.
	StageDTC
	// StageAnalog covers dot products, charging and comparison.
	StageAnalog
	// StageTDC converts time psums back to digital.
	StageTDC
	// StageWrite writes results to the output buffer.
	StageWrite
	// NumStages is the pipeline depth (5).
	NumStages
)

var stageNames = [NumStages]string{"read", "dtc", "analog", "tdc", "write"}

// String returns the pipeline stage's name.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// Event is one (cycle, stage, item) occupancy record. Items and cycles are
// 1-based, matching the paper's "first data ... at the first cycle".
type Event struct {
	Cycle int64
	Stage Stage
	Item  int64
}

// Span is one unit-occupancy interval in real time — the shared event
// vocabulary between the closed-form pipeline cross-checks in this package
// and the event-driven timing backend (internal/timing). A Span says: unit
// U performed operation Op for waves [Wave0, Wave0+Waves) of image Image
// during [StartPS, EndPS).
type Span struct {
	// Unit names the occupied resource (e.g. "conv1_1#0/dtc_convert" or
	// "link:conv1_1->conv2_1").
	Unit string `json:"unit"`
	// Op is the command kind performed ("input_load", "dtc_convert", ...).
	Op string `json:"op"`
	// Stage is the intra-sub-chip pipeline stage the operation realises
	// ("read", "dtc", "analog", "tdc", "write"), or "" for operations
	// outside the five-stage pipeline (inter-sub-chip transfers).
	Stage string `json:"stage,omitempty"`
	// Layer names the network layer the work belongs to.
	Layer string `json:"layer,omitempty"`
	// Image is the 0-based image index the work belongs to.
	Image int `json:"image"`
	// Wave0 and Waves give the pipeline-wave range the span covers.
	Wave0 int64 `json:"wave0"`
	Waves int64 `json:"waves"`
	// StartPS and EndPS bound the occupancy in picoseconds.
	StartPS int64 `json:"start_ps"`
	EndPS   int64 `json:"end_ps"`
}

// Sink receives occupancy spans as a simulation emits them.
type Sink interface {
	Emit(Span)
}

// Span converts one closed-form intra-pipeline occupancy event into the
// shared Span vocabulary, placing it on the real-time axis with the given
// pipeline-cycle time. Items map to waves (one item = one wave of one
// image 0).
func (e Event) Span(cyclePS int64) Span {
	return Span{
		Unit:    "intra/" + e.Stage.String(),
		Op:      e.Stage.String(),
		Stage:   e.Stage.String(),
		Wave0:   e.Item - 1,
		Waves:   1,
		StartPS: (e.Cycle - 1) * cyclePS,
		EndPS:   e.Cycle * cyclePS,
	}
}

// Log collects spans in emission order and serializes them with their
// run metadata — the format `timely evaluate -trace out.json` writes.
type Log struct {
	// Source names the emitting simulator ("timing", "intra").
	Source string `json:"source"`
	// Network names the simulated model, when one applies.
	Network string `json:"network,omitempty"`
	// CyclePS is the pipeline-cycle time of the run in ps.
	CyclePS float64 `json:"cycle_ps,omitempty"`
	// Spans is the event list, in completion order.
	Spans []Span `json:"spans"`
}

// Emit implements Sink.
func (l *Log) Emit(s Span) { l.Spans = append(l.Spans, s) }

// WriteJSON serializes the log as one indented JSON document.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}

// IntraPipeline models the five-stage pipeline over a stream of data items.
type IntraPipeline struct {
	// Items is the number of data items pushed through.
	Items int64
}

// Makespan returns the total cycles to drain the pipeline: items + depth − 1.
func (p IntraPipeline) Makespan() int64 {
	if p.Items <= 0 {
		return 0
	}
	return p.Items + int64(NumStages) - 1
}

// Simulate walks every occupancy event in cycle order. Item i occupies
// stage s during cycle i+s (1-based), so the first item writes back at
// cycle 5 — exactly the §IV-E narration.
func (p IntraPipeline) Simulate(visit func(Event)) {
	for cycle := int64(1); cycle <= p.Makespan(); cycle++ {
		for s := Stage(0); s < NumStages; s++ {
			item := cycle - int64(s)
			if item >= 1 && item <= p.Items {
				visit(Event{Cycle: cycle, Stage: s, Item: item})
			}
		}
	}
}

// OccupancyAt returns which item (1-based; 0 = empty) occupies each stage
// during the given cycle.
func (p IntraPipeline) OccupancyAt(cycle int64) [NumStages]int64 {
	var occ [NumStages]int64
	for s := Stage(0); s < NumStages; s++ {
		item := cycle - int64(s)
		if item >= 1 && item <= p.Items {
			occ[s] = item
		}
	}
	return occ
}

// Utilization returns the fraction of stage-cycles doing useful work over
// the makespan.
func (p IntraPipeline) Utilization() float64 {
	if p.Items <= 0 {
		return 0
	}
	busy := float64(p.Items) * float64(NumStages)
	return busy / (float64(p.Makespan()) * float64(NumStages))
}

// LayerStage is one stage of the inter-sub-chip pipeline: a layer (or layer
// group) that needs Cycles pipeline-cycles per image and is replicated over
// Instances sub-chip groups.
type LayerStage struct {
	Name      string
	Cycles    int64
	Instances int
}

// serviceCycles is the effective per-image service time of a stage.
func (l LayerStage) serviceCycles() float64 {
	if l.Instances < 1 {
		return float64(l.Cycles)
	}
	return float64(l.Cycles) / float64(l.Instances)
}

// InterResult summarises an inter-pipeline simulation.
type InterResult struct {
	// Images is the number of images pushed through.
	Images int
	// TotalCycles is when the last image left the last stage.
	TotalCycles float64
	// SteadyInterval is the measured inter-departure interval over the
	// second half of the run (steady state).
	SteadyInterval float64
	// FirstLatency is the first image's end-to-end latency.
	FirstLatency float64
}

// SimulateInter runs images through the chained layer stages with
// unbounded inter-stage buffering (each sub-chip's output buffer decouples
// neighbours): stage s starts image i at max(done[s][i-1], done[s-1][i]).
// It returns the measured timing, which must converge to the analytic
// bottleneck max_l Cycles_l/Instances_l.
func SimulateInter(stages []LayerStage, images int) InterResult {
	if len(stages) == 0 || images <= 0 {
		return InterResult{}
	}
	depart := make([]float64, len(stages)) // departure time of previous image per stage
	var firstDone, prevDone, lastDone float64
	var half []float64
	for img := 0; img < images; img++ {
		t := 0.0
		for s, st := range stages {
			start := t
			if depart[s] > start {
				start = depart[s]
			}
			t = start + st.serviceCycles()
			depart[s] = t
		}
		if img == 0 {
			firstDone = t
		}
		if img >= images/2 && img > 0 {
			half = append(half, t-prevDone)
		}
		prevDone = t
		lastDone = t
	}
	res := InterResult{
		Images:       images,
		TotalCycles:  lastDone,
		FirstLatency: firstDone,
	}
	if len(half) > 0 {
		sum := 0.0
		for _, v := range half {
			sum += v
		}
		res.SteadyInterval = sum / float64(len(half))
	}
	return res
}
