package trace

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/pipeline"
)

// TestIntraFirstWriteAtFifthCycle checks the §IV-E narration: the first
// datum is read at cycle 1 and written back at cycle 5.
func TestIntraFirstWriteAtFifthCycle(t *testing.T) {
	p := IntraPipeline{Items: 10}
	var firstWrite int64
	p.Simulate(func(e Event) {
		if e.Stage == StageWrite && e.Item == 1 && firstWrite == 0 {
			firstWrite = e.Cycle
		}
	})
	if firstWrite != 5 {
		t.Errorf("first write at cycle %d, want 5 (§IV-E)", firstWrite)
	}
}

// TestIntraFifthCycleOccupancy checks the full §IV-E snapshot: "at the
// fifth cycle, the fifth, fourth, third, and second data is read, converted
// by a DTC, computed in the analog-domain, and converted by a TDC".
func TestIntraFifthCycleOccupancy(t *testing.T) {
	p := IntraPipeline{Items: 10}
	occ := p.OccupancyAt(5)
	want := [NumStages]int64{5, 4, 3, 2, 1}
	if occ != want {
		t.Errorf("cycle-5 occupancy = %v, want %v", occ, want)
	}
}

func TestIntraMakespan(t *testing.T) {
	if got := (IntraPipeline{Items: 1}).Makespan(); got != 5 {
		t.Errorf("single-item makespan = %d, want 5", got)
	}
	if got := (IntraPipeline{Items: 100}).Makespan(); got != 104 {
		t.Errorf("100-item makespan = %d, want 104", got)
	}
	if got := (IntraPipeline{}).Makespan(); got != 0 {
		t.Errorf("empty makespan = %d", got)
	}
}

func TestIntraUtilizationApproachesOne(t *testing.T) {
	small := IntraPipeline{Items: 5}.Utilization()
	large := IntraPipeline{Items: 5000}.Utilization()
	if large <= small {
		t.Errorf("utilization not increasing: %.3f -> %.3f", small, large)
	}
	if large < 0.999 {
		t.Errorf("long-stream utilization = %.4f, want ≈1", large)
	}
}

// TestIntraEventConsistencyProperty: every item visits every stage exactly
// once, in order.
func TestIntraEventConsistencyProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int64(nRaw%50) + 1
		p := IntraPipeline{Items: n}
		visits := make(map[int64][]Stage)
		ok := true
		p.Simulate(func(e Event) {
			seq := visits[e.Item]
			if len(seq) > 0 && seq[len(seq)-1]+1 != e.Stage {
				ok = false
			}
			if len(seq) == 0 && e.Stage != StageRead {
				ok = false
			}
			visits[e.Item] = append(seq, e.Stage)
		})
		if int64(len(visits)) != n {
			return false
		}
		for _, seq := range visits {
			if len(seq) != int(NumStages) {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestInterMatchesAnalyticBottleneck: the event-driven inter-layer pipeline
// must converge to the closed-form bottleneck of package pipeline.
func TestInterMatchesAnalyticBottleneck(t *testing.T) {
	stages := []LayerStage{
		{"conv1", 2240, 3},
		{"conv2", 1120, 1},
		{"conv3", 300, 2},
		{"fc", 10, 1},
	}
	res := SimulateInter(stages, 400)
	pstages := make([]pipeline.Stage, len(stages))
	inst := make([]int, len(stages))
	for i, s := range stages {
		pstages[i] = pipeline.Stage{Name: s.Name, Work: float64(s.Cycles), MinUnits: 1}
		inst[i] = s.Instances
	}
	want := pipeline.BottleneckCycles(pstages, inst)
	if math.Abs(res.SteadyInterval-want)/want > 0.01 {
		t.Errorf("measured steady interval = %.1f cycles, analytic bottleneck = %.1f", res.SteadyInterval, want)
	}
}

// TestInterFirstLatencyIsSumOfStages: with an empty pipeline the first
// image's latency is the serial sum of stage times.
func TestInterFirstLatencyIsSumOfStages(t *testing.T) {
	stages := []LayerStage{{"a", 100, 1}, {"b", 50, 2}, {"c", 10, 1}}
	res := SimulateInter(stages, 10)
	want := 100.0 + 25 + 10
	if math.Abs(res.FirstLatency-want) > 1e-9 {
		t.Errorf("first latency = %v, want %v", res.FirstLatency, want)
	}
}

// TestInterThroughputScalesWithInstances: replicating the bottleneck stage
// must raise throughput proportionally.
func TestInterThroughputScalesWithInstances(t *testing.T) {
	base := SimulateInter([]LayerStage{{"hot", 1000, 1}, {"cold", 10, 1}}, 200)
	dup := SimulateInter([]LayerStage{{"hot", 1000, 4}, {"cold", 10, 1}}, 200)
	if ratio := base.SteadyInterval / dup.SteadyInterval; math.Abs(ratio-4) > 0.05 {
		t.Errorf("4x duplication sped up %.2fx, want ≈4x", ratio)
	}
}

func TestInterDegenerate(t *testing.T) {
	if res := SimulateInter(nil, 10); res.TotalCycles != 0 {
		t.Errorf("empty stage list produced cycles")
	}
	if res := SimulateInter([]LayerStage{{"a", 1, 1}}, 0); res.TotalCycles != 0 {
		t.Errorf("zero images produced cycles")
	}
}

func TestStageString(t *testing.T) {
	if StageRead.String() != "read" || StageWrite.String() != "write" {
		t.Errorf("stage names wrong")
	}
	if Stage(9).String() == "" {
		t.Errorf("out-of-range stage name empty")
	}
}
