package model

import "fmt"

// This file defines the 15 benchmarks of Table III as declarative spec
// tables: each family generator assembles a Spec from its configuration
// data (stage widths, block counts, fire sizes) and every network is built
// through the one Spec.Compile path — the same compiler that serves
// custom user networks. Networks whose exact layer tables are not in the
// TIMELY/PRIME/ISAAC papers are reconstructed from their original
// publications; approximations are noted inline and in DESIGN.md.

// Spec-literal helpers for the zoo tables.

func conv(name string, filters, kernel, stride, pad int) LayerSpec {
	return LayerSpec{Name: name, Kind: "conv", Filters: filters, Kernel: kernel, Stride: stride, Pad: pad}
}

func fc(name string, units int) LayerSpec {
	return LayerSpec{Name: name, Kind: "fc", Units: units}
}

func pool(kind string, kernel, stride, pad int) LayerSpec {
	return LayerSpec{Kind: kind, Kernel: kernel, Stride: stride, Pad: pad}
}

// convAt is a conv fed by an explicit earlier activation — the linearised
// form of a parallel branch (ResNet projection shortcuts).
func convAt(in Dims, name string, filters, kernel, stride, pad int) LayerSpec {
	l := conv(name, filters, kernel, stride, pad)
	l.Input = &in
	return l
}

// vggStage is one pooling stage of a VGG configuration: channel width,
// 3×3 conv count, and the kernel of the optional extra conv (1 for C's
// 1×1 convs, 3 for D's 3×3, 0 for none).
type vggStage struct {
	d, convs, extraK int
}

// vggStages tabulates configurations A–D of Simonyan & Zisserman, which
// ISAAC calls VGG-1..4 and the TIMELY paper evaluates as such.
var vggStages = map[string][]vggStage{
	"A": {{64, 1, 0}, {128, 1, 0}, {256, 2, 0}, {512, 2, 0}, {512, 2, 0}},
	"B": {{64, 2, 0}, {128, 2, 0}, {256, 2, 0}, {512, 2, 0}, {512, 2, 0}},
	"C": {{64, 2, 0}, {128, 2, 0}, {256, 2, 1}, {512, 2, 1}, {512, 2, 1}},
	"D": {{64, 2, 0}, {128, 2, 0}, {256, 2, 3}, {512, 2, 3}, {512, 2, 3}},
}

// VGG builds configuration v ("A"/"B"/"C"/"D") from the stage table.
// VGG-D is the VGG-16 used for the paper's deep-dive experiments.
func VGG(v string) *Network {
	stages, ok := vggStages[v]
	if !ok {
		panic(fmt.Sprintf("model: unknown VGG configuration %q", v))
	}
	s := Spec{Name: "VGG-" + v, Input: Dims{C: 3, H: 224, W: 224}}
	for si, st := range stages {
		for i := 0; i < st.convs; i++ {
			s.Layers = append(s.Layers, conv(fmt.Sprintf("conv%d_%d", si+1, i+1), st.d, 3, 1, 1))
		}
		if st.extraK > 0 {
			s.Layers = append(s.Layers, conv(fmt.Sprintf("conv%d_%d", si+1, st.convs+1), st.d, st.extraK, 1, st.extraK/2))
		}
		s.Layers = append(s.Layers, pool("maxpool", 2, 2, 0))
	}
	s.Layers = append(s.Layers, fc("fc6", 4096), fc("fc7", 4096), fc("fc8", 1000))
	return mustCompile(&s)
}

// MSRA builds model n ∈ {1,2,3} of He et al. 2015 ("Delving Deep into
// Rectifiers"), the MSRA-1/2/3 benchmarks ISAAC and TIMELY use. Model A has
// a 7×7/2 stem and three 5-conv stages; model B deepens each stage to 6
// convs; model C widens B's channels to 384/768/896. The SPP head is
// approximated by a final max pool to 7×7 (shape-level approximation, noted
// in DESIGN.md).
func MSRA(n int) *Network {
	if n < 1 || n > 3 {
		panic(fmt.Sprintf("model: unknown MSRA model %d", n))
	}
	convsPerStage := 5
	ch := []int{256, 512, 512}
	if n >= 2 {
		convsPerStage = 6
	}
	if n == 3 {
		ch = []int{384, 768, 896}
	}
	s := Spec{Name: fmt.Sprintf("MSRA-%d", n), Input: Dims{C: 3, H: 224, W: 224}}
	s.Layers = append(s.Layers,
		conv("conv1", 96, 7, 2, 3), // 224 -> 112
		pool("maxpool", 2, 2, 0),   // 112 -> 56
	)
	for si, d := range ch {
		for i := 0; i < convsPerStage; i++ {
			s.Layers = append(s.Layers, conv(fmt.Sprintf("conv%d_%d", si+2, i+1), d, 3, 1, 1))
		}
		if si < len(ch)-1 {
			s.Layers = append(s.Layers, pool("maxpool", 2, 2, 0))
		}
	}
	s.Layers = append(s.Layers, pool("maxpool", 2, 2, 0)) // SPP approximation: 14 -> 7
	s.Layers = append(s.Layers, fc("fc1", 4096), fc("fc2", 4096), fc("fc3", 1000))
	return mustCompile(&s)
}

// resNetCfg tabulates the standard ImageNet ResNets: per-stage block
// counts and whether blocks are bottlenecks (18 uses basic blocks).
var resNetCfg = map[int]struct {
	blocks     [4]int
	bottleneck bool
}{
	18:  {[4]int{2, 2, 2, 2}, false},
	50:  {[4]int{3, 4, 6, 3}, true},
	101: {[4]int{3, 4, 23, 3}, true},
	152: {[4]int{3, 8, 36, 3}, true},
}

// ResNet builds the ResNet of the given depth (18, 50, 101 or 152) from
// the block table. Projection (1×1) shortcuts appear at each stage entry
// as explicit-input branch layers; identity shortcuts carry no weights and
// are omitted (no MACs in the paper's accounting). A projection's output
// shape coincides with the main path's block output, so shape propagation
// resumes on the main path without further annotation.
func ResNet(depth int) *Network {
	c, ok := resNetCfg[depth]
	if !ok {
		panic(fmt.Sprintf("model: unsupported ResNet depth %d", depth))
	}
	s := Spec{Name: fmt.Sprintf("ResNet-%d", depth), Input: Dims{C: 3, H: 224, W: 224}}
	s.Layers = append(s.Layers,
		conv("conv1", 64, 7, 2, 3), // 224 -> 112
		pool("maxpool", 3, 2, 1),   // 112 -> 56
	)
	in := Dims{C: 64, H: 56, W: 56} // block input, starting after the stem
	width := []int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		d := width[stage]
		for blk := 0; blk < c.blocks[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("conv%d_%d", stage+2, blk+1)
			// Every first conv of a block maps H to (H-1)/stride+1
			// (1×1/s/p0 and 3×3/s/p1 agree), and the rest preserve it.
			out := Dims{C: d, H: (in.H-1)/stride + 1, W: (in.W-1)/stride + 1}
			if c.bottleneck {
				out.C = 4 * d
				s.Layers = append(s.Layers,
					conv(prefix+"_a", d, 1, stride, 0),
					conv(prefix+"_b", d, 3, 1, 1),
					conv(prefix+"_c", out.C, 1, 1, 0))
				if blk == 0 {
					s.Layers = append(s.Layers, convAt(in, prefix+"_proj", out.C, 1, stride, 0))
				}
			} else {
				s.Layers = append(s.Layers,
					conv(prefix+"_a", d, 3, stride, 1),
					conv(prefix+"_b", d, 3, 1, 1))
				if blk == 0 && stride != 1 {
					s.Layers = append(s.Layers, convAt(in, prefix+"_proj", d, 1, stride, 0))
				}
			}
			in = out
		}
	}
	s.Layers = append(s.Layers, pool("avgpool", 7, 7, 0), fc("fc", 1000))
	return mustCompile(&s)
}

// SqueezeNet builds SqueezeNet v1.0 (Iandola et al.). Each fire module is a
// 1×1 squeeze followed by parallel 1×1 and 3×3 expands whose outputs
// concatenate; the parallel expands appear as two layers sharing the squeeze
// output (the 3×3 expand carries an explicit input), and the concatenated
// channel count becomes the next layer's explicit input.
func SqueezeNet() *Network {
	s := Spec{Name: "SqueezeNet", Input: Dims{C: 3, H: 224, W: 224}}
	s.Layers = append(s.Layers,
		conv("conv1", 96, 7, 2, 2), // 224 -> 111 (v1.0 uses pad 2)
		pool("maxpool", 3, 2, 0),   // 111 -> 55
	)
	cur := Dims{C: 96, H: 55, W: 55} // logical cursor after the stem
	prop := cur                      // the shape Compile propagates layer to layer
	// at appends a layer consuming the shape in, marking an explicit input
	// wherever the logical topology diverges from linear propagation, and
	// records the shape propagation continues with.
	at := func(ls LayerSpec, in, out Dims) {
		if in != prop {
			ls.Input = &in
		}
		s.Layers = append(s.Layers, ls)
		prop = out
	}
	fire := func(i, sq, e1, e3 int) {
		h, w := cur.H, cur.W
		at(conv(fmt.Sprintf("fire%d_squeeze", i), sq, 1, 1, 0), cur, Dims{C: sq, H: h, W: w})
		at(conv(fmt.Sprintf("fire%d_expand1", i), e1, 1, 1, 0), Dims{C: sq, H: h, W: w}, Dims{C: e1, H: h, W: w})
		at(conv(fmt.Sprintf("fire%d_expand3", i), e3, 3, 1, 1), Dims{C: sq, H: h, W: w}, Dims{C: e3, H: h, W: w})
		cur = Dims{C: e1 + e3, H: h, W: w} // channel concat of the expands
	}
	shrink := func() {
		out := Dims{C: cur.C, H: (cur.H-3)/2 + 1, W: (cur.W-3)/2 + 1}
		at(pool("maxpool", 3, 2, 0), cur, out)
		cur = out
	}
	fire(2, 16, 64, 64)
	fire(3, 16, 64, 64)
	fire(4, 32, 128, 128)
	shrink() // 55 -> 27
	fire(5, 32, 128, 128)
	fire(6, 48, 192, 192)
	fire(7, 48, 192, 192)
	fire(8, 64, 256, 256)
	shrink() // 27 -> 13
	fire(9, 64, 256, 256)
	at(conv("conv10", 1000, 1, 1, 0), cur, Dims{C: 1000, H: cur.H, W: cur.W})
	at(pool("avgpool", 13, 13, 0), Dims{C: 1000, H: 13, W: 13}, Dims{C: 1000, H: 1, W: 1})
	return mustCompile(&s)
}

// CNN1 is PRIME's CNN-1 MNIST benchmark (Caffe LeNet shape:
// conv5×5-20, pool2, conv5×5-50, pool2, fc500, fc10).
func CNN1() *Network {
	return mustCompile(&Spec{
		Name:  "CNN-1",
		Input: Dims{C: 1, H: 28, W: 28},
		Layers: []LayerSpec{
			conv("conv1", 20, 5, 1, 0), // 28 -> 24
			pool("maxpool", 2, 2, 0),   // 24 -> 12
			conv("conv2", 50, 5, 1, 0), // 12 -> 8
			pool("maxpool", 2, 2, 0),   // 8 -> 4
			fc("fc1", 500),
			fc("fc2", 10),
		},
	})
}

// MLPL is PRIME's MLP-L MNIST benchmark: 784-1500-1000-500-10.
func MLPL() *Network {
	return mustCompile(&Spec{
		Name:  "MLP-L",
		Input: Dims{C: 1, H: 28, W: 28},
		Layers: []LayerSpec{
			fc("fc1", 1500), fc("fc2", 1000), fc("fc3", 500), fc("fc4", 10),
		},
	})
}

// renamed evaluates a family constructor under a published alias
// (ISAAC's VGG-1..4 numbering of configurations A..D).
func renamed(n *Network, name string) *Network {
	n.Name = name
	return n
}

// zoo maps every Table III name to its builder.
var zoo = map[string]func() *Network{
	"VGG-D":      func() *Network { return VGG("D") },
	"VGG-1":      func() *Network { return renamed(VGG("A"), "VGG-1") },
	"VGG-2":      func() *Network { return renamed(VGG("B"), "VGG-2") },
	"VGG-3":      func() *Network { return renamed(VGG("C"), "VGG-3") },
	"VGG-4":      func() *Network { return renamed(VGG("D"), "VGG-4") },
	"MSRA-1":     func() *Network { return MSRA(1) },
	"MSRA-2":     func() *Network { return MSRA(2) },
	"MSRA-3":     func() *Network { return MSRA(3) },
	"ResNet-18":  func() *Network { return ResNet(18) },
	"ResNet-50":  func() *Network { return ResNet(50) },
	"ResNet-101": func() *Network { return ResNet(101) },
	"ResNet-152": func() *Network { return ResNet(152) },
	"SqueezeNet": SqueezeNet,
	"CNN-1":      CNN1,
	"MLP-L":      MLPL,
}

// zooOrder is the Table III suite in the paper's order.
var zooOrder = []string{
	"VGG-D", "CNN-1", "MLP-L",
	"VGG-1", "VGG-2", "VGG-3", "VGG-4",
	"MSRA-1", "MSRA-2", "MSRA-3",
	"ResNet-18", "ResNet-50", "ResNet-101", "ResNet-152",
	"SqueezeNet",
}

// ByName returns the benchmark with the given Table III name.
func ByName(name string) (*Network, error) {
	build, ok := zoo[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown benchmark %q", name)
	}
	return build(), nil
}

// BenchmarkNames returns the Table III names in the paper's order.
func BenchmarkNames() []string {
	return append([]string(nil), zooOrder...)
}

// Benchmarks returns the full Table III suite in the paper's order.
func Benchmarks() []*Network {
	out := make([]*Network, len(zooOrder))
	for i, n := range zooOrder {
		net, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out[i] = net
	}
	return out
}
