package model

import "fmt"

// This file defines the 15 benchmarks of Table III. Networks whose exact
// layer tables are not in the TIMELY/PRIME/ISAAC papers are reconstructed
// from their original publications; approximations are noted inline and in
// DESIGN.md.

// VGG builds configuration v of Simonyan & Zisserman ("A"/"B"/"C"/"D"),
// which ISAAC calls VGG-1..4 and the TIMELY paper evaluates as such.
// VGG-D is the VGG-16 used for the paper's deep-dive experiments.
func VGG(v string) *Network {
	b := NewBuilder("VGG-"+v, 3, 224, 224)
	// blocks: convs per stage for each configuration, plus the stage-3..5
	// extra-conv kernel (1 for C's 1x1 convs, 3 for D's 3x3).
	type stage struct {
		d      int
		convs  int
		extraK int // 0: none, else kernel of the extra conv
	}
	var stages []stage
	switch v {
	case "A":
		stages = []stage{{64, 1, 0}, {128, 1, 0}, {256, 2, 0}, {512, 2, 0}, {512, 2, 0}}
	case "B":
		stages = []stage{{64, 2, 0}, {128, 2, 0}, {256, 2, 0}, {512, 2, 0}, {512, 2, 0}}
	case "C":
		stages = []stage{{64, 2, 0}, {128, 2, 0}, {256, 2, 1}, {512, 2, 1}, {512, 2, 1}}
	case "D":
		stages = []stage{{64, 2, 0}, {128, 2, 0}, {256, 2, 3}, {512, 2, 3}, {512, 2, 3}}
	default:
		panic(fmt.Sprintf("model: unknown VGG configuration %q", v))
	}
	n := 0
	for si, st := range stages {
		for i := 0; i < st.convs; i++ {
			n++
			b.Conv(fmt.Sprintf("conv%d_%d", si+1, i+1), st.d, 3, 1, 1)
		}
		if st.extraK > 0 {
			n++
			b.Conv(fmt.Sprintf("conv%d_%d", si+1, st.convs+1), st.d, st.extraK, 1, st.extraK/2)
		}
		b.MaxPool(2, 2, 0)
	}
	b.FC("fc6", 4096).FC("fc7", 4096).FC("fc8", 1000)
	return b.Build()
}

// MSRA builds model n ∈ {1,2,3} of He et al. 2015 ("Delving Deep into
// Rectifiers"), the MSRA-1/2/3 benchmarks ISAAC and TIMELY use. Model A has
// a 7×7/2 stem and three 5-conv stages; model B deepens each stage to 6
// convs; model C widens B's channels to 384/768/896. The SPP head is
// approximated by a final max pool to 7×7 (shape-level approximation, noted
// in DESIGN.md).
func MSRA(n int) *Network {
	convsPerStage := 5
	ch := []int{256, 512, 512}
	if n >= 2 {
		convsPerStage = 6
	}
	if n == 3 {
		ch = []int{384, 768, 896}
	}
	if n < 1 || n > 3 {
		panic(fmt.Sprintf("model: unknown MSRA model %d", n))
	}
	b := NewBuilder(fmt.Sprintf("MSRA-%d", n), 3, 224, 224)
	b.Conv("conv1", 96, 7, 2, 3) // 224 -> 112
	b.MaxPool(2, 2, 0)           // 112 -> 56
	for si, d := range ch {
		for i := 0; i < convsPerStage; i++ {
			b.Conv(fmt.Sprintf("conv%d_%d", si+2, i+1), d, 3, 1, 1)
		}
		if si < len(ch)-1 {
			b.MaxPool(2, 2, 0)
		}
	}
	b.MaxPool(2, 2, 0) // SPP approximation: 14 -> 7
	b.FC("fc1", 4096).FC("fc2", 4096).FC("fc3", 1000)
	return b.Build()
}

// ResNet builds the standard ImageNet ResNet of the given depth
// (18, 50, 101 or 152). Basic blocks for 18; bottlenecks otherwise.
// Projection (1×1) shortcuts appear at each stage entry; identity shortcuts
// carry no weights and are omitted (no MACs in the paper's accounting).
func ResNet(depth int) *Network {
	type cfg struct {
		blocks     [4]int
		bottleneck bool
	}
	var c cfg
	switch depth {
	case 18:
		c = cfg{[4]int{2, 2, 2, 2}, false}
	case 50:
		c = cfg{[4]int{3, 4, 6, 3}, true}
	case 101:
		c = cfg{[4]int{3, 4, 23, 3}, true}
	case 152:
		c = cfg{[4]int{3, 8, 36, 3}, true}
	default:
		panic(fmt.Sprintf("model: unsupported ResNet depth %d", depth))
	}
	b := NewBuilder(fmt.Sprintf("ResNet-%d", depth), 3, 224, 224)
	b.Conv("conv1", 64, 7, 2, 3) // 224 -> 112
	b.MaxPool(3, 2, 1)           // 112 -> 56
	width := []int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		d := width[stage]
		for blk := 0; blk < c.blocks[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("conv%d_%d", stage+2, blk+1)
			inC, inH, inW := b.Cursor()
			if c.bottleneck {
				outC := 4 * d
				b.Conv(prefix+"_a", d, 1, stride, 0)
				b.Conv(prefix+"_b", d, 3, 1, 1)
				b.Conv(prefix+"_c", outC, 1, 1, 0)
				if blk == 0 {
					// projection shortcut from the block input
					oc, oh, ow := b.Cursor()
					b.ConvAt(prefix+"_proj", inC, inH, inW, outC, 1, stride, 0)
					b.SetCursor(oc, oh, ow)
				}
			} else {
				b.Conv(prefix+"_a", d, 3, stride, 1)
				b.Conv(prefix+"_b", d, 3, 1, 1)
				if blk == 0 && stride != 1 {
					oc, oh, ow := b.Cursor()
					b.ConvAt(prefix+"_proj", inC, inH, inW, d, 1, stride, 0)
					b.SetCursor(oc, oh, ow)
				}
			}
		}
	}
	b.AvgPool(7, 7, 0)
	b.FC("fc", 1000)
	return b.Build()
}

// SqueezeNet builds SqueezeNet v1.0 (Iandola et al.). Each fire module is a
// 1×1 squeeze followed by parallel 1×1 and 3×3 expands whose outputs
// concatenate; the parallel expands appear as two layers sharing the squeeze
// output, and the cursor is set to the concatenated channel count.
func SqueezeNet() *Network {
	b := NewBuilder("SqueezeNet", 3, 224, 224)
	b.Conv("conv1", 96, 7, 2, 2) // 224 -> 111 (v1.0 uses pad 2)
	b.MaxPool(3, 2, 0)           // 111 -> 55
	fire := func(i, s, e1, e3 int) {
		_, h, w := b.Cursor()
		b.Conv(fmt.Sprintf("fire%d_squeeze", i), s, 1, 1, 0)
		sc, sh, sw := b.Cursor()
		b.Conv(fmt.Sprintf("fire%d_expand1", i), e1, 1, 1, 0)
		b.ConvAt(fmt.Sprintf("fire%d_expand3", i), sc, sh, sw, e3, 3, 1, 1)
		b.SetCursor(e1+e3, h, w)
	}
	fire(2, 16, 64, 64)
	fire(3, 16, 64, 64)
	fire(4, 32, 128, 128)
	b.MaxPool(3, 2, 0) // 55 -> 27
	fire(5, 32, 128, 128)
	fire(6, 48, 192, 192)
	fire(7, 48, 192, 192)
	fire(8, 64, 256, 256)
	b.MaxPool(3, 2, 0) // 27 -> 13
	fire(9, 64, 256, 256)
	b.Conv("conv10", 1000, 1, 1, 0)
	b.AvgPool(13, 13, 0)
	return b.Build()
}

// CNN1 is PRIME's CNN-1 MNIST benchmark (Caffe LeNet shape:
// conv5×5-20, pool2, conv5×5-50, pool2, fc500, fc10).
func CNN1() *Network {
	b := NewBuilder("CNN-1", 1, 28, 28)
	b.Conv("conv1", 20, 5, 1, 0) // 28 -> 24
	b.MaxPool(2, 2, 0)           // 24 -> 12
	b.Conv("conv2", 50, 5, 1, 0) // 12 -> 8
	b.MaxPool(2, 2, 0)           // 8 -> 4
	b.FC("fc1", 500).FC("fc2", 10)
	return b.Build()
}

// MLPL is PRIME's MLP-L MNIST benchmark: 784-1500-1000-500-10.
func MLPL() *Network {
	b := NewBuilder("MLP-L", 1, 28, 28)
	b.FC("fc1", 1500).FC("fc2", 1000).FC("fc3", 500).FC("fc4", 10)
	return b.Build()
}

// ByName returns the benchmark with the given Table III name.
func ByName(name string) (*Network, error) {
	switch name {
	case "VGG-D", "VGG-4":
		n := VGG("D")
		n.Name = name
		return n, nil
	case "VGG-1":
		n := VGG("A")
		n.Name = name
		return n, nil
	case "VGG-2":
		n := VGG("B")
		n.Name = name
		return n, nil
	case "VGG-3":
		n := VGG("C")
		n.Name = name
		return n, nil
	case "MSRA-1":
		return MSRA(1), nil
	case "MSRA-2":
		return MSRA(2), nil
	case "MSRA-3":
		return MSRA(3), nil
	case "ResNet-18":
		return ResNet(18), nil
	case "ResNet-50":
		return ResNet(50), nil
	case "ResNet-101":
		return ResNet(101), nil
	case "ResNet-152":
		return ResNet(152), nil
	case "SqueezeNet":
		return SqueezeNet(), nil
	case "CNN-1":
		return CNN1(), nil
	case "MLP-L":
		return MLPL(), nil
	}
	return nil, fmt.Errorf("model: unknown benchmark %q", name)
}

// Benchmarks returns the full Table III suite in the paper's order.
func Benchmarks() []*Network {
	names := []string{
		"VGG-D", "CNN-1", "MLP-L",
		"VGG-1", "VGG-2", "VGG-3", "VGG-4",
		"MSRA-1", "MSRA-2", "MSRA-3",
		"ResNet-18", "ResNet-50", "ResNet-101", "ResNet-152",
		"SqueezeNet",
	}
	out := make([]*Network, len(names))
	for i, n := range names {
		net, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out[i] = net
	}
	return out
}
