package model

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestZooSpecRoundTrip is the zoo equivalence proof: every Table III
// network exported to its declarative spec, serialized to JSON, parsed
// back and compiled must reproduce the exact layer table — every field of
// every layer — plus the derived MAC and parameter totals.
func TestZooSpecRoundTrip(t *testing.T) {
	for _, n := range Benchmarks() {
		spec := n.Spec()

		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal spec: %v", n.Name, err)
		}
		var parsed Spec
		if err := json.Unmarshal(raw, &parsed); err != nil {
			t.Fatalf("%s: unmarshal spec: %v", n.Name, err)
		}
		got, err := parsed.Compile()
		if err != nil {
			t.Fatalf("%s: compile exported spec: %v", n.Name, err)
		}

		if got.Name != n.Name || got.InC != n.InC || got.InH != n.InH || got.InW != n.InW {
			t.Errorf("%s: header mismatch: got %s %dx%dx%d", n.Name, got.Name, got.InC, got.InH, got.InW)
		}
		if !reflect.DeepEqual(got.Layers, n.Layers) {
			if len(got.Layers) != len(n.Layers) {
				t.Fatalf("%s: layer count %d != %d", n.Name, len(got.Layers), len(n.Layers))
			}
			for i := range n.Layers {
				if got.Layers[i] != n.Layers[i] {
					t.Errorf("%s layer %d:\n got  %+v\n want %+v", n.Name, i, got.Layers[i], n.Layers[i])
				}
			}
		}
		if got.TotalMACs() != n.TotalMACs() {
			t.Errorf("%s: MACs %d != %d", n.Name, got.TotalMACs(), n.TotalMACs())
		}
		if got.TotalParams() != n.TotalParams() {
			t.Errorf("%s: params %d != %d", n.Name, got.TotalParams(), n.TotalParams())
		}
		if got.SpecHash() != n.SpecHash() {
			t.Errorf("%s: hash changed across round trip", n.Name)
		}
	}
}

// TestZooGoldenTotals pins the exact layer counts and derived totals of
// the spec-compiled zoo, so a silent change to either the spec tables or
// the compiler's shape inference cannot pass unnoticed.
func TestZooGoldenTotals(t *testing.T) {
	golden := []struct {
		name   string
		layers int
		macs   int64
		params int64
	}{
		{"VGG-D", 21, 15470264320, 138344128},
		{"CNN-1", 6, 2293000, 430500},
		{"MLP-L", 4, 3181000, 3181000},
		{"VGG-1", 16, 7609090048, 132851392},
		{"VGG-2", 18, 11308466176, 133035712},
		{"VGG-3", 21, 11770888192, 133625536},
		{"VGG-4", 21, 15470264320, 138344128},
		{"MSRA-1", 23, 19028746240, 148641568},
		{"MSRA-2", 26, 23190544384, 153949984},
		{"MSRA-3", 26, 53411749888, 279201568},
		{"ResNet-18", 23, 1814073344, 11678912},
		{"ResNet-50", 56, 3857973248, 25502912},
		{"ResNet-101", 107, 7570194432, 44442816},
		{"ResNet-152", 158, 11282415616, 60040384},
		{"SqueezeNet", 30, 832667936, 1244448},
	}
	if len(golden) != len(BenchmarkNames()) {
		t.Fatalf("golden table covers %d networks, zoo has %d", len(golden), len(BenchmarkNames()))
	}
	for _, g := range golden {
		n, err := ByName(g.name)
		if err != nil {
			t.Fatal(err)
		}
		if len(n.Layers) != g.layers || n.TotalMACs() != g.macs || n.TotalParams() != g.params {
			t.Errorf("%s: layers/MACs/params = %d/%d/%d, want %d/%d/%d",
				g.name, len(n.Layers), n.TotalMACs(), n.TotalParams(), g.layers, g.macs, g.params)
		}
	}
}

// specErr compiles the spec expecting a *SpecError mentioning field on
// layer index.
func specErr(t *testing.T, s *Spec, layer int, field string) *SpecError {
	t.Helper()
	_, err := s.Compile()
	if err == nil {
		t.Fatalf("Compile(%s) succeeded, want error on layer %d field %q", s.Name, layer, field)
	}
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *SpecError: %v", err, err)
	}
	if se.Layer != layer || se.Field != field {
		t.Fatalf("error at layer %d field %q, want layer %d field %q: %v",
			se.Layer, se.Field, layer, field, err)
	}
	return se
}

func TestSpecValidation(t *testing.T) {
	valid := func() *Spec {
		return &Spec{
			Name:  "t",
			Input: Dims{C: 3, H: 8, W: 8},
			Layers: []LayerSpec{
				{Name: "c1", Kind: "conv", Filters: 4, Kernel: 3, Pad: 1},
				{Kind: "maxpool", Kernel: 2, Stride: 2},
				{Name: "out", Kind: "fc", Units: 10},
			},
		}
	}
	if _, err := valid().Compile(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	t.Run("spec level", func(t *testing.T) {
		s := valid()
		s.Name = ""
		specErr(t, s, -1, "name")

		s = valid()
		s.Input = Dims{C: 0, H: 8, W: 8}
		specErr(t, s, -1, "input")

		s = valid()
		s.Input.H = -3
		specErr(t, s, -1, "input")

		s = valid()
		s.Layers = nil
		specErr(t, s, -1, "layers")
	})

	t.Run("kinds and fields", func(t *testing.T) {
		s := valid()
		s.Layers[0].Kind = "dropout"
		specErr(t, s, 0, "kind")

		s = valid()
		s.Layers[0].Filters = 0
		specErr(t, s, 0, "filters")

		s = valid()
		s.Layers[0].Units = 7 // units on a conv
		specErr(t, s, 0, "units")

		s = valid()
		s.Layers[2].Filters = 7 // filters on an fc
		specErr(t, s, 2, "filters")

		s = valid()
		s.Layers[2].Kernel = 3 // kernel on an fc
		specErr(t, s, 2, "kernel")

		s = valid()
		s.Layers[2].Units = 0
		specErr(t, s, 2, "units")

		s = valid()
		s.Layers[1].Filters = 2 // filters on a pool
		specErr(t, s, 1, "filters")

		s = valid()
		s.Layers[0].Stride = -1
		specErr(t, s, 0, "stride")

		s = valid()
		s.Layers[0].Pad = -1
		specErr(t, s, 0, "pad")
	})

	t.Run("kernels", func(t *testing.T) {
		s := valid()
		s.Layers[0].Kernel = 0 // conv with no kernel at all
		specErr(t, s, 0, "kernel")

		s = valid()
		s.Layers[0].KernelH = 3 // both forms at once
		specErr(t, s, 0, "kernel")

		s = valid()
		s.Layers[0].Kernel = 0
		s.Layers[0].KernelH = 3 // rectangular form missing kernel_w
		specErr(t, s, 0, "kernel")

		s = valid()
		s.Layers[0].Kernel = -3
		specErr(t, s, 0, "kernel")

		// Rectangular pools are not representable in the layer model.
		s = valid()
		s.Layers[1].Kernel = 0
		s.Layers[1].KernelH, s.Layers[1].KernelW = 2, 3
		specErr(t, s, 1, "kernel")

		// A rectangular conv kernel is fine.
		s = valid()
		s.Layers[0].Kernel = 0
		s.Layers[0].KernelH, s.Layers[0].KernelW = 1, 3
		n, err := s.Compile()
		if err != nil {
			t.Fatalf("rectangular kernel rejected: %v", err)
		}
		if l := n.Layers[0]; l.Z != 1 || l.G != 3 {
			t.Errorf("rect kernel compiled to %dx%d", l.Z, l.G)
		}
	})

	t.Run("shape inference", func(t *testing.T) {
		// Kernel larger than the padded input: empty output.
		s := valid()
		s.Layers[0].Kernel = 9
		s.Layers[0].Pad = 0
		specErr(t, s, 0, "kernel")

		// Stride larger than the kernel is legal — it skips positions.
		s = valid()
		s.Layers[0].Stride = 5
		n, err := s.Compile()
		if err != nil {
			t.Fatalf("stride > kernel rejected: %v", err)
		}
		if l := n.Layers[0]; l.E != 2 || l.F != 2 {
			t.Errorf("stride-5 conv output = %dx%d, want 2x2", l.E, l.F)
		}

		// Stride beyond the input collapses later layers to empty output.
		s = valid()
		s.Layers[0].Stride = 9 // 8x8 -> 1x1, pool 2/2 then has nothing left
		specErr(t, s, 1, "kernel")

		// A conv after an fc sees a 1x1 map: a 3x3 kernel cannot fit.
		s = valid()
		s.Layers = append(s.Layers, LayerSpec{Name: "late", Kind: "conv", Filters: 2, Kernel: 3})
		specErr(t, s, 3, "kernel")

		// Explicit branch inputs must be positive...
		s = valid()
		s.Layers[1].Input = &Dims{C: 4, H: 0, W: 6}
		specErr(t, s, 1, "input")

		// ...and drive inference when valid: an fc consuming a merged
		// concat sees the override, not the propagated shape.
		s = valid()
		s.Layers[2].Input = &Dims{C: 9, H: 2, W: 2}
		n, err = s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if l := n.Layers[2]; l.C != 9 || l.H != 2 || l.W != 2 || l.D != 10 {
			t.Errorf("fc with explicit input compiled to %+v", l)
		}
	})
}

// TestSpecErrorText exercises the error formatting paths.
func TestSpecErrorText(t *testing.T) {
	s := &Spec{Name: "net", Input: Dims{C: 1, H: 4, W: 4},
		Layers: []LayerSpec{{Name: "bad", Kind: "conv", Filters: 0, Kernel: 3}}}
	_, err := s.Compile()
	msg := err.Error()
	for _, want := range []string{`spec "net"`, "layer 0", "bad", "filters"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

// TestSpecAutoNames proves unnamed layers get the builder's kind+index
// names, so hand-written specs and zoo tables agree on pool naming.
func TestSpecAutoNames(t *testing.T) {
	s := &Spec{Name: "t", Input: Dims{C: 1, H: 8, W: 8},
		Layers: []LayerSpec{
			{Kind: "conv", Filters: 2, Kernel: 3, Pad: 1},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "fc", Units: 3},
		}}
	n, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"conv0", "maxpool1", "fc2"} {
		if n.Layers[i].Name != want {
			t.Errorf("layer %d auto-name = %q, want %q", i, n.Layers[i].Name, want)
		}
	}
}

// TestSpecHashCanonical proves semantically-identical spellings hash
// identically while different networks do not collide.
func TestSpecHashCanonical(t *testing.T) {
	a := &Spec{Name: "t", Input: Dims{C: 1, H: 8, W: 8},
		Layers: []LayerSpec{{Name: "conv0", Kind: "conv", Filters: 2, Kernel: 3, Stride: 1, Pad: 1}}}
	b := &Spec{Name: "t", Input: Dims{C: 1, H: 8, W: 8},
		Layers: []LayerSpec{{Kind: "conv", Filters: 2, KernelH: 3, KernelW: 3, Pad: 1}}}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("equivalent spellings hash differently: %s vs %s", ha, hb)
	}

	c := &Spec{Name: "t", Input: Dims{C: 1, H: 8, W: 8},
		Layers: []LayerSpec{{Kind: "conv", Filters: 3, Kernel: 3, Pad: 1}}}
	hc, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Errorf("different networks share hash %s", hc)
	}

	if _, err := (&Spec{Name: "bad"}).Hash(); err == nil {
		t.Errorf("Hash of invalid spec did not error")
	}

	// The hash is a pure content hash: a renamed copy of a network hashes
	// identically (VGG-D and VGG-4 are the same configuration under two
	// published names), while every distinct layer table stays distinct.
	seen := map[string]string{}
	for _, n := range Benchmarks() {
		h := n.SpecHash()
		if prev, ok := seen[h]; ok {
			same := prev == "VGG-D" && n.Name == "VGG-4"
			if !same {
				t.Errorf("%s and %s share spec hash", prev, n.Name)
			}
			continue
		}
		seen[h] = n.Name
	}
	vggD, _ := ByName("VGG-D")
	vgg4, _ := ByName("VGG-4")
	if vggD.SpecHash() != vgg4.SpecHash() {
		t.Errorf("VGG-D and VGG-4 (same layer table) hash differently")
	}
}

// FuzzSpecCompile feeds arbitrary JSON into the spec parser+compiler:
// whatever the input, Compile must either fail with an error or produce a
// network whose derived quantities are sane — never panic.
func FuzzSpecCompile(f *testing.F) {
	for _, n := range Benchmarks()[:3] {
		raw, err := json.Marshal(n.Spec())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(raw))
	}
	f.Add(`{"name":"x","input":{"c":1,"h":4,"w":4},"layers":[{"kind":"conv","filters":1,"kernel":9}]}`)
	f.Add(`{"name":"x","input":{"c":-1,"h":0,"w":4},"layers":[{"kind":"fc","units":0}]}`)
	f.Fuzz(func(t *testing.T, raw string) {
		var s Spec
		if err := json.Unmarshal([]byte(raw), &s); err != nil {
			return
		}
		n, err := s.Compile()
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("Compile error is %T, want *SpecError: %v", err, err)
			}
			return
		}
		if len(n.Layers) == 0 {
			t.Fatalf("compiled network has no layers")
		}
		if n.TotalMACs() < 0 || n.TotalParams() < 0 {
			t.Fatalf("negative totals: MACs %d params %d", n.TotalMACs(), n.TotalParams())
		}
		// A compiled network must survive its own round trip.
		again, err := n.Spec().Compile()
		if err != nil {
			t.Fatalf("re-compiling exported spec: %v", err)
		}
		if !reflect.DeepEqual(again.Layers, n.Layers) {
			t.Fatalf("round trip changed the layer table")
		}
	})
}
