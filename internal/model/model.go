// Package model defines the network description format used by all
// simulators — layer shapes with derived dimensions, MAC and parameter
// counts — plus the 15-benchmark zoo of Table III (VGG-A..D, MSRA-1/2/3,
// ResNet-18/50/101/152, SqueezeNet, CNN-1, MLP-L).
//
// The zoo encodes layer *shapes* only; actual weights come from package
// workload (trained or synthetic). Branching topologies (ResNet residuals,
// SqueezeNet fire expands) are linearised for the analytic simulators: each
// parallel convolution appears as its own layer with an explicit input shape
// and the merge is reflected in the next layer's input channels. Element-wise
// residual adds contribute no MACs and are ignored, as in the paper's
// modelling.
package model

import "fmt"

// Kind enumerates layer types.
type Kind int

const (
	// KindConv is a 2-D convolution (with folded ReLU).
	KindConv Kind = iota
	// KindFC is a fully-connected layer (with folded ReLU except the last).
	KindFC
	// KindMaxPool is max pooling.
	KindMaxPool
	// KindAvgPool is average pooling.
	KindAvgPool
)

// String returns the layer kind's name.
func (k Kind) String() string {
	switch k {
	case KindConv:
		return "conv"
	case KindFC:
		return "fc"
	case KindMaxPool:
		return "maxpool"
	case KindAvgPool:
		return "avgpool"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Layer is one network layer with both its configuration and the derived
// input/output dimensions (filled by the builder). Parameter names follow
// Table I of the paper: C/H/W input channel/height/width, D output channels,
// Z/G filter height/width, S stride, E/F output height/width.
type Layer struct {
	Name string
	Kind Kind

	// Input dims.
	C, H, W int
	// Filter dims (conv: D×C×Z×G; FC: D×(C·H·W); pool: Z=G=kernel).
	D, Z, G int
	S, Pad  int
	// Output dims.
	E, F int
}

// IsWeighted reports whether the layer holds trainable weights.
func (l Layer) IsWeighted() bool { return l.Kind == KindConv || l.Kind == KindFC }

// MACs returns the multiply-accumulate count of one inference pass.
func (l Layer) MACs() int64 {
	switch l.Kind {
	case KindConv:
		return int64(l.D) * int64(l.E) * int64(l.F) * int64(l.C) * int64(l.Z) * int64(l.G)
	case KindFC:
		return int64(l.D) * int64(l.C) * int64(l.H) * int64(l.W)
	default:
		return 0
	}
}

// Params returns the trainable weight count (biases excluded, as in the
// paper's crossbar capacity accounting).
func (l Layer) Params() int64 {
	switch l.Kind {
	case KindConv:
		return int64(l.D) * int64(l.C) * int64(l.Z) * int64(l.G)
	case KindFC:
		return int64(l.D) * int64(l.C) * int64(l.H) * int64(l.W)
	default:
		return 0
	}
}

// Inputs returns the input element count C·H·W.
func (l Layer) Inputs() int64 { return int64(l.C) * int64(l.H) * int64(l.W) }

// Outputs returns the output element count.
func (l Layer) Outputs() int64 {
	switch l.Kind {
	case KindConv, KindMaxPool, KindAvgPool:
		d := l.D
		if l.Kind != KindConv {
			d = l.C
		}
		return int64(d) * int64(l.E) * int64(l.F)
	case KindFC:
		return int64(l.D)
	}
	return 0
}

// DotRows returns the im2col row count C·Z·G a weighted layer occupies in a
// crossbar (the dot-product depth per output).
func (l Layer) DotRows() int {
	switch l.Kind {
	case KindConv:
		return l.C * l.Z * l.G
	case KindFC:
		return l.C * l.H * l.W
	}
	return 0
}

// String summarises the layer's shape for diagnostics.
func (l Layer) String() string {
	switch l.Kind {
	case KindConv:
		return fmt.Sprintf("%s: conv %dx%dx%d -> %d@%dx%d s%d p%d -> %dx%dx%d",
			l.Name, l.C, l.H, l.W, l.D, l.Z, l.G, l.S, l.Pad, l.D, l.E, l.F)
	case KindFC:
		return fmt.Sprintf("%s: fc %d -> %d", l.Name, l.C*l.H*l.W, l.D)
	default:
		return fmt.Sprintf("%s: %s %dx%d s%d: %dx%dx%d -> %dx%dx%d",
			l.Name, l.Kind, l.Z, l.G, l.S, l.C, l.H, l.W, l.C, l.E, l.F)
	}
}

// Network is an ordered collection of layers with a fixed input shape.
type Network struct {
	Name          string
	InC, InH, InW int
	Layers        []Layer
}

// ConvLayers returns only the convolutional layers (the scope of Fig. 4 and
// Table V: "All CONV layers").
func (n *Network) ConvLayers() []Layer {
	var out []Layer
	for _, l := range n.Layers {
		if l.Kind == KindConv {
			out = append(out, l)
		}
	}
	return out
}

// WeightedLayers returns conv and FC layers.
func (n *Network) WeightedLayers() []Layer {
	var out []Layer
	for _, l := range n.Layers {
		if l.IsWeighted() {
			out = append(out, l)
		}
	}
	return out
}

// TotalMACs sums MACs over all layers.
func (n *Network) TotalMACs() int64 {
	var s int64
	for _, l := range n.Layers {
		s += l.MACs()
	}
	return s
}

// TotalParams sums trainable weights over all layers.
func (n *Network) TotalParams() int64 {
	var s int64
	for _, l := range n.Layers {
		s += l.Params()
	}
	return s
}

func convOut(n, k, s, p int) int { return (n+2*p-k)/s + 1 }

// Builder constructs a Network, propagating dimensions layer to layer.
type Builder struct {
	net     Network
	c, h, w int // cursor: current activation dims
	err     error
}

// NewBuilder starts a network with the given input shape.
func NewBuilder(name string, c, h, w int) *Builder {
	return &Builder{net: Network{Name: name, InC: c, InH: h, InW: w}, c: c, h: h, w: w}
}

// Cursor returns the current activation shape.
func (b *Builder) Cursor() (c, h, w int) { return b.c, b.h, b.w }

// SetCursor overrides the propagated shape (used after branch merges).
func (b *Builder) SetCursor(c, h, w int) *Builder {
	b.c, b.h, b.w = c, h, w
	return b
}

// Conv appends a convolution consuming the cursor shape.
func (b *Builder) Conv(name string, d, k, s, pad int) *Builder {
	return b.ConvRect(name, d, k, k, s, pad)
}

// ConvRect appends a convolution with a possibly non-square kernel.
func (b *Builder) ConvRect(name string, d, z, g, s, pad int) *Builder {
	l := Layer{Name: name, Kind: KindConv, C: b.c, H: b.h, W: b.w,
		D: d, Z: z, G: g, S: s, Pad: pad}
	l.E = convOut(b.h, z, s, pad)
	l.F = convOut(b.w, g, s, pad)
	if l.E <= 0 || l.F <= 0 {
		b.fail("conv %s produces empty output %dx%d", name, l.E, l.F)
		return b
	}
	b.net.Layers = append(b.net.Layers, l)
	b.c, b.h, b.w = d, l.E, l.F
	return b
}

// ConvAt appends a convolution with an explicit input shape, leaving the
// cursor at its output (used for parallel branches).
func (b *Builder) ConvAt(name string, inC, inH, inW, d, k, s, pad int) *Builder {
	b.SetCursor(inC, inH, inW)
	return b.Conv(name, d, k, s, pad)
}

// FC appends a fully-connected layer over the flattened cursor.
func (b *Builder) FC(name string, d int) *Builder {
	l := Layer{Name: name, Kind: KindFC, C: b.c, H: b.h, W: b.w,
		D: d, Z: b.h, G: b.w, S: 1, E: 1, F: 1}
	b.net.Layers = append(b.net.Layers, l)
	b.c, b.h, b.w = d, 1, 1
	return b
}

// MaxPool appends max pooling (kernel k, stride s, padding pad).
func (b *Builder) MaxPool(k, s, pad int) *Builder { return b.pool(KindMaxPool, k, s, pad) }

// AvgPool appends average pooling.
func (b *Builder) AvgPool(k, s, pad int) *Builder { return b.pool(KindAvgPool, k, s, pad) }

func (b *Builder) pool(kind Kind, k, s, pad int) *Builder {
	name := fmt.Sprintf("%s%d", kind, len(b.net.Layers))
	l := Layer{Name: name, Kind: kind, C: b.c, H: b.h, W: b.w,
		Z: k, G: k, S: s, Pad: pad}
	l.E = convOut(b.h, k, s, pad)
	l.F = convOut(b.w, k, s, pad)
	if l.E <= 0 || l.F <= 0 {
		b.fail("pool produces empty output %dx%d", l.E, l.F)
		return b
	}
	b.net.Layers = append(b.net.Layers, l)
	b.h, b.w = l.E, l.F
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("model %s: "+format, append([]any{b.net.Name}, args...)...)
	}
}

// Build finalises the network. It panics on construction errors, since the
// zoo is static and an invalid network is a programming bug.
func (b *Builder) Build() *Network {
	if b.err != nil {
		panic(b.err)
	}
	n := b.net
	return &n
}
