package model

// Declarative network specs. A Spec is the JSON-serializable form of a
// Network: a name, an input shape, and an ordered list of layer specs.
// Compile performs shape inference (propagating each layer's output to the
// next layer's input) and full validation, returning typed *SpecError
// values that name the offending layer and field. Network.Spec is the
// inverse: it exports any network — including the built-in zoo — as a spec
// whose compilation reproduces the exact layer table, which is the
// round-trip property the zoo equivalence tests pin down.
//
// Branching topologies are linearised exactly as the zoo does (see the
// package comment): a layer fed by an earlier activation than its
// predecessor's output carries an explicit "input" shape, and a merge
// (residual add, fire-module concat) is reflected in the next layer's
// explicit input. Layers without an explicit input consume the propagated
// cursor.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Dims is an activation shape: channels × height × width.
type Dims struct {
	C int `json:"c"`
	H int `json:"h"`
	W int `json:"w"`
}

func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.C, d.H, d.W) }

// Spec resource bounds. They exist so a hostile or garbled spec fed to the
// evaluation service cannot overflow the int64 MAC/parameter arithmetic or
// stall the compiler: every per-axis quantity is capped at maxSpecDim,
// each layer's MACs at maxLayerMACs and the layer count at maxSpecLayers,
// which together keep every derived total comfortably inside int64.
const (
	maxSpecDim    = 1 << 20
	maxSpecLayers = 4096
	maxLayerMACs  = 1 << 50
)

func (d Dims) inRange() bool {
	return d.C > 0 && d.H > 0 && d.W > 0 &&
		d.C <= maxSpecDim && d.H <= maxSpecDim && d.W <= maxSpecDim
}

// LayerSpec is one declarative layer. Kind selects which fields apply:
//
//   - "conv": Filters (output channels), Kernel or KernelH/KernelW,
//     Stride (default 1), Pad (default 0).
//   - "fc": Units (output width); the input is flattened.
//   - "maxpool"/"avgpool": Kernel, Stride (default 1), Pad (default 0).
//
// Fields foreign to the kind (Units on a conv, Filters on an fc, ...) are
// validation errors rather than silently ignored. Name is optional; an
// unnamed layer is auto-named kind+index ("conv0", "maxpool5"), matching
// the builder's pool naming. Input, when present, overrides the propagated
// input shape — the linearised form of a branch.
type LayerSpec struct {
	Name string `json:"name,omitempty"`
	Kind string `json:"kind"`
	// Filters is the conv output channel count D.
	Filters int `json:"filters,omitempty"`
	// Units is the fc output width D.
	Units int `json:"units,omitempty"`
	// Kernel is a square kernel edge; KernelH/KernelW spell a rectangular
	// kernel. Exactly one of the two forms may be used.
	Kernel  int `json:"kernel,omitempty"`
	KernelH int `json:"kernel_h,omitempty"`
	KernelW int `json:"kernel_w,omitempty"`
	// Stride defaults to 1 when omitted.
	Stride int `json:"stride,omitempty"`
	Pad    int `json:"pad,omitempty"`
	// Input overrides the propagated input shape (branch linearisation).
	Input *Dims `json:"input,omitempty"`
}

// Spec is the declarative, JSON-serializable description of a network.
type Spec struct {
	Name   string      `json:"name"`
	Input  Dims        `json:"input"`
	Layers []LayerSpec `json:"layers"`
}

// SpecError is a typed spec validation failure: which spec, which layer
// (index and resolved name; Layer −1 for spec-level problems), which field,
// and why.
type SpecError struct {
	// Spec is the spec's name ("" if the name itself is missing).
	Spec string
	// Layer is the 0-based index into Spec.Layers, or -1 for a problem
	// with the spec header.
	Layer int
	// Name is the offending layer's resolved name, when known.
	Name string
	// Field names the invalid field ("kernel", "stride", ...).
	Field string
	// Msg says what is wrong with it.
	Msg string
}

// Error implements error.
func (e *SpecError) Error() string {
	where := fmt.Sprintf("spec %q", e.Spec)
	if e.Layer >= 0 {
		if e.Name != "" {
			where += fmt.Sprintf(": layer %d (%s)", e.Layer, e.Name)
		} else {
			where += fmt.Sprintf(": layer %d", e.Layer)
		}
	}
	if e.Field != "" {
		where += ": " + e.Field
	}
	return fmt.Sprintf("model: %s: %s", where, e.Msg)
}

// ParseKind resolves a spec kind string ("conv", "fc", "maxpool",
// "avgpool") to its Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range []Kind{KindConv, KindFC, KindMaxPool, KindAvgPool} {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("model: unknown layer kind %q (want conv, fc, maxpool or avgpool)", s)
}

// autoName is the default name of an unnamed layer: kind plus its index in
// the layer table (the rule Builder uses for pools).
func autoName(k Kind, index int) string { return fmt.Sprintf("%s%d", k, index) }

// Compile validates the spec and builds the network, inferring every
// layer's input from its predecessor's output (or its explicit Input
// override) exactly as the imperative Builder does. All errors are
// *SpecError values.
func (s *Spec) Compile() (*Network, error) {
	fail := func(layer int, name, field, format string, args ...any) error {
		return &SpecError{Spec: s.Name, Layer: layer, Name: name, Field: field,
			Msg: fmt.Sprintf(format, args...)}
	}
	if s.Name == "" {
		return nil, fail(-1, "", "name", "network name is required")
	}
	if !s.Input.inRange() {
		return nil, fail(-1, "", "input", "input dims must be in [1,%d], got %s", maxSpecDim, s.Input)
	}
	if len(s.Layers) == 0 {
		return nil, fail(-1, "", "layers", "network has no layers")
	}
	if len(s.Layers) > maxSpecLayers {
		return nil, fail(-1, "", "layers", "network has %d layers, the limit is %d", len(s.Layers), maxSpecLayers)
	}

	n := &Network{Name: s.Name, InC: s.Input.C, InH: s.Input.H, InW: s.Input.W}
	cur := s.Input
	for i, ls := range s.Layers {
		kind, err := ParseKind(ls.Kind)
		if err != nil {
			return nil, fail(i, ls.Name, "kind", "unknown kind %q (want conv, fc, maxpool or avgpool)", ls.Kind)
		}
		name := ls.Name
		if name == "" {
			name = autoName(kind, i)
		}
		if ls.Input != nil {
			if !ls.Input.inRange() {
				return nil, fail(i, name, "input", "explicit input dims must be in [1,%d], got %s", maxSpecDim, *ls.Input)
			}
			cur = *ls.Input
		}
		stride := ls.Stride
		if stride == 0 {
			stride = 1
		}
		if stride < 0 || stride > maxSpecDim {
			return nil, fail(i, name, "stride", "stride must be in [1,%d], got %d", maxSpecDim, ls.Stride)
		}
		if ls.Pad < 0 || ls.Pad > maxSpecDim {
			return nil, fail(i, name, "pad", "pad must be in [0,%d], got %d", maxSpecDim, ls.Pad)
		}

		// Kernel resolution, shared by conv and pool kinds.
		kernel := func() (z, g int, err error) {
			switch {
			case ls.Kernel != 0 && (ls.KernelH != 0 || ls.KernelW != 0):
				return 0, 0, fail(i, name, "kernel", "kernel and kernel_h/kernel_w are mutually exclusive")
			case ls.Kernel != 0:
				if ls.Kernel < 0 || ls.Kernel > maxSpecDim {
					return 0, 0, fail(i, name, "kernel", "kernel must be in [1,%d], got %d", maxSpecDim, ls.Kernel)
				}
				return ls.Kernel, ls.Kernel, nil
			case ls.KernelH > 0 && ls.KernelW > 0:
				if ls.KernelH > maxSpecDim || ls.KernelW > maxSpecDim {
					return 0, 0, fail(i, name, "kernel", "kernel dims must be in [1,%d], got %dx%d", maxSpecDim, ls.KernelH, ls.KernelW)
				}
				return ls.KernelH, ls.KernelW, nil
			case ls.KernelH != 0 || ls.KernelW != 0:
				return 0, 0, fail(i, name, "kernel", "kernel_h and kernel_w must both be >= 1, got %dx%d", ls.KernelH, ls.KernelW)
			}
			return 0, 0, fail(i, name, "kernel", "%s layer requires a kernel", ls.Kind)
		}
		// reject flags fields foreign to the layer kind.
		reject := func(field string, v int) error {
			if v != 0 {
				return fail(i, name, field, "%s does not apply to %s layers", field, ls.Kind)
			}
			return nil
		}

		var l Layer
		switch kind {
		case KindConv:
			if err := reject("units", ls.Units); err != nil {
				return nil, err
			}
			if ls.Filters <= 0 || ls.Filters > maxSpecDim {
				return nil, fail(i, name, "filters", "conv requires filters in [1,%d], got %d", maxSpecDim, ls.Filters)
			}
			z, g, err := kernel()
			if err != nil {
				return nil, err
			}
			if z > cur.H+2*ls.Pad || g > cur.W+2*ls.Pad {
				return nil, fail(i, name, "kernel",
					"kernel %dx%d does not fit the %s input with pad %d", z, g, cur, ls.Pad)
			}
			l = Layer{Name: name, Kind: KindConv, C: cur.C, H: cur.H, W: cur.W,
				D: ls.Filters, Z: z, G: g, S: stride, Pad: ls.Pad}
			l.E = convOut(cur.H, z, stride, ls.Pad)
			l.F = convOut(cur.W, g, stride, ls.Pad)
			if l.E <= 0 || l.F <= 0 {
				return nil, fail(i, name, "kernel",
					"conv over %s input produces empty %dx%d output (kernel %dx%d, stride %d, pad %d)",
					cur, l.E, l.F, z, g, stride, ls.Pad)
			}
			cur = Dims{C: l.D, H: l.E, W: l.F}
		case KindFC:
			for _, f := range []struct {
				field string
				v     int
			}{
				{"filters", ls.Filters}, {"kernel", ls.Kernel}, {"kernel_h", ls.KernelH},
				{"kernel_w", ls.KernelW}, {"stride", ls.Stride}, {"pad", ls.Pad},
			} {
				if err := reject(f.field, f.v); err != nil {
					return nil, err
				}
			}
			if ls.Units <= 0 || ls.Units > maxSpecDim {
				return nil, fail(i, name, "units", "fc requires units in [1,%d], got %d", maxSpecDim, ls.Units)
			}
			// Mirror Builder.FC: the kernel spans the flattened input.
			l = Layer{Name: name, Kind: KindFC, C: cur.C, H: cur.H, W: cur.W,
				D: ls.Units, Z: cur.H, G: cur.W, S: 1, E: 1, F: 1}
			cur = Dims{C: l.D, H: 1, W: 1}
		case KindMaxPool, KindAvgPool:
			if err := reject("filters", ls.Filters); err != nil {
				return nil, err
			}
			if err := reject("units", ls.Units); err != nil {
				return nil, err
			}
			z, g, err := kernel()
			if err != nil {
				return nil, err
			}
			if z != g {
				return nil, fail(i, name, "kernel", "pool kernels must be square, got %dx%d", z, g)
			}
			if z > cur.H+2*ls.Pad || g > cur.W+2*ls.Pad {
				return nil, fail(i, name, "kernel",
					"kernel %d does not fit the %s input with pad %d", z, cur, ls.Pad)
			}
			l = Layer{Name: name, Kind: kind, C: cur.C, H: cur.H, W: cur.W,
				Z: z, G: g, S: stride, Pad: ls.Pad}
			l.E = convOut(cur.H, z, stride, ls.Pad)
			l.F = convOut(cur.W, g, stride, ls.Pad)
			if l.E <= 0 || l.F <= 0 {
				return nil, fail(i, name, "kernel",
					"pool over %s input produces empty %dx%d output (kernel %d, stride %d, pad %d)",
					cur, l.E, l.F, z, stride, ls.Pad)
			}
			cur = Dims{C: cur.C, H: l.E, W: l.F}
		}
		if l.E > maxSpecDim || l.F > maxSpecDim {
			return nil, fail(i, name, "size",
				"output map %dx%d exceeds the %d per-axis limit", l.E, l.F, maxSpecDim)
		}
		// Budget check in float64, immune to the int64 overflow it guards
		// against: with layers capped at maxSpecLayers and each below
		// maxLayerMACs, every derived total stays inside int64.
		if macs := float64(l.D) * float64(l.E) * float64(l.F) *
			float64(l.C) * float64(l.Z) * float64(l.G); macs > maxLayerMACs {
			return nil, fail(i, name, "size",
				"layer needs %.3g MACs, the per-layer limit is %.3g", macs, float64(maxLayerMACs))
		}
		n.Layers = append(n.Layers, l)
	}
	return n, nil
}

// mustCompile backs the static zoo tables, where an invalid spec is a
// programming bug.
func mustCompile(s *Spec) *Network {
	n, err := s.Compile()
	if err != nil {
		panic(err)
	}
	return n
}

// Spec exports the network's declarative form. Layers whose input shape
// matches the propagated cursor carry no explicit Input; branch layers
// (and layers following a merge) get one, so Compile reproduces the exact
// layer table: for every network n, n.Spec().Compile() deep-equals n.
func (n *Network) Spec() *Spec {
	s := &Spec{Name: n.Name, Input: Dims{C: n.InC, H: n.InH, W: n.InW}}
	cur := s.Input
	for _, l := range n.Layers {
		ls := LayerSpec{Name: l.Name, Kind: l.Kind.String()}
		if in := (Dims{C: l.C, H: l.H, W: l.W}); in != cur {
			ls.Input = &in
		}
		switch l.Kind {
		case KindConv:
			ls.Filters = l.D
			if l.Z == l.G {
				ls.Kernel = l.Z
			} else {
				ls.KernelH, ls.KernelW = l.Z, l.G
			}
			if l.S != 1 {
				ls.Stride = l.S
			}
			ls.Pad = l.Pad
			cur = Dims{C: l.D, H: l.E, W: l.F}
		case KindFC:
			ls.Units = l.D
			cur = Dims{C: l.D, H: 1, W: 1}
		default:
			ls.Kernel = l.Z
			if l.S != 1 {
				ls.Stride = l.S
			}
			ls.Pad = l.Pad
			cur = Dims{C: l.C, H: l.E, W: l.F}
		}
		s.Layers = append(s.Layers, ls)
	}
	return s
}

// SpecHash returns the canonical content hash of the network: the hex
// SHA-256 of the deterministic JSON encoding of its exported spec, with
// the network's own name cleared. Because the export resolves every
// default (stride, auto-names, kernel form) and the name does not
// contribute, any two specs that compile to the same layer table —
// including differently-named copies of one network — hash identically,
// the property the evaluation caches key on.
func (n *Network) SpecHash() string {
	s := n.Spec()
	s.Name = ""
	b, err := json.Marshal(s)
	if err != nil {
		// A Network is plain data; its spec always marshals.
		panic(fmt.Sprintf("model: marshaling spec of %q: %v", n.Name, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Hash compiles the spec and returns its canonical content hash (see
// Network.SpecHash). Two specs spelling the same network — omitted versus
// explicit stride 1, square kernel versus equal kernel_h/kernel_w, named
// versus auto-named pools — hash identically.
func (s *Spec) Hash() (string, error) {
	n, err := s.Compile()
	if err != nil {
		return "", err
	}
	return n.SpecHash(), nil
}
