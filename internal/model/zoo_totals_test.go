package model

import "testing"

// Validation of the zoo's derived totals against the published figures of
// each architecture (MACs for one 224×224 inference; parameters incl. FC).
// Bands are ±15 % to absorb head/padding convention differences; MSRA
// models are reconstructions (DESIGN.md) and get relative checks only.

func TestZooMACTotals(t *testing.T) {
	cases := []struct {
		name      string
		wantMACs  float64
		tolerance float64
	}{
		{"VGG-1", 7.6e9, 0.15},  // VGG-A/11
		{"VGG-2", 11.3e9, 0.15}, // VGG-B/13
		{"VGG-3", 11.8e9, 0.15}, // VGG-C/16 (the 1x1 extras add little compute)
		{"VGG-4", 15.5e9, 0.15}, // VGG-D/16
		{"ResNet-18", 1.82e9, 0.15},
		{"ResNet-101", 7.8e9, 0.15},
		{"ResNet-152", 11.5e9, 0.15},
		{"SqueezeNet", 0.85e9, 0.25},
	}
	for _, c := range cases {
		n, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(n.TotalMACs())
		if got < c.wantMACs*(1-c.tolerance) || got > c.wantMACs*(1+c.tolerance) {
			t.Errorf("%s MACs = %.3g, want %.3g ±%.0f%%", c.name, got, c.wantMACs, c.tolerance*100)
		}
	}
}

func TestZooParamTotals(t *testing.T) {
	cases := []struct {
		name       string
		wantParams float64
		tolerance  float64
	}{
		{"VGG-1", 132.9e6, 0.05},
		{"VGG-2", 133.0e6, 0.05},
		{"VGG-4", 138.3e6, 0.05},
		{"ResNet-18", 11.7e6, 0.10},
		{"ResNet-101", 44.5e6, 0.10},
		{"ResNet-152", 60.2e6, 0.10},
		{"CNN-1", 431e3, 0.05}, // LeNet shape: 500+25k+400k+5k
	}
	for _, c := range cases {
		n, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(n.TotalParams())
		if got < c.wantParams*(1-c.tolerance) || got > c.wantParams*(1+c.tolerance) {
			t.Errorf("%s params = %.4g, want %.4g ±%.0f%%", c.name, got, c.wantParams, c.tolerance*100)
		}
	}
}

func TestZooOrderings(t *testing.T) {
	mac := func(name string) int64 {
		n, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return n.TotalMACs()
	}
	// VGG family grows with depth.
	if !(mac("VGG-1") < mac("VGG-2") && mac("VGG-2") < mac("VGG-3") && mac("VGG-3") <= mac("VGG-4")) {
		t.Errorf("VGG MAC ordering broken")
	}
	// ResNets grow with depth.
	if !(mac("ResNet-18") < mac("ResNet-50") && mac("ResNet-50") < mac("ResNet-101") &&
		mac("ResNet-101") < mac("ResNet-152")) {
		t.Errorf("ResNet MAC ordering broken")
	}
	// MSRA models grow A < B < C (deeper, then wider).
	if !(mac("MSRA-1") < mac("MSRA-2") && mac("MSRA-2") < mac("MSRA-3")) {
		t.Errorf("MSRA MAC ordering broken")
	}
	// SqueezeNet is the lightest ImageNet model in the suite.
	if mac("SqueezeNet") >= mac("ResNet-18") {
		t.Errorf("SqueezeNet not lighter than ResNet-18")
	}
}

func TestZooSpatialDims(t *testing.T) {
	// Every ImageNet model must reduce 224×224 to a 7×7-or-smaller map
	// before its classifier head.
	for _, name := range []string{"VGG-4", "ResNet-50", "MSRA-1"} {
		n, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var lastFC Layer
		for _, l := range n.Layers {
			if l.Kind == KindFC {
				lastFC = l
				break
			}
		}
		if lastFC.H > 7 || lastFC.W > 7 {
			t.Errorf("%s classifier sees %dx%d spatial map, want ≤7x7", name, lastFC.H, lastFC.W)
		}
	}
}
