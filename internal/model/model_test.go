package model

import (
	"strings"
	"testing"
)

func TestVGGDShape(t *testing.T) {
	n := VGG("D")
	convs := n.ConvLayers()
	if len(convs) != 13 {
		t.Fatalf("VGG-D conv layers = %d, want 13", len(convs))
	}
	var fcs int
	for _, l := range n.Layers {
		if l.Kind == KindFC {
			fcs++
		}
	}
	if fcs != 3 {
		t.Errorf("VGG-D FC layers = %d, want 3", fcs)
	}
	// CONV2 of Table V: 64-channel 224x224 input, 3x3, 64 filters.
	c2 := convs[1]
	if c2.C != 64 || c2.H != 224 || c2.D != 64 || c2.Z != 3 {
		t.Errorf("VGG-D conv2 = %+v", c2)
	}
	// fc6 consumes 512x7x7.
	for _, l := range n.Layers {
		if l.Name == "fc6" {
			if l.C != 512 || l.H != 7 || l.W != 7 {
				t.Errorf("fc6 input = %dx%dx%d, want 512x7x7", l.C, l.H, l.W)
			}
		}
	}
}

func TestVGGDTotals(t *testing.T) {
	n := VGG("D")
	// Published VGG-16: ~138.3M params, ~15.5G MACs.
	if p := n.TotalParams(); p < 133_000_000 || p > 144_000_000 {
		t.Errorf("VGG-D params = %d, want ≈138M", p)
	}
	if m := n.TotalMACs(); m < 15_000_000_000 || m > 16_000_000_000 {
		t.Errorf("VGG-D MACs = %d, want ≈15.5G", m)
	}
}

func TestVGGVariantConvCounts(t *testing.T) {
	for _, c := range []struct {
		v    string
		want int
	}{{"A", 8}, {"B", 10}, {"C", 13}, {"D", 13}} {
		if got := len(VGG(c.v).ConvLayers()); got != c.want {
			t.Errorf("VGG-%s conv layers = %d, want %d", c.v, got, c.want)
		}
	}
	// VGG-C's extra convs are 1x1, VGG-D's are 3x3. Stage 3's extra conv
	// (conv3_3) is the 7th conv layer (index 6) in both configurations.
	cC := VGG("C").ConvLayers()
	if cC[6].Name != "conv3_3" || cC[6].Z != 1 {
		t.Errorf("VGG-C conv3_3 = %+v, want 1x1 kernel", cC[6])
	}
	cD := VGG("D").ConvLayers()
	if cD[6].Name != "conv3_3" || cD[6].Z != 3 {
		t.Errorf("VGG-D conv3_3 = %+v, want 3x3 kernel", cD[6])
	}
}

func TestResNetWeightedLayerCounts(t *testing.T) {
	// Weighted layers: convs (incl. projections) + final FC. The canonical
	// depth counts 18/50/101/152 exclude projections; with the 3 (resp. 4)
	// projection shortcuts the totals grow accordingly.
	cases := []struct {
		depth, wantConvFC int
	}{
		{18, 18 + 3}, // 17 convs + fc + 3 projections (stages 3,4,5)
		{50, 50 + 4}, // 49 convs + fc + 4 projections
		{101, 101 + 4},
		{152, 152 + 4},
	}
	for _, c := range cases {
		n := ResNet(c.depth)
		if got := len(n.WeightedLayers()); got != c.wantConvFC {
			t.Errorf("ResNet-%d weighted layers = %d, want %d", c.depth, got, c.wantConvFC)
		}
	}
}

func TestResNet50Totals(t *testing.T) {
	n := ResNet(50)
	// Published ResNet-50: ~25.5M params (incl. BN; conv+fc ≈ 25.5M), ~4.1G MACs.
	if p := n.TotalParams(); p < 23_000_000 || p > 27_000_000 {
		t.Errorf("ResNet-50 params = %d, want ≈25.5M", p)
	}
	if m := n.TotalMACs(); m < 3_600_000_000 || m > 4_400_000_000 {
		t.Errorf("ResNet-50 MACs = %d, want ≈4.1G", m)
	}
	// Final FC consumes 2048 features.
	last := n.Layers[len(n.Layers)-1]
	if last.Kind != KindFC || last.C != 2048 || last.H != 1 {
		t.Errorf("ResNet-50 head = %+v, want fc over 2048x1x1", last)
	}
}

func TestResNet18Stem(t *testing.T) {
	n := ResNet(18)
	stem := n.Layers[0]
	if stem.D != 64 || stem.Z != 7 || stem.S != 2 || stem.E != 112 {
		t.Errorf("ResNet stem = %+v", stem)
	}
	pool := n.Layers[1]
	if pool.Kind != KindMaxPool || pool.E != 56 {
		t.Errorf("ResNet stem pool = %+v, want 56x56 out", pool)
	}
}

func TestSqueezeNet(t *testing.T) {
	n := SqueezeNet()
	// 26 weighted layers: conv1 + 8 fires x 3 + conv10.
	if got := len(n.WeightedLayers()); got != 26 {
		t.Errorf("SqueezeNet weighted layers = %d, want 26", got)
	}
	// Published: ~1.25M params.
	if p := n.TotalParams(); p < 1_100_000 || p > 1_400_000 {
		t.Errorf("SqueezeNet params = %d, want ≈1.25M", p)
	}
	// fire2 expand3 input must be the squeeze output (16 ch).
	for _, l := range n.Layers {
		if l.Name == "fire2_expand3" && l.C != 16 {
			t.Errorf("fire2_expand3 input channels = %d, want 16", l.C)
		}
		if l.Name == "fire3_squeeze" && l.C != 128 {
			t.Errorf("fire3_squeeze input channels = %d, want 128 (concat)", l.C)
		}
	}
}

func TestMSRAShapes(t *testing.T) {
	m1, m2, m3 := MSRA(1), MSRA(2), MSRA(3)
	if got := len(m1.WeightedLayers()); got != 19 {
		t.Errorf("MSRA-1 weighted layers = %d, want 19", got)
	}
	if got := len(m2.WeightedLayers()); got != 22 {
		t.Errorf("MSRA-2 weighted layers = %d, want 22", got)
	}
	if got := len(m3.WeightedLayers()); got != 22 {
		t.Errorf("MSRA-3 weighted layers = %d, want 22", got)
	}
	// MSRA-3 must be wider than MSRA-2.
	if m3.TotalParams() <= m2.TotalParams() {
		t.Errorf("MSRA-3 params (%d) not larger than MSRA-2 (%d)",
			m3.TotalParams(), m2.TotalParams())
	}
	// MSRA-2 deeper than MSRA-1.
	if m2.TotalMACs() <= m1.TotalMACs() {
		t.Errorf("MSRA-2 MACs not larger than MSRA-1")
	}
}

func TestCNN1AndMLPL(t *testing.T) {
	c := CNN1()
	if got := len(c.WeightedLayers()); got != 4 {
		t.Errorf("CNN-1 weighted layers = %d, want 4", got)
	}
	// fc1 consumes 50x4x4 = 800 features.
	for _, l := range c.Layers {
		if l.Name == "fc1" && l.C*l.H*l.W != 800 {
			t.Errorf("CNN-1 fc1 inputs = %d, want 800", l.C*l.H*l.W)
		}
	}
	m := MLPL()
	if got := m.TotalParams(); got != 784*1500+1500*1000+1000*500+500*10 {
		t.Errorf("MLP-L params = %d", got)
	}
}

func TestBenchmarksComplete(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 15 {
		t.Fatalf("benchmark suite has %d entries, want 15 (Table III)", len(bs))
	}
	seen := map[string]bool{}
	for _, n := range bs {
		if seen[n.Name] {
			t.Errorf("duplicate benchmark %s", n.Name)
		}
		seen[n.Name] = true
		if n.TotalMACs() <= 0 {
			t.Errorf("%s has no MACs", n.Name)
		}
		// Dimension propagation sanity: every layer's input equals the
		// previous sequential layer's output unless explicitly branched.
		for _, l := range n.Layers {
			if l.E <= 0 || l.F <= 0 {
				t.Errorf("%s/%s has empty output", n.Name, l.Name)
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("AlexNet"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("ByName on unknown model: err = %v", err)
	}
}

func TestLayerStringHasName(t *testing.T) {
	n := VGG("D")
	for _, l := range n.Layers {
		if !strings.Contains(l.String(), l.Name) && l.IsWeighted() {
			t.Errorf("String() of %s lacks its name: %s", l.Name, l.String())
		}
	}
}

func TestBuilderPanicsOnEmptyOutput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("builder accepted an impossible layer")
		}
	}()
	NewBuilder("bad", 1, 4, 4).Conv("huge", 1, 9, 1, 0).Build()
}
