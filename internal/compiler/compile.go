package compiler

import (
	"fmt"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/params"
)

// OpCode enumerates controller commands (§IV-F: weight mapping and input
// data-path configuration).
type OpCode int

const (
	// OpWriteWeights programs one layer's weights into a sub-chip.
	OpWriteWeights OpCode = iota
	// OpConfigInputPath wires a sub-chip's DTC inputs to a source layer's
	// outputs (or the chip input for the first layer).
	OpConfigInputPath
	// OpConfigPooling routes a sub-chip's outputs through the pooling unit.
	OpConfigPooling
	// OpSetScale programs the per-layer charging full-scale (the Rmin
	// choice of §IV-C) as a requantisation shift.
	OpSetScale
)

// String returns the opcode's mnemonic.
func (o OpCode) String() string {
	switch o {
	case OpWriteWeights:
		return "write-weights"
	case OpConfigInputPath:
		return "config-input-path"
	case OpConfigPooling:
		return "config-pooling"
	case OpSetScale:
		return "set-scale"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Command is one controller instruction.
type Command struct {
	Op OpCode
	// Layer names the network layer the command serves.
	Layer string
	// SubChip is the target sub-chip index (-1 for chip-level commands).
	SubChip int
	// Source names the producing layer for input-path commands ("" = chip
	// input).
	Source string
	// Arg carries the op-specific parameter (pool kernel, scale shift, ...).
	Arg int
}

// Program is the compiled command stream plus its resource summary.
type Program struct {
	Network  *model.Network
	Commands []Command
	// Assignments maps weighted-layer name to its sub-chip index.
	Assignments map[string]int
	// Placements holds the O2IR placement per weighted layer, in order.
	Placements []mapping.Placement
	// SubChips is the number of sub-chips the program occupies.
	SubChips int
}

// Compile lowers a network onto TIMELY sub-chips: every weighted layer gets
// an O2IR placement and a sub-chip assignment (functional single-sub-chip
// granularity: one sub-chip per weighted layer, matching the §IV-E
// "layer by layer weight mapping strategy"), plus the data-path commands
// chaining layers together. It rejects layers whose single instance exceeds
// one sub-chip when strict is true.
func Compile(n *model.Network, cfg params.TimelyConfig, strict bool) (*Program, error) {
	p := &Program{Network: n, Assignments: map[string]int{}}
	next := 0
	prevWeighted := ""
	var pendingPool []model.Layer
	for _, l := range n.Layers {
		switch {
		case l.IsWeighted():
			pl := mapping.PlaceO2IR(l, cfg)
			if strict && pl.SubChips > 1 {
				return nil, fmt.Errorf("compiler: layer %s needs %d sub-chips (rows %d, cols %d); strict mode maps one layer per sub-chip",
					l.Name, pl.SubChips, pl.Rows, l.D*pl.PhysColsPerWeight)
			}
			sc := next
			next += pl.SubChips
			p.Assignments[l.Name] = sc
			p.Placements = append(p.Placements, pl)
			p.Commands = append(p.Commands,
				Command{Op: OpWriteWeights, Layer: l.Name, SubChip: sc},
				Command{Op: OpConfigInputPath, Layer: l.Name, SubChip: sc, Source: prevWeighted},
				Command{Op: OpSetScale, Layer: l.Name, SubChip: sc},
			)
			// Attach any pooling that preceded this layer to its input path.
			for _, pool := range pendingPool {
				p.Commands = append(p.Commands, Command{
					Op: OpConfigPooling, Layer: l.Name, SubChip: sc, Arg: pool.Z,
				})
			}
			pendingPool = nil
			prevWeighted = l.Name
		case l.Kind == model.KindMaxPool || l.Kind == model.KindAvgPool:
			pendingPool = append(pendingPool, l)
		}
	}
	// Trailing pool layers route the final outputs.
	for _, pool := range pendingPool {
		p.Commands = append(p.Commands, Command{
			Op: OpConfigPooling, Layer: prevWeighted, SubChip: p.Assignments[prevWeighted], Arg: pool.Z,
		})
	}
	p.SubChips = next
	return p, nil
}
