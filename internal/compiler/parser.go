// Package compiler implements the software-hardware interface of §IV-F:
// an NN parser that extracts model parameters from a textual description, a
// compiler that lowers the network onto TIMELY sub-chips (weight-mapping and
// input-datapath commands, O2IR placement), and a controller that loads the
// command stream onto functional sub-chips and executes inference.
//
// The paper describes three stages — "the CNN/DNN is loaded into an NN
// parser that automatically extracts model parameters"; "a compiler
// optimizes mapping strategies ... and generates execution commands"; "the
// controller loads the commands ... to (1) write pre-trained weights to the
// mapped addresses, and (2) configure peripheral circuits for setting up
// input paths" — each of which has a direct counterpart here.
package compiler

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
)

// Parse reads the textual network description format:
//
//	# comments and blank lines are ignored
//	input <channels> <height> <width>
//	conv <name> d=<filters> k=<kernel> [s=<stride>] [p=<pad>]
//	maxpool k=<kernel> [s=<stride>] [p=<pad>]
//	avgpool k=<kernel> [s=<stride>] [p=<pad>]
//	fc <name> d=<units>
//
// The first non-comment line must be the input declaration.
func Parse(name, src string) (*model.Network, error) {
	var b *model.Builder
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op := fields[0]
		if b == nil {
			if op != "input" {
				return nil, fmt.Errorf("compiler: line %d: first directive must be input, got %q", lineNo, op)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("compiler: line %d: input wants 3 dims", lineNo)
			}
			dims, err := parseInts(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("compiler: line %d: %w", lineNo, err)
			}
			b = model.NewBuilder(name, dims[0], dims[1], dims[2])
			continue
		}
		switch op {
		case "input":
			return nil, fmt.Errorf("compiler: line %d: duplicate input directive", lineNo)
		case "conv":
			if len(fields) < 3 {
				return nil, fmt.Errorf("compiler: line %d: conv wants a name and parameters", lineNo)
			}
			kv, err := parseKV(fields[2:])
			if err != nil {
				return nil, fmt.Errorf("compiler: line %d: %w", lineNo, err)
			}
			d, k := kv["d"], kv["k"]
			if d <= 0 || k <= 0 {
				return nil, fmt.Errorf("compiler: line %d: conv needs d>0 and k>0", lineNo)
			}
			s := orDefault(kv, "s", 1)
			p := orDefault(kv, "p", 0)
			b.Conv(fields[1], d, k, s, p)
		case "maxpool", "avgpool":
			kv, err := parseKV(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("compiler: line %d: %w", lineNo, err)
			}
			k := kv["k"]
			if k <= 0 {
				return nil, fmt.Errorf("compiler: line %d: %s needs k>0", lineNo, op)
			}
			s := orDefault(kv, "s", k)
			p := orDefault(kv, "p", 0)
			if op == "maxpool" {
				b.MaxPool(k, s, p)
			} else {
				b.AvgPool(k, s, p)
			}
		case "fc":
			if len(fields) < 3 {
				return nil, fmt.Errorf("compiler: line %d: fc wants a name and d=", lineNo)
			}
			kv, err := parseKV(fields[2:])
			if err != nil {
				return nil, fmt.Errorf("compiler: line %d: %w", lineNo, err)
			}
			if kv["d"] <= 0 {
				return nil, fmt.Errorf("compiler: line %d: fc needs d>0", lineNo)
			}
			b.FC(fields[1], kv["d"])
		default:
			return nil, fmt.Errorf("compiler: line %d: unknown directive %q", lineNo, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("compiler: empty network description")
	}
	return b.Build(), nil
}

func parseInts(fields []string) ([]int, error) {
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out[i] = v
	}
	return out, nil
}

func parseKV(fields []string) (map[string]int, error) {
	kv := map[string]int{}
	for _, f := range fields {
		parts := strings.SplitN(f, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad parameter %q (want key=value)", f)
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad value in %q", f)
		}
		kv[parts[0]] = v
	}
	return kv, nil
}

func orDefault(kv map[string]int, key string, def int) int {
	if v, ok := kv[key]; ok {
		return v
	}
	return def
}
