package compiler

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/params"
	"repro/internal/stats"
	"repro/internal/tensor"
)

const lenetSrc = `
# LeNet-style network on 16x16 inputs
input 1 16 16
conv conv1 d=6 k=3 s=1 p=1
maxpool k=2 s=2
conv conv2 d=12 k=3 s=1 p=1
maxpool k=2 s=2
fc fc1 d=32
fc fc2 d=4
`

func TestParse(t *testing.T) {
	n, err := Parse("lenet", lenetSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 6 {
		t.Fatalf("layers = %d, want 6", len(n.Layers))
	}
	if got := len(n.WeightedLayers()); got != 4 {
		t.Errorf("weighted layers = %d, want 4", got)
	}
	// Dimension propagation: fc1 consumes 12x4x4 = 192 features.
	for _, l := range n.Layers {
		if l.Name == "fc1" && l.C*l.H*l.W != 192 {
			t.Errorf("fc1 inputs = %d, want 192", l.C*l.H*l.W)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no input first":  "conv c d=1 k=1",
		"duplicate input": "input 1 4 4\ninput 1 4 4",
		"bad dims":        "input 1 x 4",
		"unknown op":      "input 1 4 4\nbatchnorm",
		"conv missing d":  "input 1 4 4\nconv c k=3",
		"conv bad kv":     "input 1 4 4\nconv c d=4 k3",
		"fc missing d":    "input 1 4 4\nfc f s=1",
		"pool missing k":  "input 1 4 4\nmaxpool s=2",
		"empty":           "# nothing\n",
		"conv no name":    "input 1 4 4\nconv",
	}
	for name, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestParseMatchesBuilder(t *testing.T) {
	parsed, err := Parse("CNN-1", `
input 1 28 28
conv conv1 d=20 k=5
maxpool k=2 s=2
conv conv2 d=50 k=5
maxpool k=2 s=2
fc fc1 d=500
fc fc2 d=10
`)
	if err != nil {
		t.Fatal(err)
	}
	want := model.CNN1()
	if parsed.TotalParams() != want.TotalParams() {
		t.Errorf("parsed CNN-1 params = %d, builder = %d", parsed.TotalParams(), want.TotalParams())
	}
	if parsed.TotalMACs() != want.TotalMACs() {
		t.Errorf("parsed CNN-1 MACs = %d, builder = %d", parsed.TotalMACs(), want.TotalMACs())
	}
}

func TestCompile(t *testing.T) {
	n, err := Parse("lenet", lenetSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(n, params.DefaultTimely(8), true)
	if err != nil {
		t.Fatal(err)
	}
	if prog.SubChips != 4 {
		t.Errorf("program uses %d sub-chips, want 4 (one per weighted layer)", prog.SubChips)
	}
	var writes, paths, pools, scales int
	for _, c := range prog.Commands {
		switch c.Op {
		case OpWriteWeights:
			writes++
		case OpConfigInputPath:
			paths++
		case OpConfigPooling:
			pools++
		case OpSetScale:
			scales++
		}
	}
	if writes != 4 || paths != 4 || scales != 4 {
		t.Errorf("commands: %d writes, %d paths, %d scales; want 4 each", writes, paths, scales)
	}
	if pools != 2 {
		t.Errorf("pooling commands = %d, want 2", pools)
	}
	// conv2's input path must come from conv1.
	for _, c := range prog.Commands {
		if c.Op == OpConfigInputPath && c.Layer == "conv2" && c.Source != "conv1" {
			t.Errorf("conv2 input path from %q, want conv1", c.Source)
		}
		if c.Op == OpConfigInputPath && c.Layer == "conv1" && c.Source != "" {
			t.Errorf("conv1 input path from %q, want chip input", c.Source)
		}
	}
}

func TestCompileStrictRejectsHugeLayer(t *testing.T) {
	b := model.NewBuilder("big", 512, 14, 14)
	b.Conv("huge", 512, 3, 1, 1) // rows 4608 > 4096
	n := b.Build()
	if _, err := Compile(n, params.DefaultTimely(8), true); err == nil {
		t.Errorf("strict compile accepted a multi-sub-chip layer")
	}
	if _, err := Compile(n, params.DefaultTimely(8), false); err != nil {
		t.Errorf("non-strict compile rejected a splittable layer: %v", err)
	}
}

// TestEndToEndInference: parse → compile → load → calibrate → run, and the
// analog controller must agree with a plain integer execution of the same
// quantised network.
func TestEndToEndInference(t *testing.T) {
	n, err := Parse("lenet", lenetSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(n, params.DefaultTimely(8), true)
	if err != nil {
		t.Fatal(err)
	}

	rng := stats.NewRNG(17)
	w := Weights{Conv: map[string]*tensor.Filter{}, FC: map[string][][]int{}}
	for _, l := range n.WeightedLayers() {
		switch l.Kind {
		case model.KindConv:
			f := tensor.NewFilter(l.D, l.C, l.Z, l.G)
			for i := range f.Data {
				f.Data[i] = int32(rng.Intn(31)) - 15
			}
			w.Conv[l.Name] = f
		case model.KindFC:
			mat := make([][]int, l.D)
			for d := range mat {
				mat[d] = make([]int, l.C*l.H*l.W)
				for i := range mat[d] {
					mat[d][i] = rng.Intn(31) - 15
				}
			}
			w.FC[l.Name] = mat
		}
	}

	ctl := NewController(prog, core.IdealOptions(nil))
	if err := ctl.LoadWeights(w); err != nil {
		t.Fatal(err)
	}

	samples := make([]*tensor.Int, 3)
	for i := range samples {
		samples[i] = tensor.NewInt(1, 16, 16)
		for j := range samples[i].Data {
			samples[i].Data[j] = int32(rng.Intn(256))
		}
	}
	if err := ctl.Calibrate(samples...); err != nil {
		t.Fatal(err)
	}

	for i, s := range samples {
		got, err := ctl.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		want := integerForward(t, n, w, ctl.shifts, s)
		if len(got) != len(want) {
			t.Fatalf("sample %d: output len %d, want %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("sample %d output[%d]: analog %d, integer %d", i, k, got[k], want[k])
			}
		}
	}
}

func TestControllerErrors(t *testing.T) {
	n, err := Parse("lenet", lenetSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(n, params.DefaultTimely(8), true)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(prog, core.IdealOptions(nil))
	if _, err := ctl.Run(tensor.NewInt(1, 16, 16)); err == nil {
		t.Errorf("Run before LoadWeights accepted")
	}
	if err := ctl.Calibrate(tensor.NewInt(1, 16, 16)); err == nil {
		t.Errorf("Calibrate before LoadWeights accepted")
	}
	if err := ctl.LoadWeights(Weights{}); err == nil {
		t.Errorf("LoadWeights with missing weights accepted")
	}
}

// integerForward replays the controller's quantised schedule with exact
// integer arithmetic.
func integerForward(t *testing.T, n *model.Network, w Weights, shifts map[string]int, in *tensor.Int) []int {
	t.Helper()
	cur := in
	var vec []int
	weighted := n.WeightedLayers()
	lastName := weighted[len(weighted)-1].Name
	for _, l := range n.Layers {
		switch l.Kind {
		case model.KindConv:
			out := tensor.Conv2D(cur, w.Conv[l.Name], nil, l.S, l.Pad)
			if l.Name == lastName {
				vec = make([]int, len(out.Data))
				for i, v := range out.Data {
					vec[i] = int(v)
				}
				cur = nil
				break
			}
			sh := shifts[l.Name]
			for i, v := range out.Data {
				out.Data[i] = int32(requantCode(int(v), sh))
			}
			cur = out
		case model.KindFC:
			var inputs []int
			if cur != nil {
				inputs = make([]int, len(cur.Data))
				for i, v := range cur.Data {
					inputs[i] = int(v)
				}
				cur = nil
			} else {
				inputs = vec
			}
			psums := make([]int, l.D)
			for d, row := range w.FC[l.Name] {
				s := 0
				for i, x := range inputs {
					s += x * row[i]
				}
				psums[d] = s
			}
			if l.Name == lastName {
				vec = psums
				break
			}
			sh := shifts[l.Name]
			for i := range psums {
				psums[i] = requantCode(psums[i], sh)
			}
			vec = psums
		case model.KindMaxPool:
			cur = tensor.MaxPool2D(cur, l.Z, l.S)
		case model.KindAvgPool:
			cur = tensor.AvgPool2D(cur, l.Z, l.S)
		}
	}
	return vec
}

func TestOpCodeStrings(t *testing.T) {
	for _, op := range []OpCode{OpWriteWeights, OpConfigInputPath, OpConfigPooling, OpSetScale} {
		if op.String() == "" || strings.HasPrefix(op.String(), "op(") {
			t.Errorf("OpCode %d has no name", int(op))
		}
	}
}
