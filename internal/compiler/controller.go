package compiler

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Weights carries a network's pre-trained integer weights, keyed by layer
// name: conv layers as filter banks, FC layers as dense matrices over the
// flattened input.
type Weights struct {
	Conv map[string]*tensor.Filter
	FC   map[string][][]int
}

// Controller executes a compiled program on functional TIMELY sub-chips:
// it writes weights to the mapped addresses, configures the input paths
// (§IV-F) and then runs inference layer by layer through the analog
// datapath, requantising between layers with calibrated shifts.
type Controller struct {
	prog   *Program
	opt    core.Options
	mapped map[string]*core.MappedLayer
	shifts map[string]int
}

// NewController prepares a controller for the program with the given
// functional-simulation options (noise, interface bits, ledger).
func NewController(prog *Program, opt core.Options) *Controller {
	return &Controller{
		prog:   prog,
		opt:    opt,
		mapped: map[string]*core.MappedLayer{},
		shifts: map[string]int{},
	}
}

// LoadWeights executes the program's write-weights commands: every weighted
// layer is programmed onto its own functional sub-chip.
func (c *Controller) LoadWeights(w Weights) error {
	for _, cmd := range c.prog.Commands {
		if cmd.Op != OpWriteWeights {
			continue
		}
		layer, ok := c.layerByName(cmd.Layer)
		if !ok {
			return fmt.Errorf("compiler: command for unknown layer %q", cmd.Layer)
		}
		var dense [][]int
		switch layer.Kind {
		case model.KindConv:
			f, ok := w.Conv[cmd.Layer]
			if !ok {
				return fmt.Errorf("compiler: missing conv weights for %q", cmd.Layer)
			}
			if f.D != layer.D || f.C != layer.C || f.Z != layer.Z || f.G != layer.G {
				return fmt.Errorf("compiler: weights for %q are %dx%dx%dx%d, layer wants %dx%dx%dx%d",
					cmd.Layer, f.D, f.C, f.Z, f.G, layer.D, layer.C, layer.Z, layer.G)
			}
			dense = core.FlattenFilter(f)
		case model.KindFC:
			m, ok := w.FC[cmd.Layer]
			if !ok {
				return fmt.Errorf("compiler: missing fc weights for %q", cmd.Layer)
			}
			dense = m
		}
		sc := core.NewSubChip(c.opt)
		mapped, err := sc.MapDense(dense)
		if err != nil {
			return fmt.Errorf("compiler: programming %q: %w", cmd.Layer, err)
		}
		c.mapped[cmd.Layer] = mapped
	}
	return nil
}

// Calibrate runs the samples through the pipeline, sizing each layer's
// requantisation shift so its largest observed psum fits the 8-bit input
// code range of the next layer (the per-layer scale of §IV-C).
func (c *Controller) Calibrate(samples ...*tensor.Int) error {
	if len(c.mapped) == 0 {
		return fmt.Errorf("compiler: calibrate before LoadWeights")
	}
	for name := range c.shifts {
		delete(c.shifts, name)
	}
	for _, s := range samples {
		if _, err := c.forward(s, true); err != nil {
			return err
		}
	}
	return nil
}

// Run executes one inference and returns the final layer's raw psums.
func (c *Controller) Run(in *tensor.Int) ([]int, error) {
	if len(c.mapped) == 0 {
		return nil, fmt.Errorf("compiler: run before LoadWeights")
	}
	return c.forward(in, false)
}

// Classify returns the argmax of Run.
func (c *Controller) Classify(in *tensor.Int) (int, error) {
	out, err := c.Run(in)
	if err != nil {
		return 0, err
	}
	best, bi := out[0], 0
	for i, v := range out {
		if v > best {
			best, bi = v, i
		}
	}
	return bi, nil
}

func (c *Controller) layerByName(name string) (model.Layer, bool) {
	for _, l := range c.prog.Network.Layers {
		if l.Name == name {
			return l, true
		}
	}
	return model.Layer{}, false
}

// forward walks the network. In calibrate mode it grows the per-layer
// shifts to cover the observed psum maxima.
func (c *Controller) forward(in *tensor.Int, calibrate bool) ([]int, error) {
	cur := in
	var lastVec []int
	weighted := c.prog.Network.WeightedLayers()
	for _, l := range c.prog.Network.Layers {
		switch l.Kind {
		case model.KindConv:
			m := c.mapped[l.Name]
			if m == nil {
				return nil, fmt.Errorf("compiler: layer %q not programmed", l.Name)
			}
			if cur == nil {
				return nil, fmt.Errorf("compiler: conv %q after flattening", l.Name)
			}
			rows, e, f := tensor.Im2ColDims(cur, l.Z, l.G, l.S, l.Pad)
			inputs := make([]int, rows*e*f)
			tensor.Im2ColIntoInts(cur, l.Z, l.G, l.S, l.Pad, inputs)
			flat := make([]int, e*f*l.D)
			if err := m.ForwardBatch(inputs, e*f, flat); err != nil {
				return nil, err
			}
			raw := make([][]int, l.D)
			for d := range raw {
				raw[d] = make([]int, e*f)
				for p := 0; p < e*f; p++ {
					raw[d][p] = flat[p*l.D+d]
				}
			}
			last := l.Name == weighted[len(weighted)-1].Name
			if last {
				lastVec = flatten(raw)
				cur = nil
				break
			}
			sh := c.shiftFor(l.Name, raw, calibrate)
			out := tensor.NewInt(l.D, e, f)
			for d := range raw {
				for p, v := range raw[d] {
					out.Data[d*e*f+p] = int32(requantCode(v, sh))
				}
			}
			cur = out
		case model.KindFC:
			m := c.mapped[l.Name]
			if m == nil {
				return nil, fmt.Errorf("compiler: layer %q not programmed", l.Name)
			}
			var inputs []int
			if cur != nil {
				inputs = make([]int, len(cur.Data))
				for i, v := range cur.Data {
					inputs[i] = int(v)
				}
				cur = nil
			} else {
				inputs = lastVec
			}
			psums, err := m.Compute(inputs)
			if err != nil {
				return nil, err
			}
			if l.Name == weighted[len(weighted)-1].Name {
				lastVec = psums
				break
			}
			sh := c.shiftFor(l.Name, [][]int{psums}, calibrate)
			next := make([]int, len(psums))
			for i, v := range psums {
				next[i] = requantCode(v, sh)
			}
			lastVec = next
		case model.KindMaxPool:
			cur = tensor.MaxPool2D(padded(cur, l.Pad), l.Z, l.S)
		case model.KindAvgPool:
			cur = tensor.AvgPool2D(padded(cur, l.Pad), l.Z, l.S)
		}
	}
	return lastVec, nil
}

// shiftFor returns (and in calibrate mode grows) the requantisation shift
// of a layer so that max(psum)>>shift ≤ 255.
func (c *Controller) shiftFor(name string, raw [][]int, calibrate bool) int {
	if !calibrate {
		return c.shifts[name]
	}
	max := 0
	for _, row := range raw {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	sh := c.shifts[name]
	for max>>uint(sh) > 255 {
		sh++
	}
	c.shifts[name] = sh
	return sh
}

func requantCode(v, sh int) int {
	v >>= uint(sh)
	if v < 0 {
		return 0 // folded ReLU
	}
	if v > 255 {
		return 255
	}
	return v
}

func flatten(rows [][]int) []int {
	var out []int
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}

// padded zero-pads a tensor symmetrically (pooling with padding).
func padded(t *tensor.Int, pad int) *tensor.Int {
	if pad == 0 {
		return t
	}
	out := tensor.NewInt(t.Shape.C, t.Shape.H+2*pad, t.Shape.W+2*pad)
	for c := 0; c < t.Shape.C; c++ {
		for h := 0; h < t.Shape.H; h++ {
			for w := 0; w < t.Shape.W; w++ {
				out.Set(c, h+pad, w+pad, t.At(c, h, w))
			}
		}
	}
	return out
}
