package accel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/params"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// TestFunctionalMatchesAnalyticCounts cross-validates the two simulators:
// the functional sub-chip executor (package core, differential signed
// scheme, no O2IR duplication) and the analytic TIMELY model configured the
// same way must count identical operation totals for the same layer.
func TestFunctionalMatchesAnalyticCounts(t *testing.T) {
	const (
		c, h, w = 2, 5, 5
		d, k    = 3, 3
		stride  = 1
		pad     = 0
	)
	// Functional run.
	rng := stats.NewRNG(42)
	in := tensor.NewInt(c, h, w)
	for i := range in.Data {
		in.Data[i] = int32(rng.Intn(256))
	}
	f := tensor.NewFilter(d, c, k, k)
	for i := range f.Data {
		f.Data[i] = int32(rng.Intn(255)) - 127
	}
	funcLed := energy.NewLedger(nil)
	if _, err := core.RunConv(core.IdealOptions(funcLed), in, f, stride, pad, true); err != nil {
		t.Fatal(err)
	}

	// Analytic run on the same layer with matching scheme: differential
	// signed weights use 2× the sub-ranged columns, single instance.
	layer := model.NewBuilder("t", c, h, w).Conv("conv", d, k, stride, pad).Build().Layers[0]
	cfg := params.DefaultTimely(8)
	anaModel := &Timely{
		Cfg:                cfg,
		DisableDuplication: true,
		PhysColsPerWeight:  2 * cfg.ColumnsPerWeight(),
	}
	anaLed := energy.NewLedger(nil)
	anaModel.EvaluateLayer(layer, anaLed)

	for _, comp := range []energy.Component{
		energy.L1Read, energy.L1Write, energy.DTCConv, energy.TDCConv,
		energy.ChargingOp, energy.IAdderOp, energy.PSubBufOp,
		energy.XSubBufOp, energy.CrossbarOp, energy.ReLUOp, energy.ShiftAddOp,
	} {
		if got, want := funcLed.Count(comp), anaLed.Count(comp); got != want {
			t.Errorf("%v count: functional %v, analytic %v", comp, got, want)
		}
	}
}

// TestFunctionalMatchesAnalyticMultiColumn repeats the cross-validation on a
// layer wide and deep enough to span several grid rows and columns,
// exercising the X-subBuf propagation and P-subBuf accounting.
func TestFunctionalMatchesAnalyticMultiColumn(t *testing.T) {
	const (
		c, h, w = 40, 4, 4 // rows = 40·9 = 360 > 256: two grid rows
		d, k    = 80, 3    // cols = 80·4 = 320 > 256: two grid columns
		stride  = 1
		pad     = 1
	)
	rng := stats.NewRNG(7)
	in := tensor.NewInt(c, h, w)
	for i := range in.Data {
		in.Data[i] = int32(rng.Intn(256))
	}
	f := tensor.NewFilter(d, c, k, k)
	for i := range f.Data {
		f.Data[i] = int32(rng.Intn(255)) - 127
	}
	funcLed := energy.NewLedger(nil)
	if _, err := core.RunConv(core.IdealOptions(funcLed), in, f, stride, pad, false); err != nil {
		t.Fatal(err)
	}
	layer := model.NewBuilder("t", c, h, w).Conv("conv", d, k, stride, pad).Build().Layers[0]
	cfg := params.DefaultTimely(8)
	anaModel := &Timely{
		Cfg:                cfg,
		DisableDuplication: true,
		PhysColsPerWeight:  2 * cfg.ColumnsPerWeight(),
	}
	anaLed := energy.NewLedger(nil)
	anaModel.EvaluateLayer(layer, anaLed)
	for _, comp := range []energy.Component{
		energy.L1Read, energy.DTCConv, energy.TDCConv, energy.ChargingOp,
		energy.IAdderOp, energy.PSubBufOp, energy.XSubBufOp, energy.CrossbarOp,
	} {
		if got, want := funcLed.Count(comp), anaLed.Count(comp); got != want {
			t.Errorf("%v count: functional %v, analytic %v", comp, got, want)
		}
	}
}
