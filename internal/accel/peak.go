package accel

import (
	"repro/internal/area"
	"repro/internal/energy"
	"repro/internal/params"
)

// TIMELY peak metrics from first principles (Table IV rows "TIMELY a/b").
// Peak throughput assumes every crossbar cell contributes a MAC each
// pipeline wave; peak power charges every sub-chip component at its
// steady-state activity for a dense (FC-like) workload, where each wave
// consumes a fresh 4096-row input vector and emits 3072 column samples.

// TimelyPeak holds computed peak metrics for one precision.
type TimelyPeak struct {
	OpBits int
	// EfficiencyTOPsW counts one MAC as one operation (paper convention).
	EfficiencyTOPsW float64
	// DensityTOPsMM2 is peak MACs/s per mm² of chip area.
	DensityTOPsMM2 float64
	// PowerWatts is the implied peak chip power.
	PowerWatts float64
}

// subChipCycleEnergy returns the energy (fJ) one fully active sub-chip
// spends per pipeline cycle at the given precision.
func subChipCycleEnergy(cfg params.TimelyConfig) float64 {
	led := energy.NewLedger((&Timely{Cfg: cfg}).Units())
	rows := float64(cfg.RowCapacity())
	cols := float64(cfg.ColCapacity())
	outs := cols / float64(cfg.ColumnsPerWeight())
	// Dense steady state: fresh inputs stream every cycle (worst case for
	// the buffers); outputs drain every cycle.
	led.Add(energy.L1Read, energy.ClassInput, rows)
	led.Add(energy.DTCConv, energy.ClassInput, rows)
	led.Add(energy.XSubBufOp, energy.ClassInput, float64(params.CountXSubBuf))
	led.Add(energy.CrossbarOp, energy.ClassCompute, float64(cfg.CrossbarsPerSubChip()))
	led.Add(energy.PSubBufOp, energy.ClassPsum, float64(params.CountPSubBuf))
	led.Add(energy.IAdderOp, energy.ClassPsum, cols)
	led.Add(energy.ChargingOp, energy.ClassPsum, cols)
	led.Add(energy.TDCConv, energy.ClassPsum, cols)
	led.Add(energy.ShiftAddOp, energy.ClassDigital, cols)
	led.Add(energy.ReLUOp, energy.ClassDigital, outs)
	led.Add(energy.L1Write, energy.ClassOutput, outs)
	return led.Total()
}

// ComputeTimelyPeak derives the Table IV TIMELY row for the given precision.
func ComputeTimelyPeak(bits int) TimelyPeak {
	cfg := params.DefaultTimely(bits)
	macsPerSec := cfg.PeakMACsPerSecond()
	// Energy per second: per-cycle sub-chip energy × cycles/s × sub-chips.
	cyclesPerSec := 1e12 / cfg.CycleTime()
	watts := subChipCycleEnergy(cfg) * 1e-15 * cyclesPerSec * float64(cfg.SubChips)
	chipAreaMM2 := area.ChipArea(cfg.SubChips) / 1e6
	return TimelyPeak{
		OpBits:          bits,
		EfficiencyTOPsW: macsPerSec / watts / 1e12,
		DensityTOPsMM2:  macsPerSec / 1e12 / chipAreaMM2,
		PowerWatts:      watts,
	}
}
