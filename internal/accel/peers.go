package accel

// Published peak numbers of the accelerators the paper compares against
// without re-simulating (Table IV and Fig. 1(c)): "the performance data of
// the baselines are the ones reported in their corresponding papers"
// (§VI-A). TIMELY's own peaks are computed from first principles in peak.go.

// PeakSpec is one accelerator's published peak operating point.
type PeakSpec struct {
	Name string
	// OpBits is the MAC precision of the reported numbers (8 or 16).
	OpBits int
	// EfficiencyTOPsW is peak energy efficiency in TOPs/W.
	EfficiencyTOPsW float64
	// DensityTOPsMM2 is peak computational density in TOPs/(s·mm²).
	DensityTOPsMM2 float64
	// PIM reports whether the design computes in memory.
	PIM bool
}

// ReportedPeaks returns the Table IV baselines plus Eyeriss (Fig. 1(c)).
func ReportedPeaks() []PeakSpec {
	return []PeakSpec{
		// Table IV (a: 8-bit MAC, b: 16-bit MAC).
		{Name: "PRIME", OpBits: 8, EfficiencyTOPsW: 2.10, DensityTOPsMM2: 1.23, PIM: true},
		{Name: "ISAAC", OpBits: 16, EfficiencyTOPsW: 0.38, DensityTOPsMM2: 0.48, PIM: true},
		{Name: "PipeLayer", OpBits: 16, EfficiencyTOPsW: 0.14, DensityTOPsMM2: 1.49, PIM: true},
		{Name: "AtomLayer", OpBits: 16, EfficiencyTOPsW: 0.68, DensityTOPsMM2: 0.48, PIM: true},
		// Eyeriss (Chen et al., ISCA 2016), the non-PIM reference of
		// Fig. 1(c): 16-bit MACs, ~33.6 GOPS at ~278 mW on a 12.25 mm²
		// 65 nm die (chip area excluding off-chip DRAM).
		{Name: "Eyeriss", OpBits: 16, EfficiencyTOPsW: 0.12, DensityTOPsMM2: 0.0027, PIM: false},
	}
}

// ReportedPeak returns the named baseline's peak, or false.
func ReportedPeak(name string) (PeakSpec, bool) {
	for _, p := range ReportedPeaks() {
		if p.Name == name {
			return p, true
		}
	}
	return PeakSpec{}, false
}
