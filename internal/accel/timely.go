package accel

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/params"
	"repro/internal/pipeline"
)

// Timely is the analytic TIMELY model: O2IR-mapped layers on sub-chips with
// ALB-local analog movement, DTC/TDC interfacing, and the two-level pipeline
// of §IV-E.
type Timely struct {
	Cfg params.TimelyConfig
	// DisableDuplication turns off O2IR vertical filter copies (used by the
	// functional-vs-analytic integration tests, whose functional executor
	// maps a single instance).
	DisableDuplication bool
	// PhysColsPerWeight overrides the physical columns per weight (0 keeps
	// the paper's sub-ranging accounting; the functional integration test
	// sets 2× for its differential scheme).
	PhysColsPerWeight int
	// LayerInstances, when non-nil, fixes the weight-duplication count per
	// weighted layer instead of the default uniform network replication —
	// the paper reuses the baselines' published duplication ratios for the
	// throughput comparison (§VI-B), so the Fig. 8(b) experiment passes
	// ISAAC's balanced allocation here. Counts are scaled down uniformly if
	// the deployment cannot hold them.
	LayerInstances []int
}

// NewTimely returns the Table II TIMELY at the given precision and chip count.
func NewTimely(bits, chips int) *Timely {
	cfg := params.DefaultTimely(bits)
	cfg.Chips = chips
	return &Timely{Cfg: cfg}
}

// Name implements Accelerator.
func (t *Timely) Name() string { return "TIMELY" }

// Units returns the TIMELY unit-energy table (Table II).
func (t *Timely) Units() map[energy.Component]float64 {
	return map[energy.Component]float64{
		energy.L1Read:      params.EnergyL1Read,
		energy.L1Write:     params.EnergyL1Write,
		energy.DTCConv:     params.EnergyDTC,
		energy.TDCConv:     params.EnergyTDC,
		energy.CrossbarOp:  params.EnergyCrossbar,
		energy.ChargingOp:  params.EnergyCharging,
		energy.XSubBufOp:   params.EnergyXSubBuf,
		energy.PSubBufOp:   params.EnergyPSubBuf,
		energy.IAdderOp:    params.EnergyIAdder,
		energy.ReLUOp:      params.EnergyReLU,
		energy.MaxPoolOp:   params.EnergyMaxPool,
		energy.ShiftAddOp:  25.0, // "negligibly small" shifter+adder (§VI-A)
		energy.HyperLinkOp: params.EnergyHyperLink,
	}
}

func (t *Timely) place(l model.Layer) mapping.Placement {
	cpw := t.PhysColsPerWeight
	if cpw == 0 {
		cpw = t.Cfg.ColumnsPerWeight()
	}
	p := mapping.PlaceO2IRScheme(l, t.Cfg, cpw)
	if t.DisableDuplication {
		p.VerticalCopies = 1
		passes := int64(t.Cfg.InputPasses())
		if l.Kind == model.KindConv {
			p.CyclesPerImage = int64(l.E) * int64(l.F) * passes
		}
	}
	return p
}

// EvaluateLayer counts one weighted layer's operations into the ledger and
// returns its placement.
func (t *Timely) EvaluateLayer(l model.Layer, led *energy.Ledger) mapping.Placement {
	p := t.place(l)
	cfg := t.Cfg
	passes := float64(cfg.InputPasses())
	// Input values are stored as passes × 8-bit halves: one L1 read and one
	// DTC conversion per half (O2IR: once per input, Table V).
	nIn := o2irInputReads(l) * passes
	led.Add(energy.L1Read, energy.ClassInput, nIn)
	led.Add(energy.DTCConv, energy.ClassInput, nIn)
	// O2IR principle 3: horizontal slide reuse via X-subBuf shifts.
	if l.Kind == model.KindConv {
		if shifts := l.G/l.S - 1; shifts > 0 {
			led.Add(energy.XSubBufOp, energy.ClassInput, nIn*float64(shifts))
		}
	}
	// Wave geometry of one mapped instance.
	waves := float64(p.CyclesPerImage)
	rowsUsed := p.Rows + (p.VerticalCopies-1)*p.CopyRowStride
	if rowsUsed > cfg.RowCapacity() {
		rowsUsed = cfg.RowCapacity()
	}
	colsUsed := p.VerticalCopies * l.D * p.PhysColsPerWeight
	if colsUsed > cfg.ColCapacity() {
		colsUsed = cfg.ColCapacity()
	}
	gridRows := ceilDiv(rowsUsed, cfg.B)
	gridCols := ceilDiv(colsUsed, cfg.B)
	// Horizontal time propagation across crossbar columns.
	if gridCols > 1 {
		led.Add(energy.XSubBufOp, energy.ClassInput, waves*float64(rowsUsed*(gridCols-1)))
	}
	// Crossbar activations: every spanned array fires each wave; split
	// layers activate their chunk grids in parallel.
	split := float64(p.RowSplit * p.ColSplit)
	led.Add(energy.CrossbarOp, energy.ClassCompute, waves*float64(gridRows*gridCols)*split)
	// Psum path: one charging + TDC + I-adder per physical column per
	// output wave; D·E·F output values per image and per pass, times the
	// row-split partials.
	outVals := float64(l.Outputs())
	psumConvs := outVals * passes * float64(p.PhysColsPerWeight) * float64(p.RowSplit)
	led.Add(energy.ChargingOp, energy.ClassPsum, psumConvs)
	led.Add(energy.TDCConv, energy.ClassPsum, psumConvs)
	led.Add(energy.IAdderOp, energy.ClassPsum, psumConvs)
	if gridRows > 1 {
		led.Add(energy.PSubBufOp, energy.ClassPsum, psumConvs*float64(gridRows-1))
	}
	// Digital recombination (shift-and-add across sub-ranged columns and
	// row-split partials).
	led.Add(energy.ShiftAddOp, energy.ClassDigital, psumConvs)
	if p.RowSplit > 1 {
		// Partial sums from the extra row chunks go through the output
		// buffer once (write + read-back for accumulation).
		merge := outVals * passes * float64(p.RowSplit-1)
		led.Add(energy.L1Write, energy.ClassPsum, merge)
		led.Add(energy.L1Read, energy.ClassPsum, merge)
	}
	// Final outputs: ReLU and write-back (one access per 8-bit half).
	led.Add(energy.ReLUOp, energy.ClassDigital, outVals)
	led.Add(energy.L1Write, energy.ClassOutput, outVals*passes)
	return p
}

// Evaluate implements Accelerator.
func (t *Timely) Evaluate(n *model.Network) (*Result, error) {
	led := energy.NewLedger(t.Units())
	var stages []pipeline.Stage
	var prevSubChips int
	subChipsSoFar := 0
	perChip := t.Cfg.SubChips
	for _, l := range n.Layers {
		switch {
		case l.IsWeighted():
			p := t.EvaluateLayer(l, led)
			stages = append(stages, pipeline.Stage{
				Name:     l.Name,
				Work:     float64(p.CyclesPerImage),
				MinUnits: p.SubChips,
			})
			// Inter-chip transfers when the pipeline crosses a chip
			// boundary (negligible energy, Fig. 9(c) L3).
			if (subChipsSoFar/perChip) != (subChipsSoFar+p.SubChips)/perChip && prevSubChips > 0 {
				led.Add(energy.HyperLinkOp, energy.ClassComm,
					float64(l.Inputs())*float64(t.Cfg.InputPasses()))
			}
			subChipsSoFar += p.SubChips
			prevSubChips = p.SubChips
		case l.Kind == model.KindMaxPool || l.Kind == model.KindAvgPool:
			led.Add(energy.MaxPoolOp, energy.ClassDigital, float64(l.Outputs()))
		}
	}
	total := t.Cfg.Chips * t.Cfg.SubChips
	need := 0
	for _, s := range stages {
		need += s.MinUnits
	}
	fits := need <= total
	inst := make([]int, len(stages))
	if t.LayerInstances != nil {
		if len(t.LayerInstances) != len(stages) {
			return nil, fmt.Errorf("timely: %d layer instances for %d weighted layers",
				len(t.LayerInstances), len(stages))
		}
		// Adopt the supplied (baseline-published) duplication ratios,
		// shrinking uniformly if they exceed capacity.
		used := 0
		for i, s := range stages {
			if t.LayerInstances[i] < 1 {
				return nil, fmt.Errorf("timely: non-positive instance count at layer %d", i)
			}
			used += t.LayerInstances[i] * s.MinUnits
		}
		scale := 1.0
		if used > total {
			scale = float64(total) / float64(used)
		}
		for i := range stages {
			inst[i] = int(float64(t.LayerInstances[i]) * scale)
			if inst[i] < 1 {
				inst[i] = 1
			}
		}
	} else {
		// Default: uniform network-level weight duplication — whole extra
		// copies of the network pipeline, which keeps the throughput gain
		// linear in chip count (the constant 736.6× of Fig. 8(b)).
		dup := 1
		if fits {
			dup = total / need
		}
		for i := range inst {
			inst[i] = dup
		}
	}
	cycles := pipeline.BottleneckCycles(stages, inst)
	ct := t.Cfg.CycleTime()
	return &Result{
		Accelerator:    t.Name(),
		Network:        n.Name,
		Ledger:         led,
		CyclesPerImage: cycles,
		CycleTimePS:    ct,
		ImagesPerSec:   pipeline.Throughput(cycles, ct),
		Chips:          t.Cfg.Chips,
		Instances:      inst,
		Fits:           fits,
	}, nil
}
