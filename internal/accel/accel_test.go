package accel

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/params"
)

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", name, got)
		}
		return
	}
	if r := math.Abs(got-want) / math.Abs(want); r > relTol {
		t.Errorf("%s = %.4g, want %.4g (±%.0f%%)", name, got, want, relTol*100)
	}
}

// TestTableVInputReads reproduces Table V exactly: L1 input-read counts of
// VGG-D CONV1-6 for PRIME and TIMELY, with the 88.9 % saving.
func TestTableVInputReads(t *testing.T) {
	convs := model.VGG("D").ConvLayers()
	wantPrime := []float64{1.35e6, 28.90e6, 7.23e6, 14.45e6, 3.61e6, 7.23e6}
	for i, want := range wantPrime {
		got := primeInputReads(convs[i])
		within(t, convs[i].Name+" PRIME reads", got, want, 0.005)
		o2ir := o2irInputReads(convs[i])
		within(t, convs[i].Name+" TIMELY reads", o2ir, want/9, 0.005)
		saving := 1 - o2ir/got
		within(t, convs[i].Name+" saving", saving, 0.889, 0.001)
	}
}

// TestPrimeBreakdownMatchesFig4b locks the PRIME calibration: inputs ≈36 %,
// psum+output movement ≈47 %, ADC ≈17 %, DAC ≈0 % on VGG-D, with the total
// near the 14.8 mJ implied by PRIME's published peak.
func TestPrimeBreakdownMatchesFig4b(t *testing.T) {
	r, err := NewPrime(1).Evaluate(model.VGG("D"))
	if err != nil {
		t.Fatal(err)
	}
	tot := r.Ledger.Total()
	within(t, "PRIME VGG-D total (mJ)", tot*1e-12, 14.8, 0.05)
	adc := r.Ledger.Energy(energy.ADCConv)
	dac := r.Ledger.Energy(energy.DACConv)
	inputMove := r.Ledger.MovementByClass(energy.ClassInput)
	psumOutMove := r.Ledger.MovementByClass(energy.ClassPsum) +
		r.Ledger.MovementByClass(energy.ClassOutput)
	within(t, "inputs share", inputMove/tot, 0.36, 0.05)
	within(t, "psums+outputs share", psumOutMove/tot, 0.47, 0.05)
	within(t, "ADC share", adc/tot, 0.17, 0.05)
	if dac/tot > 0.02 {
		t.Errorf("DAC share = %.3f, want ≈0 (Fig. 4(b))", dac/tot)
	}
}

// TestIsaacBreakdownMatchesFig4c locks the ISAAC calibration: interfaces
// ≈61 %, comm ≈19 %, memory ≈12 %, digital ≈8 %.
func TestIsaacBreakdownMatchesFig4c(t *testing.T) {
	r, err := NewIsaac(1).Evaluate(model.VGG("D"))
	if err != nil {
		t.Fatal(err)
	}
	tot := r.Ledger.Total()
	ifc := r.Ledger.InterfaceEnergy()
	comm := r.Ledger.ByClass(energy.ClassComm)
	mem := r.Ledger.Energy(energy.EDRAMRead) + r.Ledger.Energy(energy.EDRAMWrite) +
		r.Ledger.Energy(energy.IRRead)
	digital := r.Ledger.ByClass(energy.ClassDigital)
	within(t, "ISAAC interface share", ifc/tot, 0.61, 0.05)
	within(t, "ISAAC comm share", comm/tot, 0.19, 0.06)
	within(t, "ISAAC memory share", mem/tot, 0.12, 0.10)
	within(t, "ISAAC digital share", digital/tot, 0.08, 0.10)
}

// TestVGGDEnergyRatios checks the headline Fig. 8(a) VGG-D points: TIMELY is
// 15.6× PRIME (we land within the same order, see EXPERIMENTS.md) and 22.2×
// ISAAC.
func TestVGGDEnergyRatios(t *testing.T) {
	vgg := model.VGG("D")
	t8, err := NewTimely(8, 1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPrime(1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	ratioPrime := pr.Ledger.Total() / t8.Ledger.Total()
	if ratioPrime < 10 || ratioPrime > 35 {
		t.Errorf("PRIME/TIMELY-8 energy ratio = %.1f, want one order of magnitude (paper: 15.6)", ratioPrime)
	}
	t16, err := NewTimely(16, 1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	is, err := NewIsaac(1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	ratioIsaac := is.Ledger.Total() / t16.Ledger.Total()
	within(t, "ISAAC/TIMELY-16 energy ratio", ratioIsaac, 22.2, 0.15)
}

// TestThroughputRatiosMatchFig8b checks the Fig. 8(b) shape: TIMELY ≈736.6×
// PRIME (uniform duplication both sides) and ≈2.1-2.7× ISAAC (ISAAC's
// balanced duplication ratios shared with TIMELY).
func TestThroughputRatiosMatchFig8b(t *testing.T) {
	vgg := model.VGG("D")
	for _, chips := range []int{16, 32, 64} {
		t8, err := NewTimely(8, chips).Evaluate(vgg)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := NewPrime(chips).Evaluate(vgg)
		if err != nil {
			t.Fatal(err)
		}
		rp := t8.ImagesPerSec / pr.ImagesPerSec
		if rp < 400 || rp > 1100 {
			t.Errorf("%d chips: TIMELY/PRIME throughput = %.0f, want ≈736.6", chips, rp)
		}
		is, err := NewIsaac(chips).Evaluate(vgg)
		if err != nil {
			t.Fatal(err)
		}
		t16 := NewTimely(16, chips)
		t16.LayerInstances = is.Instances
		r16, err := t16.Evaluate(vgg)
		if err != nil {
			t.Fatal(err)
		}
		ri := r16.ImagesPerSec / is.ImagesPerSec
		if ri < 1.3 || ri > 4 {
			t.Errorf("%d chips: TIMELY/ISAAC throughput = %.2f, want ≈2.1-2.7", chips, ri)
		}
	}
}

// TestInterfaceEnergyMatchesFig9b: TIMELY's DTC+TDC energy is ≈99.6 % lower
// than PRIME's DAC+ADC on VGG-D.
func TestInterfaceEnergyMatchesFig9b(t *testing.T) {
	vgg := model.VGG("D")
	t8, err := NewTimely(8, 1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPrime(1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	red := 1 - t8.Ledger.InterfaceEnergy()/pr.Ledger.InterfaceEnergy()
	if red < 0.99 {
		t.Errorf("interface energy reduction = %.4f, want ≥0.99 (paper: 0.996)", red)
	}
}

// TestMemoryEnergyMatchesFig9c: TIMELY's memory-access energy (ALB+L1+L3)
// is ≈93 % lower than PRIME's (L1+L2+L3).
func TestMemoryEnergyMatchesFig9c(t *testing.T) {
	vgg := model.VGG("D")
	t8, err := NewTimely(8, 1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPrime(1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	mem := func(r *Result) float64 {
		return r.Ledger.ByLevel(energy.LevelALB) + r.Ledger.ByLevel(energy.LevelL1) +
			r.Ledger.ByLevel(energy.LevelL2) + r.Ledger.ByLevel(energy.LevelL3)
	}
	red := 1 - mem(t8)/mem(pr)
	within(t, "memory energy reduction", red, 0.93, 0.05)
	// TIMELY removes the L2 level entirely.
	if t8.Ledger.ByLevel(energy.LevelL2) != 0 {
		t.Errorf("TIMELY has L2 energy: %v", t8.Ledger.ByLevel(energy.LevelL2))
	}
}

// TestDataTypeReductionsMatchFig9d: per-data-type movement reductions —
// psums ≈99.9 %, inputs ≈95.8 %, outputs ≈87.1 %.
func TestDataTypeReductionsMatchFig9d(t *testing.T) {
	vgg := model.VGG("D")
	t8, err := NewTimely(8, 1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPrime(1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	red := func(cl energy.Class) float64 {
		return 1 - t8.Ledger.MovementByClass(cl)/pr.Ledger.MovementByClass(cl)
	}
	if got := red(energy.ClassPsum); got < 0.97 {
		t.Errorf("psum movement reduction = %.4f, want ≥0.97 (paper: 0.999)", got)
	}
	within(t, "input movement reduction", red(energy.ClassInput), 0.958, 0.03)
	within(t, "output movement reduction", red(energy.ClassOutput), 0.871, 0.05)
}

// TestFig11Retrofit: ALB+O2IR inside PRIME's FF subarrays cuts intra-bank
// data-movement energy by ≈68 %.
func TestFig11Retrofit(t *testing.T) {
	vgg := model.VGG("D")
	base, err := NewPrime(1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	retro, err := (&Prime{Cfg: params.DefaultPrime(), ALBO2IR: true}).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	red := 1 - IntraBankEnergy(retro.Ledger)/IntraBankEnergy(base.Ledger)
	within(t, "intra-bank reduction", red, 0.68, 0.10)
}

// TestTimelyPeaks: computational density must match Table IV closely (the
// geometry fixes it); efficiency lands above the paper's figure because the
// Table II component energies give a cheaper chip than the authors' power
// model (documented in EXPERIMENTS.md).
func TestTimelyPeaks(t *testing.T) {
	p8 := ComputeTimelyPeak(8)
	within(t, "8-bit density", p8.DensityTOPsMM2, 38.33, 0.1)
	if p8.EfficiencyTOPsW < 21.0 || p8.EfficiencyTOPsW > 4*21.0 {
		t.Errorf("8-bit efficiency = %.1f TOPs/W, want within [21, 84] (paper: 21)", p8.EfficiencyTOPsW)
	}
	p16 := ComputeTimelyPeak(16)
	within(t, "16-bit density", p16.DensityTOPsMM2, 9.58, 0.1)
	if p16.EfficiencyTOPsW < 6.9 || p16.EfficiencyTOPsW > 4*6.9 {
		t.Errorf("16-bit efficiency = %.1f TOPs/W, want within [6.9, 27.6] (paper: 6.9)", p16.EfficiencyTOPsW)
	}
}

// TestTableIVImprovements: with the computed TIMELY peaks and the reported
// baseline peaks, the Table IV improvement factors keep their order.
func TestTableIVImprovements(t *testing.T) {
	p8 := ComputeTimelyPeak(8)
	prime, _ := ReportedPeak("PRIME")
	if imp := p8.DensityTOPsMM2 / prime.DensityTOPsMM2; imp < 20 || imp > 45 {
		t.Errorf("density improvement over PRIME = %.1f, want ≈31.2", imp)
	}
	if imp := p8.EfficiencyTOPsW / prime.EfficiencyTOPsW; imp < 10 {
		t.Errorf("efficiency improvement over PRIME = %.1f, want ≥10", imp)
	}
	p16 := ComputeTimelyPeak(16)
	for _, name := range []string{"ISAAC", "PipeLayer", "AtomLayer"} {
		peer, ok := ReportedPeak(name)
		if !ok {
			t.Fatalf("missing peer %s", name)
		}
		if p16.EfficiencyTOPsW <= peer.EfficiencyTOPsW {
			t.Errorf("TIMELY-16 efficiency does not beat %s", name)
		}
		if p16.DensityTOPsMM2 <= peer.DensityTOPsMM2 {
			t.Errorf("TIMELY-16 density does not beat %s", name)
		}
	}
}

// TestEnergyRatiosAcrossBenchmarks: TIMELY wins on every Table III network
// (Fig. 8(a)): all PRIME ratios > 1, order-of-magnitude geomean.
func TestEnergyRatiosAcrossBenchmarks(t *testing.T) {
	for _, n := range model.Benchmarks() {
		t8, err := NewTimely(8, 1).Evaluate(n)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		pr, err := NewPrime(1).Evaluate(n)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		ratio := pr.Ledger.Total() / t8.Ledger.Total()
		if ratio <= 1 {
			t.Errorf("%s: PRIME/TIMELY ratio = %.2f, TIMELY must win", n.Name, ratio)
		}
	}
}

// TestSmallModelsBenefitLess: the paper notes CNN-1 and SqueezeNet gain less
// because their movement energy is small; their ratio must sit below VGG-D's.
func TestSmallModelsBenefitLess(t *testing.T) {
	ratio := func(name string) float64 {
		n, err := model.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t8, err := NewTimely(8, 1).Evaluate(n)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := NewPrime(1).Evaluate(n)
		if err != nil {
			t.Fatal(err)
		}
		return pr.Ledger.Total() / t8.Ledger.Total()
	}
	vgg := ratio("VGG-D")
	for _, small := range []string{"CNN-1", "SqueezeNet"} {
		if r := ratio(small); r >= vgg {
			t.Errorf("%s ratio %.1f not below VGG-D's %.1f (compact models gain less)", small, r, vgg)
		}
	}
}

// TestPrimeFitsFlag: VGG-D does not fit one PRIME chip (4230 > 1024 mats)
// but fits 16 chips; TIMELY holds it in a single chip (Fig. 8(b)'s crossbar
// count comparison).
func TestPrimeFitsFlag(t *testing.T) {
	vgg := model.VGG("D")
	r1, err := NewPrime(1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fits {
		t.Errorf("VGG-D reported as fitting one PRIME chip")
	}
	r16, err := NewPrime(16).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	if !r16.Fits {
		t.Errorf("VGG-D reported as not fitting 16 PRIME chips")
	}
	t8, err := NewTimely(8, 1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	if !t8.Fits {
		t.Errorf("VGG-D reported as not fitting one TIMELY chip")
	}
}

// TestEfficiencyDefinition: the achieved efficiency helper is consistent
// with ledger totals.
func TestEfficiencyDefinition(t *testing.T) {
	vgg := model.VGG("D")
	t8, err := NewTimely(8, 1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	eff := t8.EfficiencyTOPsPerWatt(vgg)
	want := OpsPerImage(vgg) / (t8.Ledger.Total() * 1e-15) / 1e12
	within(t, "efficiency helper", eff, want, 1e-9)
	if eff <= 0 {
		t.Errorf("non-positive efficiency")
	}
}

// TestAveragePower sanity-checks the derived power figure: a single TIMELY
// chip under VGG-D draws a physically plausible wattage.
func TestAveragePower(t *testing.T) {
	vgg := model.VGG("D")
	t8, err := NewTimely(8, 1).Evaluate(vgg)
	if err != nil {
		t.Fatal(err)
	}
	w := t8.AveragePowerWatts()
	if w <= 0 || w > 500 {
		t.Errorf("average power = %.1f W, implausible for one chip", w)
	}
	// Consistency: power = energy/image × throughput.
	want := t8.EnergyPerImageMJ() * 1e-3 * t8.ImagesPerSec
	if math.Abs(w-want) > 1e-9*want {
		t.Errorf("power helper inconsistent: %v vs %v", w, want)
	}
}

// TestReportedPeaksComplete covers the Fig. 1(c)/Table IV peer list.
func TestReportedPeaksComplete(t *testing.T) {
	want := []string{"PRIME", "ISAAC", "PipeLayer", "AtomLayer", "Eyeriss"}
	for _, name := range want {
		if _, ok := ReportedPeak(name); !ok {
			t.Errorf("missing reported peak for %s", name)
		}
	}
	if _, ok := ReportedPeak("TPU"); ok {
		t.Errorf("unexpected peer")
	}
	eyeriss, _ := ReportedPeak("Eyeriss")
	if eyeriss.PIM {
		t.Errorf("Eyeriss flagged as PIM")
	}
}
