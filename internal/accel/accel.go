// Package accel contains the architecture-level analytic simulators — the
// in-house-simulator reproduction the paper's evaluation rests on (§VI-A
// "Methodology"). Each accelerator model walks a network layer by layer,
// counting component operations into an energy ledger (package energy) and
// deriving throughput from its pipeline model (package pipeline).
//
// Three models are implemented from scratch: TIMELY (O2IR mapping, ALB
// locality, TDI interfaces, intra-/inter-sub-chip pipelining), PRIME
// (voltage-domain interfaces, two-level memory, serial layer execution) and
// ISAAC (bit-serial 16-bit waves, shared ADCs, eDRAM tiles, balanced
// inter-layer pipeline). PipeLayer, AtomLayer and Eyeriss contribute their
// published peak numbers only, exactly as in the paper (see peers.go).
package accel

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/model"
)

// Result is the outcome of evaluating one network on one accelerator.
type Result struct {
	// Accelerator and Network name the evaluation.
	Accelerator, Network string
	// Ledger holds the per-component, per-class operation counts and the
	// unit-energy table; Ledger.Total() is the energy per image in fJ.
	Ledger *energy.Ledger
	// CyclesPerImage and CycleTimePS describe the steady-state throughput;
	// ImagesPerSec is the derived rate.
	CyclesPerImage float64
	CycleTimePS    float64
	ImagesPerSec   float64
	// Chips is the deployment size used.
	Chips int
	// Instances holds the weight-duplication (instance) count per weighted
	// layer, in layer order. The Fig. 8(b) experiment feeds ISAAC's
	// balanced ratios into TIMELY, per the paper's methodology.
	Instances []int
	// Fits reports whether one instance of every layer fit the deployment
	// simultaneously. When false, weights must be reloaded between layers;
	// energy figures remain valid, throughput figures assume free reloads
	// (optimistic for the baseline, i.e. conservative for TIMELY's ratios).
	Fits bool
}

// EnergyPerImageMJ returns the per-image energy in millijoules.
func (r *Result) EnergyPerImageMJ() float64 { return r.Ledger.Total() * 1e-12 }

// AveragePowerWatts returns the average power the deployment draws at its
// steady-state throughput: energy per image × images per second.
func (r *Result) AveragePowerWatts() float64 {
	return r.Ledger.Total() * 1e-15 * r.ImagesPerSec
}

// OpsPerImage counts one MAC as one operation, the convention the paper's
// TOPs figures use (Table IV footnotes).
func OpsPerImage(n *model.Network) float64 { return float64(n.TotalMACs()) }

// EfficiencyTOPsPerWatt returns achieved ops per joule in TOPs/W terms:
// (MACs per image) / (energy per image).
func (r *Result) EfficiencyTOPsPerWatt(n *model.Network) float64 {
	e := r.Ledger.Total() * 1e-15 // fJ -> J
	if e <= 0 {
		return 0
	}
	return OpsPerImage(n) / e / 1e12
}

// Accelerator evaluates networks at a given deployment size.
type Accelerator interface {
	// Name identifies the model ("TIMELY", "PRIME", "ISAAC").
	Name() string
	// Evaluate runs one inference pass analytically.
	Evaluate(n *model.Network) (*Result, error)
}

// ceilDiv is shared integer arithmetic for the access models.
func ceilDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("accel: non-positive divisor %d", b))
	}
	return (a + b - 1) / b
}

// primeInputReads is the PRIME-style L1 input-read count for one layer:
// every input is re-read for each vertical/horizontal filter slide,
// Z·G/S² times (validated against Table V), while the D-filter and
// B-row sharing come free inside the crossbar.
func primeInputReads(l model.Layer) float64 {
	switch l.Kind {
	case model.KindConv:
		return float64(l.Inputs()) * float64(l.Z*l.G) / float64(l.S*l.S)
	case model.KindFC:
		return float64(l.Inputs())
	}
	return 0
}

// o2irInputReads is TIMELY's only-once input-read count (Table V).
func o2irInputReads(l model.Layer) float64 {
	if !l.IsWeighted() {
		return 0
	}
	return float64(l.Inputs())
}
