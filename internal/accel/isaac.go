package accel

import (
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/params"
	"repro/internal/pipeline"
)

// Isaac is the analytic ISAAC model (Shafiee et al., ISCA 2016) as the
// TIMELY paper mimics it: 128×128 crossbars with 2-bit cells, 16-bit weights
// over 8 columns, bit-serial 16-bit inputs (one bit per 100 ns cycle), ADCs
// shared across the 128 columns of a crossbar, an eDRAM + input-register
// hierarchy per tile, and a balanced inter-layer pipeline (the model the
// paper validates its simulator's throughput against, §VI-A).
//
// Unit energies are calibrated to the Fig. 4(c) breakdown — analog
// interfaces 61 %, communication 19 %, memory 12 %, digital 8 % — with the
// VGG-D (16-bit) total anchored so TIMELY's normalized energy efficiency
// lands at the paper's Fig. 8(a) ratios (see EXPERIMENTS.md for the
// paper-vs-measured discussion of this anchor).
type Isaac struct {
	Cfg params.IsaacConfig
}

// NewIsaac returns the default ISAAC at the given chip count.
func NewIsaac(chips int) *Isaac {
	cfg := params.DefaultIsaac()
	cfg.Chips = chips
	return &Isaac{Cfg: cfg}
}

// Name implements Accelerator.
func (s *Isaac) Name() string { return "ISAAC" }

// Units returns the ISAAC unit-energy table.
func (s *Isaac) Units() map[energy.Component]float64 {
	return map[energy.Component]float64{
		energy.EDRAMRead:   params.IsaacEnergyEDRAMRead,
		energy.EDRAMWrite:  params.IsaacEnergyEDRAMRead,
		energy.IRRead:      params.IsaacEnergyIRRead,
		energy.DACConv:     params.IsaacEnergyDAC,
		energy.ADCConv:     params.IsaacEnergyADC,
		energy.CrossbarOp:  params.IsaacEnergyCrossbarOp,
		energy.ShiftAddOp:  params.IsaacEnergyShiftAdd,
		energy.BusOp:       params.IsaacEnergyCommPerValue,
		energy.HyperLinkOp: params.IsaacEnergyHT,
		energy.ReLUOp:      params.EnergyReLU,
		energy.MaxPoolOp:   params.EnergyMaxPool,
	}
}

// EvaluateLayer counts one weighted layer and returns its placement.
func (s *Isaac) EvaluateLayer(l model.Layer, led *energy.Ledger) mapping.BaselinePlacement {
	bp := mapping.PlaceBaseline(l, s.Cfg.B, s.Cfg.ColumnsPerWeight(), s.Cfg.InputBitCycles())
	outVals := float64(l.Outputs())
	// Inputs: each 16-bit input is fetched from eDRAM, staged in the input
	// register, and driven onto wordlines once per crossbar replica of its
	// rows; §III-A counts D·Z·G/S²/B such activations per input on average
	// (the per-column-group re-reads with B-row sharing).
	perInput := float64(l.D) * float64(l.Z*l.G) / float64(l.S*l.S) / float64(s.Cfg.B)
	if l.Kind == model.KindFC {
		perInput = float64(l.D) * float64(s.Cfg.ColumnsPerWeight()) / float64(s.Cfg.B)
	}
	if perInput < 1 {
		perInput = 1
	}
	nIn := float64(l.Inputs()) * perInput
	led.Add(energy.EDRAMRead, energy.ClassInput, nIn)
	led.Add(energy.IRRead, energy.ClassInput, nIn)
	led.Add(energy.DACConv, energy.ClassInput, nIn)
	// Inputs traverse the tile network to reach their crossbar replicas.
	led.Add(energy.BusOp, energy.ClassComm, nIn)
	// ADC: the 8 columns of one 16-bit weight are sampled on each of the 16
	// input-bit cycles, per vertical row chunk: 128 conversions per output
	// value per chunk.
	adc := outVals * float64(s.Cfg.ColumnsPerWeight()*s.Cfg.InputBitCycles()) * float64(bp.RowChunks)
	led.Add(energy.ADCConv, energy.ClassPsum, adc)
	led.Add(energy.ShiftAddOp, energy.ClassDigital, adc)
	// Crossbar activations: every chunk fires on every bit cycle.
	led.Add(energy.CrossbarOp, energy.ClassCompute,
		float64(bp.WavesPerImage)*float64(bp.Crossbars))
	// Outputs: written back to eDRAM and moved across the tile network.
	led.Add(energy.EDRAMWrite, energy.ClassOutput, outVals)
	led.Add(energy.BusOp, energy.ClassComm, outVals)
	led.Add(energy.ReLUOp, energy.ClassDigital, outVals)
	return bp
}

// Evaluate implements Accelerator.
func (s *Isaac) Evaluate(n *model.Network) (*Result, error) {
	led := energy.NewLedger(s.Units())
	var stages []pipeline.Stage
	for _, l := range n.Layers {
		switch {
		case l.IsWeighted():
			bp := s.EvaluateLayer(l, led)
			stages = append(stages, pipeline.Stage{
				Name: l.Name,
				// One 16-bit MAC wave occupies 22 cycles end to end (§VI-B),
				// of which InputBitCycles are already inside WavesPerImage;
				// the remaining conversion/merge cycles stretch each wave.
				Work: float64(bp.WavesPerImage) *
					float64(s.Cfg.MACLatencyCycles) / float64(s.Cfg.InputBitCycles()),
				MinUnits: bp.Crossbars,
			})
		case l.Kind == model.KindMaxPool || l.Kind == model.KindAvgPool:
			led.Add(energy.MaxPoolOp, energy.ClassDigital, float64(l.Outputs()))
		}
	}
	total := s.Cfg.Chips * s.Cfg.Crossbars
	fits := true
	inst, err := pipeline.Balance(stages, total)
	if err != nil {
		// The deployment cannot hold the whole network: run unreplicated
		// with reloads (energy stays valid; throughput optimistic).
		fits = false
		inst = make([]int, len(stages))
		for i := range inst {
			inst[i] = 1
		}
	}
	cycles := pipeline.BottleneckCycles(stages, inst)
	return &Result{
		Accelerator:    s.Name(),
		Network:        n.Name,
		Ledger:         led,
		CyclesPerImage: cycles,
		CycleTimePS:    s.Cfg.CycleTime,
		ImagesPerSec:   pipeline.Throughput(cycles, s.Cfg.CycleTime),
		Chips:          s.Cfg.Chips,
		Instances:      inst,
		Fits:           fits,
	}, nil
}
