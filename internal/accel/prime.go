package accel

import (
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/params"
	"repro/internal/pipeline"
)

// Prime is the analytic PRIME model (Chi et al., ISCA 2016) as the TIMELY
// paper mimics it: voltage-domain DAC/ADC interfaces on 256×256 mats,
// inputs re-read for every filter slide (Z·G/S² L1 reads per input,
// Table V), digital psum accumulation through buffers, outputs written to
// the second-level memory, and serial layer-by-layer execution (no
// inter-layer pipeline, §VI-A "Methodology").
//
// Unit energies are calibrated against two anchors (DESIGN.md): the VGG-D
// breakdown of Fig. 4(b) — inputs 36 %, psums+outputs 47 %, ADC 17 %,
// DAC ≈0 % — and the published 2.10 TOPs/W peak, which puts one VGG-D
// inference near 14.8 mJ.
type Prime struct {
	Cfg params.PrimeConfig
	// ALBO2IR applies TIMELY's ALB+O2IR principles inside PRIME's FF
	// subarrays (the Fig. 11 generalization experiment): inputs are read
	// once and shifted through retrofit X-subBufs, psums stay in retrofit
	// P-subBufs, everything else keeps PRIME's original components.
	ALBO2IR bool
}

// NewPrime returns the default single-chip PRIME.
func NewPrime(chips int) *Prime {
	cfg := params.DefaultPrime()
	cfg.Chips = chips
	return &Prime{Cfg: cfg}
}

// Name implements Accelerator.
func (p *Prime) Name() string {
	if p.ALBO2IR {
		return "PRIME+ALB+O2IR"
	}
	return "PRIME"
}

// Units returns the PRIME unit-energy table.
func (p *Prime) Units() map[energy.Component]float64 {
	return map[energy.Component]float64{
		energy.L1Read:     params.PrimeEnergyBufAccess,
		energy.L1Write:    params.PrimeEnergyBufAccess,
		energy.L2Read:     params.PrimeEnergyL2Read,
		energy.L2Write:    params.PrimeEnergyL2Write,
		energy.BusOp:      params.PrimeEnergyBus,
		energy.DACConv:    params.PrimeEnergyDAC,
		energy.ADCConv:    params.PrimeEnergyADC,
		energy.CrossbarOp: params.PrimeEnergyCrossbar,
		energy.ReLUOp:     params.EnergyReLU,
		energy.MaxPoolOp:  params.EnergyMaxPool,
		energy.ShiftAddOp: 25.0,
		// Retrofit ALBs at PRIME's component node (Fig. 11 setup).
		energy.XSubBufOp: params.PrimeEnergyXSubBuf,
		energy.PSubBufOp: params.PrimeEnergyPSubBuf,
	}
}

// EvaluateLayer counts one weighted layer and returns its baseline placement.
func (p *Prime) EvaluateLayer(l model.Layer, led *energy.Ledger) mapping.BaselinePlacement {
	bp := mapping.PlaceBaseline(l, p.Cfg.B, p.Cfg.ColumnsPerWeight(), 1)
	outVals := float64(l.Outputs())
	if p.ALBO2IR {
		// Fig. 11 variant: O2IR input reads (once per input), with the
		// horizontal-slide reuse flowing through retrofit X-subBufs, and
		// psum accumulation through retrofit P-subBufs instead of buffers.
		nIn := o2irInputReads(l)
		led.Add(energy.L1Read, energy.ClassInput, nIn)
		led.Add(energy.BusOp, energy.ClassInput, nIn)
		led.Add(energy.DACConv, energy.ClassInput, nIn)
		if reuse := primeInputReads(l) - nIn; reuse > 0 {
			led.Add(energy.XSubBufOp, energy.ClassInput, reuse)
		}
		if bp.RowChunks > 1 {
			led.Add(energy.PSubBufOp, energy.ClassPsum, outVals*float64(bp.RowChunks-1))
		}
		// One ADC conversion per aggregated column instead of per chunk.
		adc := outVals * float64(p.Cfg.ColumnsPerWeight())
		led.Add(energy.ADCConv, energy.ClassPsum, adc)
	} else {
		nIn := primeInputReads(l)
		// Every input read crosses the intra-bank wires (bus) into the FF
		// subarray's drivers and feeds one DAC conversion.
		led.Add(energy.L1Read, energy.ClassInput, nIn)
		led.Add(energy.BusOp, energy.ClassInput, nIn)
		led.Add(energy.DACConv, energy.ClassInput, nIn)
		// One ADC conversion per physical column per output wave per row
		// chunk; partial sums from extra chunks bounce through the buffer.
		adc := outVals * float64(p.Cfg.ColumnsPerWeight()) * float64(bp.RowChunks)
		led.Add(energy.ADCConv, energy.ClassPsum, adc)
		if bp.RowChunks > 1 {
			acc := outVals * float64(bp.RowChunks-1)
			led.Add(energy.L1Write, energy.ClassPsum, acc)
			led.Add(energy.L1Read, energy.ClassPsum, acc)
		}
	}
	led.Add(energy.ShiftAddOp, energy.ClassDigital, outVals*float64(p.Cfg.ColumnsPerWeight()))
	led.Add(energy.ReLUOp, energy.ClassDigital, outVals)
	// Outputs are written back to the mem-subarray level (L2).
	led.Add(energy.L2Write, energy.ClassOutput, outVals)
	// Crossbar activations: all chunks fire per wave.
	led.Add(energy.CrossbarOp, energy.ClassCompute,
		float64(bp.WavesPerImage)*float64(bp.Crossbars))
	return bp
}

// Evaluate implements Accelerator.
func (p *Prime) Evaluate(n *model.Network) (*Result, error) {
	led := energy.NewLedger(p.Units())
	var stages []pipeline.Stage
	for _, l := range n.Layers {
		switch {
		case l.IsWeighted():
			bp := p.EvaluateLayer(l, led)
			stages = append(stages, pipeline.Stage{
				Name:     l.Name,
				Work:     float64(bp.WavesPerImage) * float64(p.Cfg.PhasesPerWave),
				MinUnits: bp.Crossbars,
			})
		case l.Kind == model.KindMaxPool || l.Kind == model.KindAvgPool:
			led.Add(energy.MaxPoolOp, energy.ClassDigital, float64(l.Outputs()))
		}
	}
	// PRIME replicates weights at network granularity (whole extra copies of
	// the model in spare FF subarrays) and executes layers serially, so its
	// throughput is the sum of layer times over the uniform duplication
	// (§VI-B "Throughput": PRIME's memory-mode crossbar budget caps this).
	total := p.Cfg.Chips * p.Cfg.Crossbars
	need := 0
	for _, s := range stages {
		need += s.MinUnits
	}
	fits := need <= total
	dup := 1
	if fits {
		dup = total / need
	}
	inst := make([]int, len(stages))
	for i := range inst {
		inst[i] = dup
	}
	cycles := pipeline.SerialCycles(stages, inst)
	return &Result{
		Accelerator:    p.Name(),
		Network:        n.Name,
		Ledger:         led,
		CyclesPerImage: cycles,
		CycleTimePS:    p.Cfg.WaveTime,
		ImagesPerSec:   pipeline.Throughput(cycles, p.Cfg.WaveTime),
		Chips:          p.Cfg.Chips,
		Instances:      inst,
		Fits:           fits,
	}, nil
}

// IntraBankEnergy returns the intra-bank data-movement energy (fJ) the
// Fig. 11 retrofit targets: all memory movement inside the banks — buffer
// accesses, intra-bank wires, mem-subarray output writes, and the retrofit
// ALB accesses — excluding the D/A-A/D interfaces. The retrofit leaves the
// output path ("PRIME's original designs outside FF subarray") untouched.
func IntraBankEnergy(led *energy.Ledger) float64 {
	return led.Energy(energy.L1Read) + led.Energy(energy.L1Write) +
		led.Energy(energy.BusOp) +
		led.Energy(energy.L2Read) + led.Energy(energy.L2Write) +
		led.Energy(energy.XSubBufOp) + led.Energy(energy.PSubBufOp)
}
