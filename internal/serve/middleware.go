package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// Class is a deadline class shared by a group of endpoints: the total
// budget one request may spend across queue wait AND compute. Timeout 0
// means unbounded (request-context only).
type Class struct {
	Name    string
	Timeout time.Duration
}

// Info is the per-request record the middleware layers fill in; AccessLog
// creates one per request and renders it as the structured access line.
type Info struct {
	Class     string
	QueueWait time.Duration
	// Outcome classifies how the request ended: "ok", "shed",
	// "queue_deadline", "compute_deadline", "client_gone", "panic",
	// "error", "forwarded" (answered by the cluster peer owning the
	// request's key). Inner layers overwrite the default "ok".
	Outcome string
}

type infoKey struct{}

// RequestInfo returns the Info record AccessLog attached to this request's
// context, or nil outside an AccessLog-wrapped chain.
func RequestInfo(ctx context.Context) *Info {
	i, _ := ctx.Value(infoKey{}).(*Info)
	return i
}

// MarkOutcome records how the request ended in the access-log record, if
// one exists. Handlers use it to classify compute-phase failures.
func MarkOutcome(ctx context.Context, outcome string) {
	if i := RequestInfo(ctx); i != nil {
		i.Outcome = outcome
	}
}

// statusRecorder captures the status code and byte count a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards http.Flusher so streaming responses keep working.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog is the outermost layer: it creates the per-request Info
// record, times the request, and emits one structured line per request. A
// client that disconnected mid-request is logged with the nginx-style 499
// pseudo-status and counted in Metrics.ClientGone — NOT as a shed or a
// server error — so shed-rate accounting stays honest under flaky clients.
func AccessLog(logger *log.Logger, m *Metrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if m != nil {
			m.Requests.Add(1)
		}
		info := &Info{Outcome: "ok"}
		ctx := context.WithValue(r.Context(), infoKey{}, info)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		dur := time.Since(start)

		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		// A cancelled context means the client went away — but only
		// reclassify as 499 when no response was committed (or the handler
		// itself marked the request client-gone): a client that disconnects
		// right after receiving its 2xx still got served, and rewriting
		// that to client_gone would skew success accounting.
		if errors.Is(ctx.Err(), context.Canceled) &&
			(rec.status == 0 || info.Outcome == "client_gone") {
			status = StatusClientGone
			info.Outcome = "client_gone"
			if m != nil {
				m.ClientGone.Add(1)
			}
		}
		if logger != nil {
			logger.Printf("access method=%s path=%s status=%d bytes=%d dur_ms=%.1f wait_ms=%.1f class=%s outcome=%s",
				r.Method, r.URL.Path, status, rec.bytes,
				float64(dur)/float64(time.Millisecond),
				float64(info.QueueWait)/float64(time.Millisecond),
				orDash(info.Class), info.Outcome)
		}
	})
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Recover contains handler panics: the stack is logged, the client gets a
// 500 (if the response has not started), and the process lives on. The
// net/http idiom of panicking with http.ErrAbortHandler to drop a
// connection is preserved.
func Recover(logger *log.Logger, m *Metrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			if m != nil {
				m.Panics.Add(1)
			}
			MarkOutcome(r.Context(), "panic")
			if logger != nil {
				logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			}
			WriteError(w, logger, http.StatusInternalServerError, "",
				0, fmt.Errorf("internal error: the request handler panicked"))
		}()
		next.ServeHTTP(w, r)
	})
}

// Admit gates a compute endpoint behind the limiter and its deadline
// class. Shed requests get the uniform error body with Retry-After and a
// phase of "queue"; admitted requests run under a context whose deadline
// is the class budget MINUS the time already burned in queue, so a
// request that waited never gets more compute than its class promised.
func Admit(l *Limiter, class Class, m *Metrics, logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g, err := l.Acquire(r.Context(), class.Timeout)
		if err != nil {
			WriteShed(w, r, l, m, logger, err)
			return
		}
		defer g.Release()
		if m != nil {
			m.Admitted.Add(1)
			m.QueueWaitNanos.Add(int64(g.Wait))
		}
		ctx := r.Context()
		if info := RequestInfo(ctx); info != nil {
			info.Class = class.Name
			info.QueueWait = g.Wait
		}
		if class.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, class.Timeout-g.Wait)
			defer cancel()
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// WriteShed writes the admission failure response and books the metrics.
// It is exported for handlers that orchestrate admission themselves (the
// batching evaluate path acquires one slot per request GROUP, outside the
// Admit middleware) so shed responses stay uniform across both shapes.
func WriteShed(w http.ResponseWriter, r *http.Request, l *Limiter, m *Metrics, logger *log.Logger, err error) {
	if info := RequestInfo(r.Context()); info != nil {
		switch {
		case errors.Is(err, ErrQueueBudget):
			info.Outcome = "queue_deadline"
		case errors.Is(err, context.Canceled):
			info.Outcome = "client_gone"
		default:
			info.Outcome = "shed"
		}
	}
	if m != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			m.ShedQueueFull.Add(1)
		case errors.Is(err, ErrQueueWait):
			m.ShedQueueWait.Add(1)
		case errors.Is(err, ErrDraining):
			m.ShedDraining.Add(1)
		case errors.Is(err, ErrQueueBudget):
			m.QueueDeadline.Add(1)
		}
	}
	if errors.Is(err, context.Canceled) {
		// Nobody is listening; AccessLog books the 499.
		return
	}
	WriteError(w, logger, ShedStatus(err), "queue", l.RetryAfter(err), err)
}
