package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecoverConvertsPanic(t *testing.T) {
	var logBuf bytes.Buffer
	m := &Metrics{}
	h := Recover(log.New(&logBuf, "", 0), m, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Errorf("body = %q, want JSON error", rec.Body.String())
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "kaboom") || !strings.Contains(logged, "middleware_test.go") {
		t.Errorf("log %q missing panic value or stack frame", logged)
	}
	if m.Panics.Load() != 1 {
		t.Errorf("Panics = %d, want 1", m.Panics.Load())
	}
}

func TestRecoverPreservesAbortHandler(t *testing.T) {
	h := Recover(nil, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("ErrAbortHandler was swallowed; net/http relies on it propagating")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
}

func TestAccessLogLine(t *testing.T) {
	var logBuf bytes.Buffer
	m := &Metrics{}
	h := AccessLog(log.New(&logBuf, "", 0), m, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if info := RequestInfo(r.Context()); info != nil {
			info.Class = "evaluate"
			info.QueueWait = 3 * time.Millisecond
		}
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/evaluate", nil))
	line := logBuf.String()
	for _, want := range []string{"method=GET", "path=/v1/evaluate", "status=418",
		"bytes=15", "class=evaluate", "outcome=ok", "wait_ms=3.0"} {
		if !strings.Contains(line, want) {
			t.Errorf("access line %q missing %q", line, want)
		}
	}
	if m.Requests.Load() != 1 {
		t.Errorf("Requests = %d, want 1", m.Requests.Load())
	}
}

func TestAccessLogClientGone(t *testing.T) {
	var logBuf bytes.Buffer
	m := &Metrics{}
	h := AccessLog(log.New(&logBuf, "", 0), m, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Handler wrote a would-be 503, but the client vanished.
	}))
	req := httptest.NewRequest("GET", "/x", nil)
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	h.ServeHTTP(httptest.NewRecorder(), req.WithContext(ctx))
	line := logBuf.String()
	if !strings.Contains(line, "status=499") || !strings.Contains(line, "outcome=client_gone") {
		t.Errorf("access line %q, want 499 client_gone", line)
	}
	if m.ClientGone.Load() != 1 {
		t.Errorf("ClientGone = %d, want 1", m.ClientGone.Load())
	}
}

// TestAccessLogLateDisconnectKeepsStatus: a client that disconnects
// AFTER its response was fully written was served, not lost; the access
// line must keep the committed status instead of rewriting it to 499.
func TestAccessLogLateDisconnectKeepsStatus(t *testing.T) {
	var logBuf bytes.Buffer
	m := &Metrics{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h := AccessLog(log.New(&logBuf, "", 0), m, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
		cancel() // client vanishes only after the 200 was committed
	}))
	req := httptest.NewRequest("GET", "/x", nil)
	h.ServeHTTP(httptest.NewRecorder(), req.WithContext(ctx))
	line := logBuf.String()
	if !strings.Contains(line, "status=200") || !strings.Contains(line, "outcome=ok") {
		t.Errorf("access line %q, want committed 200/ok kept", line)
	}
	if m.ClientGone.Load() != 0 {
		t.Errorf("ClientGone = %d, want 0 — the response landed", m.ClientGone.Load())
	}
}

// slowHandler sleeps inside the admitted slot, interruptibly.
func slowHandler(d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(d):
			w.Write([]byte("done"))
		case <-r.Context().Done():
			WriteError(w, nil, ShedStatus(r.Context().Err()), "compute", 0, r.Context().Err())
		}
	})
}

func TestAdmitShedsWithRetryAfter(t *testing.T) {
	l := NewLimiter(1, 0, time.Second)
	m := &Metrics{}
	h := Admit(l, Class{Name: "test", Timeout: time.Second}, m, nil, slowHandler(200*time.Millisecond))

	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		// Hold the only slot via a raw grant so the test controls timing.
		g, err := l.Acquire(context.Background(), 0)
		if err != nil {
			t.Error(err)
		}
		close(started)
		<-release
		g.Release()
	}()
	<-started

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var body ErrorBody
	if err := jsonDecode(rec.Body.Bytes(), &body); err != nil || body.Phase != "queue" {
		t.Errorf("body = %+v (%v), want phase=queue", body, err)
	}
	if m.ShedQueueFull.Load() != 1 {
		t.Errorf("ShedQueueFull = %d, want 1", m.ShedQueueFull.Load())
	}
	close(release)
}

func TestAdmitSubtractsQueueWaitFromBudget(t *testing.T) {
	// One slot, held for 80ms; class budget 120ms. The queued request
	// waits ~80ms, so its compute deadline must be ~40ms away — a
	// handler needing 200ms MUST hit its deadline. If Admit granted the
	// full 120ms after the wait, the handler would finish in time and
	// this test would fail.
	l := NewLimiter(1, 2, time.Second)
	m := &Metrics{}
	h := Admit(l, Class{Name: "test", Timeout: 120 * time.Millisecond}, m, nil, slowHandler(200*time.Millisecond))

	g, err := l.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(80 * time.Millisecond)
		g.Release()
	}()
	rec := httptest.NewRecorder()
	start := time.Now()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	elapsed := time.Since(start)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (elapsed %s, body %s)", rec.Code, elapsed, rec.Body.String())
	}
	// Total wall time ≈ the class budget, NOT wait + full budget.
	if elapsed > 190*time.Millisecond {
		t.Errorf("request took %s; queue wait was not subtracted from the budget", elapsed)
	}
	if m.Admitted.Load() != 1 {
		t.Errorf("Admitted = %d, want 1", m.Admitted.Load())
	}
}

func TestWriteErrorRetryAfterFloor(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, nil, http.StatusServiceUnavailable, "queue", 200*time.Millisecond, errors.New("x"))
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want floor of 1s", got)
	}
	var body ErrorBody
	if err := jsonDecode(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.RetryAfterS != 1 || body.Phase != "queue" || body.Error != "x" {
		t.Errorf("body = %+v", body)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := &Metrics{}
	m.ShedQueueFull.Add(2)
	m.ShedQueueWait.Add(1)
	m.ShedDraining.Add(1)
	m.ClientGone.Add(5)
	if got := m.Shed(); got != 4 {
		t.Errorf("Shed = %d, want 4 (client-gone excluded)", got)
	}
	snap := m.Snapshot()
	if snap["shed_queue_full"] != 2 || snap["client_gone"] != 5 {
		t.Errorf("snapshot = %v", snap)
	}
}

// jsonDecode is a tiny helper for asserting response bodies.
func jsonDecode(raw []byte, v any) error {
	if len(raw) == 0 {
		return fmt.Errorf("empty body")
	}
	return json.Unmarshal(raw, v)
}
