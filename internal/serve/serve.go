// Package serve is the service-robustness substrate behind cmd/timelyd:
// bounded admission control with load shedding, per-endpoint deadline
// classes with queue-wait-aware budget propagation, panic containment,
// structured access logging with honest client-gone accounting, and a
// deterministic chaos fault injector for rehearsing all of the above.
//
// The package is deliberately free of any simulator knowledge: it speaks
// net/http and the uniform JSON error body, so any future daemon in this
// module (an explore-job runner, a shard router) can reuse it unchanged.
//
// Request flow through a fully wired server:
//
//	AccessLog → Recover → mux → [compute routes: Admit → Chaos → handler]
//	                          → [cheap routes:           Chaos → handler]
//
// AccessLog owns the per-request Info record (queue wait, deadline class,
// outcome) that inner layers fill in; Recover converts handler panics to
// 500s; Admit applies the Limiter and deadline Class; Chaos sits innermost
// so injected latency occupies a real concurrency slot and injected panics
// exercise the real recovery path.
package serve

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Metrics is the service counter set. All fields are atomics so one
// instance is shared by every middleware layer without locking; Snapshot
// renders the set for /metricz and tests.
type Metrics struct {
	// Requests counts every request that entered the access-log layer.
	Requests atomic.Int64
	// Admitted counts compute requests that got a concurrency slot.
	Admitted atomic.Int64
	// ShedQueueFull counts 429s from a full admission queue.
	ShedQueueFull atomic.Int64
	// ShedQueueWait counts 503s from the max-queue-wait policy.
	ShedQueueWait atomic.Int64
	// ShedDraining counts 503s shed because the server is draining.
	ShedDraining atomic.Int64
	// QueueDeadline counts 504s whose deadline budget died in queue.
	QueueDeadline atomic.Int64
	// ComputeDeadline counts 504s whose deadline budget died in compute.
	ComputeDeadline atomic.Int64
	// ClientGone counts requests abandoned by the client (access-log 499);
	// they are not shed and not server errors.
	ClientGone atomic.Int64
	// Panics counts handler panics converted to 500s by Recover.
	Panics atomic.Int64
	// QueueWaitNanos accumulates time admitted requests spent queued.
	QueueWaitNanos atomic.Int64
}

// Snapshot returns the counter values as a JSON-friendly map.
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"requests":         m.Requests.Load(),
		"admitted":         m.Admitted.Load(),
		"shed_queue_full":  m.ShedQueueFull.Load(),
		"shed_queue_wait":  m.ShedQueueWait.Load(),
		"shed_draining":    m.ShedDraining.Load(),
		"queue_deadline":   m.QueueDeadline.Load(),
		"compute_deadline": m.ComputeDeadline.Load(),
		"client_gone":      m.ClientGone.Load(),
		"panics":           m.Panics.Load(),
		"queue_wait_ms":    m.QueueWaitNanos.Load() / int64(time.Millisecond),
	}
}

// Shed reports the total number of requests shed for load reasons
// (queue full, queue-wait policy, draining) — the numerator of the shed
// rate a load balancer or the loadgen harness cares about.
func (m *Metrics) Shed() int64 {
	return m.ShedQueueFull.Load() + m.ShedQueueWait.Load() + m.ShedDraining.Load()
}

// ErrorBody is the uniform JSON error shape every endpoint speaks. Phase
// distinguishes where a deadline died ("queue" vs "compute") so clients
// can tell an overloaded server from a slow computation; RetryAfterS
// mirrors the Retry-After header for JSON-only clients.
type ErrorBody struct {
	Error       string `json:"error"`
	Phase       string `json:"phase,omitempty"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// WriteError emits the uniform JSON error body, setting Retry-After when
// retryAfter > 0. Encode failures are logged rather than discarded: by the
// time Encode runs the status line is committed, so logging is the only
// honest response left.
func WriteError(w http.ResponseWriter, logger *log.Logger, status int, phase string, retryAfter time.Duration, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if retryAfter > 0 {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(status)
	body := ErrorBody{Error: err.Error(), Phase: phase}
	if retryAfter > 0 {
		body.RetryAfterS = int(retryAfter / time.Second)
		if body.RetryAfterS < 1 {
			body.RetryAfterS = 1
		}
	}
	if eerr := json.NewEncoder(w).Encode(body); eerr != nil && logger != nil {
		logger.Printf("serve: encoding error body for %d: %v", status, eerr)
	}
}
