package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission-control errors. The HTTP mapping lives in ShedStatus: a full
// queue is the client's signal to back off hard (429), policy sheds are
// transient server states (503), and a budget that died waiting is a
// deadline failure (504) whose phase is "queue".
var (
	// ErrQueueFull: the wait queue is at capacity; shed immediately.
	ErrQueueFull = errors.New("admission queue full")
	// ErrQueueWait: the server's max-queue-wait policy expired first.
	ErrQueueWait = errors.New("max queue wait exceeded before a worker freed up")
	// ErrQueueBudget: the request's own deadline budget died in queue.
	ErrQueueBudget = errors.New("request deadline exhausted while queued")
	// ErrDraining: the server is draining for shutdown.
	ErrDraining = errors.New("server is draining")
)

// Limiter is a bounded admission controller: at most `concurrency`
// requests hold compute slots at once, at most `depth` more wait for one,
// and no request waits longer than `maxWait` (or its own deadline budget,
// whichever is smaller). Everything beyond that is shed immediately —
// the queue can never grow without bound.
type Limiter struct {
	sem      chan struct{} // buffered to concurrency: compute slots
	depth    int
	maxWait  time.Duration
	queued   atomic.Int64 // current waiters
	inflight atomic.Int64 // current slot holders
	draining atomic.Bool
	// lastQueueFull is the clock reading (unix nanos) of the most recent
	// ErrQueueFull shed; Saturated uses it when depth == 0, where "queue
	// at capacity" is vacuously true and would flap readiness.
	lastQueueFull atomic.Int64
	// now is the saturation-window clock, injectable (setClock) so the
	// window-expiry semantics are testable without real sleeps.
	now func() time.Time
}

// NewLimiter builds a limiter with `concurrency` compute slots, a wait
// queue of `depth`, and a `maxWait` queue-wait cap (0 = no cap beyond the
// request's own budget). concurrency and depth are clamped to ≥ 1 and ≥ 0.
func NewLimiter(concurrency, depth int, maxWait time.Duration) *Limiter {
	if concurrency < 1 {
		concurrency = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &Limiter{
		sem:     make(chan struct{}, concurrency),
		depth:   depth,
		maxWait: maxWait,
		now:     time.Now,
	}
}

// setClock replaces the saturation-window clock (tests only). It must
// be called before the limiter sees traffic.
func (l *Limiter) setClock(now func() time.Time) { l.now = now }

// Grant is one admitted request's hold on a compute slot. Wait is the
// time it spent queued (0 on the fast path); Release returns the slot and
// must be called exactly once.
type Grant struct {
	Wait    time.Duration
	limiter *Limiter
	done    atomic.Bool
}

// Release frees the compute slot. Safe to call at most once; a second
// call is a no-op rather than a slot leak in the other direction. The
// gauge drops BEFORE the slot frees so InFlight never reads above
// capacity (it may transiently read low, which is the harmless side).
func (g *Grant) Release() {
	if g == nil || !g.done.CompareAndSwap(false, true) {
		return
	}
	g.limiter.inflight.Add(-1)
	<-g.limiter.sem
}

// Acquire admits one request. budget is the request's total deadline
// class (0 = none): if it would expire before a slot frees up, Acquire
// fails with ErrQueueBudget so the caller can report that time died in
// queue; the residue (budget - Grant.Wait) is the caller's compute budget.
// ctx cancellation (a vanished client) aborts the wait with ctx.Err().
func (l *Limiter) Acquire(ctx context.Context, budget time.Duration) (*Grant, error) {
	if l.draining.Load() {
		return nil, ErrDraining
	}
	// Fast path: a free slot means zero queue wait.
	select {
	case l.sem <- struct{}{}:
		l.inflight.Add(1)
		return &Grant{limiter: l}, nil
	default:
	}
	// Slow path: take a queue position or shed.
	if l.queued.Add(1) > int64(l.depth) {
		l.queued.Add(-1)
		l.lastQueueFull.Store(l.now().UnixNano())
		return nil, ErrQueueFull
	}
	defer l.queued.Add(-1)

	start := time.Now()
	// The wait is bounded by server policy (maxWait) and by the request's
	// own budget; whichever is tighter decides the failure mode.
	var policy, budgetC <-chan time.Time
	if l.maxWait > 0 {
		t := time.NewTimer(l.maxWait)
		defer t.Stop()
		policy = t.C
	}
	if budget > 0 {
		t := time.NewTimer(budget)
		defer t.Stop()
		budgetC = t.C
	}
	select {
	case l.sem <- struct{}{}:
		wait := time.Since(start)
		if l.draining.Load() {
			<-l.sem
			return nil, ErrDraining
		}
		if budget > 0 && wait >= budget {
			// The slot freed up at the same instant the budget died;
			// admitting with a non-positive compute budget helps nobody.
			<-l.sem
			return nil, ErrQueueBudget
		}
		l.inflight.Add(1)
		return &Grant{Wait: wait, limiter: l}, nil
	case <-policy:
		return nil, ErrQueueWait
	case <-budgetC:
		return nil, ErrQueueBudget
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// StartDrain flips the limiter into drain mode: every subsequent Acquire
// sheds with ErrDraining. In-flight grants are unaffected — the HTTP
// server's graceful Shutdown waits for them.
func (l *Limiter) StartDrain() { l.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (l *Limiter) Draining() bool { return l.draining.Load() }

// InFlight returns the number of currently held compute slots.
func (l *Limiter) InFlight() int64 { return l.inflight.Load() }

// Queued returns the number of requests currently waiting for a slot.
func (l *Limiter) Queued() int64 { return l.queued.Load() }

// Capacity returns the slot and queue-depth configuration.
func (l *Limiter) Capacity() (concurrency, depth int) { return cap(l.sem), l.depth }

// saturationWindow bounds how long a no-queue limiter keeps reporting
// saturated after its last queue-full shed: long enough for a balancer
// probing every few hundred ms to see it, short enough that readiness
// recovers promptly once the burst passes.
const saturationWindow = time.Second

// Saturated reports whether admission is at capacity — the signal
// /readyz uses to tell a balancer to steer traffic elsewhere before
// requests start bouncing off ErrQueueFull. With a wait queue it means
// "every slot busy AND the queue full". With depth 0 the queued-based
// test is vacuously true (queued >= 0 always), so merely-busy slots
// would flap readiness under normal load; instead a no-queue limiter
// reads saturated only while requests are actively being shed.
func (l *Limiter) Saturated() bool {
	if len(l.sem) < cap(l.sem) {
		return false
	}
	if l.depth > 0 {
		return l.queued.Load() >= int64(l.depth)
	}
	last := l.lastQueueFull.Load()
	return last > 0 && l.now().Sub(time.Unix(0, last)) < saturationWindow
}

// RetryAfter suggests how long a shed client should back off before
// retrying: half the max queue wait for policy sheds (the queue drains on
// that timescale), a nominal second otherwise.
func (l *Limiter) RetryAfter(err error) time.Duration {
	switch {
	case errors.Is(err, ErrQueueWait), errors.Is(err, ErrQueueFull):
		if l.maxWait > 0 {
			if d := l.maxWait / 2; d > time.Second {
				return d
			}
		}
		return time.Second
	case errors.Is(err, ErrDraining):
		return 2 * time.Second
	}
	return 0
}

// ShedStatus maps an Acquire error to its HTTP status. Unknown errors map
// to 500 — an admission failure the caller did not enumerate is a bug.
func ShedStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return 429 // http.StatusTooManyRequests
	case errors.Is(err, ErrQueueWait), errors.Is(err, ErrDraining):
		return 503 // http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueBudget), errors.Is(err, context.DeadlineExceeded):
		return 504 // http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client gone; the status is for the access log (see StatusClientGone).
		return 499
	}
	return 500
}

// StatusClientGone is the nginx-convention access-log status for a client
// that disconnected before the response: not shed, not a server error.
const StatusClientGone = 499
