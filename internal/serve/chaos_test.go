package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
}

func TestParseChaosEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ";"} {
		c, err := ParseChaos(spec)
		if err != nil || c != nil {
			t.Errorf("ParseChaos(%q) = %v, %v; want nil, nil", spec, c, err)
		}
	}
	// A nil Chaos wraps to the identity.
	var c *Chaos
	rec := httptest.NewRecorder()
	c.Wrap(okHandler()).ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Body.String() != "ok" {
		t.Error("nil chaos altered the handler")
	}
}

func TestParseChaosErrors(t *testing.T) {
	bad := []string{
		"latency",                   // not key=value
		"route=noslash,latency=1ms", // route must start with /
		"latency=-5ms",              // negative latency
		"latency=wat",               // unparseable duration
		"error=0",                   // every-0th is meaningless
		"panic=-1",                  // negative
		"panic=x",                   // unparseable
		"flub=3",                    // unknown key
		"route=/v1/evaluate",        // rule injects nothing
	}
	for _, spec := range bad {
		if _, err := ParseChaos(spec); err == nil {
			t.Errorf("ParseChaos(%q) accepted", spec)
		}
	}
}

func TestChaosErrorSchedule(t *testing.T) {
	c, err := ParseChaos("error=3")
	if err != nil {
		t.Fatal(err)
	}
	h := c.Wrap(okHandler())
	for i := 1; i <= 9; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		wantErr := i%3 == 0
		if gotErr := rec.Code == http.StatusInternalServerError; gotErr != wantErr {
			t.Errorf("request %d: status %d, want error=%v", i, rec.Code, wantErr)
		}
	}
}

func TestChaosRouteMatching(t *testing.T) {
	c, err := ParseChaos("route=/v1/evaluate,error=1")
	if err != nil {
		t.Fatal(err)
	}
	h := c.Wrap(okHandler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("unmatched route injected: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/evaluate", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("matched route not injected: status %d", rec.Code)
	}
}

func TestChaosPanicSchedule(t *testing.T) {
	c, err := ParseChaos("panic=2")
	if err != nil {
		t.Fatal(err)
	}
	h := c.Wrap(okHandler())
	serveOnce := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
		return false
	}
	want := []bool{false, true, false, true}
	for i, w := range want {
		if got := serveOnce(); got != w {
			t.Errorf("request %d: panicked=%v, want %v", i+1, got, w)
		}
	}
}

func TestChaosLatency(t *testing.T) {
	c, err := ParseChaos("latency=50ms")
	if err != nil {
		t.Fatal(err)
	}
	h := c.Wrap(okHandler())
	start := time.Now()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Errorf("request took %s, want ≥ 50ms injected", d)
	}
}

func TestChaosLatencyRespectsContext(t *testing.T) {
	c, err := ParseChaos("latency=10s")
	if err != nil {
		t.Fatal(err)
	}
	h := c.Wrap(okHandler())
	req := httptest.NewRequest("GET", "/x", nil)
	ctx, cancel := context.WithTimeout(req.Context(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	h.ServeHTTP(httptest.NewRecorder(), req.WithContext(ctx))
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("injected latency ignored cancellation (%s)", d)
	}
}

func TestChaosString(t *testing.T) {
	var nilChaos *Chaos
	if nilChaos.String() != "off" {
		t.Errorf("nil String = %q", nilChaos.String())
	}
	c, err := ParseChaos("route=/v1/evaluate,latency=50ms,error=3;panic=7")
	if err != nil {
		t.Fatal(err)
	}
	s := c.String()
	if !strings.Contains(s, "/v1/evaluate") || !strings.Contains(s, "error=3") || !strings.Contains(s, "panic=7") {
		t.Errorf("String = %q", s)
	}
}
