package serve

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestLimiterFastPath(t *testing.T) {
	l := NewLimiter(2, 4, time.Second)
	g1, err := l.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Wait != 0 {
		t.Errorf("fast path wait = %s, want 0", g1.Wait)
	}
	g2, err := l.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.InFlight(); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}
	g1.Release()
	g2.Release()
	if got := l.InFlight(); got != 0 {
		t.Errorf("InFlight after release = %d, want 0", got)
	}
	// Double release must not free a slot twice.
	g1.Release()
	if got := l.InFlight(); got != 0 {
		t.Errorf("InFlight after double release = %d, want 0", got)
	}
}

func TestLimiterQueueFullSheds(t *testing.T) {
	l := NewLimiter(1, 1, time.Second)
	g, err := l.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits the queue...
	done := make(chan error, 1)
	go func() {
		g2, err := l.Acquire(context.Background(), 0)
		if g2 != nil {
			g2.Release()
		}
		done <- err
	}()
	// Wait until that goroutine is actually queued.
	for i := 0; l.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	// ...the next one sheds immediately.
	if _, err := l.Acquire(context.Background(), 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire: err = %v, want ErrQueueFull", err)
	}
	g.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
}

func TestLimiterMaxWaitSheds(t *testing.T) {
	l := NewLimiter(1, 4, 30*time.Millisecond)
	g, _ := l.Acquire(context.Background(), 0)
	defer g.Release()
	start := time.Now()
	_, err := l.Acquire(context.Background(), 0)
	if !errors.Is(err, ErrQueueWait) {
		t.Fatalf("err = %v, want ErrQueueWait", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond || d > 500*time.Millisecond {
		t.Errorf("shed after %s, want ≈30ms", d)
	}
}

func TestLimiterBudgetDiesInQueue(t *testing.T) {
	// Budget tighter than the queue-wait policy: the failure is the
	// request's deadline, not the server's shed policy.
	l := NewLimiter(1, 4, time.Second)
	g, _ := l.Acquire(context.Background(), 0)
	defer g.Release()
	_, err := l.Acquire(context.Background(), 20*time.Millisecond)
	if !errors.Is(err, ErrQueueBudget) {
		t.Fatalf("err = %v, want ErrQueueBudget", err)
	}
}

func TestLimiterQueuedAcquireProceeds(t *testing.T) {
	l := NewLimiter(1, 4, time.Second)
	g, _ := l.Acquire(context.Background(), 0)
	done := make(chan *Grant, 1)
	go func() {
		g2, err := l.Acquire(context.Background(), time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- g2
	}()
	for i := 0; l.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	g.Release()
	g2 := <-done
	if g2 == nil {
		t.Fatal("queued acquire returned nil grant")
	}
	if g2.Wait <= 0 {
		t.Errorf("queued wait = %s, want > 0", g2.Wait)
	}
	g2.Release()
}

func TestLimiterClientGoneAbortsWait(t *testing.T) {
	l := NewLimiter(1, 4, time.Second)
	g, _ := l.Acquire(context.Background(), 0)
	defer g.Release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := l.Acquire(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestLimiterDrain(t *testing.T) {
	l := NewLimiter(2, 4, time.Second)
	g, err := l.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	l.StartDrain()
	if _, err := l.Acquire(context.Background(), 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire during drain: err = %v, want ErrDraining", err)
	}
	// The in-flight grant is unaffected.
	g.Release()
	if !l.Draining() {
		t.Error("Draining() = false after StartDrain")
	}
}

func TestLimiterSaturated(t *testing.T) {
	l := NewLimiter(1, 0, time.Second)
	if l.Saturated() {
		t.Error("fresh limiter reports saturated")
	}
	g, _ := l.Acquire(context.Background(), 0)
	// A busy slot alone is normal operation for a no-queue limiter;
	// calling it saturated would flap /readyz under steady load.
	if l.Saturated() {
		t.Error("busy slot with zero queue depth and no sheds reads saturated")
	}
	if _, err := l.Acquire(context.Background(), 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second acquire: err = %v, want ErrQueueFull", err)
	}
	if !l.Saturated() {
		t.Error("full slots with an active queue-full shed should read saturated")
	}
	g.Release()
	if l.Saturated() {
		t.Error("released limiter still saturated")
	}
}

// TestLimiterSaturationWindowExpires pins the no-queue "recent shed"
// window against an injected clock: a queue-full shed marks the limiter
// saturated while the slots stay busy, and the mark expires after the
// saturation window WITHOUT any slot churn — previously untestable
// without a real one-second sleep, because the window read time.Now.
func TestLimiterSaturationWindowExpires(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	l := NewLimiter(1, 0, time.Second)
	l.setClock(func() time.Time { return now })

	g, _ := l.Acquire(context.Background(), 0)
	defer g.Release()
	if _, err := l.Acquire(context.Background(), 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second acquire: err = %v, want ErrQueueFull", err)
	}
	if !l.Saturated() {
		t.Fatal("no-queue limiter not saturated right after a queue-full shed")
	}
	// Just inside the window: still saturated.
	now = now.Add(saturationWindow - time.Nanosecond)
	if !l.Saturated() {
		t.Error("saturation mark expired before the window elapsed")
	}
	// At the window boundary: the mark expires even though the slot is
	// still held — bouncing stopped, so /readyz must recover.
	now = now.Add(time.Nanosecond)
	if l.Saturated() {
		t.Error("saturation mark outlived the window")
	}
	// A fresh shed re-arms the window at the new clock reading.
	if _, err := l.Acquire(context.Background(), 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire: err = %v, want ErrQueueFull", err)
	}
	if !l.Saturated() {
		t.Error("fresh shed did not re-arm the saturation window")
	}
}

func TestLimiterSaturatedWithQueue(t *testing.T) {
	l := NewLimiter(1, 1, time.Second)
	g, _ := l.Acquire(context.Background(), 0)
	if l.Saturated() {
		t.Error("busy slot with an empty queue reads saturated")
	}
	// Park one waiter to fill the queue.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		l.Acquire(ctx, 0)
	}()
	<-started
	deadline := time.Now().Add(2 * time.Second)
	for l.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !l.Saturated() {
		t.Error("full slots + full queue should read saturated")
	}
	cancel()
	<-done
	g.Release()
	if l.Saturated() {
		t.Error("drained limiter still saturated")
	}
}

func TestLimiterConcurrencyInvariant(t *testing.T) {
	// Hammer the limiter from many goroutines and assert the slot
	// invariant holds throughout: in-flight never exceeds capacity.
	l := NewLimiter(3, 8, 50*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := l.Acquire(context.Background(), 0)
			if err != nil {
				return // shed is fine; the invariant is about admits
			}
			if got := l.InFlight(); got > 3 {
				t.Errorf("InFlight = %d > 3", got)
			}
			time.Sleep(time.Millisecond)
			g.Release()
		}()
	}
	wg.Wait()
	if got := l.InFlight(); got != 0 {
		t.Errorf("InFlight after drain = %d, want 0", got)
	}
	if got := l.Queued(); got != 0 {
		t.Errorf("Queued after drain = %d, want 0", got)
	}
}

func TestShedStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrQueueFull, http.StatusTooManyRequests},
		{ErrQueueWait, http.StatusServiceUnavailable},
		{ErrDraining, http.StatusServiceUnavailable},
		{ErrQueueBudget, http.StatusGatewayTimeout},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, StatusClientGone},
		{errors.New("mystery"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := ShedStatus(tc.err); got != tc.want {
			t.Errorf("ShedStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestRetryAfterSuggestions(t *testing.T) {
	l := NewLimiter(1, 1, 10*time.Second)
	if d := l.RetryAfter(ErrQueueFull); d != 5*time.Second {
		t.Errorf("queue full retry = %s, want 5s (half max wait)", d)
	}
	if d := l.RetryAfter(ErrDraining); d != 2*time.Second {
		t.Errorf("draining retry = %s, want 2s", d)
	}
	if d := l.RetryAfter(context.Canceled); d != 0 {
		t.Errorf("canceled retry = %s, want 0", d)
	}
	short := NewLimiter(1, 1, 100*time.Millisecond)
	if d := short.RetryAfter(ErrQueueWait); d != time.Second {
		t.Errorf("short max-wait retry = %s, want 1s floor", d)
	}
}
