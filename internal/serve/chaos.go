package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Chaos is a deterministic fault injector for rehearsing the shedding,
// deadline and panic-recovery paths. It is configured from a compact spec
// string (the timelyd -chaos flag) of semicolon-separated rules; each
// rule is comma-separated key=value pairs:
//
//	route=/v1/evaluate,latency=50ms,error=3,panic=7
//
//	route=PREFIX   match request paths by prefix (default: every path)
//	latency=DUR    add DUR of latency to every matched request
//	error=N        fail every Nth matched request with a 500 (N ≥ 1)
//	panic=N        panic on every Nth matched request (N ≥ 1)
//
// Counters are per-rule and deterministic: with error=3 exactly requests
// 3, 6, 9, … of that rule fail, so tests assert exact behavior instead of
// sampling probabilities. Injected latency sits INSIDE the admission slot:
// Wrap applies it in the innermost handler, and the batching evaluate path
// — where the handler no longer holds the slot itself — calls SleepLatency
// from the group executor while it owns the slot. Either way it is the
// supported way to saturate the limiter in tests without burning real
// compute.
type Chaos struct {
	rules []*chaosRule
}

type chaosRule struct {
	route      string
	latency    time.Duration
	errEvery   uint64
	panicEvery uint64
	count      atomic.Uint64
}

// ParseChaos parses the -chaos flag spec. An empty spec yields a nil
// Chaos, whose Wrap is the identity.
func ParseChaos(spec string) (*Chaos, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	c := &Chaos{}
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		rule := &chaosRule{}
		for _, kv := range strings.Split(rs, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("chaos: %q is not key=value", kv)
			}
			switch key {
			case "route":
				if !strings.HasPrefix(val, "/") {
					return nil, fmt.Errorf("chaos: route %q must start with /", val)
				}
				rule.route = val
			case "latency":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("chaos: bad latency %q", val)
				}
				rule.latency = d
			case "error", "panic":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("chaos: %s=%q wants an integer ≥ 1", key, val)
				}
				if key == "error" {
					rule.errEvery = n
				} else {
					rule.panicEvery = n
				}
			default:
				return nil, fmt.Errorf("chaos: unknown key %q (want route, latency, error, panic)", key)
			}
		}
		if rule.latency == 0 && rule.errEvery == 0 && rule.panicEvery == 0 {
			return nil, fmt.Errorf("chaos: rule %q injects nothing", rs)
		}
		c.rules = append(c.rules, rule)
	}
	if len(c.rules) == 0 {
		return nil, nil
	}
	return c, nil
}

// String renders the active rules for the startup log.
func (c *Chaos) String() string {
	if c == nil {
		return "off"
	}
	parts := make([]string, 0, len(c.rules))
	for _, r := range c.rules {
		route := r.route
		if route == "" {
			route = "/*"
		}
		parts = append(parts, fmt.Sprintf("%s{latency=%s,error=%d,panic=%d}",
			route, r.latency, r.errEvery, r.panicEvery))
	}
	return strings.Join(parts, ";")
}

// Wrap applies the injector to a handler. Injection order per matched
// request: latency (interruptible by context cancellation), then panic,
// then error — a panic rule fires even when an error rule also matches,
// because panics are the rarer, more valuable rehearsal.
func (c *Chaos) Wrap(next http.Handler) http.Handler {
	if c == nil || len(c.rules) == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, rule := range c.rules {
			if rule.route != "" && !strings.HasPrefix(r.URL.Path, rule.route) {
				continue
			}
			n := rule.count.Add(1)
			if rule.latency > 0 {
				t := time.NewTimer(rule.latency)
				select {
				case <-t.C:
				case <-r.Context().Done():
					t.Stop()
				}
			}
			if rule.panicEvery > 0 && n%rule.panicEvery == 0 {
				panic(fmt.Sprintf("chaos: injected panic (request %d on %s)", n, r.URL.Path))
			}
			if rule.errEvery > 0 && n%rule.errEvery == 0 {
				MarkOutcome(r.Context(), "error")
				WriteError(w, nil, http.StatusInternalServerError, "", 0,
					fmt.Errorf("chaos: injected error (request %d on %s)", n, r.URL.Path))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// WrapFaults applies only the error/panic injections, advancing the same
// per-rule counters Wrap does. The batching evaluate path uses it at the
// handler layer (inside Recover, before cache lookup and coalescing) so
// the every-Nth schedules stay per-REQUEST, while its latency runs in the
// group executor via SleepLatency.
func (c *Chaos) WrapFaults(next http.Handler) http.Handler {
	if c == nil || len(c.rules) == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, rule := range c.rules {
			if rule.route != "" && !strings.HasPrefix(r.URL.Path, rule.route) {
				continue
			}
			n := rule.count.Add(1)
			if rule.panicEvery > 0 && n%rule.panicEvery == 0 {
				panic(fmt.Sprintf("chaos: injected panic (request %d on %s)", n, r.URL.Path))
			}
			if rule.errEvery > 0 && n%rule.errEvery == 0 {
				MarkOutcome(r.Context(), "error")
				WriteError(w, nil, http.StatusInternalServerError, "", 0,
					fmt.Errorf("chaos: injected error (request %d on %s)", n, r.URL.Path))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// SleepLatency blocks for the injected latency of every rule matching
// path (interruptible by ctx). It does not advance rule counters —
// latency fires on every match; the counters only schedule error/panic —
// so a group executor can apply it while holding the compute slot without
// skewing the fault schedules WrapFaults drives.
func (c *Chaos) SleepLatency(ctx context.Context, path string) {
	if c == nil {
		return
	}
	for _, rule := range c.rules {
		if rule.latency == 0 || (rule.route != "" && !strings.HasPrefix(path, rule.route)) {
			continue
		}
		t := time.NewTimer(rule.latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return
		}
	}
}
