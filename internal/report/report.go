// Package report renders the experiment results as aligned text tables,
// CSV, and JSON — the output formats of the cmd/timely harness and the
// examples.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row. Short rows pad with empty cells; long rows extend the
// header width with blanks.
func (t *Table) Add(cells ...string) *Table {
	t.Rows = append(t.Rows, cells)
	return t
}

// AddF appends one row of formatted values: strings pass through, float64
// render with %.4g, ints with %d.
func (t *Table) AddF(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	return t.Add(row...)
}

func (t *Table) widths() []int {
	n := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	return w
}

// Render writes the table with aligned columns.
func (t *Table) Render(out io.Writer) error {
	w := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(out, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(w))
		for i := range w {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, w[i])
		}
		_, err := fmt.Fprintf(out, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(w))
	for i := range rule {
		rule[i] = strings.Repeat("-", w[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as comma-separated values. Cells containing a
// comma, double quote or newline are quoted, with embedded quotes doubled
// (RFC 4180 escaping); the title is not written.
func (t *Table) RenderCSV(out io.Writer) error {
	write := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(out, strings.Join(quoted, ","))
		return err
	}
	if err := write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := write(r); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON writes the table as an indented JSON object with "title",
// "headers" and "rows" keys, followed by a newline.
func (t *Table) RenderJSON(out io.Writer) error {
	return writeJSON(out, t)
}

// Document is a titled group of tables — the machine-readable form of one
// experiment artifact (one figure or table of the paper).
type Document struct {
	// ID is the artifact's CLI name (fig4, table5, ...).
	ID string `json:"id"`
	// Title names the paper artifact ("Fig. 4(a-c)").
	Title string `json:"title,omitempty"`
	// Description summarises what the artifact shows.
	Description string `json:"description,omitempty"`
	// Tables holds the artifact's tables in render order.
	Tables []*Table `json:"tables"`
}

// RenderJSON writes the document as indented JSON followed by a newline.
func (d *Document) RenderJSON(out io.Writer) error {
	return writeJSON(out, d)
}

// WriteDocumentsJSON writes the documents as one indented JSON array
// followed by a newline.
func WriteDocumentsJSON(out io.Writer, docs []*Document) error {
	return writeJSON(out, docs)
}

func writeJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// Millions formats a count as “12.34 M”.
func Millions(v float64) string { return fmt.Sprintf("%.2f M", v/1e6) }

// MJ formats femtojoules as millijoules.
func MJ(fj float64) string { return fmt.Sprintf("%.3f mJ", fj*1e-12) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// X formats an improvement factor.
func X(v float64) string { return fmt.Sprintf("%.1fx", v) }
