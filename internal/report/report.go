// Package report renders the experiment results as aligned text tables and
// simple CSV, the output format of the cmd/timely harness and the examples.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row. Short rows pad with empty cells; long rows extend the
// header width with blanks.
func (t *Table) Add(cells ...string) *Table {
	t.Rows = append(t.Rows, cells)
	return t
}

// AddF appends one row of formatted values: strings pass through, float64
// render with %.4g, ints with %d.
func (t *Table) AddF(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	return t.Add(row...)
}

func (t *Table) widths() []int {
	n := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	return w
}

// Render writes the table with aligned columns.
func (t *Table) Render(out io.Writer) error {
	w := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(out, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(w))
		for i := range w {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, w[i])
		}
		_, err := fmt.Fprintf(out, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(w))
	for i := range rule {
		rule[i] = strings.Repeat("-", w[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as comma-separated values (no escaping beyond
// quoting cells that contain commas).
func (t *Table) RenderCSV(out io.Writer) error {
	write := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(out, strings.Join(quoted, ","))
		return err
	}
	if err := write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := write(r); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// Millions formats a count as “12.34 M”.
func Millions(v float64) string { return fmt.Sprintf("%.2f M", v/1e6) }

// MJ formats femtojoules as millijoules.
func MJ(fj float64) string { return fmt.Sprintf("%.3f mJ", fj*1e-12) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// X formats an improvement factor.
func X(v float64) string { return fmt.Sprintf("%.1fx", v) }
