package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("title", "a", "bb")
	tb.Add("xxx", "y")
	tb.Add("z", "wwww")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5 (title, header, rule, 2 rows)", len(lines))
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("missing rule: %q", lines[2])
	}
}

func TestAddFFormats(t *testing.T) {
	tb := New("", "c")
	tb.AddF("s", 1.5, 7, int64(9), struct{}{})
	row := tb.Rows[0]
	if row[0] != "s" || row[1] != "1.5" || row[2] != "7" || row[3] != "9" {
		t.Errorf("AddF row = %v", row)
	}
}

func TestShortAndLongRows(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add("only")
	tb.Add("1", "2", "3")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3") {
		t.Errorf("long row truncated: %q", buf.String())
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add("x,y", "plain")
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",plain\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if got := Millions(28.9e6); got != "28.90 M" {
		t.Errorf("Millions = %q", got)
	}
	if got := MJ(14.8e12); got != "14.800 mJ" {
		t.Errorf("MJ = %q", got)
	}
	if got := Pct(0.889); got != "88.9%" {
		t.Errorf("Pct = %q", got)
	}
	if got := X(15.62); got != "15.6x" {
		t.Errorf("X = %q", got)
	}
}
