package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("title", "a", "bb")
	tb.Add("xxx", "y")
	tb.Add("z", "wwww")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5 (title, header, rule, 2 rows)", len(lines))
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("missing rule: %q", lines[2])
	}
}

func TestAddFFormats(t *testing.T) {
	tb := New("", "c")
	tb.AddF("s", 1.5, 7, int64(9), struct{}{})
	row := tb.Rows[0]
	if row[0] != "s" || row[1] != "1.5" || row[2] != "7" || row[3] != "9" {
		t.Errorf("AddF row = %v", row)
	}
}

func TestShortAndLongRows(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add("only")
	tb.Add("1", "2", "3")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3") {
		t.Errorf("long row truncated: %q", buf.String())
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add("x,y", "plain")
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",plain\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestRenderJSONRoundTrips(t *testing.T) {
	tb := New("quoted \"title\"", "a", "b")
	tb.Add("x,y", "line1\nline2")
	var buf bytes.Buffer
	if err := tb.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("RenderJSON produced invalid JSON: %v", err)
	}
	if got.Title != tb.Title || len(got.Rows) != 1 || got.Rows[0][1] != "line1\nline2" {
		t.Errorf("round trip = %+v", got)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Errorf("JSON output not newline-terminated")
	}
}

func TestDocumentRenderJSON(t *testing.T) {
	d := &Document{
		ID:          "fig0",
		Title:       "Fig. 0",
		Description: "demo",
		Tables:      []*Table{New("t", "h").Add("v")},
	}
	var buf bytes.Buffer
	if err := d.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Document
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if got.ID != "fig0" || len(got.Tables) != 1 || got.Tables[0].Rows[0][0] != "v" {
		t.Errorf("round trip = %+v", got)
	}

	var arr bytes.Buffer
	if err := WriteDocumentsJSON(&arr, []*Document{d, d}); err != nil {
		t.Fatal(err)
	}
	var docs []Document
	if err := json.Unmarshal(arr.Bytes(), &docs); err != nil {
		t.Fatalf("invalid JSON array: %v", err)
	}
	if len(docs) != 2 {
		t.Errorf("array length = %d", len(docs))
	}
}

func TestFormatters(t *testing.T) {
	if got := Millions(28.9e6); got != "28.90 M" {
		t.Errorf("Millions = %q", got)
	}
	if got := MJ(14.8e12); got != "14.800 mJ" {
		t.Errorf("MJ = %q", got)
	}
	if got := Pct(0.889); got != "88.9%" {
		t.Errorf("Pct = %q", got)
	}
	if got := X(15.62); got != "15.6x" {
		t.Errorf("X = %q", got)
	}
}
