package experiments

import (
	"context"

	"repro/internal/energy"
	"repro/internal/params"
	"repro/internal/report"
)

// Fig9 bundles the effectiveness analysis of TIMELY's innovations on VGG-D
// vs PRIME (Fig. 9(a-e)).
type Fig9 struct {
	// PrimeTotalFJ / TimelyTotalFJ are per-image energies.
	PrimeTotalFJ, TimelyTotalFJ float64
	// SavingALBO2IR / SavingTDI split the total saving (Fig. 9(a)): TDI's
	// share is the increment of swapping DAC/ADC for DTC/TDC at TIMELY's
	// (already ALB/O2IR-reduced) conversion counts; the rest is ALB+O2IR.
	SavingALBO2IR, SavingTDI float64
	// Interface energies (Fig. 9(b)).
	PrimeInterfaceFJ, TimelyInterfaceFJ float64
	// Memory energy by level (Fig. 9(c)).
	PrimeByLevel, TimelyByLevel map[energy.Level]float64
	// Movement energy by data type (Fig. 9(d)) and reductions.
	PrimeByClass, TimelyByClass map[energy.Class]float64
}

// RunFig9 evaluates both accelerators on VGG-D and derives every panel.
func RunFig9(ctx context.Context) (*Fig9, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pr, err := evalPrime(1, "VGG-D")
	if err != nil {
		return nil, err
	}
	t8, err := evalTimely(8, 1, "VGG-D")
	if err != nil {
		return nil, err
	}
	f := &Fig9{
		PrimeTotalFJ:      pr.Ledger.Total(),
		TimelyTotalFJ:     t8.Ledger.Total(),
		PrimeInterfaceFJ:  pr.Ledger.InterfaceEnergy(),
		TimelyInterfaceFJ: t8.Ledger.InterfaceEnergy(),
		PrimeByLevel:      map[energy.Level]float64{},
		TimelyByLevel:     map[energy.Level]float64{},
		PrimeByClass:      map[energy.Class]float64{},
		TimelyByClass:     map[energy.Class]float64{},
	}
	for _, lv := range []energy.Level{energy.LevelALB, energy.LevelL1, energy.LevelL2, energy.LevelL3} {
		f.PrimeByLevel[lv] = pr.Ledger.ByLevel(lv)
		f.TimelyByLevel[lv] = t8.Ledger.ByLevel(lv)
	}
	for _, cl := range []energy.Class{energy.ClassInput, energy.ClassPsum, energy.ClassOutput} {
		f.PrimeByClass[cl] = pr.Ledger.MovementByClass(cl)
		f.TimelyByClass[cl] = t8.Ledger.MovementByClass(cl)
	}
	// Fig. 9(a) decomposition: price TIMELY's conversion counts at
	// voltage-domain unit energies to isolate TDI's increment.
	tdcCount := t8.Ledger.Count(energy.TDCConv)
	dtcCount := t8.Ledger.Count(energy.DTCConv)
	timelyWithDACADC := f.TimelyTotalFJ - f.TimelyInterfaceFJ +
		dtcCount*params.EnergyDAC + tdcCount*params.EnergyADC
	totalSaving := f.PrimeTotalFJ - f.TimelyTotalFJ
	f.SavingTDI = (timelyWithDACADC - f.TimelyTotalFJ) / totalSaving
	f.SavingALBO2IR = 1 - f.SavingTDI
	return f, nil
}

func runFig9(ctx context.Context, _ Env) ([]*report.Table, error) {
	f, err := RunFig9(ctx)
	if err != nil {
		return nil, err
	}
	a := report.New("Fig. 9(a): breakdown of TIMELY's energy savings over PRIME (VGG-D)",
		"feature", "share of savings")
	a.Add("ALB + O2IR", report.Pct(f.SavingALBO2IR))
	a.Add("TDI", report.Pct(f.SavingTDI))

	b := report.New("Fig. 9(b): interfacing energy", "design", "energy", "reduction")
	b.Add("PRIME (DAC+ADC)", report.MJ(f.PrimeInterfaceFJ), "-")
	b.Add("TIMELY (DTC+TDC)", report.MJ(f.TimelyInterfaceFJ),
		report.Pct(1-f.TimelyInterfaceFJ/f.PrimeInterfaceFJ))

	c := report.New("Fig. 9(c): memory-access energy by level",
		"level", "PRIME", "TIMELY")
	var pm, tm float64
	for _, lv := range []energy.Level{energy.LevelALB, energy.LevelL1, energy.LevelL2, energy.LevelL3} {
		c.Add(lv.String(), report.MJ(f.PrimeByLevel[lv]), report.MJ(f.TimelyByLevel[lv]))
		pm += f.PrimeByLevel[lv]
		tm += f.TimelyByLevel[lv]
	}
	c.Add("total", report.MJ(pm), report.MJ(tm))
	c.Add("reduction", "-", report.Pct(1-tm/pm))

	d := report.New("Fig. 9(d): data-movement energy by data type",
		"data type", "PRIME", "TIMELY", "reduction")
	for _, cl := range []energy.Class{energy.ClassPsum, energy.ClassInput, energy.ClassOutput} {
		p, t := f.PrimeByClass[cl], f.TimelyByClass[cl]
		d.Add(cl.String(), report.MJ(p), report.MJ(t), report.Pct(1-t/p))
	}

	e := report.New("Fig. 9(e): contributing factors", "energy reduction of", "contributors")
	e.Add("psum accesses", "P-subBufs")
	e.Add("input reads", "X-subBufs & O2IR (fetch once, shift locally)")
	e.Add("output writes", "no L2 level (146.7x/6.9x costlier reads/writes removed)")
	return []*report.Table{a, b, c, d, e}, nil
}

func init() {
	register(Experiment{
		ID:          "fig9",
		Paper:       "Fig. 9(a-e)",
		Description: "effectiveness of ALB, TDI and O2IR on VGG-D vs PRIME",
		Run:         runFig9,
	})
}
