package experiments

import (
	"context"
	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/report"
)

// LayerRow is one VGG-D layer's placement, energy and cycle profile on
// TIMELY — the working table behind the Fig. 8/9 aggregates.
type LayerRow struct {
	Layer string
	// Rows / Copies / SubChips summarise the O2IR placement.
	Rows, Copies, SubChips int
	// Cycles is the per-instance pipeline-cycle count per image.
	Cycles int64
	// EnergyFJ is the layer's energy contribution per image.
	EnergyFJ float64
	// InputReads is the L1 read count (the Table V quantity).
	InputReads float64
}

// LayerProfile evaluates one network layer by layer on 8-bit TIMELY.
func LayerProfile(name string) ([]LayerRow, error) {
	n, err := network(name)
	if err != nil {
		return nil, err
	}
	t := accel.NewTimely(8, 1)
	var rows []LayerRow
	for _, l := range n.WeightedLayers() {
		led := energy.NewLedger(t.Units())
		p := t.EvaluateLayer(l, led)
		rows = append(rows, LayerRow{
			Layer:      l.Name,
			Rows:       p.Rows,
			Copies:     p.VerticalCopies,
			SubChips:   p.SubChips,
			Cycles:     p.CyclesPerImage,
			EnergyFJ:   led.Total(),
			InputReads: led.CountClass(energy.L1Read, energy.ClassInput),
		})
	}
	return rows, nil
}

func runLayers(context.Context, Env) ([]*report.Table, error) {
	rows, err := LayerProfile("VGG-D")
	if err != nil {
		return nil, err
	}
	t := report.New("Per-layer TIMELY profile, VGG-D (8-bit, one instance)",
		"layer", "dot rows", "O2IR copies", "sub-chips", "cycles/img", "energy", "L1 input reads")
	var totE float64
	for _, r := range rows {
		t.AddF(r.Layer, r.Rows, r.Copies, r.SubChips, r.Cycles,
			report.MJ(r.EnergyFJ), report.Millions(r.InputReads))
		totE += r.EnergyFJ
	}
	t.Add("total", "", "", "", "", report.MJ(totE), "")
	return []*report.Table{t}, nil
}

func init() {
	register(Experiment{
		ID:          "layers",
		Paper:       "per-layer detail",
		Description: "VGG-D layer-by-layer placement, cycles and energy on TIMELY",
		Run:         runLayers,
	})
}
