package experiments

import (
	"context"
	"fmt"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/params"
	"repro/internal/stats"
)

// Batched experiment executors: several requests that differ ONLY in their
// Monte-Carlo seed run as one fused trial grid — members × trials units
// through a single parallelEach — so a batch occupies the worker budget as
// one wave instead of queueing member-by-member, and each mapped model
// evaluates its test set through the image-batched matrix–matrix path
// (workload.AccuracyBatch). Per-trial RNG streams are keyed by (seed,
// trial) alone in every sampling regime (counter substreams under v3,
// additive seed derivation under v1/v2 — see trialRNG), so the fusion
// cannot change any draw: each member's result is byte-identical to
// running it alone. The single-seed entry points delegate here with a
// one-member batch.

// AnalogMLPAccuracyBatch runs the §VI-B accuracy study for every seed in
// one fused grid at shared (trials, epsPS, sampler). Results are returned
// in seed order, each byte-identical to AnalogMLPAccuracy at that seed.
func AnalogMLPAccuracyBatch(ctx context.Context, seeds []uint64, trials int, epsPS float64, sampler stats.SamplerVersion) ([]*AccuracyResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: empty seed batch")
	}
	if trials < 1 {
		return nil, fmt.Errorf("experiments: trials must be >= 1, got %d", trials)
	}
	sampler = sampler.Resolve()
	// Train (or fetch) each member's classifier first — memoized per seed,
	// shared across members and with the sweep experiments.
	tms := make([]*trainedMLP, len(seeds))
	err := parallelEach(ctx, len(seeds), func(m int) error {
		tm, err := accuracyMLP(seeds[m])
		if err != nil {
			return err
		}
		tms[m] = tm
		return nil
	})
	if err != nil {
		return nil, err
	}
	// One wave over the full members × trials grid. Unit (m, t) is exactly
	// the unit AnalogMLPAccuracy(seeds[m], ...) runs for trial t: the same
	// trial-keyed RNG, the same mapping options, the same test set.
	accs := make([]float64, len(seeds)*trials)
	err = parallelEach(ctx, len(accs), func(i int) error {
		m, trial := i/trials, i%trials
		seed := seeds[m]
		noise := analog.DefaultNoiseRNG(trialRNG(seed, trial, seed+uint64(trial)*7919, sampler))
		noise.XSubBufSigma = epsPS
		a, err := tms[m].q.MapAnalog(core.Options{
			Noise:         noise,
			InterfaceBits: 24,
			InputHops:     params.MaxCascadedXSubBufs, // worst-case cascade (§V)
		})
		if err != nil {
			return err
		}
		acc, err := a.AccuracyBatch(tms[m].test)
		if err != nil {
			return err
		}
		accs[i] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*AccuracyResult, len(seeds))
	for m := range seeds {
		tm := tms[m]
		res := &AccuracyResult{
			FloatAcc:       tm.m.Accuracy(tm.test),
			IntAcc:         tm.q.AccuracyInt(tm.test),
			CascadeErrorPS: analog.CascadeErrorBound(params.MaxCascadedXSubBufs, epsPS),
			MarginPS:       params.TDelMargin,
			Trials:         trials,
			Sampler:        sampler,
		}
		member := accs[m*trials : (m+1)*trials]
		sum := 0.0
		for _, acc := range member {
			sum += acc
		}
		res.AnalogAcc = sum / float64(trials)
		res.Loss = res.IntAcc - res.AnalogAcc
		var pcts [3]float64
		stats.PercentilesInto(member, []float64{10, 50, 90}, pcts[:])
		res.AccP10, res.AccP50, res.AccP90 = pcts[0], pcts[1], pcts[2]
		out[m] = res
	}
	return out, nil
}

// AnalogCNNAccuracyBatch runs the defect study for every seed in one
// fused grid at shared (trials, faultRate, sampler). Results are returned
// in seed order, each byte-identical to AnalogCNNAccuracy at that seed.
func AnalogCNNAccuracyBatch(ctx context.Context, seeds []uint64, trials int, faultRate float64, sampler stats.SamplerVersion) ([]*DefectResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: empty seed batch")
	}
	if trials < 1 {
		return nil, fmt.Errorf("experiments: trials must be >= 1, got %d", trials)
	}
	sampler = sampler.Resolve()
	tcs := make([]*trainedCNN, len(seeds))
	err := parallelEach(ctx, len(seeds), func(m int) error {
		tc, err := defectCNN(seeds[m])
		if err != nil {
			return err
		}
		tcs[m] = tc
		return nil
	})
	if err != nil {
		return nil, err
	}
	type unit struct {
		acc    float64
		faults int
	}
	units := make([]unit, len(seeds)*trials)
	err = parallelEach(ctx, len(units), func(i int) error {
		m, d := i/trials, i%trials
		seed := seeds[m]
		a, err := tcs[m].cnn.MapAnalog(core.Options{
			Noise:         &analog.Noise{RNG: trialRNG(seed, d, seed+uint64(d)*101+1, sampler)},
			InterfaceBits: 24,
		}, faultRate)
		if err != nil {
			return err
		}
		acc, err := a.AccuracyBatch(tcs[m].test)
		if err != nil {
			return err
		}
		units[i] = unit{acc: acc, faults: a.Faults()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*DefectResult, len(seeds))
	for m := range seeds {
		tc := tcs[m]
		res := &DefectResult{IntAcc: tc.cnn.AccuracyInt(tc.test), Trials: trials, Sampler: sampler}
		sum, faults := 0.0, 0
		member := make([]float64, trials)
		for d := 0; d < trials; d++ {
			u := units[m*trials+d]
			sum += u.acc
			faults += u.faults
			member[d] = u.acc
		}
		res.AnalogAcc = sum / float64(trials)
		res.Faults = faults / trials
		var pcts [3]float64
		stats.PercentilesInto(member, []float64{10, 50, 90}, pcts[:])
		res.AccP10, res.AccP50, res.AccP90 = pcts[0], pcts[1], pcts[2]
		out[m] = res
	}
	return out, nil
}
