package experiments

import (
	"context"
	"fmt"

	"repro/internal/accel"
	"repro/internal/report"
	"repro/internal/stats"
)

// Fig8aRow is one benchmark's normalized energy efficiency (Fig. 8(a)).
type Fig8aRow struct {
	Network string
	// OverPrime is TIMELY-8's energy-efficiency gain over PRIME (8-bit
	// comparison, footnote a); OverIsaac is TIMELY-16 over ISAAC.
	OverPrime, OverIsaac float64
}

// Fig8a evaluates the full Table III suite and appends the geometric means
// the paper reports (10.0× over PRIME, 14.8× over ISAAC). Cancellation is
// checked between benchmarks.
func Fig8a(ctx context.Context) ([]Fig8aRow, Fig8aRow, error) {
	var rows []Fig8aRow
	var primes, isaacs []float64
	for _, n := range benchmarks() {
		if err := ctx.Err(); err != nil {
			return nil, Fig8aRow{}, err
		}
		t8, err := evalTimely(8, 1, n.Name)
		if err != nil {
			return nil, Fig8aRow{}, fmt.Errorf("timely-8 %s: %w", n.Name, err)
		}
		pr, err := evalPrime(1, n.Name)
		if err != nil {
			return nil, Fig8aRow{}, fmt.Errorf("prime %s: %w", n.Name, err)
		}
		t16, err := evalTimely(16, 1, n.Name)
		if err != nil {
			return nil, Fig8aRow{}, fmt.Errorf("timely-16 %s: %w", n.Name, err)
		}
		is, err := evalIsaac(1, n.Name)
		if err != nil {
			return nil, Fig8aRow{}, fmt.Errorf("isaac %s: %w", n.Name, err)
		}
		row := Fig8aRow{
			Network:   n.Name,
			OverPrime: pr.Ledger.Total() / t8.Ledger.Total(),
			OverIsaac: is.Ledger.Total() / t16.Ledger.Total(),
		}
		rows = append(rows, row)
		primes = append(primes, row.OverPrime)
		isaacs = append(isaacs, row.OverIsaac)
	}
	geo := Fig8aRow{
		Network:   "geomean",
		OverPrime: stats.GeoMean(primes),
		OverIsaac: stats.GeoMean(isaacs),
	}
	return rows, geo, nil
}

// Fig8bRow is one CNN × chip-count throughput comparison (Fig. 8(b)).
type Fig8bRow struct {
	Network string
	Chips   int
	// TimelyIPS / PrimeIPS / IsaacIPS are images per second.
	TimelyIPS, PrimeIPS, IsaacIPS float64
	// OverPrime / OverIsaac are TIMELY's normalized throughputs.
	OverPrime, OverIsaac float64
}

// fig8bNetworks are the 8 CNNs with published weight-duplication ratios
// (Table III's VGG and MSRA families).
func fig8bNetworks() []string {
	return []string{"VGG-D", "VGG-1", "VGG-2", "VGG-3", "VGG-4", "MSRA-1", "MSRA-2", "MSRA-3"}
}

// Fig8b runs the throughput comparison across {16,32,64}-chip deployments.
// The PRIME panel pits TIMELY-8 with uniform network duplication against
// PRIME's serial execution; the ISAAC panel gives TIMELY-16 ISAAC's own
// balanced duplication ratios, per the paper's methodology (§VI-B).
func Fig8b(ctx context.Context) ([]Fig8bRow, error) {
	var rows []Fig8bRow
	for _, name := range fig8bNetworks() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n, err := network(name)
		if err != nil {
			return nil, err
		}
		for _, chips := range []int{16, 32, 64} {
			t8, err := evalTimely(8, chips, name)
			if err != nil {
				return nil, err
			}
			pr, err := evalPrime(chips, name)
			if err != nil {
				return nil, err
			}
			is, err := evalIsaac(chips, name)
			if err != nil {
				return nil, err
			}
			t16 := accel.NewTimely(16, chips)
			t16.LayerInstances = is.Instances
			r16, err := t16.Evaluate(n)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig8bRow{
				Network: name, Chips: chips,
				TimelyIPS: t8.ImagesPerSec,
				PrimeIPS:  pr.ImagesPerSec,
				IsaacIPS:  is.ImagesPerSec,
				OverPrime: t8.ImagesPerSec / pr.ImagesPerSec,
				OverIsaac: r16.ImagesPerSec / is.ImagesPerSec,
			})
		}
	}
	return rows, nil
}

func runFig8a(ctx context.Context, _ Env) ([]*report.Table, error) {
	rows, geo, err := Fig8a(ctx)
	if err != nil {
		return nil, err
	}
	t := report.New("Fig. 8(a): normalized energy efficiency of TIMELY",
		"network", "over PRIME (8b)", "over ISAAC (16b)")
	for _, r := range rows {
		t.Add(r.Network, report.X(r.OverPrime), report.X(r.OverIsaac))
	}
	t.Add(geo.Network, report.X(geo.OverPrime), report.X(geo.OverIsaac))
	return []*report.Table{t}, nil
}

func runFig8b(ctx context.Context, _ Env) ([]*report.Table, error) {
	rows, err := Fig8b(ctx)
	if err != nil {
		return nil, err
	}
	t := report.New("Fig. 8(b): normalized throughput of TIMELY",
		"network", "chips", "TIMELY-8 img/s", "PRIME img/s", "over PRIME", "over ISAAC")
	for _, r := range rows {
		t.AddF(r.Network, r.Chips, r.TimelyIPS, r.PrimeIPS,
			report.X(r.OverPrime), fmt.Sprintf("%.2fx", r.OverIsaac))
	}
	return []*report.Table{t}, nil
}

func init() {
	register(Experiment{
		ID:          "fig8a",
		Paper:       "Fig. 8(a)",
		Description: "normalized energy efficiency on 15 benchmarks",
		Run:         runFig8a,
	})
	register(Experiment{
		ID:          "fig8b",
		Paper:       "Fig. 8(b)",
		Description: "normalized throughput on 8 CNNs x {16,32,64} chips",
		Run:         runFig8b,
	})
}
