// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI). Each artifact has a typed Run function returning the
// rows/series the paper reports as report.Tables; rendering (text, CSV or
// JSON) is separate, so the cmd/timely harness can execute experiments
// concurrently and still emit deterministic, ID-ordered output. The
// per-experiment index lives in DESIGN.md; paper-vs-measured numbers are
// recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/report"
	"repro/internal/stats"
)

// Env is the cross-cutting execution environment handed to every
// experiment's Run function: configuration that is not part of the
// experiment's identity but changes how its Monte-Carlo work draws.
type Env struct {
	// Sampler is the resolved Monte-Carlo sampling regime (SamplerV1,
	// SamplerV2 or SamplerV3; never SamplerDefault). It governs the
	// noise/defect studies' deviate streams — see the "Sampling regimes"
	// section of DESIGN.md. Analytic experiments ignore it.
	Sampler stats.SamplerVersion
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID is the CLI name (fig4, table5, ...).
	ID string
	// Paper names the artifact ("Fig. 4(a-c)").
	Paper string
	// Description summarises what it shows.
	Description string
	// Run computes the experiment and returns its tables, one per panel.
	// It honours ctx: cancellation is checked between work units (benchmark
	// evaluations, Monte-Carlo trials, sweep points), so an in-flight run
	// aborts promptly with ctx.Err(). env carries the resolved run
	// environment (sampling regime).
	Run func(ctx context.Context, env Env) ([]*report.Table, error)
}

// Render runs the experiment under the default environment (the
// counter-based sampler v3) and writes its tables as aligned text.
func (e Experiment) Render(ctx context.Context, w io.Writer) error {
	tables, err := e.Run(ctx, Env{Sampler: stats.SamplerDefault.Resolve()})
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IndexEntry is one row of the machine-readable experiment index — the
// shape `timely list -format json` and timelyd's GET /v1/experiments both
// serve.
type IndexEntry struct {
	ID          string `json:"id"`
	Paper       string `json:"paper"`
	Description string `json:"description"`
}

// Index returns the registered experiments' index rows in ID order.
func Index() []IndexEntry {
	all := All()
	out := make([]IndexEntry, len(all))
	for i, e := range all {
		out[i] = IndexEntry{ID: e.ID, Paper: e.Paper, Description: e.Description}
	}
	return out
}

// ByID looks an experiment up by CLI name.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Result is the captured outcome of one experiment execution.
type Result struct {
	// Experiment identifies what ran.
	Experiment Experiment
	// Tables holds the computed artifact; nil when Err is set.
	Tables []*report.Table
	// Err is the experiment's failure, if any. One failing experiment does
	// not stop the others.
	Err error
	// Elapsed is the experiment's own wall-clock compute time.
	Elapsed time.Duration
}

// Document converts the result to its machine-readable form.
func (r Result) Document() *report.Document {
	return &report.Document{
		ID:          r.Experiment.ID,
		Title:       r.Experiment.Paper,
		Description: r.Experiment.Description,
		Tables:      r.Tables,
	}
}

// Options configures a Run.
type Options struct {
	// Par is the worker-goroutine count; values < 1 run one worker.
	Par int
	// Sampler selects the Monte-Carlo sampling regime of the noise/defect
	// studies; stats.SamplerDefault (the zero value) resolves to the
	// counter-based v3. Pass stats.SamplerV1 or SamplerV2 to reproduce the
	// earlier pinned byte streams.
	Sampler stats.SamplerVersion
}

// Run executes the given experiments on opts.Par worker goroutines and
// returns one Result per experiment, in input order regardless of completion
// order. Shared heavy inputs (benchmark networks, baseline evaluations,
// trained classifiers) are computed once and reused across experiments via
// the package caches. Cancelling ctx aborts promptly: experiments not yet
// started, and work units not yet executed inside a started experiment,
// are skipped and their Results carry ctx's error. A ctx that is never
// cancelled does not change a single output byte at any worker count.
func Run(ctx context.Context, exps []Experiment, opts Options) []Result {
	par := opts.Par
	if par < 1 {
		par = 1
	}
	// Heavy inner loops (Monte-Carlo trials, sweep draws) draw from one
	// shared token pool sized by the same parallelism budget, so par=1 is
	// a genuinely serial execution and overlapping heavy experiments
	// cannot multiply the worker count.
	setInnerPar(par)
	if par > len(exps) {
		par = len(exps)
	}
	env := Env{Sampler: opts.Sampler.Resolve()}
	results := make([]Result, len(exps))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				e := exps[i]
				if err := ctx.Err(); err != nil {
					results[i] = Result{Experiment: e, Err: err}
					continue
				}
				start := time.Now()
				tables, err := e.Run(ctx, env)
				results[i] = Result{
					Experiment: e,
					Tables:     tables,
					Err:        err,
					Elapsed:    time.Since(start),
				}
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// WriteText writes results in order in the harness text format: a section
// header per experiment followed by its aligned tables. The first captured
// experiment error is returned (after writing the preceding sections).
func WriteText(w io.Writer, results []Result) error {
	for _, r := range results {
		e := r.Experiment
		if _, err := fmt.Fprintf(w, "\n=== %s — %s ===\n", e.Paper, e.Description); err != nil {
			return err
		}
		if r.Err != nil {
			return fmt.Errorf("%s: %w", e.ID, r.Err)
		}
		for _, t := range r.Tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV writes results in order as CSV, each table preceded by a
// "# title" comment line and followed by a blank line.
func WriteCSV(w io.Writer, results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Experiment.ID, r.Err)
		}
		for _, t := range r.Tables {
			if t.Title != "" {
				if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
					return err
				}
			}
			if err := t.RenderCSV(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON writes results in order as one JSON array of artifact documents.
func WriteJSON(w io.Writer, results []Result) error {
	docs := make([]*report.Document, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Experiment.ID, r.Err)
		}
		docs = append(docs, r.Document())
	}
	return report.WriteDocumentsJSON(w, docs)
}

// RunAll renders every registered experiment in ID order on one worker
// under the default sampling regime (v3) — the classic serial harness
// entry point. cmd/timely uses Run directly to control parallelism,
// cancellation and the regime.
func RunAll(w io.Writer) error {
	return WriteText(w, Run(context.Background(), All(), Options{Par: 1}))
}
