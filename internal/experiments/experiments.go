// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI). Each artifact has a typed Run function returning the
// rows/series the paper reports and a Render function producing the text
// form the cmd/timely harness prints. The per-experiment index lives in
// DESIGN.md; paper-vs-measured numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID is the CLI name (fig4, table5, ...).
	ID string
	// Paper names the artifact ("Fig. 4(a-c)").
	Paper string
	// Description summarises what it shows.
	Description string
	// Render runs the experiment and writes its tables.
	Render func(w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks an experiment up by CLI name.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAll renders every experiment in order.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		if _, err := fmt.Fprintf(w, "\n=== %s — %s ===\n", e.Paper, e.Description); err != nil {
			return err
		}
		if err := e.Render(w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
