package experiments

import (
	"context"
	"math"
	"testing"

	"repro/internal/stats"
)

// The sampler-v2 regime re-pins the Monte-Carlo goldens: its deviate
// streams differ from v1, so the defense is statistical, not byte-level.
// These tests run the actual studies under both regimes at equal trial
// counts and require the v2 results to sit inside the v1 Monte-Carlo
// confidence interval.

// TestDefectAccuracyV1VsV2Equivalent runs the stuck-at-fault study at
// every nonzero sweep rate under both regimes and checks the mean analog
// accuracies agree within the two-sample Monte-Carlo confidence interval
// (5 standard errors of the pooled per-trial spread, floored by the test
// set's 1/120 accuracy granularity).
func TestDefectAccuracyV1VsV2Equivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("two-regime defect study is Monte-Carlo heavy; skipped in -short")
	}
	ctx := context.Background()
	const trials = 24
	for _, rate := range []float64{0.001, 0.01, 0.05} {
		v1, err := AnalogCNNAccuracy(ctx, 5, trials, rate, stats.SamplerV1)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := AnalogCNNAccuracy(ctx, 5, trials, rate, stats.SamplerV2)
		if err != nil {
			t.Fatal(err)
		}
		if v1.IntAcc != v2.IntAcc {
			t.Fatalf("rate %v: integer reference accuracy differs across regimes (%v vs %v); "+
				"training must be regime-independent", rate, v1.IntAcc, v2.IntAcc)
		}
		// Per-trial spread from the percentile summary is not enough for a
		// standard error; re-derive a conservative spread bound from the
		// p10..p90 span (≈ 2.56 sigma for a normal, use 2 to stay safe).
		spread1 := (v1.AccP90 - v1.AccP10) / 2
		spread2 := (v2.AccP90 - v2.AccP10) / 2
		se := math.Sqrt((spread1*spread1 + spread2*spread2) / trials)
		tol := 5*se + 1.0/120
		if diff := math.Abs(v1.AnalogAcc - v2.AnalogAcc); diff > tol {
			t.Errorf("rate %v: v1 accuracy %.4f vs v2 %.4f differ by %.4f (> tol %.4f over %d trials)",
				rate, v1.AnalogAcc, v2.AnalogAcc, diff, tol, trials)
		}
		// Realised fault counts: both regimes must track n·rate of the
		// 12.58M-cell grid within Monte-Carlo slack.
		wantFaults := 192 * 65536 * rate
		for _, r := range []*DefectResult{v1, v2} {
			sd := math.Sqrt(wantFaults * (1 - rate))
			if diff := math.Abs(float64(r.Faults) - wantFaults); diff > 6*sd/math.Sqrt(trials)+1 {
				t.Errorf("rate %v sampler %s: mean faults %d, want ≈%.0f", rate, r.Sampler, r.Faults, wantFaults)
			}
		}
	}
}

// TestDefectRateZeroRegimeIdentical: at rate 0 no fault deviates are drawn
// under either regime and the defect datapath is deterministic, so the two
// regimes must agree exactly — the anchor tying the re-pinned goldens back
// to the legacy ones.
func TestDefectRateZeroRegimeIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the defect CNN; skipped in -short")
	}
	ctx := context.Background()
	v1, err := AnalogCNNAccuracy(ctx, 5, 3, 0, stats.SamplerV1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := AnalogCNNAccuracy(ctx, 5, 3, 0, stats.SamplerV2)
	if err != nil {
		t.Fatal(err)
	}
	if v1.AnalogAcc != v2.AnalogAcc || v1.Faults != 0 || v2.Faults != 0 {
		t.Fatalf("rate-0 defect study differs across regimes: v1 %+v vs v2 %+v", v1, v2)
	}
}

// TestMLPAccuracyV1VsV2Equivalent runs the §VI-B noise study under both
// regimes at equal trial counts: the Ziggurat and Box-Muller Gaussians
// must land the analog accuracy within the Monte-Carlo confidence
// interval (same spread-derived tolerance as the defect test, floored by
// the 480-sample test split's granularity).
func TestMLPAccuracyV1VsV2Equivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("two-regime accuracy study is Monte-Carlo heavy; skipped in -short")
	}
	ctx := context.Background()
	const trials = 24
	v1, err := RunAccuracy(ctx, 2020, trials, stats.SamplerV1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := RunAccuracy(ctx, 2020, trials, stats.SamplerV2)
	if err != nil {
		t.Fatal(err)
	}
	if v1.IntAcc != v2.IntAcc || v1.FloatAcc != v2.FloatAcc {
		t.Fatalf("reference accuracies differ across regimes: %+v vs %+v", v1, v2)
	}
	spread1 := (v1.AccP90 - v1.AccP10) / 2
	spread2 := (v2.AccP90 - v2.AccP10) / 2
	se := math.Sqrt((spread1*spread1 + spread2*spread2) / trials)
	tol := 5*se + 1.0/480
	if diff := math.Abs(v1.AnalogAcc - v2.AnalogAcc); diff > tol {
		t.Errorf("design-point accuracy: v1 %.4f vs v2 %.4f differ by %.4f (> tol %.4f over %d trials)",
			v1.AnalogAcc, v2.AnalogAcc, diff, tol, trials)
	}
}
