package experiments

import (
	"context"
	"math"
	"testing"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/stats"
)

// Each sampling regime re-pins the Monte-Carlo goldens: the v2 deviate
// streams differ from v1, and the counter-based v3 streams differ from
// both, so the defense across regimes is statistical, not byte-level.
// These tests run the actual studies under every regime at equal trial
// counts and require each pair of results to sit inside the pooled
// Monte-Carlo confidence interval.

// regimes under statistical comparison, in order.
var equivalenceRegimes = []stats.SamplerVersion{stats.SamplerV1, stats.SamplerV2, stats.SamplerV3}

// pairwiseEquivalent checks every regime pair's mean accuracy against a
// tolerance of 5 pooled standard errors (spread bounds re-derived from the
// p10..p90 span, ≈2.56 sigma for a normal; 2 is used to stay safe) floored
// by the test set's accuracy granularity 1/granule.
func pairwiseEquivalent(t *testing.T, label string, means, p10, p90 map[stats.SamplerVersion]float64, trials int, granule float64) {
	t.Helper()
	for i, a := range equivalenceRegimes {
		for _, b := range equivalenceRegimes[i+1:] {
			sa := (p90[a] - p10[a]) / 2
			sb := (p90[b] - p10[b]) / 2
			se := math.Sqrt((sa*sa + sb*sb) / float64(trials))
			tol := 5*se + 1/granule
			if diff := math.Abs(means[a] - means[b]); diff > tol {
				t.Errorf("%s: %s accuracy %.4f vs %s %.4f differ by %.4f (> tol %.4f over %d trials)",
					label, a, means[a], b, means[b], diff, tol, trials)
			}
		}
	}
}

// defectTrialAccs computes the per-trial analog accuracy sequence of the
// stuck-at-fault study directly (the inner loop of AnalogCNNAccuracy), so
// the equivalence check below can use the empirical per-trial variance:
// the defect-accuracy distribution at low rates has a heavy left tail —
// most fault maps are harmless, a few percent land a stuck-at-max cell on
// a hot conv weight and crater the result — which a p10..p90 spread bound
// cannot see.
func defectTrialAccs(t *testing.T, rate float64, v stats.SamplerVersion, trials int) []float64 {
	t.Helper()
	tc, err := defectCNN(5)
	if err != nil {
		t.Fatal(err)
	}
	accs := make([]float64, trials)
	for d := 0; d < trials; d++ {
		a, err := tc.cnn.MapAnalog(core.Options{
			Noise:         &analog.Noise{RNG: trialRNG(5, d, 5+uint64(d)*101+1, v)},
			InterfaceBits: 24,
		}, rate)
		if err != nil {
			t.Fatal(err)
		}
		acc, err := a.Accuracy(tc.test)
		if err != nil {
			t.Fatal(err)
		}
		accs[d] = acc
	}
	return accs
}

// meanVar returns the sample mean and (n-1)-denominator variance.
func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	return mean, variance / float64(len(xs)-1)
}

// TestDefectAccuracyRegimesEquivalent runs the stuck-at-fault study at
// every nonzero sweep rate under all three regimes and checks each pair of
// mean analog accuracies agrees within a 5-standard-error Welch interval
// built from the empirical per-trial variances (floored by the 120-sample
// test split's accuracy granularity).
func TestDefectAccuracyRegimesEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-regime defect study is Monte-Carlo heavy; skipped in -short")
	}
	ctx := context.Background()
	const trials = 48
	for _, rate := range []float64{0.001, 0.01, 0.05} {
		accs := map[stats.SamplerVersion][]float64{}
		for _, v := range equivalenceRegimes {
			accs[v] = defectTrialAccs(t, rate, v, trials)
		}
		for i, a := range equivalenceRegimes {
			for _, b := range equivalenceRegimes[i+1:] {
				ma, va := meanVar(accs[a])
				mb, vb := meanVar(accs[b])
				se := math.Sqrt((va + vb) / trials)
				tol := 5*se + 1.0/120
				if diff := math.Abs(ma - mb); diff > tol {
					t.Errorf("rate %v: %s accuracy %.4f vs %s %.4f differ by %.4f (> tol %.4f over %d trials)",
						rate, a, ma, b, mb, diff, tol, trials)
				}
			}
		}
		// The facade path must agree with the direct loop on plumbing: the
		// regime echoes, the integer reference is regime-independent, and the
		// realised fault counts track n·rate of the 12.58M-cell grid.
		var intAcc float64
		for i, v := range equivalenceRegimes {
			r, err := AnalogCNNAccuracy(ctx, 5, 8, rate, v)
			if err != nil {
				t.Fatal(err)
			}
			if r.Sampler != v {
				t.Fatalf("rate %v: result echoes sampler %s, want %s", rate, r.Sampler, v)
			}
			if i == 0 {
				intAcc = r.IntAcc
			} else if r.IntAcc != intAcc {
				t.Fatalf("rate %v: integer reference accuracy differs under %s (%v vs %v); "+
					"training must be regime-independent", rate, v, r.IntAcc, intAcc)
			}
			wantFaults := 192 * 65536 * rate
			sd := math.Sqrt(wantFaults * (1 - rate))
			if diff := math.Abs(float64(r.Faults) - wantFaults); diff > 6*sd/math.Sqrt(8)+1 {
				t.Errorf("rate %v sampler %s: mean faults %d, want ≈%.0f", rate, r.Sampler, r.Faults, wantFaults)
			}
		}
	}
}

// TestDefectRateZeroRegimeIdentical: at rate 0 no fault deviates are drawn
// under any regime and the defect datapath is deterministic, so all three
// regimes must agree exactly — the anchor tying the re-pinned goldens back
// to the legacy ones.
func TestDefectRateZeroRegimeIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the defect CNN; skipped in -short")
	}
	ctx := context.Background()
	var ref *DefectResult
	for _, v := range equivalenceRegimes {
		r, err := AnalogCNNAccuracy(ctx, 5, 3, 0, v)
		if err != nil {
			t.Fatal(err)
		}
		if r.Faults != 0 {
			t.Fatalf("sampler %s: rate-0 study realised %d faults", v, r.Faults)
		}
		if ref == nil {
			ref = r
			continue
		}
		if r.AnalogAcc != ref.AnalogAcc {
			t.Fatalf("rate-0 defect study differs across regimes: %s %+v vs %s %+v",
				equivalenceRegimes[0], ref, v, r)
		}
	}
}

// TestMLPAccuracyRegimesEquivalent runs the §VI-B noise study under all
// three regimes at equal trial counts: the Box-Muller, serial-Ziggurat and
// counter-based-Ziggurat Gaussians must land the analog accuracy within
// the Monte-Carlo confidence interval (same spread-derived tolerance as
// the defect test, floored by the 480-sample test split's granularity).
func TestMLPAccuracyRegimesEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-regime accuracy study is Monte-Carlo heavy; skipped in -short")
	}
	ctx := context.Background()
	const trials = 24
	means := map[stats.SamplerVersion]float64{}
	p10 := map[stats.SamplerVersion]float64{}
	p90 := map[stats.SamplerVersion]float64{}
	var intAcc, floatAcc float64
	for i, v := range equivalenceRegimes {
		r, err := RunAccuracy(ctx, 2020, trials, v)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			intAcc, floatAcc = r.IntAcc, r.FloatAcc
		} else if r.IntAcc != intAcc || r.FloatAcc != floatAcc {
			t.Fatalf("reference accuracies differ under %s: %+v", v, r)
		}
		means[v], p10[v], p90[v] = r.AnalogAcc, r.AccP10, r.AccP90
	}
	pairwiseEquivalent(t, "design point", means, p10, p90, trials, 480)
}
