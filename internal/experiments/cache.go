package experiments

// Shared heavy inputs — benchmark networks, baseline accelerator
// evaluations, and the trained classifiers behind the accuracy/defect
// studies — are memoized here so that experiments running concurrently (or
// repeatedly within one process) compute each of them exactly once. Every
// cached value is treated as immutable after construction: experiments only
// read ledgers, networks and quantized models, so sharing across goroutines
// is safe.

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/accel"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/workload"
)

// memo is a sync.Once-per-key cache with LRU eviction: the first Do for a
// key computes, every other caller (including concurrent ones) waits and
// shares the result. When a cap is given, inserting past it evicts the
// least-recently-used entry instead of refusing to store — a hot key keeps
// hitting through an arbitrarily long scan of cold keys.
type memo[V any] struct {
	mu      sync.Mutex
	ll      *list.List // of *memoEntry[V]; front = most recently used
	entries map[string]*list.Element

	evictions atomic.Int64
}

type memoEntry[V any] struct {
	key  string
	once sync.Once
	val  V
	err  error
}

func (m *memo[V]) Do(key string, f func() (V, error)) (V, error) {
	return m.DoCapped(key, 0, f)
}

// DoCapped is Do with an entry budget (0 = unlimited): past the cap the
// least-recently-used entry is evicted to make room. It bounds caches whose
// key space a client controls — a stream of unique spec-hash evaluations
// churns the cold end of the cache while hot entries keep sharing. An entry
// evicted while still computing keeps serving the callers already attached
// to it; only future lookups recompute.
func (m *memo[V]) DoCapped(key string, limit int, f func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.entries == nil {
		m.ll = list.New()
		m.entries = map[string]*list.Element{}
	}
	var e *memoEntry[V]
	if el, ok := m.entries[key]; ok {
		m.ll.MoveToFront(el)
		e = el.Value.(*memoEntry[V])
	} else {
		e = &memoEntry[V]{key: key}
		m.entries[key] = m.ll.PushFront(e)
		for limit > 0 && m.ll.Len() > limit {
			back := m.ll.Back()
			delete(m.entries, back.Value.(*memoEntry[V]).key)
			m.ll.Remove(back)
			m.evictions.Add(1)
		}
	}
	m.mu.Unlock()
	e.once.Do(func() { e.val, e.err = f() })
	return e.val, e.err
}

// Evictions returns the lifetime LRU eviction count.
func (m *memo[V]) Evictions() int64 { return m.evictions.Load() }

func (m *memo[V]) reset() {
	m.mu.Lock()
	m.ll = nil
	m.entries = nil
	m.mu.Unlock()
}

var (
	networkCache memo[*model.Network]
	evalCache    memo[*accel.Result]
	mlpCache     memo[*trainedMLP]
	cnnCache     memo[*trainedCNN]
)

// ResetCaches drops every memoized input so the next run recomputes from
// scratch. The benchmarks use it to time cold executions.
func ResetCaches() {
	networkCache.reset()
	evalCache.reset()
	mlpCache.reset()
	cnnCache.reset()
}

// network returns the memoized Table III benchmark. The returned Network is
// shared — callers must not mutate it.
func network(name string) (*model.Network, error) {
	return networkCache.Do(name, func() (*model.Network, error) {
		return model.ByName(name)
	})
}

// benchmarks returns the memoized full Table III suite in the paper's order.
func benchmarks() []*model.Network {
	names := []string{
		"VGG-D", "CNN-1", "MLP-L",
		"VGG-1", "VGG-2", "VGG-3", "VGG-4",
		"MSRA-1", "MSRA-2", "MSRA-3",
		"ResNet-18", "ResNet-50", "ResNet-101", "ResNet-152",
		"SqueezeNet",
	}
	out := make([]*model.Network, len(names))
	for i, name := range names {
		n, err := network(name)
		if err != nil {
			panic(err)
		}
		out[i] = n
	}
	return out
}

// Eval returns the memoized analytic evaluation of one Table III benchmark
// on one backend — "timely", "prime" or "isaac" — at the given deployment.
// It is the entry point the public sim facade shares with the experiment
// suite, so a service evaluating the same (backend, deployment, network)
// as a running experiment computes it exactly once. bits selects TIMELY's
// operand precision and is ignored by the fixed-precision baselines
// (PRIME is 8-bit, ISAAC 16-bit by design).
func Eval(backend string, bits, chips int, network string) (*accel.Result, error) {
	switch backend {
	case "timely":
		return evalTimely(bits, chips, network)
	case "prime":
		return evalPrime(chips, network)
	case "isaac":
		return evalIsaac(chips, network)
	}
	return nil, fmt.Errorf("experiments: unknown analytic backend %q", backend)
}

// maxSpecEvalEntries bounds the eval cache when the key is
// client-controlled (unique custom specs): past the cap, the
// least-recently-used entry is evicted to make room.
const maxSpecEvalEntries = 4096

// EvalSpec returns the memoized analytic evaluation of a custom compiled
// network at the shared design point, keyed by the canonical spec hash of
// its layer table (model.Network.SpecHash) rather than its name: two
// differently-named or differently-spelled specs that compile to the same
// network share one cache entry, and a custom network can never collide
// with a Table III benchmark's entry. The memoization is capped with LRU
// eviction — a client streaming unique specs churns the cold end of the
// cache rather than growing the process without bound, while hot specs
// keep hitting.
func EvalSpec(backend string, bits, chips int, n *model.Network) (*accel.Result, error) {
	var acc accel.Accelerator
	key := fmt.Sprintf("%s/%d/spec:%s", backend, chips, n.SpecHash())
	switch backend {
	case "timely":
		key = fmt.Sprintf("timely/%d/%d/spec:%s", bits, chips, n.SpecHash())
		acc = accel.NewTimely(bits, chips)
	case "prime":
		acc = accel.NewPrime(chips)
	case "isaac":
		acc = accel.NewIsaac(chips)
	default:
		return nil, fmt.Errorf("experiments: unknown analytic backend %q", backend)
	}
	return evalCache.DoCapped(key, maxSpecEvalEntries, func() (*accel.Result, error) {
		return acc.Evaluate(n)
	})
}

// evalTimely returns the memoized TIMELY evaluation of one benchmark.
func evalTimely(bits, chips int, name string) (*accel.Result, error) {
	key := fmt.Sprintf("timely/%d/%d/%s", bits, chips, name)
	return evalCache.Do(key, func() (*accel.Result, error) {
		n, err := network(name)
		if err != nil {
			return nil, err
		}
		return accel.NewTimely(bits, chips).Evaluate(n)
	})
}

// evalPrime returns the memoized PRIME evaluation of one benchmark.
func evalPrime(chips int, name string) (*accel.Result, error) {
	key := fmt.Sprintf("prime/%d/%s", chips, name)
	return evalCache.Do(key, func() (*accel.Result, error) {
		n, err := network(name)
		if err != nil {
			return nil, err
		}
		return accel.NewPrime(chips).Evaluate(n)
	})
}

// evalIsaac returns the memoized ISAAC evaluation of one benchmark.
func evalIsaac(chips int, name string) (*accel.Result, error) {
	key := fmt.Sprintf("isaac/%d/%s", chips, name)
	return evalCache.Do(key, func() (*accel.Result, error) {
		n, err := network(name)
		if err != nil {
			return nil, err
		}
		return accel.NewIsaac(chips).Evaluate(n)
	})
}

// trainedMLP bundles the §VI-B synthetic classifier: the float model, its
// 8-bit quantization, and the held-out test split.
type trainedMLP struct {
	m    *workload.MLP
	q    *workload.QuantMLP
	test *workload.Dataset
}

// accuracyMLP trains (once per seed) the noise-aware synthetic classifier
// shared by the accuracy study and the noise sweep.
func accuracyMLP(seed uint64) (*trainedMLP, error) {
	key := fmt.Sprintf("mlp/%d", seed)
	return mlpCache.Do(key, func() (*trainedMLP, error) {
		rng := stats.NewRNG(seed)
		ds := workload.SyntheticClusters(rng, 2400, 16, 4, 0.30)
		train, test := ds.Split(0.8)
		m := workload.NewMLP(rng, 16, 48, 4)
		// Noise-aware training (§VI-B: Gaussian noise added during training).
		m.TrainWithNoise(train, rng, 30, 0.05, 0.02)
		q, err := workload.Quantize(m, train, 8)
		if err != nil {
			return nil, err
		}
		return &trainedMLP{m: m, q: q, test: test}, nil
	})
}

// trainedCNN bundles the defect-study CNN and its test split.
type trainedCNN struct {
	cnn  *workload.CNN
	test *workload.ImageDataset
}

// defectCNN trains (once per seed) the synthetic-image CNN the stuck-at
// fault ablation maps onto faulty crossbars.
func defectCNN(seed uint64) (*trainedCNN, error) {
	key := fmt.Sprintf("cnn/%d", seed)
	return cnnCache.Do(key, func() (*trainedCNN, error) {
		rng := stats.NewRNG(seed)
		ds := workload.SyntheticImages(rng, 600, 12, 4, 0.05)
		train, test := ds.Split(0.8)
		cnn := workload.NewCNN(rng, 8, 7)
		if _, err := cnn.Train(rng, train, 32, 25, 0.05); err != nil {
			return nil, err
		}
		return &trainedCNN{cnn: cnn, test: test}, nil
	})
}
