package experiments

import (
	"testing"

	"repro/internal/model"
)

func TestMemoDoCapped(t *testing.T) {
	var m memo[int]
	calls := 0
	get := func(key string, limit int) int {
		t.Helper()
		v, err := m.DoCapped(key, limit, func() (int, error) { calls++; return calls, nil })
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Under the cap: classic memoization.
	if get("a", 2) != 1 || get("a", 2) != 1 || get("b", 2) != 2 {
		t.Fatalf("memoization under the cap broke (calls=%d)", calls)
	}
	// At the cap: misses compute every time and are not stored...
	if get("c", 2) != 3 || get("c", 2) != 4 {
		t.Errorf("over-cap key was cached (calls=%d)", calls)
	}
	// ...while existing entries keep hitting.
	if get("a", 2) != 1 || get("b", 2) != 2 {
		t.Errorf("cached entries lost at cap")
	}
	// Limit 0 (plain Do) is unlimited and stores the new key.
	if get("c", 0) != 5 || get("c", 2) != 5 {
		t.Errorf("unlimited insert then capped hit broke (calls=%d)", calls)
	}
}

// TestEvalSpecSharedAcrossNames proves the spec-hash keying: two
// differently-named compilations of the same layer table share one cache
// entry and produce identical ledgers.
func TestEvalSpecSharedAcrossNames(t *testing.T) {
	spec := func(name string) *model.Spec {
		return &model.Spec{
			Name:  name,
			Input: model.Dims{C: 1, H: 12, W: 12},
			Layers: []model.LayerSpec{
				{Name: "c1", Kind: "conv", Filters: 4, Kernel: 3, Pad: 1},
				{Name: "out", Kind: "fc", Units: 3},
			},
		}
	}
	a, err := spec("net-a").Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec("net-b").Compile()
	if err != nil {
		t.Fatal(err)
	}
	if a.SpecHash() != b.SpecHash() {
		t.Fatalf("renamed identical networks hash differently")
	}
	ra, err := EvalSpec("timely", 8, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := EvalSpec("timely", 8, 1, b)
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Errorf("identical networks did not share one cache entry")
	}
	if _, err := EvalSpec("abacus", 8, 1, a); err == nil {
		t.Errorf("unknown backend accepted")
	}
}
