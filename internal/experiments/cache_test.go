package experiments

import (
	"testing"

	"repro/internal/model"
)

func TestMemoDoCapped(t *testing.T) {
	var m memo[int]
	calls := 0
	get := func(key string, limit int) int {
		t.Helper()
		v, err := m.DoCapped(key, limit, func() (int, error) { calls++; return calls, nil })
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Under the cap: classic memoization.
	if get("a", 2) != 1 || get("a", 2) != 1 || get("b", 2) != 2 {
		t.Fatalf("memoization under the cap broke (calls=%d)", calls)
	}
	// Past the cap: the new key IS stored and the LRU entry ("a") is
	// evicted — the old stop-caching-at-cap behavior left entry 4097
	// permanently uncached.
	if get("c", 2) != 3 || get("c", 2) != 3 {
		t.Errorf("over-cap key was not cached (calls=%d)", calls)
	}
	if m.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", m.Evictions())
	}
	// "b" was refreshed more recently than "a", so it survived.
	if get("b", 2) != 2 {
		t.Errorf("recently-used entry was evicted")
	}
	// "a" was the eviction victim: recomputed on next access.
	if get("a", 2) != 4 {
		t.Errorf("evicted entry was not recomputed (calls=%d)", calls)
	}
	// Limit 0 (plain Do) is unlimited: no eviction on insert.
	before := m.Evictions()
	if get("x", 0) != 5 || get("x", 0) != 5 {
		t.Errorf("unlimited insert broke (calls=%d)", calls)
	}
	if m.Evictions() != before {
		t.Errorf("unlimited insert evicted")
	}
}

// TestMemoHotKeySurvivesColdScan is the LRU regression gate: a key that is
// re-touched while a stream of unique cold keys floods past the cap keeps
// hitting its cached value the whole way through.
func TestMemoHotKeySurvivesColdScan(t *testing.T) {
	var m memo[int]
	const limit = 8
	hotCalls := 0
	hot := func() (int, error) { hotCalls++; return 99, nil }
	if v, _ := m.DoCapped("hot", limit, hot); v != 99 {
		t.Fatalf("hot = %d", v)
	}
	for i := 0; i < 4*limit; i++ {
		key := "cold-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := m.DoCapped(key, limit, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
		// Touch the hot key every few cold inserts, as a busy service would.
		if i%3 == 0 {
			if v, _ := m.DoCapped("hot", limit, hot); v != 99 {
				t.Fatalf("hot key lost its value at cold insert %d", i)
			}
		}
	}
	if hotCalls != 1 {
		t.Errorf("hot key recomputed %d times during the cold scan, want 1", hotCalls)
	}
	if m.Evictions() == 0 {
		t.Errorf("cold scan past the cap evicted nothing")
	}
}

// TestEvalSpecSharedAcrossNames proves the spec-hash keying: two
// differently-named compilations of the same layer table share one cache
// entry and produce identical ledgers.
func TestEvalSpecSharedAcrossNames(t *testing.T) {
	spec := func(name string) *model.Spec {
		return &model.Spec{
			Name:  name,
			Input: model.Dims{C: 1, H: 12, W: 12},
			Layers: []model.LayerSpec{
				{Name: "c1", Kind: "conv", Filters: 4, Kernel: 3, Pad: 1},
				{Name: "out", Kind: "fc", Units: 3},
			},
		}
	}
	a, err := spec("net-a").Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec("net-b").Compile()
	if err != nil {
		t.Fatal(err)
	}
	if a.SpecHash() != b.SpecHash() {
		t.Fatalf("renamed identical networks hash differently")
	}
	ra, err := EvalSpec("timely", 8, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := EvalSpec("timely", 8, 1, b)
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Errorf("identical networks did not share one cache entry")
	}
	if _, err := EvalSpec("abacus", 8, 1, a); err == nil {
		t.Errorf("unknown backend accepted")
	}
}
