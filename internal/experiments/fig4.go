package experiments

import (
	"context"
	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/report"
)

// Fig4Access holds the Fig. 4(a) access counts of one network (all CONV
// layers) under PRIME-style execution.
type Fig4Access struct {
	Network string
	// Inputs is the L1 input-read count; Psums the psum buffer accesses.
	Inputs, Psums float64
}

// Fig4Breakdown is one accelerator's energy breakdown on VGG-D.
type Fig4Breakdown struct {
	Accelerator string
	// Shares maps category name to fraction of total energy.
	Shares  []Share
	TotalFJ float64
}

// Share is one named fraction.
type Share struct {
	Name     string
	Fraction float64
}

// Fig4a counts the CONV-layer input/psum accesses of VGG-D and ResNet-50
// (Fig. 4(a): "more than 55 million inputs and 15 million Psums").
func Fig4a() []Fig4Access {
	var out []Fig4Access
	for _, name := range []string{"VGG-D", "ResNet-50"} {
		n, err := network(name)
		if err != nil {
			panic(err)
		}
		p := accel.NewPrime(1)
		led := energy.NewLedger(p.Units())
		for _, l := range n.ConvLayers() {
			p.EvaluateLayer(l, led)
		}
		out = append(out, Fig4Access{
			Network: name,
			Inputs:  led.CountClass(energy.L1Read, energy.ClassInput),
			Psums: led.CountClass(energy.L1Write, energy.ClassPsum) +
				led.CountClass(energy.L1Read, energy.ClassPsum),
		})
	}
	return out
}

// Fig4b returns PRIME's VGG-D energy breakdown (Fig. 4(b)).
func Fig4b() (Fig4Breakdown, error) {
	r, err := evalPrime(1, "VGG-D")
	if err != nil {
		return Fig4Breakdown{}, err
	}
	tot := r.Ledger.Total()
	return Fig4Breakdown{
		Accelerator: "PRIME",
		TotalFJ:     tot,
		Shares: []Share{
			{"inputs", r.Ledger.MovementByClass(energy.ClassInput) / tot},
			{"psums & outputs", (r.Ledger.MovementByClass(energy.ClassPsum) +
				r.Ledger.MovementByClass(energy.ClassOutput)) / tot},
			{"ADC", r.Ledger.Energy(energy.ADCConv) / tot},
			{"DAC", r.Ledger.Energy(energy.DACConv) / tot},
		},
	}, nil
}

// Fig4c returns ISAAC's VGG-D energy breakdown (Fig. 4(c)).
func Fig4c() (Fig4Breakdown, error) {
	r, err := evalIsaac(1, "VGG-D")
	if err != nil {
		return Fig4Breakdown{}, err
	}
	tot := r.Ledger.Total()
	mem := r.Ledger.Energy(energy.EDRAMRead) + r.Ledger.Energy(energy.EDRAMWrite) +
		r.Ledger.Energy(energy.IRRead)
	return Fig4Breakdown{
		Accelerator: "ISAAC",
		TotalFJ:     tot,
		Shares: []Share{
			{"analog (DAC/ADC)", (r.Ledger.InterfaceEnergy() +
				r.Ledger.Energy(energy.CrossbarOp)) / tot},
			{"communication", r.Ledger.ByClass(energy.ClassComm) / tot},
			{"memory", mem / tot},
			{"digital", r.Ledger.ByClass(energy.ClassDigital) / tot},
		},
	}, nil
}

func runFig4(context.Context, Env) ([]*report.Table, error) {
	ta := report.New("Fig. 4(a): # of CONV-layer accesses under PRIME-style execution",
		"network", "inputs", "psum accesses")
	for _, a := range Fig4a() {
		ta.Add(a.Network, report.Millions(a.Inputs), report.Millions(a.Psums))
	}
	tables := []*report.Table{ta}
	for _, f := range []func() (Fig4Breakdown, error){Fig4b, Fig4c} {
		b, err := f()
		if err != nil {
			return nil, err
		}
		t := report.New("Fig. 4: "+b.Accelerator+" energy breakdown on VGG-D (total "+
			report.MJ(b.TotalFJ)+")", "category", "share")
		for _, s := range b.Shares {
			t.Add(s.Name, report.Pct(s.Fraction))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func init() {
	register(Experiment{
		ID:          "fig4",
		Paper:       "Fig. 4(a-c)",
		Description: "access counts and baseline energy breakdowns",
		Run:         runFig4,
	})
}
