package experiments

import (
	"context"
	"repro/internal/accel"
	"repro/internal/report"
)

// Fig1cPoint is one accelerator in the efficiency/density landscape.
type Fig1cPoint struct {
	Name            string
	OpBits          int
	EfficiencyTOPsW float64
	DensityTOPsMM2  float64
	PIM             bool
	Computed        bool // true for TIMELY (first principles), false for reported
}

// Fig1c reproduces Fig. 1(c): the energy-efficiency vs computational-density
// landscape of Eyeriss, PRIME, ISAAC, PipeLayer and TIMELY (both precisions).
func Fig1c() []Fig1cPoint {
	var pts []Fig1cPoint
	for _, p := range accel.ReportedPeaks() {
		pts = append(pts, Fig1cPoint{
			Name: p.Name, OpBits: p.OpBits,
			EfficiencyTOPsW: p.EfficiencyTOPsW, DensityTOPsMM2: p.DensityTOPsMM2,
			PIM: p.PIM,
		})
	}
	for _, bits := range []int{8, 16} {
		tp := accel.ComputeTimelyPeak(bits)
		pts = append(pts, Fig1cPoint{
			Name: "TIMELY", OpBits: bits,
			EfficiencyTOPsW: tp.EfficiencyTOPsW, DensityTOPsMM2: tp.DensityTOPsMM2,
			PIM: true, Computed: true,
		})
	}
	return pts
}

func runFig1c(context.Context, Env) ([]*report.Table, error) {
	t := report.New("Fig. 1(c): efficiency vs computational density (peak)",
		"accelerator", "MAC bits", "TOPs/W", "TOPs/(s*mm^2)", "PIM", "source")
	for _, p := range Fig1c() {
		src := "reported"
		if p.Computed {
			src = "computed"
		}
		pim := "no"
		if p.PIM {
			pim = "yes"
		}
		t.AddF(p.Name, p.OpBits, p.EfficiencyTOPsW, p.DensityTOPsMM2, pim, src)
	}
	return []*report.Table{t}, nil
}

func init() {
	register(Experiment{
		ID:          "fig1c",
		Paper:       "Fig. 1(c)",
		Description: "energy efficiency vs computational density across accelerators",
		Run:         runFig1c,
	})
}
