package experiments

import "repro/internal/stats"

// trialRNG derives the noise generator of one Monte-Carlo trial. Under the
// counter-based v3 regime the generator is keyed directly by the study's
// (seed, trial) coordinates — stats.NewTrialRNG — so any trial's stream is
// computable independently of the others and the fan-out across the worker
// pool is byte-stable at any parallelism by construction. The v1/v2 regimes
// keep their historical additive seed derivations (legacySeed varies per
// study: seed+trial·7919 for the MLP accuracy trials, seed+draw·101+1 for
// the CNN defect draws) so their golden-pinned outputs stay byte-identical.
func trialRNG(seed uint64, trial int, legacySeed uint64, sampler stats.SamplerVersion) *stats.RNG {
	if sampler == stats.SamplerV3 {
		return stats.NewTrialRNG(seed, uint32(trial))
	}
	return stats.NewRNGSampler(legacySeed, sampler)
}
