package experiments

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/stats"
)

// The reproducibility harness of the counter-based sampler work: the full
// experiment suite's rendered output — text AND JSON — must be
// byte-identical at every worker count under every sampling regime. For
// v1/v2 this pins the careful serial stream ordering the worker pool
// preserves; for v3 it proves the structural claim that keyed substreams
// make parallelism invisible to the results.

// renderAll runs every registered experiment and returns the text and JSON
// artifacts.
func renderAll(t *testing.T, par int, sampler stats.SamplerVersion) (text, js []byte) {
	t.Helper()
	results := Run(context.Background(), All(), Options{Par: par, Sampler: sampler})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("par %d sampler %s: experiment %s failed: %v", par, sampler.Resolve(), r.Experiment.ID, r.Err)
		}
	}
	var tb, jb bytes.Buffer
	if err := WriteText(&tb, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jb, results); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), jb.Bytes()
}

// TestFullSuiteDeterministicAcrossPar renders the complete suite at worker
// counts 1, 2 and 8 under each sampling regime and diffs the bytes against
// the serial run. A single differing byte means some Monte-Carlo draw
// escaped its ordering (v1/v2) or its keyed substream (v3).
func TestFullSuiteDeterministicAcrossPar(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full experiment suite nine times; skipped in -short")
	}
	for _, sampler := range []stats.SamplerVersion{stats.SamplerV1, stats.SamplerV2, stats.SamplerV3} {
		refText, refJSON := renderAll(t, 1, sampler)
		if len(refText) == 0 || len(refJSON) == 0 {
			t.Fatalf("sampler %s: empty suite render", sampler)
		}
		for _, par := range []int{2, 8} {
			text, js := renderAll(t, par, sampler)
			if !bytes.Equal(text, refText) {
				t.Errorf("sampler %s: text output at -par %d differs from -par 1 (%d vs %d bytes)",
					sampler, par, len(text), len(refText))
			}
			if !bytes.Equal(js, refJSON) {
				t.Errorf("sampler %s: JSON output at -par %d differs from -par 1 (%d vs %d bytes)",
					sampler, par, len(js), len(refJSON))
			}
		}
	}
}

// TestSamplerRegimesProduceDistinctSuites: the three regimes draw distinct
// deviate streams, so their Monte-Carlo artifacts must differ — a suite
// that renders identically under v2 and v3 means the regime plumbing is
// not reaching the draws.
func TestSamplerRegimesProduceDistinctSuites(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the Monte-Carlo experiments; skipped in -short")
	}
	render := func(sampler stats.SamplerVersion) []byte {
		var exps []Experiment
		for _, id := range []string{"accuracy", "ablation"} {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			exps = append(exps, e)
		}
		var b bytes.Buffer
		if err := WriteText(&b, Run(context.Background(), exps, Options{Par: 2, Sampler: sampler})); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	v1, v2, v3 := render(stats.SamplerV1), render(stats.SamplerV2), render(stats.SamplerV3)
	if bytes.Equal(v1, v2) || bytes.Equal(v2, v3) || bytes.Equal(v1, v3) {
		t.Fatal("two sampling regimes rendered byte-identical Monte-Carlo artifacts")
	}
}
