package experiments

import (
	"context"

	"repro/internal/report"
)

// Table5Row is one CONV layer's L1 input-read comparison (Table V).
type Table5Row struct {
	Layer string
	// Prime / Timely are the L1 read counts; Saving is 1 − Timely/Prime.
	Prime, Timely, Saving float64
}

// Table5 reproduces Table V: L1 memory accesses for reading inputs over the
// first six CONV layers of VGG-D — PRIME re-reads each input Z·G/S² times,
// O2IR reads it once (88.9 % saved for 3×3/s1 layers).
func Table5() []Table5Row {
	vgg, err := network("VGG-D")
	if err != nil {
		panic(err)
	}
	convs := vgg.ConvLayers()
	var rows []Table5Row
	for i := 0; i < 6; i++ {
		l := convs[i]
		prime := float64(l.Inputs()) * float64(l.Z*l.G) / float64(l.S*l.S)
		timely := float64(l.Inputs())
		rows = append(rows, Table5Row{
			Layer:  l.Name,
			Prime:  prime,
			Timely: timely,
			Saving: 1 - timely/prime,
		})
	}
	return rows
}

func runTable5(context.Context, Env) ([]*report.Table, error) {
	t := report.New("Table V: L1 input reads, VGG-D CONV1-6",
		"layer", "PRIME", "TIMELY", "saved by")
	for _, r := range Table5() {
		t.Add(r.Layer, report.Millions(r.Prime), report.Millions(r.Timely), report.Pct(r.Saving))
	}
	return []*report.Table{t}, nil
}

func init() {
	register(Experiment{
		ID:          "table5",
		Paper:       "Table V",
		Description: "L1 input reads of VGG-D CONV1-6: O2IR vs PRIME",
		Run:         runTable5,
	})
}
