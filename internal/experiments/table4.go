package experiments

import (
	"context"
	"repro/internal/accel"
	"repro/internal/report"
)

// Table4Row is one accelerator's peak comparison row.
type Table4Row struct {
	Name            string
	OpBits          int
	EfficiencyTOPsW float64
	DensityTOPsMM2  float64
	// EffImprovement / DenImprovement are TIMELY's factors over this row
	// at matched precision (0 for the TIMELY rows themselves).
	EffImprovement, DenImprovement float64
}

// Table4 reproduces Table IV: peak energy efficiency and computational
// density of PRIME/ISAAC/PipeLayer/AtomLayer (reported) against TIMELY
// (computed from Table II first principles), with improvement factors at
// matched precision (8-bit vs PRIME, 16-bit vs the rest).
func Table4() []Table4Row {
	t8 := accel.ComputeTimelyPeak(8)
	t16 := accel.ComputeTimelyPeak(16)
	var rows []Table4Row
	for _, name := range []string{"PRIME", "ISAAC", "PipeLayer", "AtomLayer"} {
		p, ok := accel.ReportedPeak(name)
		if !ok {
			continue
		}
		ref := t16
		if p.OpBits == 8 {
			ref = t8
		}
		rows = append(rows, Table4Row{
			Name:            p.Name,
			OpBits:          p.OpBits,
			EfficiencyTOPsW: p.EfficiencyTOPsW,
			DensityTOPsMM2:  p.DensityTOPsMM2,
			EffImprovement:  ref.EfficiencyTOPsW / p.EfficiencyTOPsW,
			DenImprovement:  ref.DensityTOPsMM2 / p.DensityTOPsMM2,
		})
	}
	rows = append(rows,
		Table4Row{Name: "TIMELY", OpBits: 8,
			EfficiencyTOPsW: t8.EfficiencyTOPsW, DensityTOPsMM2: t8.DensityTOPsMM2},
		Table4Row{Name: "TIMELY", OpBits: 16,
			EfficiencyTOPsW: t16.EfficiencyTOPsW, DensityTOPsMM2: t16.DensityTOPsMM2},
	)
	return rows
}

func runTable4(context.Context, Env) ([]*report.Table, error) {
	t := report.New("Table IV: peak performance comparison",
		"accelerator", "MAC bits", "TOPs/W", "TIMELY eff. gain", "TOPs/(s*mm^2)", "TIMELY dens. gain")
	for _, r := range Table4() {
		eff, den := "-", "-"
		if r.EffImprovement > 0 {
			eff = report.X(r.EffImprovement)
			den = report.X(r.DenImprovement)
		}
		t.AddF(r.Name, r.OpBits, r.EfficiencyTOPsW, eff, r.DensityTOPsMM2, den)
	}
	return []*report.Table{t}, nil
}

func init() {
	register(Experiment{
		ID:          "table4",
		Paper:       "Table IV",
		Description: "peak energy efficiency and computational density",
		Run:         runTable4,
	})
}
