package experiments

import (
	"context"

	"repro/internal/accel"
	"repro/internal/params"
	"repro/internal/report"
)

// Fig11Result is the ALB+O2IR-in-PRIME generalization experiment.
type Fig11Result struct {
	// BaseFJ / RetrofitFJ are intra-bank data-movement energies on VGG-D.
	BaseFJ, RetrofitFJ float64
	// Reduction is 1 − Retrofit/Base (paper: 68 %).
	Reduction float64
}

// RunFig11 applies TIMELY's ALB and O2IR principles inside PRIME's FF
// subarrays (Fig. 11(a)) and measures the intra-bank data-movement energy
// reduction on VGG-D (Fig. 11(b)).
func RunFig11(ctx context.Context) (Fig11Result, error) {
	if err := ctx.Err(); err != nil {
		return Fig11Result{}, err
	}
	vgg, err := network("VGG-D")
	if err != nil {
		return Fig11Result{}, err
	}
	base, err := evalPrime(1, "VGG-D")
	if err != nil {
		return Fig11Result{}, err
	}
	retro, err := (&accel.Prime{Cfg: params.DefaultPrime(), ALBO2IR: true}).Evaluate(vgg)
	if err != nil {
		return Fig11Result{}, err
	}
	r := Fig11Result{
		BaseFJ:     accel.IntraBankEnergy(base.Ledger),
		RetrofitFJ: accel.IntraBankEnergy(retro.Ledger),
	}
	r.Reduction = 1 - r.RetrofitFJ/r.BaseFJ
	return r, nil
}

func runFig11(ctx context.Context, _ Env) ([]*report.Table, error) {
	r, err := RunFig11(ctx)
	if err != nil {
		return nil, err
	}
	t := report.New("Fig. 11: ALB+O2IR applied to PRIME's FF subarrays (VGG-D)",
		"design", "intra-bank movement energy", "reduction")
	t.Add("PRIME", report.MJ(r.BaseFJ), "-")
	t.Add("PRIME + ALB + O2IR", report.MJ(r.RetrofitFJ), report.Pct(r.Reduction))
	return []*report.Table{t}, nil
}

func init() {
	register(Experiment{
		ID:          "fig11",
		Paper:       "Fig. 11",
		Description: "generalizing ALB+O2IR into PRIME",
		Run:         runFig11,
	})
}
