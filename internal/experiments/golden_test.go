package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stats"
)

// runGolden renders the two Monte-Carlo-heavy experiments under the given
// sampling regime and compares the text artifact byte-for-byte against a
// golden file.
func runGolden(t *testing.T, sampler stats.SamplerVersion, file string) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	var exps []Experiment
	for _, id := range []string{"accuracy", "ablation"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	var got bytes.Buffer
	if err := WriteText(&got, Run(context.Background(), exps, Options{Par: 1, Sampler: sampler})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("accuracy+ablation text output under sampler %s differs from %s (%d vs %d bytes);\n"+
			"the functional datapath must stay byte-identical per regime — if the change is an\n"+
			"intentional modelling change, regenerate the golden (see comments)",
			sampler.Resolve(), file, got.Len(), len(want))
	}
}

// TestAccuracyAblationGolden locks the text artifacts of the two
// Monte-Carlo-heavy experiments byte-for-byte under the default regime
// (the counter-based sampler v3). Regenerate (only after an intentional
// modelling or regime change) with:
//
//	go run ./cmd/timely accuracy ablation -par 1 \
//	    > internal/experiments/testdata/accuracy_ablation.golden
func TestAccuracyAblationGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run re-trains the accuracy workloads; skipped in -short")
	}
	runGolden(t, stats.SamplerDefault, "accuracy_ablation.golden")
}

// TestAccuracyAblationGoldenV1 locks the legacy v1 regime against the
// golden captured before the batched/flat-kernel datapath landed (PR 2)
// and untouched since: no later sampler work may change a single v1
// output byte. Regenerate with:
//
//	go run ./cmd/timely accuracy ablation -par 1 -sampler v1 \
//	    > internal/experiments/testdata/accuracy_ablation_v1.golden
func TestAccuracyAblationGoldenV1(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run re-trains the accuracy workloads; skipped in -short")
	}
	runGolden(t, stats.SamplerV1, "accuracy_ablation_v1.golden")
}

// TestAccuracyAblationGoldenV2 locks the sublinear v2 regime against the
// golden captured while v2 was the default (PR 5, before the counter-based
// v3 took over): selecting -sampler v2 must reproduce those bytes forever.
// Regenerate with:
//
//	go run ./cmd/timely accuracy ablation -par 1 -sampler v2 \
//	    > internal/experiments/testdata/accuracy_ablation_v2.golden
func TestAccuracyAblationGoldenV2(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run re-trains the accuracy workloads; skipped in -short")
	}
	runGolden(t, stats.SamplerV2, "accuracy_ablation_v2.golden")
}
