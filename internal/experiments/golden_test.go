package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestAccuracyAblationGolden locks the text artifacts of the two
// Monte-Carlo-heavy experiments byte-for-byte against a golden capture from
// before the batched/flat-kernel datapath landed: the performance work must
// never change a single output byte. Regenerate the golden (only after an
// intentional modelling change) with:
//
//	go run ./cmd/timely accuracy ablation -par 1 \
//	    > internal/experiments/testdata/accuracy_ablation.golden
func TestAccuracyAblationGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run re-trains the accuracy workloads; skipped in -short")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "accuracy_ablation.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var exps []Experiment
	for _, id := range []string{"accuracy", "ablation"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	var got bytes.Buffer
	if err := WriteText(&got, Run(context.Background(), exps, Options{Par: 1})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("accuracy+ablation text output differs from golden (%d vs %d bytes);\n"+
			"the functional datapath must stay byte-identical — if the change is an\n"+
			"intentional modelling change, regenerate the golden (see comment)",
			got.Len(), len(want))
	}
}
