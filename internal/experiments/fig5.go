package experiments

import (
	"context"
	"repro/internal/params"
	"repro/internal/report"
)

// Fig5Row compares one per-datum cost between existing R2PIMs and TIMELY
// (Fig. 5(c)).
type Fig5Row struct {
	Quantity string
	// ExistingFJ and TimelyFJ are the per-datum energies in fJ.
	ExistingFJ, TimelyFJ float64
	// Reduction is Existing/TIMELY.
	Reduction float64
}

// Fig5c computes the per-input and per-Psum movement and interface energies
// of Fig. 5(c): existing designs pay the full buffer/interface cost per
// crossbar, TIMELY amortises it over the sub-chip's crossbar row/column
// (NCB ≈ GridCols for inputs, GridRows for Psums) and pays only a local ALB
// access per hop.
func Fig5c() []Fig5Row {
	eR2 := params.EnergyL1RefRead
	nIn := float64(params.GridCols) // crossbars sharing one input row
	nPs := float64(params.GridRows) // crossbars sharing one psum column
	rows := []Fig5Row{
		{
			Quantity:   "data access / input",
			ExistingFJ: eR2,
			TimelyFJ:   params.EnergyXSubBuf + eR2/nIn,
		},
		{
			Quantity:   "data access / psum",
			ExistingFJ: 2 * eR2,
			TimelyFJ:   params.EnergyPSubBuf + 2*eR2/nPs,
		},
		{
			Quantity:   "interfacing / input",
			ExistingFJ: params.EnergyDAC,
			TimelyFJ:   params.EnergyDTC / nIn,
		},
		{
			Quantity:   "interfacing / psum",
			ExistingFJ: params.EnergyADC,
			TimelyFJ:   params.EnergyTDC / nPs,
		},
	}
	for i := range rows {
		rows[i].Reduction = rows[i].ExistingFJ / rows[i].TimelyFJ
	}
	return rows
}

// Fig5d returns the normalized unit energies of Fig. 5(d).
func Fig5d() []Share {
	return []Share{
		{"eR2 (buffer access)", 1},
		{"eP (P-subBuf)", params.EnergyPSubBuf / params.EnergyL1RefRead},
		{"eX (X-subBuf)", params.EnergyXSubBuf / params.EnergyL1RefRead},
		{"eDAC", 1},
		{"eDTC/eDAC", params.EnergyDTC / params.EnergyDAC},
		{"eADC", 1},
		{"eTDC/eADC", params.EnergyTDC / params.EnergyADC},
	}
}

func runFig5(context.Context, Env) ([]*report.Table, error) {
	t := report.New("Fig. 5(c): per-datum energy, existing R2PIM vs TIMELY",
		"quantity", "existing (fJ)", "TIMELY (fJ)", "reduction")
	for _, r := range Fig5c() {
		t.AddF(r.Quantity, r.ExistingFJ, r.TimelyFJ, report.X(r.Reduction))
	}
	d := report.New("Fig. 5(d): normalized unit energies", "unit", "normalized")
	for _, s := range Fig5d() {
		d.AddF(s.Name, s.Fraction)
	}
	return []*report.Table{t, d}, nil
}

func init() {
	register(Experiment{
		ID:          "fig5",
		Paper:       "Fig. 5(c,d)",
		Description: "per-input/per-psum energy and normalized unit energies",
		Run:         runFig5,
	})
}
