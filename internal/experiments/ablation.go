package experiments

import (
	"context"
	"fmt"

	"repro/internal/analog"
	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/params"
	"repro/internal/report"
	"repro/internal/stats"
)

// Ablation studies beyond the paper's figures, covering the design choices
// §V discusses qualitatively: the DTC/TDC sharing factor γ (throughput vs
// computational density), stuck-at-fault resilience of the analog datapath
// (the defect-rescue literature the paper leans on), and the cost of the
// two signed-weight encodings the crossbars support.

// GammaPoint is one γ design point.
type GammaPoint struct {
	Gamma int
	// CycleNS is the pipeline cycle in ns (γ × 25 ns).
	CycleNS float64
	// SubChipMM2 is the sub-chip area with the resized interface banks.
	SubChipMM2 float64
	// PeakTOPS is per-sub-chip peak (8-bit MACs/s, 1 op = 1 MAC).
	PeakTOPS float64
	// DensityTOPsMM2 is the resulting computational density.
	DensityTOPsMM2 float64
}

// GammaSweep evaluates the §V trade-off: fewer conversions per DTC/TDC
// (small γ) shortens the cycle but pays interface area; the Table II design
// point is γ=8.
func GammaSweep(gammas []int) []GammaPoint {
	var pts []GammaPoint
	for _, g := range gammas {
		cfg := params.DefaultTimely(8)
		cfg.Gamma = g
		d := area.TimelyDesignPoint(cfg)
		pts = append(pts, GammaPoint{
			Gamma:          g,
			CycleNS:        d.CycleNS,
			SubChipMM2:     d.SubChipUM2 / 1e6,
			PeakTOPS:       d.PeakTOPS,
			DensityTOPsMM2: d.DensityTOPsMM2,
		})
	}
	return pts
}

// DefectPoint is one stuck-at-fault rate of the defect ablation.
type DefectPoint struct {
	// Rate is the stuck-cell fraction; Faults the realised count.
	Rate   float64
	Faults int
	// Accuracy is the analog CNN accuracy at that defect level.
	Accuracy float64
}

// DefectSweep maps the synthetic CNN (memoized per seed) onto faulty
// crossbars at increasing stuck-at rates and measures the accuracy averaged
// over several fault-map draws (§V: "TIMELY ... leverages algorithm
// resilience of CNNs/DNNs to counter hardware vulnerability"; no
// defect-aware retraining or remapping is applied, so this is the
// unprotected floor the rescue literature improves on). The fault maps
// draw under the given sampling regime: v1 spends one deviate per cell of
// the 16×12 crossbar grid (~12.6M per draw), v2/v3 one binomial count per
// crossbar plus O(faults) position draws — the sublinear hot path the
// sweep's wall-clock floor collapsed onto. Under v3 each draw's generator
// is keyed by its (seed, draw) coordinates and each crossbar by its grid
// slot, so the sweep is byte-stable at any worker count by construction
// rather than by careful stream ordering.
func DefectSweep(ctx context.Context, seed uint64, rates []float64, sampler stats.SamplerVersion) ([]DefectPoint, error) {
	sampler = sampler.Resolve()
	tc, err := defectCNN(seed)
	if err != nil {
		return nil, err
	}
	cnn, test := tc.cnn, tc.test
	const draws = 5
	// Every (rate, draw) evaluation is independent — own fault map, own
	// noise RNG derived from the draw index — so the grid runs on the
	// worker budget and reduces in index order for identical output.
	type unit struct {
		acc    float64
		faults int
	}
	units := make([]unit, len(rates)*draws)
	err = parallelEach(ctx, len(units), func(i int) error {
		rate, d := rates[i/draws], i%draws
		a, err := cnn.MapAnalog(core.Options{
			Noise:         &analog.Noise{RNG: trialRNG(seed, d, seed+uint64(d)*101+1, sampler)},
			InterfaceBits: 24,
		}, rate)
		if err != nil {
			return err
		}
		acc, err := a.Accuracy(test)
		if err != nil {
			return err
		}
		units[i] = unit{acc: acc, faults: a.Faults()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pts []DefectPoint
	for ri, rate := range rates {
		sum, faults := 0.0, 0
		for d := 0; d < draws; d++ {
			u := units[ri*draws+d]
			sum += u.acc
			faults += u.faults
		}
		pts = append(pts, DefectPoint{Rate: rate, Faults: faults / draws, Accuracy: sum / draws})
	}
	return pts, nil
}

// DefectResult is one functional-CNN evaluation at a fixed stuck-at rate —
// the form the public sim facade serves.
type DefectResult struct {
	// IntAcc is the 8-bit integer reference accuracy of the trained CNN;
	// AnalogAcc the analog-datapath accuracy at the fault rate, averaged
	// over Trials fault-map draws.
	IntAcc, AnalogAcc float64
	// AccP10/AccP50/AccP90 summarise the per-draw accuracy spread
	// (percentiles over the Trials draws, one sort via
	// stats.PercentilesInto).
	AccP10, AccP50, AccP90 float64
	// Faults is the mean realised stuck-cell count per draw.
	Faults int
	// Trials is the fault-map draw count.
	Trials int
	// Sampler is the resolved sampling regime the fault maps drew under.
	Sampler stats.SamplerVersion
}

// AnalogCNNAccuracy maps the synthetic-image CNN (memoized per seed, shared
// with DefectSweep) onto faulty crossbars at one stuck-at rate and measures
// the analog accuracy over trials independent fault-map draws. Draw d uses
// the same RNG stream DefectSweep gives its d-th draw under the same
// regime, so the facade and the ablation experiment agree exactly at equal
// (seed, rate, draws, sampler).
func AnalogCNNAccuracy(ctx context.Context, seed uint64, trials int, faultRate float64, sampler stats.SamplerVersion) (*DefectResult, error) {
	// A one-member batch: the fused executor (batch.go) IS the single path,
	// so service-batched and standalone evaluations share every code path.
	rs, err := AnalogCNNAccuracyBatch(ctx, []uint64{seed}, trials, faultRate, sampler)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// SchemePoint compares the signed-weight encodings.
type SchemePoint struct {
	Scheme string
	// ColumnsPer8bWeight is the physical bit-cell columns per 8-bit weight.
	ColumnsPer8bWeight int
	// Conversions is the A/D conversions per weight per wave.
	Conversions int
	// Exact notes both schemes recover the signed dot exactly.
	Exact bool
}

// SchemeComparison tabulates the differential vs offset-binary signed
// encodings implemented by package reram (the paper's budget assumes the
// sub-ranged two-column layout; the functional simulator defaults to
// differential for exactness).
func SchemeComparison() []SchemePoint {
	cpw := params.DefaultTimely(8).ColumnsPerWeight()
	return []SchemePoint{
		{Scheme: "differential (pos/neg column pair)", ColumnsPer8bWeight: 2 * cpw, Conversions: 2 * cpw, Exact: true},
		{Scheme: "offset-binary + reference column", ColumnsPer8bWeight: cpw + 1, Conversions: cpw + 1, Exact: true},
		{Scheme: "paper accounting (unsigned sub-range)", ColumnsPer8bWeight: cpw, Conversions: cpw, Exact: false},
	}
}

func runAblation(ctx context.Context, env Env) ([]*report.Table, error) {
	g := report.New("Ablation: DTC/TDC sharing factor gamma (Table II point: 8)",
		"gamma", "cycle (ns)", "sub-chip mm^2", "peak TOPS/sub-chip", "TOPs/(s*mm^2)")
	for _, p := range GammaSweep([]int{1, 2, 4, 8, 16, 32}) {
		g.AddF(p.Gamma, p.CycleNS, fmt.Sprintf("%.2f", p.SubChipMM2),
			fmt.Sprintf("%.2f", p.PeakTOPS), fmt.Sprintf("%.2f", p.DensityTOPsMM2))
	}
	pts, err := DefectSweep(ctx, 5, []float64{0, 0.001, 0.01, 0.05, 0.15, 0.30}, env.Sampler)
	if err != nil {
		return nil, err
	}
	d := report.New("Ablation: stuck-at faults vs analog CNN accuracy",
		"fault rate", "stuck cells", "accuracy")
	for _, p := range pts {
		d.AddF(report.Pct(p.Rate), p.Faults, report.Pct(p.Accuracy))
	}
	s := report.New("Ablation: signed-weight encodings",
		"scheme", "cols / 8-bit weight", "conversions / wave", "exact signed dot")
	for _, p := range SchemeComparison() {
		ex := "yes"
		if !p.Exact {
			ex = "n/a (unsigned)"
		}
		s.AddF(p.Scheme, p.ColumnsPer8bWeight, p.Conversions, ex)
	}
	return []*report.Table{g, d, s}, nil
}

func init() {
	register(Experiment{
		ID:          "ablation",
		Paper:       "§V design choices",
		Description: "gamma sharing, defect resilience and signed-scheme ablations",
		Run:         runAblation,
	})
}
