package experiments

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/core"
)

// BenchmarkAccuracyTrial measures one Monte-Carlo trial of the §VI-B
// accuracy study: mapping the memoized quantised classifier onto functional
// sub-chips and evaluating the held-out test split through the analog path.
// Training is memoized outside the timed loop.
func BenchmarkAccuracyTrial(b *testing.B) {
	tm, err := accuracyMLP(2020)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := tm.q.MapAnalog(core.Options{
			Noise:         analog.DefaultNoise(2020 + uint64(i)*7919),
			InterfaceBits: 24,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Accuracy(tm.test); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDefectTrial measures one (rate, draw) unit of the stuck-at-fault
// ablation: mapping the memoized CNN onto faulted crossbars and evaluating
// the test split.
func BenchmarkDefectTrial(b *testing.B) {
	tc, err := defectCNN(5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := tc.cnn.MapAnalog(core.Options{
			Noise:         analog.DefaultNoise(uint64(i) + 1),
			InterfaceBits: 24,
		}, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Accuracy(tc.test); err != nil {
			b.Fatal(err)
		}
	}
}
