package experiments

import (
	"fmt"
	"testing"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/stats"
)

// samplerBenchRegimes are the sampling regimes every Monte-Carlo
// benchmark below runs under, so the bench output is a per-regime cost
// comparison (the CI bench-smoke step uploads it as an artifact).
var samplerBenchRegimes = []stats.SamplerVersion{stats.SamplerV1, stats.SamplerV2, stats.SamplerV3}

// BenchmarkAccuracyTrial measures one Monte-Carlo trial of the §VI-B
// accuracy study under each sampling regime: mapping the memoized
// quantised classifier onto functional sub-chips and evaluating the
// held-out test split through the analog path at the design-point noise
// (the regime's Gaussian hot path — Box-Muller vs Ziggurat — dominates
// the delta). Training is memoized outside the timed loop.
func BenchmarkAccuracyTrial(b *testing.B) {
	tm, err := accuracyMLP(2020)
	if err != nil {
		b.Fatal(err)
	}
	for _, sampler := range samplerBenchRegimes {
		b.Run(fmt.Sprintf("sampler=%s", sampler), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a, err := tm.q.MapAnalog(core.Options{
					Noise:         analog.DefaultNoiseSampler(2020+uint64(i)*7919, sampler),
					InterfaceBits: 24,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := a.Accuracy(tm.test); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDefectTrial measures one (rate, draw) unit of the stuck-at
// fault ablation exactly as DefectSweep executes it — zero-sigma noise
// RNG (the defect study injects faults, not timing noise), fault maps
// drawn at mapping time, deterministic batched evaluation — at the
// ablation's low-rate points under each sampling regime. The v1 regime
// spends one deviate per cell of the 16×12 crossbar grid (~12.6M per
// trial) regardless of rate; v2 and the counter-based v3 spend one
// binomial draw per crossbar plus O(faults), collapsing the draw cost at
// low rates (v3 additionally pays one Philox block per ~2 deviates
// instead of one splitmix round per deviate).
func BenchmarkDefectTrial(b *testing.B) {
	tc, err := defectCNN(5)
	if err != nil {
		b.Fatal(err)
	}
	for _, rate := range []float64{0.001, 0.01} {
		for _, sampler := range samplerBenchRegimes {
			b.Run(fmt.Sprintf("rate=%g/sampler=%s", rate, sampler), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					a, err := tc.cnn.MapAnalog(core.Options{
						Noise:         &analog.Noise{RNG: stats.NewRNGSampler(uint64(i)+1, sampler)},
						InterfaceBits: 24,
					}, rate)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := a.Accuracy(tc.test); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
