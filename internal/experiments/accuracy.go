package experiments

import (
	"context"
	"fmt"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/params"
	"repro/internal/report"
	"repro/internal/stats"
)

// AccuracyResult is the §VI-B accuracy study on the synthetic workload.
type AccuracyResult struct {
	// FloatAcc / IntAcc are the float and 8-bit-integer reference test
	// accuracies; AnalogAcc the functional-TIMELY accuracy at the paper's
	// design-point noise, averaged over Trials Monte-Carlo seeds.
	FloatAcc, IntAcc, AnalogAcc float64
	// Loss is IntAcc − AnalogAcc (the paper claims ≤ 0.1 % on CNNs).
	Loss float64
	// CascadeErrorPS is √12·ε, against MarginPS (the DTC design margin).
	CascadeErrorPS, MarginPS float64
	// AccP10/AccP50/AccP90 summarise the per-trial analog-accuracy spread
	// (linear-interpolated percentiles over the Trials draws, computed
	// with one sort via stats.PercentilesInto).
	AccP10, AccP50, AccP90 float64
	// Trials is the Monte-Carlo repeat count.
	Trials int
	// Sampler is the resolved sampling regime the trials drew under.
	Sampler stats.SamplerVersion
}

// NoiseSweepPoint is one ε point of the noise ablation.
type NoiseSweepPoint struct {
	// EpsilonPS is the per-X-subBuf error; AnalogAcc the resulting accuracy.
	EpsilonPS float64
	AnalogAcc float64
	// WithinMargin reports whether √12·ε fits the design margin.
	WithinMargin bool
}

// RunAccuracy trains the synthetic classifier (memoized per seed, shared
// with RunNoiseSweep), quantises it to TIMELY's 8-bit datapath and measures
// the analog accuracy at the paper's design-point noise, drawing under the
// given sampling regime (stats.SamplerDefault resolves to the counter-based
// v3).
func RunAccuracy(ctx context.Context, seed uint64, trials int, sampler stats.SamplerVersion) (*AccuracyResult, error) {
	return AnalogMLPAccuracy(ctx, seed, trials, params.DefaultXSubBufSigma, sampler)
}

// AnalogMLPAccuracy is the generalized §VI-B accuracy study behind the
// public sim facade: the design-point methodology of RunAccuracy at an
// arbitrary per-X-subBuf error epsPS (in ps). Each Monte-Carlo trial draws
// its noise RNG from the trial index under the given sampling regime
// (keyed trial substreams under the counter-based v3 default, additive
// seed derivation under v1/v2 — see trialRNG), so results are
// deterministic per (seed, trials, epsPS, sampler) at any worker count; at
// the design-point epsilon it is byte-for-byte RunAccuracy. The trained
// classifier itself is regime-independent
// (training draws stay on the legacy stream), so FloatAcc/IntAcc — and the
// noise distribution, though not its exact deviates — are identical across
// regimes.
func AnalogMLPAccuracy(ctx context.Context, seed uint64, trials int, epsPS float64, sampler stats.SamplerVersion) (*AccuracyResult, error) {
	// A one-member batch: the fused executor (batch.go) IS the single path,
	// so service-batched and standalone evaluations share every code path.
	rs, err := AnalogMLPAccuracyBatch(ctx, []uint64{seed}, trials, epsPS, sampler)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// RunNoiseSweep sweeps the X-subBuf error ε and reports analog accuracy —
// the ablation behind the paper's choice of ε, cascade limit and margin.
// The classifier is memoized per seed, shared with RunAccuracy; the noise
// draws follow the given sampling regime.
func RunNoiseSweep(ctx context.Context, seed uint64, epsilons []float64, sampler stats.SamplerVersion) ([]NoiseSweepPoint, error) {
	sampler = sampler.Resolve()
	tm, err := accuracyMLP(seed)
	if err != nil {
		return nil, err
	}
	q, test := tm.q, tm.test
	// Each ε point owns its noise RNG, so the sweep runs on the worker
	// budget with results slotted by index.
	pts := make([]NoiseSweepPoint, len(epsilons))
	err = parallelEach(ctx, len(epsilons), func(i int) error {
		eps := epsilons[i]
		noise := &analog.Noise{
			XSubBufSigma:    eps,
			PSubBufRelSigma: params.DefaultPSubBufRelSigma,
			ComparatorSigma: params.DefaultComparatorSigma,
			RNG:             stats.NewRNGSampler(seed+1, sampler),
		}
		a, err := q.MapAnalog(core.Options{Noise: noise, InterfaceBits: 24,
			InputHops: params.MaxCascadedXSubBufs})
		if err != nil {
			return err
		}
		acc, err := a.Accuracy(test)
		if err != nil {
			return err
		}
		pts[i] = NoiseSweepPoint{
			EpsilonPS:    eps,
			AnalogAcc:    acc,
			WithinMargin: analog.CascadeErrorBound(params.MaxCascadedXSubBufs, eps) <= params.TDelMargin,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

func runAccuracy(ctx context.Context, env Env) ([]*report.Table, error) {
	res, err := RunAccuracy(ctx, 2020, 5, env.Sampler)
	if err != nil {
		return nil, err
	}
	t := report.New("Accuracy under circuit noise (synthetic workload, §VI-B methodology)",
		"metric", "value")
	t.Add("float32 test accuracy", report.Pct(res.FloatAcc))
	t.Add("8-bit integer accuracy", report.Pct(res.IntAcc))
	t.Add(fmt.Sprintf("analog accuracy (design point, %d trials)", res.Trials), report.Pct(res.AnalogAcc))
	t.Add("accuracy loss", fmt.Sprintf("%.2f pp (paper: <=0.1%% on CNNs)", res.Loss*100))
	t.Add("cascade error sqrt(12)*eps", fmt.Sprintf("%.1f ps (margin %.0f ps)", res.CascadeErrorPS, res.MarginPS))
	pts, err := RunNoiseSweep(ctx, 2020, []float64{0, 5, 10, 20, 50, 100, 200, 400, 800}, env.Sampler)
	if err != nil {
		return nil, err
	}
	s := report.New("Noise ablation: X-subBuf error vs analog accuracy",
		"epsilon (ps)", "accuracy", "within margin")
	for _, p := range pts {
		in := "no"
		if p.WithinMargin {
			in = "yes"
		}
		s.AddF(p.EpsilonPS, report.Pct(p.AnalogAcc), in)
	}
	return []*report.Table{t, s}, nil
}

func init() {
	register(Experiment{
		ID:          "accuracy",
		Paper:       "§VI-B Accuracy",
		Description: "inference accuracy under injected circuit noise",
		Run:         runAccuracy,
	})
}
