package experiments

import (
	"fmt"
	"io"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/params"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AccuracyResult is the §VI-B accuracy study on the synthetic workload.
type AccuracyResult struct {
	// FloatAcc / IntAcc are the float and 8-bit-integer reference test
	// accuracies; AnalogAcc the functional-TIMELY accuracy at the paper's
	// design-point noise, averaged over Trials Monte-Carlo seeds.
	FloatAcc, IntAcc, AnalogAcc float64
	// Loss is IntAcc − AnalogAcc (the paper claims ≤ 0.1 % on CNNs).
	Loss float64
	// CascadeErrorPS is √12·ε, against MarginPS (the DTC design margin).
	CascadeErrorPS, MarginPS float64
	// Trials is the Monte-Carlo repeat count.
	Trials int
}

// NoiseSweepPoint is one ε point of the noise ablation.
type NoiseSweepPoint struct {
	// EpsilonPS is the per-X-subBuf error; AnalogAcc the resulting accuracy.
	EpsilonPS float64
	AnalogAcc float64
	// WithinMargin reports whether √12·ε fits the design margin.
	WithinMargin bool
}

// RunAccuracy trains the synthetic classifier, quantises it to TIMELY's
// 8-bit datapath and measures the analog accuracy at the design point.
func RunAccuracy(seed uint64, trials int) (*AccuracyResult, error) {
	rng := stats.NewRNG(seed)
	ds := workload.SyntheticClusters(rng, 2400, 16, 4, 0.30)
	train, test := ds.Split(0.8)
	m := workload.NewMLP(rng, 16, 48, 4)
	// Noise-aware training (§VI-B: Gaussian noise added during training).
	m.TrainWithNoise(train, rng, 30, 0.05, 0.02)
	q, err := workload.Quantize(m, train, 8)
	if err != nil {
		return nil, err
	}
	res := &AccuracyResult{
		FloatAcc:       m.Accuracy(test),
		IntAcc:         q.AccuracyInt(test),
		CascadeErrorPS: analog.CascadeErrorBound(params.MaxCascadedXSubBufs, params.DefaultXSubBufSigma),
		MarginPS:       params.TDelMargin,
		Trials:         trials,
	}
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		a, err := q.MapAnalog(core.Options{
			Noise:         analog.DefaultNoise(seed + uint64(trial)*7919),
			InterfaceBits: 24,
			InputHops:     params.MaxCascadedXSubBufs, // worst-case cascade (§V)
		})
		if err != nil {
			return nil, err
		}
		acc, err := a.Accuracy(test)
		if err != nil {
			return nil, err
		}
		sum += acc
	}
	res.AnalogAcc = sum / float64(trials)
	res.Loss = res.IntAcc - res.AnalogAcc
	return res, nil
}

// RunNoiseSweep sweeps the X-subBuf error ε and reports analog accuracy —
// the ablation behind the paper's choice of ε, cascade limit and margin.
func RunNoiseSweep(seed uint64, epsilons []float64) ([]NoiseSweepPoint, error) {
	rng := stats.NewRNG(seed)
	ds := workload.SyntheticClusters(rng, 2400, 16, 4, 0.30)
	train, test := ds.Split(0.8)
	m := workload.NewMLP(rng, 16, 48, 4)
	m.TrainWithNoise(train, rng, 30, 0.05, 0.02)
	q, err := workload.Quantize(m, train, 8)
	if err != nil {
		return nil, err
	}
	var pts []NoiseSweepPoint
	for _, eps := range epsilons {
		noise := &analog.Noise{
			XSubBufSigma:    eps,
			PSubBufRelSigma: params.DefaultPSubBufRelSigma,
			ComparatorSigma: params.DefaultComparatorSigma,
			RNG:             stats.NewRNG(seed + 1),
		}
		a, err := q.MapAnalog(core.Options{Noise: noise, InterfaceBits: 24,
			InputHops: params.MaxCascadedXSubBufs})
		if err != nil {
			return nil, err
		}
		acc, err := a.Accuracy(test)
		if err != nil {
			return nil, err
		}
		pts = append(pts, NoiseSweepPoint{
			EpsilonPS:    eps,
			AnalogAcc:    acc,
			WithinMargin: analog.CascadeErrorBound(params.MaxCascadedXSubBufs, eps) <= params.TDelMargin,
		})
	}
	return pts, nil
}

func renderAccuracy(w io.Writer) error {
	res, err := RunAccuracy(2020, 5)
	if err != nil {
		return err
	}
	t := report.New("Accuracy under circuit noise (synthetic workload, §VI-B methodology)",
		"metric", "value")
	t.Add("float32 test accuracy", report.Pct(res.FloatAcc))
	t.Add("8-bit integer accuracy", report.Pct(res.IntAcc))
	t.Add(fmt.Sprintf("analog accuracy (design point, %d trials)", res.Trials), report.Pct(res.AnalogAcc))
	t.Add("accuracy loss", fmt.Sprintf("%.2f pp (paper: <=0.1%% on CNNs)", res.Loss*100))
	t.Add("cascade error sqrt(12)*eps", fmt.Sprintf("%.1f ps (margin %.0f ps)", res.CascadeErrorPS, res.MarginPS))
	if err := t.Render(w); err != nil {
		return err
	}
	pts, err := RunNoiseSweep(2020, []float64{0, 5, 10, 20, 50, 100, 200, 400, 800})
	if err != nil {
		return err
	}
	s := report.New("Noise ablation: X-subBuf error vs analog accuracy",
		"epsilon (ps)", "accuracy", "within margin")
	for _, p := range pts {
		in := "no"
		if p.WithinMargin {
			in = "yes"
		}
		s.AddF(p.EpsilonPS, report.Pct(p.AnalogAcc), in)
	}
	return s.Render(w)
}

func init() {
	register(Experiment{
		ID:          "accuracy",
		Paper:       "§VI-B Accuracy",
		Description: "inference accuracy under injected circuit noise",
		Render:      renderAccuracy,
	})
}
