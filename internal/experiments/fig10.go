package experiments

import (
	"context"
	"repro/internal/area"
	"repro/internal/params"
	"repro/internal/report"
)

// Fig10a returns the ReRAM-array share of chip area per accelerator.
func Fig10a() []Share {
	return []Share{
		{"PRIME", area.ReRAMSharePrime(params.DefaultPrime().Crossbars)},
		{"ISAAC", area.ReRAMShareIsaac(params.DefaultIsaac().Crossbars)},
		{"TIMELY", area.ReRAMShareTimely()},
	}
}

// Fig10b returns TIMELY's sub-chip area breakdown.
func Fig10b() []area.Share { return area.Breakdown() }

func runFig10(context.Context, Env) ([]*report.Table, error) {
	a := report.New("Fig. 10(a): ReRAM crossbar area / chip area", "accelerator", "share")
	for _, s := range Fig10a() {
		a.Add(s.Name, report.Pct(s.Fraction))
	}
	b := report.New("Fig. 10(b): TIMELY area breakdown (sub-chip total "+
		area.FormatMM2(area.SubChipArea())+")", "component", "share")
	for _, s := range Fig10b() {
		b.Add(s.Name, report.Pct(s.Fraction))
	}
	return []*report.Table{a, b}, nil
}

func init() {
	register(Experiment{
		ID:          "fig10",
		Paper:       "Fig. 10(a,b)",
		Description: "ReRAM area share and TIMELY area breakdown",
		Run:         runFig10,
	})
}
