package experiments

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/stats"
)

// TestBatchedAccuracyByteIdentity is the ISSUE 9 identity gate: a fused
// multi-seed batch must return, for every member, the exact result the
// single-seed entry point computes — under every sampling regime and at
// every worker count. Per-trial RNG streams are keyed by (seed, trial)
// alone, so the fusion cannot change a draw; this test pins that.
func TestBatchedAccuracyByteIdentity(t *testing.T) {
	samplers := []stats.SamplerVersion{stats.SamplerV1, stats.SamplerV2, stats.SamplerV3}
	pars := []int{1, 2, 8}
	if testing.Short() {
		samplers = []stats.SamplerVersion{stats.SamplerV3}
		pars = []int{2}
	}
	defer setInnerPar(runtime.GOMAXPROCS(0))
	ctx := context.Background()
	// Two members so the fused grid actually interleaves seeds; the seeds
	// reuse the memoized trained models across regimes and par levels.
	seeds := []uint64{2020, 2021}
	const trials = 3
	for _, sampler := range samplers {
		for _, par := range pars {
			setInnerPar(par)
			batch, err := AnalogMLPAccuracyBatch(ctx, seeds, trials, 200, sampler)
			if err != nil {
				t.Fatal(err)
			}
			for m, seed := range seeds {
				single, err := AnalogMLPAccuracy(ctx, seed, trials, 200, sampler)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(batch[m], single) {
					t.Errorf("MLP %v par=%d seed=%d: batched %+v != single %+v",
						sampler, par, seed, batch[m], single)
				}
			}
		}
	}
}

// TestBatchedDefectByteIdentity is the CNN half of the identity gate: the
// defect study's fused batch (which takes the deterministic cross-image
// ForwardBatch path) equals the single path member by member.
func TestBatchedDefectByteIdentity(t *testing.T) {
	samplers := []stats.SamplerVersion{stats.SamplerV1, stats.SamplerV2, stats.SamplerV3}
	pars := []int{1, 2, 8}
	if testing.Short() {
		samplers = []stats.SamplerVersion{stats.SamplerV3}
		pars = []int{2}
	}
	defer setInnerPar(runtime.GOMAXPROCS(0))
	ctx := context.Background()
	seeds := []uint64{5, 6}
	const trials = 3
	for _, sampler := range samplers {
		for _, par := range pars {
			setInnerPar(par)
			batch, err := AnalogCNNAccuracyBatch(ctx, seeds, trials, 0.001, sampler)
			if err != nil {
				t.Fatal(err)
			}
			for m, seed := range seeds {
				single, err := AnalogCNNAccuracy(ctx, seed, trials, 0.001, sampler)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(batch[m], single) {
					t.Errorf("CNN %v par=%d seed=%d: batched %+v != single %+v",
						sampler, par, seed, batch[m], single)
				}
			}
		}
	}
}
