package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Inner parallel loops (defect-sweep draws, Monte-Carlo trials, noise-sweep
// points) draw their concurrency from one shared pool of compute tokens, so
// heavy experiments running at the same time cannot multiply the budget:
// however many experiments overlap, at most the pool size of inner units
// execute at once. Run sizes the pool from its par argument so a -par 1
// execution is genuinely serial end to end; direct Render calls default to
// GOMAXPROCS. The pool is additionally capped at GOMAXPROCS — inner loops
// are pure throughput, and workers beyond the core count only pile up
// concurrent mapped-crossbar allocations without finishing any sooner.
var innerPool atomic.Pointer[tokenPool]

type tokenPool struct {
	size   int
	tokens chan struct{}
}

func init() { setInnerPar(runtime.GOMAXPROCS(0)) }

func setInnerPar(n int) {
	if max := runtime.GOMAXPROCS(0); n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	// Same effective size: keep the live pool. Run is no longer a
	// once-per-process entry point (timelyd calls it per request), and
	// replacing the pool would hand each overlapping Run its own token
	// budget — sharing the instance is what bounds the aggregate inner
	// concurrency at one pool size however many Runs overlap.
	if cur := innerPool.Load(); cur != nil && cur.size == n {
		return
	}
	p := &tokenPool{size: n}
	if n > 1 {
		p.tokens = make(chan struct{}, n)
	}
	innerPool.Store(p)
}

// parallelEach runs f(0..n-1) on workers bounded by the shared inner-work
// pool and returns the lowest-index error. Every unit owns its index's slot
// of whatever slice the caller writes into, and units derive their RNG
// streams from their index, so the results are identical at any worker
// count. Cancellation is checked before each unit: once ctx is done, no
// further units start and ctx's error is returned (it wins over any unit
// error at a higher index, matching serial early-exit behaviour).
func parallelEach(ctx context.Context, n int, f func(i int) error) error {
	pool := innerPool.Load()
	par := pool.size
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				pool.tokens <- struct{}{}
				errs[i] = f(i)
				<-pool.tokens
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
