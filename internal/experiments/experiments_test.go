package experiments

import (
	"bytes"
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/energy"
	"repro/internal/report"
	"repro/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablation", "accuracy", "fig10", "fig11", "fig1c", "fig4",
		"fig5", "fig8a", "fig8b", "fig9", "layers", "table4", "table5"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, got[i].ID, id)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99"); err == nil {
		t.Errorf("unknown experiment accepted")
	}
}

func TestAllExperimentsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full render is slow")
	}
	for _, e := range All() {
		var buf bytes.Buffer
		if err := e.Render(context.Background(), &buf); err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
	}
}

func TestFig1cTimelyDominatesPIMs(t *testing.T) {
	pts := Fig1c()
	var timely8 Fig1cPoint
	for _, p := range pts {
		if p.Name == "TIMELY" && p.OpBits == 8 {
			timely8 = p
		}
	}
	for _, p := range pts {
		if p.Name == "TIMELY" || p.OpBits != 8 {
			continue
		}
		if timely8.EfficiencyTOPsW <= p.EfficiencyTOPsW {
			t.Errorf("TIMELY-8 efficiency does not dominate %s", p.Name)
		}
	}
}

func TestFig4aCounts(t *testing.T) {
	rows := Fig4a()
	if len(rows) != 2 {
		t.Fatalf("Fig4a rows = %d, want 2", len(rows))
	}
	// §III-A: "more than 55 million inputs and 15 million Psums" during
	// VGG-D and ResNet-50 inference. Our CONV-layer counting model gives
	// 81.7M/108M for VGG-D (the psum figure counts write+read accesses).
	vgg := rows[0]
	if vgg.Network != "VGG-D" {
		t.Fatalf("first row = %s", vgg.Network)
	}
	if vgg.Inputs < 55e6 {
		t.Errorf("VGG-D inputs = %.3g, want >55M (§III-A)", vgg.Inputs)
	}
	if vgg.Psums < 15e6 {
		t.Errorf("VGG-D psums = %.3g, want >15M (§III-A)", vgg.Psums)
	}
	res := rows[1]
	if res.Inputs < 15e6 {
		t.Errorf("ResNet-50 inputs = %.3g, implausibly low", res.Inputs)
	}
}

func TestFig4bSharesSumBelowOne(t *testing.T) {
	b, err := Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range b.Shares {
		if s.Fraction < 0 || s.Fraction > 1 {
			t.Errorf("share %s = %v out of [0,1]", s.Name, s.Fraction)
		}
		sum += s.Fraction
	}
	if sum > 1.001 || sum < 0.9 {
		t.Errorf("PRIME shares sum to %.3f, want ≈1 (movement+interfaces dominate)", sum)
	}
}

func TestFig5Reductions(t *testing.T) {
	rows := Fig5c()
	if len(rows) != 4 {
		t.Fatalf("Fig5c rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Reduction <= 1 {
			t.Errorf("%s: reduction %.2f must exceed 1", r.Quantity, r.Reduction)
		}
	}
	// Innovation #2: interface reductions are q1·NCB and q2·NCB.
	if math.Abs(rows[2].Reduction-600) > 1 {
		t.Errorf("interfacing/input reduction = %.1f, want 600 (q1 x NCBcols)", rows[2].Reduction)
	}
	if math.Abs(rows[3].Reduction-320) > 1 {
		t.Errorf("interfacing/psum reduction = %.1f, want 320 (q2 x NCBrows)", rows[3].Reduction)
	}
	// Innovation #1: data-access reductions are ≈NCB (i.e. ≈10x).
	if rows[0].Reduction < 5 || rows[0].Reduction > 15 {
		t.Errorf("data/input reduction = %.1f, want ≈NCB", rows[0].Reduction)
	}
}

func TestTable4Structure(t *testing.T) {
	rows := Table4()
	if len(rows) != 6 {
		t.Fatalf("Table4 rows = %d, want 6", len(rows))
	}
	for _, r := range rows[:4] {
		if r.EffImprovement <= 1 || r.DenImprovement <= 1 {
			t.Errorf("%s: TIMELY improvements %.1f/%.1f must exceed 1",
				r.Name, r.EffImprovement, r.DenImprovement)
		}
	}
	// Density gains track the paper closely: 31.2x (PRIME), 20.0x (ISAAC),
	// 6.4x (PipeLayer), 20.0x (AtomLayer); allow 10% model slack.
	wantDen := map[string]float64{"PRIME": 31.2, "ISAAC": 20.0, "PipeLayer": 6.4, "AtomLayer": 20.0}
	for _, r := range rows[:4] {
		want := wantDen[r.Name]
		if math.Abs(r.DenImprovement-want)/want > 0.10 {
			t.Errorf("%s density gain = %.1f, want ≈%.1f (Table IV)", r.Name, r.DenImprovement, want)
		}
	}
}

func TestFig8aGeomeans(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluates 15 networks x 4 accelerators")
	}
	rows, geo, err := Fig8a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("Fig8a rows = %d, want 15", len(rows))
	}
	for _, r := range rows {
		if r.OverPrime <= 1 || r.OverIsaac <= 1 {
			t.Errorf("%s: TIMELY does not win (%.2f / %.2f)", r.Network, r.OverPrime, r.OverIsaac)
		}
	}
	// Paper: geomean 10.0x over PRIME and 14.8x over ISAAC — one order of
	// magnitude; the model lands within 2x of both (EXPERIMENTS.md).
	if geo.OverPrime < 8 || geo.OverPrime > 30 {
		t.Errorf("geomean over PRIME = %.1f, want order of magnitude (paper: 10.0)", geo.OverPrime)
	}
	if geo.OverIsaac < 8 || geo.OverIsaac > 30 {
		t.Errorf("geomean over ISAAC = %.1f, want order of magnitude (paper: 14.8)", geo.OverIsaac)
	}
}

func TestFig9Reductions(t *testing.T) {
	f, err := RunFig9(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 9(a): ALB+O2IR ≈99 %, TDI ≈1 %.
	if f.SavingALBO2IR < 0.95 || f.SavingALBO2IR > 1 {
		t.Errorf("ALB+O2IR saving share = %.3f, want ≈0.99", f.SavingALBO2IR)
	}
	if f.SavingTDI < 0 || f.SavingTDI > 0.05 {
		t.Errorf("TDI saving share = %.3f, want ≈0.01", f.SavingTDI)
	}
	// Fig. 9(b): ≥99 % interface reduction.
	if red := 1 - f.TimelyInterfaceFJ/f.PrimeInterfaceFJ; red < 0.99 {
		t.Errorf("interface reduction = %.4f", red)
	}
	// Fig. 9(d): output movement reduction ≈87.1 %.
	outRed := 1 - f.TimelyByClass[energy.ClassOutput]/f.PrimeByClass[energy.ClassOutput]
	if math.Abs(outRed-0.871) > 0.03 {
		t.Errorf("output reduction = %.3f, want ≈0.871", outRed)
	}
	// TIMELY has no L2 level.
	if f.TimelyByLevel[energy.LevelL2] != 0 {
		t.Errorf("TIMELY shows L2 energy")
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	rows := Table5()
	wantPrime := []float64{1.35e6, 28.90e6, 7.23e6, 14.45e6, 3.61e6, 7.23e6}
	wantTimely := []float64{0.15e6, 3.21e6, 0.80e6, 1.61e6, 0.40e6, 0.80e6}
	for i, r := range rows {
		if math.Abs(r.Prime-wantPrime[i])/wantPrime[i] > 0.005 {
			t.Errorf("%s PRIME = %.3g, want %.3g", r.Layer, r.Prime, wantPrime[i])
		}
		if math.Abs(r.Timely-wantTimely[i])/wantTimely[i] > 0.01 {
			t.Errorf("%s TIMELY = %.3g, want %.3g", r.Layer, r.Timely, wantTimely[i])
		}
		if math.Abs(r.Saving-0.889) > 0.001 {
			t.Errorf("%s saving = %.4f, want 0.889", r.Layer, r.Saving)
		}
	}
}

func TestFig10Shares(t *testing.T) {
	shares := Fig10a()
	byName := map[string]float64{}
	for _, s := range shares {
		byName[s.Name] = s.Fraction
	}
	if math.Abs(byName["TIMELY"]-0.022) > 0.002 {
		t.Errorf("TIMELY ReRAM share = %.4f, want ≈0.022", byName["TIMELY"])
	}
	if byName["TIMELY"] < byName["ISAAC"] || byName["ISAAC"] < byName["PRIME"] {
		t.Errorf("Fig. 10(a) ordering broken: %v", byName)
	}
}

func TestFig11Reduction(t *testing.T) {
	r, err := RunFig11(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Reduction-0.68) > 0.07 {
		t.Errorf("intra-bank reduction = %.3f, want ≈0.68 (Fig. 11)", r.Reduction)
	}
}

func TestAccuracyDesignPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a classifier")
	}
	res, err := RunAccuracy(context.Background(), 2020, 3, stats.SamplerDefault)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntAcc < 0.9 {
		t.Fatalf("integer baseline accuracy %.3f too low to be meaningful", res.IntAcc)
	}
	if res.Loss > 0.005 {
		t.Errorf("design-point accuracy loss = %.4f, want ≤0.005 (paper: ≤0.001)", res.Loss)
	}
	if res.CascadeErrorPS > res.MarginPS {
		t.Errorf("cascade error %.1f ps exceeds margin %.1f ps", res.CascadeErrorPS, res.MarginPS)
	}
}

func TestNoiseSweepMonotoneTail(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a classifier")
	}
	pts, err := RunNoiseSweep(context.Background(), 2020, []float64{10, 800}, stats.SamplerDefault)
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].AnalogAcc >= pts[0].AnalogAcc {
		t.Errorf("800 ps accuracy (%.3f) not below 10 ps accuracy (%.3f)",
			pts[1].AnalogAcc, pts[0].AnalogAcc)
	}
	if pts[0].WithinMargin != true || pts[1].WithinMargin != false {
		t.Errorf("margin flags wrong: %v %v", pts[0].WithinMargin, pts[1].WithinMargin)
	}
}

func TestGammaSweepTradeoff(t *testing.T) {
	pts := GammaSweep([]int{1, 2, 4, 8, 16})
	for i := 1; i < len(pts); i++ {
		// More sharing: longer cycles, smaller area, lower peak.
		if pts[i].CycleNS <= pts[i-1].CycleNS {
			t.Errorf("cycle not increasing at gamma=%d", pts[i].Gamma)
		}
		if pts[i].SubChipMM2 >= pts[i-1].SubChipMM2 {
			t.Errorf("area not decreasing at gamma=%d", pts[i].Gamma)
		}
		if pts[i].PeakTOPS >= pts[i-1].PeakTOPS {
			t.Errorf("peak not decreasing at gamma=%d", pts[i].Gamma)
		}
	}
	// The Table II design point must reproduce the published density.
	for _, p := range pts {
		if p.Gamma == 8 {
			if math.Abs(p.DensityTOPsMM2-38.33)/38.33 > 0.1 {
				t.Errorf("gamma=8 density = %.2f, want ≈38.33 (Table IV)", p.DensityTOPsMM2)
			}
			if math.Abs(p.SubChipMM2-0.86) > 0.01 {
				t.Errorf("gamma=8 sub-chip area = %.3f, want 0.86 (Table II)", p.SubChipMM2)
			}
		}
	}
}

func TestDefectSweepDeclines(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a CNN")
	}
	pts, err := DefectSweep(context.Background(), 5, []float64{0, 0.30}, stats.SamplerDefault)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Accuracy < 0.9 {
		t.Fatalf("clean accuracy %.3f too low", pts[0].Accuracy)
	}
	if pts[1].Accuracy >= pts[0].Accuracy-0.2 {
		t.Errorf("30%% faults barely hurt: %.3f -> %.3f", pts[0].Accuracy, pts[1].Accuracy)
	}
	if pts[0].Faults != 0 || pts[1].Faults == 0 {
		t.Errorf("fault counts wrong: %d / %d", pts[0].Faults, pts[1].Faults)
	}
}

func TestSchemeComparison(t *testing.T) {
	pts := SchemeComparison()
	if len(pts) != 3 {
		t.Fatalf("schemes = %d", len(pts))
	}
	if pts[0].ColumnsPer8bWeight != 4 || pts[1].ColumnsPer8bWeight != 3 || pts[2].ColumnsPer8bWeight != 2 {
		t.Errorf("column budgets wrong: %+v", pts)
	}
}

func TestLayerProfile(t *testing.T) {
	rows, err := LayerProfile("VGG-D")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("VGG-D layer rows = %d, want 16", len(rows))
	}
	// conv1_2 carries the largest L1 input-read count (Table V's 3.21 M).
	for _, r := range rows {
		if r.Layer == "conv1_2" {
			if math.Abs(r.InputReads-3.21e6)/3.21e6 > 0.01 {
				t.Errorf("conv1_2 input reads = %.3g, want 3.21M", r.InputReads)
			}
			if r.Copies < 2 {
				t.Errorf("conv1_2 has no O2IR duplication")
			}
		}
		if r.Cycles <= 0 || r.SubChips <= 0 || r.EnergyFJ <= 0 {
			t.Errorf("%s has degenerate profile %+v", r.Layer, r)
		}
	}
	if _, err := LayerProfile("nonexistent"); err == nil {
		t.Errorf("unknown network accepted")
	}
}

func TestRunPreservesOrderAndCapturesErrors(t *testing.T) {
	boom := errors.New("boom")
	mk := func(id string, err error) Experiment {
		return Experiment{
			ID: id, Paper: id, Description: id,
			Run: func(context.Context, Env) ([]*report.Table, error) {
				if err != nil {
					return nil, err
				}
				return []*report.Table{report.New(id, "h").Add("v")}, nil
			},
		}
	}
	exps := []Experiment{mk("a", nil), mk("b", boom), mk("c", nil)}
	results := Run(context.Background(), exps, Options{Par: 3})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, want := range []string{"a", "b", "c"} {
		if results[i].Experiment.ID != want {
			t.Errorf("results[%d] = %s, want %s", i, results[i].Experiment.ID, want)
		}
	}
	if !errors.Is(results[1].Err, boom) {
		t.Errorf("error not captured: %v", results[1].Err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("failing experiment stopped its siblings")
	}
	if results[0].Tables == nil || results[2].Tables == nil {
		t.Errorf("successful results missing tables")
	}

	var buf bytes.Buffer
	err := WriteText(&buf, results)
	if err == nil || !strings.Contains(err.Error(), "b:") {
		t.Errorf("WriteText error = %v, want wrapped b failure", err)
	}
	if !strings.Contains(buf.String(), "=== a — a ===") {
		t.Errorf("sections before the failure were not written: %q", buf.String())
	}
}

func TestMemoComputesOncePerKey(t *testing.T) {
	var m memo[int]
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if v != 42 || err != nil {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", calls.Load())
	}
	if _, err := m.Do("fail", func() (int, error) { return 0, errors.New("x") }); err == nil {
		t.Errorf("error not propagated")
	}
	// Errors are memoized too (deterministic inputs): the failure sticks.
	if _, err := m.Do("fail", func() (int, error) { return 1, nil }); err == nil {
		t.Errorf("memoized error was recomputed")
	}
	m.reset()
	if v, _ := m.Do("fail", func() (int, error) { return 7, nil }); v != 7 {
		t.Errorf("reset did not clear entries")
	}
}

func TestResultDocument(t *testing.T) {
	e, err := ByID("table5")
	if err != nil {
		t.Fatal(err)
	}
	results := Run(context.Background(), []Experiment{e}, Options{Par: 1})
	doc := results[0].Document()
	if doc.ID != "table5" || doc.Title != "Table V" || len(doc.Tables) != 1 {
		t.Errorf("document = %+v", doc)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"id\": \"table5\"") {
		t.Errorf("WriteJSON missing id: %q", buf.String())
	}
}

func TestRunAllProducesEverySection(t *testing.T) {
	if testing.Short() {
		t.Skip("full render is slow")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 4", "Fig. 5", "Fig. 8(a)", "Fig. 8(b)",
		"Fig. 9", "Fig. 10", "Fig. 11", "Table IV", "Table V", "Accuracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestRunSkipsExperimentsAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	cancelling := Experiment{
		ID: "x", Paper: "x", Description: "cancels mid-run",
		Run: func(context.Context, Env) ([]*report.Table, error) {
			ran++
			cancel()
			return []*report.Table{report.New("x", "h").Add("v")}, nil
		},
	}
	never := Experiment{
		ID: "y", Paper: "y", Description: "queued behind the cancel",
		Run: func(context.Context, Env) ([]*report.Table, error) {
			ran++
			return nil, nil
		},
	}
	// Par 1: the worker takes jobs in order, so y is dequeued only after x
	// has cancelled the context and must be skipped.
	results := Run(ctx, []Experiment{cancelling, never}, Options{Par: 1})
	if ran != 1 {
		t.Errorf("ran %d experiments, want 1 (y must be skipped)", ran)
	}
	if results[0].Err != nil {
		t.Errorf("x err = %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, context.Canceled) {
		t.Errorf("y err = %v, want context.Canceled", results[1].Err)
	}

	// A context cancelled before Run starts skips everything.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	for _, r := range Run(pre, []Experiment{cancelling, never}, Options{Par: 2}) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s err = %v, want context.Canceled", r.Experiment.ID, r.Err)
		}
	}
}

func TestParallelEachStopsAtCancel(t *testing.T) {
	// Force the serial path so the unit order is deterministic: unit 0
	// cancels, so exactly one unit may run.
	setInnerPar(1)
	defer setInnerPar(runtime.GOMAXPROCS(0))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	err := parallelEach(ctx, 5, func(i int) error {
		ran++
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran != 1 {
		t.Errorf("ran %d units after cancellation, want 1", ran)
	}
}
