package cluster

import (
	"fmt"
	"testing"
)

// TestRingAgreement pins the property sharding depends on: every
// replica, handed the same peer list in ANY order, derives the same
// owner for every key.
func TestRingAgreement(t *testing.T) {
	orders := [][]string{
		{"a:1", "b:2", "c:3"},
		{"c:3", "a:1", "b:2"},
		{"b:2", "c:3", "a:1"},
	}
	rings := make([]*Ring, len(orders))
	for i, nodes := range orders {
		r, err := NewRing(nodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for k := 0; k < 1000; k++ {
		key := fmt.Sprintf("b=%q|net=%q|chips=%d", "timely", "CNN-1", k)
		want := rings[0].Owner(key)
		for i, r := range rings[1:] {
			if got := r.Owner(key); got != want {
				t.Fatalf("key %d: ring %d owner %q != ring 0 owner %q", k, i+1, got, want)
			}
		}
	}
}

// TestRingDistribution checks virtual nodes keep the split usably even:
// with 3 nodes no node owns less than half or more than double its fair
// share over a large key sample.
func TestRingDistribution(t *testing.T) {
	r, err := NewRing([]string{"a:1", "b:2", "c:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 9000
	for k := 0; k < n; k++ {
		counts[r.Owner(fmt.Sprintf("key-%d", k))]++
	}
	fair := n / 3
	for node, got := range counts {
		if got < fair/2 || got > fair*2 {
			t.Errorf("node %s owns %d of %d keys (fair share %d): split too skewed", node, got, n, fair)
		}
	}
	if len(counts) != 3 {
		t.Errorf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
}

// TestRingOwnerStable pins ownership against accidental hash or sort
// changes: a remapped keyspace would silently void every replica's
// cache locality on upgrade.
func TestRingOwnerStable(t *testing.T) {
	r, err := NewRing([]string{"127.0.0.1:8091", "127.0.0.1:8092", "127.0.0.1:8093"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Golden owners captured at introduction (FNV-64a + splitmix64
	// finalizer, 64 vnodes) — one key per replica.
	for key, want := range map[string]string{
		"alpha":   "127.0.0.1:8092",
		"bravo":   "127.0.0.1:8091",
		"charlie": "127.0.0.1:8093",
	} {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %q, want %q (hash function or ring layout changed)", key, got, want)
		}
	}
}

// TestRingValidation rejects the configurations that would make
// replicas disagree or divide by zero.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 64); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := NewRing([]string{"a:1", ""}, 64); err == nil {
		t.Error("empty node address accepted")
	}
}
