package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// HopHeader carries the forward count of a proxied request. A replica
// receiving a request whose hop count has reached MaxHops serves it
// locally no matter who owns the key, so routing terminates even when
// replicas momentarily disagree about membership.
const HopHeader = "X-Timely-Hop"

// ServedByHeader names the replica that actually computed (or cached)
// the response; proxied responses carry the owner's value through.
const ServedByHeader = "X-Timely-Served-By"

// MaxHops bounds forwarding to a single hop: entry replica → owner.
// One hop is all a consistent ring ever needs, and the bound — enforced
// at the receiver, not just the sender — is the no-routing-loop proof.
const MaxHops = 1

// Config describes one replica's view of the fleet.
type Config struct {
	// Self is this replica's address exactly as it appears in Peers.
	Self string
	// Peers is every replica's address (host:port), Self included.
	// All replicas must be configured with the same set — ownership
	// agreement is by exact string match.
	Peers []string
	// VNodes is the virtual-node count per peer (default DefaultVNodes).
	VNodes int
	// FailureThreshold trips a peer's breaker after this many
	// consecutive failures (default 3).
	FailureThreshold int
	// Cooldown is how long an open breaker refuses traffic before
	// allowing a half-open trial (default 5s).
	Cooldown time.Duration
	// ProbeInterval spaces the background /readyz probes per peer
	// (default 1s; negative disables probing even if Start is called).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe exchange (default 1s).
	ProbeTimeout time.Duration
	// Client issues forwarded requests; nil gets a default with a 35s
	// timeout (evaluate deadline class plus headroom).
	Client *http.Client
	// Logger receives probe-transition and forward-failure lines; nil
	// means silent.
	Logger *log.Logger
	// Now is the breaker clock (tests); nil means time.Now.
	Now func() time.Time
}

// Cluster is one replica's routing state: the shared ring, a breaker
// per peer, and the forwarding counters /metricz exposes. All methods
// are safe for concurrent use.
type Cluster struct {
	self          string
	ring          *Ring
	peerAddrs     []string // sorted, excludes self
	breakers      map[string]*Breaker
	client        *http.Client
	probeInterval time.Duration
	probeTimeout  time.Duration
	logger        *log.Logger

	forwarded     atomic.Int64 // requests proxied to their owner
	forwardErrors atomic.Int64 // transport-level forward failures
	failoverLocal atomic.Int64 // owned-elsewhere requests computed locally

	stop context.CancelFunc
	done chan struct{}
}

// New validates the configuration and builds the replica's cluster
// state. Self must appear verbatim in Peers: a replica that spells its
// own address differently from how its peers spell it would disagree
// with them about ownership of its own keyspace.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self address is required")
	}
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	selfListed := false
	for _, p := range ring.Nodes() {
		if p == cfg.Self {
			selfListed = true
			break
		}
	}
	if !selfListed {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v (addresses must match exactly)",
			cfg.Self, ring.Nodes())
	}
	if cfg.FailureThreshold == 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 35 * time.Second}
	}
	c := &Cluster{
		self:          cfg.Self,
		ring:          ring,
		breakers:      make(map[string]*Breaker),
		client:        cfg.Client,
		probeInterval: cfg.ProbeInterval,
		probeTimeout:  cfg.ProbeTimeout,
		logger:        cfg.Logger,
	}
	for _, p := range ring.Nodes() {
		if p == cfg.Self {
			continue
		}
		c.peerAddrs = append(c.peerAddrs, p)
		c.breakers[p] = NewBreaker(cfg.FailureThreshold, cfg.Cooldown, cfg.Now)
	}
	sort.Strings(c.peerAddrs)
	return c, nil
}

// Self returns this replica's address.
func (c *Cluster) Self() string { return c.self }

// Peers returns the other replicas' addresses, sorted.
func (c *Cluster) Peers() []string {
	out := make([]string, len(c.peerAddrs))
	copy(out, c.peerAddrs)
	return out
}

// Owner returns the replica owning key on the shared ring.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// Hops parses the request's forwarded-hop count (0 when absent or
// malformed — an unparseable header is treated as a fresh request, the
// availability-preserving reading).
func Hops(r *http.Request) int {
	h := r.Header.Get(HopHeader)
	if h == "" {
		return 0
	}
	n, err := strconv.Atoi(h)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Route decides where the request for key runs. It returns the owning
// replica and whether the caller should forward there: false means
// compute locally — because this replica IS the owner, because the hop
// budget is spent (loop bound), or because the owner's breaker refuses
// (failover, counted in failover_local). A true return may hold the
// owner's half-open trial slot, so the caller MUST follow with Forward.
func (c *Cluster) Route(key string, hops int) (owner string, forward bool) {
	owner = c.ring.Owner(key)
	if owner == c.self {
		return owner, false
	}
	if hops >= MaxHops {
		return owner, false
	}
	if !c.breakers[owner].Allow() {
		c.failoverLocal.Add(1)
		return owner, false
	}
	return owner, true
}

// Forward proxies the request — its exact raw body — to the owner and
// streams the response back verbatim: status, headers (shed responses
// keep their Retry-After, cache hits their Cache-Status) and body. Any
// response from a live owner passes through, 5xx included; only a
// transport-level failure (dial, timeout) returns an error, after
// recording the breaker failure and counting forward_errors and
// failover_local — the caller then computes locally. A nil return means
// the response has been written.
func (c *Cluster) Forward(w http.ResponseWriter, r *http.Request, owner string, body []byte) error {
	breaker := c.breakers[owner]
	url := "http://" + owner + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		breaker.Cancel()
		c.forwardErrors.Add(1)
		c.failoverLocal.Add(1)
		return err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set(HopHeader, strconv.Itoa(Hops(r)+1))
	resp, err := c.client.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			// The CLIENT vanished mid-forward; the peer proved nothing.
			breaker.Cancel()
			return err
		}
		breaker.Failure()
		c.forwardErrors.Add(1)
		c.failoverLocal.Add(1)
		if c.logger != nil {
			c.logger.Printf("cluster: forward to %s failed, computing locally: %v", owner, err)
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		// The owner answered but is sick; the response still passes
		// through (it is an application answer, not a routing failure).
		breaker.Failure()
	} else {
		breaker.Success()
	}
	h := w.Header()
	for k, vv := range resp.Header {
		switch k {
		case "Connection", "Transfer-Encoding", "Keep-Alive":
			continue
		}
		for _, v := range vv {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil && c.logger != nil {
		// Headers are committed; logging is the only honest response.
		c.logger.Printf("cluster: streaming response from %s: %v", owner, err)
	}
	c.forwarded.Add(1)
	return nil
}

// Start launches one background /readyz prober per peer, feeding the
// breakers until ctx is cancelled. Probing is what re-closes an open
// breaker while no traffic flows toward the peer (and what opens it
// before traffic has to discover the corpse). A non-positive interval
// disables probing. Start is idempotent per Cluster only in the sense
// that calling it once is the intended use; call Close to stop early.
func (c *Cluster) Start(ctx context.Context) {
	if c.probeInterval <= 0 || len(c.peerAddrs) == 0 {
		return
	}
	pctx, cancel := context.WithCancel(ctx)
	c.stop = cancel
	done := make(chan struct{})
	c.done = done
	var running atomic.Int64
	running.Store(int64(len(c.peerAddrs)))
	for _, peer := range c.peerAddrs {
		go func(peer string) {
			defer func() {
				if running.Add(-1) == 0 {
					close(done)
				}
			}()
			t := time.NewTicker(c.probeInterval)
			defer t.Stop()
			for {
				select {
				case <-pctx.Done():
					return
				case <-t.C:
					c.probeOnce(pctx, peer)
				}
			}
		}(peer)
	}
}

// Close stops the probers started by Start and waits for them to exit.
func (c *Cluster) Close() {
	if c.stop != nil {
		c.stop()
		<-c.done
	}
}

// probeOnce issues one /readyz exchange against peer and feeds the
// verdict to its breaker: only a 200 within the probe timeout counts as
// healthy — a draining or overloaded peer (503) should not receive
// forwarded traffic either.
func (c *Cluster) probeOnce(ctx context.Context, peer string) {
	b := c.breakers[peer]
	before := b.State()
	pctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, "http://"+peer+"/readyz", nil)
	if err != nil {
		b.RecordProbe(false)
		return
	}
	resp, err := c.client.Do(req)
	ok := false
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ok = resp.StatusCode == http.StatusOK
	}
	b.RecordProbe(ok)
	if after := b.State(); after != before && c.logger != nil {
		c.logger.Printf("cluster: peer %s breaker %s -> %s (probe ok=%t)", peer, before, after, ok)
	}
}

// Snapshot merges the cluster counters into a /metricz map: the three
// forwarding totals plus one breaker-state gauge (0 closed, 1 half-open,
// 2 open) and one cumulative trip counter per peer. Peer keys embed the
// address; map ordering is the encoder's (sorted), so the snapshot is
// stable-ordered like the rest of /metricz.
func (c *Cluster) Snapshot(snap map[string]int64) {
	snap["forwarded"] = c.forwarded.Load()
	snap["forward_errors"] = c.forwardErrors.Load()
	snap["failover_local"] = c.failoverLocal.Load()
	for _, p := range c.peerAddrs {
		b := c.breakers[p]
		snap["peer_breaker_state:"+p] = int64(b.State())
		snap["peer_breaker_opens:"+p] = b.Opens()
	}
}

// BreakerState returns the breaker position for peer (tests, logs).
// The zero State (closed) is returned for unknown peers.
func (c *Cluster) BreakerState(peer string) State {
	b, ok := c.breakers[peer]
	if !ok {
		return StateClosed
	}
	return b.State()
}

// Counters returns the forwarding totals (tests).
func (c *Cluster) Counters() (forwarded, forwardErrors, failoverLocal int64) {
	return c.forwarded.Load(), c.forwardErrors.Load(), c.failoverLocal.Load()
}
