package cluster

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func newTestBreaker(clk *fakeClock) *Breaker { return NewBreaker(3, 5*time.Second, clk.now) }

// TestBreakerTripsAfterThreshold pins closed → open on the Nth
// consecutive failure, with successes resetting the count.
func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	b.Failure()
	b.Failure()
	b.Success() // resets the streak
	b.Failure()
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("after 2 consecutive failures: state %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
	b.Failure() // third consecutive: trip
	if got := b.State(); got != StateOpen {
		t.Fatalf("after threshold failures: state %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed traffic before cooldown")
	}
	if got := b.Opens(); got != 1 {
		t.Errorf("Opens = %d, want 1", got)
	}
}

// TestBreakerHalfOpenRecovery walks the trial path: cooldown elapses,
// exactly ONE trial is admitted, and its verdict decides the state.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("open breaker allowed traffic 1s before cooldown elapsed")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no trial admitted")
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after trial admission: %v, want half_open", got)
	}
	if b.Allow() {
		t.Fatal("second concurrent trial admitted in half-open")
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after trial success: %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("recovered breaker refused traffic")
	}
}

// TestBreakerHalfOpenFailureReopens pins the relapse path, including
// the restarted cooldown.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("no trial after cooldown")
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after trial failure: %v, want open", got)
	}
	// The cooldown restarted at the relapse, not the original trip.
	clk.advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("re-opened breaker allowed traffic before the restarted cooldown elapsed")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no trial after the restarted cooldown")
	}
	if got := b.Opens(); got != 2 {
		t.Errorf("Opens = %d, want 2", got)
	}
}

// TestBreakerCancelReleasesTrial: a trial abandoned without a verdict
// frees the slot for the next caller instead of wedging recovery.
func TestBreakerCancelReleasesTrial(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("no trial after cooldown")
	}
	if b.Allow() {
		t.Fatal("trial slot double-granted")
	}
	b.Cancel()
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after cancel: %v, want half_open", got)
	}
	if !b.Allow() {
		t.Fatal("cancelled trial slot not released")
	}
}

// TestBreakerProbeDriven: a healthy probe closes the breaker from open
// WITHOUT waiting out the cooldown (direct evidence), a failing probe
// while open restarts the cooldown so traffic keeps avoiding the peer.
func TestBreakerProbeDriven(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.RecordProbe(false)
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 3 failed probes: %v, want open", got)
	}
	// Cooldown nearly elapsed, then another failing probe restarts it.
	clk.advance(4 * time.Second)
	b.RecordProbe(false)
	clk.advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("trial admitted while failing probes keep restarting the cooldown")
	}
	// The peer revives: one healthy probe reopens traffic immediately.
	b.RecordProbe(true)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after healthy probe: %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("probe-recovered breaker refused traffic")
	}
}
