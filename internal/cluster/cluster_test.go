package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// testPeer spins up an httptest server and returns its host:port plus
// the server for shaping responses.
func testPeer(t *testing.T, handler http.HandlerFunc) (string, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host, ts
}

// testCluster builds a two-replica cluster view from self's perspective
// with probing disabled (tests drive the breaker through forwards).
func testCluster(t *testing.T, self, peer string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Self:          self,
		Peers:         []string{self, peer},
		ProbeInterval: -1,
		Cooldown:      50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestNewValidation pins the misconfigurations New refuses.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"a:1"}}); err == nil {
		t.Error("missing Self accepted")
	}
	if _, err := New(Config{Self: "b:2", Peers: []string{"a:1", "c:3"}}); err == nil {
		t.Error("Self absent from Peers accepted")
	}
	c, err := New(Config{Self: "a:1", Peers: []string{"a:1"}})
	if err != nil {
		t.Fatalf("single-replica cluster rejected: %v", err)
	}
	if owner, fwd := c.Route("anything", 0); fwd || owner != "a:1" {
		t.Errorf("single replica Route = (%q, %t), want (a:1, false)", owner, fwd)
	}
}

// TestForwardPassesResponseVerbatim: status, headers (Retry-After,
// Cache-Status) and body cross the proxy hop unchanged, and the hop
// header increments on the forwarded request.
func TestForwardPassesResponseVerbatim(t *testing.T) {
	var gotHop, gotCT, gotBody string
	peer, _ := testPeer(t, func(w http.ResponseWriter, r *http.Request) {
		gotHop = r.Header.Get(HopHeader)
		gotCT = r.Header.Get("Content-Type")
		raw, _ := io.ReadAll(r.Body)
		gotBody = string(raw)
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Cache-Status", "hit")
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, `{"error":"admission queue full","phase":"queue"}`+"\n")
	})
	c := testCluster(t, "self:1", peer)

	body := `{"backend":"timely","network":"CNN-1"}`
	req := httptest.NewRequest(http.MethodPost, "/v1/evaluate?x=1", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	if err := c.Forward(rec, req, peer, []byte(body)); err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if gotHop != "1" || gotCT != "application/json" || gotBody != body {
		t.Errorf("forwarded request: hop=%q ct=%q body=%q", gotHop, gotCT, gotBody)
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want 7", ra)
	}
	if cs := rec.Header().Get("Cache-Status"); cs != "hit" {
		t.Errorf("Cache-Status = %q, want hit", cs)
	}
	if got := rec.Body.String(); got != `{"error":"admission queue full","phase":"queue"}`+"\n" {
		t.Errorf("body = %q not passed verbatim", got)
	}
	fwd, ferr, fol := c.Counters()
	if fwd != 1 || ferr != 0 || fol != 0 {
		t.Errorf("counters = (%d,%d,%d), want (1,0,0)", fwd, ferr, fol)
	}
	// A 429 is a live peer: the breaker stays closed.
	if st := c.BreakerState(peer); st != StateClosed {
		t.Errorf("breaker after 429 = %v, want closed", st)
	}
}

// TestForwardTransportFailureTripsBreaker: three forwards against a
// dead peer open its breaker, after which Route stops offering the
// forward (failover_local counts each skip).
func TestForwardTransportFailureTripsBreaker(t *testing.T) {
	peer, ts := testPeer(t, func(w http.ResponseWriter, r *http.Request) {})
	ts.Close() // the peer is a corpse from the start
	c := testCluster(t, "self:1", peer)

	// Find a key the dead peer owns.
	key := ""
	for k := 0; k < 1000; k++ {
		cand := fmt.Sprintf("key-%d", k)
		if c.Owner(cand) == peer {
			key = cand
			break
		}
	}
	if key == "" {
		t.Fatal("no key owned by peer in 1000 tries")
	}
	for i := 1; i <= 3; i++ {
		owner, fwd := c.Route(key, 0)
		if !fwd || owner != peer {
			t.Fatalf("attempt %d: Route = (%q, %t), want forward to peer", i, owner, fwd)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/evaluate", strings.NewReader("{}"))
		if err := c.Forward(httptest.NewRecorder(), req, owner, []byte("{}")); err == nil {
			t.Fatalf("attempt %d: Forward to dead peer succeeded", i)
		}
	}
	if st := c.BreakerState(peer); st != StateOpen {
		t.Fatalf("breaker after 3 transport failures = %v, want open", st)
	}
	if _, fwd := c.Route(key, 0); fwd {
		t.Error("Route still forwards with the breaker open")
	}
	fwd, ferr, fol := c.Counters()
	if fwd != 0 || ferr != 3 || fol != 4 { // 3 failed forwards + 1 breaker skip
		t.Errorf("counters = (%d,%d,%d), want (0,3,4)", fwd, ferr, fol)
	}
}

// TestRouteHopBound: a request that already crossed MaxHops is computed
// locally no matter who owns its key — the no-routing-loop guarantee.
func TestRouteHopBound(t *testing.T) {
	peer, _ := testPeer(t, func(w http.ResponseWriter, r *http.Request) {})
	c := testCluster(t, "self:1", peer)
	key := ""
	for k := 0; k < 1000; k++ {
		cand := fmt.Sprintf("key-%d", k)
		if c.Owner(cand) == peer {
			key = cand
			break
		}
	}
	if _, fwd := c.Route(key, 0); !fwd {
		t.Fatal("fresh request not forwarded to healthy owner")
	}
	if _, fwd := c.Route(key, MaxHops); fwd {
		t.Error("request at the hop bound was forwarded again")
	}
	if _, _, fol := c.Counters(); fol != 0 {
		t.Errorf("hop-bound local serve counted as failover (%d)", fol)
	}
}

// TestHopsParsing: absent, malformed and negative headers read as 0.
func TestHopsParsing(t *testing.T) {
	for header, want := range map[string]int{"": 0, "junk": 0, "-3": 0, "1": 1, "2": 2} {
		r := httptest.NewRequest(http.MethodGet, "/", nil)
		if header != "" {
			r.Header.Set(HopHeader, header)
		}
		if got := Hops(r); got != want {
			t.Errorf("Hops(%q) = %d, want %d", header, got, want)
		}
	}
}

// TestProbesRecoverBreaker: a peer that dies and revives is first
// opened by failing probes, then re-closed by a healthy one — without
// any forwarded traffic.
func TestProbesRecoverBreaker(t *testing.T) {
	healthy := make(chan bool, 1)
	healthy <- false
	var state bool
	peer, _ := testPeer(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case state = <-healthy:
		default:
		}
		if !state {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	c, err := New(Config{
		Self:             "self:1",
		Peers:            []string{"self:1", peer},
		ProbeInterval:    10 * time.Millisecond,
		ProbeTimeout:     time.Second,
		FailureThreshold: 3,
		Cooldown:         time.Hour, // recovery must come from probes, not cooldown
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	defer c.Close()

	waitState := func(want State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.BreakerState(peer) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("breaker never reached %v (at %v)", want, c.BreakerState(peer))
	}
	waitState(StateOpen) // unready probes trip it
	healthy <- true
	waitState(StateClosed) // one healthy probe closes it
}
