// Package cluster is the sharded-fleet substrate behind cmd/timelyd: a
// consistent-hash ring that partitions the evaluate keyspace across N
// replicas, per-peer circuit breakers driven by forward failures and
// /readyz probes, and a forwarding layer that proxies a request to the
// replica owning its key — with a hop bound so routing can never loop,
// and graceful degradation to local compute when the owner is down.
//
// Like internal/serve, the package is free of simulator knowledge: keys
// are opaque strings (timelyd feeds it sim.EvalRequest batch keys, so
// cache and singleflight locality survive sharding), peers are opaque
// host:port addresses, and the wire format is plain HTTP.
//
// The degradation ladder for one request whose key is owned elsewhere:
//
//  1. owner healthy (breaker closed, or half-open with a free trial
//     slot) → proxy the raw body to the owner and stream its response —
//     status, headers and body — back verbatim;
//  2. the forward fails at transport level (connection refused, timeout)
//     → the breaker records the failure and the receiving replica
//     computes LOCALLY, trading cache locality for availability;
//  3. the owner's breaker is open → skip the doomed dial entirely and
//     compute locally until probes or a half-open trial revive it.
//
// Replicas agree on ownership because every replica builds the same ring
// from the same -peers list; agreement is by exact address string, so
// the list must be spelled identically fleet-wide.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per peer. 64 points per peer
// keeps the keyspace split within a few percent of even for small fleets
// while the ring stays tiny (N×64 points, binary-searched per request).
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring: each node contributes
// vnodes points at FNV-64a("addr#i"), and a key is owned by the node of
// the first point clockwise from FNV-64a(key). Immutability is the
// point — membership is configuration, health is the breakers' job, so
// every replica derives the identical ring from the identical peer list
// and ownership never flaps with liveness.
type Ring struct {
	points []ringPoint
	nodes  []string // sorted, deduplicated
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds the ring over the given node addresses. Nodes must be
// non-empty and unique; vnodes < 1 selects DefaultVNodes.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		points: make([]ringPoint, 0, len(nodes)*vnodes),
		nodes:  make([]string, 0, len(nodes)),
	}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node address")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hashKey(fmt.Sprintf("%s#%d", n, v)),
				node: n,
			})
		}
	}
	// Ties (astronomically unlikely with 64-bit FNV, but possible) break
	// on the node address so every replica sorts identically.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	sort.Strings(r.nodes)
	return r, nil
}

// Owner returns the node owning key: the first ring point at or after
// the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) string {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the ring membership, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// hashKey is FNV-64a with a splitmix64 finalizer. Raw FNV disperses
// poorly over near-identical strings (the "addr#0".."addr#63" vnode
// labels land clustered, skewing the split to 2–3× fair share); the
// finalizer's avalanche restores an even ring for a few shifts and
// multiplies per hash.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
