package cluster

import (
	"sync"
	"time"
)

// State is a circuit breaker's position. The zero value is closed.
type State int

const (
	// StateClosed: traffic flows; failures are counted.
	StateClosed State = iota
	// StateHalfOpen: one trial request at a time decides recovery.
	StateHalfOpen
	// StateOpen: traffic is refused until the cooldown elapses (or a
	// probe reports the peer healthy again).
	StateOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half_open"
	case StateOpen:
		return "open"
	}
	return "unknown"
}

// Breaker is one peer's circuit breaker. Two signal sources drive it:
// forward outcomes (a transport failure or 5xx is a Failure, anything
// else a Success) and the background /readyz prober (RecordProbe).
// State machine:
//
//	closed    --threshold consecutive failures-->  open
//	open      --cooldown elapsed, next Allow-->    half-open (one trial)
//	half-open --trial success-->                   closed
//	half-open --trial failure-->                   open (cooldown restarts)
//	any       --probe success-->                   closed
//
// A failure while already open (a failing probe) restarts the cooldown,
// so a dead peer is not re-dialed by traffic while probes keep failing.
// The clock is injectable so every transition is testable without sleeps.
type Breaker struct {
	mu        sync.Mutex
	state     State
	failures  int  // consecutive failures while closed
	probing   bool // the half-open trial slot is taken
	openedAt  time.Time
	threshold int
	cooldown  time.Duration
	opens     int64 // cumulative closed/half-open → open transitions
	now       func() time.Time
}

// NewBreaker builds a closed breaker tripping after `threshold`
// consecutive failures (clamped to ≥ 1) and re-trialing after
// `cooldown`. A nil `now` uses time.Now.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether one request may be sent to the peer. A true
// return from the open or half-open state hands the caller the single
// trial slot: the caller MUST settle it with exactly one of Success,
// Failure or Cancel, or recovery stalls until a probe closes the breaker.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = StateHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // StateHalfOpen
		if !b.probing {
			b.probing = true
			return true
		}
		return false
	}
}

// Success records a request the peer answered (any response that is not
// a 5xx): the breaker closes and the failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.failures = 0
	b.state = StateClosed
}

// Failure records a transport failure, timeout or 5xx from the peer.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case StateHalfOpen:
		b.trip()
	case StateClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case StateOpen:
		// A failing probe while open restarts the cooldown: traffic
		// keeps avoiding the peer as long as probes say it is dead.
		b.openedAt = b.now()
	}
}

// Cancel releases a trial slot taken by Allow without a verdict (the
// client vanished mid-forward — the peer proved nothing either way).
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// RecordProbe feeds one background /readyz probe result into the state
// machine: a healthy probe closes the breaker from any state (direct
// evidence beats waiting out a cooldown), a failed one counts exactly
// like a failed request.
func (b *Breaker) RecordProbe(ok bool) {
	if ok {
		b.Success()
	} else {
		b.Failure()
	}
}

// trip moves to open; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = StateOpen
	b.openedAt = b.now()
	b.failures = 0
	b.opens++
}

// State returns the current position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
