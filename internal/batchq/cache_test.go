package batchq

import "testing"

func TestCacheGetPut(t *testing.T) {
	c := NewCache[string](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", "A")
	c.Put("b", "B")
	if v, ok := c.Get("a"); !ok || v != "A" {
		t.Fatalf("Get(a) = (%q, %v), want (A, true)", v, ok)
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 1 || evictions != 0 {
		t.Errorf("stats = (%d, %d, %d), want (1, 1, 0)", hits, misses, evictions)
	}
}

// TestCacheEvictsLRU pins recency semantics: a Get refreshes an entry so
// the eviction victim is the least-recently-USED key, not the oldest.
func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // a is now more recent than b
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction although it was least recently used")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a was evicted although it was recently used (got %d, %v)", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Errorf("c missing (got %d, %v)", v, ok)
	}
	if _, _, evictions := c.Stats(); evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh: a becomes MRU with the new value
	c.Put("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Errorf("Get(a) = (%d, %v), want (10, true)", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived although a's refresh made it the LRU entry")
	}
}

// TestCacheDisabled pins the -cache-entries 0 baseline: no storage, no
// counter movement.
func TestCacheDisabled(t *testing.T) {
	c := NewCache[int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if hits, misses, evictions := c.Stats(); hits != 0 || misses != 0 || evictions != 0 {
		t.Errorf("disabled cache counted (%d, %d, %d)", hits, misses, evictions)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}
