// Package batchq is the serving-side request-coalescing layer behind
// timelyd's POST /v1/evaluate: a bounded gather queue that groups
// compatible in-flight requests into one shared execution, plus
// singleflight de-duplication of byte-identical requests and an LRU
// result cache (cache.go).
//
// Requests enter through Do with two keys. The batch key names the
// equivalence class whose members may execute as ONE group computation
// (for the evaluation service: everything but the Monte-Carlo seed); the
// job key names an exact computation (batch key + seed). Within a gather
// window, jobs sharing a batch key accumulate into one group; when the
// window expires — or the group reaches the batch cap — the group fires
// and the queue's Run callback executes all of its jobs together.
// Requests whose job key matches an in-flight job (gathering OR
// executing) do not enqueue new work at all: they coalesce onto the
// existing job and share its result, the classic singleflight shape.
//
// The group computation runs on its own goroutine under a context
// derived from the queue's base context, NOT from any individual
// waiter's: a client that disconnects mid-flight abandons only its own
// wait, and the shared computation is cancelled only when the LAST
// waiter on the group has departed. This is what makes coalescing safe
// under impatient clients — one 499 must never poison the result the
// surviving waiters get.
package batchq

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies how a Do call obtained its result.
type Outcome int

const (
	// Computed: the request entered a batch group and the result was
	// computed (possibly shared with other group members at other seeds).
	Computed Outcome = iota
	// Coalesced: the request joined a byte-identical in-flight job and
	// shared its result without enqueueing any work.
	Coalesced
)

// Run executes one fired group. reqs holds the group's distinct jobs in
// arrival order; the callback returns one value and one error per job
// (a nil error slice means every job succeeded). ctx is the group's
// context: it is cancelled when every waiter has departed, and callers
// are expected to derive their compute deadline from it.
type Run[T, V any] func(ctx context.Context, reqs []T) ([]V, []error)

// Queue is the coalescing batch queue. One instance serves concurrent
// Do calls; the zero value is not usable — construct with New.
type Queue[T, V any] struct {
	base     context.Context
	window   time.Duration
	maxBatch int
	coalesce bool
	run      Run[T, V]

	mu        sync.Mutex
	gathering map[string]*group[T, V] // batch key → group still in its window
	inflight  map[string]*job[T, V]   // job key → gathering or executing job
	seq       uint64                  // synthetic job keys when coalescing is off

	batches   atomic.Int64 // groups executed
	batched   atomic.Int64 // requests that entered a group as a distinct job
	coalesced atomic.Int64 // requests that joined an existing job
}

// job is one distinct computation: a request plus the completion state
// every waiter coalesced onto it shares.
type job[T, V any] struct {
	key  string
	req  T
	g    *group[T, V]
	done chan struct{}
	val  V
	err  error
}

// group is one gather-window's worth of jobs sharing a batch key.
type group[T, V any] struct {
	key    string
	ctx    context.Context
	cancel context.CancelFunc
	jobs   []*job[T, V] // immutable once fired
	// waiters counts live Do calls (leaders and coalesced joiners) still
	// waiting on any job of this group; guarded by Queue.mu. When it
	// drops to zero the group context is cancelled.
	waiters int
	fired   bool
	timer   *time.Timer
}

// New builds a queue. window is the gather window (<= 0 fires every
// group on its first job — no gathering); maxBatch caps the distinct
// jobs per group (values < 1 are treated as 1); coalesce enables
// singleflight de-duplication by job key (off, every request is its own
// job — the configuration that reproduces the unbatched per-request
// path). Group computations derive their context from base, which
// should outlive every Do call (typically context.Background()).
func New[T, V any](base context.Context, window time.Duration, maxBatch int, coalesce bool, run Run[T, V]) *Queue[T, V] {
	if base == nil {
		base = context.Background()
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &Queue[T, V]{
		base:      base,
		window:    window,
		maxBatch:  maxBatch,
		coalesce:  coalesce,
		run:       run,
		gathering: map[string]*group[T, V]{},
		inflight:  map[string]*job[T, V]{},
	}
}

// Do submits one request and blocks until its result is available or ctx
// fires. Requests sharing a batch key gather into one group; requests
// sharing a job key coalesce onto one computation. A ctx cancellation
// abandons only this caller's wait — the shared computation keeps
// running for the other waiters and is cancelled only when the last one
// departs.
func (q *Queue[T, V]) Do(ctx context.Context, batchKey, jobKey string, req T) (V, Outcome, error) {
	q.mu.Lock()
	if q.coalesce {
		// Singleflight: a byte-identical job already gathering or executing
		// serves this request too. A group whose every waiter already
		// departed is abandoned — its context is cancelled — so it cannot
		// be joined.
		if j, ok := q.inflight[jobKey]; ok && j.g.ctx.Err() == nil {
			j.g.waiters++
			q.coalesced.Add(1)
			q.mu.Unlock()
			return q.wait(ctx, j, Coalesced)
		}
	} else {
		// De-duplication off: give every request a unique job identity so
		// nothing ever coalesces (the unbatched-baseline configuration).
		q.seq++
		jobKey = "\x00" + strconv.FormatUint(q.seq, 10)
	}
	g := q.gathering[batchKey]
	if g == nil {
		g = q.newGroupLocked(batchKey)
	}
	j := &job[T, V]{key: jobKey, req: req, g: g, done: make(chan struct{})}
	g.jobs = append(g.jobs, j)
	g.waiters++
	q.inflight[jobKey] = j
	q.batched.Add(1)
	if q.window <= 0 || len(g.jobs) >= q.maxBatch {
		q.fireLocked(g)
	}
	q.mu.Unlock()
	return q.wait(ctx, j, Computed)
}

// newGroupLocked opens a gather window for a batch key. Caller holds mu.
func (q *Queue[T, V]) newGroupLocked(batchKey string) *group[T, V] {
	gctx, cancel := context.WithCancel(q.base)
	g := &group[T, V]{key: batchKey, ctx: gctx, cancel: cancel}
	q.gathering[batchKey] = g
	if q.window > 0 && q.maxBatch > 1 {
		g.timer = time.AfterFunc(q.window, func() {
			q.mu.Lock()
			q.fireLocked(g)
			q.mu.Unlock()
		})
	}
	return g
}

// fireLocked closes the group's gather window and starts its execution.
// Caller holds mu; firing is idempotent (the window timer and the
// batch-cap path can race onto the same group).
func (q *Queue[T, V]) fireLocked(g *group[T, V]) {
	if g.fired {
		return
	}
	g.fired = true
	if g.timer != nil {
		g.timer.Stop()
	}
	if q.gathering[g.key] == g {
		delete(q.gathering, g.key)
	}
	q.batches.Add(1)
	go q.execute(g)
}

// execute runs one fired group and fans the per-job results out to every
// waiter. It owns g.jobs exclusively: Do stops appending once the group
// left the gathering map.
func (q *Queue[T, V]) execute(g *group[T, V]) {
	reqs := make([]T, len(g.jobs))
	for i, j := range g.jobs {
		reqs[i] = j.req
	}
	vals, errs := q.run(g.ctx, reqs)
	q.mu.Lock()
	for i, j := range g.jobs {
		if i < len(vals) {
			j.val = vals[i]
		}
		if errs != nil && i < len(errs) {
			j.err = errs[i]
		}
		// Stop coalescing onto a completed job (a later identical request
		// must become a fresh computation — or a cache hit upstream).
		if q.inflight[j.key] == j {
			delete(q.inflight, j.key)
		}
		close(j.done)
	}
	q.mu.Unlock()
	g.cancel()
}

// wait blocks one Do call on its job. On ctx expiry the caller departs
// the group: the shared computation is cancelled only if this was the
// group's last live waiter.
func (q *Queue[T, V]) wait(ctx context.Context, j *job[T, V], o Outcome) (V, Outcome, error) {
	select {
	case <-j.done:
		return j.val, o, j.err
	case <-ctx.Done():
		q.depart(j.g)
		var zero V
		return zero, o, ctx.Err()
	}
}

// depart records a waiter abandoning its group mid-flight.
func (q *Queue[T, V]) depart(g *group[T, V]) {
	q.mu.Lock()
	g.waiters--
	last := g.waiters <= 0
	q.mu.Unlock()
	if last {
		g.cancel()
	}
}

// Stats returns the lifetime counters: groups executed, requests that
// entered a group as distinct jobs, and requests that coalesced onto an
// existing job.
func (q *Queue[T, V]) Stats() (batches, batchedRequests, coalescedRequests int64) {
	return q.batches.Load(), q.batched.Load(), q.coalesced.Load()
}
