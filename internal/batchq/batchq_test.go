package batchq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoRun returns each request back as its value, recording every fired
// group, so tests can assert exactly how requests were grouped.
type recorder struct {
	mu     sync.Mutex
	groups [][]int
	runs   atomic.Int64
}

func (r *recorder) run(ctx context.Context, reqs []int) ([]int, []error) {
	r.runs.Add(1)
	r.mu.Lock()
	r.groups = append(r.groups, append([]int(nil), reqs...))
	r.mu.Unlock()
	out := make([]int, len(reqs))
	copy(out, reqs)
	return out, nil
}

// TestImmediateFireWithoutWindow pins the no-gathering mode: window <= 0
// executes every request as its own group of one.
func TestImmediateFireWithoutWindow(t *testing.T) {
	rec := &recorder{}
	q := New(context.Background(), 0, 32, true, rec.run)
	for i := 0; i < 3; i++ {
		v, o, err := q.Do(context.Background(), "k", fmt.Sprintf("k/%d", i), i)
		if err != nil || v != i || o != Computed {
			t.Fatalf("Do(%d) = (%d, %v, %v)", i, v, o, err)
		}
	}
	if got := rec.runs.Load(); got != 3 {
		t.Fatalf("runs = %d, want 3 (no gathering with window 0)", got)
	}
	batches, batched, coalesced := q.Stats()
	if batches != 3 || batched != 3 || coalesced != 0 {
		t.Errorf("stats = (%d, %d, %d), want (3, 3, 0)", batches, batched, coalesced)
	}
}

// TestGatherWindowGroups pins the window semantics: distinct seeds of one
// batch key arriving within the window execute as ONE group.
func TestGatherWindowGroups(t *testing.T) {
	rec := &recorder{}
	q := New(context.Background(), 200*time.Millisecond, 32, true, rec.run)
	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, o, err := q.Do(context.Background(), "k", fmt.Sprintf("k/%d", i), i)
			if err != nil || v != i || o != Computed {
				t.Errorf("Do(%d) = (%d, %v, %v)", i, v, o, err)
			}
		}(i)
	}
	wg.Wait()
	if got := rec.runs.Load(); got != 1 {
		t.Fatalf("runs = %d, want 1 (all requests inside one window)", got)
	}
	rec.mu.Lock()
	size := len(rec.groups[0])
	rec.mu.Unlock()
	if size != n {
		t.Fatalf("group size = %d, want %d", size, n)
	}
}

// TestMaxBatchFiresEarly pins the cap: the group fires as soon as it
// holds maxBatch jobs, without waiting out the window.
func TestMaxBatchFiresEarly(t *testing.T) {
	rec := &recorder{}
	q := New(context.Background(), time.Hour, 2, true, rec.run)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := q.Do(context.Background(), "k", fmt.Sprintf("k/%d", i), i); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("batch-cap fire took %s — waited for the window?", d)
	}
	if got := rec.runs.Load(); got != 1 {
		t.Fatalf("runs = %d, want 1", got)
	}
}

// TestSingleflightCoalesces hammers one job key from many goroutines and
// asserts exactly one computation with every waiter sharing its value.
func TestSingleflightCoalesces(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	q := New(context.Background(), 0, 1, true, func(ctx context.Context, reqs []int) ([]int, []error) {
		runs.Add(1)
		<-release
		return []int{reqs[0] * 10}, nil
	})
	const n = 8
	var wg sync.WaitGroup
	var computed, coalesced atomic.Int64
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, o, err := q.Do(context.Background(), "k", "k/seed", 7)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v
			if o == Coalesced {
				coalesced.Add(1)
			} else {
				computed.Add(1)
			}
		}(i)
	}
	// Wait until every goroutine has either started the job or joined it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		q.mu.Lock()
		joined := false
		if j, ok := q.inflight["k/seed"]; ok {
			joined = j.g.waiters == n
		}
		q.mu.Unlock()
		if joined || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("computations = %d, want exactly 1", got)
	}
	for i, v := range results {
		if v != 70 {
			t.Errorf("waiter %d got %d, want 70", i, v)
		}
	}
	if computed.Load() != 1 || coalesced.Load() != n-1 {
		t.Errorf("outcomes = %d computed / %d coalesced, want 1 / %d",
			computed.Load(), coalesced.Load(), n-1)
	}
}

// TestNoCoalesceRunsEveryRequest pins the baseline mode: with coalescing
// off, identical concurrent requests each compute.
func TestNoCoalesceRunsEveryRequest(t *testing.T) {
	rec := &recorder{}
	q := New(context.Background(), 0, 1, false, rec.run)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, o, err := q.Do(context.Background(), "k", "k/seed", 1); err != nil || o != Computed {
				t.Errorf("Do = (%v, %v)", o, err)
			}
		}()
	}
	wg.Wait()
	if got := rec.runs.Load(); got != 4 {
		t.Fatalf("runs = %d, want 4 (coalescing off)", got)
	}
}

// TestCancelledWaiterDoesNotKillSurvivors is the 499 contract: a waiter
// whose context dies mid-flight gets its context error, while the shared
// computation completes for the surviving waiter.
func TestCancelledWaiterDoesNotKillSurvivors(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var sawCancel atomic.Bool
	q := New(context.Background(), 0, 1, true, func(ctx context.Context, reqs []int) ([]int, []error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
			sawCancel.Store(true)
		}
		return []int{42}, nil
	})

	survivor := make(chan error, 1)
	go func() {
		v, _, err := q.Do(context.Background(), "k", "k/seed", 1)
		if err == nil && v != 42 {
			err = fmt.Errorf("survivor got %d, want 42", v)
		}
		survivor <- err
	}()
	<-started

	// The second waiter joins the in-flight job, then its client vanishes.
	cctx, cancel := context.WithCancel(context.Background())
	joined := make(chan struct{})
	impatient := make(chan error, 1)
	go func() {
		close(joined)
		_, _, err := q.Do(cctx, "k", "k/seed", 1)
		impatient <- err
	}()
	<-joined
	// Give the joiner a moment to actually enter wait, then cut it loose.
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-impatient; !errors.Is(err, context.Canceled) {
		t.Fatalf("impatient waiter error = %v, want context.Canceled", err)
	}

	close(release)
	if err := <-survivor; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if sawCancel.Load() {
		t.Error("shared computation was cancelled although a waiter survived")
	}
}

// TestAllWaitersGoneCancelsGroup pins the flip side: when EVERY waiter
// departs, the group context is cancelled so the computation can stop.
func TestAllWaitersGoneCancelsGroup(t *testing.T) {
	cancelled := make(chan struct{})
	q := New(context.Background(), 0, 1, true, func(ctx context.Context, reqs []int) ([]int, []error) {
		<-ctx.Done()
		close(cancelled)
		return nil, []error{ctx.Err()}
	})
	cctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := q.Do(cctx, "k", "k/seed", 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("group context was not cancelled after the last waiter departed")
	}
}

// TestPerJobErrors pins that errors fan out per job, not per group.
func TestPerJobErrors(t *testing.T) {
	boom := errors.New("boom")
	q := New(context.Background(), 100*time.Millisecond, 8, true,
		func(ctx context.Context, reqs []int) ([]int, []error) {
			vals := make([]int, len(reqs))
			errs := make([]error, len(reqs))
			for i, r := range reqs {
				if r%2 == 1 {
					errs[i] = boom
					continue
				}
				vals[i] = r * 10
			}
			return vals, errs
		})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := q.Do(context.Background(), "k", fmt.Sprintf("k/%d", i), i)
			if i%2 == 1 {
				if !errors.Is(err, boom) {
					t.Errorf("job %d error = %v, want boom", i, err)
				}
				return
			}
			if err != nil || v != i*10 {
				t.Errorf("job %d = (%d, %v), want (%d, nil)", i, v, err, i*10)
			}
		}(i)
	}
	wg.Wait()
}
