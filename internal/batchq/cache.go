package batchq

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is a concurrency-safe LRU result cache with hit/miss/eviction
// counters — the persistent spec-hash-keyed result store in front of the
// batch queue. A limit <= 0 disables it entirely (Get always misses
// without counting, Put is a no-op), which is how the unbatched baseline
// configuration turns caching off.
type Cache[V any] struct {
	limit int

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry[V any] struct {
	key string
	val V
}

// NewCache builds an LRU cache holding at most limit entries; limit <= 0
// disables caching.
func NewCache[V any](limit int) *Cache[V] {
	c := &Cache[V]{limit: limit}
	if limit > 0 {
		c.ll = list.New()
		c.entries = make(map[string]*list.Element)
	}
	return c
}

// Get returns the cached value for key, refreshing its recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c.limit <= 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return zero, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry[V]).val, true
}

// Put stores a value under key, evicting the least-recently-used entries
// past the limit. Storing an existing key refreshes its value and
// recency.
func (c *Cache[V]) Put(key string, val V) {
	if c.limit <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry[V]{key: key, val: val})
	for c.ll.Len() > c.limit {
		back := c.ll.Back()
		delete(c.entries, back.Value.(*cacheEntry[V]).key)
		c.ll.Remove(back)
		c.evictions.Add(1)
	}
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int {
	if c.limit <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the lifetime hit, miss and eviction counters.
func (c *Cache[V]) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
