// Package area implements the silicon-area model of Table II. It reproduces
// the paper's self-consistent totals — a 0.86 mm² sub-chip and a 91 mm²
// 106-sub-chip chip — and the Fig. 10 breakdowns: the TIMELY area split by
// component (Fig. 10(b)) and the ReRAM-array share of chip area across
// accelerators (Fig. 10(a)).
package area

import (
	"fmt"
	"sort"

	"repro/internal/params"
)

// Item is one component's contribution to sub-chip area.
type Item struct {
	Name  string
	Count int
	// Unit is the per-component area in µm².
	Unit float64
}

// Total returns Count × Unit in µm².
func (i Item) Total() float64 { return float64(i.Count) * i.Unit }

// SubChipItems returns the Table II component inventory of one TIMELY
// sub-chip. I-adders and their interconnect are excluded from area totals:
// the paper places them under the charging capacitors and crossbars on
// different IC layers (§VI-A).
func SubChipItems() []Item {
	return []Item{
		{"DTC", params.DTCsPerSubChip, params.AreaDTC},
		{"ReRAM crossbar", params.CrossbarsPerSubChip, params.AreaCrossbar},
		{"charging+comparator", params.CountCharging, params.AreaCharging},
		{"TDC", params.TDCsPerSubChip, params.AreaTDC},
		{"X-subBuf", params.CountXSubBuf, params.AreaXSubBuf},
		{"P-subBuf", params.CountPSubBuf, params.AreaPSubBuf},
		{"ReLU", params.CountReLU, params.AreaReLU},
		{"maxpool", params.CountMaxPool, params.AreaMaxPool},
		{"input buffer", 1, params.AreaInBuffer},
		{"output buffer", 1, params.AreaOutBuffer},
	}
}

// SubChipArea returns the TIMELY sub-chip area in µm² (Table II: 0.86 mm²).
func SubChipArea() float64 {
	s := 0.0
	for _, it := range SubChipItems() {
		s += it.Total()
	}
	return s
}

// ChipArea returns the area of a TIMELY chip with n sub-chips in µm²
// (Table II: 0.86·χ mm²; 91 mm² at χ=106).
func ChipArea(n int) float64 { return float64(n) * SubChipArea() }

// DesignPoint is the physical sub-chip design at one configuration: cycle
// time, interface-scaled area and peak compute. It is the single source of
// the γ-trade-off arithmetic shared by the §V ablation and the public
// sim.Designer view.
type DesignPoint struct {
	// CycleNS is the pipeline cycle in ns (γ × 25 ns).
	CycleNS float64
	// SubChipUM2 is the sub-chip area in µm² with the DTC/TDC banks
	// resized to the sharing factor.
	SubChipUM2 float64
	// PeakTOPS is the per-sub-chip peak (1 op = 1 MAC).
	PeakTOPS float64
	// DensityTOPsMM2 is the resulting computational density.
	DensityTOPsMM2 float64
}

// TimelyDesignPoint evaluates cfg's design point. The interface banks
// scale inversely with cfg.Gamma (more sharing, fewer converters); the
// rest of the sub-chip inventory is γ-independent.
func TimelyDesignPoint(cfg params.TimelyConfig) DesignPoint {
	fixed := SubChipArea() -
		float64(params.DTCsPerSubChip)*params.AreaDTC -
		float64(params.TDCsPerSubChip)*params.AreaTDC
	a := fixed +
		float64(cfg.GridRows*cfg.B/cfg.Gamma)*params.AreaDTC +
		float64(cfg.GridCols*cfg.B/cfg.Gamma)*params.AreaTDC
	tops := cfg.MACsPerSubChipCycle() / cfg.CycleTime() // MACs per ps = TOPS
	return DesignPoint{
		CycleNS:        cfg.CycleTime() / 1000,
		SubChipUM2:     a,
		PeakTOPS:       tops,
		DensityTOPsMM2: tops / (a / 1e6),
	}
}

// Share is one slice of an area breakdown.
type Share struct {
	Name     string
	Fraction float64
}

// Breakdown returns the Fig. 10(b) area split of one sub-chip, sorted by
// descending fraction.
func Breakdown() []Share {
	total := SubChipArea()
	items := SubChipItems()
	out := make([]Share, 0, len(items))
	for _, it := range items {
		out = append(out, Share{it.Name, it.Total() / total})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fraction > out[j].Fraction })
	return out
}

// ReRAMShareTimely returns the crossbar-array fraction of TIMELY chip area
// (Fig. 10(a): 2.2 %).
func ReRAMShareTimely() float64 {
	return float64(params.CrossbarsPerSubChip) * params.AreaCrossbar / SubChipArea()
}

// IsaacCrossbarArea is the area of one 128×128 ISAAC crossbar in µm².
// A 128×128 array is ¼ the cell count of TIMELY's 256×256, hence ≈25 µm²
// at the same 100 µm² / 256×256 density (Fig. 10(a) puts ISAAC's ReRAM at
// 0.4 % of its 88 mm² chip: 16128 × 25 µm² / 88 mm² ≈ 0.46 %).
const IsaacCrossbarArea = params.AreaCrossbar / 4

// IsaacChipArea is ISAAC's published chip area in µm² (88 mm²).
const IsaacChipArea = 88e6

// ReRAMShareIsaac returns ISAAC's crossbar-array share of chip area.
func ReRAMShareIsaac(crossbars int) float64 {
	return float64(crossbars) * IsaacCrossbarArea / IsaacChipArea
}

// PrimeChipArea is the die area of PRIME's host memory chip in µm². PRIME
// embeds 1024 compute mats in a full ReRAM main-memory die; the paper calls
// its compute-array share "small enough and thus ignored". We model the
// ~91 mm² die class the comparisons normalise against.
const PrimeChipArea = 91e6

// ReRAMSharePrime returns PRIME's compute-crossbar share of chip area
// (Fig. 10(a): ≈0).
func ReRAMSharePrime(crossbars int) float64 {
	return float64(crossbars) * params.AreaCrossbar / PrimeChipArea
}

// FormatMM2 renders an area in µm² as square millimetres.
func FormatMM2(um2 float64) string {
	return fmt.Sprintf("%.2f mm^2", um2/1e6)
}
