package area

import (
	"math"
	"testing"

	"repro/internal/params"
)

func TestSubChipAreaMatchesTableII(t *testing.T) {
	// Table II: one sub-chip totals 0.86 mm² = 0.86e6 µm².
	got := SubChipArea()
	if math.Abs(got-0.86e6)/0.86e6 > 0.01 {
		t.Errorf("sub-chip area = %.0f µm², want ≈0.86e6 (Table II)", got)
	}
}

func TestChipAreaMatchesTableII(t *testing.T) {
	// Table II: 106 sub-chips total 91 mm².
	got := ChipArea(params.SubChipsPerChip)
	if math.Abs(got-91e6)/91e6 > 0.01 {
		t.Errorf("chip area = %.0f µm², want ≈91e6 (Table II)", got)
	}
}

func TestBreakdownMatchesFig10b(t *testing.T) {
	// Fig. 10(b): X-subBuf 28.5 %, P-subBuf 26.7 %, DTC 14.2 %, charging
	// 14.2 %, TDC 13.8 %, ReRAM 2.2 %.
	want := map[string]float64{
		"X-subBuf":            0.285,
		"P-subBuf":            0.267,
		"DTC":                 0.142,
		"charging+comparator": 0.142,
		"TDC":                 0.138,
		"ReRAM crossbar":      0.022,
	}
	got := map[string]float64{}
	for _, s := range Breakdown() {
		got[s.Name] = s.Fraction
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("breakdown missing %s", name)
			continue
		}
		if math.Abs(g-w) > 0.005 {
			t.Errorf("%s share = %.3f, want %.3f (Fig. 10(b))", name, g, w)
		}
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	s := 0.0
	for _, sh := range Breakdown() {
		if sh.Fraction < 0 {
			t.Errorf("negative share for %s", sh.Name)
		}
		s += sh.Fraction
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("breakdown sums to %v, want 1", s)
	}
}

func TestBreakdownSorted(t *testing.T) {
	b := Breakdown()
	for i := 1; i < len(b); i++ {
		if b[i].Fraction > b[i-1].Fraction {
			t.Errorf("breakdown not sorted at %d", i)
		}
	}
	if b[0].Name != "X-subBuf" {
		t.Errorf("largest share = %s, want X-subBuf (Fig. 10(b))", b[0].Name)
	}
}

func TestReRAMShares(t *testing.T) {
	// Fig. 10(a): TIMELY 2.2 %, ISAAC ≈0.4 %, PRIME ≈0; TIMELY ≈5.5× ISAAC.
	timely := ReRAMShareTimely()
	if math.Abs(timely-0.022) > 0.002 {
		t.Errorf("TIMELY ReRAM share = %.4f, want ≈0.022", timely)
	}
	isaac := ReRAMShareIsaac(params.DefaultIsaac().Crossbars)
	if isaac < 0.003 || isaac > 0.006 {
		t.Errorf("ISAAC ReRAM share = %.4f, want ≈0.004", isaac)
	}
	prime := ReRAMSharePrime(params.DefaultPrime().Crossbars)
	if prime > 0.002 {
		t.Errorf("PRIME ReRAM share = %.4f, want ≈0", prime)
	}
	if ratio := timely / isaac; ratio < 4 || ratio > 7 {
		t.Errorf("TIMELY/ISAAC ReRAM share ratio = %.1f, want ≈5.5 (Fig. 10(a))", ratio)
	}
}

func TestItemTotals(t *testing.T) {
	it := Item{"x", 3, 2.5}
	if it.Total() != 7.5 {
		t.Errorf("Item.Total = %v", it.Total())
	}
}
