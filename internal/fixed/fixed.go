// Package fixed implements the uniform fixed-point quantisation used to map
// CNN/DNN weights and activations onto TIMELY's 8-bit (or 16-bit) datapath:
// symmetric signed quantisation for weights, asymmetric unsigned quantisation
// for post-ReLU activations, and saturating integer helpers.
//
// TIMELY stores weights in 4-bit ReRAM cells using a sub-ranging split
// (§IV-C): an 8-bit weight w occupies two adjacent columns holding the
// most-significant and least-significant nibbles. Split/Combine implement
// that scheme for arbitrary cell widths.
package fixed

import (
	"errors"
	"math"
)

// ErrEmpty is returned when calibrating a quantiser over no data.
var ErrEmpty = errors.New("fixed: cannot calibrate over empty data")

// Quantizer maps float64 values to unsigned integer codes of Bits width
// with a zero point, i.e. code = clamp(round(x/Scale) + Zero).
type Quantizer struct {
	// Bits is the code width (1..16).
	Bits int
	// Scale is the value of one LSB.
	Scale float64
	// Zero is the code representing 0.0.
	Zero int
}

// Levels returns the number of representable codes.
func (q Quantizer) Levels() int { return 1 << q.Bits }

// MaxCode returns the largest representable code.
func (q Quantizer) MaxCode() int { return q.Levels() - 1 }

// Quantize converts x to its nearest code, saturating at the range limits.
func (q Quantizer) Quantize(x float64) int {
	c := int(math.Round(x/q.Scale)) + q.Zero
	if c < 0 {
		return 0
	}
	if c > q.MaxCode() {
		return q.MaxCode()
	}
	return c
}

// Dequantize converts a code back to its real value.
func (q Quantizer) Dequantize(code int) float64 {
	return float64(code-q.Zero) * q.Scale
}

// NewSymmetric returns a signed symmetric quantiser: zero point at mid-range,
// scale chosen so ±maxAbs spans the code range. Used for weights.
func NewSymmetric(bits int, maxAbs float64) (Quantizer, error) {
	if bits < 1 || bits > 16 {
		return Quantizer{}, errors.New("fixed: bits out of range")
	}
	if maxAbs <= 0 {
		return Quantizer{}, errors.New("fixed: non-positive range")
	}
	half := float64(int(1)<<(bits-1) - 1) // e.g. 127 for 8 bits
	return Quantizer{Bits: bits, Scale: maxAbs / half, Zero: 1 << (bits - 1)}, nil
}

// NewUnsigned returns an unsigned quantiser over [0, maxVal], zero point 0.
// Used for post-ReLU activations, which TIMELY feeds to DTCs as plain codes.
func NewUnsigned(bits int, maxVal float64) (Quantizer, error) {
	if bits < 1 || bits > 16 {
		return Quantizer{}, errors.New("fixed: bits out of range")
	}
	if maxVal <= 0 {
		return Quantizer{}, errors.New("fixed: non-positive range")
	}
	return Quantizer{Bits: bits, Scale: maxVal / float64(int(1)<<bits-1), Zero: 0}, nil
}

// CalibrateSymmetric builds a symmetric quantiser spanning the maximum
// absolute value in xs.
func CalibrateSymmetric(bits int, xs []float64) (Quantizer, error) {
	if len(xs) == 0 {
		return Quantizer{}, ErrEmpty
	}
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	if m == 0 {
		m = 1
	}
	return NewSymmetric(bits, m)
}

// CalibrateUnsigned builds an unsigned quantiser spanning the maximum value
// in xs (non-positive data calibrates to [0,1]).
func CalibrateUnsigned(bits int, xs []float64) (Quantizer, error) {
	if len(xs) == 0 {
		return Quantizer{}, ErrEmpty
	}
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if m == 0 {
		m = 1
	}
	return NewUnsigned(bits, m)
}

// Split decomposes an unsigned code of totalBits width into big-endian
// cellBits-wide nibbles (most significant first), the layout of TIMELY's
// sub-ranged weight columns. It panics if code does not fit totalBits.
func Split(code, totalBits, cellBits int) []uint8 {
	if code < 0 || code >= 1<<totalBits {
		panic("fixed: code out of range for Split")
	}
	n := (totalBits + cellBits - 1) / cellBits
	out := make([]uint8, n)
	mask := (1 << cellBits) - 1
	for i := n - 1; i >= 0; i-- {
		out[i] = uint8(code & mask)
		code >>= cellBits
	}
	return out
}

// Combine is the inverse of Split: it reassembles big-endian cellBits-wide
// nibbles into one unsigned code.
func Combine(nibbles []uint8, cellBits int) int {
	code := 0
	for _, nb := range nibbles {
		code = code<<cellBits | int(nb)
	}
	return code
}

// ClampInt saturates v into [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SatAddInt32 adds two int32 values, saturating at the type bounds. Used by
// the reference fixed-point accumulators.
func SatAddInt32(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s > math.MaxInt32 {
		return math.MaxInt32
	}
	if s < math.MinInt32 {
		return math.MinInt32
	}
	return int32(s)
}
