package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSymmetricRoundTrip(t *testing.T) {
	q, err := NewSymmetric(8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, -0.5, 0, 0.25, 1} {
		code := q.Quantize(x)
		back := q.Dequantize(code)
		if math.Abs(back-x) > q.Scale/2+1e-12 {
			t.Errorf("round trip %v -> %d -> %v exceeds half-LSB", x, code, back)
		}
	}
}

func TestSymmetricZeroIsExact(t *testing.T) {
	q, _ := NewSymmetric(8, 3.7)
	if got := q.Dequantize(q.Quantize(0)); got != 0 {
		t.Errorf("zero not exactly representable: %v", got)
	}
}

func TestUnsignedSaturation(t *testing.T) {
	q, _ := NewUnsigned(8, 1.0)
	if c := q.Quantize(2.0); c != 255 {
		t.Errorf("over-range code = %d, want 255", c)
	}
	if c := q.Quantize(-1.0); c != 0 {
		t.Errorf("under-range code = %d, want 0", c)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := NewSymmetric(0, 1); err == nil {
		t.Errorf("bits=0 accepted")
	}
	if _, err := NewSymmetric(8, 0); err == nil {
		t.Errorf("range=0 accepted")
	}
	if _, err := NewUnsigned(17, 1); err == nil {
		t.Errorf("bits=17 accepted")
	}
	if _, err := CalibrateSymmetric(8, nil); err != ErrEmpty {
		t.Errorf("empty calibration error = %v, want ErrEmpty", err)
	}
	if _, err := CalibrateUnsigned(8, nil); err != ErrEmpty {
		t.Errorf("empty calibration error = %v, want ErrEmpty", err)
	}
}

func TestCalibrate(t *testing.T) {
	qs, err := CalibrateSymmetric(8, []float64{-2, 0.5, 1.9})
	if err != nil {
		t.Fatal(err)
	}
	if qs.Quantize(-2) != qs.Zero-127 {
		t.Errorf("calibrated max-abs does not hit extreme code: %d", qs.Quantize(-2))
	}
	qu, err := CalibrateUnsigned(8, []float64{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if qu.Quantize(3) != 255 {
		t.Errorf("calibrated max does not hit 255: %d", qu.Quantize(3))
	}
}

func TestCalibrateAllZero(t *testing.T) {
	q, err := CalibrateSymmetric(8, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if q.Scale <= 0 {
		t.Errorf("degenerate calibration produced scale %v", q.Scale)
	}
}

func TestSplitCombineKnown(t *testing.T) {
	// 0xAB split into 4-bit nibbles must give [0xA, 0xB].
	nb := Split(0xAB, 8, 4)
	if len(nb) != 2 || nb[0] != 0xA || nb[1] != 0xB {
		t.Fatalf("Split(0xAB) = %v", nb)
	}
	if got := Combine(nb, 4); got != 0xAB {
		t.Errorf("Combine = %#x, want 0xAB", got)
	}
	// 16-bit over 4-bit cells -> 4 nibbles.
	nb16 := Split(0x1234, 16, 4)
	want := []uint8{1, 2, 3, 4}
	for i := range want {
		if nb16[i] != want[i] {
			t.Fatalf("Split(0x1234) = %v", nb16)
		}
	}
	// 16-bit over 2-bit cells (ISAAC layout) -> 8 dibits.
	if got := len(Split(0xFFFF, 16, 2)); got != 8 {
		t.Errorf("16b/2b Split length = %d, want 8", got)
	}
}

func TestSplitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Split(256, 8, 4) did not panic")
		}
	}()
	Split(256, 8, 4)
}

func TestSplitCombineProperty(t *testing.T) {
	f := func(v uint16, cellSel uint8) bool {
		cellBits := []int{1, 2, 4, 8}[int(cellSel)%4]
		return Combine(Split(int(v), 16, cellBits), cellBits) == int(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizeMonotoneProperty(t *testing.T) {
	q, _ := NewSymmetric(8, 10)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return q.Quantize(a) <= q.Quantize(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampInt(t *testing.T) {
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Errorf("ClampInt broken")
	}
}

func TestSatAddInt32(t *testing.T) {
	if SatAddInt32(math.MaxInt32, 1) != math.MaxInt32 {
		t.Errorf("positive saturation failed")
	}
	if SatAddInt32(math.MinInt32, -1) != math.MinInt32 {
		t.Errorf("negative saturation failed")
	}
	if SatAddInt32(2, 3) != 5 {
		t.Errorf("plain add failed")
	}
}
