package stats

import "fmt"

// Sampler v3 is the counter-based regime: the uniform bit source is
// Philox4x32-10 (Salmon, Moraes, Dror & Shaw, "Parallel Random Numbers: As
// Easy as 1, 2, 3", SC'11 — the Random123 reference implementation), a
// keyed bijection on a 128-bit counter. Unlike the splitmix64 stream of
// v1/v2, any position of a v3 stream is computable in O(1) from its
// coordinates alone, so Monte-Carlo substreams can be *keyed* instead of
// *split*: the generator for (seed, trial, grid slot) is constructed
// directly, without consuming or cloning any other stream. That is what
// makes trial-level fan-out byte-stable at any parallelism — worker count
// and materialisation order cannot move a draw from one substream to
// another, because the substream coordinates, not the execution order,
// define every deviate.
//
// Counter layout (32-bit words):
//
//	word 0,1  block counter (low/high) — advances by 1 per 128-bit block
//	word 2    stream id: 0 for the main stream, lane<<24|index for
//	          Substream-derived streams (fault/variation draws per slot)
//	word 3    trial index
//
// The 64-bit study seed is the Philox key. Distinct (seed, trial, stream)
// triples therefore enumerate disjoint counter sets — substreams can never
// overlap, for adjacent trials or any other pair — and each substream
// yields 2^65 uint64s before its block counter wraps. The derived-deviate
// algorithms on top of the bit source are exactly the v2 set (Ziggurat
// Gaussians, Lemire bounded Intn, binomial + Floyd fault draws); only the
// uniform source and the keying differ.

// Philox4x32 round constants: the two 32-bit multipliers and the Weyl key
// schedule increments of the reference implementation.
const (
	philoxM0 uint64 = 0xD2511F53
	philoxM1 uint64 = 0xCD9E8D57
	philoxW0 uint32 = 0x9E3779B9
	philoxW1 uint32 = 0xBB67AE85

	philoxRounds = 10
)

// philoxBlock applies the 10-round Philox4x32 bijection to one 128-bit
// counter under a 64-bit key and returns the four 32-bit output words. It
// matches the Random123 reference implementation bit for bit (the
// known-answer tests pin the published vectors).
func philoxBlock(c [4]uint32, k [2]uint32) [4]uint32 {
	for i := 0; i < philoxRounds; i++ {
		if i > 0 {
			k[0] += philoxW0
			k[1] += philoxW1
		}
		p0 := philoxM0 * uint64(c[0])
		p1 := philoxM1 * uint64(c[2])
		c = [4]uint32{
			uint32(p1>>32) ^ c[1] ^ k[0],
			uint32(p1),
			uint32(p0>>32) ^ c[3] ^ k[1],
			uint32(p0),
		}
	}
	return c
}

// philoxInit resets the receiver to the v3 substream (seed, trial, stream):
// Philox key = seed, block counter 0, empty output buffer.
func (r *RNG) philoxInit(seed uint64, trial, stream uint32) {
	*r = RNG{
		sampler: SamplerV3,
		key:     [2]uint32{uint32(seed), uint32(seed >> 32)},
		ctr:     [4]uint32{0, 0, stream, trial},
	}
}

// philoxNext serves the next 64 bits of a v3 stream: each 128-bit block
// yields two uint64s (words 0|1 then 2|3), and the block counter in counter
// words 0-1 advances by one per block.
func (r *RNG) philoxNext() uint64 {
	if r.bufn == 0 {
		o := philoxBlock(r.ctr, r.key)
		r.ctr[0]++
		if r.ctr[0] == 0 {
			r.ctr[1]++
		}
		r.buf[0] = uint64(o[0]) | uint64(o[1])<<32
		r.buf[1] = uint64(o[2]) | uint64(o[3])<<32
		r.bufn = 2
	}
	r.bufn--
	out := r.buf[0]
	r.buf[0] = r.buf[1]
	return out
}

// NewTrialRNG returns the trial-th substream of the v3 counter-based study
// keyed by seed: the Philox stream with counter coordinates (seed, trial,
// stream 0). Every trial's generator is constructed independently — no
// other stream is consumed or cloned — so a study can evaluate its trials
// in any order, on any number of workers, and every draw is identical to a
// serial run. (Under v1/v2 the splitmix64 stream is inherently serial;
// callers there derive per-trial seeds additively instead. See the
// Sampling regimes section of DESIGN.md.)
func NewTrialRNG(seed uint64, trial uint32) *RNG {
	r := &RNG{}
	r.philoxInit(seed, trial, 0)
	return r
}

// Substream lanes partition a v3 generator's stream-id word so different
// draw purposes on the same (seed, trial) can never collide: the main
// stream (noise draws during compute) is stream id 0, and each
// (lane, index) pair owns the id lane<<24|index.
const (
	// SubstreamLanes is the exclusive upper bound on Substream lane values.
	SubstreamLanes = 1 << 8
	// SubstreamIndexes is the exclusive upper bound on Substream indexes.
	SubstreamIndexes = 1 << 24
)

// Substream returns the (lane, index) substream of a v3 generator: a fresh
// generator with the same seed key and trial word, stream id
// lane<<24|index, and its block counter at zero. Lanes must be in
// [1, SubstreamLanes) — lane 0 is the main stream — and indexes in
// [0, SubstreamIndexes). The receiver is not advanced; calling Substream
// any number of times, in any order, returns generators whose streams are
// disjoint from each other and from the receiver's by construction. It
// panics on a non-v3 generator (v1/v2 splitmix streams have no substream
// coordinates) or an out-of-range lane/index.
func (r *RNG) Substream(lane, index uint32) *RNG {
	if r.sampler != SamplerV3 {
		panic(fmt.Sprintf("stats: Substream on a %v generator (substreams need the v3 counter-based regime)", r.Sampler()))
	}
	if lane == 0 || lane >= SubstreamLanes || index >= SubstreamIndexes {
		panic(fmt.Sprintf("stats: Substream(%d, %d) out of range", lane, index))
	}
	sub := &RNG{}
	sub.philoxInit(uint64(r.key[0])|uint64(r.key[1])<<32, r.ctr[3], lane<<24|index)
	return sub
}
