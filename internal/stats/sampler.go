package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// SamplerVersion selects one of the simulator's Monte-Carlo sampling
// regimes. A regime is a *stream contract*: given the same seed, every
// generator of that regime draws the same deviates in the same order, so
// realised fault maps, noise sequences and therefore artifact bytes are
// reproducible per (seed, regime).
//
//   - SamplerV1 is the legacy regime the original goldens were captured
//     under: one Bernoulli deviate per crossbar cell for fault injection
//     (O(cells) per draw), Box-Muller Gaussians, and modulo-reduced Intn.
//   - SamplerV2 is the sublinear regime: an exact Binomial(n, rate) count
//     draw followed by Floyd's sampling without replacement for fault
//     positions (O(faults) per crossbar), Ziggurat Gaussians in the noise
//     hot path, and Lemire bounded-rejection Intn (no modulo bias).
//   - SamplerV3 is the counter-based regime: the v2 deviate algorithms over
//     a Philox4x32-10 bit source whose substreams are keyed by
//     (seed, trial, grid slot) instead of split from one serial stream, so
//     any trial — and any crossbar's fault draws within a trial — is
//     computable independently with byte-stable results at any parallelism
//     (see philox.go, NewTrialRNG, Substream).
//
// All regimes are statistically equivalent (the distributional tests in
// this package and in internal/reram defend that); they differ only in
// cost and in the exact deviate stream. SamplerDefault resolves to v3.
type SamplerVersion uint8

const (
	// SamplerDefault resolves to the package default regime (currently v3).
	SamplerDefault SamplerVersion = iota
	// SamplerV1 is the legacy per-cell Bernoulli / Box-Muller regime.
	SamplerV1
	// SamplerV2 is the sublinear binomial / Ziggurat regime.
	SamplerV2
	// SamplerV3 is the counter-based Philox substream regime.
	SamplerV3
)

// Resolve maps SamplerDefault to the concrete default regime (v3) and
// returns every explicit version unchanged.
func (v SamplerVersion) Resolve() SamplerVersion {
	if v == SamplerDefault {
		return SamplerV3
	}
	return v
}

// String returns "v1", "v2" or "v3" ("default" for the unresolved zero
// value).
func (v SamplerVersion) String() string {
	switch v {
	case SamplerDefault:
		return "default"
	case SamplerV1:
		return "v1"
	case SamplerV2:
		return "v2"
	case SamplerV3:
		return "v3"
	}
	return fmt.Sprintf("sampler(%d)", uint8(v))
}

// ParseSamplerVersion parses the CLI/API spelling of a sampling regime:
// "v1", "v2", "v3", or "" for the default.
func ParseSamplerVersion(s string) (SamplerVersion, error) {
	switch s {
	case "":
		return SamplerDefault, nil
	case "v1":
		return SamplerV1, nil
	case "v2":
		return SamplerV2, nil
	case "v3":
		return SamplerV3, nil
	}
	return 0, fmt.Errorf("stats: unknown sampler version %q (want v1, v2 or v3)", s)
}

// NewRNGSampler returns a generator seeded with seed that samples under the
// given regime (SamplerDefault resolves to v3; a v3 generator is the
// trial-0 main stream, NewTrialRNG(seed, 0)). NewRNG and the RNG zero
// value keep the legacy v1 regime so existing deviate streams stay
// byte-stable.
func NewRNGSampler(seed uint64, v SamplerVersion) *RNG {
	if v.Resolve() == SamplerV3 {
		return NewTrialRNG(seed, 0)
	}
	return &RNG{state: seed, sampler: v.Resolve()}
}

// SetSampler switches the generator's sampling regime in place
// (SamplerDefault resolves to v3). It returns the receiver for chaining.
// Switching between v1 and v2 mid-stream is allowed — their uniform bit
// stream is shared; only the derived-deviate algorithms change. Switching
// into or out of v3 re-keys the generator (the splitmix64 state becomes
// the Philox seed or vice versa, at trial 0, stream 0, block 0), because
// the two bit sources have no shared position.
func (r *RNG) SetSampler(v SamplerVersion) *RNG {
	v = v.Resolve()
	switch {
	case v == r.sampler:
	case v == SamplerV3:
		r.philoxInit(r.state, 0, 0)
	case r.sampler == SamplerV3:
		*r = RNG{state: uint64(r.key[0]) | uint64(r.key[1])<<32, sampler: v}
	default:
		r.sampler = v
	}
	return r
}

// Sampler reports the generator's sampling regime (SamplerV1 for the zero
// value and NewRNG-built generators).
func (r *RNG) Sampler() SamplerVersion {
	if r.sampler >= SamplerV2 {
		return r.sampler
	}
	return SamplerV1
}

// intnLemire is the v2 bounded uniform: Lemire's multiply-shift rejection
// (Fast Random Integer Generation in an Interval, 2019). Unlike the v1
// modulo reduction it is exactly uniform over [0,n) — the raw 64-bit draw
// is mapped through a 128-bit multiply and the small biased low fraction
// (at most n of 2^64 values) is rejected and redrawn.
func (r *RNG) intnLemire(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n // (2^64 - n) mod n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// SampleK draws k distinct integers from [0,n) by Floyd's sampling
// algorithm (Bentley & Floyd, CACM 1987) and calls visit once per selected
// value, in draw order. It consumes exactly k Intn deviates regardless of
// collisions, so callers that interleave further draws inside visit (the
// fault model draws a stuck-at polarity per position) get a replayable
// stream: re-running SampleK from a cloned generator reproduces the same
// positions and leaves the generator in the same state. It panics if k > n
// or either is negative.
func (r *RNG) SampleK(n, k int, visit func(pos int)) {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("stats: SampleK(%d, %d) out of range", n, k))
	}
	if k == 0 {
		return
	}
	// Membership structure: a bitset for bounded domains (the fault model's
	// n is one crossbar, 64Ki cells), a map when the domain is huge and
	// sparse. The choice never touches the deviate stream.
	if n <= 1<<22 {
		seen := make([]uint64, (n+63)/64)
		for j := n - k; j < n; j++ {
			pos := r.Intn(j + 1)
			if seen[pos>>6]&(1<<(pos&63)) != 0 {
				pos = j
			}
			seen[pos>>6] |= 1 << (pos & 63)
			visit(pos)
		}
		return
	}
	seen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		pos := r.Intn(j + 1)
		if _, dup := seen[pos]; dup {
			pos = j
		}
		seen[pos] = struct{}{}
		visit(pos)
	}
}

// Binomial draws an exact Binomial(n, p) count: the number of successes in
// n independent trials of probability p. Small-mean draws use CDF
// inversion (BINV); large-mean draws use Hormann's BTRS transformed
// rejection, which is exact (the acceptance test evaluates the true PMF
// ratio). The deviate consumption is variable but deterministic per
// generator state, so cloned generators replay identical draws. It panics
// on n < 0 or p outside [0,1].
//
// This is the sampler-v2 fault-count draw: one Binomial per crossbar
// replaces one Bernoulli per cell, collapsing O(cells) work to O(1) plus
// O(faults) position sampling.
func (r *RNG) Binomial(n int, p float64) int {
	if n < 0 || p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: Binomial(%d, %v) out of range", n, p))
	}
	if n == 0 || p == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	if p > 0.5 {
		// Symmetry keeps the worker algorithms in their accurate p ≤ ½ half.
		return n - r.Binomial(n, 1-p)
	}
	if float64(n)*p < 10 {
		return r.binomialInv(n, p)
	}
	return r.binomialBTRS(n, p)
}

// binomialInv is the BINV inversion sampler for n·p < 10, p ≤ ½: walk the
// CDF from 0 with the PMF recurrence until the uniform deviate is covered.
// Expected cost is O(n·p) PMF steps per draw.
func (r *RNG) binomialInv(n int, p float64) int {
	q := 1 - p
	s := p / q
	// q^n ≥ exp(-n·p/q) ≥ exp(-20) in this regime, so the start of the
	// recurrence never underflows.
	f := math.Pow(q, float64(n))
	for {
		u := r.Float64()
		fx := f
		for x := 0; x <= n; x++ {
			if u <= fx {
				return x
			}
			u -= fx
			fx *= s * float64(n-x) / float64(x+1)
		}
		// Rounding pushed u past the accumulated CDF mass (probability
		// ~2^-50); redraw rather than return a clamped tail value.
	}
}

// binomialBTRS is Hormann's BTRS transformed-rejection binomial sampler
// (The generation of binomial random variates, 1993), exact for
// n·p ≥ 10 and p ≤ ½. The squeeze accepts ~86 % of draws with two
// uniforms; rejected candidates fall through to the exact log-PMF test.
func (r *RNG) binomialBTRS(n int, p float64) int {
	fn := float64(n)
	q := 1 - p
	spq := math.Sqrt(fn * p * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := fn*p + 0.5
	vr := 0.92 - 4.2/b
	alpha := (2.83 + 5.1/b) * spq
	lpq := p / q
	m := math.Floor((fn + 1) * p)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + c)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || k > fn {
			continue
		}
		// Exact acceptance: log v against the transformed PMF ratio, with
		// Stirling-series factorial tails.
		v = math.Log(v * alpha / (a/(us*us) + b))
		ub := (m+0.5)*math.Log((m+1)/(lpq*(fn-m+1))) +
			(fn+1)*math.Log((fn-m+1)/(fn-k+1)) +
			(k+0.5)*math.Log(lpq*(fn-k+1)/(k+1)) +
			stirlingTail(m) + stirlingTail(fn-m) - stirlingTail(k) - stirlingTail(fn-k)
		if v <= ub {
			return int(k)
		}
	}
}

// stirlingTailSmall holds the exact log(k!) Stirling-series remainders for
// k = 0..9 (Loader, Fast and accurate computation of binomial
// probabilities, 2000).
var stirlingTailSmall = [10]float64{
	0.08106146679532726, 0.04134069595540929, 0.02767792568499834,
	0.02079067210376509, 0.01664469118982119, 0.01387612882307075,
	0.01189670994589177, 0.01041126526197209, 0.009255462182712733,
	0.008330563433362871,
}

// stirlingTail returns log(k!) − [k·ln k − k + ½·ln(2πk)], the Stirling
// remainder, from the exact table for small k and the asymptotic series
// otherwise.
func stirlingTail(k float64) float64 {
	if k < 10 {
		return stirlingTailSmall[int(k)]
	}
	kp1 := k + 1
	kp1sq := kp1 * kp1
	return (1.0/12 - (1.0/360-1.0/1260/kp1sq)/kp1sq) / kp1
}

// Ziggurat tables for the standard normal (Marsaglia & Tsang, The Ziggurat
// Method for Generating Random Variables, JSS 2000): 128 equal-area layers
// with tail cut r and layer area v. zigX[i] is the right edge of layer i
// (zigX[1] = r, descending to zigX[128] = 0); zigF[i] = exp(-zigX[i]²/2).
// zigX[0] = v/f(r) is the virtual width of the base layer, which folds the
// tail's area into a rectangle of the same area as every other layer.
const (
	zigLayers = 128
	zigR      = 3.442619855899
	zigV      = 9.91256303526217e-3
)

var (
	zigX [zigLayers + 1]float64
	zigF [zigLayers + 1]float64
	// zigW[i] = zigX[i]/2^53 maps the 53-bit position draw straight to x;
	// zigK[i] is the conservative rectangle-accept bound on that draw
	// (positions at the boundary fall through to the exact wedge/tail
	// handling, so the integer fast path never over-accepts).
	zigW [zigLayers]float64
	zigK [zigLayers]uint64
)

func init() {
	f := math.Exp(-0.5 * zigR * zigR)
	zigX[0] = zigV / f
	zigX[1] = zigR
	zigF[0] = f
	zigF[1] = f
	for i := 2; i <= zigLayers; i++ {
		zigF[i] = zigF[i-1] + zigV/zigX[i-1]
		if zigF[i] >= 1 {
			zigF[i] = 1
			zigX[i] = 0
			continue
		}
		zigX[i] = math.Sqrt(-2 * math.Log(zigF[i]))
	}
	// The 128-layer constants close the recursion at the origin; pin the
	// top edge exactly (the residual is ~1e-9 and only ever used as the
	// wedge interpolation endpoint).
	zigX[zigLayers] = 0
	zigF[zigLayers] = 1
	for i := 0; i < zigLayers; i++ {
		zigW[i] = zigX[i] / (1 << 53)
		k := math.Floor(zigX[i+1] / zigX[i] * (1 << 53))
		if k >= 1 {
			k-- // conservative: boundary positions take the exact slow path
		}
		zigK[i] = uint64(k)
	}
}

// signedBits stamps the sign bit (pre-shifted to bit 63) onto a
// non-negative deviate without a data-dependent branch.
func signedBits(x float64, sign uint64) float64 {
	return math.Float64frombits(math.Float64bits(x) | sign)
}

// normZiggurat is the v2 standard-normal sampler. The common case spends
// one 64-bit draw: 7 bits pick the layer, 1 bit the sign, and the top 53
// bits the position; a position inside the layer's rectangle is accepted
// with one integer compare (~98.8 % of draws). Edge positions take the
// wedge test against the true density, and layer 0 falls through to
// Marsaglia's exact tail sampler beyond r.
func (r *RNG) normZiggurat() float64 {
	for {
		u := r.Uint64()
		i := int(u & (zigLayers - 1))
		j := u >> 11 // disjoint from the layer (bits 0-6) and sign (bit 7)
		sign := (u & (1 << 7)) << 56
		if j < zigK[i] {
			return signedBits(float64(j)*zigW[i], sign)
		}
		x := float64(j) * zigW[i]
		if i == 0 {
			if x < zigX[1] {
				// Boundary sliver the conservative integer bound rejected:
				// still inside the base rectangle.
				return signedBits(x, sign)
			}
			// Tail: exact sampling of the normal beyond r via two
			// exponential deviates. log1p(-u) keeps the argument in (0,1],
			// so the draw is finite for every uniform.
			var xt float64
			for {
				xt = -math.Log1p(-r.Float64()) / zigR
				y := -math.Log1p(-r.Float64())
				if y+y >= xt*xt {
					break
				}
			}
			return signedBits(zigR+xt, sign)
		}
		// Wedge: accept x with probability proportional to the density
		// overhang between the stacked rectangles.
		if zigF[i]+r.Float64()*(zigF[i+1]-zigF[i]) < math.Exp(-0.5*x*x) {
			return signedBits(x, sign)
		}
	}
}
