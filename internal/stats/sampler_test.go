package stats

import (
	"math"
	"testing"
)

// --- SamplerVersion plumbing ---

func TestSamplerVersionParseAndResolve(t *testing.T) {
	cases := []struct {
		in   string
		want SamplerVersion
	}{
		{"", SamplerDefault},
		{"v1", SamplerV1},
		{"v2", SamplerV2},
		{"v3", SamplerV3},
	}
	for _, c := range cases {
		got, err := ParseSamplerVersion(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseSamplerVersion(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseSamplerVersion("v4"); err == nil {
		t.Error("ParseSamplerVersion(v4) succeeded; want error")
	}
	if SamplerDefault.Resolve() != SamplerV3 {
		t.Errorf("SamplerDefault resolves to %v; want v3", SamplerDefault.Resolve())
	}
	if SamplerV1.Resolve() != SamplerV1 || SamplerV2.Resolve() != SamplerV2 ||
		SamplerV3.Resolve() != SamplerV3 {
		t.Error("explicit versions must resolve to themselves")
	}
	var zero RNG
	if zero.Sampler() != SamplerV1 {
		t.Errorf("zero-value RNG samples %v; want v1", zero.Sampler())
	}
	if NewRNGSampler(1, SamplerDefault).Sampler() != SamplerV3 {
		t.Error("NewRNGSampler(SamplerDefault) must resolve to v3")
	}
}

// TestV1StreamByteStable pins the legacy streams: NewRNG draws must not
// change when the sampler machinery evolves (the v1 goldens depend on it).
func TestV1StreamByteStable(t *testing.T) {
	r := NewRNG(42)
	wantU := []uint64{13679457532755275413, 2949826092126892291, 5139283748462763858}
	for i, w := range wantU {
		if got := r.Uint64(); got != w {
			t.Fatalf("v1 Uint64 draw %d = %d; want %d", i, got, w)
		}
	}
	// Intn under v1 is the historical modulo reduction of the next draw.
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if got, want := a.Intn(97), int(b.Uint64()%97); got != want {
			t.Fatalf("v1 Intn draw %d = %d; want modulo %d", i, got, want)
		}
	}
	// Norm under v1 is Box-Muller.
	c, d := NewRNG(9), NewRNG(9)
	for i := 0; i < 100; i++ {
		if got, want := c.Norm(), d.normBoxMuller(); got != want {
			t.Fatalf("v1 Norm draw %d = %v; want Box-Muller %v", i, got, want)
		}
	}
}

// TestCloneCarriesSampler: replaying from a clone must reproduce the v2
// deviates exactly (the deferred fault-injection contract).
func TestCloneCarriesSampler(t *testing.T) {
	r := NewRNGSampler(11, SamplerV2)
	cl := r.Clone()
	if cl.Sampler() != SamplerV2 {
		t.Fatal("clone dropped the sampler version")
	}
	for i := 0; i < 64; i++ {
		if a, b := r.Norm(), cl.Norm(); a != b {
			t.Fatalf("clone diverged at draw %d: %v vs %v", i, a, b)
		}
	}
}

// --- Lemire bounded Intn (v2) ---

func TestIntnLemireBounds(t *testing.T) {
	r := NewRNGSampler(3, SamplerV2)
	for _, n := range []int{1, 2, 3, 7, 97, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

// TestIntnLemireUniform: chi-square over a small modulus; the v2 reduction
// must be uniform (the v1 modulo bias at this sample size is far below the
// test's power — this guards gross mapping errors, not the bias itself).
func TestIntnLemireUniform(t *testing.T) {
	const n, draws = 13, 130000
	r := NewRNGSampler(5, SamplerV2)
	obs := make([]float64, n)
	for i := 0; i < draws; i++ {
		obs[r.Intn(n)]++
	}
	exp := make([]float64, n)
	for i := range exp {
		exp[i] = draws / float64(n)
	}
	// chi-square_{0.999, 12 df} = 32.91
	if x2 := ChiSquare(obs, exp); x2 > 32.91 {
		t.Fatalf("Intn(13) chi-square %.2f exceeds 32.91", x2)
	}
}

// TestIntnLemireRejection drives the rejection loop with a bound just
// below 2^63, where nearly half of all raw draws are rejected.
func TestIntnLemireRejection(t *testing.T) {
	n := int(uint64(1)<<63 - 25)
	r := NewRNGSampler(17, SamplerV2)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(n); v < 0 || v >= n {
			t.Fatalf("Intn(2^63-25) = %d out of range", v)
		}
	}
}

// --- Floyd's SampleK ---

func TestSampleKProperties(t *testing.T) {
	r := NewRNGSampler(23, SamplerV2)
	for _, tc := range []struct{ n, k int }{
		{10, 0}, {10, 1}, {10, 10}, {1000, 37}, {1 << 16, 500},
		// Past the bitset bound, the map path must behave identically.
		{1<<22 + 1, 64},
	} {
		seen := map[int]bool{}
		r.SampleK(tc.n, tc.k, func(pos int) {
			if pos < 0 || pos >= tc.n {
				t.Fatalf("SampleK(%d,%d) visited %d out of range", tc.n, tc.k, pos)
			}
			if seen[pos] {
				t.Fatalf("SampleK(%d,%d) visited %d twice", tc.n, tc.k, pos)
			}
			seen[pos] = true
		})
		if len(seen) != tc.k {
			t.Fatalf("SampleK(%d,%d) visited %d positions", tc.n, tc.k, len(seen))
		}
	}
}

// TestSampleKDrawCount: exactly k Intn draws regardless of collisions, so
// interleaved draws replay from clones.
func TestSampleKDrawCount(t *testing.T) {
	for _, k := range []int{1, 5, 50, 100} {
		a := NewRNGSampler(99, SamplerV2)
		b := a.Clone()
		a.SampleK(100, k, func(int) {})
		for i := 0; i < k; i++ {
			b.Intn(100 - k + 1 + i)
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("SampleK(100,%d) consumed a different number of draws than k Intn calls", k)
		}
	}
}

// TestSampleKUniform: every position is selected equally often (Floyd's
// algorithm yields a uniform k-subset).
func TestSampleKUniform(t *testing.T) {
	const n, k, reps = 20, 5, 40000
	r := NewRNGSampler(31, SamplerV2)
	obs := make([]float64, n)
	for i := 0; i < reps; i++ {
		r.SampleK(n, k, func(pos int) { obs[pos]++ })
	}
	exp := make([]float64, n)
	for i := range exp {
		exp[i] = reps * float64(k) / n
	}
	// chi-square_{0.999, 19 df} = 43.82
	if x2 := ChiSquare(obs, exp); x2 > 43.82 {
		t.Fatalf("SampleK occupancy chi-square %.2f exceeds 43.82", x2)
	}
}

// --- Binomial ---

// binomialPMF returns the exact Binomial(n,p) PMF via the log-gamma-free
// multiplicative recurrence (n is small in the tests that use it).
func binomialPMF(n int, p float64) []float64 {
	pmf := make([]float64, n+1)
	pmf[0] = math.Pow(1-p, float64(n))
	for k := 1; k <= n; k++ {
		pmf[k] = pmf[k-1] * float64(n-k+1) / float64(k) * p / (1 - p)
	}
	return pmf
}

func TestBinomialEdgeCases(t *testing.T) {
	r := NewRNGSampler(1, SamplerV2)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(100, 0); got != 0 {
		t.Errorf("Binomial(100, 0) = %d", got)
	}
	if got := r.Binomial(100, 1); got != 100 {
		t.Errorf("Binomial(100, 1) = %d", got)
	}
	state := r.Clone()
	if got := r.Binomial(1000, 0); got != 0 {
		t.Errorf("Binomial(1000, 0) = %d", got)
	}
	if r.Uint64() != state.Uint64() {
		t.Error("Binomial(n, 0) consumed deviates; rate-0 draws must be free")
	}
	for i := 0; i < 5000; i++ {
		if got := r.Binomial(5, 0.3); got < 0 || got > 5 {
			t.Fatalf("Binomial(5, .3) = %d out of range", got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Binomial(-1, .5) did not panic")
		}
	}()
	r.Binomial(-1, 0.5)
}

// TestBinomialInversionPMF: the small-mean inversion sampler against the
// exact PMF, chi-square per configuration.
func TestBinomialInversionPMF(t *testing.T) {
	const draws = 60000
	r := NewRNGSampler(7, SamplerV2)
	for _, tc := range []struct {
		n int
		p float64
	}{
		{8, 0.25}, {16, 0.1}, {5, 0.5}, {40, 0.05}, {12, 0.75}, // p>.5 exercises symmetry
	} {
		obs := make([]float64, tc.n+1)
		for i := 0; i < draws; i++ {
			obs[r.Binomial(tc.n, tc.p)]++
		}
		pmf := binomialPMF(tc.n, tc.p)
		// Pool bins with tiny expectation into their neighbours so the
		// chi-square approximation holds.
		var obsP, expP []float64
		accO, accE := 0.0, 0.0
		for k := 0; k <= tc.n; k++ {
			accO += obs[k]
			accE += pmf[k] * draws
			if accE >= 10 {
				obsP = append(obsP, accO)
				expP = append(expP, accE)
				accO, accE = 0, 0
			}
		}
		if accE > 0 && len(expP) > 0 {
			obsP[len(obsP)-1] += accO
			expP[len(expP)-1] += accE
		}
		x2 := ChiSquare(obsP, expP)
		// chi-square_{0.999} critical values by pooled df (len-1, ≤ 40):
		// generous fixed bound 2.5x df + 25 covers every configuration here.
		limit := 2.5*float64(len(expP)-1) + 25
		if x2 > limit {
			t.Errorf("Binomial(%d, %v) chi-square %.2f exceeds %.2f over %d bins",
				tc.n, tc.p, x2, limit, len(expP))
		}
	}
}

// TestBinomialBTRSMoments: the large-mean rejection sampler must match the
// binomial mean and variance (the fault-count acceptance criterion).
func TestBinomialBTRSMoments(t *testing.T) {
	const draws = 40000
	r := NewRNGSampler(13, SamplerV2)
	for _, tc := range []struct {
		n int
		p float64
	}{
		{65536, 0.001}, {65536, 0.01}, {65536, 0.05}, {65536, 0.15}, {65536, 0.30},
		{4096, 0.02}, {100, 0.2},
	} {
		xs := make([]float64, draws)
		for i := range xs {
			xs[i] = float64(r.Binomial(tc.n, tc.p))
		}
		mean := Mean(xs)
		wantMean := float64(tc.n) * tc.p
		sd := StdDev(xs)
		wantSD := math.Sqrt(float64(tc.n) * tc.p * (1 - tc.p))
		// Mean within 5 standard errors; SD within 5%.
		if se := wantSD / math.Sqrt(draws); math.Abs(mean-wantMean) > 5*se {
			t.Errorf("Binomial(%d, %v) mean %.2f; want %.2f (±%.3f)", tc.n, tc.p, mean, wantMean, 5*se)
		}
		if math.Abs(sd-wantSD)/wantSD > 0.05 {
			t.Errorf("Binomial(%d, %v) stddev %.2f; want %.2f", tc.n, tc.p, sd, wantSD)
		}
	}
}

// TestBinomialBTRSExactPMF: BTRS against the exact PMF at a moderate n
// where every bin is countable — the acceptance test is exact, so the
// histogram must match the true distribution, not just its moments.
func TestBinomialBTRSExactPMF(t *testing.T) {
	const n, p, draws = 120, 0.2, 120000 // n·p = 24 → BTRS path
	r := NewRNGSampler(19, SamplerV2)
	obs := make([]float64, n+1)
	for i := 0; i < draws; i++ {
		obs[r.Binomial(n, p)]++
	}
	pmf := binomialPMF(n, p)
	var obsP, expP []float64
	accO, accE := 0.0, 0.0
	for k := 0; k <= n; k++ {
		accO += obs[k]
		accE += pmf[k] * draws
		if accE >= 10 {
			obsP = append(obsP, accO)
			expP = append(expP, accE)
			accO, accE = 0, 0
		}
	}
	if accE > 0 && len(expP) > 0 {
		obsP[len(obsP)-1] += accO
		expP[len(expP)-1] += accE
	}
	x2 := ChiSquare(obsP, expP)
	limit := 2.5*float64(len(expP)-1) + 25
	if x2 > limit {
		t.Fatalf("BTRS chi-square %.2f exceeds %.2f over %d bins", x2, limit, len(expP))
	}
}

// --- Ziggurat ---

func TestZigguratTablesClose(t *testing.T) {
	// The 128-layer constants must close the recursion at the origin
	// before the explicit pin: the last computed edge is numerically zero.
	f := math.Exp(-0.5 * zigR * zigR)
	x := make([]float64, zigLayers+1)
	fs := make([]float64, zigLayers+1)
	x[1], fs[1] = zigR, f
	for i := 2; i <= zigLayers; i++ {
		fs[i] = fs[i-1] + zigV/x[i-1]
		if fs[i] >= 1 {
			x[i] = 0
			continue
		}
		x[i] = math.Sqrt(-2 * math.Log(fs[i]))
	}
	if x[zigLayers] > 0.02 {
		t.Fatalf("ziggurat recursion leaves x[%d] = %v; constants inconsistent", zigLayers, x[zigLayers])
	}
	if math.Abs(fs[zigLayers]-1) > 0.01 {
		t.Fatalf("ziggurat recursion leaves f[%d] = %v; want ~1", zigLayers, fs[zigLayers])
	}
}

// TestZigguratMoments: mean, variance, skewness and excess kurtosis of the
// v2 Gaussian against the standard normal.
func TestZigguratMoments(t *testing.T) {
	const draws = 400000
	r := NewRNGSampler(29, SamplerV2)
	var m1, m2, m3, m4 float64
	for i := 0; i < draws; i++ {
		x := r.Norm()
		m1 += x
		m2 += x * x
		m3 += x * x * x
		m4 += x * x * x * x
	}
	n := float64(draws)
	m1, m2, m3, m4 = m1/n, m2/n, m3/n, m4/n
	if math.Abs(m1) > 5/math.Sqrt(n) {
		t.Errorf("ziggurat mean %v; want 0", m1)
	}
	if math.Abs(m2-1) > 0.02 {
		t.Errorf("ziggurat variance %v; want 1", m2)
	}
	if math.Abs(m3) > 0.03 {
		t.Errorf("ziggurat third moment %v; want 0", m3)
	}
	if math.Abs(m4-3) > 0.1 {
		t.Errorf("ziggurat fourth moment %v; want 3", m4)
	}
}

// TestZigguratVsBoxMullerKS: two-sample KS between the regimes' Gaussians —
// the noise-model equivalence the accuracy study relies on.
func TestZigguratVsBoxMullerKS(t *testing.T) {
	const n = 200000
	v1 := NewRNG(37)
	v2 := NewRNGSampler(41, SamplerV2)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = v1.Norm()
		b[i] = v2.Norm()
	}
	d := KSTwoSample(a, b)
	if limit := KSThreshold(0.001, n, n); d > limit {
		t.Fatalf("ziggurat vs Box-Muller KS %.5f exceeds %.5f", d, limit)
	}
}

// TestZigguratTail: the tail sampler must populate |x| > r with the right
// mass (~2·Φ(−3.44) ≈ 5.8e-4) and produce finite values.
func TestZigguratTail(t *testing.T) {
	const draws = 2000000
	r := NewRNGSampler(43, SamplerV2)
	tail := 0
	for i := 0; i < draws; i++ {
		x := r.Norm()
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("ziggurat produced a non-finite deviate")
		}
		if math.Abs(x) > zigR {
			tail++
		}
	}
	want := 2 * 0.5 * math.Erfc(zigR/math.Sqrt2) * draws
	if got := float64(tail); math.Abs(got-want) > 6*math.Sqrt(want) {
		t.Fatalf("ziggurat tail mass %v draws; want ~%.0f", got, want)
	}
}

// --- Percentile fast paths ---

func TestPercentileSortedMatchesPercentile(t *testing.T) {
	r := NewRNG(3)
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	sorted := append([]float64(nil), xs...)
	sortFloat64s(sorted)
	for _, p := range []float64{-5, 0, 1, 10, 33.3, 50, 90, 99, 100, 120} {
		if got, want := PercentileSorted(sorted, p), Percentile(xs, p); got != want {
			t.Errorf("PercentileSorted(%v) = %v; Percentile = %v", p, got, want)
		}
	}
	if got := PercentileSorted(nil, 50); got != 0 {
		t.Errorf("PercentileSorted(nil) = %v; want 0", got)
	}
}

func TestPercentilesInto(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5}
	ps := []float64{0, 25, 50, 75, 100}
	out := make([]float64, len(ps))
	PercentilesInto(xs, ps, out)
	for i, p := range ps {
		if want := Percentile(xs, p); out[i] != want {
			t.Errorf("PercentilesInto[%v] = %v; want %v", p, out[i], want)
		}
	}
	PercentilesInto(nil, ps, out)
	for i := range out {
		if out[i] != 0 {
			t.Errorf("PercentilesInto(nil)[%d] = %v; want 0", i, out[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short output did not panic")
		}
	}()
	PercentilesInto(xs, ps, out[:2])
}

// sortFloat64s avoids importing sort in the test twice over.
func sortFloat64s(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// --- goodness-of-fit helpers ---

func TestKSTwoSample(t *testing.T) {
	if d := KSTwoSample([]float64{1, 2, 3}, []float64{1, 2, 3}); d != 0 {
		t.Errorf("KS of identical samples = %v; want 0", d)
	}
	if d := KSTwoSample([]float64{0, 1}, []float64{10, 11}); d != 1 {
		t.Errorf("KS of disjoint samples = %v; want 1", d)
	}
	if d := KSTwoSample(nil, []float64{1}); d != 1 {
		t.Errorf("KS with empty sample = %v; want 1", d)
	}
	// D = |F_a − F_b| peaks at 0.5 between interleaved halves.
	if d := KSTwoSample([]float64{1, 2, 3, 4}, []float64{3, 4, 5, 6}); d != 0.5 {
		t.Errorf("KS of shifted samples = %v; want 0.5", d)
	}
}

func TestChiSquare(t *testing.T) {
	if x := ChiSquare([]float64{10, 10}, []float64{10, 10}); x != 0 {
		t.Errorf("chi-square of exact fit = %v; want 0", x)
	}
	if x := ChiSquare([]float64{12, 8}, []float64{10, 10}); math.Abs(x-0.8) > 1e-12 {
		t.Errorf("chi-square = %v; want 0.8", x)
	}
	// Non-positive expectations are skipped.
	if x := ChiSquare([]float64{5, 12}, []float64{0, 10}); math.Abs(x-0.4) > 1e-12 {
		t.Errorf("chi-square with zero-exp bin = %v; want 0.4", x)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	ChiSquare([]float64{1}, []float64{1, 2})
}

// --- benchmarks: the regime cost claims ---

func BenchmarkNormBoxMuller(b *testing.B) {
	r := NewRNG(1)
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += r.Norm()
	}
	_ = s
}

func BenchmarkNormZiggurat(b *testing.B) {
	r := NewRNGSampler(1, SamplerV2)
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += r.Norm()
	}
	_ = s
}

func BenchmarkIntnModulo(b *testing.B) {
	r := NewRNG(1)
	s := 0
	for i := 0; i < b.N; i++ {
		s += r.Intn(65536)
	}
	_ = s
}

func BenchmarkIntnLemire(b *testing.B) {
	r := NewRNGSampler(1, SamplerV2)
	s := 0
	for i := 0; i < b.N; i++ {
		s += r.Intn(65536)
	}
	_ = s
}

func BenchmarkBinomialLowRate(b *testing.B) {
	r := NewRNGSampler(1, SamplerV2)
	s := 0
	for i := 0; i < b.N; i++ {
		s += r.Binomial(65536, 0.001)
	}
	_ = s
}

// BenchmarkUint64 isolates the raw bit-source cost the regimes pay under
// every deviate: one splitmix64 round per word (v1/v2) vs one ten-round
// Philox4x32 block per two words (v3).
func BenchmarkUint64(b *testing.B) {
	for _, v := range []SamplerVersion{SamplerV1, SamplerV3} {
		b.Run("sampler="+v.String(), func(b *testing.B) {
			r := NewRNGSampler(1, v)
			var s uint64
			for i := 0; i < b.N; i++ {
				s += r.Uint64()
			}
			_ = s
		})
	}
}

// BenchmarkNormPhilox measures the v3 Gaussian hot path: Ziggurat deviates
// fed by the counter-based bit source (compare BenchmarkNormZiggurat for
// the same algorithm on splitmix64 bits).
func BenchmarkNormPhilox(b *testing.B) {
	r := NewTrialRNG(1, 0)
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += r.Norm()
	}
	_ = s
}

// BenchmarkSubstream measures keying one (lane, index) substream off a
// trial generator — the per-slot setup cost the v3 fault/variation passes
// pay instead of sharing one serial stream.
func BenchmarkSubstream(b *testing.B) {
	r := NewTrialRNG(1, 0)
	b.ReportAllocs()
	var s uint64
	for i := 0; i < b.N; i++ {
		s += r.Substream(1, uint32(i%1024)).Uint64()
	}
	_ = s
}
