package stats

import (
	"math"
	"sort"
)

// Goodness-of-fit statistics. The sampler-v2 regime changes the exact
// deviate streams, so its defense is statistical: the fault-count and
// noise distributions under v2 must be indistinguishable from v1 at the
// test sizes the suite uses. These helpers implement the two classical
// tests the regime-equivalence tests apply.

// KSTwoSample returns the two-sample Kolmogorov–Smirnov statistic
// D = sup |F_a(x) − F_b(x)| over the empirical CDFs of a and b. Both
// inputs are copied and sorted; either being empty returns 1 (maximal
// disagreement) so a degenerate comparison can never pass a threshold.
func KSTwoSample(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	na, nb := float64(len(as)), float64(len(bs))
	var i, j int
	d := 0.0
	for i < len(as) && j < len(bs) {
		// Advance past ties together so the CDFs are compared between
		// jump points, not mid-jump.
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// KSThreshold returns the large-sample two-sample rejection threshold for
// the KS statistic at significance alpha: c(α)·sqrt((n+m)/(n·m)) with
// c(α) = sqrt(−ln(α/2)/2). A statistic below the threshold is consistent
// with both samples sharing one distribution at that significance.
func KSThreshold(alpha float64, n, m int) float64 {
	if n <= 0 || m <= 0 || alpha <= 0 || alpha >= 1 {
		return 0
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/float64(n*m))
}

// ChiSquare returns Pearson's statistic Σ (obs−exp)²/exp over paired
// observed/expected bin counts. Bins with non-positive expectation are
// skipped (callers should pool sparse bins first). It panics when the
// slices disagree in length.
func ChiSquare(obs, exp []float64) float64 {
	if len(obs) != len(exp) {
		panic("stats: ChiSquare length mismatch")
	}
	s := 0.0
	for i, e := range exp {
		if e <= 0 {
			continue
		}
		d := obs[i] - e
		s += d * d / e
	}
	return s
}
