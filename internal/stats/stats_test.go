package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d distinct values in 10k draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(123)
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm()
	}
	if m := Mean(xs); math.Abs(m) > 0.01 {
		t.Errorf("Norm mean = %v, want ≈0", m)
	}
	if s := StdDev(xs); math.Abs(s-1) > 0.01 {
		t.Errorf("Norm stddev = %v, want ≈1", s)
	}
}

func TestGauss(t *testing.T) {
	r := NewRNG(5)
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Gauss(10, 2)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.05 {
		t.Errorf("Gauss mean = %v, want ≈10", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.05 {
		t.Errorf("Gauss stddev = %v, want ≈2", s)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean(1,100) = %v, want 10", got)
	}
	if GeoMean(nil) != 0 {
		t.Errorf("GeoMean(nil) != 0")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("GeoMean with zero entry did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -1, 2}
	bins := Histogram(xs, 0, 1, 2)
	if bins[0] != 3 || bins[1] != 3 {
		t.Errorf("Histogram = %v, want [3 3] (out-of-range clamps)", bins)
	}
}

func TestRMSAndMaxAbs(t *testing.T) {
	xs := []float64{3, -4}
	if got := RMS(xs); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %v", got)
	}
	if got := MaxAbs(xs); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(9)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, x := range xs {
		seen[x] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("Shuffle lost element %d", i)
		}
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	// Property: min ≤ geomean ≤ max for any positive inputs.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = float64(v)/100 + 0.01
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
