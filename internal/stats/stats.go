// Package stats provides the deterministic random-number generation and
// small statistics helpers used across the simulator: splitmix64 and
// Philox4x32-10 PRNGs, Gaussian sampling for circuit-noise injection,
// geometric means for the paper's summary rows, Monte-Carlo utilities, and
// the goodness-of-fit statistics (Kolmogorov–Smirnov, Pearson chi-square)
// that defend the sampling regimes' statistical equivalence.
//
// Everything is deterministic given a seed so experiments and tests are
// exactly reproducible. Deviate algorithms are versioned: see
// SamplerVersion for the v1 (legacy, byte-stable), v2 (sublinear binomial
// fault draws, Ziggurat Gaussians, Lemire bounded Intn) and v3
// (counter-based Philox substreams keyed by (seed, trial, slot), the
// trial-parallel default) regimes.
package stats

import (
	"math"
	"sort"
)

// RNG is a deterministic pseudo-random generator. The zero value is a valid
// generator seeded with 0; prefer NewRNG for explicit seeding.
//
// An RNG samples under one of three regimes (see SamplerVersion): the zero
// value and NewRNG keep the legacy v1 regime, so every pre-existing deviate
// stream stays byte-stable; NewRNGSampler and SetSampler opt into the
// sublinear v2 regime (Ziggurat Gaussians, Lemire Intn, and the
// Binomial/SampleK fault-draw machinery) or the counter-based v3 regime
// (the v2 deviate algorithms over a Philox4x32-10 bit source with keyed
// substreams; see philox.go, NewTrialRNG and Substream).
type RNG struct {
	// state is the splitmix64 state (v1/v2 bit source).
	state uint64
	// key/ctr are the Philox key and 128-bit counter (v3 bit source); buf
	// holds the not-yet-served uint64s of the current block (bufn of them).
	key  [2]uint32
	ctr  [4]uint32
	buf  [2]uint64
	bufn uint8
	// cached spare Gaussian deviate (Box-Muller generates pairs; v1 only)
	spare    float64
	hasSpare bool
	// sampler selects the bit source and deviate algorithms; the zero value
	// samples v1.
	sampler SamplerVersion
}

// NewRNG returns a generator seeded with seed, sampling under the legacy
// v1 regime (see NewRNGSampler for regime selection).
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Clone returns an independent generator that will produce exactly the same
// deviate sequence as the receiver from this point on. The functional
// simulator snapshots generators to replay deferred per-crossbar fault
// injection deterministically.
func (r *RNG) Clone() *RNG {
	cp := *r
	return &cp
}

// Uint64 returns the next 64 pseudo-random bits: the splitmix64 stream
// under v1/v2, the Philox4x32-10 counter stream under v3.
func (r *RNG) Uint64() uint64 {
	if r.sampler == SamplerV3 {
		return r.philoxNext()
	}
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform deviate in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0. Under the
// v1 regime it keeps the historical modulo reduction (slightly biased for
// n not dividing 2^64, preserved for stream stability); under v2/v3 it
// uses Lemire's bounded rejection, which is exactly uniform.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	if r.sampler >= SamplerV2 {
		return int(r.intnLemire(uint64(n)))
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard-normal deviate: Box-Muller under the v1 regime,
// the Ziggurat method under v2/v3 (~4x fewer cycles per deviate in the
// noise hot path; see the distribution-equivalence tests).
func (r *RNG) Norm() float64 {
	if r.sampler >= SamplerV2 {
		return r.normZiggurat()
	}
	return r.normBoxMuller()
}

// normBoxMuller is the legacy polar Box-Muller sampler (generates pairs,
// caching the spare).
func (r *RNG) normBoxMuller() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Gauss returns a normal deviate with the given mean and standard deviation.
func (r *RNG) Gauss(mean, sigma float64) float64 {
	return mean + sigma*r.Norm()
}

// Shuffle permutes the first n indices, calling swap for each exchange.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// GeoMean returns the geometric mean of xs. All entries must be positive;
// it returns 0 for an empty slice and panics on non-positive entries, since
// the paper's normalized-ratio summaries are only defined on positives.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies and sorts its input; use
// PercentileSorted on already-sorted data or PercentilesInto when several
// percentiles come from one sample, both of which skip the per-call copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return PercentileSorted(cp, p)
}

// PercentileSorted is the sorted-input fast path of Percentile: xs must be
// ascending; the call neither copies nor sorts.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PercentilesInto computes several percentiles of one sample with a single
// copy-and-sort, writing out[i] = Percentile(xs, ps[i]). It panics when
// len(out) < len(ps). The sweeps use it to summarise a Monte-Carlo sample
// (e.g. p10/p50/p90) without re-sorting per percentile.
func PercentilesInto(xs []float64, ps []float64, out []float64) {
	if len(out) < len(ps) {
		panic("stats: PercentilesInto output shorter than percentile list")
	}
	if len(xs) == 0 {
		for i := range ps {
			out[i] = 0
		}
		return
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	for i, p := range ps {
		out[i] = PercentileSorted(cp, p)
	}
}

// MaxAbs returns the maximum absolute value in xs (0 for empty input).
func MaxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// RMS returns the root-mean-square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Histogram counts xs into nbins equal-width bins over [lo, hi]. Values
// outside the range clamp to the first/last bin.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 {
		return nil
	}
	bins := make([]int, nbins)
	if hi <= lo {
		return bins
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		bins[i]++
	}
	return bins
}
