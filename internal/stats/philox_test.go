package stats

import (
	"math"
	"testing"
)

// TestPhiloxKnownAnswer pins philoxBlock against the published Philox4x32-10
// known-answer vectors of the Random123 reference implementation
// (kat_vectors: counter words, key words, expected output words). A
// counter-based regime is only trustworthy across machines and languages if
// the block function is the reference bijection bit for bit.
func TestPhiloxKnownAnswer(t *testing.T) {
	cases := []struct {
		ctr  [4]uint32
		key  [2]uint32
		want [4]uint32
	}{
		{
			ctr:  [4]uint32{0, 0, 0, 0},
			key:  [2]uint32{0, 0},
			want: [4]uint32{0x6627e8d5, 0xe169c58d, 0xbc57ac4c, 0x9b00dbd8},
		},
		{
			ctr:  [4]uint32{0xffffffff, 0xffffffff, 0xffffffff, 0xffffffff},
			key:  [2]uint32{0xffffffff, 0xffffffff},
			want: [4]uint32{0x408f276d, 0x41c83b0e, 0xa20bc7c6, 0x6d5451fd},
		},
		{
			// The pi-digits vector: counter and key from the hex expansion of pi.
			ctr:  [4]uint32{0x243f6a88, 0x85a308d3, 0x13198a2e, 0x03707344},
			key:  [2]uint32{0xa4093822, 0x299f31d0},
			want: [4]uint32{0xd16cfe09, 0x94fdcceb, 0x5001e420, 0x24126ea1},
		},
	}
	for _, c := range cases {
		if got := philoxBlock(c.ctr, c.key); got != c.want {
			t.Errorf("philoxBlock(%08x, %08x) = %08x, want %08x", c.ctr, c.key, got, c.want)
		}
	}
}

// TestPhiloxStreamMatchesBlocks: the v3 Uint64 stream serves each 128-bit
// block as two uint64s (words 0|1 then 2|3) with the block counter
// advancing by one per block — so any draw position is computable from its
// coordinates alone, which is the property the trial fan-out rests on.
func TestPhiloxStreamMatchesBlocks(t *testing.T) {
	const seed = 0xdeadbeefcafef00d
	const trial = 7
	r := NewTrialRNG(seed, trial)
	key := [2]uint32{uint32(seed & 0xffffffff), uint32(seed >> 32)}
	for block := uint32(0); block < 64; block++ {
		o := philoxBlock([4]uint32{block, 0, 0, trial}, key)
		want0 := uint64(o[0]) | uint64(o[1])<<32
		want1 := uint64(o[2]) | uint64(o[3])<<32
		if got := r.Uint64(); got != want0 {
			t.Fatalf("block %d draw 0: got %016x, want %016x", block, got, want0)
		}
		if got := r.Uint64(); got != want1 {
			t.Fatalf("block %d draw 1: got %016x, want %016x", block, got, want1)
		}
	}
}

// TestPhiloxBlockCounterCarry: the 64-bit block counter carries from word 0
// into word 1 (2^32 blocks in, the stream must not wrap onto itself).
func TestPhiloxBlockCounterCarry(t *testing.T) {
	r := NewTrialRNG(42, 0)
	r.ctr[0] = 0xffffffff // jump to the last block before the carry
	first := r.Uint64()
	r.Uint64() // second half of the block
	if r.ctr[0] != 0 || r.ctr[1] != 1 {
		t.Fatalf("counter after carry = %v, want word0=0 word1=1", r.ctr)
	}
	// The post-carry block must equal the directly-keyed block (0, 1).
	o := philoxBlock([4]uint32{0, 1, 0, 0}, [2]uint32{42, 0})
	if got := r.Uint64(); got != uint64(o[0])|uint64(o[1])<<32 {
		t.Fatalf("post-carry draw mismatch")
	}
	if first == 0 {
		t.Log("pre-carry draw was zero (fine, just exercising the path)")
	}
}

// TestTrialSubstreamsDisjoint is the leapfrog test: the (seed, trial, slot)
// coordinates of adjacent trials enumerate disjoint counter sets, so their
// streams can never overlap — not probably-never like additively-derived
// splitmix seeds, but structurally never. Since Philox is a bijection per
// key, distinct counters map to distinct blocks; the test drives the real
// generators and asserts zero shared 64-bit outputs over a window large
// enough that any aliasing of the counter layout would collide.
func TestTrialSubstreamsDisjoint(t *testing.T) {
	const seed = 2020
	const draws = 1 << 14
	seen := make(map[uint64]int, 4*draws)
	for trial := uint32(0); trial < 4; trial++ {
		r := NewTrialRNG(seed, trial)
		for i := 0; i < draws; i++ {
			u := r.Uint64()
			if prev, dup := seen[u]; dup {
				t.Fatalf("trial %d repeats a 64-bit output of trial %d", trial, prev)
			}
			seen[u] = int(trial)
		}
	}
	// Slot substreams of one trial are likewise disjoint from the trial's
	// main stream and from each other.
	main := NewTrialRNG(seed, 1)
	for slot := uint32(0); slot < 4; slot++ {
		r := main.Substream(1, slot)
		for i := 0; i < draws; i++ {
			u := r.Uint64()
			if prev, dup := seen[u]; dup {
				t.Fatalf("slot %d substream repeats an output of stream %d", slot, prev)
			}
			seen[u] = int(100 + slot)
		}
	}
}

// TestSubstreamKeying: Substream is pure (no receiver advance), depends
// only on (seed, trial, lane, index), and validates its arguments.
func TestSubstreamKeying(t *testing.T) {
	r := NewTrialRNG(99, 3)
	before := *r
	a1 := r.Substream(2, 17).Uint64()
	if *r != before {
		t.Fatal("Substream advanced the receiver")
	}
	// Same coordinates -> same stream, even after the receiver advanced.
	r.Uint64()
	if a2 := r.Substream(2, 17).Uint64(); a2 != a1 {
		t.Fatalf("substream draw changed with receiver position: %x vs %x", a1, a2)
	}
	// Different lane or index -> different stream.
	if b := r.Substream(2, 18).Uint64(); b == a1 {
		t.Fatal("adjacent substream indexes collide on first draw")
	}
	if b := r.Substream(3, 17).Uint64(); b == a1 {
		t.Fatal("adjacent substream lanes collide on first draw")
	}
	// NewTrialRNG(seed, trial) and NewRNGSampler(seed, v3) agree at trial 0.
	x := NewRNGSampler(123, SamplerV3)
	y := NewTrialRNG(123, 0)
	for i := 0; i < 8; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatal("NewRNGSampler(seed, v3) is not NewTrialRNG(seed, 0)")
		}
	}
	for _, bad := range [][2]uint32{{0, 0}, {1 << 8, 0}, {1, 1 << 24}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Substream(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			r.Substream(bad[0], bad[1])
		}()
	}
	// Substreams need counter coordinates: v1/v2 generators must refuse.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Substream on a v2 generator did not panic")
			}
		}()
		NewRNGSampler(1, SamplerV2).Substream(1, 0)
	}()
}

// TestPhiloxSubstreamUniform: chi-square uniformity of each substream's
// Float64 draws over 64 equal bins, and a KS check between two adjacent
// trial substreams — independence in distribution, not just disjointness
// of outputs.
func TestPhiloxSubstreamUniform(t *testing.T) {
	const n = 1 << 15
	const bins = 64
	// 99.9% chi-square critical value for 63 degrees of freedom.
	const crit999 = 103.44
	exp := make([]float64, bins)
	for i := range exp {
		exp[i] = float64(n) / bins
	}
	samples := make([][]float64, 3)
	for trial := uint32(0); trial < 3; trial++ {
		r := NewTrialRNG(77, trial)
		obs := make([]float64, bins)
		xs := make([]float64, n)
		for i := 0; i < n; i++ {
			u := r.Float64()
			xs[i] = u
			obs[int(u*bins)]++
		}
		samples[trial] = xs
		if x2 := ChiSquare(obs, exp); x2 > crit999 {
			t.Errorf("trial %d substream uniformity chi-square = %.1f > %.1f", trial, x2, crit999)
		}
	}
	// Adjacent-trial KS: both draw from U(0,1); the two-sample statistic
	// must sit below the 99.9% threshold.
	d := KSTwoSample(samples[0], samples[1])
	if thresh := KSThreshold(0.001, n, n); d > thresh {
		t.Errorf("adjacent trial substreams KS = %.4f > %.4f", d, thresh)
	}
	// Cross-trial correlation: the lag-0 sample correlation between two
	// substreams' draw sequences must be statistically zero (|rho| below
	// ~4/sqrt(n)).
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		x, y := samples[0][i], samples[1][i]
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	fn := float64(n)
	cov := sxy/fn - sx/fn*sy/fn
	vx := sxx/fn - sx/fn*sx/fn
	vy := syy/fn - sy/fn*sy/fn
	rho := cov / math.Sqrt(vx*vy)
	if limit := 4 / math.Sqrt(fn); math.Abs(rho) > limit {
		t.Errorf("cross-trial correlation rho = %.4f, |rho| > %.4f", rho, limit)
	}
}

// TestV3DeviateAlgorithmsAreV2: the v3 regime changes the bit source and
// keying, not the derived-deviate algorithms — Intn must be Lemire
// (exactly uniform) and Norm the Ziggurat, reported through Sampler().
func TestV3DeviateAlgorithmsAreV2(t *testing.T) {
	r := NewTrialRNG(5, 0)
	if r.Sampler() != SamplerV3 {
		t.Fatalf("Sampler() = %v, want v3", r.Sampler())
	}
	// Clone must replay the identical stream, mid-block buffer included.
	r.Uint64() // leave one buffered uint64
	cl := r.Clone()
	for i := 0; i < 17; i++ {
		if r.Uint64() != cl.Uint64() {
			t.Fatal("v3 clone diverged")
		}
	}
	if r.Intn(10) != cl.Intn(10) || r.Norm() != cl.Norm() || r.Binomial(1000, 0.01) != cl.Binomial(1000, 0.01) {
		t.Fatal("v3 clone diverged on derived deviates")
	}
	// SetSampler round-trip re-keys deterministically.
	s := NewRNGSampler(42, SamplerV2)
	s.SetSampler(SamplerV3)
	if s.Sampler() != SamplerV3 {
		t.Fatal("SetSampler(v3) did not switch")
	}
	if got, want := s.Uint64(), NewTrialRNG(42, 0).Uint64(); got != want {
		t.Fatalf("SetSampler(v3) stream = %x, want re-keyed trial stream %x", got, want)
	}
	s.SetSampler(SamplerV2)
	if got, want := s.Uint64(), NewRNGSampler(42, SamplerV2).Uint64(); got != want {
		t.Fatal("SetSampler back to v2 did not restore the splitmix seed")
	}
}
