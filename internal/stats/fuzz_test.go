package stats

import "testing"

// FuzzSamplerVersion hammers the regime parser with arbitrary spellings:
// it must never panic, reject everything that is not a known regime (or
// the empty default) with an error, and every accepted spelling must
// resolve to a concrete regime whose String round-trips and whose
// generator constructor works.
func FuzzSamplerVersion(f *testing.F) {
	for _, s := range []string{"", "v1", "v2", "v3", "v4", "V1", "legacy", "2", "v", "v3 ", "default"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseSamplerVersion(s)
		if err != nil {
			return // rejected spellings carry an error; nothing more to check
		}
		r := v.Resolve()
		if r != SamplerV1 && r != SamplerV2 && r != SamplerV3 {
			t.Fatalf("ParseSamplerVersion(%q) resolved to unknown regime %d", s, r)
		}
		if s != "" {
			back, err := ParseSamplerVersion(v.String())
			if err != nil || back != v {
				t.Fatalf("regime %v does not round-trip through String: %v, %v", v, back, err)
			}
		}
		// Any accepted regime must construct a working generator.
		if NewRNGSampler(1, v).Uint64() == NewRNGSampler(2, v).Uint64() {
			t.Logf("seeds 1 and 2 collide on the first draw under %v (possible but unlikely)", r)
		}
	})
}
