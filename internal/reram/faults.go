package reram

import (
	"fmt"

	"repro/internal/stats"
)

// Stuck-at fault injection. ReRAM arrays suffer hard faults — cells stuck
// at low conductance (SA0, cannot be programmed up) or high conductance
// (SA1, cannot be programmed down). §V leans on CNN/DNN algorithm
// resilience against such hardware vulnerability (citing the defect-rescue
// literature [9],[48]); the fault model here drives the defect ablation in
// package experiments.

// FaultKind enumerates hard-fault types.
type FaultKind int

const (
	// FaultSA0 pins a cell at level 0.
	FaultSA0 FaultKind = iota
	// FaultSA1 pins a cell at the maximum level.
	FaultSA1
)

// String returns the fault kind's name.
func (k FaultKind) String() string {
	switch k {
	case FaultSA0:
		return "SA0"
	case FaultSA1:
		return "SA1"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// FaultMap records the injected faults of one crossbar.
type FaultMap struct {
	// SA0 and SA1 count the injected faults by kind.
	SA0, SA1 int
}

// Total returns the fault count.
func (f FaultMap) Total() int { return f.SA0 + f.SA1 }

// InjectStuckFaults pins a random fraction `rate` of the cells: half stuck
// at level 0, half at the maximum level (the usual 50/50 SAF split in the
// defect literature). Faulted cells override whatever was programmed and
// ignore later Program calls. It returns the injected fault map.
func (x *Crossbar) InjectStuckFaults(rate float64, rng *stats.RNG) (FaultMap, error) {
	if rate < 0 || rate > 1 {
		return FaultMap{}, fmt.Errorf("reram: fault rate %v outside [0,1]", rate)
	}
	if x.faults == nil {
		x.faults = make([]int8, len(x.levels))
	}
	var fm FaultMap
	for i := range x.levels {
		if rng.Float64() >= rate {
			continue
		}
		if rng.Float64() < 0.5 {
			x.faults[i] = faultSA0
			x.levels[i] = 0
			fm.SA0++
		} else {
			x.faults[i] = faultSA1
			x.levels[i] = x.MaxLevel()
			fm.SA1++
		}
	}
	return fm, nil
}

// ClearFaults removes all injected faults (programmed levels of previously
// faulted cells remain at their pinned values until reprogrammed).
func (x *Crossbar) ClearFaults() { x.faults = nil }

// IsFaulty reports whether the cell carries a stuck-at fault.
func (x *Crossbar) IsFaulty(row, col int) bool {
	if x.faults == nil {
		return false
	}
	return x.faults[row*x.B+col] != faultNone
}

const (
	faultNone int8 = iota
	faultSA0
	faultSA1
)
