package reram

import (
	"fmt"

	"repro/internal/stats"
)

// Stuck-at fault injection. ReRAM arrays suffer hard faults — cells stuck
// at low conductance (SA0, cannot be programmed up) or high conductance
// (SA1, cannot be programmed down). §V leans on CNN/DNN algorithm
// resilience against such hardware vulnerability (citing the defect-rescue
// literature [9],[48]); the fault model here drives the defect ablation in
// package experiments.

// FaultKind enumerates hard-fault types.
type FaultKind int

const (
	// FaultSA0 pins a cell at level 0.
	FaultSA0 FaultKind = iota
	// FaultSA1 pins a cell at the maximum level.
	FaultSA1
)

// String returns the fault kind's name.
func (k FaultKind) String() string {
	switch k {
	case FaultSA0:
		return "SA0"
	case FaultSA1:
		return "SA1"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// FaultMap records the injected faults of one crossbar.
type FaultMap struct {
	// SA0 and SA1 count the injected faults by kind.
	SA0, SA1 int
}

// Total returns the fault count.
func (f FaultMap) Total() int { return f.SA0 + f.SA1 }

// InjectStuckFaults pins a random fraction `rate` of the cells: half stuck
// at level 0, half at the maximum level (the usual 50/50 SAF split in the
// defect literature). Faulted cells override whatever was programmed and
// ignore later Program calls. It returns the injected fault map.
//
// The draw algorithm follows the generator's sampling regime. Under the
// legacy v1 regime the sequence is exactly one uniform deviate per cell
// plus one more per faulted cell — O(cells) per injection. Under the
// v2/v3 regimes the realised fault count comes from one exact
// Binomial(cells, rate) draw and the positions from Floyd's sampling
// without replacement — O(faults) per injection, the sublinear hot path of
// the defect sweep. (v3 additionally keys the generator itself per
// (seed, trial, grid slot) — see package core — so which crossbar a
// generator belongs to is part of its identity, not its position in a
// serial stream.) Either way CountStuckFaults consumes the identical
// sequence, which lets callers defer the array mutation and replay it
// later from a cloned generator.
func (x *Crossbar) InjectStuckFaults(rate float64, rng *stats.RNG) (FaultMap, error) {
	if rate < 0 || rate > 1 {
		return FaultMap{}, fmt.Errorf("reram: fault rate %v outside [0,1]", rate)
	}
	x.invalidate()
	if rng.Sampler() != stats.SamplerV1 {
		return x.injectStuckFaultsV2(rate, rng), nil
	}
	var fm FaultMap
	// The fault slice is only allocated once the first fault lands, so
	// low-rate draws on large arrays stay allocation-free. The generator
	// works on a stack copy (state stays in registers) and the uniform
	// comparisons run in the pre-division domain — float64(u>>11)/2^53 ⋛ p
	// iff float64(u>>11) ⋛ p·2^53, both sides exact — so the loop consumes
	// the identical deviate sequence without a float division per cell.
	local := *rng
	thresh := rate * float64(1<<53)
	for i := range x.levels {
		u := local.Uint64()
		if float64(u>>11) >= thresh {
			continue
		}
		if x.faults == nil {
			x.faults = make([]int8, len(x.levels))
		}
		// Float64() < 0.5 ⇔ the top bit of the raw draw is clear.
		if local.Uint64() < 1<<63 {
			x.faults[i] = faultSA0
			x.levels[i] = 0
			fm.SA0++
		} else {
			x.faults[i] = faultSA1
			x.levels[i] = x.MaxLevel()
			fm.SA1++
		}
	}
	*rng = local
	return fm, nil
}

// injectStuckFaultsV2 is the sampler-v2 injection: one exact binomial
// count draw, then Floyd's sampling for the distinct fault positions, with
// one polarity deviate per fault interleaved after its position draw. The
// consumed sequence is one Binomial draw plus, per fault, one bounded
// position draw (an Intn call; its raw Uint64 consumption can vary on
// Lemire rejection) and one polarity draw — deterministic per generator
// state and identical to the CountStuckFaults v2 path, so deferred
// injections replay exactly from a clone.
func (x *Crossbar) injectStuckFaultsV2(rate float64, rng *stats.RNG) FaultMap {
	var fm FaultMap
	k := rng.Binomial(len(x.levels), rate)
	if k == 0 {
		return fm
	}
	if x.faults == nil {
		x.faults = make([]int8, len(x.levels))
	}
	maxLevel := x.MaxLevel()
	rng.SampleK(len(x.levels), k, func(pos int) {
		// Polarity draw per fault: top bit clear ⇔ Float64() < 0.5, the
		// same 50/50 split rule as the v1 stream.
		if rng.Uint64() < 1<<63 {
			x.faults[pos] = faultSA0
			x.levels[pos] = 0
			fm.SA0++
		} else {
			x.faults[pos] = faultSA1
			x.levels[pos] = maxLevel
			fm.SA1++
		}
	})
	return fm
}

// CountStuckFaults draws the same random sequence InjectStuckFaults would
// consume over n cells and returns the fault map it would realise, without
// touching any array. Package core uses it to account faults on crossbars
// that are never computed on, deferring the physical injection until a
// crossbar is materialised (replayed from a generator clone snapshotted
// before this call). Like the injection itself, the draw algorithm — and
// therefore the cost, O(cells) under v1 vs O(faults) under v2 — follows
// the generator's sampling regime (v2 and v3 share the sublinear path).
func CountStuckFaults(n int, rate float64, rng *stats.RNG) (FaultMap, error) {
	if rate < 0 || rate > 1 {
		return FaultMap{}, fmt.Errorf("reram: fault rate %v outside [0,1]", rate)
	}
	var fm FaultMap
	if rng.Sampler() != stats.SamplerV1 {
		// Identical consumption to injectStuckFaultsV2: the binomial count,
		// k position draws (Floyd's consumes exactly one bounded deviate
		// per selection regardless of collisions), and k polarity draws in
		// the same interleaved order. Only the array mutation is skipped.
		k := rng.Binomial(n, rate)
		rng.SampleK(n, k, func(int) {
			if rng.Uint64() < 1<<63 {
				fm.SA0++
			} else {
				fm.SA1++
			}
		})
		return fm, nil
	}
	// Same register-resident, division-free draw loop as InjectStuckFaults
	// (see the equivalence argument there); this is the hottest loop of the
	// defect sweep, which walks millions of cells per trial. At low rates
	// most 4-cell blocks contain no fault, so the loop speculates a clear
	// block of four independent draws (the mixes pipeline) and replays the
	// block from a generator snapshot on a hit — the consumed sequence is
	// identical either way. High rates hit most blocks, where speculation
	// only adds replays, so they take the scalar loop directly.
	local := *rng
	thresh := rate * float64(1<<53)
	i := 0
	if rate <= 0.05 {
		for n-i >= 4 {
			snap := local
			u0 := local.Uint64()
			u1 := local.Uint64()
			u2 := local.Uint64()
			u3 := local.Uint64()
			if float64(u0>>11) >= thresh && float64(u1>>11) >= thresh &&
				float64(u2>>11) >= thresh && float64(u3>>11) >= thresh {
				i += 4
				continue
			}
			local = snap
			for k := 0; k < 4; k++ {
				if u := local.Uint64(); float64(u>>11) >= thresh {
					continue
				}
				if local.Uint64() < 1<<63 {
					fm.SA0++
				} else {
					fm.SA1++
				}
			}
			i += 4
		}
	}
	for ; i < n; i++ {
		u := local.Uint64()
		if float64(u>>11) >= thresh {
			continue
		}
		if local.Uint64() < 1<<63 {
			fm.SA0++
		} else {
			fm.SA1++
		}
	}
	*rng = local
	return fm, nil
}

// ClearFaults removes all injected faults (programmed levels of previously
// faulted cells remain at their pinned values until reprogrammed).
func (x *Crossbar) ClearFaults() {
	x.faults = nil
	x.invalidate()
}

// IsFaulty reports whether the cell carries a stuck-at fault.
func (x *Crossbar) IsFaulty(row, col int) bool {
	if x.faults == nil {
		return false
	}
	return x.faults[row*x.B+col] != faultNone
}

const (
	faultNone int8 = iota
	faultSA0
	faultSA1
)
