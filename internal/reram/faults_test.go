package reram

import (
	"math"
	"testing"

	"repro/internal/params"
	"repro/internal/stats"
)

func TestInjectStuckFaultsRate(t *testing.T) {
	x := New(128, 4)
	fm, err := x.InjectStuckFaults(0.1, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	total := 128 * 128
	got := float64(fm.Total()) / float64(total)
	if math.Abs(got-0.1) > 0.01 {
		t.Errorf("fault rate = %.3f, want ≈0.1", got)
	}
	// Roughly balanced SA0/SA1.
	if fm.SA0 == 0 || fm.SA1 == 0 {
		t.Errorf("one-sided fault split: %+v", fm)
	}
	ratio := float64(fm.SA0) / float64(fm.SA1)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("SA0/SA1 ratio = %.2f, want ≈1", ratio)
	}
}

func TestFaultRateValidation(t *testing.T) {
	x := New(8, 4)
	if _, err := x.InjectStuckFaults(-0.1, stats.NewRNG(1)); err == nil {
		t.Errorf("negative rate accepted")
	}
	if _, err := x.InjectStuckFaults(1.1, stats.NewRNG(1)); err == nil {
		t.Errorf("rate > 1 accepted")
	}
}

func TestStuckCellsIgnoreProgramming(t *testing.T) {
	x := New(16, 4)
	if _, err := x.InjectStuckFaults(1.0, stats.NewRNG(7)); err != nil {
		t.Fatal(err)
	}
	// Every cell is pinned at 0 or 15; programming must not move them.
	before := make([]uint8, 0, 16*16)
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			before = append(before, x.Level(r, c))
			if err := x.Program(r, c, 7); err != nil {
				t.Fatal(err)
			}
		}
	}
	i := 0
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			if got := x.Level(r, c); got != before[i] {
				t.Fatalf("stuck cell (%d,%d) moved %d -> %d", r, c, before[i], got)
			}
			if !x.IsFaulty(r, c) {
				t.Fatalf("cell (%d,%d) not marked faulty", r, c)
			}
			i++
		}
	}
}

func TestSA0AndSA1Levels(t *testing.T) {
	x := New(64, 4)
	fm, err := x.InjectStuckFaults(0.5, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	var sa0, sa1 int
	for r := 0; r < 64; r++ {
		for c := 0; c < 64; c++ {
			if !x.IsFaulty(r, c) {
				continue
			}
			switch x.Level(r, c) {
			case 0:
				sa0++
			case x.MaxLevel():
				sa1++
			default:
				t.Fatalf("faulty cell (%d,%d) at level %d, want 0 or %d", r, c, x.Level(r, c), x.MaxLevel())
			}
		}
	}
	if sa0 != fm.SA0 || sa1 != fm.SA1 {
		t.Errorf("fault map %+v disagrees with cells (%d/%d)", fm, sa0, sa1)
	}
}

func TestClearFaults(t *testing.T) {
	x := New(8, 4)
	if _, err := x.InjectStuckFaults(1.0, stats.NewRNG(5)); err != nil {
		t.Fatal(err)
	}
	x.ClearFaults()
	if x.IsFaulty(0, 0) {
		t.Errorf("faults survive ClearFaults")
	}
	if err := x.Program(0, 0, 9); err != nil {
		t.Fatal(err)
	}
	if x.Level(0, 0) != 9 {
		t.Errorf("cell not programmable after ClearFaults")
	}
}

func TestFaultsPerturbDot(t *testing.T) {
	clean := New(64, 4)
	faulty := New(64, 4)
	codes := make([]int, 64)
	for i := range codes {
		codes[i] = 0x55
	}
	if _, err := clean.ProgramWeightColumns(0, codes, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.InjectStuckFaults(0.2, stats.NewRNG(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.ProgramWeightColumns(0, codes, 8); err != nil {
		t.Fatal(err)
	}
	times := make([]float64, 64)
	for i := range times {
		times[i] = 100 * params.TDel
	}
	c := clean.SubRangedDot(times, 0, 8, params.TDel)
	f := faulty.SubRangedDot(times, 0, 8, params.TDel)
	if c == f {
		t.Errorf("20%% stuck faults left the dot product unchanged (%v)", c)
	}
}
