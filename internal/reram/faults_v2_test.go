package reram

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// sweepRates are the defect ablation's stuck-at rates (the nonzero ones);
// the regime-equivalence tests below run at every point.
var sweepRates = []float64{0.001, 0.01, 0.05, 0.15, 0.30}

// TestInjectV2MatchesCount: under the v2 regime, CountStuckFaults must
// realise the same fault map and leave the generator in the same state as
// an actual injection from a clone — the deferred-injection contract.
func TestInjectV2MatchesCount(t *testing.T) {
	for _, rate := range append([]float64{0, 1}, sweepRates...) {
		live := stats.NewRNGSampler(17, stats.SamplerV2)
		snap := live.Clone()
		counted, err := CountStuckFaults(128*128, rate, live)
		if err != nil {
			t.Fatal(err)
		}
		x := New(128, 4)
		injected, err := x.InjectStuckFaults(rate, snap)
		if err != nil {
			t.Fatal(err)
		}
		if counted != injected {
			t.Fatalf("rate %v: counted %+v but injected %+v", rate, counted, injected)
		}
		if live.Uint64() != snap.Uint64() {
			t.Fatalf("rate %v: count and inject consumed different deviate streams", rate)
		}
		// The realised cells must agree with the map.
		var sa0, sa1 int
		for r := 0; r < 128; r++ {
			for c := 0; c < 128; c++ {
				if !x.IsFaulty(r, c) {
					continue
				}
				if x.Level(r, c) == 0 {
					sa0++
				} else {
					sa1++
				}
			}
		}
		if sa0 != injected.SA0 || sa1 != injected.SA1 {
			t.Fatalf("rate %v: fault map %+v disagrees with cells (%d/%d)", rate, injected, sa0, sa1)
		}
	}
}

// TestInjectV2RateZeroDrawsNothing: a rate-0 injection under v2 must
// consume no deviates at all (the O(faults) claim at its boundary),
// whereas v1 consumes one per cell.
func TestInjectV2RateZeroDrawsNothing(t *testing.T) {
	r := stats.NewRNGSampler(5, stats.SamplerV2)
	ref := r.Clone()
	x := New(64, 4)
	if _, err := x.InjectStuckFaults(0, r); err != nil {
		t.Fatal(err)
	}
	if r.Uint64() != ref.Uint64() {
		t.Fatal("v2 rate-0 injection consumed deviates")
	}
}

// TestInjectV1StreamUnchanged pins the legacy regime: the realised fault
// map of a v1 injection must be identical whether or not the v2 machinery
// exists, i.e. NewRNG generators keep taking the per-cell Bernoulli path.
func TestInjectV1StreamUnchanged(t *testing.T) {
	// Reference values captured from the pre-sampler-v2 implementation at
	// this exact (seed, size, rate); a change here means the v1 stream
	// broke and every legacy golden with it.
	x := New(128, 4)
	fm, err := x.InjectStuckFaults(0.1, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	want := FaultMap{SA0: 838, SA1: 806}
	if fm != want {
		t.Fatalf("v1 fault map at seed 3 = %+v; want %+v (legacy stream broken)", fm, want)
	}
}

// TestFaultCountsV2BinomialMoments: the realised v2 fault counts must
// match the Binomial(n, rate) mean and variance at every sweep rate.
func TestFaultCountsV2BinomialMoments(t *testing.T) {
	const n, reps = 4096, 3000
	rng := stats.NewRNGSampler(23, stats.SamplerV2)
	for _, rate := range sweepRates {
		counts := make([]float64, reps)
		for i := range counts {
			fm, err := CountStuckFaults(n, rate, rng)
			if err != nil {
				t.Fatal(err)
			}
			counts[i] = float64(fm.Total())
		}
		mean, sd := stats.Mean(counts), stats.StdDev(counts)
		wantMean := n * rate
		wantSD := math.Sqrt(n * rate * (1 - rate))
		if se := wantSD / math.Sqrt(reps); math.Abs(mean-wantMean) > 5*se {
			t.Errorf("rate %v: mean count %.2f, want %.2f (±%.2f)", rate, mean, wantMean, 5*se)
		}
		if math.Abs(sd-wantSD)/wantSD > 0.10 {
			t.Errorf("rate %v: count stddev %.2f, want %.2f", rate, sd, wantSD)
		}
	}
}

// TestFaultCountsV1VsV2KS: two-sample KS between the realised fault-count
// distributions of the two regimes at every sweep rate — the statistical
// heart of the golden re-pin: v2 draws different numbers, but from the
// same distribution.
func TestFaultCountsV1VsV2KS(t *testing.T) {
	if testing.Short() {
		t.Skip("v1 reference draws are O(cells); skipped in -short")
	}
	const n = 65536 // one 256x256 crossbar
	const reps = 400
	for _, rate := range sweepRates {
		v1 := stats.NewRNG(31)
		v2 := stats.NewRNGSampler(37, stats.SamplerV2)
		a := make([]float64, reps)
		b := make([]float64, reps)
		var sa0v1, sa0v2, totv1, totv2 float64
		for i := 0; i < reps; i++ {
			fm1, err := CountStuckFaults(n, rate, v1)
			if err != nil {
				t.Fatal(err)
			}
			fm2, err := CountStuckFaults(n, rate, v2)
			if err != nil {
				t.Fatal(err)
			}
			a[i] = float64(fm1.Total())
			b[i] = float64(fm2.Total())
			sa0v1 += float64(fm1.SA0)
			sa0v2 += float64(fm2.SA0)
			totv1 += float64(fm1.Total())
			totv2 += float64(fm2.Total())
		}
		if d, limit := stats.KSTwoSample(a, b), stats.KSThreshold(0.001, reps, reps); d > limit {
			t.Errorf("rate %v: fault-count KS %.4f exceeds %.4f", rate, d, limit)
		}
		// Polarity split: chi-square of the pooled SA0/SA1 halves against
		// the 50/50 model, per regime (1 df; 0.999 critical value 10.83).
		for _, s := range []struct {
			name     string
			sa0, tot float64
		}{{"v1", sa0v1, totv1}, {"v2", sa0v2, totv2}} {
			obs := []float64{s.sa0, s.tot - s.sa0}
			exp := []float64{s.tot / 2, s.tot / 2}
			if x2 := stats.ChiSquare(obs, exp); x2 > 10.83 {
				t.Errorf("rate %v: %s SA0/SA1 chi-square %.2f exceeds 10.83", rate, s.name, x2)
			}
		}
	}
}

// BenchmarkCountStuckFaults measures the per-crossbar fault-draw cost of
// both regimes at a low and a moderate sweep rate: the v1 cost is
// O(cells) and rate-independent, the v2 cost is O(faults).
func BenchmarkCountStuckFaults(b *testing.B) {
	const n = 65536
	for _, bc := range []struct {
		name string
		rate float64
		rng  func() *stats.RNG
	}{
		{"rate=0.001/sampler=v1", 0.001, func() *stats.RNG { return stats.NewRNG(1) }},
		{"rate=0.001/sampler=v2", 0.001, func() *stats.RNG { return stats.NewRNGSampler(1, stats.SamplerV2) }},
		{"rate=0.01/sampler=v1", 0.01, func() *stats.RNG { return stats.NewRNG(1) }},
		{"rate=0.01/sampler=v2", 0.01, func() *stats.RNG { return stats.NewRNGSampler(1, stats.SamplerV2) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			rng := bc.rng()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CountStuckFaults(n, bc.rate, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
