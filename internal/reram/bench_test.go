package reram

import (
	"testing"

	"repro/internal/stats"
)

// benchCrossbar builds a fully programmed 256×256 crossbar with device
// variation, the worst case for the per-cell conductance path.
func benchCrossbar(b *testing.B, withVariation bool) (*Crossbar, []float64) {
	b.Helper()
	rng := stats.NewRNG(7)
	x := New(256, 4)
	for r := 0; r < x.B; r++ {
		for c := 0; c < x.B; c++ {
			if err := x.Program(r, c, uint8(rng.Intn(int(x.MaxLevel())+1))); err != nil {
				b.Fatal(err)
			}
		}
	}
	if withVariation {
		x.ApplyVariation(0.02, rng)
	}
	times := make([]float64, x.B)
	for i := range times {
		times[i] = float64(rng.Intn(256)) * 50
	}
	return x, times
}

// BenchmarkColumnDot measures one single-column analog dot product — the
// innermost kernel of the functional simulator.
func BenchmarkColumnDot(b *testing.B) {
	x, times := benchCrossbar(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += x.ColumnDot(times, i%x.B, 50)
	}
	_ = sink
}

// BenchmarkDotColumns measures the flat matrix–vector kernel computing all
// 256 column dots in one pass (amortised cost per column ≈ 1/256 of the
// reported figure).
func BenchmarkDotColumns(b *testing.B) {
	x, times := benchCrossbar(b, true)
	scaled := make([]float64, len(times))
	for i, t := range times {
		scaled[i] = t / 50
	}
	out := make([]float64, x.B)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.DotColumns(scaled, 0, x.B, out)
	}
}

// BenchmarkDotColumnsBatch measures the blocked matrix–matrix kernel on a
// 64-vector batch (one batchBlock of the deterministic forward path).
func BenchmarkDotColumnsBatch(b *testing.B) {
	x, times := benchCrossbar(b, true)
	const nvec = 64
	rows := len(times)
	scaled := make([]float64, nvec*rows)
	for v := 0; v < nvec; v++ {
		for i, t := range times {
			scaled[v*rows+i] = t / 50
		}
	}
	out := make([]float64, nvec*x.B)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.DotColumnsBatch(scaled, nvec, rows, rows, 0, x.B, out, x.B)
	}
}

// BenchmarkSubRangedDot measures a recombined two-nibble weight-column dot.
func BenchmarkSubRangedDot(b *testing.B) {
	x, times := benchCrossbar(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += x.SubRangedDot(times, (i%(x.B/2))*2, 8, 50)
	}
	_ = sink
}
