package reram

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// naiveCond recomputes a cell's effective conductance exactly as the
// original per-call path did, independently of the flat cache.
func naiveCond(x *Crossbar, row, col int) float64 {
	g := float64(x.levels[row*x.B+col])
	if x.variation != nil {
		g *= 1 + x.variation[row*x.B+col]
	}
	if x.irDrop != 0 {
		g /= 1 + x.irDrop*float64(row+col)/float64(2*x.B)
	}
	return g
}

// naiveColumnDot is the reference per-element kernel: per-cell conductance
// recomputation, per-term division, zero-conductance terms skipped.
func naiveColumnDot(x *Crossbar, times []float64, col int, tdel float64) float64 {
	dot := 0.0
	for i, t := range times {
		if g := naiveCond(x, i, col); g != 0 {
			dot += t / tdel * g
		}
	}
	return dot
}

// randomCrossbar builds a crossbar with random levels and, depending on the
// seed, variation, IR drop and stuck-at faults — every branch of the
// conductance path.
func randomCrossbar(seed uint64, b int) (*Crossbar, *stats.RNG) {
	rng := stats.NewRNG(seed)
	x := New(b, 4)
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			if err := x.Program(r, c, uint8(rng.Intn(16))); err != nil {
				panic(err)
			}
		}
	}
	if seed%2 == 0 {
		x.ApplyVariation(0.05, rng)
	}
	if seed%3 == 0 {
		x.SetIRDrop(0.2)
	}
	if seed%5 == 0 {
		if _, err := x.InjectStuckFaults(0.05, rng); err != nil {
			panic(err)
		}
	}
	return x, rng
}

func randomTimes(rng *stats.RNG, n int) []float64 {
	times := make([]float64, n)
	for i := range times {
		times[i] = float64(rng.Intn(256)) * 50
	}
	return times
}

// TestDotColumnsMatchesColumnDot is the property test for the flat kernels:
// across random crossbars (with variation, IR drop and faults), DotColumns
// and DotColumnsBatch must reproduce the per-element reference exactly —
// the flat cache holds the same values and the kernels keep the same
// per-column accumulation order.
func TestDotColumnsMatchesColumnDot(t *testing.T) {
	f := func(seed uint64) bool {
		const b = 24
		x, rng := randomCrossbar(seed, b)
		rows := 1 + rng.Intn(b)
		times := randomTimes(rng, rows)
		const tdel = 50.0

		// Single-column kernel vs naive reference.
		for col := 0; col < b; col++ {
			if got, want := x.ColumnDot(times, col, tdel), naiveColumnDot(x, times, col, tdel); got != want {
				t.Logf("seed %d col %d: ColumnDot %v != naive %v", seed, col, got, want)
				return false
			}
		}
		// Multi-column kernel vs per-column calls.
		scaled := make([]float64, rows)
		for i, tt := range times {
			scaled[i] = tt / tdel
		}
		out := make([]float64, b)
		x.DotColumns(scaled, 0, b, out)
		for col := 0; col < b; col++ {
			if want := x.ColumnDot(times, col, tdel); out[col] != want {
				t.Logf("seed %d col %d: DotColumns %v != ColumnDot %v", seed, col, out[col], want)
				return false
			}
		}
		// Batched matrix–matrix kernel vs per-vector DotColumns.
		const nvec = 3
		batch := make([]float64, nvec*rows)
		for i := range batch {
			batch[i] = float64(rng.Intn(256))
		}
		bout := make([]float64, nvec*b)
		x.DotColumnsBatch(batch, nvec, rows, rows, 0, b, bout, b)
		single := make([]float64, b)
		for v := 0; v < nvec; v++ {
			x.DotColumns(batch[v*rows:(v+1)*rows], 0, b, single)
			for col := 0; col < b; col++ {
				if bout[v*b+col] != single[col] {
					t.Logf("seed %d v %d col %d: batch %v != single %v", seed, v, col, bout[v*b+col], single[col])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSubRangedDotMatchesReference checks the recombining decoders still
// produce the exact per-element results through the flat cache.
func TestSubRangedDotMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		const b = 16
		x, rng := randomCrossbar(seed, b)
		times := randomTimes(rng, b)
		const tdel = 50.0
		const weightBits = 8
		ncols := (weightBits + x.CellBits - 1) / x.CellBits
		for col0 := 0; col0+ncols <= b; col0++ {
			want := 0.0
			for i := 0; i < ncols; i++ {
				shift := x.CellBits * (ncols - 1 - i)
				want += naiveColumnDot(x, times, col0+i, tdel) * float64(int64(1)<<shift)
			}
			if got := x.SubRangedDot(times, col0, weightBits, tdel); got != want {
				t.Logf("seed %d col0 %d: SubRangedDot %v != %v", seed, col0, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestFlatCacheInvalidation covers every mutation that must invalidate the
// cached conductance matrix: program → dot, ApplyVariation → dot differs,
// SetIRDrop → dot differs, fault injection → dot reflects pinned cells.
func TestFlatCacheInvalidation(t *testing.T) {
	rng := stats.NewRNG(99)
	x := New(8, 4)
	times := []float64{50, 100, 150, 200, 250, 300, 350, 400}

	if dot := x.ColumnDot(times, 0, 50); dot != 0 {
		t.Fatalf("erased crossbar dot = %v, want 0", dot)
	}
	// Programming after a dot (cache built) must be visible. Cell (2,0)
	// rather than (0,0) so the IR-drop check below has a nonzero row+col
	// attenuation to observe.
	mustProgram(t, x, 2, 0, 5)
	want := times[2] / 50 * 5
	if dot := x.ColumnDot(times, 0, 50); dot != want {
		t.Fatalf("post-program dot = %v, want %v", dot, want)
	}
	// Variation must change the cached conductances.
	base := x.ColumnDot(times, 0, 50)
	x.ApplyVariation(0.25, rng)
	varied := x.ColumnDot(times, 0, 50)
	if varied == base {
		t.Fatalf("dot unchanged (%v) after ApplyVariation", varied)
	}
	if got, want := varied, naiveColumnDot(x, times, 0, 50); got != want {
		t.Fatalf("varied dot = %v, want %v", got, want)
	}
	// Removing variation must restore the base value.
	x.ApplyVariation(0, rng)
	if dot := x.ColumnDot(times, 0, 50); dot != base {
		t.Fatalf("dot = %v after clearing variation, want %v", dot, base)
	}
	// IR drop must attenuate through the cache.
	x.SetIRDrop(0.5)
	if dot := x.ColumnDot(times, 0, 50); dot >= base {
		t.Fatalf("dot = %v after SetIRDrop, want < %v", dot, base)
	}
	x.SetIRDrop(0)
	if dot := x.ColumnDot(times, 0, 50); dot != base {
		t.Fatalf("dot = %v after clearing IR drop, want %v", dot, base)
	}
	// Stuck-at faults pin levels; the cache must see the pinned values.
	if _, err := x.InjectStuckFaults(1, rng); err != nil {
		t.Fatal(err)
	}
	if got, want := x.ColumnDot(times, 0, 50), naiveColumnDot(x, times, 0, 50); got != want {
		t.Fatalf("faulted dot = %v, want %v", got, want)
	}
}

// TestCountStuckFaultsMatchesInject verifies the count-only walk consumes
// the identical random sequence and produces the identical fault map as a
// real injection from the same generator state.
func TestCountStuckFaultsMatchesInject(t *testing.T) {
	for _, rate := range []float64{0, 0.001, 0.01, 0.05, 0.15, 0.30, 1} {
		for seed := uint64(1); seed <= 5; seed++ {
			rngA := stats.NewRNG(seed)
			rngB := stats.NewRNG(seed)
			const b = 64
			x := New(b, 4)
			fmInject, err := x.InjectStuckFaults(rate, rngA)
			if err != nil {
				t.Fatal(err)
			}
			fmCount, err := CountStuckFaults(b*b, rate, rngB)
			if err != nil {
				t.Fatal(err)
			}
			if fmInject != fmCount {
				t.Fatalf("rate %v seed %d: inject %+v != count %+v", rate, seed, fmInject, fmCount)
			}
			// Both walks must leave the generators in the same state.
			if a, b := rngA.Float64(), rngB.Float64(); a != b {
				t.Fatalf("rate %v seed %d: post-walk draws differ: %v vs %v", rate, seed, a, b)
			}
		}
	}
}
