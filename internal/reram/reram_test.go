package reram

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/params"
	"repro/internal/stats"
)

func mustProgram(t *testing.T, x *Crossbar, row, col int, level uint8) {
	t.Helper()
	if err := x.Program(row, col, level); err != nil {
		t.Fatal(err)
	}
}

// ideal input times for a vector of 8-bit codes
func timesFor(codes []int) []float64 {
	ts := make([]float64, len(codes))
	for i, c := range codes {
		ts[i] = float64(c) * params.TDel
	}
	return ts
}

func TestProgramAndReadback(t *testing.T) {
	x := New(4, 4)
	if err := x.Program(1, 2, 9); err != nil {
		t.Fatal(err)
	}
	if got := x.Level(1, 2); got != 9 {
		t.Errorf("Level = %d, want 9", got)
	}
}

func TestProgramErrors(t *testing.T) {
	x := New(4, 4)
	if err := x.Program(4, 0, 1); err == nil {
		t.Errorf("out-of-range row accepted")
	}
	if err := x.Program(0, 0, 16); err == nil {
		t.Errorf("over-level accepted by 4-bit cell")
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("New(0,4) did not panic")
		}
	}()
	New(0, 4)
}

// TestColumnDotKirchhoff verifies Fig. 3(a): the column current is the sum
// of per-cell currents, i.e. the dot of input times and conductances.
func TestColumnDotKirchhoff(t *testing.T) {
	x := New(4, 4)
	mustProgram(t, x, 0, 0, 3)
	mustProgram(t, x, 1, 0, 15)
	mustProgram(t, x, 2, 0, 1)
	times := timesFor([]int{10, 20, 0, 255})
	got := x.ColumnDot(times, 0, params.TDel)
	want := 10.0*3 + 20*15 + 0*1 // row 3 has level 0
	if got != want {
		t.Errorf("ColumnDot = %v, want %v", got, want)
	}
}

func TestColumnDotPartialRows(t *testing.T) {
	x := New(8, 4)
	mustProgram(t, x, 5, 2, 7)
	// Only 3 input rows driven: row 5 floats, contributes nothing.
	if got := x.ColumnDot(timesFor([]int{1, 2, 3}), 2, params.TDel); got != 0 {
		t.Errorf("floating-row dot = %v, want 0", got)
	}
}

func TestSubRangedDot8Bit(t *testing.T) {
	x := New(8, 4)
	codes := []int{0xAB, 0x0F, 0xF0, 0x01}
	if _, err := x.ProgramWeightColumns(0, codes, 8); err != nil {
		t.Fatal(err)
	}
	inputs := []int{1, 2, 3, 4}
	got := x.SubRangedDot(timesFor(inputs), 0, 8, params.TDel)
	want := 0.0
	for i := range codes {
		want += float64(inputs[i] * codes[i])
	}
	if got != want {
		t.Errorf("SubRangedDot = %v, want %v", got, want)
	}
}

func TestSubRangedDot16BitOver4BitCells(t *testing.T) {
	x := New(4, 4)
	codes := []int{0x1234, 0xFFFF, 0, 0x8000}
	if _, err := x.ProgramWeightColumns(0, codes, 16); err != nil {
		t.Fatal(err)
	}
	inputs := []int{3, 1, 9, 2}
	got := x.SubRangedDot(timesFor(inputs), 0, 16, params.TDel)
	want := 0.0
	for i := range codes {
		want += float64(inputs[i] * codes[i])
	}
	if got != want {
		t.Errorf("16-bit SubRangedDot = %v, want %v", got, want)
	}
}

func TestProgramWeightColumnsErrors(t *testing.T) {
	x := New(4, 4)
	if _, err := x.ProgramWeightColumns(3, []int{1}, 8); err == nil {
		t.Errorf("column overflow accepted")
	}
	if _, err := x.ProgramWeightColumns(0, []int{256}, 8); err == nil {
		t.Errorf("over-range code accepted")
	}
	if _, err := x.ProgramWeightColumns(0, make([]int, 5), 8); err == nil {
		t.Errorf("too many rows accepted")
	}
}

func TestSignedDifferentialExact(t *testing.T) {
	x := New(8, 4)
	weights := []int{-128, 127, -1, 0, 64, -64, 5, -5}
	n, err := x.ProgramSignedDifferential(0, weights, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("differential 8-bit used %d columns, want 4", n)
	}
	inputs := []int{255, 1, 100, 50, 2, 2, 10, 10}
	got := x.SignedDotDifferential(timesFor(inputs), 0, 8, params.TDel)
	want := 0.0
	for i := range weights {
		want += float64(inputs[i] * weights[i])
	}
	if got != want {
		t.Errorf("signed differential dot = %v, want %v", got, want)
	}
}

func TestSignedOffsetExact(t *testing.T) {
	x := New(8, 4)
	weights := []int{-128, 127, -1, 0, 64, -64, 5, -5}
	n, err := x.ProgramSignedOffset(0, weights, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("offset 8-bit used %d columns, want 3 (2 + reference)", n)
	}
	inputs := []int{255, 1, 100, 50, 2, 2, 10, 10}
	got := x.SignedDotOffset(timesFor(inputs), 0, 8, params.TDel)
	want := 0.0
	for i := range weights {
		want += float64(inputs[i] * weights[i])
	}
	if got != want {
		t.Errorf("signed offset dot = %v, want %v", got, want)
	}
}

func TestSignedRangeErrors(t *testing.T) {
	x := New(4, 4)
	if _, err := x.ProgramSignedDifferential(0, []int{128}, 8); err == nil {
		t.Errorf("differential accepted +128 for 8 bits")
	}
	if _, err := x.ProgramSignedOffset(0, []int{-129}, 8); err == nil {
		t.Errorf("offset accepted -129 for 8 bits")
	}
}

// Property: both signed schemes agree with the integer dot product for
// random weights/inputs.
func TestSignedSchemesAgreeProperty(t *testing.T) {
	f := func(ws [6]int8, xs [6]uint8) bool {
		want := 0.0
		weights := make([]int, 6)
		inputs := make([]int, 6)
		for i := range ws {
			weights[i] = int(ws[i])
			inputs[i] = int(xs[i])
			want += float64(int(ws[i]) * int(xs[i]))
		}
		xd := New(8, 4)
		if _, err := xd.ProgramSignedDifferential(0, weights, 8); err != nil {
			return false
		}
		xo := New(8, 4)
		if _, err := xo.ProgramSignedOffset(0, weights, 8); err != nil {
			return false
		}
		ts := timesFor(inputs)
		return xd.SignedDotDifferential(ts, 0, 8, params.TDel) == want &&
			xo.SignedDotOffset(ts, 0, 8, params.TDel) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIRDropAttenuatesFarCells(t *testing.T) {
	x := New(256, 4)
	mustProgram(t, x, 0, 0, 15)
	mustProgram(t, x, 255, 0, 15)
	times := make([]float64, 256)
	times[0] = 100 * params.TDel
	nearOnly := x.ColumnDot(times, 0, params.TDel)
	times[0] = 0
	times[255] = 100 * params.TDel
	farIdeal := x.ColumnDot(times, 0, params.TDel)
	if nearOnly != farIdeal {
		t.Fatalf("ideal array position-dependent: %v vs %v", nearOnly, farIdeal)
	}
	x.SetIRDrop(0.2)
	farDropped := x.ColumnDot(times, 0, params.TDel)
	if farDropped >= farIdeal {
		t.Errorf("IR drop did not attenuate the far cell: %v vs %v", farDropped, farIdeal)
	}
	times[0], times[255] = 100*params.TDel, 0
	nearDropped := x.ColumnDot(times, 0, params.TDel)
	if nearDropped <= farDropped {
		t.Errorf("near cell (%v) not favoured over far cell (%v) under IR drop",
			nearDropped, farDropped)
	}
	x.SetIRDrop(0)
	if got := x.ColumnDot(times, 0, params.TDel); got != nearOnly {
		t.Errorf("disabling IR drop did not restore ideal dot")
	}
}

func TestIRDropBounded(t *testing.T) {
	// Even at the far corner with a strong coefficient, attenuation stays a
	// bounded fraction (the first-order model never inverts or zeroes).
	x := New(256, 4)
	mustProgram(t, x, 255, 255, 15)
	times := make([]float64, 256)
	times[255] = 255 * params.TDel
	x.SetIRDrop(0.5)
	dropped := x.ColumnDot(times, 255, params.TDel)
	ideal := 255.0 * 15
	if dropped < ideal*0.5 || dropped >= ideal {
		t.Errorf("far-corner attenuation = %.3f of ideal, want in [0.5, 1)", dropped/ideal)
	}
}

func TestVariationBiasIsSmall(t *testing.T) {
	x := New(64, 4)
	codes := make([]int, 64)
	inputs := make([]int, 64)
	for i := range codes {
		codes[i] = 0x88
		inputs[i] = 128
	}
	if _, err := x.ProgramWeightColumns(0, codes, 8); err != nil {
		t.Fatal(err)
	}
	ideal := x.SubRangedDot(timesFor(inputs), 0, 8, params.TDel)
	x.ApplyVariation(0.01, stats.NewRNG(5))
	noisy := x.SubRangedDot(timesFor(inputs), 0, 8, params.TDel)
	rel := math.Abs(noisy-ideal) / ideal
	// 64 independent 1% errors average out: relative error well under 1%.
	if rel > 0.01 {
		t.Errorf("variation shifted dot by %.3f%%, want <1%%", rel*100)
	}
	x.ApplyVariation(0, nil)
	if got := x.SubRangedDot(timesFor(inputs), 0, 8, params.TDel); got != ideal {
		t.Errorf("clearing variation did not restore ideal dot")
	}
}
