package reram

import "fmt"

// Signed-weight handling. ReRAM conductances are non-negative, so signed
// weights need an encoding. The repository implements the two standard
// schemes; the functional TIMELY executor (package core) uses the
// differential scheme by default, and the analytic models account columns
// per the paper's 2-columns-per-8-bit-weight budget (offset scheme).
//
//   - Differential: each weight w splits into w⁺ = max(w,0) and w⁻ =
//     max(−w,0) programmed into paired column groups; the digital result is
//     dot⁺ − dot⁻. Exact, at the cost of doubling columns.
//
//   - Offset binary: w is stored as w + 2^(bits−1); the true dot product is
//     recovered digitally as dot_enc − 2^(bits−1)·Σx, with Σx supplied by a
//     reference column of unit conductances (one extra column per array).

// SignedScheme selects the signed-weight encoding.
type SignedScheme int

const (
	// SchemeDifferential uses paired positive/negative column groups.
	SchemeDifferential SignedScheme = iota
	// SchemeOffset uses offset-binary encoding with a reference column.
	SchemeOffset
)

// String returns the encoding scheme's name.
func (s SignedScheme) String() string {
	switch s {
	case SchemeDifferential:
		return "differential"
	case SchemeOffset:
		return "offset"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// ProgramSignedDifferential writes signed weights into two adjacent
// sub-ranged column groups (positive at col0, negative right after) and
// returns the total number of columns used.
func (x *Crossbar) ProgramSignedDifferential(col0 int, weights []int, weightBits int) (int, error) {
	lim := int(1) << (weightBits - 1)
	pos := make([]int, len(weights))
	neg := make([]int, len(weights))
	for i, w := range weights {
		if w < -lim || w >= lim {
			return 0, fmt.Errorf("reram: signed weight %d out of %d-bit range", w, weightBits)
		}
		if w >= 0 {
			pos[i] = w
		} else {
			neg[i] = -w
		}
	}
	// Magnitudes use weightBits-1 bits... but −2^(b−1) needs the full b−1+1
	// magnitude; program magnitudes with weightBits width for headroom.
	n1, err := x.ProgramWeightColumns(col0, pos, weightBits)
	if err != nil {
		return 0, err
	}
	n2, err := x.ProgramWeightColumns(col0+n1, neg, weightBits)
	if err != nil {
		return 0, err
	}
	return n1 + n2, nil
}

// SignedDotDifferential recombines a differential column pair programmed by
// ProgramSignedDifferential into the signed dot product (code units).
func (x *Crossbar) SignedDotDifferential(times []float64, col0, weightBits int, tdel float64) float64 {
	ncols := (weightBits + x.CellBits - 1) / x.CellBits
	pos := x.SubRangedDot(times, col0, weightBits, tdel)
	neg := x.SubRangedDot(times, col0+ncols, weightBits, tdel)
	return pos - neg
}

// ProgramSignedOffset writes signed weights in offset-binary form into the
// sub-ranged group at col0 and programs a unit reference column right after
// it. It returns the number of columns used (group + 1).
func (x *Crossbar) ProgramSignedOffset(col0 int, weights []int, weightBits int) (int, error) {
	lim := int(1) << (weightBits - 1)
	codes := make([]int, len(weights))
	for i, w := range weights {
		if w < -lim || w >= lim {
			return 0, fmt.Errorf("reram: signed weight %d out of %d-bit range", w, weightBits)
		}
		codes[i] = w + lim
	}
	n, err := x.ProgramWeightColumns(col0, codes, weightBits)
	if err != nil {
		return 0, err
	}
	refCol := col0 + n
	if refCol >= x.B {
		return 0, fmt.Errorf("reram: no room for reference column at %d", refCol)
	}
	for row := range weights {
		if err := x.Program(row, refCol, 1); err != nil {
			return 0, err
		}
	}
	return n + 1, nil
}

// SignedDotOffset recombines an offset-binary group (with its reference
// column) into the signed dot product: dot_enc − 2^(bits−1)·Σx, where Σx is
// read from the reference column.
func (x *Crossbar) SignedDotOffset(times []float64, col0, weightBits int, tdel float64) float64 {
	ncols := (weightBits + x.CellBits - 1) / x.CellBits
	enc := x.SubRangedDot(times, col0, weightBits, tdel)
	sumX := x.ColumnDot(times, col0+ncols, tdel)
	return enc - float64(int(1)<<(weightBits-1))*sumX
}
