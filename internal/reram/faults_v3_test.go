package reram

import (
	"testing"

	"repro/internal/stats"
)

// TestInjectV3MatchesCount: the deferred-injection contract must hold for
// counter-based generators exactly as it does for the serial regimes —
// CountStuckFaults realises the same fault map and leaves the generator in
// the same state as an injection from a clone, at every sweep rate, both
// on a trial's main stream and on a slot substream (the form package core
// actually hands this function under v3).
func TestInjectV3MatchesCount(t *testing.T) {
	streams := map[string]func() *stats.RNG{
		"trial-main": func() *stats.RNG { return stats.NewTrialRNG(17, 4) },
		"slot-substream": func() *stats.RNG {
			return stats.NewTrialRNG(17, 4).Substream(1, 9)
		},
	}
	for name, mk := range streams {
		for _, rate := range append([]float64{0, 1}, sweepRates...) {
			live := mk()
			snap := live.Clone()
			counted, err := CountStuckFaults(128*128, rate, live)
			if err != nil {
				t.Fatal(err)
			}
			x := New(128, 4)
			injected, err := x.InjectStuckFaults(rate, snap)
			if err != nil {
				t.Fatal(err)
			}
			if counted != injected {
				t.Fatalf("%s rate %v: counted %+v but injected %+v", name, rate, counted, injected)
			}
			if live.Uint64() != snap.Uint64() {
				t.Fatalf("%s rate %v: count and inject consumed different deviate streams", name, rate)
			}
		}
	}
}

// TestInjectV3RateZeroDrawsNothing: v3 shares v2's O(faults) boundary — a
// rate-0 injection consumes no deviates.
func TestInjectV3RateZeroDrawsNothing(t *testing.T) {
	r := stats.NewTrialRNG(5, 0)
	ref := r.Clone()
	x := New(64, 4)
	if _, err := x.InjectStuckFaults(0, r); err != nil {
		t.Fatal(err)
	}
	if r.Uint64() != ref.Uint64() {
		t.Fatal("v3 rate-0 injection consumed deviates")
	}
}

// TestFaultCountsV3BinomialMoments: realised v3 fault counts across
// distinct substreams must match the Binomial(n, rate) mean and variance —
// the keyed streams are independent draws, not copies.
func TestFaultCountsV3BinomialMoments(t *testing.T) {
	const n, reps = 4096, 3000
	base := stats.NewTrialRNG(23, 0)
	for ri, rate := range sweepRates {
		counts := make([]float64, reps)
		for i := 0; i < reps; i++ {
			rng := base.Substream(uint32(ri+1), uint32(i))
			fm, err := CountStuckFaults(n, rate, rng)
			if err != nil {
				t.Fatal(err)
			}
			counts[i] = float64(fm.Total())
		}
		var sum, sq float64
		for _, c := range counts {
			sum += c
		}
		mean := sum / reps
		for _, c := range counts {
			d := c - mean
			sq += d * d
		}
		variance := sq / (reps - 1)
		wantMean := float64(n) * rate
		wantVar := float64(n) * rate * (1 - rate)
		// 5-sigma tolerance on the sample mean; 25% on the variance.
		if d := mean - wantMean; d*d > 25*wantVar/reps {
			t.Errorf("rate %v: substream fault-count mean %.1f, want %.1f", rate, mean, wantMean)
		}
		if variance < 0.75*wantVar || variance > 1.25*wantVar {
			t.Errorf("rate %v: substream fault-count variance %.1f, want ~%.1f", rate, variance, wantVar)
		}
	}
}
