// Package reram models the ReRAM crossbar arrays at the heart of TIMELY:
// B×B grids of multi-level cells whose conductances encode weights and whose
// column currents, integrated over the time-domain inputs, realise analog
// dot products (paper §II-B, Fig. 3(a) and Fig. 6(e)).
//
// Conductances are kept in *level units*: a cell programmed to level g
// (0..2^CellBits−1) contributes g per unit input time. The physical scale
// (Gmax = 1/Rmin) cancels into the charging unit's full scale, mirroring how
// Eq. 2 cancels Rmin. Device variation multiplies the level by (1+δ) with
// Gaussian δ.
package reram

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/stats"
)

// Crossbar is one B×B ReRAM array.
type Crossbar struct {
	// B is the array dimension.
	B int
	// CellBits is the per-cell weight width.
	CellBits int
	// levels holds the programmed level of each cell, row-major.
	levels []uint8
	// variation holds per-cell relative conductance errors (nil when ideal).
	variation []float64
	// faults holds per-cell stuck-at states (nil when fault-free).
	faults []int8
	// irDrop is the wire-resistance attenuation coefficient (0 = ideal).
	irDrop float64
}

// New returns an erased (all-zero) crossbar. It panics on non-positive
// dimensions, which are programming errors.
func New(b, cellBits int) *Crossbar {
	if b <= 0 || cellBits <= 0 || cellBits > 8 {
		panic(fmt.Sprintf("reram: invalid crossbar %dx%d cells of %d bits", b, b, cellBits))
	}
	return &Crossbar{B: b, CellBits: cellBits, levels: make([]uint8, b*b)}
}

// MaxLevel returns the highest programmable level.
func (x *Crossbar) MaxLevel() uint8 { return uint8(int(1)<<x.CellBits - 1) }

// Program writes one cell. It returns an error if the coordinates are out
// of range or the level exceeds the cell's capability.
func (x *Crossbar) Program(row, col int, level uint8) error {
	if row < 0 || row >= x.B || col < 0 || col >= x.B {
		return fmt.Errorf("reram: cell (%d,%d) outside %dx%d array", row, col, x.B, x.B)
	}
	if level > x.MaxLevel() {
		return fmt.Errorf("reram: level %d exceeds %d-bit cell", level, x.CellBits)
	}
	if x.faults != nil && x.faults[row*x.B+col] != faultNone {
		// Stuck cells ignore programming (the write-verify loop gives up).
		return nil
	}
	x.levels[row*x.B+col] = level
	return nil
}

// Level reads back a programmed level.
func (x *Crossbar) Level(row, col int) uint8 { return x.levels[row*x.B+col] }

// ApplyVariation draws an independent Gaussian relative conductance error
// with the given sigma for every cell (the ReRAM device-variation model the
// accuracy study injects alongside circuit noise).
func (x *Crossbar) ApplyVariation(sigma float64, rng *stats.RNG) {
	if sigma == 0 {
		x.variation = nil
		return
	}
	x.variation = make([]float64, len(x.levels))
	for i := range x.variation {
		x.variation[i] = rng.Gauss(0, sigma)
	}
}

// SetIRDrop configures wire-resistance (IR-drop) attenuation: the effective
// conductance of the cell at (row, col) scales by 1/(1 + α·(row+col)/2B),
// the standard first-order model where cells far from the drivers and the
// sensing column see a degraded voltage. α = 0 disables the effect. TIMELY
// bounds α by keeping arrays at 256×256 and re-driving signals through ALBs
// (§V: the buffers "increase the driving ability of loads").
func (x *Crossbar) SetIRDrop(alpha float64) { x.irDrop = alpha }

// cond returns the effective conductance of a cell in level units.
func (x *Crossbar) cond(row, col int) float64 {
	g := float64(x.levels[row*x.B+col])
	if x.variation != nil {
		g *= 1 + x.variation[row*x.B+col]
	}
	if x.irDrop != 0 {
		g /= 1 + x.irDrop*float64(row+col)/float64(2*x.B)
	}
	return g
}

// ColumnDot integrates the column current over the applied input times:
// it returns Σᵢ times[i]·g[i][col] / TDel-units, i.e. the dot value the
// charging unit consumes. times must have length ≤ B; missing rows float
// (contribute nothing). tdel converts times (ps) into code units.
func (x *Crossbar) ColumnDot(times []float64, col int, tdel float64) float64 {
	if col < 0 || col >= x.B {
		panic(fmt.Sprintf("reram: column %d outside array", col))
	}
	if len(times) > x.B {
		panic(fmt.Sprintf("reram: %d input rows exceed array size %d", len(times), x.B))
	}
	dot := 0.0
	for i, t := range times {
		if g := x.cond(i, col); g != 0 {
			dot += t / tdel * g
		}
	}
	return dot
}

// ProgramWeightColumns writes one weight vector (unsigned codes of
// weightBits width, one per row) into the sub-ranged column group starting
// at col0: ⌈weightBits/CellBits⌉ adjacent columns holding big-endian
// nibbles, the §IV-C MSB/LSB layout. It returns the number of columns used.
func (x *Crossbar) ProgramWeightColumns(col0 int, codes []int, weightBits int) (int, error) {
	ncols := (weightBits + x.CellBits - 1) / x.CellBits
	if col0 < 0 || col0+ncols > x.B {
		return 0, fmt.Errorf("reram: weight columns [%d,%d) outside array", col0, col0+ncols)
	}
	if len(codes) > x.B {
		return 0, fmt.Errorf("reram: %d weights exceed %d rows", len(codes), x.B)
	}
	for row, code := range codes {
		if code < 0 || code >= 1<<weightBits {
			return 0, fmt.Errorf("reram: weight code %d out of %d-bit range", code, weightBits)
		}
		for i, nb := range fixed.Split(code, weightBits, x.CellBits) {
			if err := x.Program(row, col0+i, nb); err != nil {
				return 0, err
			}
		}
	}
	return ncols, nil
}

// SubRangedDot computes the recombined dot product of the weight-column
// group at col0 against the applied input times, in code units:
// Σ over nibble columns of dot_i · 2^(CellBits·(n−1−i)). This is the digital
// shift-and-add of Fig. 6(a) ⑤ applied to exact column dots; the functional
// TIMELY pipeline in package core routes the same quantities through
// charging units and TDCs instead.
func (x *Crossbar) SubRangedDot(times []float64, col0, weightBits int, tdel float64) float64 {
	ncols := (weightBits + x.CellBits - 1) / x.CellBits
	dot := 0.0
	for i := 0; i < ncols; i++ {
		shift := x.CellBits * (ncols - 1 - i)
		dot += x.ColumnDot(times, col0+i, tdel) * float64(int64(1)<<shift)
	}
	return dot
}
