// Package reram models the ReRAM crossbar arrays at the heart of TIMELY:
// B×B grids of multi-level cells whose conductances encode weights and whose
// column currents, integrated over the time-domain inputs, realise analog
// dot products (paper §II-B, Fig. 3(a) and Fig. 6(e)).
//
// Conductances are kept in *level units*: a cell programmed to level g
// (0..2^CellBits−1) contributes g per unit input time. The physical scale
// (Gmax = 1/Rmin) cancels into the charging unit's full scale, mirroring how
// Eq. 2 cancels Rmin. Device variation multiplies the level by (1+δ) with
// Gaussian δ.
//
// The dot-product kernels operate on a cached flat effective-conductance
// matrix: the branchy per-cell path (level, variation, IR drop) is evaluated
// once per cell into a contiguous []float64 and every kernel — single-column,
// multi-column and batched — reads the cache. Any state mutation (Program,
// ApplyVariation, SetIRDrop, fault injection) invalidates it; the cache is
// rebuilt lazily and only for the row prefix a kernel actually touches.
// Crossbars are not safe for concurrent use.
package reram

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/stats"
)

// Crossbar is one B×B ReRAM array.
type Crossbar struct {
	// B is the array dimension.
	B int
	// CellBits is the per-cell weight width.
	CellBits int
	// levels holds the programmed level of each cell, row-major.
	levels []uint8
	// variation holds per-cell relative conductance errors (nil when ideal).
	variation []float64
	// faults holds per-cell stuck-at states (nil when fault-free).
	faults []int8
	// irDrop is the wire-resistance attenuation coefficient (0 = ideal).
	irDrop float64

	// flat caches the effective conductances of the first flatRows rows
	// (row-major, stride B). flatRows == 0 means the cache is stale.
	flat     []float64
	flatRows int
	// scaled and dots are kernel scratch reused by SubRangedDot so the
	// recombining decoders stay allocation-free.
	scaled []float64
	dots   []float64
}

// New returns an erased (all-zero) crossbar. It panics on non-positive
// dimensions, which are programming errors.
func New(b, cellBits int) *Crossbar {
	if b <= 0 || cellBits <= 0 || cellBits > 8 {
		panic(fmt.Sprintf("reram: invalid crossbar %dx%d cells of %d bits", b, b, cellBits))
	}
	return &Crossbar{B: b, CellBits: cellBits, levels: make([]uint8, b*b)}
}

// MaxLevel returns the highest programmable level.
func (x *Crossbar) MaxLevel() uint8 { return uint8(int(1)<<x.CellBits - 1) }

// invalidate drops the cached conductance matrix.
func (x *Crossbar) invalidate() { x.flatRows = 0 }

// Program writes one cell. It returns an error if the coordinates are out
// of range or the level exceeds the cell's capability.
func (x *Crossbar) Program(row, col int, level uint8) error {
	if row < 0 || row >= x.B || col < 0 || col >= x.B {
		return fmt.Errorf("reram: cell (%d,%d) outside %dx%d array", row, col, x.B, x.B)
	}
	if level > x.MaxLevel() {
		return fmt.Errorf("reram: level %d exceeds %d-bit cell", level, x.CellBits)
	}
	if x.faults != nil && x.faults[row*x.B+col] != faultNone {
		// Stuck cells ignore programming (the write-verify loop gives up).
		return nil
	}
	x.levels[row*x.B+col] = level
	x.invalidate()
	return nil
}

// Level reads back a programmed level.
func (x *Crossbar) Level(row, col int) uint8 { return x.levels[row*x.B+col] }

// ApplyVariation draws an independent Gaussian relative conductance error
// with the given sigma for every cell (the ReRAM device-variation model the
// accuracy study injects alongside circuit noise).
func (x *Crossbar) ApplyVariation(sigma float64, rng *stats.RNG) {
	x.invalidate()
	if sigma == 0 {
		x.variation = nil
		return
	}
	x.variation = make([]float64, len(x.levels))
	for i := range x.variation {
		x.variation[i] = rng.Gauss(0, sigma)
	}
}

// SetIRDrop configures wire-resistance (IR-drop) attenuation: the effective
// conductance of the cell at (row, col) scales by 1/(1 + α·(row+col)/2B),
// the standard first-order model where cells far from the drivers and the
// sensing column see a degraded voltage. α = 0 disables the effect. TIMELY
// bounds α by keeping arrays at 256×256 and re-driving signals through ALBs
// (§V: the buffers "increase the driving ability of loads").
func (x *Crossbar) SetIRDrop(alpha float64) {
	x.irDrop = alpha
	x.invalidate()
}

// cond returns the effective conductance of a cell in level units. It is
// the scalar reference the flat cache is built from.
func (x *Crossbar) cond(row, col int) float64 {
	g := float64(x.levels[row*x.B+col])
	if x.variation != nil {
		g *= 1 + x.variation[row*x.B+col]
	}
	if x.irDrop != 0 {
		g /= 1 + x.irDrop*float64(row+col)/float64(2*x.B)
	}
	return g
}

// ensureFlat returns the cached conductance matrix with at least the first
// rows rows valid, rebuilding the stale prefix lazily. Kernels that touch
// only a short row prefix (a partially filled array) pay only for that
// prefix.
func (x *Crossbar) ensureFlat(rows int) []float64 {
	if rows > x.B {
		rows = x.B
	}
	if rows > x.flatRows {
		need := rows * x.B
		if cap(x.flat) < need {
			x.flat = make([]float64, need)
			x.flatRows = 0
		}
		x.flat = x.flat[:need]
		for r := x.flatRows; r < rows; r++ {
			base := r * x.B
			for c := 0; c < x.B; c++ {
				x.flat[base+c] = x.cond(r, c)
			}
		}
		x.flatRows = rows
	}
	return x.flat
}

// CondMatrix returns the full cached effective-conductance matrix (row-major,
// B×B, level units), rebuilding any stale part. The slice is owned by the
// crossbar: callers must not modify it, and any Program/ApplyVariation/
// SetIRDrop/fault-injection call invalidates it.
func (x *Crossbar) CondMatrix() []float64 {
	return x.ensureFlat(x.B)
}

// ColumnDot integrates the column current over the applied input times:
// it returns Σᵢ times[i]·g[i][col] / TDel-units, i.e. the dot value the
// charging unit consumes. times must have length ≤ B; missing rows float
// (contribute nothing). tdel converts times (ps) into code units.
func (x *Crossbar) ColumnDot(times []float64, col int, tdel float64) float64 {
	if col < 0 || col >= x.B {
		panic(fmt.Sprintf("reram: column %d outside array", col))
	}
	if len(times) > x.B {
		panic(fmt.Sprintf("reram: %d input rows exceed array size %d", len(times), x.B))
	}
	g := x.ensureFlat(len(times))
	b := x.B
	dot := 0.0
	for i, t := range times {
		if gi := g[i*b+col]; gi != 0 {
			dot += t / tdel * gi
		}
	}
	return dot
}

// DotColumns computes the dot products of the ncols adjacent columns
// starting at col0 against pre-scaled inputs (scaled[i] = times[i]/tdel),
// overwriting out[0:ncols]. One row-major pass over the cached conductance
// matrix serves every column; each column accumulates its terms in ascending
// row order, so the results are bit-identical to per-column ColumnDot calls.
// The kernel allocates nothing.
func (x *Crossbar) DotColumns(scaled []float64, col0, ncols int, out []float64) {
	if col0 < 0 || ncols < 0 || col0+ncols > x.B {
		panic(fmt.Sprintf("reram: columns [%d,%d) outside array", col0, col0+ncols))
	}
	if len(scaled) > x.B {
		panic(fmt.Sprintf("reram: %d input rows exceed array size %d", len(scaled), x.B))
	}
	if len(out) < ncols {
		panic("reram: DotColumns output shorter than ncols")
	}
	g := x.ensureFlat(len(scaled))
	b := x.B
	out = out[:ncols]
	for j := range out {
		out[j] = 0
	}
	// Four conductance rows per pass when all four inputs are live: the
	// fused expression is the same left-associated ascending-row fold as
	// row-at-a-time accumulation, so results stay bit-identical while the
	// out[] loads/stores amortise over four multiply-adds. Sparse quads
	// (and the tail) fall back to the per-row fold, which skips zero
	// inputs exactly like the original kernel.
	rows := len(scaled)
	i := 0
	for ; i+3 < rows; i += 4 {
		s0, s1, s2, s3 := scaled[i], scaled[i+1], scaled[i+2], scaled[i+3]
		if s0 != 0 && s1 != 0 && s2 != 0 && s3 != 0 {
			g0 := g[i*b+col0 : i*b+col0+ncols]
			g1 := g[(i+1)*b+col0 : (i+1)*b+col0+ncols]
			g2 := g[(i+2)*b+col0 : (i+2)*b+col0+ncols]
			g3 := g[(i+3)*b+col0 : (i+3)*b+col0+ncols]
			for j, gj := range g0 {
				out[j] = out[j] + s0*gj + s1*g1[j] + s2*g2[j] + s3*g3[j]
			}
			continue
		}
		for q, s := range [4]float64{s0, s1, s2, s3} {
			if s == 0 {
				continue
			}
			row := g[(i+q)*b+col0 : (i+q)*b+col0+ncols]
			for j, gj := range row {
				out[j] += s * gj
			}
		}
	}
	for ; i < rows; i++ {
		s := scaled[i]
		if s == 0 {
			continue
		}
		row := g[i*b+col0 : i*b+col0+ncols]
		for j, gj := range row {
			out[j] += s * gj
		}
	}
}

// DotColumnsBatch is the matrix–matrix kernel: it runs nvec pre-scaled input
// vectors through DotColumns in a single blocked pass over the conductance
// matrix. Vector v occupies scaled[v*istride : v*istride+rows] and its
// results land in out[v*ostride : v*ostride+ncols]. Iteration is row-major
// (conductance rows stream once for the whole batch) but each column still
// accumulates in ascending row order, so every vector's result is
// bit-identical to a DotColumns call. The kernel allocates nothing.
func (x *Crossbar) DotColumnsBatch(scaled []float64, nvec, istride, rows, col0, ncols int, out []float64, ostride int) {
	if col0 < 0 || ncols < 0 || col0+ncols > x.B {
		panic(fmt.Sprintf("reram: columns [%d,%d) outside array", col0, col0+ncols))
	}
	if rows > x.B {
		panic(fmt.Sprintf("reram: %d input rows exceed array size %d", rows, x.B))
	}
	if nvec < 0 || istride < rows || ostride < ncols {
		panic("reram: DotColumnsBatch stride shorter than vector extent")
	}
	if nvec > 0 {
		if len(scaled) < (nvec-1)*istride+rows {
			panic("reram: DotColumnsBatch input shorter than batch extent")
		}
		if len(out) < (nvec-1)*ostride+ncols {
			panic("reram: DotColumnsBatch output shorter than batch extent")
		}
	}
	g := x.ensureFlat(rows)
	b := x.B
	for v := 0; v < nvec; v++ {
		o := out[v*ostride : v*ostride+ncols]
		for j := range o {
			o[j] = 0
		}
	}
	// Four conductance rows per pass, keeping each column's accumulation
	// serial (o[j] + s0·g0[j] + s1·g1[j] + … evaluates left to right) so
	// the float result stays bit-identical to the row-at-a-time order
	// while the o[] loads/stores amortise over four multiply-adds. Quads
	// with dead inputs fall back to per-row accumulation, which skips zero
	// terms exactly like the scalar kernel; the ≤3-row tail does the same.
	i := 0
	for ; i+3 < rows; i += 4 {
		g0 := g[i*b+col0 : i*b+col0+ncols]
		g1 := g[(i+1)*b+col0 : (i+1)*b+col0+ncols]
		g2 := g[(i+2)*b+col0 : (i+2)*b+col0+ncols]
		g3 := g[(i+3)*b+col0 : (i+3)*b+col0+ncols]
		gq := [4][]float64{g0, g1, g2, g3}
		for v := 0; v < nvec; v++ {
			s0 := scaled[v*istride+i]
			s1 := scaled[v*istride+i+1]
			s2 := scaled[v*istride+i+2]
			s3 := scaled[v*istride+i+3]
			o := out[v*ostride : v*ostride+ncols]
			if s0 != 0 && s1 != 0 && s2 != 0 && s3 != 0 {
				for j, gj := range g0 {
					o[j] = o[j] + s0*gj + s1*g1[j] + s2*g2[j] + s3*g3[j]
				}
				continue
			}
			for q, s := range [4]float64{s0, s1, s2, s3} {
				if s == 0 {
					continue
				}
				for j, gj := range gq[q] {
					o[j] += s * gj
				}
			}
		}
	}
	for ; i < rows; i++ {
		grow := g[i*b+col0 : i*b+col0+ncols]
		for v := 0; v < nvec; v++ {
			s := scaled[v*istride+i]
			if s == 0 {
				continue
			}
			o := out[v*ostride : v*ostride+ncols]
			for j, gj := range grow {
				o[j] += s * gj
			}
		}
	}
}

// ProgramWeightColumns writes one weight vector (unsigned codes of
// weightBits width, one per row) into the sub-ranged column group starting
// at col0: ⌈weightBits/CellBits⌉ adjacent columns holding big-endian
// nibbles, the §IV-C MSB/LSB layout. It returns the number of columns used.
func (x *Crossbar) ProgramWeightColumns(col0 int, codes []int, weightBits int) (int, error) {
	ncols := (weightBits + x.CellBits - 1) / x.CellBits
	if col0 < 0 || col0+ncols > x.B {
		return 0, fmt.Errorf("reram: weight columns [%d,%d) outside array", col0, col0+ncols)
	}
	if len(codes) > x.B {
		return 0, fmt.Errorf("reram: %d weights exceed %d rows", len(codes), x.B)
	}
	for row, code := range codes {
		if code < 0 || code >= 1<<weightBits {
			return 0, fmt.Errorf("reram: weight code %d out of %d-bit range", code, weightBits)
		}
		for i, nb := range fixed.Split(code, weightBits, x.CellBits) {
			if err := x.Program(row, col0+i, nb); err != nil {
				return 0, err
			}
		}
	}
	return ncols, nil
}

// SubRangedDot computes the recombined dot product of the weight-column
// group at col0 against the applied input times, in code units:
// Σ over nibble columns of dot_i · 2^(CellBits·(n−1−i)). This is the digital
// shift-and-add of Fig. 6(a) ⑤ applied to exact column dots; the functional
// TIMELY pipeline in package core routes the same quantities through
// charging units and TDCs instead. The nibble-column dots come from one
// DotColumns pass over the cached conductance matrix.
func (x *Crossbar) SubRangedDot(times []float64, col0, weightBits int, tdel float64) float64 {
	ncols := (weightBits + x.CellBits - 1) / x.CellBits
	if len(times) > x.B {
		panic(fmt.Sprintf("reram: %d input rows exceed array size %d", len(times), x.B))
	}
	if cap(x.scaled) < len(times) {
		x.scaled = make([]float64, len(times))
	}
	scaled := x.scaled[:len(times)]
	for i, t := range times {
		scaled[i] = t / tdel
	}
	if cap(x.dots) < ncols {
		x.dots = make([]float64, ncols)
	}
	dots := x.dots[:ncols]
	x.DotColumns(scaled, col0, ncols, dots)
	dot := 0.0
	for i, d := range dots {
		shift := x.CellBits * (ncols - 1 - i)
		dot += d * float64(int64(1)<<shift)
	}
	return dot
}
