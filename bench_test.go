package repro

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§VI), regenerating the corresponding rows/series each
// iteration, plus micro-benchmarks of the simulator hot paths and the
// serial-vs-parallel RunAll comparison. Key reproduced quantities are
// attached as custom benchmark metrics so the bench output doubles as a
// results summary. Per-artifact benchmarks share the experiments package's
// memoized inputs across iterations; the RunAll benchmarks reset those
// caches each iteration to time cold, end-to-end executions.

import (
	"context"
	"io"
	"runtime"
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func renderNull(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Render(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1c regenerates the peak efficiency/density landscape.
func BenchmarkFig1c(b *testing.B) { renderNull(b, "fig1c") }

// BenchmarkFig4 regenerates the access counts and baseline breakdowns.
func BenchmarkFig4(b *testing.B) { renderNull(b, "fig4") }

// BenchmarkFig5 regenerates the per-datum energy comparison.
func BenchmarkFig5(b *testing.B) { renderNull(b, "fig5") }

// BenchmarkTable4 regenerates the peak performance comparison.
func BenchmarkTable4(b *testing.B) { renderNull(b, "table4") }

// BenchmarkFig8a regenerates the 15-benchmark energy-efficiency comparison
// and reports the two geometric means as metrics (paper: 10.0 and 14.8).
func BenchmarkFig8a(b *testing.B) {
	var geo experiments.Fig8aRow
	for i := 0; i < b.N; i++ {
		var err error
		_, geo, err = experiments.Fig8a(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(geo.OverPrime, "x_over_PRIME")
	b.ReportMetric(geo.OverIsaac, "x_over_ISAAC")
}

// BenchmarkFig8b regenerates the throughput comparison across 8 CNNs and
// three chip configurations, reporting the VGG-D 16-chip ratios.
func BenchmarkFig8b(b *testing.B) {
	var rows []experiments.Fig8bRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig8b(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Network == "VGG-D" && r.Chips == 16 {
			b.ReportMetric(r.OverPrime, "x_over_PRIME_vggd16")
			b.ReportMetric(r.OverIsaac, "x_over_ISAAC_vggd16")
		}
	}
}

// BenchmarkFig9 regenerates the innovation-effectiveness analysis and
// reports the ALB+O2IR share of savings (paper: 99 %).
func BenchmarkFig9(b *testing.B) {
	var f *experiments.Fig9
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.RunFig9(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*f.SavingALBO2IR, "pct_saving_ALB_O2IR")
	b.ReportMetric(100*(1-f.TimelyInterfaceFJ/f.PrimeInterfaceFJ), "pct_interface_reduction")
}

// BenchmarkTable5 regenerates the O2IR input-read comparison.
func BenchmarkTable5(b *testing.B) { renderNull(b, "table5") }

// BenchmarkFig10 regenerates the area breakdowns.
func BenchmarkFig10(b *testing.B) { renderNull(b, "fig10") }

// BenchmarkFig11 regenerates the PRIME retrofit experiment and reports the
// intra-bank reduction (paper: 68 %).
func BenchmarkFig11(b *testing.B) {
	var r experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunFig11(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.Reduction, "pct_intrabank_reduction")
}

// BenchmarkAccuracy runs the §VI-B noise study (training included) and
// reports the design-point accuracy loss in percentage points.
func BenchmarkAccuracy(b *testing.B) {
	var res *experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAccuracy(context.Background(), 2020, 3, stats.SamplerDefault)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Loss, "pp_accuracy_loss")
}

// BenchmarkAblation runs the §V design-choice ablations (γ sweep, defect
// sweep with CNN training, signed-scheme table).
func BenchmarkAblation(b *testing.B) { renderNull(b, "ablation") }

// --- whole-suite runner benchmarks ---

// benchRunAll times one cold execution of the full registry per iteration
// at the given worker count (caches reset so nothing is amortised away).
func benchRunAll(b *testing.B, par int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		experiments.ResetCaches()
		for _, r := range experiments.Run(context.Background(), experiments.All(), experiments.Options{Par: par}) {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.Experiment.ID, r.Err)
			}
		}
	}
}

// BenchmarkRunAllSerial times the full artifact suite on one worker.
func BenchmarkRunAllSerial(b *testing.B) { benchRunAll(b, 1) }

// BenchmarkRunAllParallel times the full artifact suite on GOMAXPROCS
// workers; compare against BenchmarkRunAllSerial for the speedup.
func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, runtime.GOMAXPROCS(0)) }

// --- simulator micro-benchmarks ---

// BenchmarkFunctionalConv measures the functional analog pipeline on a
// small convolution (the verification workhorse).
func BenchmarkFunctionalConv(b *testing.B) {
	rng := stats.NewRNG(1)
	in := tensor.NewInt(3, 8, 8)
	for i := range in.Data {
		in.Data[i] = int32(rng.Intn(256))
	}
	f := tensor.NewFilter(8, 3, 3, 3)
	for i := range f.Data {
		f.Data[i] = int32(rng.Intn(255)) - 127
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunConv(core.IdealOptions(nil), in, f, 1, 1, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticVGGD measures one analytic TIMELY evaluation of VGG-D.
func BenchmarkAnalyticVGGD(b *testing.B) {
	vgg := model.VGG("D")
	t8 := accel.NewTimely(8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t8.Evaluate(vgg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticSuite measures a full 15-network, 4-model sweep.
func BenchmarkAnalyticSuite(b *testing.B) {
	nets := model.Benchmarks()
	for i := 0; i < b.N; i++ {
		for _, n := range nets {
			if _, err := accel.NewTimely(8, 1).Evaluate(n); err != nil {
				b.Fatal(err)
			}
			if _, err := accel.NewPrime(1).Evaluate(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkReferenceConv measures the integer reference convolution.
func BenchmarkReferenceConv(b *testing.B) {
	rng := stats.NewRNG(1)
	in := tensor.NewInt(64, 28, 28)
	for i := range in.Data {
		in.Data[i] = int32(rng.Intn(256))
	}
	f := tensor.NewFilter(64, 64, 3, 3)
	for i := range f.Data {
		f.Data[i] = int32(rng.Intn(255)) - 127
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2D(in, f, nil, 1, 1)
	}
}
