package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs a Backend from a resolved configuration. It must
// validate the configuration — including rejecting options that do not
// apply to it — and return a Backend safe for concurrent use.
type Factory func(cfg *Config) (Backend, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a backend factory under a unique name. The built-in
// backends self-register at init; external packages may add their own.
// Registering an empty name, a nil factory, or a taken name is an error.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("%w: empty backend name", ErrInvalidOption)
	}
	if f == nil {
		return fmt.Errorf("%w: nil factory for backend %q", ErrInvalidOption, name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateBackend, name)
	}
	registry[name] = f
	return nil
}

// mustRegister backs the built-in init registrations.
func mustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Open constructs the named backend with the given options applied over
// the defaults (Table II design point, one chip, design-point noise, five
// Monte-Carlo trials). It fails with ErrUnknownBackend for unregistered
// names and ErrInvalidOption for out-of-range or inapplicable options.
func Open(name string, opts ...Option) (Backend, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownBackend, name, Backends())
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return f(&cfg)
}
