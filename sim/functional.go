package sim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func init() {
	mustRegister("functional", newFunctional)
}

// Functional-backend Monte-Carlo defaults: the seeds align with the
// experiment suite's accuracy and defect studies, so a default facade
// evaluation shares their memoized trained classifiers.
const (
	defaultMLPSeed = 2020
	defaultCNNSeed = 5
)

// functional serves the noise/fault Monte-Carlo simulator: synthetic
// workloads trained in float, quantised onto TIMELY's 8-bit datapath and
// executed through the functional analog pipeline.
type functional struct {
	cfg Config
}

func newFunctional(cfg *Config) (Backend, error) {
	if err := cfg.reject("functional", optBits, optChips, optSubChips, optGamma, optImages, optTrace); err != nil {
		return nil, err
	}
	return &functional{cfg: *cfg}, nil
}

// sampler returns the configured sampling regime (the counter-based v3
// unless WithSampler chose otherwise).
func (f *functional) sampler() stats.SamplerVersion {
	return f.cfg.Sampler.Resolve()
}

// Name implements Backend.
func (f *functional) Name() string { return "functional" }

// Networks implements Backend: the two synthetic §VI-B workloads.
func (f *functional) Networks() []string { return []string{"cnn", "mlp"} }

// seed returns the Monte-Carlo base seed: the explicit one, or the
// workload's experiment-suite default.
func (f *functional) seed(def uint64) uint64 {
	if f.cfg.IsSet(optSeed) {
		return f.cfg.Seed
	}
	return def
}

// Evaluate implements Backend.
//
// "mlp" is the §VI-B accuracy study: the noise-aware-trained synthetic
// classifier under injected circuit noise (WithNoise sweeps ε; faults do
// not apply). "cnn" is the stuck-at-fault study: the synthetic-image CNN
// mapped onto faulty crossbars (WithFaultRate sweeps the defect level;
// timing noise does not apply). Both are averaged over WithTrials
// independent Monte-Carlo draws and are deterministic per seed.
func (f *functional) Evaluate(ctx context.Context, network string) (*EvalResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	out := &EvalResult{Backend: "functional", Network: network}
	switch network {
	case "mlp":
		if f.cfg.IsSet(optFaultRate) {
			return nil, fmt.Errorf("%w: fault injection applies to the \"cnn\" workload, not %q",
				ErrInvalidOption, network)
		}
		r, err := experiments.AnalogMLPAccuracy(ctx, f.seed(defaultMLPSeed), f.cfg.Trials, f.cfg.NoisePS, f.sampler())
		if err != nil {
			return nil, err
		}
		out.Accuracy = mlpAccuracyStats(r)
	case "cnn":
		if f.cfg.IsSet(optNoise) {
			return nil, fmt.Errorf("%w: timing noise applies to the \"mlp\" workload, not %q",
				ErrInvalidOption, network)
		}
		r, err := experiments.AnalogCNNAccuracy(ctx, f.seed(defaultCNNSeed), f.cfg.Trials, f.cfg.FaultRate, f.sampler())
		if err != nil {
			return nil, err
		}
		out.Accuracy = cnnAccuracyStats(r)
	default:
		return nil, fmt.Errorf("%w: %q (the functional backend runs \"mlp\" or \"cnn\")",
			ErrUnknownNetwork, network)
	}
	out.ElapsedMS = elapsedMS(start)
	return out, nil
}

// mlpAccuracyStats converts the §VI-B accuracy study's result to the wire
// form — one assembly shared by the single and group evaluation paths, so
// batched responses cannot drift from unbatched ones.
func mlpAccuracyStats(r *experiments.AccuracyResult) *AccuracyStats {
	return &AccuracyStats{
		Float:          r.FloatAcc,
		Int:            r.IntAcc,
		Analog:         r.AnalogAcc,
		AnalogP10:      r.AccP10,
		AnalogP50:      r.AccP50,
		AnalogP90:      r.AccP90,
		LossPP:         r.Loss * 100,
		CascadeErrorPS: r.CascadeErrorPS,
		MarginPS:       r.MarginPS,
		Trials:         r.Trials,
		Sampler:        r.Sampler.String(),
	}
}

// cnnAccuracyStats converts the defect study's result to the wire form.
func cnnAccuracyStats(r *experiments.DefectResult) *AccuracyStats {
	return &AccuracyStats{
		Int:       r.IntAcc,
		Analog:    r.AnalogAcc,
		AnalogP10: r.AccP10,
		AnalogP50: r.AccP50,
		AnalogP90: r.AccP90,
		LossPP:    (r.IntAcc - r.AnalogAcc) * 100,
		Faults:    r.Faults,
		Trials:    r.Trials,
		Sampler:   r.Sampler.String(),
	}
}
