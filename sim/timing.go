package sim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/params"
	"repro/internal/timing"
	"repro/internal/trace"
)

func init() {
	mustRegister("timing", newTiming)
}

// TraceSpan is one unit-occupancy interval of the event-driven simulation —
// the shared trace vocabulary (see internal/trace.Span) re-exported so
// WithTraceSink callers need not import internal packages.
type TraceSpan = trace.Span

// TimingLayer is one pipeline stage's cycle-level measurement.
type TimingLayer struct {
	// Name is the layer name.
	Name string `json:"name"`
	// Instances is the weight-duplication count simulated.
	Instances int `json:"instances"`
	// SubChips is the sub-chip count of one instance.
	SubChips int `json:"sub_chips"`
	// WavesPerImage is the per-instance wave count per image.
	WavesPerImage int64 `json:"waves_per_image"`
	// ServiceCyclesPerImage is the effective steady-state service time in
	// pipeline cycles (waves / instances).
	ServiceCyclesPerImage float64 `json:"service_cycles_per_image"`
	// UtilizationPct is the stage's pace-setting DTC bank occupancy over
	// the makespan (≈100 % for the bottleneck stage).
	UtilizationPct float64 `json:"utilization_pct"`
	// StallCyclesPerImage is the measured fill/starvation stall per image.
	StallCyclesPerImage float64 `json:"stall_cycles_per_image"`
}

// TimingUnitClass aggregates utilization per hardware-unit role.
type TimingUnitClass struct {
	// Role is the command kind the units execute ("dtc_convert", ...).
	Role string `json:"role"`
	// Units is the exclusive-unit count of the role.
	Units int `json:"units"`
	// UtilizationPct is summed busy time over units × makespan.
	UtilizationPct float64 `json:"utilization_pct"`
}

// TimingStats is the event-driven backend's cycle-level measurement block:
// everything the closed-form analytic model cannot report.
type TimingStats struct {
	// Images is the image count simulated (after instance-round widening).
	Images int `json:"images"`
	// Commands is the executed command count.
	Commands int `json:"commands"`
	// CycleNS is the nominal pipeline-cycle time in ns.
	CycleNS float64 `json:"cycle_ns"`
	// MakespanMS is the virtual wall-clock of the whole run in ms.
	MakespanMS float64 `json:"makespan_ms"`
	// CyclesPerImage is the measured steady-state initiation interval in
	// pipeline cycles; AnalyticCyclesPerImage is the closed-form bottleneck
	// for the same deployment, and ThroughputDeltaPct their relative gap.
	CyclesPerImage         float64 `json:"cycles_per_image"`
	AnalyticCyclesPerImage float64 `json:"analytic_cycles_per_image"`
	ThroughputDeltaPct     float64 `json:"throughput_delta_pct"`
	// FillCycles is the pipeline fill depth (first image's latency) in
	// pipeline cycles.
	FillCycles float64 `json:"fill_cycles"`
	// LatencyP50MS/P95/P99 summarise the per-image end-to-end latency
	// distribution in milliseconds.
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	// Layers is the per-stage detail in network order.
	Layers []TimingLayer `json:"layers"`
	// Units is the per-role utilization aggregate in command-set order.
	Units []TimingUnitClass `json:"units"`
}

// timingBackend is the cycle-level event-driven simulator behind
// sim.Open("timing"): the analytic TIMELY energy model composed with the
// internal/timing command-set simulation, so one result carries both the
// closed-form energy ledger and the measured cycle-level behaviour.
type timingBackend struct {
	// energy is the analytic TIMELY view of the same deployment; it keeps
	// its backend name so the shared memoization caches stay keyed under
	// "timely".
	energy analytic
	cfg    Config
}

func newTiming(cfg *Config) (Backend, error) {
	if err := cfg.reject("timing", optNoise, optFaultRate, optSeed, optTrials, optSampler); err != nil {
		return nil, err
	}
	return &timingBackend{energy: analytic{name: "timely", cfg: *cfg}, cfg: *cfg}, nil
}

// Name implements Backend.
func (t *timingBackend) Name() string { return "timing" }

// Networks implements Backend: the same catalogue as the analytic
// backends — the Table III suite plus registered custom networks.
func (t *timingBackend) Networks() []string { return t.energy.Networks() }

// timelyCfg resolves the deployment the simulation models.
func (t *timingBackend) timelyCfg() params.TimelyConfig {
	cfg := params.DefaultTimely(t.cfg.Bits)
	cfg.Chips = t.cfg.Chips
	if t.cfg.IsSet(optSubChips) {
		cfg.SubChips = t.cfg.SubChips
	}
	if t.cfg.IsSet(optGamma) {
		cfg.Gamma = t.cfg.Gamma
	}
	return cfg
}

// Evaluate implements Backend.
func (t *timingBackend) Evaluate(ctx context.Context, network string) (*EvalResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	if n, err := model.ByName(network); err == nil {
		return t.finish(ctx, start, n, false)
	}
	if n, ok := registeredNetwork(network); ok {
		return t.finish(ctx, start, n, true)
	}
	return nil, fmt.Errorf("%w: %q (backend %q evaluates the Table III suite and registered custom networks)",
		ErrUnknownNetwork, network, "timing")
}

// EvaluateSpec implements SpecEvaluator.
func (t *timingBackend) EvaluateSpec(ctx context.Context, spec *NetworkSpec) (*EvalResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	if spec == nil {
		return nil, fmt.Errorf("%w: nil spec", ErrInvalidSpec)
	}
	n, err := spec.Compile()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidSpec, err)
	}
	return t.finish(ctx, start, n, true)
}

// finish runs the analytic evaluation for the energy ledger, then the
// event-driven simulation for the measured timing, and merges them: the
// throughput-derived fields switch to the measured rate, and the Timing
// block carries everything only the simulation can know.
func (t *timingBackend) finish(ctx context.Context, start time.Time, n *model.Network, custom bool) (*EvalResult, error) {
	out, err := t.energy.finish(start, n, custom)
	if err != nil {
		return nil, err
	}
	res, err := timing.Simulate(ctx, n, t.timelyCfg(), timing.Options{Images: t.cfg.Images}, t.cfg.TraceSink)
	if err != nil {
		return nil, fmt.Errorf("sim: timing/%s: %w", n.Name, err)
	}
	out.Backend = "timing"
	out.ImagesPerSec = res.ImagesPerSec
	out.PowerWatts = out.EnergyMJPerImage * 1e-3 * res.ImagesPerSec
	out.Timing = newTimingStats(res)
	out.ElapsedMS = elapsedMS(start)
	return out, nil
}

// newTimingStats converts the internal measurement into the JSON block.
func newTimingStats(res *timing.Result) *TimingStats {
	ts := &TimingStats{
		Images:                 res.Images,
		Commands:               res.Commands,
		CycleNS:                res.CycleTimePS / 1000,
		MakespanMS:             float64(res.MakespanPS) * 1e-9,
		CyclesPerImage:         res.CyclesPerImage,
		AnalyticCyclesPerImage: res.AnalyticCyclesPerImage,
		ThroughputDeltaPct:     res.ThroughputDeltaPct,
		FillCycles:             res.FillCycles,
		LatencyP50MS:           res.LatencyP50PS * 1e-9,
		LatencyP95MS:           res.LatencyP95PS * 1e-9,
		LatencyP99MS:           res.LatencyP99PS * 1e-9,
	}
	for _, l := range res.Layers {
		ts.Layers = append(ts.Layers, TimingLayer{
			Name:                  l.Name,
			Instances:             l.Instances,
			SubChips:              l.SubChips,
			WavesPerImage:         l.WavesPerImage,
			ServiceCyclesPerImage: l.ServiceCyclesPerImage,
			UtilizationPct:        l.UtilizationPct,
			StallCyclesPerImage:   l.StallCyclesPerImage,
		})
	}
	for _, r := range res.Roles {
		ts.Units = append(ts.Units, TimingUnitClass{
			Role:           r.Kind.String(),
			Units:          r.Units,
			UtilizationPct: r.UtilizationPct,
		})
	}
	return ts
}
