package sim

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// FuzzEvalRequest decodes arbitrary JSON into an EvalRequest and drives it
// through Evaluate under an already-cancelled context: every option and
// request-shape validation path runs, the Monte-Carlo backends bail out
// before any heavy work, and whatever comes back must be a typed sentinel
// (the contract timelyd relies on to map errors to HTTP statuses) or the
// context error — never a panic, never an anonymous error.
func FuzzEvalRequest(f *testing.F) {
	for _, s := range []string{
		`{"backend":"functional","network":"mlp","trials":2}`,
		`{"backend":"functional","network":"cnn","fault_rate":0.01,"sampler":"v3"}`,
		`{"backend":"functional","network":"mlp","sampler":"bogus"}`,
		`{"backend":"timely","network":"VGG-D"}`,
		`{"backend":"timely","network":"VGG-D","sampler":"v2"}`,
		`{"backend":"prime","network":"nope"}`,
		`{"backend":"","network":"mlp"}`,
		`{"backend":"functional","network":"mlp","trials":-3}`,
		`{"backend":"functional","network":"mlp","noise_ps":-1}`,
		`{"backend":"timely","spec":{"name":"x","input":{"c":1,"h":4,"w":4},"layers":[{"kind":"fc","units":2}]}}`,
		`{"backend":"functional","spec":{"name":"x","input":{"c":1,"h":4,"w":4},"layers":[{"kind":"fc","units":2}]}}`,
		`{"backend":"timely","network":"y","spec":{"name":"x","input":{"c":1,"h":4,"w":4},"layers":[]}}`,
	} {
		f.Add([]byte(s))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f.Fuzz(func(t *testing.T, data []byte) {
		var req EvalRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // not a request; the decoder's rejection is the contract
		}
		res, err := Evaluate(ctx, &req)
		if err == nil {
			if res == nil {
				t.Fatal("Evaluate returned neither result nor error")
			}
			return // analytic backends complete instantly; fine
		}
		for _, sentinel := range []error{
			ErrUnknownBackend, ErrUnknownNetwork, ErrInvalidOption,
			ErrInvalidSpec, ErrRegistryFull, context.Canceled,
		} {
			if errors.Is(err, sentinel) {
				return
			}
		}
		t.Fatalf("Evaluate returned an untyped error for %q: %v", data, err)
	})
}
