package sim

import (
	"fmt"
	"math"

	"repro/internal/params"
	"repro/internal/stats"
)

// Config is the resolved backend configuration a Factory receives. Fields
// left at their Open defaults are distinguishable from explicitly-set ones
// via IsSet, so factories can reject options that do not apply to them.
type Config struct {
	// Bits is the operand precision (timely; Table II evaluates 8 and 16).
	Bits int
	// Chips is the deployment size.
	Chips int
	// SubChips is χ, sub-chips per chip; 0 keeps the Table II default.
	SubChips int
	// Gamma is the DTC/TDC sharing factor; 0 keeps the Table II default.
	Gamma int
	// NoisePS is the per-X-subBuf timing error ε in ps (functional).
	NoisePS float64
	// FaultRate is the stuck-at cell fraction in [0,1] (functional).
	FaultRate float64
	// Seed is the Monte-Carlo base seed (functional); each workload has
	// its own default aligned with the experiment suite.
	Seed uint64
	// Trials is the Monte-Carlo repeat count (functional).
	Trials int
	// Sampler is the Monte-Carlo sampling regime (functional); the
	// counter-based v3 by default, v1/v2 for the earlier byte-pinned
	// streams.
	Sampler stats.SamplerVersion
	// Images is the image count the event-driven simulation pushes through
	// the pipeline (timing); 0 keeps the backend default.
	Images int
	// TraceSink receives per-command occupancy spans as the event-driven
	// simulation completes them (timing).
	TraceSink func(TraceSpan)

	set map[string]bool
}

// option keys used for applicability tracking.
const (
	optBits      = "bits"
	optChips     = "chips"
	optSubChips  = "sub_chips"
	optGamma     = "gamma"
	optNoise     = "noise_ps"
	optFaultRate = "fault_rate"
	optSeed      = "seed"
	optTrials    = "trials"
	optSampler   = "sampler"
	optImages    = "images"
	optTrace     = "trace"
)

func (c *Config) mark(key string) {
	if c.set == nil {
		c.set = map[string]bool{}
	}
	c.set[key] = true
}

// IsSet reports whether the named option was passed to Open explicitly.
func (c *Config) IsSet(key string) bool { return c.set[key] }

// reject returns ErrInvalidOption if any of the named options was set —
// the applicability check factories run for options foreign to them.
func (c *Config) reject(backend string, keys ...string) error {
	for _, k := range keys {
		if c.IsSet(k) {
			return fmt.Errorf("%w: %s does not apply to the %q backend", ErrInvalidOption, k, backend)
		}
	}
	return nil
}

// defaultConfig seeds Open: the Table II design point at one chip, with
// the paper's design-point noise and the experiment suite's trial count.
func defaultConfig() Config {
	return Config{
		Bits:    8,
		Chips:   1,
		NoisePS: params.DefaultXSubBufSigma,
		Trials:  5,
		Sampler: stats.SamplerV3,
	}
}

// Option configures a backend at Open. Options validate eagerly: an
// out-of-range value fails Open with ErrInvalidOption.
type Option func(*Config) error

// WithBits sets the operand precision of the TIMELY model (the paper
// evaluates 8- and 16-bit operands).
func WithBits(n int) Option {
	return func(c *Config) error {
		if n != 8 && n != 16 {
			return fmt.Errorf("%w: bits must be 8 or 16, got %d", ErrInvalidOption, n)
		}
		c.Bits = n
		c.mark(optBits)
		return nil
	}
}

// WithChips sets the deployment size (Fig. 8(b) evaluates 16/32/64).
func WithChips(n int) Option {
	return func(c *Config) error {
		if n < 1 || n > 4096 {
			return fmt.Errorf("%w: chips must be in [1,4096], got %d", ErrInvalidOption, n)
		}
		c.Chips = n
		c.mark(optChips)
		return nil
	}
}

// WithSubChips overrides χ, the sub-chip count per chip (timely only).
func WithSubChips(n int) Option {
	return func(c *Config) error {
		if n < 1 || n > 4096 {
			return fmt.Errorf("%w: sub-chips must be in [1,4096], got %d", ErrInvalidOption, n)
		}
		c.SubChips = n
		c.mark(optSubChips)
		return nil
	}
}

// WithGamma overrides the DTC/TDC sharing factor (timely only; Table II's
// point is 8).
func WithGamma(n int) Option {
	return func(c *Config) error {
		if n < 1 || n > 256 {
			return fmt.Errorf("%w: gamma must be in [1,256], got %d", ErrInvalidOption, n)
		}
		c.Gamma = n
		c.mark(optGamma)
		return nil
	}
}

// WithNoise sets the per-X-subBuf timing error ε in ps for the functional
// backend's Monte-Carlo noise injection; 0 is an ideal-timing run. The
// default is the paper's design point.
func WithNoise(epsPS float64) Option {
	return func(c *Config) error {
		if epsPS < 0 || math.IsNaN(epsPS) || math.IsInf(epsPS, 0) {
			return fmt.Errorf("%w: noise epsilon must be a finite value >= 0 ps, got %v", ErrInvalidOption, epsPS)
		}
		c.NoisePS = epsPS
		c.mark(optNoise)
		return nil
	}
}

// WithFaultRate sets the stuck-at cell fraction the functional backend
// injects into the crossbars before mapping the CNN workload.
func WithFaultRate(rate float64) Option {
	return func(c *Config) error {
		if rate < 0 || rate > 1 || math.IsNaN(rate) {
			return fmt.Errorf("%w: fault rate must be in [0,1], got %v", ErrInvalidOption, rate)
		}
		c.FaultRate = rate
		c.mark(optFaultRate)
		return nil
	}
}

// WithSeed fixes the functional backend's Monte-Carlo base seed. Equal
// seeds reproduce results exactly at any concurrency level.
func WithSeed(seed uint64) Option {
	return func(c *Config) error {
		c.Seed = seed
		c.mark(optSeed)
		return nil
	}
}

// WithTrials sets the functional backend's Monte-Carlo repeat count.
func WithTrials(n int) Option {
	return func(c *Config) error {
		if n < 1 || n > 1000 {
			return fmt.Errorf("%w: trials must be in [1,1000], got %d", ErrInvalidOption, n)
		}
		c.Trials = n
		c.mark(optTrials)
		return nil
	}
}

// WithImages sets how many images the timing backend's event-driven
// simulation pushes through the pipeline. More images sharpen the
// steady-state measurement and the latency percentiles at proportional
// simulation cost; the backend widens the count as needed to cover at
// least three full rounds of every replicated instance.
func WithImages(n int) Option {
	return func(c *Config) error {
		if n < 1 || n > 4096 {
			return fmt.Errorf("%w: images must be in [1,4096], got %d", ErrInvalidOption, n)
		}
		c.Images = n
		c.mark(optImages)
		return nil
	}
}

// WithTraceSink registers a callback that receives every command's
// realised unit occupancy as the timing backend's event-driven simulation
// completes it — the per-wave trace stream `timely evaluate -trace`
// serializes. The stream is deterministic: equal configurations emit
// identical spans in identical order.
func WithTraceSink(fn func(TraceSpan)) Option {
	return func(c *Config) error {
		if fn == nil {
			return fmt.Errorf("%w: nil trace sink", ErrInvalidOption)
		}
		c.TraceSink = fn
		c.mark(optTrace)
		return nil
	}
}

// WithSampler selects the functional backend's Monte-Carlo sampling regime
// by name: "v3" (the default) keys a counter-based Philox generator by the
// study's (seed, trial, grid slot) coordinates, so every trial's stream is
// independently computable and results are byte-stable at any worker
// count; "v2" draws realised fault maps with sublinear O(faults) binomial
// sampling and circuit noise through a Ziggurat Gaussian from serial
// splitmix streams; "v1" reproduces the legacy per-cell Bernoulli /
// Box-Muller deviate streams byte for byte (the regime the original
// goldens were captured under). The regimes are statistically equivalent —
// equal seeds give different deviates but the same fault-count and noise
// distributions — so sweeps are comparable across them; pick v1/v2 only
// when exact reproducibility of their pinned streams matters.
func WithSampler(version string) Option {
	return func(c *Config) error {
		v, err := stats.ParseSamplerVersion(version)
		if err != nil {
			return fmt.Errorf("%w: sampler must be \"v1\", \"v2\" or \"v3\", got %q", ErrInvalidOption, version)
		}
		c.Sampler = v.Resolve()
		c.mark(optSampler)
		return nil
	}
}
