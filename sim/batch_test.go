package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func uintp(v uint64) *uint64 { return &v }

func TestKeysBatchAndCache(t *testing.T) {
	base := func() *EvalRequest {
		return &EvalRequest{Backend: "functional", Network: "cnn", Trials: 2}
	}
	cacheA, batchA, err := base().Keys()
	if err != nil {
		t.Fatal(err)
	}
	// Distinct seeds share the batch key (they group) but not the cache key
	// (they never dedup).
	r1, r2 := base(), base()
	r1.Seed, r2.Seed = uintp(1), uintp(2)
	cache1, batch1, err := r1.Keys()
	if err != nil {
		t.Fatal(err)
	}
	cache2, batch2, _ := r2.Keys()
	if batch1 != batch2 {
		t.Errorf("distinct seeds split the batch key:\n%s\n%s", batch1, batch2)
	}
	if cache1 == cache2 {
		t.Errorf("distinct seeds shared a cache key: %s", cache1)
	}
	// A set seed is a different class from an unset one (set-ness is part of
	// the batch key), and the unset request still has a usable cache key.
	if batchA == batch1 {
		t.Errorf("seed-set and seed-unset requests shared a batch key")
	}
	if cacheA == cache1 {
		t.Errorf("seed-set and seed-unset requests shared a cache key")
	}
	// Any other raw-field difference splits the batch key.
	r3 := base()
	r3.Trials = 3
	_, batch3, _ := r3.Keys()
	if batch3 == batchA {
		t.Errorf("different trials shared a batch key")
	}
}

func TestKeysSpecHashIdentity(t *testing.T) {
	spec := func(name string) *NetworkSpec {
		return &NetworkSpec{
			Name:  name,
			Input: NetworkDims{C: 1, H: 12, W: 12},
			Layers: []NetworkLayer{
				{Name: "c1", Kind: "conv", Filters: 4, Kernel: 3, Pad: 1},
				{Name: "out", Kind: "fc", Units: 3},
			},
		}
	}
	a := &EvalRequest{Backend: "timely", Spec: spec("net-a")}
	b := &EvalRequest{Backend: "timely", Spec: spec("net-a")}
	cacheA, _, err := a.Keys()
	if err != nil {
		t.Fatal(err)
	}
	cacheB, _, _ := b.Keys()
	if cacheA != cacheB {
		t.Errorf("identical inline specs keyed differently")
	}
	// Same layers, different name: different response body, different key.
	c := &EvalRequest{Backend: "timely", Spec: spec("net-c")}
	cacheC, _, _ := c.Keys()
	if cacheC == cacheA {
		t.Errorf("differently-named specs shared a key")
	}
}

func TestKeysErrors(t *testing.T) {
	if _, _, err := (&EvalRequest{}).Keys(); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("no backend: %v", err)
	}
	if _, _, err := (&EvalRequest{Backend: "timely"}).Keys(); !errors.Is(err, ErrUnknownNetwork) {
		t.Errorf("no network: %v", err)
	}
	r := &EvalRequest{Backend: "timely", Network: "x",
		Spec: &NetworkSpec{Name: "y", Input: NetworkDims{C: 1, H: 4, W: 4},
			Layers: []NetworkLayer{{Name: "out", Kind: "fc", Units: 2}}}}
	if _, _, err := r.Keys(); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("name mismatch: %v", err)
	}
	bad := &EvalRequest{Backend: "timely",
		Spec: &NetworkSpec{Name: "bad", Input: NetworkDims{C: 1, H: 4, W: 4},
			Layers: []NetworkLayer{{Name: "l", Kind: "warp", Units: 2}}}}
	if _, _, err := bad.Keys(); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("invalid spec: %v", err)
	}
}

// TestKeysEscapesClientStrings: a network name crafted to mimic another
// request's key encoding must not collide with it.
func TestKeysEscapesClientStrings(t *testing.T) {
	honest := &EvalRequest{Backend: "timely", Network: "CNN-1", Bits: 8}
	forged := &EvalRequest{Backend: "timely", Network: `CNN-1"|bits=8`}
	_, bh, err := honest.Keys()
	if err != nil {
		t.Fatal(err)
	}
	_, bf, err := forged.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if bh == bf {
		t.Errorf("forged network name collided with an honest key: %s", bh)
	}
	if !strings.Contains(bf, `\"`) {
		t.Errorf("client string not escaped in key: %s", bf)
	}
}

// TestEvaluateBatchFusedIdentity: a multi-seed functional group returns,
// member by member, exactly what Evaluate returns for each request alone
// (ElapsedMS excepted — it is wall clock, zeroed before comparing).
func TestEvaluateBatchFusedIdentity(t *testing.T) {
	ctx := context.Background()
	for _, network := range []string{"mlp", "cnn"} {
		reqs := []*EvalRequest{
			{Backend: "functional", Network: network, Trials: 2},
			{Backend: "functional", Network: network, Trials: 2},
		}
		reqs[0].Seed = uintp(2020)
		reqs[1].Seed = uintp(2021)
		vals, errs := EvaluateBatch(ctx, reqs)
		for i, r := range reqs {
			if errs[i] != nil {
				t.Fatalf("%s member %d: %v", network, i, errs[i])
			}
			want, err := Evaluate(ctx, r)
			if err != nil {
				t.Fatal(err)
			}
			got := *vals[i]
			got.ElapsedMS, want.ElapsedMS = 0, 0
			if !reflect.DeepEqual(&got, want) {
				t.Errorf("%s member %d: batched %+v != single %+v", network, i, &got, want)
			}
		}
	}
}

// TestEvaluateBatchPerRequestFallback: analytic groups and error-carrying
// groups evaluate member by member with per-request errors.
func TestEvaluateBatchPerRequestFallback(t *testing.T) {
	ctx := context.Background()
	reqs := []*EvalRequest{
		{Backend: "timely", Network: "CNN-1", Chips: 2},
		{Backend: "timely", Network: "no-such-network", Chips: 2},
	}
	vals, errs := EvaluateBatch(ctx, reqs)
	if errs[0] != nil || vals[0] == nil {
		t.Fatalf("member 0: (%v, %v)", vals[0], errs[0])
	}
	want, err := Evaluate(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	got := *vals[0]
	got.ElapsedMS, want.ElapsedMS = 0, 0
	if !reflect.DeepEqual(&got, want) {
		t.Errorf("analytic batched member diverged from single")
	}
	if !errors.Is(errs[1], ErrUnknownNetwork) {
		t.Errorf("member 1 error = %v, want ErrUnknownNetwork", errs[1])
	}
}
