package sim

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

// Serving-side batch support: request identity keys for timelyd's
// coalescing layer (internal/batchq), and a group evaluation entry point
// that fuses functional requests differing only in their Monte-Carlo seed
// into one shared trial grid.

// Keys derives the request's two identity keys for the serving-side
// batching layer.
//
// The batch key names the request's batching equivalence class: backend,
// network identity (inline specs by their canonical spec hash, so
// differently-spelled but identical specs group together), every raw
// configuration field, and whether — but not to what value — the
// Monte-Carlo seed was set. Requests sharing a batch key may execute as
// one group evaluation (EvaluateBatch). The cache key extends the batch
// key with the seed value itself: it names the exact computation, and is
// what singleflight de-duplication and the result cache key on.
//
// Keys hashes the RAW request fields, not their resolved defaults: an
// explicitly-set field and an unset one are different classes, because
// backends reject options foreign to them only when explicitly set (an
// explicit bits on the functional backend is a 400; an unset one is not).
// Inline specs are compiled (and validated) here, so a handler can reject
// a malformed spec before admission; the same validation failures
// Evaluate would report are returned.
func (r *EvalRequest) Keys() (cacheKey, batchKey string, err error) {
	if r.Backend == "" {
		return "", "", fmt.Errorf("%w: request names no backend", ErrUnknownBackend)
	}
	if r.Spec == nil && r.Network == "" {
		return "", "", fmt.Errorf("%w: request names no network and carries no spec", ErrUnknownNetwork)
	}
	if r.Spec != nil && r.Network != "" && r.Network != r.Spec.Name {
		return "", "", fmt.Errorf("%w: request names network %q but the inline spec is %q",
			ErrInvalidSpec, r.Network, r.Spec.Name)
	}
	var b strings.Builder
	// Client-controlled free-form strings are %q-escaped so a crafted
	// network name or sampler spelling cannot forge another request's key.
	fmt.Fprintf(&b, "b=%q", r.Backend)
	if r.Spec != nil {
		n, cerr := r.Spec.Compile()
		if cerr != nil {
			return "", "", fmt.Errorf("%w: %w", ErrInvalidSpec, cerr)
		}
		fmt.Fprintf(&b, "|spec=%s/%q", n.SpecHash(), r.Spec.Name)
	} else {
		fmt.Fprintf(&b, "|net=%q", r.Network)
	}
	fmt.Fprintf(&b, "|bits=%d|chips=%d|sub=%d|gamma=%d", r.Bits, r.Chips, r.SubChips, r.Gamma)
	if r.NoisePS != nil {
		fmt.Fprintf(&b, "|noise=%v", *r.NoisePS)
	} else {
		b.WriteString("|noise=-")
	}
	if r.FaultRate != nil {
		fmt.Fprintf(&b, "|fault=%v", *r.FaultRate)
	} else {
		b.WriteString("|fault=-")
	}
	fmt.Fprintf(&b, "|trials=%d|sampler=%q|images=%d", r.Trials, r.Sampler, r.Images)
	if r.Seed != nil {
		b.WriteString("|seed=set")
	} else {
		b.WriteString("|seed=-")
	}
	batchKey = b.String()
	if r.Seed != nil {
		cacheKey = batchKey + "#" + strconv.FormatUint(*r.Seed, 10)
	} else {
		cacheKey = batchKey + "#-"
	}
	return cacheKey, batchKey, nil
}

// EvaluateBatch evaluates a group of requests together, returning one
// result and one error per request in order. Callers group requests by
// their shared batch key (Keys); functional "mlp"/"cnn" groups — whose
// members differ only in their Monte-Carlo seed — fuse into ONE shared
// trial grid (experiments.AnalogMLPAccuracyBatch / AnalogCNNAccuracyBatch)
// whose per-trial work fans images through the matrix–matrix ForwardBatch
// waves. Every other shape (analytic backends, single-member groups, or a
// defensively-detected heterogeneous group) evaluates member by member.
// Per-request results are byte-identical to Evaluate in every case —
// except ElapsedMS, which reports the shared group's wall clock for fused
// members.
func EvaluateBatch(ctx context.Context, reqs []*EvalRequest) ([]*EvalResult, []error) {
	vals := make([]*EvalResult, len(reqs))
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return vals, errs
	}
	if fused, ok := fuseFunctional(ctx, reqs, vals, errs); ok {
		return fused, errs
	}
	for i, r := range reqs {
		vals[i], errs[i] = Evaluate(ctx, r)
	}
	return vals, errs
}

// fuseFunctional attempts the fused functional path. It reports false when
// the group does not qualify (wrong backend or network, single member,
// heterogeneous, or an error path the per-request loop reports better).
func fuseFunctional(ctx context.Context, reqs []*EvalRequest, vals []*EvalResult, errs []error) ([]*EvalResult, bool) {
	if len(reqs) < 2 || reqs[0].Backend != "functional" || reqs[0].Spec != nil {
		return nil, false
	}
	network := reqs[0].Network
	if network != "mlp" && network != "cnn" {
		return nil, false
	}
	_, key0, err := reqs[0].Keys()
	if err != nil {
		return nil, false
	}
	for _, r := range reqs[1:] {
		_, key, err := r.Keys()
		if err != nil || key != key0 {
			return nil, false
		}
	}
	fs := make([]*functional, len(reqs))
	for i, r := range reqs {
		b, err := Open(r.Backend, r.options()...)
		if err != nil {
			return nil, false
		}
		f, ok := b.(*functional)
		if !ok {
			return nil, false
		}
		fs[i] = f
	}
	cfg := &fs[0].cfg
	// The same applicability rejections Evaluate performs; on violation the
	// per-request loop reproduces the exact error for every member.
	if network == "mlp" && cfg.IsSet(optFaultRate) {
		return nil, false
	}
	if network == "cnn" && cfg.IsSet(optNoise) {
		return nil, false
	}
	if err := ctx.Err(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return vals, true
	}
	start := time.Now()
	seeds := make([]uint64, len(fs))
	switch network {
	case "mlp":
		for i, f := range fs {
			seeds[i] = f.seed(defaultMLPSeed)
		}
		rs, err := experiments.AnalogMLPAccuracyBatch(ctx, seeds, cfg.Trials, cfg.NoisePS, fs[0].sampler())
		if err != nil {
			for i := range errs {
				errs[i] = err
			}
			return vals, true
		}
		for i, r := range rs {
			vals[i] = &EvalResult{Backend: "functional", Network: network,
				Accuracy: mlpAccuracyStats(r), ElapsedMS: elapsedMS(start)}
		}
	case "cnn":
		for i, f := range fs {
			seeds[i] = f.seed(defaultCNNSeed)
		}
		rs, err := experiments.AnalogCNNAccuracyBatch(ctx, seeds, cfg.Trials, cfg.FaultRate, fs[0].sampler())
		if err != nil {
			for i := range errs {
				errs[i] = err
			}
			return vals, true
		}
		for i, r := range rs {
			vals[i] = &EvalResult{Backend: "functional", Network: network,
				Accuracy: cnnAccuracyStats(r), ElapsedMS: elapsedMS(start)}
		}
	}
	return vals, true
}
