package sim

import (
	"context"
	"errors"
	"testing"
)

func TestWithSamplerValidation(t *testing.T) {
	for _, bad := range []string{"v4", "V1", "legacy", "2"} {
		if _, err := Open("functional", WithSampler(bad)); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("WithSampler(%q): err = %v, want ErrInvalidOption", bad, err)
		}
	}
	for _, ok := range []string{"v1", "v2", "v3", ""} {
		if _, err := Open("functional", WithSampler(ok)); err != nil {
			t.Errorf("WithSampler(%q): unexpected err %v", ok, err)
		}
	}
}

func TestWithSamplerInapplicableToAnalytic(t *testing.T) {
	for _, backend := range []string{"timely", "prime", "isaac"} {
		if _, err := Open(backend, WithSampler("v2")); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("%s: err = %v, want ErrInvalidOption", backend, err)
		}
	}
}

// TestSamplerRegimesBothEvaluate: the cnn fault study runs under every
// regime, the result echoes the regime, defaults to v3, and the regimes
// draw different fault maps (different deviate streams) while all staying
// plausible.
func TestSamplerRegimesBothEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the synthetic CNN")
	}
	ctx := context.Background()
	res := map[string]*EvalResult{}
	for _, v := range []string{"v1", "v2", "v3"} {
		b, err := Open("functional", WithTrials(2), WithFaultRate(0.01), WithSampler(v))
		if err != nil {
			t.Fatal(err)
		}
		r, err := b.Evaluate(ctx, "cnn")
		if err != nil {
			t.Fatal(err)
		}
		if r.Accuracy == nil || r.Accuracy.Sampler != v {
			t.Fatalf("sampler %s: result does not echo the regime: %+v", v, r.Accuracy)
		}
		if r.Accuracy.Analog <= 0.3 || r.Accuracy.Faults <= 0 {
			t.Fatalf("sampler %s: implausible result %+v", v, r.Accuracy)
		}
		res[v] = r
	}
	// Same integer reference (regime-independent training), different
	// realised fault maps.
	for _, v := range []string{"v2", "v3"} {
		if res["v1"].Accuracy.Int != res[v].Accuracy.Int {
			t.Errorf("integer reference differs across regimes v1/%s: %v vs %v",
				v, res["v1"].Accuracy.Int, res[v].Accuracy.Int)
		}
	}
	if res["v1"].Accuracy.Faults == res["v2"].Accuracy.Faults && res["v2"].Accuracy.Faults == res["v3"].Accuracy.Faults {
		t.Logf("note: all regimes realised identical fault counts (%d); possible but unlikely",
			res["v1"].Accuracy.Faults)
	}
	// The default regime is v3.
	b, err := Open("functional", WithTrials(2), WithFaultRate(0.01))
	if err != nil {
		t.Fatal(err)
	}
	def, err := b.Evaluate(ctx, "cnn")
	if err != nil {
		t.Fatal(err)
	}
	if def.Accuracy.Sampler != "v3" {
		t.Errorf("default sampler = %q, want v3", def.Accuracy.Sampler)
	}
	if *def.Accuracy != *res["v3"].Accuracy {
		t.Errorf("default regime result differs from explicit v3: %+v vs %+v",
			def.Accuracy, res["v3"].Accuracy)
	}
	// Percentile summary: ordered and bracketing the mean.
	a := def.Accuracy
	if a.AnalogP10 > a.AnalogP50 || a.AnalogP50 > a.AnalogP90 {
		t.Errorf("percentile summary out of order: %+v", a)
	}
}

// TestEvalRequestSampler: the JSON request form carries the regime, and an
// invalid spelling fails with the typed option error.
func TestEvalRequestSampler(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the synthetic classifiers")
	}
	ctx := context.Background()
	r, err := Evaluate(ctx, &EvalRequest{Backend: "functional", Network: "mlp", Trials: 2, Sampler: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy == nil || r.Accuracy.Sampler != "v1" {
		t.Fatalf("request sampler not honoured: %+v", r.Accuracy)
	}
	if _, err := Evaluate(ctx, &EvalRequest{Backend: "functional", Network: "mlp", Sampler: "nope"}); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("invalid sampler err = %v, want ErrInvalidOption", err)
	}
	if _, err := Evaluate(ctx, &EvalRequest{Backend: "timely", Network: "VGG-D", Sampler: "v2"}); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("sampler on analytic backend err = %v, want ErrInvalidOption", err)
	}
}
