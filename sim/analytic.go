package sim

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/accel"
	"repro/internal/area"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/params"
)

func init() {
	mustRegister("timely", newTimely)
	mustRegister("prime", newAnalytic("prime"))
	mustRegister("isaac", newAnalytic("isaac"))
}

// analytic serves the architecture-level models over the Table III
// benchmark zoo. Evaluations at the shared default design point are
// memoized process-wide together with the experiment harness.
type analytic struct {
	name string
	cfg  Config
}

// timelyBackend adds the Designer view only TIMELY has (PRIME and ISAAC
// contribute published peaks, not a parameterised design).
type timelyBackend struct {
	analytic
}

func newTimely(cfg *Config) (Backend, error) {
	if err := cfg.reject("timely", optNoise, optFaultRate, optSeed, optTrials, optSampler, optImages, optTrace); err != nil {
		return nil, err
	}
	return &timelyBackend{analytic{name: "timely", cfg: *cfg}}, nil
}

// newAnalytic builds the factory for the fixed-design baselines. Their
// precision is part of the published design (PRIME is 8-bit, ISAAC
// 16-bit), so only the deployment size is configurable.
func newAnalytic(name string) Factory {
	return func(cfg *Config) (Backend, error) {
		if err := cfg.reject(name, optBits, optSubChips, optGamma,
			optNoise, optFaultRate, optSeed, optTrials, optSampler, optImages, optTrace); err != nil {
			return nil, err
		}
		return &analytic{name: name, cfg: *cfg}, nil
	}
}

// Name implements Backend.
func (a *analytic) Name() string { return a.name }

// Networks implements Backend: the Table III benchmark suite plus every
// registered custom network.
func (a *analytic) Networks() []string {
	names := model.BenchmarkNames()
	for _, info := range RegisteredNetworks() {
		names = append(names, info.Name)
	}
	sort.Strings(names)
	return names
}

// customDesign reports whether the configuration leaves the shared
// memoized design point (χ or γ overridden).
func (a *analytic) customDesign() bool {
	return a.cfg.IsSet(optSubChips) || a.cfg.IsSet(optGamma)
}

// Evaluate implements Backend: it resolves a Table III benchmark or a
// registered custom network by name.
func (a *analytic) Evaluate(ctx context.Context, network string) (*EvalResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	if n, err := model.ByName(network); err == nil {
		return a.finish(start, n, false)
	}
	if n, ok := registeredNetwork(network); ok {
		return a.finish(start, n, true)
	}
	return nil, fmt.Errorf("%w: %q (backend %q evaluates the Table III suite and registered custom networks)",
		ErrUnknownNetwork, network, a.name)
}

// EvaluateSpec implements SpecEvaluator: compile the inline spec through
// the same path the zoo uses, then evaluate the network like any other.
func (a *analytic) EvaluateSpec(ctx context.Context, spec *NetworkSpec) (*EvalResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	if spec == nil {
		return nil, fmt.Errorf("%w: nil spec", ErrInvalidSpec)
	}
	n, err := spec.Compile()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidSpec, err)
	}
	return a.finish(start, n, true)
}

// finish evaluates a compiled network and assembles the typed result.
// Zoo benchmarks at the shared design point memoize under their Table III
// name (the cache the experiment suite shares); custom networks memoize
// under their canonical spec hash, which the result reports.
func (a *analytic) finish(start time.Time, n *model.Network, custom bool) (*EvalResult, error) {
	var res *accel.Result
	var err error
	switch {
	case a.customDesign():
		t := accel.NewTimely(a.cfg.Bits, a.cfg.Chips)
		if a.cfg.IsSet(optSubChips) {
			t.Cfg.SubChips = a.cfg.SubChips
		}
		if a.cfg.IsSet(optGamma) {
			t.Cfg.Gamma = a.cfg.Gamma
		}
		res, err = t.Evaluate(n)
	case custom:
		res, err = experiments.EvalSpec(a.name, a.cfg.Bits, a.cfg.Chips, n)
	default:
		res, err = experiments.Eval(a.name, a.cfg.Bits, a.cfg.Chips, n.Name)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: %s/%s: %w", a.name, n.Name, err)
	}
	fits := res.Fits
	out := &EvalResult{
		Backend:          a.name,
		Network:          n.Name,
		Chips:            a.cfg.Chips,
		EnergyMJPerImage: res.EnergyPerImageMJ(),
		PowerWatts:       res.AveragePowerWatts(),
		ImagesPerSec:     res.ImagesPerSec,
		TOPsPerWatt:      res.EfficiencyTOPsPerWatt(n),
		Fits:             &fits,
	}
	if custom {
		out.SpecHash = n.SpecHash()
	}
	if a.name == "timely" {
		out.AreaMM2 = a.design().ChipAreaMM2 * float64(a.cfg.Chips)
	}
	for _, c := range energy.Components() {
		ops := res.Ledger.Count(c)
		if ops == 0 {
			continue
		}
		out.EnergyBreakdown = append(out.EnergyBreakdown, ComponentEnergy{
			Component:   c.String(),
			Ops:         ops,
			MilliJoules: res.Ledger.Energy(c) * 1e-12,
		})
	}
	for _, cl := range []energy.Class{energy.ClassInput, energy.ClassPsum, energy.ClassOutput} {
		out.MovementByClass = append(out.MovementByClass, ClassEnergy{
			Class:       cl.String(),
			MilliJoules: res.Ledger.MovementByClass(cl) * 1e-12,
		})
	}
	out.ElapsedMS = elapsedMS(start)
	return out, nil
}

// design resolves the configured TIMELY design point: Table II with the
// interface banks resized to γ and the sub-chip count to χ, evaluated by
// the same area arithmetic as the §V γ ablation.
func (a *analytic) design() *Design {
	cfg := params.DefaultTimely(a.cfg.Bits)
	if a.cfg.IsSet(optGamma) {
		cfg.Gamma = a.cfg.Gamma
	}
	if a.cfg.IsSet(optSubChips) {
		cfg.SubChips = a.cfg.SubChips
	}
	d := area.TimelyDesignPoint(cfg)
	return &Design{
		Bits:               cfg.WeightBits,
		SubChipsPerChip:    cfg.SubChips,
		Gamma:              cfg.Gamma,
		CycleNS:            d.CycleNS,
		SubChipAreaMM2:     d.SubChipUM2 / 1e6,
		ChipAreaMM2:        d.SubChipUM2 / 1e6 * float64(cfg.SubChips),
		PeakTOPSPerSubChip: d.PeakTOPS,
		DensityTOPsPerMM2:  d.DensityTOPsMM2,
	}
}

// Design implements Designer for the "timely" backend.
func (t *timelyBackend) Design() *Design { return t.design() }
