package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// The declarative network-spec types, re-exported so SDK users can build
// custom workloads without reaching into internal packages. A spec is pure
// data — JSON-serializable, hashable, and compiled through one shape-
// inference path shared with the built-in Table III zoo.
type (
	// NetworkSpec describes a custom network: name, input shape, layers.
	NetworkSpec = model.Spec
	// NetworkLayer is one declarative layer of a NetworkSpec.
	NetworkLayer = model.LayerSpec
	// NetworkDims is an activation shape (channels × height × width).
	NetworkDims = model.Dims
	// SpecError is the typed validation failure Compile reports.
	SpecError = model.SpecError
)

// SpecEvaluator is implemented by backends that can evaluate arbitrary
// declarative network specs — the analytic backends. The functional
// Monte-Carlo backend runs only its two trained synthetic workloads and
// does not implement it.
type SpecEvaluator interface {
	// EvaluateSpec compiles and evaluates one custom network. Invalid
	// specs fail with ErrInvalidSpec (wrapping the *SpecError detail).
	EvaluateSpec(ctx context.Context, spec *NetworkSpec) (*EvalResult, error)
}

// NetworkInfo summarises a validated network spec: the compiled layer
// count, derived totals, and the canonical content hash that keys the
// evaluation caches. It is the response body of timelyd's POST /v1/networks.
type NetworkInfo struct {
	Name   string `json:"name"`
	Layers int    `json:"layers"`
	MACs   int64  `json:"macs"`
	Params int64  `json:"params"`
	Hash   string `json:"hash"`
}

func infoOf(n *model.Network) *NetworkInfo {
	return &NetworkInfo{
		Name:   n.Name,
		Layers: len(n.Layers),
		MACs:   n.TotalMACs(),
		Params: n.TotalParams(),
		Hash:   n.SpecHash(),
	}
}

// registeredNet is one custom registry entry: the compiled network plus
// its summary. Both are immutable after registration.
type registeredNet struct {
	net  *model.Network
	info *NetworkInfo
}

var (
	netMu      sync.RWMutex
	customNets = map[string]*registeredNet{}
)

// maxRegisteredNetworks caps the process-wide custom registry so an
// unauthenticated client looping POST /v1/networks with unique names
// cannot grow the process without bound (a variable, not a constant, so
// tests can lower it).
var maxRegisteredNetworks = 1024

// RegisterNetwork validates a custom network spec and registers it under
// its name, making it evaluable by name through every analytic backend
// (and through timelyd's /v1/evaluate). Registration is idempotent for an
// identical spec; a name that is already taken by a different network — or
// by a built-in Table III benchmark — fails with ErrDuplicateNetwork.
// Invalid specs fail with ErrInvalidSpec wrapping the *SpecError detail,
// and the registry is capped (ErrRegistryFull once 1024 networks are
// registered) so it cannot grow a long-running service without bound.
func RegisterNetwork(spec *NetworkSpec) (*NetworkInfo, error) {
	if spec == nil {
		return nil, fmt.Errorf("%w: nil spec", ErrInvalidSpec)
	}
	n, err := spec.Compile()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidSpec, err)
	}
	if _, err := model.ByName(n.Name); err == nil {
		return nil, fmt.Errorf("%w: %q is a built-in Table III benchmark", ErrDuplicateNetwork, n.Name)
	}
	info := infoOf(n)
	netMu.Lock()
	defer netMu.Unlock()
	if prev, ok := customNets[n.Name]; ok {
		if prev.info.Hash == info.Hash {
			return prev.info, nil
		}
		return nil, fmt.Errorf("%w: %q is already registered with a different layer table", ErrDuplicateNetwork, n.Name)
	}
	if len(customNets) >= maxRegisteredNetworks {
		return nil, fmt.Errorf("%w: %d networks registered, the limit is %d",
			ErrRegistryFull, len(customNets), maxRegisteredNetworks)
	}
	customNets[n.Name] = &registeredNet{net: n, info: info}
	return info, nil
}

// ZooNetworks lists the built-in Table III benchmark names in the paper's
// order.
func ZooNetworks() []string { return model.BenchmarkNames() }

// ZooSpec exports the declarative spec of a built-in Table III benchmark —
// a ready template for custom networks, and the proof that the zoo itself
// flows through the same spec pipeline. It fails with ErrUnknownNetwork
// for names outside the zoo.
func ZooSpec(name string) (*NetworkSpec, error) {
	n, err := model.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %q is not a Table III benchmark", ErrUnknownNetwork, name)
	}
	return n.Spec(), nil
}

// registeredNetwork resolves a custom-registry name. The returned network
// is shared and must not be mutated.
func registeredNetwork(name string) (*model.Network, bool) {
	netMu.RLock()
	defer netMu.RUnlock()
	e, ok := customNets[name]
	if !ok {
		return nil, false
	}
	return e.net, true
}

// RegisteredNetworks lists the custom networks registered in this process,
// sorted by name.
func RegisteredNetworks() []*NetworkInfo {
	netMu.RLock()
	defer netMu.RUnlock()
	out := make([]*NetworkInfo, 0, len(customNets))
	for _, e := range customNets {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
