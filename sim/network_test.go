package sim

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"strings"
	"testing"
)

// tinySpec is a small custom CNN that is deliberately not in the zoo.
func tinySpec(name string) *NetworkSpec {
	return &NetworkSpec{
		Name:  name,
		Input: NetworkDims{C: 3, H: 32, W: 32},
		Layers: []NetworkLayer{
			{Name: "conv1", Kind: "conv", Filters: 16, Kernel: 3, Pad: 1},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Name: "conv2", Kind: "conv", Filters: 32, Kernel: 3, Pad: 1},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Name: "fc", Kind: "fc", Units: 10},
		},
	}
}

func TestEvaluateInlineSpec(t *testing.T) {
	ctx := context.Background()
	res, err := Evaluate(ctx, &EvalRequest{Backend: "timely", Spec: tinySpec("tiny-inline")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Network != "tiny-inline" || res.EnergyMJPerImage <= 0 || res.ImagesPerSec <= 0 {
		t.Errorf("result = %+v", res)
	}
	if res.SpecHash == "" {
		t.Errorf("custom evaluation carries no spec hash")
	}
	if res.AreaMM2 <= 0 {
		t.Errorf("timely custom evaluation has no area")
	}

	// The same spec evaluates on the baselines too.
	for _, backend := range []string{"prime", "isaac"} {
		r, err := Evaluate(ctx, &EvalRequest{Backend: backend, Spec: tinySpec("tiny-inline")})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if r.EnergyMJPerImage <= 0 {
			t.Errorf("%s energy = %v", backend, r.EnergyMJPerImage)
		}
	}

	// The functional backend cannot take arbitrary specs.
	_, err = Evaluate(ctx, &EvalRequest{Backend: "functional", Spec: tinySpec("tiny-inline")})
	if !errors.Is(err, ErrInvalidOption) {
		t.Errorf("functional spec evaluation err = %v, want ErrInvalidOption", err)
	}

	// Network/spec name disagreement is rejected.
	_, err = Evaluate(ctx, &EvalRequest{Backend: "timely", Network: "other", Spec: tinySpec("tiny-inline")})
	if !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("name mismatch err = %v, want ErrInvalidSpec", err)
	}

	// An agreeing name is fine.
	if _, err := Evaluate(ctx, &EvalRequest{Backend: "timely", Network: "tiny-inline", Spec: tinySpec("tiny-inline")}); err != nil {
		t.Errorf("agreeing name rejected: %v", err)
	}

	// Invalid inline specs surface as ErrInvalidSpec with the typed detail.
	bad := tinySpec("tiny-bad")
	bad.Layers[0].Filters = 0
	_, err = Evaluate(ctx, &EvalRequest{Backend: "timely", Spec: bad})
	if !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("invalid spec err = %v, want ErrInvalidSpec", err)
	}
	var se *SpecError
	if !errors.As(err, &se) || se.Field != "filters" {
		t.Errorf("invalid spec err = %v, want wrapped *SpecError on filters", err)
	}
}

// TestEvaluateInlineSpecJSON exercises the exact wire form timelyd accepts:
// a request with an embedded spec decoded from JSON.
func TestEvaluateInlineSpecJSON(t *testing.T) {
	raw := `{
		"backend": "timely",
		"chips": 2,
		"spec": {
			"name": "wire-net",
			"input": {"c": 1, "h": 28, "w": 28},
			"layers": [
				{"name": "c1", "kind": "conv", "filters": 8, "kernel": 5},
				{"kind": "avgpool", "kernel": 2, "stride": 2},
				{"kind": "fc", "units": 10}
			]
		}
	}`
	var req EvalRequest
	if err := json.Unmarshal([]byte(raw), &req); err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Network != "wire-net" || res.Chips != 2 || res.EnergyMJPerImage <= 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestEvaluateSpecHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := Open("timely")
	if err != nil {
		t.Fatal(err)
	}
	se, ok := b.(SpecEvaluator)
	if !ok {
		t.Fatal("timely backend does not implement SpecEvaluator")
	}
	if _, err := se.EvaluateSpec(ctx, tinySpec("tiny-cancel")); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRegisterNetwork(t *testing.T) {
	info, err := RegisterNetwork(tinySpec("tiny-registered"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Layers != 5 || info.MACs <= 0 || info.Params <= 0 || info.Hash == "" {
		t.Errorf("info = %+v", info)
	}

	// Idempotent for the identical spec.
	again, err := RegisterNetwork(tinySpec("tiny-registered"))
	if err != nil {
		t.Fatalf("idempotent re-register: %v", err)
	}
	if again.Hash != info.Hash {
		t.Errorf("re-register hash changed: %s vs %s", again.Hash, info.Hash)
	}

	// Same name, different network: conflict.
	other := tinySpec("tiny-registered")
	other.Layers[0].Filters = 99
	if _, err := RegisterNetwork(other); !errors.Is(err, ErrDuplicateNetwork) {
		t.Errorf("conflicting register err = %v, want ErrDuplicateNetwork", err)
	}

	// Zoo names are reserved.
	if _, err := RegisterNetwork(tinySpec("VGG-D")); !errors.Is(err, ErrDuplicateNetwork) {
		t.Errorf("zoo-name register err = %v, want ErrDuplicateNetwork", err)
	}

	// Invalid and nil specs are rejected.
	if _, err := RegisterNetwork(nil); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("nil spec err = %v, want ErrInvalidSpec", err)
	}
	bad := tinySpec("tiny-invalid")
	bad.Layers[4].Units = 0
	if _, err := RegisterNetwork(bad); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("invalid spec err = %v, want ErrInvalidSpec", err)
	}

	// Registered networks evaluate by name on every analytic backend and
	// appear in its inventory.
	res, err := Evaluate(context.Background(), &EvalRequest{Backend: "timely", Network: "tiny-registered"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Network != "tiny-registered" || res.SpecHash != info.Hash {
		t.Errorf("registered eval = %+v, want spec hash %s", res, info.Hash)
	}
	b, err := Open("prime")
	if err != nil {
		t.Fatal(err)
	}
	names := b.Networks()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Networks() not sorted: %v", names)
	}
	found := false
	for _, n := range names {
		if n == "tiny-registered" {
			found = true
		}
	}
	if !found {
		t.Errorf("Networks() = %v, missing tiny-registered", names)
	}

	// RegisteredNetworks reports it, sorted.
	listed := false
	for _, i := range RegisteredNetworks() {
		if i.Name == "tiny-registered" && i.Hash == info.Hash {
			listed = true
		}
	}
	if !listed {
		t.Errorf("RegisteredNetworks() missing tiny-registered")
	}
}

// TestRegistryCap proves registration stops at the capacity limit with the
// typed sentinel (the cap is lowered for the test; registrations from
// other tests in this process count toward it, which is fine — the limit
// only needs to bind).
func TestRegistryCap(t *testing.T) {
	netMu.RLock()
	have := len(customNets)
	netMu.RUnlock()
	old := maxRegisteredNetworks
	maxRegisteredNetworks = have + 1
	defer func() { maxRegisteredNetworks = old }()

	if _, err := RegisterNetwork(tinySpec("tiny-cap-1")); err != nil {
		t.Fatalf("register under the cap: %v", err)
	}
	if _, err := RegisterNetwork(tinySpec("tiny-cap-2")); !errors.Is(err, ErrRegistryFull) {
		t.Errorf("register at the cap err = %v, want ErrRegistryFull", err)
	}
	// Idempotent re-registration of an existing entry still works at cap.
	if _, err := RegisterNetwork(tinySpec("tiny-cap-1")); err != nil {
		t.Errorf("idempotent re-register at cap: %v", err)
	}
}

// TestCustomDesignSpecEvaluation proves custom χ/γ design points evaluate
// inline specs directly (bypassing the shared-design cache) and differ
// from the default design.
func TestCustomDesignSpecEvaluation(t *testing.T) {
	ctx := context.Background()
	def, err := Evaluate(ctx, &EvalRequest{Backend: "timely", Spec: tinySpec("tiny-design")})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Evaluate(ctx, &EvalRequest{Backend: "timely", SubChips: 4, Spec: tinySpec("tiny-design")})
	if err != nil {
		t.Fatal(err)
	}
	if small.AreaMM2 >= def.AreaMM2 {
		t.Errorf("4-sub-chip area %v not below default %v", small.AreaMM2, def.AreaMM2)
	}
}

// TestSpecHashStableAcrossSpellings pins the facade-level canonicalization:
// the memo key must not depend on how the user spelled the spec.
func TestSpecHashStableAcrossSpellings(t *testing.T) {
	a := tinySpec("tiny-spelling")
	b := tinySpec("tiny-spelling")
	b.Layers[0].Kernel = 0
	b.Layers[0].KernelH, b.Layers[0].KernelW = 3, 3
	b.Layers[0].Stride = 1
	ra, err := Evaluate(context.Background(), &EvalRequest{Backend: "timely", Spec: a})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Evaluate(context.Background(), &EvalRequest{Backend: "timely", Spec: b})
	if err != nil {
		t.Fatal(err)
	}
	if ra.SpecHash != rb.SpecHash {
		t.Errorf("spellings hash differently: %s vs %s", ra.SpecHash, rb.SpecHash)
	}
	if ra.EnergyMJPerImage != rb.EnergyMJPerImage {
		t.Errorf("spellings evaluate differently")
	}
}

// TestZooVsSpecEquivalence proves an inline spec exported from a zoo
// network evaluates to exactly the zoo result (modulo the memo key).
func TestZooVsSpecEquivalence(t *testing.T) {
	ctx := context.Background()
	byName, err := Evaluate(ctx, &EvalRequest{Backend: "timely", Network: "CNN-1"})
	if err != nil {
		t.Fatal(err)
	}
	spec := mustZooSpec(t, "CNN-1")
	spec.Name = "cnn1-as-spec"
	bySpec, err := Evaluate(ctx, &EvalRequest{Backend: "timely", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if byName.EnergyMJPerImage != bySpec.EnergyMJPerImage ||
		byName.ImagesPerSec != bySpec.ImagesPerSec ||
		byName.TOPsPerWatt != bySpec.TOPsPerWatt {
		t.Errorf("zoo %+v != spec %+v", byName, bySpec)
	}
}

// mustZooSpec exports a zoo network's declarative spec.
func mustZooSpec(t *testing.T, name string) *NetworkSpec {
	t.Helper()
	spec, err := ZooSpec(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestZooSpecExport(t *testing.T) {
	spec, err := ZooSpec("VGG-D")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "VGG-D" || len(spec.Layers) != 21 {
		t.Errorf("ZooSpec(VGG-D) = %s with %d layers", spec.Name, len(spec.Layers))
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kind":"conv"`) {
		t.Errorf("exported spec JSON looks wrong: %s", raw[:80])
	}
	if _, err := ZooSpec("GPT-7"); !errors.Is(err, ErrUnknownNetwork) {
		t.Errorf("unknown zoo spec err = %v, want ErrUnknownNetwork", err)
	}
}
