// Package sim is the public SDK facade of the TIMELY (ISCA 2020)
// reproduction: one stable API over the three analytic accelerator models
// (TIMELY, PRIME, ISAAC) and the functional noise/fault Monte-Carlo
// simulator that live under internal/.
//
// Backends are constructed through a string-keyed registry with functional
// options:
//
//	b, err := sim.Open("timely", sim.WithBits(8), sim.WithChips(16))
//	res, err := b.Evaluate(ctx, "VGG-D")
//
// or, in one step from a JSON-serializable request (the form the timelyd
// evaluation service accepts over HTTP):
//
//	res, err := sim.Evaluate(ctx, &sim.EvalRequest{Backend: "timely", Network: "VGG-D"})
//
// Every evaluation path honours ctx: cancellation and deadlines propagate
// down into the experiment worker pools and the parallel Monte-Carlo inner
// loops, which check the context between work units. Results are
// deterministic per configuration — a context that never fires does not
// change a single output value at any concurrency level.
//
// The four built-in backends are "timely", "prime" and "isaac" (analytic
// energy/throughput/area evaluation of the Table III benchmark networks)
// and "functional" (Monte-Carlo accuracy of the synthetic "mlp" and "cnn"
// workloads on the functional analog datapath, with injected circuit noise
// and stuck-at faults). Evaluations of identical (backend, deployment,
// network) triples are memoized process-wide and shared with the
// experiment harness, so concurrent callers compute each heavy input
// exactly once.
//
// The analytic backends are network-agnostic: beyond the zoo they
// evaluate arbitrary conv/fc/pool networks described declaratively as a
// NetworkSpec — inline on a request (EvalRequest.Spec), registered by
// name (RegisterNetwork), or exported from a zoo benchmark as a template
// (ZooSpec). Specs compile through the same validated shape-inference
// path as the built-in zoo, and custom evaluations are memoized under a
// canonical spec hash.
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Sentinel errors wrapped by the facade, so callers (e.g. the timelyd
// HTTP service) can map failure classes without string matching.
var (
	// ErrUnknownBackend reports an Open or Evaluate naming no registered
	// backend.
	ErrUnknownBackend = errors.New("sim: unknown backend")
	// ErrUnknownNetwork reports an Evaluate naming a network the backend
	// cannot run.
	ErrUnknownNetwork = errors.New("sim: unknown network")
	// ErrInvalidOption reports an option that is out of range or does not
	// apply to the opened backend.
	ErrInvalidOption = errors.New("sim: invalid option")
	// ErrDuplicateBackend reports a Register under an already-taken name.
	ErrDuplicateBackend = errors.New("sim: backend already registered")
	// ErrInvalidSpec reports a custom network spec that fails validation;
	// it wraps the *SpecError naming the offending layer and field.
	ErrInvalidSpec = errors.New("sim: invalid network spec")
	// ErrDuplicateNetwork reports a RegisterNetwork under a name already
	// taken by a different network (custom or built-in).
	ErrDuplicateNetwork = errors.New("sim: network already registered")
	// ErrRegistryFull reports a RegisterNetwork rejected because the
	// process-wide custom-network registry reached its capacity.
	ErrRegistryFull = errors.New("sim: custom network registry is full")
)

// Backend evaluates networks on one simulator configuration. A Backend is
// immutable after Open and safe for concurrent use.
type Backend interface {
	// Name returns the registry key the backend was opened under.
	Name() string
	// Networks lists the model names Evaluate accepts, sorted.
	Networks() []string
	// Evaluate runs one network and returns its typed result. It honours
	// ctx between work units and returns ctx's error once it fires.
	Evaluate(ctx context.Context, network string) (*EvalResult, error)
}

// Designer is implemented by backends that expose their physical design
// point (the "timely" backend): per-sub-chip cycle time, area and peak
// throughput under the configured sharing factor γ and sub-chip count χ.
type Designer interface {
	Design() *Design
}

// Design is a backend's physical design point (Table II derived).
type Design struct {
	// Bits is the operand precision the design is evaluated at.
	Bits int `json:"bits"`
	// SubChipsPerChip is χ.
	SubChipsPerChip int `json:"sub_chips_per_chip"`
	// Gamma is the DTC/TDC sharing factor.
	Gamma int `json:"gamma"`
	// CycleNS is the pipeline cycle time in ns (γ × 25 ns).
	CycleNS float64 `json:"cycle_ns"`
	// SubChipAreaMM2 / ChipAreaMM2 are silicon areas with the interface
	// banks resized to the sharing factor.
	SubChipAreaMM2 float64 `json:"sub_chip_area_mm2"`
	ChipAreaMM2    float64 `json:"chip_area_mm2"`
	// PeakTOPSPerSubChip counts one MAC as one op.
	PeakTOPSPerSubChip float64 `json:"peak_tops_per_sub_chip"`
	// DensityTOPsPerMM2 is the resulting computational density.
	DensityTOPsPerMM2 float64 `json:"density_tops_per_mm2"`
}

// EvalRequest names one evaluation: which backend, which network, and any
// configuration overrides. The zero value of every optional field means
// "backend default"; pointer fields distinguish an explicit zero (e.g.
// noise_ps: 0 is an ideal-timing run) from an absent one.
type EvalRequest struct {
	// Backend is the registry key ("timely", "prime", "isaac", "functional").
	Backend string `json:"backend"`
	// Network names the model: a Table III benchmark or a registered
	// custom network for the analytic backends, "mlp" or "cnn" for the
	// functional one. Ignored (but checked for agreement) when Spec is set.
	Network string `json:"network"`
	// Spec carries an inline custom network. When set, the evaluation
	// compiles it and runs it on the named backend — the backend must
	// implement SpecEvaluator (the analytic backends do). Network, if also
	// set, must match the spec's name.
	Spec *NetworkSpec `json:"spec,omitempty"`
	// Bits is TIMELY's operand precision (8 or 16).
	Bits int `json:"bits,omitempty"`
	// Chips is the deployment size.
	Chips int `json:"chips,omitempty"`
	// SubChips overrides χ, the sub-chips per chip (timely only).
	SubChips int `json:"sub_chips,omitempty"`
	// Gamma overrides the DTC/TDC sharing factor (timely only).
	Gamma int `json:"gamma,omitempty"`
	// NoisePS is the per-X-subBuf timing error ε in ps (functional "mlp").
	NoisePS *float64 `json:"noise_ps,omitempty"`
	// FaultRate is the stuck-at cell fraction (functional "cnn").
	FaultRate *float64 `json:"fault_rate,omitempty"`
	// Seed fixes the Monte-Carlo base seed (functional).
	Seed *uint64 `json:"seed,omitempty"`
	// Trials is the Monte-Carlo repeat count (functional).
	Trials int `json:"trials,omitempty"`
	// Sampler selects the Monte-Carlo sampling regime (functional):
	// "v3" (the counter-based default), or "v1"/"v2" for the earlier
	// byte-pinned streams; see WithSampler.
	Sampler string `json:"sampler,omitempty"`
	// Images is the image count the event-driven simulation pushes through
	// the pipeline (timing); see WithImages.
	Images int `json:"images,omitempty"`
}

// options converts the request's set fields to functional options.
func (r *EvalRequest) options() []Option {
	var opts []Option
	if r.Bits != 0 {
		opts = append(opts, WithBits(r.Bits))
	}
	if r.Chips != 0 {
		opts = append(opts, WithChips(r.Chips))
	}
	if r.SubChips != 0 {
		opts = append(opts, WithSubChips(r.SubChips))
	}
	if r.Gamma != 0 {
		opts = append(opts, WithGamma(r.Gamma))
	}
	if r.NoisePS != nil {
		opts = append(opts, WithNoise(*r.NoisePS))
	}
	if r.FaultRate != nil {
		opts = append(opts, WithFaultRate(*r.FaultRate))
	}
	if r.Seed != nil {
		opts = append(opts, WithSeed(*r.Seed))
	}
	if r.Trials != 0 {
		opts = append(opts, WithTrials(r.Trials))
	}
	if r.Sampler != "" {
		opts = append(opts, WithSampler(r.Sampler))
	}
	if r.Images != 0 {
		opts = append(opts, WithImages(r.Images))
	}
	return opts
}

// ComponentEnergy is one hardware component's share of an analytic energy
// ledger.
type ComponentEnergy struct {
	// Component names the unit (DTC conversions, L1 reads, ...).
	Component string `json:"component"`
	// Ops is the operation count per inference.
	Ops float64 `json:"ops"`
	// MilliJoules is the component's energy per inference.
	MilliJoules float64 `json:"mj"`
}

// ClassEnergy is the data-movement energy of one data class (inputs,
// partial sums, outputs) per inference.
type ClassEnergy struct {
	Class       string  `json:"class"`
	MilliJoules float64 `json:"mj"`
}

// AccuracyStats is the functional backend's Monte-Carlo accuracy result.
type AccuracyStats struct {
	// Float is the float32 reference test accuracy (mlp only).
	Float float64 `json:"float,omitempty"`
	// Int is the 8-bit integer reference accuracy.
	Int float64 `json:"int"`
	// Analog is the analog-datapath accuracy averaged over Trials.
	Analog float64 `json:"analog"`
	// AnalogP10/P50/P90 summarise the per-trial accuracy spread.
	AnalogP10 float64 `json:"analog_p10,omitempty"`
	AnalogP50 float64 `json:"analog_p50,omitempty"`
	AnalogP90 float64 `json:"analog_p90,omitempty"`
	// LossPP is Int − Analog in percentage points.
	LossPP float64 `json:"loss_pp"`
	// CascadeErrorPS is √12·ε against MarginPS, the DTC design margin
	// (mlp only).
	CascadeErrorPS float64 `json:"cascade_error_ps,omitempty"`
	MarginPS       float64 `json:"margin_ps,omitempty"`
	// Faults is the mean realised stuck-cell count per draw (cnn only).
	Faults int `json:"faults,omitempty"`
	// Trials is the Monte-Carlo repeat count.
	Trials int `json:"trials"`
	// Sampler is the sampling regime the trials drew under
	// ("v1"/"v2"/"v3").
	Sampler string `json:"sampler,omitempty"`
}

// EvalResult is the JSON-serializable outcome of one evaluation. Analytic
// backends fill the energy/throughput/area fields; the functional backend
// fills Accuracy.
type EvalResult struct {
	Backend string `json:"backend"`
	Network string `json:"network"`
	// Chips is the deployment size evaluated (analytic backends).
	Chips int `json:"chips,omitempty"`
	// EnergyMJPerImage is the per-inference energy in millijoules.
	EnergyMJPerImage float64 `json:"energy_mj_per_image,omitempty"`
	// PowerWatts is the average power at steady-state throughput.
	PowerWatts float64 `json:"power_watts,omitempty"`
	// ImagesPerSec is the steady-state inference rate.
	ImagesPerSec float64 `json:"images_per_sec,omitempty"`
	// TOPsPerWatt is the achieved energy efficiency (1 op = 1 MAC).
	TOPsPerWatt float64 `json:"tops_per_watt,omitempty"`
	// AreaMM2 is the total deployment silicon area (timely only).
	AreaMM2 float64 `json:"area_mm2,omitempty"`
	// SpecHash is the canonical content hash of a custom network's layer
	// table — the key its evaluation is memoized under (custom networks
	// only; zoo benchmarks memoize by name).
	SpecHash string `json:"spec_hash,omitempty"`
	// Fits reports whether one instance of every layer fit the deployment
	// simultaneously (analytic backends).
	Fits *bool `json:"fits,omitempty"`
	// EnergyBreakdown lists the per-component ledger, heaviest detail the
	// paper's Fig. 9 panels are derived from.
	EnergyBreakdown []ComponentEnergy `json:"energy_breakdown,omitempty"`
	// MovementByClass splits data-movement energy by data type (Fig. 9(d)).
	MovementByClass []ClassEnergy `json:"movement_by_class,omitempty"`
	// Accuracy is the functional backend's Monte-Carlo study.
	Accuracy *AccuracyStats `json:"accuracy,omitempty"`
	// Timing is the event-driven backend's cycle-level measurement:
	// makespan, fill, per-image latency distribution, per-layer stalls and
	// per-unit utilizations ("timing" backend only).
	Timing *TimingStats `json:"timing,omitempty"`
	// ElapsedMS is the evaluation's wall-clock compute time.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Evaluate opens req.Backend with the request's options and evaluates
// req.Network — or, when req.Spec is set, compiles and evaluates the
// inline custom network. It is the one-call form of the facade, and the
// exact semantics of timelyd's POST /v1/evaluate. The variadic extra
// options apply after the request's own — the hook callers use to attach
// non-serializable options such as WithTraceSink to a JSON request.
func Evaluate(ctx context.Context, req *EvalRequest, extra ...Option) (*EvalResult, error) {
	if req.Backend == "" {
		return nil, fmt.Errorf("%w: request names no backend", ErrUnknownBackend)
	}
	if req.Spec == nil && req.Network == "" {
		return nil, fmt.Errorf("%w: request names no network and carries no spec", ErrUnknownNetwork)
	}
	if req.Spec != nil && req.Network != "" && req.Network != req.Spec.Name {
		return nil, fmt.Errorf("%w: request names network %q but the inline spec is %q",
			ErrInvalidSpec, req.Network, req.Spec.Name)
	}
	b, err := Open(req.Backend, append(req.options(), extra...)...)
	if err != nil {
		return nil, err
	}
	if req.Spec != nil {
		se, ok := b.(SpecEvaluator)
		if !ok {
			return nil, fmt.Errorf("%w: the %q backend does not evaluate custom network specs",
				ErrInvalidOption, req.Backend)
		}
		return se.EvaluateSpec(ctx, req.Spec)
	}
	return b.Evaluate(ctx, req.Network)
}

// elapsedMS is shared result-stamping for the backend implementations.
func elapsedMS(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
