package sim

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestRegisterErrorPaths(t *testing.T) {
	nop := func(*Config) (Backend, error) { return nil, nil }
	if err := Register("timely", nop); !errors.Is(err, ErrDuplicateBackend) {
		t.Errorf("duplicate register err = %v, want ErrDuplicateBackend", err)
	}
	if err := Register("", nop); err == nil {
		t.Errorf("empty-name register accepted")
	}
	if err := Register("nilfactory", nil); err == nil {
		t.Errorf("nil factory accepted")
	}
	// A fresh name registers once, then collides with itself.
	if err := Register("sim-test-backend", nop); err != nil {
		t.Fatalf("first register: %v", err)
	}
	if err := Register("sim-test-backend", nop); !errors.Is(err, ErrDuplicateBackend) {
		t.Errorf("second register err = %v, want ErrDuplicateBackend", err)
	}
}

func TestBackendsListsBuiltins(t *testing.T) {
	names := Backends()
	idx := map[string]bool{}
	for _, n := range names {
		idx[n] = true
	}
	for _, want := range []string{"functional", "isaac", "prime", "timely"} {
		if !idx[want] {
			t.Errorf("Backends() = %v, missing %q", names, want)
		}
	}
}

func TestOpenUnknownBackend(t *testing.T) {
	if _, err := Open("resistive-unicorn"); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("err = %v, want ErrUnknownBackend", err)
	}
}

func TestOptionRangeValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
	}{
		{"bits 7", WithBits(7)},
		{"bits 0", WithBits(0)},
		{"chips 0", WithChips(0)},
		{"subchips -1", WithSubChips(-1)},
		{"gamma 0", WithGamma(0)},
		{"noise -1", WithNoise(-1)},
		{"fault 1.5", WithFaultRate(1.5)},
		{"fault -0.1", WithFaultRate(-0.1)},
		{"trials 0", WithTrials(0)},
	}
	for _, tc := range cases {
		if _, err := Open("timely", tc.opt); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("%s: err = %v, want ErrInvalidOption", tc.name, err)
		}
	}
}

func TestInapplicableOptionCombinations(t *testing.T) {
	cases := []struct {
		backend string
		opt     Option
	}{
		{"timely", WithNoise(10)},
		{"timely", WithFaultRate(0.1)},
		{"timely", WithSeed(1)},
		{"timely", WithTrials(3)},
		{"prime", WithBits(16)},
		{"prime", WithGamma(4)},
		{"isaac", WithSubChips(10)},
		{"isaac", WithNoise(10)},
		{"functional", WithBits(8)},
		{"functional", WithChips(2)},
		{"functional", WithSubChips(10)},
		{"functional", WithGamma(4)},
	}
	for _, tc := range cases {
		if _, err := Open(tc.backend, tc.opt); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("%s: err = %v, want ErrInvalidOption", tc.backend, err)
		}
	}
	// Workload-specific rejections surface at Evaluate.
	ctx := context.Background()
	b, err := Open("functional", WithFaultRate(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Evaluate(ctx, "mlp"); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("mlp with fault rate: err = %v, want ErrInvalidOption", err)
	}
	b, err = Open("functional", WithNoise(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Evaluate(ctx, "cnn"); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("cnn with noise: err = %v, want ErrInvalidOption", err)
	}
}

func TestAnalyticEvaluate(t *testing.T) {
	for _, name := range []string{"timely", "prime", "isaac"} {
		b, err := Open(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != name {
			t.Errorf("Name() = %q", b.Name())
		}
		// The inventory holds the 15-network Table III suite plus any
		// custom networks other tests registered in this process.
		nets := map[string]bool{}
		for _, n := range b.Networks() {
			nets[n] = true
		}
		for _, want := range []string{"VGG-D", "CNN-1", "MLP-L", "ResNet-152", "SqueezeNet"} {
			if !nets[want] {
				t.Errorf("%s: Networks() missing %q", name, want)
			}
		}
		res, err := b.Evaluate(context.Background(), "VGG-D")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Backend != name || res.Network != "VGG-D" || res.Chips != 1 {
			t.Errorf("%s: result header = %+v", name, res)
		}
		if res.EnergyMJPerImage <= 0 || res.ImagesPerSec <= 0 || res.TOPsPerWatt <= 0 {
			t.Errorf("%s: non-positive metrics: %+v", name, res)
		}
		if res.Fits == nil {
			t.Errorf("%s: Fits not reported", name)
		}
		if len(res.EnergyBreakdown) == 0 || len(res.MovementByClass) != 3 {
			t.Errorf("%s: breakdown missing (%d components, %d classes)",
				name, len(res.EnergyBreakdown), len(res.MovementByClass))
		}
		if name == "timely" && res.AreaMM2 <= 0 {
			t.Errorf("timely: AreaMM2 = %v", res.AreaMM2)
		}
		if _, err := b.Evaluate(context.Background(), "NOPE-9"); !errors.Is(err, ErrUnknownNetwork) {
			t.Errorf("%s: unknown network err = %v", name, err)
		}
	}
}

func TestTimelyDesignerAndOverrides(t *testing.T) {
	b, err := Open("timely", WithGamma(4), WithSubChips(106), WithChips(2))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := b.(Designer)
	if !ok {
		t.Fatal("timely backend does not implement Designer")
	}
	des := d.Design()
	if des.Gamma != 4 || des.SubChipsPerChip != 106 {
		t.Errorf("design = %+v, want gamma 4, chi 106", des)
	}
	if des.CycleNS != 100 { // 4 × 25 ns
		t.Errorf("CycleNS = %v, want 100", des.CycleNS)
	}
	if des.SubChipAreaMM2 <= 0 || des.PeakTOPSPerSubChip <= 0 || des.DensityTOPsPerMM2 <= 0 {
		t.Errorf("non-positive design point: %+v", des)
	}
	// Baselines expose no parameterised design.
	p, err := Open("prime")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(Designer); ok {
		t.Error("prime backend unexpectedly implements Designer")
	}
	// χ override flows into the evaluation (more sub-chips, more area).
	small, err := Open("timely", WithSubChips(53))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := small.Evaluate(context.Background(), "VGG-D")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Evaluate(context.Background(), "VGG-D")
	if err != nil {
		t.Fatal(err)
	}
	if rb.AreaMM2 <= rs.AreaMM2 {
		t.Errorf("area did not grow with chi and chips: %v vs %v", rb.AreaMM2, rs.AreaMM2)
	}
}

func TestEvaluateRequestRoundTrip(t *testing.T) {
	raw := `{"backend":"timely","network":"CNN-1","bits":16,"chips":16}`
	var req EvalRequest
	if err := json.Unmarshal([]byte(raw), &req); err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chips != 16 {
		t.Errorf("Chips = %d, want 16", res.Chips)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"backend":"timely"`, `"network":"CNN-1"`, `"energy_mj_per_image"`, `"elapsed_ms"`} {
		if !strings.Contains(string(blob), key) {
			t.Errorf("marshalled result missing %s: %s", key, blob)
		}
	}
	// Requests without backend/network fail with the typed errors.
	if _, err := Evaluate(context.Background(), &EvalRequest{Network: "VGG-D"}); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("missing backend err = %v", err)
	}
	if _, err := Evaluate(context.Background(), &EvalRequest{Backend: "timely"}); !errors.Is(err, ErrUnknownNetwork) {
		t.Errorf("missing network err = %v", err)
	}
}

func TestEvaluateHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"timely", "functional"} {
		b, err := Open(name)
		if err != nil {
			t.Fatal(err)
		}
		net := "VGG-D"
		if name == "functional" {
			net = "mlp"
		}
		if _, err := b.Evaluate(ctx, net); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

func TestFunctionalEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the synthetic classifiers")
	}
	ctx := context.Background()
	b, err := Open("functional", WithTrials(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Networks(); len(got) != 2 || got[0] != "cnn" || got[1] != "mlp" {
		t.Errorf("Networks() = %v", got)
	}
	mlp, err := b.Evaluate(ctx, "mlp")
	if err != nil {
		t.Fatal(err)
	}
	acc := mlp.Accuracy
	if acc == nil || acc.Analog <= 0.5 || acc.Int <= 0.5 || acc.Float <= 0.5 {
		t.Fatalf("implausible mlp accuracy: %+v", acc)
	}
	if acc.Trials != 2 || acc.MarginPS <= 0 {
		t.Errorf("mlp stats = %+v", acc)
	}
	// Determinism: same config, same result.
	again, err := b.Evaluate(ctx, "mlp")
	if err != nil {
		t.Fatal(err)
	}
	if *again.Accuracy != *acc {
		t.Errorf("repeat evaluation differs: %+v vs %+v", again.Accuracy, acc)
	}

	cnnB, err := Open("functional", WithTrials(2), WithFaultRate(0.01))
	if err != nil {
		t.Fatal(err)
	}
	cnn, err := cnnB.Evaluate(ctx, "cnn")
	if err != nil {
		t.Fatal(err)
	}
	if cnn.Accuracy == nil || cnn.Accuracy.Analog <= 0.3 || cnn.Accuracy.Faults <= 0 {
		t.Errorf("implausible cnn result: %+v", cnn.Accuracy)
	}
	if _, err := cnnB.Evaluate(ctx, "transformer"); !errors.Is(err, ErrUnknownNetwork) {
		t.Errorf("unknown workload err = %v", err)
	}
}
