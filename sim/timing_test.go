package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
)

// timingJSON evaluates network on the timing backend and returns the
// EvalResult as canonical JSON bytes with the wall-clock field zeroed —
// everything else must be a pure function of the request.
func timingJSON(t testing.TB, network string, images int) []byte {
	t.Helper()
	req := EvalRequest{Backend: "timing", Network: network, Images: images}
	res, err := Evaluate(context.Background(), &req)
	if err != nil {
		t.Fatalf("timing/%s: %v", network, err)
	}
	res.ElapsedMS = 0
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestTimingEvaluateReportsStats(t *testing.T) {
	req := EvalRequest{Backend: "timing", Network: "SqueezeNet", Images: 8}
	res, err := Evaluate(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "timing" || res.Network != "SqueezeNet" {
		t.Errorf("result header = %q/%q", res.Backend, res.Network)
	}
	// The energy ledger rides along from the analytic model.
	if res.EnergyMJPerImage <= 0 || res.ImagesPerSec <= 0 || res.AreaMM2 <= 0 {
		t.Errorf("analytic ledger missing: %+v", res)
	}
	ts := res.Timing
	if ts == nil {
		t.Fatal("no Timing block on the timing backend's result")
	}
	if ts.Images < 8 || ts.Commands <= 0 || ts.CycleNS != 200 {
		t.Errorf("timing header = images %d, commands %d, cycle %v ns",
			ts.Images, ts.Commands, ts.CycleNS)
	}
	if !(ts.LatencyP50MS > 0 && ts.LatencyP50MS <= ts.LatencyP95MS && ts.LatencyP95MS <= ts.LatencyP99MS) {
		t.Errorf("latency percentiles not ordered: p50 %v p95 %v p99 %v",
			ts.LatencyP50MS, ts.LatencyP95MS, ts.LatencyP99MS)
	}
	if len(ts.Layers) == 0 || len(ts.Units) == 0 {
		t.Errorf("per-layer/per-role detail missing (%d layers, %d roles)",
			len(ts.Layers), len(ts.Units))
	}
	// The bottleneck stage paces the pipeline. Utilization is measured over
	// the whole makespan (fill and drain included), so at a short run the
	// peak sits well below 100 % — but it must be the dominant occupancy
	// and stay physical.
	var peak float64
	for _, l := range ts.Layers {
		if l.UtilizationPct > peak {
			peak = l.UtilizationPct
		}
		if l.UtilizationPct < 0 || l.UtilizationPct > 100 {
			t.Errorf("layer %s: unphysical utilization %.1f%%", l.Name, l.UtilizationPct)
		}
		if l.Instances < 1 || l.WavesPerImage < 1 {
			t.Errorf("layer %s: instances %d, waves %d", l.Name, l.Instances, l.WavesPerImage)
		}
	}
	if peak < 30 {
		t.Errorf("no stage dominates occupancy (peak %.1f%%)", peak)
	}
	// A longer run amortises the fill, so the peak must climb toward 100 %.
	longer, err := Evaluate(context.Background(),
		&EvalRequest{Backend: "timing", Network: "SqueezeNet", Images: 48})
	if err != nil {
		t.Fatal(err)
	}
	var longPeak float64
	for _, l := range longer.Timing.Layers {
		if l.UtilizationPct > longPeak {
			longPeak = l.UtilizationPct
		}
	}
	if longPeak <= peak {
		t.Errorf("peak utilization did not climb with run length (%.1f%% -> %.1f%%)", peak, longPeak)
	}
	// The measured rate feeds the throughput-derived fields.
	if res.PowerWatts <= 0 {
		t.Errorf("PowerWatts = %v", res.PowerWatts)
	}
}

// TestTimingDeterministicAcrossParAndRepeats is the determinism gate for
// the event-driven backend, in the TestFullSuiteDeterministicAcrossPar
// pattern: the rendered result bytes (and the emitted trace stream) must
// be identical across repeated runs and across concurrent evaluation at
// worker counts 2 and 8 — a single differing byte means some event
// escaped the deterministic (time, unit, index) issue order.
func TestTimingDeterministicAcrossParAndRepeats(t *testing.T) {
	const network, images = "SqueezeNet", 6
	ref := timingJSON(t, network, images)
	if len(ref) == 0 {
		t.Fatal("empty reference render")
	}
	for _, par := range []int{1, 2, 8} {
		got := make([][]byte, par)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				got[w] = timingJSON(t, network, images)
			}(w)
		}
		wg.Wait()
		for w, blob := range got {
			if !bytes.Equal(blob, ref) {
				t.Errorf("par %d worker %d: result bytes differ from serial reference (%d vs %d bytes)",
					par, w, len(blob), len(ref))
			}
		}
	}
	// The trace stream is part of the contract: identical spans, in order.
	traceOnce := func() []TraceSpan {
		var spans []TraceSpan
		req := EvalRequest{Backend: "timing", Network: network, Images: images}
		if _, err := Evaluate(context.Background(), &req,
			WithTraceSink(func(s TraceSpan) { spans = append(spans, s) })); err != nil {
			t.Fatal(err)
		}
		return spans
	}
	first := traceOnce()
	second := traceOnce()
	if len(first) == 0 {
		t.Fatal("trace sink saw no spans")
	}
	if len(first) != len(second) {
		t.Fatalf("trace span count differs across runs: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("trace span %d differs across runs: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestTimingOptionApplicability(t *testing.T) {
	// Monte-Carlo options have no meaning on the deterministic simulator.
	for _, opt := range []Option{
		WithNoise(10), WithFaultRate(0.01), WithSeed(7), WithTrials(3), WithSampler("v3"),
	} {
		if _, err := Open("timing", opt); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("timing accepted a Monte-Carlo option (err = %v)", err)
		}
	}
	// Simulation-only options are rejected by the closed-form backends.
	sink := func(TraceSpan) {}
	for _, backend := range []string{"timely", "prime", "isaac", "functional"} {
		if _, err := Open(backend, WithImages(4)); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("%s accepted WithImages (err = %v)", backend, err)
		}
		if _, err := Open(backend, WithTraceSink(sink)); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("%s accepted WithTraceSink (err = %v)", backend, err)
		}
	}
	if _, err := Open("timing", WithTraceSink(nil)); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("nil trace sink accepted (err = %v)", err)
	}
	for _, images := range []int{-1, 5000} {
		if _, err := Open("timing", WithImages(images)); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("WithImages(%d) accepted (err = %v)", images, err)
		}
	}
}

// BenchmarkTimingEval measures one full event-driven evaluation (build +
// execute + reduce) and reports the simulation rate in commands/sec.
func BenchmarkTimingEval(b *testing.B) {
	ctx := context.Background()
	for _, network := range []string{"SqueezeNet", "VGG-D"} {
		b.Run(network, func(b *testing.B) {
			var commands int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req := EvalRequest{Backend: "timing", Network: network, Images: 8}
				res, err := Evaluate(ctx, &req)
				if err != nil {
					b.Fatal(err)
				}
				commands = res.Timing.Commands
			}
			b.ReportMetric(float64(commands)*float64(b.N)/b.Elapsed().Seconds(), "commands/s")
		})
	}
}
