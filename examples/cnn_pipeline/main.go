// cnn_pipeline walks the §IV-F software-hardware interface end to end:
// a textual network description goes through the NN parser, the compiler
// lowers it to sub-chip commands (weight mapping + input-path
// configuration), and the controller loads the command stream onto
// functional sub-chips and runs inference through the analog datapath —
// classifying synthetic oriented-grating images with a CNN. The same
// workload recipe is then run through the public sim facade's functional
// backend as a cross-check on the compiled program's accuracy.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/params"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/workload"
	"repro/sim"
)

const netSrc = `
# grating classifier: 1x12x12 -> conv -> pool -> fc -> fc
input 1 12 12
conv features d=8 k=3 s=1 p=1
maxpool k=2 s=2
fc hidden d=32
fc logits d=4
`

func main() {
	// Stage 1 (§IV-F): the NN parser extracts model parameters.
	net, err := compiler.Parse("gratings", netSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d layers, %d weighted, %d params\n",
		net.Name, len(net.Layers), len(net.WeightedLayers()), net.TotalParams())

	// Stage 2: the compiler generates the execution commands.
	prog, err := compiler.Compile(net, params.DefaultTimely(8), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled onto %d sub-chips, %d commands:\n", prog.SubChips, len(prog.Commands))
	for _, c := range prog.Commands {
		src := c.Source
		if c.Op == compiler.OpConfigInputPath && src == "" {
			src = "<chip input>"
		}
		fmt.Printf("  %-18s layer=%-9s sub-chip=%d %s\n", c.Op, c.Layer, c.SubChip, src)
	}

	// Train the same topology with the workload recipe: fixed random conv
	// features, SGD-trained two-layer head, 8-bit quantisation.
	rng := stats.NewRNG(5)
	ds := workload.SyntheticImages(rng, 600, 12, 4, 0.05)
	train, test := ds.Split(0.8)
	cnn := workload.NewCNN(rng, 8, 7)
	if _, err := cnn.Train(rng, train, 32, 25, 0.05); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrained reference accuracy (integer path): %.1f%%\n",
		100*cnn.AccuracyInt(test))

	// Stage 3: the controller writes the trained weights to the mapped
	// addresses and configures the input paths.
	w := compiler.Weights{
		Conv: map[string]*tensor.Filter{"features": cnn.Filters},
		FC: map[string][][]int{
			"hidden": cnn.Head.Weights[0],
			"logits": cnn.Head.Weights[1],
		},
	}
	ctl := compiler.NewController(prog, core.IdealOptions(nil))
	if err := ctl.LoadWeights(w); err != nil {
		log.Fatal(err)
	}
	if err := ctl.Calibrate(train.X[:16]...); err != nil {
		log.Fatal(err)
	}

	hits := 0
	for i, img := range test.X {
		class, err := ctl.Classify(img)
		if err != nil {
			log.Fatal(err)
		}
		if class == test.Y[i] {
			hits++
		}
	}
	fmt.Printf("analog inference via compiled program:      %.1f%% accuracy (%d images)\n",
		100*float64(hits)/float64(test.Len()), test.Len())

	// Cross-check: the sim facade's functional backend trains the identical
	// recipe (same seed 5, memoized with the experiment suite) and maps it
	// onto fault-free crossbars — the two execution paths must agree on the
	// integer reference and land on comparable analog accuracy.
	res, err := sim.Evaluate(context.Background(),
		&sim.EvalRequest{Backend: "functional", Network: "cnn", Trials: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim facade functional backend (cnn):        int %.1f%%, analog %.1f%% (%d draws)\n",
		100*res.Accuracy.Int, 100*res.Accuracy.Analog, res.Accuracy.Trials)
}
