// accuracy_noise reproduces the §VI-B accuracy methodology through the
// public sim facade's functional backend: a classifier trained in float,
// quantised onto TIMELY's 8-bit datapath, executed through the functional
// analog pipeline with Monte-Carlo circuit noise (Gaussian X-subBuf/
// P-subBuf/comparator errors, worst-case 12-X-subBuf cascade), and a noise
// sweep to find the cliff the paper's 40 ps design margin guards against.
// The trained workload is memoized per seed, so the sweep trains once.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	ctx := context.Background()

	// Design point: the paper's ε=10 ps per X-subBuf, 12-hop cascade.
	// WithSampler selects the Monte-Carlo regime — "v2" (the default,
	// shown here explicitly) draws its Gaussians through the Ziggurat hot
	// path; "v1" reproduces the legacy Box-Muller streams byte for byte.
	b, err := sim.Open("functional", sim.WithSeed(7), sim.WithTrials(5), sim.WithSampler("v2"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := b.Evaluate(ctx, "mlp")
	if err != nil {
		log.Fatal(err)
	}
	acc := res.Accuracy
	fmt.Printf("trained MLP on synthetic clusters: float accuracy %.1f%%\n", 100*acc.Float)
	fmt.Printf("8-bit quantised accuracy (integer reference): %.1f%%\n", 100*acc.Int)
	fmt.Printf("analog accuracy at the design point (%d trials, sampler %s): %.1f%%\n",
		acc.Trials, acc.Sampler, 100*acc.Analog)
	fmt.Printf("cascade error sqrt(12)*eps = %.1f ps vs %.0f ps margin\n\n",
		acc.CascadeErrorPS, acc.MarginPS)

	fmt.Println("noise sweep (per-X-subBuf error, 12-hop cascade):")
	fmt.Println("  eps (ps)   accuracy   sqrt(12)*eps within 40 ps margin?")
	for _, eps := range []float64{0, 10, 50, 100, 200, 400, 800} {
		b, err := sim.Open("functional",
			sim.WithSeed(7), sim.WithTrials(3), sim.WithNoise(eps))
		if err != nil {
			log.Fatal(err)
		}
		res, err := b.Evaluate(ctx, "mlp")
		if err != nil {
			log.Fatal(err)
		}
		within := "yes"
		if res.Accuracy.CascadeErrorPS > res.Accuracy.MarginPS {
			within = "no"
		}
		fmt.Printf("  %8.0f   %7.1f%%   %s\n", eps, 100*res.Accuracy.Analog, within)
	}
}
