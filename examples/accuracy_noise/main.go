// accuracy_noise reproduces the §VI-B accuracy methodology end to end on a
// synthetic workload: train a classifier in float, quantise it onto TIMELY's
// 8-bit datapath, execute it through the functional analog pipeline with
// Monte-Carlo circuit noise (Gaussian X-subBuf/P-subBuf/comparator errors,
// worst-case 12-X-subBuf cascade), and sweep the noise to find the cliff the
// paper's 40 ps design margin guards against.
package main

import (
	"fmt"
	"log"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/params"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	rng := stats.NewRNG(7)
	ds := workload.SyntheticClusters(rng, 3000, 16, 4, 0.3)
	train, test := ds.Split(0.8)

	m := workload.NewMLP(rng, 16, 48, 4)
	loss := m.TrainWithNoise(train, rng, 30, 0.05, 0.02)
	fmt.Printf("trained MLP 16-48-4 on synthetic clusters: loss %.4f, float accuracy %.1f%%\n",
		loss, 100*m.Accuracy(test))

	q, err := workload.Quantize(m, train, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-bit quantised accuracy (integer reference): %.1f%%\n", 100*q.AccuracyInt(test))

	// Design point: the paper's ε=10 ps per X-subBuf, 12-hop cascade.
	designAcc := 0.0
	const trials = 5
	for i := 0; i < trials; i++ {
		a, err := q.MapAnalog(core.Options{
			Noise:         analog.DefaultNoise(uint64(1000 + i)),
			InterfaceBits: 24,
			InputHops:     params.MaxCascadedXSubBufs,
		})
		if err != nil {
			log.Fatal(err)
		}
		acc, err := a.Accuracy(test)
		if err != nil {
			log.Fatal(err)
		}
		designAcc += acc
	}
	designAcc /= trials
	fmt.Printf("analog accuracy at the design point (%d trials): %.1f%%\n", trials, 100*designAcc)
	fmt.Printf("cascade error sqrt(12)*eps = %.1f ps vs %.0f ps margin\n\n",
		analog.CascadeErrorBound(params.MaxCascadedXSubBufs, params.DefaultXSubBufSigma),
		params.TDelMargin)

	fmt.Println("noise sweep (per-X-subBuf error, 12-hop cascade):")
	fmt.Println("  eps (ps)   accuracy   sqrt(12)*eps within 40 ps margin?")
	for _, eps := range []float64{0, 10, 50, 100, 200, 400, 800} {
		noise := &analog.Noise{
			XSubBufSigma:    eps,
			PSubBufRelSigma: params.DefaultPSubBufRelSigma,
			ComparatorSigma: params.DefaultComparatorSigma,
			RNG:             stats.NewRNG(99),
		}
		a, err := q.MapAnalog(core.Options{Noise: noise, InterfaceBits: 24,
			InputHops: params.MaxCascadedXSubBufs})
		if err != nil {
			log.Fatal(err)
		}
		acc, err := a.Accuracy(test)
		if err != nil {
			log.Fatal(err)
		}
		within := "yes"
		if analog.CascadeErrorBound(params.MaxCascadedXSubBufs, eps) > params.TDelMargin {
			within = "no"
		}
		fmt.Printf("  %8.0f   %7.1f%%   %s\n", eps, 100*acc, within)
	}
}
