// Quickstart: run one convolution through the functional TIMELY sub-chip —
// DTC conversion, X-subBuf propagation, ReRAM crossbar dot products,
// P-subBuf/I-adder aggregation, two-phase charging, TDC quantisation and
// digital recombination — and compare against the exact integer reference.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func main() {
	rng := stats.NewRNG(42)

	// A small layer: 3x8x8 input, eight 3x3 filters, stride 1, pad 1.
	in := tensor.NewInt(3, 8, 8)
	for i := range in.Data {
		in.Data[i] = int32(rng.Intn(256)) // 8-bit activation codes
	}
	filters := tensor.NewFilter(8, 3, 3, 3)
	for i := range filters.Data {
		filters.Data[i] = int32(rng.Intn(255)) - 127 // signed 8-bit weights
	}

	// Execute on the analog pipeline (ideal interfaces: bit-exact mode).
	ledger := energy.NewLedger(nil)
	res, err := core.RunConv(core.IdealOptions(ledger), in, filters, 1, 1, false)
	if err != nil {
		log.Fatal(err)
	}

	// Compare with the integer reference.
	want := tensor.Conv2D(in, filters, nil, 1, 1)
	mismatches := 0
	for i := range want.Data {
		if res.Out.Data[i] != want.Data[i] {
			mismatches++
		}
	}
	fmt.Printf("TIMELY quickstart\n")
	fmt.Printf("  layer:        conv 3x8x8 -> 8@3x3 (s1 p1), output %v\n", res.Out.Shape)
	fmt.Printf("  analog psums: %d values, %d mismatches vs integer reference\n",
		len(res.Out.Data), mismatches)
	fmt.Printf("  layer scale:  1 TDC LSB = 2^%d dot units\n", res.Mapped.ScaleShift)

	fmt.Printf("\nO2IR operation counts (inputs read once each):\n")
	for _, c := range []energy.Component{
		energy.L1Read, energy.DTCConv, energy.XSubBufOp, energy.CrossbarOp,
		energy.ChargingOp, energy.TDCConv, energy.IAdderOp, energy.L1Write,
	} {
		fmt.Printf("  %-10s %8.0f ops\n", c, ledger.Count(c))
	}
	if mismatches != 0 {
		os.Exit(1)
	}
}
