// Quickstart for the public sim facade: open the three analytic backends
// through the registry, evaluate an ImageNet-scale network on each, run the
// functional Monte-Carlo accuracy study, and show the JSON request/result
// shapes the timelyd service speaks.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/sim"
)

func main() {
	ctx := context.Background()
	fmt.Println("registered backends:", sim.Backends())

	// One VGG-D inference on each analytic accelerator model.
	fmt.Println("\nVGG-D, one chip:")
	fmt.Println("  backend   energy/img      imgs/s    TOPs/W")
	for _, name := range []string{"timely", "prime", "isaac"} {
		b, err := sim.Open(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := b.Evaluate(ctx, "VGG-D")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %8.3f mJ  %8.0f  %8.2f\n",
			name, res.EnergyMJPerImage, res.ImagesPerSec, res.TOPsPerWatt)
	}

	// TIMELY also exposes its physical design point.
	t, err := sim.Open("timely")
	if err != nil {
		log.Fatal(err)
	}
	d := t.(sim.Designer).Design()
	fmt.Printf("\nTIMELY design point: chi=%d sub-chips, gamma=%d, %.0f ns cycle, %.1f mm^2/chip\n",
		d.SubChipsPerChip, d.Gamma, d.CycleNS, d.ChipAreaMM2)

	// The functional backend runs the Monte-Carlo §VI-B accuracy study on
	// the synthetic workload: noise-aware float training, 8-bit
	// quantisation, execution through the analog datapath with injected
	// circuit noise.
	f, err := sim.Open("functional", sim.WithTrials(3))
	if err != nil {
		log.Fatal(err)
	}
	res, err := f.Evaluate(ctx, "mlp")
	if err != nil {
		log.Fatal(err)
	}
	acc := res.Accuracy
	fmt.Printf("\nfunctional mlp: float %.1f%%, int8 %.1f%%, analog %.1f%% (%d trials, loss %.2f pp)\n",
		100*acc.Float, 100*acc.Int, 100*acc.Analog, acc.Trials, acc.LossPP)

	// The same evaluation as one JSON request — the exact payload timelyd's
	// POST /v1/evaluate accepts.
	req := &sim.EvalRequest{Backend: "timely", Network: "ResNet-50", Chips: 16}
	out, err := sim.Evaluate(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	out.EnergyBreakdown, out.MovementByClass = nil, nil // keep the demo short
	blob, _ := json.Marshal(req)
	fmt.Printf("\nPOST /v1/evaluate %s ->\n", blob)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
