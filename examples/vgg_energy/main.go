// vgg_energy reproduces the paper's VGG-D energy deep-dive through the
// public sim facade: it evaluates one ImageNet-scale inference on TIMELY
// and on the PRIME baseline, printing the per-component ledgers, the
// data-type movement breakdown of Fig. 9(d), and the headline efficiency
// ratio — all from the typed EvalResult.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/sim"
)

func evaluate(ctx context.Context, backend string) *sim.EvalResult {
	b, err := sim.Open(backend)
	if err != nil {
		log.Fatal(err)
	}
	res, err := b.Evaluate(ctx, "VGG-D")
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	ctx := context.Background()
	t8 := evaluate(ctx, "timely")
	pr := evaluate(ctx, "prime")

	// Index PRIME's breakdown by component so the table pairs both designs.
	primeBy := map[string]sim.ComponentEnergy{}
	for _, c := range pr.EnergyBreakdown {
		primeBy[c.Component] = c
	}
	seen := map[string]bool{}
	tab := report.New("Per-component energy (one VGG-D inference)",
		"component", "TIMELY ops", "TIMELY energy", "PRIME ops", "PRIME energy")
	add := func(name string, t, p sim.ComponentEnergy) {
		cell := func(c sim.ComponentEnergy) (string, string) {
			if c.Ops == 0 {
				return "", ""
			}
			return fmt.Sprintf("%.3g", c.Ops), fmt.Sprintf("%.3f mJ", c.MilliJoules)
		}
		to, te := cell(t)
		po, pe := cell(p)
		tab.Add(name, to, te, po, pe)
	}
	for _, c := range t8.EnergyBreakdown {
		add(c.Component, c, primeBy[c.Component])
		seen[c.Component] = true
	}
	for _, c := range pr.EnergyBreakdown {
		if !seen[c.Component] {
			add(c.Component, sim.ComponentEnergy{}, c)
		}
	}
	tab.Add("TOTAL", "", fmt.Sprintf("%.3f mJ", t8.EnergyMJPerImage),
		"", fmt.Sprintf("%.3f mJ", pr.EnergyMJPerImage))
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	primeMove := map[string]float64{}
	for _, c := range pr.MovementByClass {
		primeMove[c.Class] = c.MilliJoules
	}
	d := report.New("\nData-movement energy by data type (Fig. 9(d))",
		"data type", "TIMELY", "PRIME", "reduction")
	for _, c := range t8.MovementByClass {
		pm := primeMove[c.Class]
		d.Add(c.Class, fmt.Sprintf("%.3f mJ", c.MilliJoules), fmt.Sprintf("%.3f mJ", pm),
			report.Pct(1-c.MilliJoules/pm))
	}
	if err := d.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nEnergy efficiency: TIMELY %.2f TOPs/W vs PRIME %.2f TOPs/W (%.1fx, paper: 15.6x)\n",
		t8.TOPsPerWatt, pr.TOPsPerWatt, pr.EnergyMJPerImage/t8.EnergyMJPerImage)
}
