// vgg_energy reproduces the paper's VGG-D energy deep-dive: it evaluates one
// ImageNet-scale inference on TIMELY and on the PRIME baseline, printing the
// per-component ledgers, the data-type and memory-level breakdowns of
// Fig. 9, and the headline efficiency ratio.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/report"
)

func main() {
	vgg := model.VGG("D")
	fmt.Printf("VGG-D: %d weighted layers, %.1f G MACs, %.1f M params\n",
		len(vgg.WeightedLayers()), float64(vgg.TotalMACs())/1e9, float64(vgg.TotalParams())/1e6)

	t8, err := accel.NewTimely(8, 1).Evaluate(vgg)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := accel.NewPrime(1).Evaluate(vgg)
	if err != nil {
		log.Fatal(err)
	}

	t := report.New("\nPer-component energy (one inference)",
		"component", "TIMELY ops", "TIMELY energy", "PRIME ops", "PRIME energy")
	for _, c := range energy.Components() {
		te, pe := t8.Ledger.Energy(c), pr.Ledger.Energy(c)
		if te == 0 && pe == 0 {
			continue
		}
		t.Add(c.String(),
			fmt.Sprintf("%.3g", t8.Ledger.Count(c)), report.MJ(te),
			fmt.Sprintf("%.3g", pr.Ledger.Count(c)), report.MJ(pe))
	}
	t.Add("TOTAL", "", report.MJ(t8.Ledger.Total()), "", report.MJ(pr.Ledger.Total()))
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	d := report.New("\nData-movement energy by data type (Fig. 9(d))",
		"data type", "TIMELY", "PRIME", "reduction")
	for _, cl := range []energy.Class{energy.ClassPsum, energy.ClassInput, energy.ClassOutput} {
		tm, pm := t8.Ledger.MovementByClass(cl), pr.Ledger.MovementByClass(cl)
		d.Add(cl.String(), report.MJ(tm), report.MJ(pm), report.Pct(1-tm/pm))
	}
	if err := d.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nEnergy efficiency: TIMELY %.2f TOPs/W vs PRIME %.2f TOPs/W (%.1fx, paper: 15.6x)\n",
		t8.EfficiencyTOPsPerWatt(vgg), pr.EfficiencyTOPsPerWatt(vgg),
		pr.Ledger.Total()/t8.Ledger.Total())
}
