// Custom networks through the declarative spec pipeline: define a network
// that is not in the Table III zoo as pure data, evaluate it inline on
// every analytic backend, register it process-wide so it resolves by name,
// and export a zoo benchmark's spec as a starting template.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/sim"
)

func main() {
	ctx := context.Background()

	// A small CIFAR-style CNN, spelled as data. The same JSON shape is
	// what `timely evaluate -network @spec.json` reads and what timelyd's
	// POST /v1/networks and inline-spec POST /v1/evaluate accept.
	spec := &sim.NetworkSpec{
		Name:  "cifar-tiny",
		Input: sim.NetworkDims{C: 3, H: 32, W: 32},
		Layers: []sim.NetworkLayer{
			{Name: "conv1", Kind: "conv", Filters: 32, Kernel: 3, Pad: 1},
			{Name: "conv2", Kind: "conv", Filters: 32, Kernel: 3, Pad: 1},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Name: "conv3", Kind: "conv", Filters: 64, Kernel: 3, Pad: 1},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Name: "fc1", Kind: "fc", Units: 128},
			{Name: "fc2", Kind: "fc", Units: 10},
		},
	}

	// Inline evaluation: the spec compiles through the same shape-inference
	// path as the built-in zoo and runs on any analytic backend.
	fmt.Println("cifar-tiny, one chip:")
	fmt.Println("  backend   energy/img      imgs/s    TOPs/W")
	for _, backend := range []string{"timely", "prime", "isaac"} {
		res, err := sim.Evaluate(ctx, &sim.EvalRequest{Backend: backend, Spec: spec})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %8.5f mJ  %8.0f  %8.2f\n",
			backend, res.EnergyMJPerImage, res.ImagesPerSec, res.TOPsPerWatt)
	}

	// Registration: validate once, then reference by name like a zoo
	// benchmark. The info summarises the compiled network and carries the
	// canonical spec hash the evaluation caches key on.
	info, err := sim.RegisterNetwork(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregistered %s: %d layers, %.2f MMACs, %.2f Mparams\n  hash %s\n",
		info.Name, info.Layers, float64(info.MACs)/1e6, float64(info.Params)/1e6, info.Hash)

	res, err := sim.Evaluate(ctx, &sim.EvalRequest{Backend: "timely", Network: "cifar-tiny", Chips: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("by name on 2 chips: %.5f mJ/img, %.0f imgs/s, %.1f mm2\n",
		res.EnergyMJPerImage, res.ImagesPerSec, res.AreaMM2)

	// Validation errors are typed: the offending layer and field are named.
	bad := &sim.NetworkSpec{
		Name:  "broken",
		Input: sim.NetworkDims{C: 3, H: 32, W: 32},
		Layers: []sim.NetworkLayer{
			{Name: "huge", Kind: "conv", Filters: 8, Kernel: 64},
		},
	}
	if _, err := sim.Evaluate(ctx, &sim.EvalRequest{Backend: "timely", Spec: bad}); err != nil {
		fmt.Println("\ninvalid spec rejected:", err)
	}

	// Zoo benchmarks export their specs — a ready template for edits.
	tmpl, err := sim.ZooSpec("CNN-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCNN-1 as a spec template (%d layers):\n", len(tmpl.Layers))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tmpl); err != nil {
		log.Fatal(err)
	}
}
