// design_space explores the two architecture trade-offs §V and §VI-D
// discuss: the DTC/TDC sharing factor γ (throughput vs computational
// density — more sharing shrinks the interface area but stretches the
// pipeline cycle) and the sub-chip count χ (area scaling barely moves energy
// and leaves throughput untouched per chip).
package main

import (
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/area"
	"repro/internal/model"
	"repro/internal/params"
)

func main() {
	fmt.Println("gamma sweep: DTC/TDC sharing vs cycle time, area and peak density")
	fmt.Println("  gamma  cycle(ns)  sub-chip mm^2  peak TOPS/sub-chip  TOPs/(s*mm^2)")
	base := area.SubChipArea()
	dtcArea := float64(params.DTCsPerSubChip) * params.AreaDTC
	tdcArea := float64(params.TDCsPerSubChip) * params.AreaTDC
	fixed := base - dtcArea - tdcArea
	for _, gamma := range []int{1, 2, 4, 8, 16, 32} {
		cfg := params.DefaultTimely(8)
		cfg.Gamma = gamma
		cycleNS := cfg.CycleTime() / 1000
		// Interface area scales inversely with sharing.
		a := fixed +
			float64(cfg.GridRows*cfg.B/gamma)*params.AreaDTC +
			float64(cfg.GridCols*cfg.B/gamma)*params.AreaTDC
		tops := cfg.MACsPerSubChipCycle() / cfg.CycleTime() // MACs/ps = TOPS
		density := tops * 1e12 / 1e12 / (a / 1e6)
		fmt.Printf("  %5d  %9.0f  %13.2f  %18.2f  %13.2f\n",
			gamma, cycleNS, a/1e6, tops, density)
	}

	fmt.Println("\nsub-chip scaling (§VI-D): chi sweep on VGG-D energy")
	fmt.Println("  chi   chip mm^2   energy/inference   imgs/s (1 chip)")
	vgg := model.VGG("D")
	for _, chi := range []int{53, 106, 212} {
		t := accel.NewTimely(8, 1)
		t.Cfg.SubChips = chi
		r, err := t.Evaluate(vgg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d   %9.1f   %13.3f mJ   %12.0f\n",
			chi, area.ChipArea(chi)/1e6, r.EnergyPerImageMJ(), r.ImagesPerSec)
	}
	fmt.Println("\n(energy is nearly flat in chi; throughput scales with the extra")
	fmt.Println(" duplication room, and per-sub-chip throughput is chi-independent)")
}
