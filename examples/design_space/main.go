// design_space explores the two architecture trade-offs §V and §VI-D
// discuss, entirely through the public sim facade: the DTC/TDC sharing
// factor γ (throughput vs computational density, via the Designer view)
// and the sub-chip count χ (area scaling barely moves energy and leaves
// per-chip throughput untouched, via WithSubChips evaluations).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	ctx := context.Background()

	fmt.Println("gamma sweep: DTC/TDC sharing vs cycle time, area and peak density")
	fmt.Println("  gamma  cycle(ns)  sub-chip mm^2  peak TOPS/sub-chip  TOPs/(s*mm^2)")
	for _, gamma := range []int{1, 2, 4, 8, 16, 32} {
		b, err := sim.Open("timely", sim.WithGamma(gamma))
		if err != nil {
			log.Fatal(err)
		}
		d := b.(sim.Designer).Design()
		fmt.Printf("  %5d  %9.0f  %13.2f  %18.2f  %13.2f\n",
			d.Gamma, d.CycleNS, d.SubChipAreaMM2, d.PeakTOPSPerSubChip, d.DensityTOPsPerMM2)
	}

	fmt.Println("\nsub-chip scaling (§VI-D): chi sweep on VGG-D energy")
	fmt.Println("  chi   chip mm^2   energy/inference   imgs/s (1 chip)")
	for _, chi := range []int{53, 106, 212} {
		b, err := sim.Open("timely", sim.WithSubChips(chi))
		if err != nil {
			log.Fatal(err)
		}
		r, err := b.Evaluate(ctx, "VGG-D")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d   %9.1f   %13.3f mJ   %12.0f\n",
			chi, r.AreaMM2, r.EnergyMJPerImage, r.ImagesPerSec)
	}
	fmt.Println("\n(energy is nearly flat in chi; throughput scales with the extra")
	fmt.Println(" duplication room, and per-sub-chip throughput is chi-independent)")
}
