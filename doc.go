// Package repro is a from-scratch Go reproduction of "TIMELY: Pushing Data
// Movements and Interfaces in PIM Accelerators Towards Local and in Time
// Domain" (Li et al., ISCA 2020): a functional simulator of the time-domain
// ReRAM processing-in-memory datapath, analytic architecture models of
// TIMELY and its PRIME/ISAAC baselines, the 15-network benchmark zoo, and a
// concurrent harness regenerating every table and figure of the paper's
// evaluation with deterministic text, CSV and JSON output.
//
// The public API is the sim package: a Backend facade over the analytic
// accelerators and the functional Monte-Carlo simulator, constructed via
// sim.Open("timely"|"prime"|"isaac"|"functional", opts...) with
// context-aware evaluation. Custom networks are first-class: any conv/fc/
// pool topology spelled as a declarative sim.NetworkSpec (JSON) compiles
// through the same spec pipeline as the built-in zoo and evaluates via
// sim.Evaluate, timely evaluate -network @spec.json, or the service's
// POST /v1/networks + /v1/evaluate. cmd/timelyd serves it all over HTTP.
//
// Run the harness with
//
//	go run ./cmd/timely all
//
// (see cmd/timely for the -format/-out/-par/-timeout flags), or the
// service with
//
//	go run ./cmd/timelyd
//
// See README.md for the tour, DESIGN.md for the system inventory,
// per-experiment index and the public API & service section, and
// EXPERIMENTS.md for paper-vs-measured results. The bench harness lives in
// bench_test.go; run it with
//
//	go test -bench=. -benchmem
package repro
