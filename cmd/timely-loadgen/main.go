// Command timely-loadgen drives a running timelyd at a configurable
// request rate and reports the service-level numbers every fleet PR is
// judged by: achieved throughput, shed rate, retry counts and p50/p95/p99
// client latency, as one JSON document.
//
// The schedule is open-loop: a dispatcher ticks at -rps and offers each
// tick to a pool of -concurrency workers; when every worker is busy the
// offer is DROPPED and counted, so server slowness shows up as dropped
// offers rather than silently shrinking the offered rate. Shed responses
// (429/503) are retried up to -retries times with exponential backoff,
// honoring the server's Retry-After header (capped at -max-backoff).
//
// Workload shaping for the server's batching layer: -dup-ratio sends the
// shared -body on that fraction of requests (evenly spread), while the
// rest rotate through -spec-pool deterministic inline-spec bodies with
// distinct spec hashes. The report parses timelyd's Cache-Status response
// headers into cache-hit and coalesce counts and rates.
//
// Cluster runs: -target takes a comma-separated list of service bases
// (overriding -url) and spreads logical requests round-robin across them.
// Retries rotate to the next target, and transport errors — final against
// a single target — are retried like sheds while another replica remains,
// so killing one replica mid-run diverts its load to the survivors
// instead of failing the run. The report carries a per-target breakdown
// (attempts, status counts, latency percentiles) under "per_target".
//
// Usage:
//
//	timely-loadgen -url http://127.0.0.1:8080 -rps 20 -concurrency 8 -duration 10s
//	timely-loadgen -path /v1/experiments/table5 -method GET -body '' -rps 5
//	timely-loadgen -rps 50 -dup-ratio 0.8 -spec-pool 16 -duration 10s
//	timely-loadgen -target http://127.0.0.1:8091,http://127.0.0.1:8092,http://127.0.0.1:8093 -rps 30
//
// Flags:
//
//	-url <base>          service base URL (default http://127.0.0.1:8080)
//	-target <a,b,c>      comma-separated service bases for a cluster run (overrides -url)
//	-path <path>         request path (default /v1/evaluate)
//	-method <verb>       HTTP method (default POST)
//	-body <json>         request body (default a small analytic evaluate)
//	-rps <n>             offered request rate (default 20)
//	-concurrency <n>     max in-flight requests (default 8)
//	-duration <dur>      offered-load window (default 10s)
//	-retries <n>         max retries per shed request (default 3)
//	-backoff <dur>       initial retry backoff (default 100ms)
//	-max-backoff <dur>   backoff/Retry-After cap (default 2s)
//	-request-timeout <d> per-attempt HTTP timeout (default 30s)
//	-dup-ratio <f>       fraction of requests sending the shared -body (default 0)
//	-spec-pool <n>       distinct cold inline-spec bodies to rotate (default 1)
//	-out <file>          write the JSON report here (default stdout)
//
// The exit status is 0 whenever the run completes, even with a 100% shed
// rate — judging the numbers is the caller's job.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "service base URL")
	target := flag.String("target", "", "comma-separated service bases for a cluster run (overrides -url)")
	path := flag.String("path", "/v1/evaluate", "request path")
	method := flag.String("method", http.MethodPost, "HTTP method")
	body := flag.String("body", `{"backend":"timely","network":"CNN-1","chips":2}`, "request body (sent as application/json when non-empty)")
	rps := flag.Float64("rps", 20, "offered request rate per second")
	concurrency := flag.Int("concurrency", 8, "max in-flight requests")
	duration := flag.Duration("duration", 10*time.Second, "offered-load window")
	retries := flag.Int("retries", 3, "max retries per shed (429/503) request")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "initial retry backoff")
	maxBackoff := flag.Duration("max-backoff", 2*time.Second, "cap on backoff and honored Retry-After")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-attempt HTTP timeout")
	dupRatio := flag.Float64("dup-ratio", 0, "fraction of requests sending the shared -body (0..1)")
	specPool := flag.Int("spec-pool", 1, "distinct cold inline-spec bodies the rest rotate through")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	var targets []string
	for _, t := range strings.Split(*target, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, t)
		}
	}
	report, err := Run(context.Background(), Config{
		URL:         *url,
		Targets:     targets,
		Method:      *method,
		Path:        *path,
		Body:        *body,
		RPS:         *rps,
		Concurrency: *concurrency,
		Duration:    *duration,
		MaxRetries:  *retries,
		Backoff:     *backoff,
		MaxBackoff:  *maxBackoff,
		DupRatio:    *dupRatio,
		SpecPool:    *specPool,
		Client:      &http.Client{Timeout: *reqTimeout},
	})
	if err != nil {
		log.Fatalf("timely-loadgen: %v", err)
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("timely-loadgen: encoding report: %v", err)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatalf("timely-loadgen: %v", err)
	}
}
