package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Config drives one load-generation run against a timelyd instance (or a
// cluster of them).
type Config struct {
	// URL is the service base, e.g. http://127.0.0.1:8080. Ignored when
	// Targets is set.
	URL string
	// Targets lists several service bases — a replicated cluster.
	// Logical requests rotate round-robin across them, retries rotate to
	// the NEXT target, and transport errors become retryable (up to
	// MaxRetries, like sheds) while more than one target is configured:
	// a killed replica diverts load to the survivors instead of failing
	// the run, which is exactly the failover the cluster chaos tests
	// measure. Empty means the single URL.
	Targets []string
	// Method, Path and Body describe the request to repeat. A non-empty
	// Body is sent as application/json.
	Method string
	Path   string
	Body   string
	// RPS is the target request schedule (open loop: the dispatcher
	// ticks at this rate and DROPS ticks when every worker is busy, so a
	// slow server shows up as dropped offers, not a silently lower rate).
	RPS float64
	// Concurrency is the number of in-flight requests allowed at once.
	Concurrency int
	// Duration bounds the offered-load window; in-flight requests are
	// still drained to completion afterwards.
	Duration time.Duration
	// MaxRetries bounds retries of shed (429/503) responses per logical
	// request. Retries honor the server's Retry-After header, capped at
	// MaxBackoff; without the header they back off exponentially from
	// Backoff.
	MaxRetries int
	Backoff    time.Duration
	MaxBackoff time.Duration
	// DupRatio shapes the workload for the server's batching layer: the
	// fraction of logical requests (0..1) that send the shared hot Body,
	// spread evenly over the schedule. The rest rotate through the spec
	// pool. 0 (the default) sends Body on every request.
	DupRatio float64
	// SpecPool sizes the pool of distinct deterministic inline-spec
	// bodies the non-duplicate fraction rotates through — each pool entry
	// has its own spec hash, so a pool wider than the server's cache
	// forces evictions. 0 or 1 means no pool: every request sends Body.
	SpecPool int
	// Client overrides the HTTP client (tests); nil uses a default with
	// a per-attempt timeout.
	Client *http.Client
}

func (c *Config) fillDefaults() error {
	if len(c.Targets) == 0 {
		if c.URL == "" {
			return errors.New("loadgen: URL or Targets is required")
		}
		c.Targets = []string{c.URL}
	}
	for i, t := range c.Targets {
		if t == "" {
			return fmt.Errorf("loadgen: target %d is empty", i)
		}
	}
	if c.RPS <= 0 {
		return fmt.Errorf("loadgen: rps must be > 0 (got %g)", c.RPS)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: duration must be > 0 (got %s)", c.Duration)
	}
	if c.Method == "" {
		c.Method = http.MethodPost
	}
	if c.Path == "" {
		c.Path = "/v1/evaluate"
	}
	if c.Concurrency < 1 {
		c.Concurrency = 1
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.DupRatio < 0 || c.DupRatio > 1 {
		return fmt.Errorf("loadgen: dup-ratio must be in [0,1] (got %g)", c.DupRatio)
	}
	if c.SpecPool < 0 {
		return fmt.Errorf("loadgen: spec-pool must be >= 0 (got %d)", c.SpecPool)
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return nil
}

// LatencySummary summarises end-to-end latencies (including retry
// backoff) of successful logical requests, in milliseconds.
type LatencySummary struct {
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Report is the machine-readable outcome of one run — the service-level
// benchmark every fleet PR moves. Attempt-level counters (Attempts, Shed,
// Retries, StatusCounts) see every HTTP exchange; logical counters (Sent,
// OK, Failed) see one entry per scheduled request.
type Report struct {
	Target      string  `json:"target"`
	RPSTarget   float64 `json:"rps_target"`
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`

	Sent    int64 `json:"sent"`
	Dropped int64 `json:"dropped"`
	OK      int64 `json:"ok"`
	Failed  int64 `json:"failed"`

	Attempts     int64 `json:"attempts"`
	Shed         int64 `json:"shed"`
	Retries      int64 `json:"retries"`
	ServerErrors int64 `json:"server_errors"`
	ClientErrors int64 `json:"client_errors"`
	Transport    int64 `json:"transport_errors"`

	ThroughputRPS float64          `json:"throughput_rps"`
	ShedRate      float64          `json:"shed_rate"`
	StatusCounts  map[string]int64 `json:"status_counts"`
	Latency       LatencySummary   `json:"latency"`

	// Batching-layer counters, parsed from the Cache-Status response
	// header timelyd stamps on every successful evaluate (hit, miss,
	// coalesced). Rates are over attempts that carried the header, so a
	// target without the batching layer reports zeros, not noise.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	Coalesced    int64   `json:"coalesced"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CoalesceRate float64 `json:"coalesce_rate"`

	// Targets lists the configured service bases in rotation order;
	// PerTarget breaks the attempt-level counters and latency down by the
	// base that served each attempt (latency is attributed to the target
	// answering the logical request's FINAL attempt). In a cluster run
	// this is where a dead replica shows: its transport_errors climb
	// while the survivors absorb the ok counts.
	Targets   []string                `json:"targets"`
	PerTarget map[string]*TargetStats `json:"per_target"`
}

// TargetStats is the per-target slice of the report.
type TargetStats struct {
	Attempts     int64            `json:"attempts"`
	OK           int64            `json:"ok"`
	Shed         int64            `json:"shed"`
	ServerErrors int64            `json:"server_errors"`
	ClientErrors int64            `json:"client_errors"`
	Transport    int64            `json:"transport_errors"`
	StatusCounts map[string]int64 `json:"status_counts"`
	Latency      LatencySummary   `json:"latency"`
}

// collector accumulates worker results under one lock; the hot path is
// the HTTP exchange, so a mutex is plenty.
type collector struct {
	mu        sync.Mutex
	report    Report
	latencies []float64 // ms, successful logical requests
	perTarget map[string]*targetAgg
}

// targetAgg is one target's in-flight aggregation (stats + its own
// latency sample, summarized at the end of the run).
type targetAgg struct {
	stats     TargetStats
	latencies []float64
}

// target returns (creating on first use) the aggregation slot for base.
// The caller must hold c.mu.
func (c *collector) target(base string) *targetAgg {
	a, ok := c.perTarget[base]
	if !ok {
		a = &targetAgg{stats: TargetStats{StatusCounts: map[string]int64{}}}
		c.perTarget[base] = a
	}
	return a
}

func (c *collector) status(base string, code int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.report.StatusCounts == nil {
		c.report.StatusCounts = map[string]int64{}
	}
	c.report.StatusCounts[strconv.Itoa(code)]++
	c.target(base).stats.StatusCounts[strconv.Itoa(code)]++
}

func (c *collector) cacheStatus(cs string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch cs {
	case "hit":
		c.report.CacheHits++
	case "miss":
		c.report.CacheMisses++
	case "coalesced":
		c.report.Coalesced++
	}
}

// workload deterministically assigns each logical request its body: the
// hot body for an evenly-spread DupRatio fraction (Bresenham over the
// request index, so the mix is exact regardless of run length), the spec
// pool round-robin for the rest.
type workload struct {
	hot   string
	pool  []string
	ratio float64
	seq   atomic.Int64
	cold  atomic.Int64
}

func newWorkload(cfg *Config) *workload {
	w := &workload{hot: cfg.Body, ratio: cfg.DupRatio}
	if cfg.SpecPool > 1 {
		w.pool = make([]string, cfg.SpecPool)
		for k := range w.pool {
			w.pool[k] = poolBody(k)
		}
	}
	return w
}

// poolBody builds the k-th cold request: an inline analytic spec whose
// name and width differ per entry, so every pool slot has its own spec
// hash (and therefore its own server-side cache key), disjoint from any
// hot body naming a zoo network.
func poolBody(k int) string {
	return fmt.Sprintf(`{"backend":"timely","spec":{"name":"loadgen-pool-%d",`+
		`"input":{"c":3,"h":32,"w":32},"layers":[`+
		`{"name":"conv1","kind":"conv","filters":%d,"kernel":3,"pad":1},`+
		`{"name":"out","kind":"fc","units":10}]}}`, k, 8+k)
}

func (w *workload) next() string {
	i := w.seq.Add(1) - 1
	if w.ratio > 0 && int64(float64(i+1)*w.ratio) > int64(float64(i)*w.ratio) {
		return w.hot
	}
	if len(w.pool) == 0 {
		return w.hot
	}
	k := w.cold.Add(1) - 1
	return w.pool[int(k%int64(len(w.pool)))]
}

// Run executes the configured load against the service and returns the
// aggregated report. ctx cancellation stops the run early (the report
// covers what was sent).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	bases := make([]string, len(cfg.Targets))
	urls := make([]string, len(cfg.Targets))
	for i, t := range cfg.Targets {
		bases[i] = strings.TrimRight(t, "/")
		urls[i] = bases[i] + cfg.Path
	}
	col := &collector{perTarget: map[string]*targetAgg{}}
	col.report.Target = cfg.Method + " " + strings.Join(urls, ",")
	col.report.RPSTarget = cfg.RPS
	col.report.Concurrency = cfg.Concurrency

	wl := newWorkload(&cfg)
	var rr atomic.Int64 // round-robin origin of each logical request
	jobs := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				oneRequest(ctx, &cfg, bases, urls, int(rr.Add(1)-1), wl.next(), col)
			}
		}()
	}

	start := time.Now()
	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	deadline := time.NewTimer(cfg.Duration)
schedule:
	for {
		select {
		case <-ctx.Done():
			break schedule
		case <-deadline.C:
			break schedule
		case <-ticker.C:
			select {
			case jobs <- struct{}{}:
				col.mu.Lock()
				col.report.Sent++
				col.mu.Unlock()
			default:
				// Every worker is busy: the offered load exceeds what the
				// client can carry. Count it instead of queueing client-side.
				col.mu.Lock()
				col.report.Dropped++
				col.mu.Unlock()
			}
		}
	}
	ticker.Stop()
	deadline.Stop()
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	r := &col.report
	r.DurationS = elapsed.Seconds()
	if elapsed > 0 {
		r.ThroughputRPS = float64(r.OK) / elapsed.Seconds()
	}
	if r.Attempts > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Attempts)
	}
	if stamped := r.CacheHits + r.CacheMisses + r.Coalesced; stamped > 0 {
		r.CacheHitRate = float64(r.CacheHits) / float64(stamped)
		r.CoalesceRate = float64(r.Coalesced) / float64(stamped)
	}
	if len(col.latencies) > 0 {
		sort.Float64s(col.latencies)
		r.Latency = summarize(col.latencies)
	}
	r.Targets = bases
	r.PerTarget = make(map[string]*TargetStats, len(bases))
	for base, a := range col.perTarget {
		if len(a.latencies) > 0 {
			sort.Float64s(a.latencies)
			a.stats.Latency = summarize(a.latencies)
		}
		r.PerTarget[base] = &a.stats
	}
	// A target nothing reached (tiny run, many replicas) still gets its
	// all-zero entry, so report consumers can index by configured base.
	for _, base := range bases {
		if _, ok := r.PerTarget[base]; !ok {
			r.PerTarget[base] = &TargetStats{StatusCounts: map[string]int64{}}
		}
	}
	return r, nil
}

// summarize reduces an ascending latency sample (ms) to the report's
// percentile summary. PercentileSorted takes p on the 0..100 scale.
func summarize(sorted []float64) LatencySummary {
	n := len(sorted)
	if n == 0 {
		return LatencySummary{}
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return LatencySummary{
		P50Ms:  stats.PercentileSorted(sorted, 50),
		P95Ms:  stats.PercentileSorted(sorted, 95),
		P99Ms:  stats.PercentileSorted(sorted, 99),
		MeanMs: sum / float64(n),
		MaxMs:  sorted[n-1],
	}
}

// oneRequest executes one logical request: the initial attempt plus up to
// MaxRetries retries of shed responses, with Retry-After-aware backoff.
// The body is fixed per logical request (retries resend the same bytes).
// rr picks the request's origin in the target rotation; every retry
// moves one target onward, so a cluster run spreads retried load over
// the survivors, and transport errors — final against a single target —
// are retried like sheds while another replica remains to try.
func oneRequest(ctx context.Context, cfg *Config, bases, urls []string, rr int, body string, col *collector) {
	start := time.Now()
	backoff := cfg.Backoff
	for attempt := 0; ; attempt++ {
		i := (rr + attempt) % len(urls)
		base, target := bases[i], urls[i]
		code, cacheStatus, retryAfter, err := oneAttempt(ctx, cfg, target, body)
		col.mu.Lock()
		col.report.Attempts++
		col.target(base).stats.Attempts++
		col.mu.Unlock()

		if err != nil {
			col.mu.Lock()
			col.report.Transport++
			col.target(base).stats.Transport++
			canRetry := len(urls) > 1 && attempt < cfg.MaxRetries && ctx.Err() == nil
			if canRetry {
				col.report.Retries++
			} else {
				col.report.Failed++
			}
			col.mu.Unlock()
			if canRetry {
				continue // next attempt rotates to another replica, no backoff
			}
			return
		}
		col.status(base, code)
		col.cacheStatus(cacheStatus)
		switch {
		case code >= 200 && code < 300:
			col.mu.Lock()
			col.report.OK++
			a := col.target(base)
			a.stats.OK++
			lat := float64(time.Since(start)) / float64(time.Millisecond)
			col.latencies = append(col.latencies, lat)
			a.latencies = append(a.latencies, lat)
			col.mu.Unlock()
			return
		case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
			col.mu.Lock()
			col.report.Shed++
			col.target(base).stats.Shed++
			col.mu.Unlock()
			if attempt >= cfg.MaxRetries {
				col.mu.Lock()
				col.report.Failed++
				col.mu.Unlock()
				return
			}
			// The server's Retry-After hint wins over the local schedule;
			// both are capped so a hostile hint cannot stall the harness.
			wait := backoff
			if retryAfter > 0 {
				wait = retryAfter
			}
			if wait > cfg.MaxBackoff {
				wait = cfg.MaxBackoff
			}
			col.mu.Lock()
			col.report.Retries++
			col.mu.Unlock()
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return
			}
			backoff *= 2
			if backoff > cfg.MaxBackoff {
				backoff = cfg.MaxBackoff
			}
		case code >= 500:
			col.mu.Lock()
			col.report.ServerErrors++
			col.target(base).stats.ServerErrors++
			col.report.Failed++
			col.mu.Unlock()
			return
		default:
			col.mu.Lock()
			col.report.ClientErrors++
			col.target(base).stats.ClientErrors++
			col.report.Failed++
			col.mu.Unlock()
			return
		}
	}
}

// oneAttempt issues a single HTTP exchange and returns the status code,
// the Cache-Status header ("" when absent) and any Retry-After hint (0
// when absent or unparseable).
func oneAttempt(ctx context.Context, cfg *Config, target, payload string) (int, string, time.Duration, error) {
	var body io.Reader
	if payload != "" {
		body = strings.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, cfg.Method, target, body)
	if err != nil {
		return 0, "", 0, err
	}
	if payload != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, "", 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var retryAfter time.Duration
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, resp.Header.Get("Cache-Status"), retryAfter, nil
}
