package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunHappyPath(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/evaluate" {
			t.Errorf("got %s %s", r.Method, r.URL.Path)
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	report, err := Run(context.Background(), Config{
		URL:         ts.URL,
		RPS:         200,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Sent == 0 {
		t.Fatal("sent no requests")
	}
	if report.OK != report.Sent || report.Failed != 0 {
		t.Errorf("OK=%d Failed=%d Sent=%d, want all OK", report.OK, report.Failed, report.Sent)
	}
	if report.ThroughputRPS <= 0 {
		t.Errorf("throughput = %g", report.ThroughputRPS)
	}
	if report.Latency.P50Ms <= 0 || report.Latency.P99Ms < report.Latency.P50Ms {
		t.Errorf("latency summary = %+v", report.Latency)
	}
	if report.StatusCounts["200"] != report.Sent {
		t.Errorf("status counts = %v", report.StatusCounts)
	}
	// The report is the service-level benchmark artifact: it must
	// round-trip as JSON.
	raw, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.OK != report.OK {
		t.Errorf("round trip lost OK: %d != %d", back.OK, report.OK)
	}
}

// TestRetryHonorsRetryAfter: every odd attempt sheds with a Retry-After
// hint; the harness must retry (counting shed + retry) and land every
// logical request, waiting at least the (capped) hint before retrying.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "1") // capped to MaxBackoff below
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	// One worker keeps the attempt order sequential, so the alternating
	// schedule is exactly "shed first attempt, serve the retry".
	report, err := Run(context.Background(), Config{
		URL:         ts.URL,
		RPS:         50,
		Concurrency: 1,
		Duration:    200 * time.Millisecond,
		MaxRetries:  3,
		Backoff:     5 * time.Millisecond,
		MaxBackoff:  25 * time.Millisecond,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Sent == 0 || report.OK != report.Sent {
		t.Fatalf("sent=%d ok=%d, want every logical request to land after retry", report.Sent, report.OK)
	}
	if report.Shed == 0 || report.Retries != report.Shed {
		t.Errorf("shed=%d retries=%d, want equal and > 0", report.Shed, report.Retries)
	}
	if report.StatusCounts["429"] == 0 || report.StatusCounts["200"] == 0 {
		t.Errorf("status counts = %v", report.StatusCounts)
	}
	if report.ShedRate <= 0 || report.ShedRate >= 1 {
		t.Errorf("shed rate = %g, want in (0,1)", report.ShedRate)
	}
	// Retried requests waited for the capped Retry-After (25ms, not 1s).
	if report.Latency.MaxMs < 25 {
		t.Errorf("max latency %.1fms — backoff wait seems skipped", report.Latency.MaxMs)
	}
	if report.Latency.MaxMs > 900 {
		t.Errorf("max latency %.1fms — Retry-After cap ignored", report.Latency.MaxMs)
	}
}

func TestServerErrorsAreNotRetried(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	report, err := Run(context.Background(), Config{
		URL:         ts.URL,
		RPS:         100,
		Concurrency: 2,
		Duration:    150 * time.Millisecond,
		MaxRetries:  5,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Sent == 0 || report.Failed != report.Sent || report.OK != 0 {
		t.Errorf("sent=%d failed=%d ok=%d, want every request failed", report.Sent, report.Failed, report.OK)
	}
	if report.Retries != 0 {
		t.Errorf("retries = %d, want 0 — 500s are not retryable", report.Retries)
	}
	if got := n.Load(); got != report.Sent {
		t.Errorf("server saw %d attempts for %d logical requests", got, report.Sent)
	}
}

func TestOpenLoopDropsWhenSaturated(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(80 * time.Millisecond)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	report, err := Run(context.Background(), Config{
		URL:         ts.URL,
		RPS:         200,
		Concurrency: 1, // one slow worker cannot carry 200 rps
		Duration:    250 * time.Millisecond,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Dropped == 0 {
		t.Errorf("dropped = 0; open-loop accounting should record unservable offers (report %+v)", report)
	}
}

// TestSummarizeKnownDistribution pins the percentile scale: the report's
// p50/p95/p99 must sit at the 50th/95th/99th percentile ranks of the
// sample, not the 0.5th/0.95th/0.99th (the near-minimum values a 0..1
// fraction would select). 100 latencies of 1..100ms make the two scales
// differ by ~two orders of magnitude, so a scale regression cannot pass.
func TestSummarizeKnownDistribution(t *testing.T) {
	lat := make([]float64, 100)
	for i := range lat {
		lat[i] = float64(i + 1) // 1..100 ms, already ascending
	}
	got := summarize(lat)
	// Linear interpolation between closest ranks over 100 points:
	// p50 = 50.5, p95 = 95.05, p99 = 99.01.
	want := LatencySummary{P50Ms: 50.5, P95Ms: 95.05, P99Ms: 99.01, MeanMs: 50.5, MaxMs: 100}
	const eps = 1e-9
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"p50", got.P50Ms, want.P50Ms},
		{"p95", got.P95Ms, want.P95Ms},
		{"p99", got.P99Ms, want.P99Ms},
		{"mean", got.MeanMs, want.MeanMs},
		{"max", got.MaxMs, want.MaxMs},
	} {
		if diff := c.got - c.want; diff < -eps || diff > eps {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if got := summarize(nil); got != (LatencySummary{}) {
		t.Errorf("summarize(nil) = %+v, want zero", got)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},                        // no URL
		{URL: "http://x", RPS: 0}, // no rate
		{URL: "http://x", RPS: 5}, // no duration
		{URL: "http://x", RPS: -1, Duration: time.Second},
		{URL: "http://x", RPS: 5, Duration: time.Second, DupRatio: 1.5},
		{URL: "http://x", RPS: 5, Duration: time.Second, DupRatio: -0.1},
		{URL: "http://x", RPS: 5, Duration: time.Second, SpecPool: -1},
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestWorkloadShaping pins the deterministic body schedule: an exact
// DupRatio fraction of requests gets the hot body, evenly spread, and the
// cold remainder round-robins the pool of distinct inline specs.
func TestWorkloadShaping(t *testing.T) {
	cfg := Config{Body: "HOT", DupRatio: 0.8, SpecPool: 4}
	wl := newWorkload(&cfg)
	hot := 0
	cold := map[string]int{}
	for i := 0; i < 100; i++ {
		b := wl.next()
		if b == "HOT" {
			hot++
		} else {
			cold[b]++
		}
	}
	if hot != 80 {
		t.Errorf("hot requests = %d of 100 at dup-ratio 0.8, want 80", hot)
	}
	if len(cold) != 4 {
		t.Errorf("cold pool produced %d distinct bodies, want 4", len(cold))
	}
	for b, n := range cold {
		if n != 5 {
			t.Errorf("cold body %q sent %d times, want 5 (round-robin)", b[:40], n)
		}
		if !strings.Contains(b, `"spec"`) || !strings.Contains(b, "loadgen-pool-") {
			t.Errorf("cold body is not an inline pool spec: %s", b)
		}
	}
	// No shaping flags → the classic single-body workload.
	plain := newWorkload(&Config{Body: "HOT"})
	for i := 0; i < 10; i++ {
		if plain.next() != "HOT" {
			t.Fatal("unshaped workload varied the body")
		}
	}
	// Evenness, not front-loading: every window of 5 has exactly 4 hot.
	wl2 := newWorkload(&Config{Body: "HOT", DupRatio: 0.8, SpecPool: 2})
	for w := 0; w < 10; w++ {
		h := 0
		for i := 0; i < 5; i++ {
			if wl2.next() == "HOT" {
				h++
			}
		}
		if h != 4 {
			t.Errorf("window %d: %d hot of 5, want 4", w, h)
		}
	}
}

// TestCacheStatusReporting: the report tallies the server's Cache-Status
// headers and derives hit/coalesce rates from them.
func TestCacheStatusReporting(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 4 {
		case 1, 2:
			w.Header().Set("Cache-Status", "hit")
		case 3:
			w.Header().Set("Cache-Status", "coalesced")
		default:
			w.Header().Set("Cache-Status", "miss")
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	report, err := Run(context.Background(), Config{
		URL:         ts.URL,
		RPS:         200,
		Concurrency: 1, // sequential, so the 4-cycle schedule is exact
		Duration:    300 * time.Millisecond,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	total := report.CacheHits + report.CacheMisses + report.Coalesced
	if total != report.Attempts || total == 0 {
		t.Fatalf("Cache-Status tally %d != attempts %d", total, report.Attempts)
	}
	if report.CacheHits == 0 || report.Coalesced == 0 || report.CacheMisses == 0 {
		t.Errorf("counts = hits %d, misses %d, coalesced %d — all should move",
			report.CacheHits, report.CacheMisses, report.Coalesced)
	}
	wantHit := float64(report.CacheHits) / float64(total)
	if report.CacheHitRate != wantHit {
		t.Errorf("cache hit rate = %g, want %g", report.CacheHitRate, wantHit)
	}
	wantCo := float64(report.Coalesced) / float64(total)
	if report.CoalesceRate != wantCo {
		t.Errorf("coalesce rate = %g, want %g", report.CoalesceRate, wantCo)
	}
	// A server that never stamps the header yields zeros, not NaNs.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer plain.Close()
	r2, err := Run(context.Background(), Config{
		URL: plain.URL, RPS: 200, Concurrency: 1,
		Duration: 100 * time.Millisecond, Client: plain.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHitRate != 0 || r2.CoalesceRate != 0 {
		t.Errorf("headerless target produced rates: %+v", r2)
	}
}

// TestMultiTargetRoundRobin: two live targets split the schedule, and the
// report breaks attempts, status counts and latency down per target.
func TestMultiTargetRoundRobin(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	})
	ts1 := httptest.NewServer(handler)
	defer ts1.Close()
	ts2 := httptest.NewServer(handler)
	defer ts2.Close()

	report, err := Run(context.Background(), Config{
		Targets:     []string{ts1.URL, ts2.URL},
		RPS:         200,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Client:      ts1.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.OK != report.Sent || report.Failed != 0 {
		t.Fatalf("OK=%d Failed=%d Sent=%d, want all OK", report.OK, report.Failed, report.Sent)
	}
	if len(report.Targets) != 2 {
		t.Fatalf("Targets = %v, want both bases", report.Targets)
	}
	var okSum, attemptSum int64
	for _, base := range []string{ts1.URL, ts2.URL} {
		pt := report.PerTarget[base]
		if pt == nil {
			t.Fatalf("no per-target entry for %s (got %v)", base, report.PerTarget)
		}
		if pt.Attempts == 0 {
			t.Errorf("target %s saw no attempts — rotation broken", base)
		}
		if pt.StatusCounts["200"] != pt.OK {
			t.Errorf("target %s status counts %v vs OK %d", base, pt.StatusCounts, pt.OK)
		}
		if pt.OK > 0 && pt.Latency.P50Ms <= 0 {
			t.Errorf("target %s has OKs but no latency summary", base)
		}
		okSum += pt.OK
		attemptSum += pt.Attempts
	}
	if okSum != report.OK || attemptSum != report.Attempts {
		t.Errorf("per-target sums (ok %d, attempts %d) disagree with totals (ok %d, attempts %d)",
			okSum, attemptSum, report.OK, report.Attempts)
	}
}

// TestMultiTargetTransportFailover: one of two targets is a corpse
// (connection refused). With several targets a transport error retries
// against the NEXT one, so every logical request still lands — the dead
// replica shows up as its per-target transport_errors, not as run
// failures. This is the loadgen side of the cluster kill-one chaos story.
func TestMultiTargetTransportFailover(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer live.Close()
	// A listener bound then closed: the port answers with a refusal.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	report, err := Run(context.Background(), Config{
		Targets:     []string{live.URL, dead},
		RPS:         100,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		MaxRetries:  2,
		Client:      &http.Client{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 0 || report.OK != report.Sent {
		t.Fatalf("OK=%d Failed=%d Sent=%d: transport failover did not absorb the dead target",
			report.OK, report.Failed, report.Sent)
	}
	if report.Transport == 0 {
		t.Error("no transport errors recorded against the dead target")
	}
	if report.Retries < report.Transport {
		t.Errorf("retries %d < transport errors %d: failed attempts were not retried",
			report.Retries, report.Transport)
	}
	if pt := report.PerTarget[dead]; pt == nil || pt.Transport == 0 || pt.OK != 0 {
		t.Errorf("dead target breakdown = %+v, want only transport errors", pt)
	}
	if pt := report.PerTarget[live.URL]; pt == nil || pt.OK != report.OK {
		t.Errorf("live target breakdown = %+v, want all %d OKs", pt, report.OK)
	}
}
