package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// runOut invokes the CLI and returns its stdout.
func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatalf("timely %v: %v", args, err)
	}
	return out.String()
}

// cheapIDs are experiments without classifier training, fast enough to run
// unconditionally.
var cheapIDs = []string{"fig1c", "fig4", "fig5", "fig10", "fig11", "table4", "table5"}

func TestParallelOutputIdenticalCheap(t *testing.T) {
	args := append([]string(nil), cheapIDs...)
	serial := runOut(t, append(args, "-par", "1")...)
	parallel := runOut(t, append(args, "-par", "8")...)
	if serial != parallel {
		t.Errorf("-par 8 output differs from -par 1")
	}
	if !strings.Contains(serial, "Table IV") || !strings.Contains(serial, "Fig. 11") {
		t.Errorf("output missing expected sections")
	}
}

func TestAllParallelOutputIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite twice (trains classifiers)")
	}
	serial := runOut(t, "all", "-par", "1")
	// Drop the memoized inputs so the parallel run recomputes everything.
	experiments.ResetCaches()
	parallel := runOut(t, "all", "-par", "8")
	if serial != parallel {
		t.Errorf("timely all -par 8 output is not byte-identical to -par 1")
	}
}

func TestJSONOutDirWritesOneValidFilePerExperiment(t *testing.T) {
	dir := t.TempDir()
	args := append(append([]string(nil), cheapIDs...),
		"-format", "json", "-out", dir)
	if got := runOut(t, args...); got != "" {
		t.Errorf("-out mode still wrote %d bytes to stdout", len(got))
	}
	for _, id := range cheapIDs {
		raw, err := os.ReadFile(filepath.Join(dir, id+".json"))
		if err != nil {
			t.Fatalf("missing artifact: %v", err)
		}
		var doc struct {
			ID     string `json:"id"`
			Tables []struct {
				Headers []string   `json:"headers"`
				Rows    [][]string `json:"rows"`
			} `json:"tables"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Errorf("%s.json is not valid JSON: %v", id, err)
			continue
		}
		if doc.ID != id {
			t.Errorf("%s.json has id %q", id, doc.ID)
		}
		if len(doc.Tables) == 0 || len(doc.Tables[0].Rows) == 0 {
			t.Errorf("%s.json has no table rows", id)
		}
	}
}

func TestCSVFormat(t *testing.T) {
	out := runOut(t, "table5", "-format", "csv")
	if !strings.HasPrefix(out, "# Table V") {
		t.Errorf("CSV output missing title comment:\n%s", out)
	}
	if !strings.Contains(out, "layer,PRIME,TIMELY,saved by") {
		t.Errorf("CSV output missing header row:\n%s", out)
	}
}

func TestListAndUnknown(t *testing.T) {
	out := runOut(t, "list")
	for _, id := range []string{"fig4", "table5", "ablation", "accuracy"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
	if !strings.Contains(out, "backends") || !strings.Contains(out, "timing") {
		t.Errorf("list output missing the backend inventory:\n%s", out)
	}
	if err := run([]string{"fig99"}, io.Discard, io.Discard); err == nil {
		t.Errorf("unknown experiment accepted")
	}
	if err := run([]string{"table5", "-format", "yaml"}, io.Discard, io.Discard); err == nil {
		t.Errorf("unknown format accepted")
	}
}

// TestSamplerFlag: the regime flag validates its spelling, defaults to v3,
// and the analytic experiments are regime-independent (identical bytes
// under every regime).
func TestSamplerFlag(t *testing.T) {
	if err := run([]string{"table5", "-sampler", "v9"}, io.Discard, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "sampler") {
		t.Errorf("unknown sampler accepted (err = %v)", err)
	}
	def := runOut(t, "table5")
	for _, v := range []string{"v1", "v2", "v3"} {
		if got := runOut(t, "table5", "-sampler", v); got != def {
			t.Errorf("analytic experiment bytes changed under -sampler %s", v)
		}
	}
	if !strings.Contains(runOut(t, "-h"), "-sampler") {
		t.Error("usage does not document -sampler")
	}
}

func TestVerboseTimingSummary(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"table5", "-v"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb.String(), "table5") || !strings.Contains(errb.String(), "ok") {
		t.Errorf("timing summary missing: %q", errb.String())
	}
}

func TestFlagsInterleaveWithCommandWords(t *testing.T) {
	want := runOut(t, "table5", "fig10", "-par", "2")
	for _, args := range [][]string{
		{"-par", "2", "table5", "fig10"},
		{"table5", "-par", "2", "fig10"},
		{"-format", "text", "table5", "-par", "2", "fig10"},
	} {
		if got := runOut(t, args...); got != want {
			t.Errorf("args %v changed output", args)
		}
	}
	// Flags on both sides of the command words, with -out.
	dir := t.TempDir()
	if err := run([]string{"-format", "json", "table5", "-out", dir}, io.Discard, io.Discard); err != nil {
		t.Fatalf("flags around command words: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table5.json")); err != nil {
		t.Errorf("artifact not written: %v", err)
	}
	// "all" keeps its meaning with flags on both sides (full suite: slow).
	if !testing.Short() {
		if err := run([]string{"-format", "json", "all", "-out", t.TempDir()}, io.Discard, io.Discard); err != nil {
			t.Fatalf("flags around 'all': %v", err)
		}
	}
}

func TestHelpGoesToStdout(t *testing.T) {
	for _, arg := range []string{"-h", "--help", "help"} {
		var out, errb bytes.Buffer
		if err := run([]string{arg}, &out, &errb); err != nil {
			t.Errorf("%s: %v", arg, err)
		}
		if !strings.Contains(out.String(), "usage:") || errb.Len() != 0 {
			t.Errorf("%s: usage on wrong stream (stdout %d bytes, stderr %d)",
				arg, out.Len(), errb.Len())
		}
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	out := runOut(t, "fig1c", "-cpuprofile", cpu, "-memprofile", mem)
	if !strings.Contains(out, "===") {
		t.Fatalf("profiled run produced no artifact output: %q", out)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// The profiled run must not perturb the artifact bytes.
	if plain := runOut(t, "fig1c"); plain != out {
		t.Fatal("output differs between profiled and plain runs")
	}
}

func TestListFormatJSON(t *testing.T) {
	out := runOut(t, "list", "-format", "json")
	var idx struct {
		Backends    []string `json:"backends"`
		Experiments []struct {
			ID          string `json:"id"`
			Paper       string `json:"paper"`
			Description string `json:"description"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(out), &idx); err != nil {
		t.Fatalf("list -format json is not valid JSON: %v\n%s", err, out)
	}
	ids := map[string]bool{}
	for _, e := range idx.Experiments {
		ids[e.ID] = true
		if e.Paper == "" || e.Description == "" {
			t.Errorf("entry %q missing paper/description", e.ID)
		}
	}
	for _, want := range []string{"fig4", "table5", "accuracy", "ablation"} {
		if !ids[want] {
			t.Errorf("list -format json missing %s", want)
		}
	}
	backends := map[string]bool{}
	for _, b := range idx.Backends {
		backends[b] = true
	}
	for _, want := range []string{"timely", "prime", "isaac", "functional", "timing"} {
		if !backends[want] {
			t.Errorf("list -format json missing backend %s", want)
		}
	}
	// Flag order must not matter, and csv is not a list format.
	if got := runOut(t, "-format", "json", "list"); got != out {
		t.Errorf("flag position changed list output")
	}
	if err := run([]string{"list", "-format", "csv"}, io.Discard, io.Discard); err == nil {
		t.Errorf("list -format csv accepted")
	}
}

func TestParClampedToOne(t *testing.T) {
	want := runOut(t, "table5", "fig10", "-par", "1")
	for _, par := range []string{"0", "-4"} {
		if got := runOut(t, "table5", "fig10", "-par", par); got != want {
			t.Errorf("-par %s output differs from -par 1", par)
		}
	}
}

func TestTimeoutAbortsAndGenerousTimeoutPasses(t *testing.T) {
	// An already-expired deadline must abort before any experiment runs.
	err := run([]string{"fig4", "-timeout", "1ns"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("expired timeout err = %v, want deadline exceeded", err)
	}
	// A generous timeout must not change the output bytes.
	want := runOut(t, "table5")
	if got := runOut(t, "table5", "-timeout", "1m"); got != want {
		t.Errorf("-timeout 1m changed output")
	}
}
