// Command timely regenerates the paper's tables and figures from the
// reproduction's simulators.
//
// Usage:
//
//	timely list             enumerate the available experiments
//	timely all              run every experiment
//	timely <id> [...]       run specific experiments (fig4, table5, ...)
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "timely:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("  %-10s %-12s %s\n", e.ID, e.Paper, e.Description)
		}
		return nil
	case "all":
		return experiments.RunAll(os.Stdout)
	case "help", "-h", "--help":
		usage()
		return nil
	}
	for _, id := range args {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		fmt.Printf("\n=== %s — %s ===\n", e.Paper, e.Description)
		if err := e.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func usage() {
	fmt.Println("timely — regenerate the TIMELY (ISCA 2020) evaluation artifacts")
	fmt.Println()
	fmt.Println("usage:")
	fmt.Println("  timely list          enumerate experiments")
	fmt.Println("  timely all           run every experiment")
	fmt.Println("  timely <id> [...]    run specific experiments")
}
