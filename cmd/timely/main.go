// Command timely regenerates the paper's tables and figures from the
// reproduction's simulators.
//
// Usage:
//
//	timely list [flags]             enumerate the available experiments
//	timely all [flags]              run every experiment
//	timely <id> [...] [flags]       run specific experiments (fig4, table5, ...)
//	timely evaluate [flags]         evaluate one network on one backend
//
// evaluate runs a single network — a Table III benchmark by name or a
// custom declarative spec from a JSON file (-network @spec.json) — on any
// sim backend and prints the energy/throughput/area (or accuracy) result
// as text or JSON. See "timely evaluate -h" for its flag surface.
//
// Flags (before, between or after the experiment names):
//
//	-format text|csv|json   output format (default text); list supports text|json
//	-out <dir>              write one file per experiment into dir
//	-par N                  run N experiments concurrently (default GOMAXPROCS)
//	-timeout <dur>          abort the run after this long (e.g. 30s; 0 = none)
//	-sampler v1|v2|v3       Monte-Carlo sampling regime (default v3, the
//	                        counter-based keyed generator; v1/v2 keep the
//	                        earlier byte-identical deviate streams)
//	-v                      print a per-experiment timing summary to stderr
//	-cpuprofile <file>      write a pprof CPU profile of the run
//	-memprofile <file>      write a pprof heap profile taken after the run
//
// Experiments execute on a worker pool; output is always emitted in the
// requested order regardless of completion order, so -par does not change
// the bytes produced. -timeout cancels the run's context: experiments (and
// Monte-Carlo work units inside them) that have not started when it fires
// are skipped and the run exits with an error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "timely:", err)
		os.Exit(1)
	}
}

// options are the harness flags shared by "all" and explicit-ID runs.
type options struct {
	format     string
	outDir     string
	par        int
	timeout    time.Duration
	sampler    string
	vrbose     bool
	cpuprofile string
	memprofile string
}

func run(args []string, stdout, stderr io.Writer) error {
	for _, a := range args {
		if a == "-h" || a == "-help" || a == "--help" || a == "help" {
			usage(stdout)
			return nil
		}
	}

	// The evaluate subcommand has its own flag surface (network/backend
	// selection rather than experiment harness control), so it is routed
	// before the interleaved experiment-flag parsing below.
	if len(args) > 0 && args[0] == "evaluate" {
		return runEvaluate(args[1:], stdout, stderr)
	}

	fs := flag.NewFlagSet("timely", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var opt options
	fs.StringVar(&opt.format, "format", "text", "output format: text, csv or json")
	fs.StringVar(&opt.outDir, "out", "", "write one file per experiment into this directory")
	fs.IntVar(&opt.par, "par", runtime.GOMAXPROCS(0), "number of experiments to run concurrently")
	fs.DurationVar(&opt.timeout, "timeout", 0, "abort the run after this long (0 = no timeout)")
	fs.StringVar(&opt.sampler, "sampler", "v3", "Monte-Carlo sampling regime: v3 (counter-based, parallel-stable), v2 (sublinear) or v1 (legacy byte-identical streams)")
	fs.BoolVar(&opt.vrbose, "v", false, "print a per-experiment timing summary to stderr")
	fs.StringVar(&opt.cpuprofile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	fs.StringVar(&opt.memprofile, "memprofile", "", "write a pprof heap profile taken after the run to this file")
	fs.Usage = func() { usage(stderr); fs.PrintDefaults() }

	// Command words (list, all, fig4, ...) and flags may interleave freely:
	// flag.Parse stops at the first non-flag token, so collect that token as
	// a command word and re-parse the remainder until everything is consumed.
	var words []string
	rest := args
	for {
		if err := fs.Parse(rest); err != nil {
			if errors.Is(err, flag.ErrHelp) {
				return nil
			}
			return err
		}
		rest = fs.Args()
		if len(rest) == 0 {
			break
		}
		words = append(words, rest[0])
		rest = rest[1:]
	}

	switch {
	case len(words) == 0:
		usage(stdout)
		return nil
	case words[0] == "list":
		return list(stdout, opt.format)
	}

	var exps []experiments.Experiment
	if len(words) == 1 && words[0] == "all" {
		exps = experiments.All()
	} else {
		for _, id := range words {
			e, err := experiments.ByID(id)
			if err != nil {
				return err
			}
			exps = append(exps, e)
		}
	}

	switch opt.format {
	case "text", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want text, csv or json)", opt.format)
	}
	sampler, err := stats.ParseSamplerVersion(opt.sampler)
	if err != nil {
		return fmt.Errorf("unknown sampler %q (want v1, v2 or v3)", opt.sampler)
	}
	// The worker pool treats any par < 1 as one worker; clamp here so the
	// timing summary and docs never see a nonsensical value either.
	if opt.par < 1 {
		opt.par = 1
	}

	if opt.cpuprofile != "" {
		f, err := os.Create(opt.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if opt.memprofile != "" {
		defer func() {
			if err := writeHeapProfile(opt.memprofile); err != nil {
				fmt.Fprintln(stderr, "timely: memprofile:", err)
			}
		}()
	}

	ctx := context.Background()
	if opt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.timeout)
		defer cancel()
	}
	results := experiments.Run(ctx, exps, experiments.Options{Par: opt.par, Sampler: sampler})
	if opt.vrbose {
		timingSummary(stderr, results)
	}
	if opt.outDir != "" {
		return writeDir(opt.outDir, opt.format, results)
	}
	switch opt.format {
	case "csv":
		return experiments.WriteCSV(stdout, results)
	case "json":
		return experiments.WriteJSON(stdout, results)
	default:
		return experiments.WriteText(stdout, results)
	}
}

// list writes the experiment index and the registered sim backends —
// aligned text by default, or a machine-readable JSON object of
// {backends, experiments} with -format json.
func list(w io.Writer, format string) error {
	switch format {
	case "text":
		for _, e := range experiments.All() {
			fmt.Fprintf(w, "  %-10s %-12s %s\n", e.ID, e.Paper, e.Description)
		}
		fmt.Fprintf(w, "\nbackends (timely evaluate -backend): %s\n", strings.Join(sim.Backends(), ", "))
		return nil
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Backends    []string                 `json:"backends"`
			Experiments []experiments.IndexEntry `json:"experiments"`
		}{sim.Backends(), experiments.Index()})
	}
	return fmt.Errorf("unknown list format %q (want text or json)", format)
}

// writeHeapProfile snapshots the post-run heap (after a final GC, so the
// profile shows retained memory rather than collectable garbage).
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	werr := pprof.WriteHeapProfile(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// timingSummary prints one line per experiment, slowest last, plus a total.
func timingSummary(w io.Writer, results []Result) {
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Elapsed < sorted[j].Elapsed })
	var total float64
	for _, r := range sorted {
		status := "ok"
		if r.Err != nil {
			status = "FAIL: " + r.Err.Error()
		}
		fmt.Fprintf(w, "%-10s %10.1fms  %s\n", r.Experiment.ID,
			float64(r.Elapsed.Microseconds())/1000, status)
		total += float64(r.Elapsed.Microseconds()) / 1000
	}
	fmt.Fprintf(w, "%-10s %10.1fms  (sum of experiment times)\n", "total", total)
}

// Result aliases the experiments result type for local helpers.
type Result = experiments.Result

// writeDir writes one artifact file per experiment (<id>.txt/.csv/.json)
// into dir, creating it if needed. Failing experiments produce no file; the
// errors are joined and returned after all successes are written.
func writeDir(dir, format string, results []Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating -out directory %q: %w", dir, err)
	}
	ext := map[string]string{"text": "txt", "csv": "csv", "json": "json"}[format]
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Experiment.ID, r.Err))
			continue
		}
		path := filepath.Join(dir, r.Experiment.ID+"."+ext)
		f, err := os.Create(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		werr := writeOne(f, format, r)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			errs = append(errs, fmt.Errorf("%s: %w", path, werr))
		}
	}
	return errors.Join(errs...)
}

func writeOne(w io.Writer, format string, r Result) error {
	switch format {
	case "csv":
		return experiments.WriteCSV(w, []Result{r})
	case "json":
		return r.Document().RenderJSON(w)
	default:
		return experiments.WriteText(w, []Result{r})
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "timely — regenerate the TIMELY (ISCA 2020) evaluation artifacts")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "usage:")
	fmt.Fprintln(w, "  timely list [flags]        enumerate experiments (text or json)")
	fmt.Fprintln(w, "  timely all [flags]         run every experiment")
	fmt.Fprintln(w, "  timely <id> [...] [flags]  run specific experiments")
	fmt.Fprintln(w, "  timely evaluate -network <name|@spec.json> [flags]")
	fmt.Fprintln(w, "                             evaluate one network (zoo or custom spec)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "flags:")
	fmt.Fprintln(w, "  -format text|csv|json  output format (default text)")
	fmt.Fprintln(w, "  -out <dir>             write one file per experiment into dir")
	fmt.Fprintln(w, "  -par N                 concurrent experiments (default GOMAXPROCS)")
	fmt.Fprintln(w, "  -timeout <dur>         abort the run after this long (0 = none)")
	fmt.Fprintln(w, "  -sampler v1|v2|v3      Monte-Carlo sampling regime (default v3; v1/v2 = earlier streams)")
	fmt.Fprintln(w, "  -v                     per-experiment timing summary on stderr")
	fmt.Fprintln(w, "  -cpuprofile <file>     write a pprof CPU profile of the run")
	fmt.Fprintln(w, "  -memprofile <file>     write a pprof heap profile after the run")
}
