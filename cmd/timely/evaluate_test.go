package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSpec drops a custom network spec file and returns its path.
func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cliSpec = `{
	"name": "cli-net",
	"input": {"c": 3, "h": 32, "w": 32},
	"layers": [
		{"name": "conv1", "kind": "conv", "filters": 16, "kernel": 3, "pad": 1},
		{"kind": "maxpool", "kernel": 2, "stride": 2},
		{"name": "fc", "kind": "fc", "units": 10}
	]
}`

func TestEvaluateZooNetworkText(t *testing.T) {
	out := runOut(t, "evaluate", "-network", "CNN-1")
	for _, want := range []string{"backend", "timely", "CNN-1", "energy/image", "throughput", "area", "fits"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "spec hash") {
		t.Errorf("zoo evaluation reports a spec hash:\n%s", out)
	}
}

func TestEvaluateCustomSpecFile(t *testing.T) {
	path := writeSpec(t, cliSpec)
	out := runOut(t, "evaluate", "-network", "@"+path)
	if !strings.Contains(out, "cli-net") || !strings.Contains(out, "spec hash") {
		t.Errorf("custom spec output:\n%s", out)
	}

	// JSON form carries the full typed result.
	raw := runOut(t, "evaluate", "-network", "@"+path, "-format", "json", "-chips", "2")
	var res struct {
		Network  string  `json:"network"`
		Chips    int     `json:"chips"`
		Energy   float64 `json:"energy_mj_per_image"`
		IPS      float64 `json:"images_per_sec"`
		Area     float64 `json:"area_mm2"`
		SpecHash string  `json:"spec_hash"`
	}
	if err := json.Unmarshal([]byte(raw), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if res.Network != "cli-net" || res.Chips != 2 || res.Energy <= 0 || res.IPS <= 0 ||
		res.Area <= 0 || res.SpecHash == "" {
		t.Errorf("result = %+v", res)
	}

	// The same spec runs on a baseline backend.
	out = runOut(t, "evaluate", "-network", "@"+path, "-backend", "prime")
	if !strings.Contains(out, "prime") {
		t.Errorf("prime output:\n%s", out)
	}
}

// runErr invokes the CLI expecting failure and returns the error text.
func runErr(t *testing.T, args ...string) string {
	t.Helper()
	err := run(args, io.Discard, io.Discard)
	if err == nil {
		t.Fatalf("timely %v succeeded, want error", args)
	}
	return err.Error()
}

func TestEvaluateErrors(t *testing.T) {
	if msg := runErr(t, "evaluate"); !strings.Contains(msg, "-network is required") {
		t.Errorf("missing-network error = %q", msg)
	}
	if msg := runErr(t, "evaluate", "-network", "GPT-7"); !strings.Contains(msg, "unknown network") {
		t.Errorf("unknown-network error = %q", msg)
	}
	if msg := runErr(t, "evaluate", "-network", "@/does/not/exist.json"); !strings.Contains(msg, "reading network spec") {
		t.Errorf("missing-file error = %q", msg)
	}

	bad := writeSpec(t, `{"name":"x","input":{"c":1,"h":4,"w":4},"layers":[{"kind":"conv","filters":0,"kernel":3}]}`)
	if msg := runErr(t, "evaluate", "-network", "@"+bad); !strings.Contains(msg, "filters") {
		t.Errorf("invalid-spec error = %q", msg)
	}

	unknownField := writeSpec(t, `{"name":"x","input":{"c":1,"h":4,"w":4},"layers":[{"kind":"fc","units":2,"dropout":0.5}]}`)
	if msg := runErr(t, "evaluate", "-network", "@"+unknownField); !strings.Contains(msg, "dropout") {
		t.Errorf("unknown-field error = %q", msg)
	}

	if msg := runErr(t, "evaluate", "-network", "CNN-1", "-format", "yaml"); !strings.Contains(msg, "yaml") {
		t.Errorf("format error = %q", msg)
	}
	if msg := runErr(t, "evaluate", "-network", "CNN-1", "stray"); !strings.Contains(msg, "stray") {
		t.Errorf("stray-arg error = %q", msg)
	}
}

// TestEvaluateFunctionalBackend routes the Monte-Carlo backend through the
// subcommand, with the explicit-zero noise distinction intact.
func TestEvaluateFunctionalBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the synthetic classifier")
	}
	out := runOut(t, "evaluate", "-network", "mlp", "-backend", "functional", "-trials", "2", "-noise", "0")
	if !strings.Contains(out, "analog acc") || !strings.Contains(out, "trials") {
		t.Errorf("functional output:\n%s", out)
	}
	if !strings.Contains(out, "sampler") || !strings.Contains(out, "v3") {
		t.Errorf("default sampler regime missing from output:\n%s", out)
	}
	v1 := runOut(t, "evaluate", "-network", "mlp", "-backend", "functional", "-trials", "2", "-noise", "0", "-sampler", "v1")
	if !strings.Contains(v1, "v1") {
		t.Errorf("explicit v1 regime missing from output:\n%s", v1)
	}
}

// TestEvaluateSamplerErrors: regime validation surfaces through the
// evaluate subcommand for both a bad spelling and an inapplicable backend.
func TestEvaluateSamplerErrors(t *testing.T) {
	if err := run([]string{"evaluate", "-network", "mlp", "-backend", "functional", "-sampler", "v9"},
		io.Discard, io.Discard); err == nil {
		t.Error("invalid sampler accepted")
	}
	if err := run([]string{"evaluate", "-network", "VGG-D", "-backend", "timely", "-sampler", "v2"},
		io.Discard, io.Discard); err == nil {
		t.Error("sampler accepted on an analytic backend")
	}
}

// TestOutDirCreatedForNestedPath pins the -out satellite: a deep path that
// does not exist yet is created rather than assumed.
func TestOutDirCreatedForNestedPath(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "deep", "nested", "artifacts")
	if got := runOut(t, "table5", "-out", dir); got != "" {
		t.Errorf("-out mode wrote %d bytes to stdout", len(got))
	}
	if _, err := os.Stat(filepath.Join(dir, "table5.txt")); err != nil {
		t.Errorf("artifact not written into created directory: %v", err)
	}

	// A path blocked by a regular file surfaces a clear error.
	block := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(block, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"table5", "-out", filepath.Join(block, "sub")}, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "creating -out directory") {
		t.Errorf("blocked -out error = %v", err)
	}
}
