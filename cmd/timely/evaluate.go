package main

// The evaluate subcommand: one-off evaluation of any network — a Table III
// benchmark by name or a custom declarative spec from a JSON file — on any
// backend, without going through the experiment harness.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/trace"
	"repro/sim"
)

// runEvaluate implements "timely evaluate". The network argument is either
// a name the backend knows (zoo benchmark, or "mlp"/"cnn" for the
// functional backend) or @path/to/spec.json carrying a declarative
// network spec.
func runEvaluate(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("timely evaluate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		network  = fs.String("network", "", "network name or @spec.json (required)")
		backend  = fs.String("backend", "timely", "backend: timely, prime, isaac, functional or timing")
		format   = fs.String("format", "text", "output format: text or json")
		bits     = fs.Int("bits", 0, "operand precision (timely; 8 or 16, 0 = default)")
		chips    = fs.Int("chips", 0, "deployment size (0 = default)")
		subChips = fs.Int("subchips", 0, "sub-chips per chip χ (timely; 0 = default)")
		gamma    = fs.Int("gamma", 0, "DTC/TDC sharing factor γ (timely; 0 = default)")
		noise    = fs.Float64("noise", 0, "timing error ε in ps (functional mlp)")
		fault    = fs.Float64("faultrate", 0, "stuck-at cell fraction (functional cnn)")
		seed     = fs.Uint64("seed", 0, "Monte-Carlo base seed (functional)")
		trials   = fs.Int("trials", 0, "Monte-Carlo repeats (functional; 0 = default)")
		sampler  = fs.String("sampler", "", "Monte-Carlo sampling regime: v3, v2 or v1 (functional; empty = backend default v3)")
		images   = fs.Int("images", 0, "images pushed through the event-driven simulation (timing; 0 = default)")
		traceOut = fs.String("trace", "", "write the per-wave occupancy trace to this JSON file (timing)")
		timeout  = fs.Duration("timeout", 0, "abort the evaluation after this long (0 = none)")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: timely evaluate -network <name|@spec.json> [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("evaluate: unexpected argument %q", fs.Arg(0))
	}
	if *network == "" {
		fs.Usage()
		return fmt.Errorf("evaluate: -network is required")
	}
	// Fail on an unknown format before spending the evaluation's compute.
	switch *format {
	case "text", "json":
	default:
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}

	req := sim.EvalRequest{
		Backend:  *backend,
		Bits:     *bits,
		Chips:    *chips,
		SubChips: *subChips,
		Gamma:    *gamma,
		Trials:   *trials,
		Sampler:  *sampler,
		Images:   *images,
	}
	// The pointer fields distinguish "flag absent" from an explicit zero
	// (noise 0 is an ideal-timing run), so set them only when passed.
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "noise":
			req.NoisePS = noise
		case "faultrate":
			req.FaultRate = fault
		case "seed":
			req.Seed = seed
		}
	})

	if path, ok := strings.CutPrefix(*network, "@"); ok {
		spec, err := readSpec(path)
		if err != nil {
			return err
		}
		req.Spec = spec
	} else {
		req.Network = *network
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// The trace sink is not JSON-serializable, so it rides as an extra
	// option on top of the request.
	var extra []sim.Option
	var traceLog *trace.Log
	if *traceOut != "" {
		traceLog = &trace.Log{Source: "timing", Network: *network}
		extra = append(extra, sim.WithTraceSink(traceLog.Emit))
	}
	res, err := sim.Evaluate(ctx, &req, extra...)
	if err != nil {
		return err
	}
	if traceLog != nil {
		traceLog.Network = res.Network
		if res.Timing != nil {
			traceLog.CyclePS = res.Timing.CycleNS * 1000
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := traceLog.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}

	if *format == "json" {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	renderResult(stdout, res)
	return nil
}

// readSpec loads and strictly parses a declarative network spec file.
func readSpec(path string) (*sim.NetworkSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("reading network spec: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var spec sim.NetworkSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("parsing network spec %s: %w", path, err)
	}
	return &spec, nil
}

// renderResult writes the human-readable evaluation summary.
func renderResult(w io.Writer, res *sim.EvalResult) {
	line := func(label, format string, args ...any) {
		fmt.Fprintf(w, "%-16s "+format+"\n", append([]any{label}, args...)...)
	}
	line("backend", "%s", res.Backend)
	line("network", "%s", res.Network)
	if res.SpecHash != "" {
		line("spec hash", "%s", res.SpecHash)
	}
	if res.Chips > 0 {
		line("chips", "%d", res.Chips)
	}
	if res.EnergyMJPerImage > 0 {
		line("energy/image", "%.4g mJ", res.EnergyMJPerImage)
		line("avg power", "%.4g W", res.PowerWatts)
		line("throughput", "%.4g images/s", res.ImagesPerSec)
		line("efficiency", "%.4g TOPs/W", res.TOPsPerWatt)
	}
	if res.AreaMM2 > 0 {
		line("area", "%.4g mm2", res.AreaMM2)
	}
	if res.Fits != nil {
		line("fits", "%t", *res.Fits)
	}
	if ts := res.Timing; ts != nil {
		line("images", "%d", ts.Images)
		line("cycle time", "%.0f ns", ts.CycleNS)
		line("cycles/image", "%.4g (analytic %.4g, %+.4f%%)",
			ts.CyclesPerImage, ts.AnalyticCyclesPerImage, ts.ThroughputDeltaPct)
		line("pipeline fill", "%.4g cycles", ts.FillCycles)
		line("latency p50/95/99", "%.3f / %.3f / %.3f ms",
			ts.LatencyP50MS, ts.LatencyP95MS, ts.LatencyP99MS)
		line("makespan", "%.3f ms (%d commands)", ts.MakespanMS, ts.Commands)
		for _, u := range ts.Units {
			line("util "+u.Role, "%.1f%% (%d units)", u.UtilizationPct, u.Units)
		}
	}
	if a := res.Accuracy; a != nil {
		if a.Float > 0 {
			line("float acc", "%.2f%%", a.Float*100)
		}
		line("int8 acc", "%.2f%%", a.Int*100)
		line("analog acc", "%.2f%%", a.Analog*100)
		if a.Trials > 1 {
			line("analog p10/50/90", "%.2f%% / %.2f%% / %.2f%%",
				a.AnalogP10*100, a.AnalogP50*100, a.AnalogP90*100)
		}
		line("loss", "%.2f pp", a.LossPP)
		line("trials", "%d", a.Trials)
		if a.Sampler != "" {
			line("sampler", "%s", a.Sampler)
		}
	}
	line("elapsed", "%.1f ms", res.ElapsedMS)
}
